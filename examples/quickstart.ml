(* Quickstart: extraction expressions on plain token strings.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. An alphabet and an extraction expression E1⟨p⟩E2 (Defn 4.1). *)
  let alpha = Alphabet.make [ "p"; "q" ] in
  let e = Extraction.parse alpha "q p <p> q*" in
  Format.printf "expression      : %a@." Extraction.pp e;

  (* 2. Extraction: find the marked symbol in a string. *)
  let word = Word.of_string alpha "qppqq" in
  (match Extraction.extract e word with
  | `Unique i -> Format.printf "extracts        : position %d of %s@." i "qppqq"
  | `Ambiguous l ->
      Format.printf "ambiguous       : %d candidate positions@." (List.length l)
  | `No_match -> Format.printf "no match@.");

  (* 3. Unambiguity (Defn 4.2, decided per §5 in polynomial time). *)
  Format.printf "unambiguous     : %b@." (Ambiguity.is_unambiguous e);

  (* 4. Maximality (Defn 4.5, Cor 5.8): is it as resilient as possible? *)
  (match Maximality.check e with
  | Maximality.Maximal -> Format.printf "maximal         : yes@."
  | Maximality.Not_maximal_left w ->
      Format.printf "maximal         : no — left side misses e.g. %a@."
        (Word.pp alpha) w
  | Maximality.Not_maximal_right w ->
      Format.printf "maximal         : no — right side misses e.g. %a@."
        (Word.pp alpha) w
  | Maximality.Ambiguous_input _ -> Format.printf "ambiguous input@.");

  (* 5. Maximize (§6 algorithms via the synthesis front end). *)
  match Synthesis.maximize e with
  | Ok (e', strategy) ->
      Format.printf "strategy        : %a@." (Synthesis.pp_strategy alpha) strategy;
      Format.printf "maximized       : %a@." Extraction.pp e';
      Format.printf "still unambiguous: %b, now maximal: %b@."
        (Ambiguity.is_unambiguous e')
        (Maximality.is_maximal e');
      (* the maximized expression still extracts the same position … *)
      (match Extraction.extract e' word with
      | `Unique i -> Format.printf "same extraction : position %d@." i
      | _ -> assert false);
      (* … and survives a change the original did not parse at all *)
      let changed = Word.of_string alpha "qqqppq" in
      Format.printf "original parses qqqppq: %b@." (Extraction.parses e changed);
      (match Extraction.extract e' changed with
      | `Unique i ->
          Format.printf "maximized parses qqqppq: yes, extracts position %d@." i
      | _ -> Format.printf "maximized parses qqqppq: no@.")
  | Error f -> Format.printf "maximization failed: %a@." (Synthesis.pp_failure alpha) f

(* A tour of the §6 synthesis machinery on small expressions:
   Example 4.7, Algorithm 6.2 internals, non-uniqueness of maximization,
   and the pivot framework.

   Run with:  dune exec examples/maximize_demo.exe *)

let alpha = Alphabet.make [ "p"; "q" ]
let p = Alphabet.find_exn alpha "p"
let rule () = print_endline (String.make 72 '-')

let show_lang name l = Format.printf "  %-22s = %s@." name (Lang.to_string l)

let () =
  rule ();
  print_endline "Algorithm 6.2 on Example 4.7's  qp⟨p⟩Σ* :";
  let e = Lang.parse alpha "q p" in
  let sigma_star = Lang.sigma_star alpha in
  let psigma = Lang.concat (Lang.sym alpha p) sigma_star in

  (* The algorithm's intermediate objects. *)
  let f = Lang.suffix_quotient e psigma in
  show_lang "E" e;
  show_lang "F = E/(p·Σ* )" f;
  show_lang "F‖_p^0" (Lang.filter_count f ~sym:p 0);
  show_lang "F‖_p^1" (Lang.filter_count f ~sym:p 1);
  (match Left_filter.bounded_mark_count e p with
  | Some n -> Format.printf "  E matches at most %d p's — Alg 6.2 applies@." n
  | None -> assert false);
  (match Left_filter.maximize_lang e p with
  | Ok e' ->
      show_lang "E' (maximized)" e';
      Format.printf "  paper's Example 4.7 says E' = (qp(Σ−p)* ) | ((Σ−p)* − q): %b@."
        (Lang.equal e' (Lang.parse alpha "(q p ([^p])*) | (([^p])* - q)"))
  | Error err -> Format.printf "  error: %a@." Left_filter.pp_error err);

  rule ();
  print_endline "Maximization is not unique (Example 4.7):";
  let e_expr = Extraction.parse alpha "q p <p> .*" in
  let m1 = Extraction.parse alpha "(q p ([^p])*) | (([^p])* - q) <p> .*" in
  let m2 = Extraction.parse alpha "([^p])* p ([^p])* <p> .*" in
  List.iteri
    (fun i m ->
      Format.printf "  maximal generalization %d: %a@." (i + 1) Extraction.pp m;
      Format.printf "    unambiguous=%b maximal=%b generalizes-input=%b@."
        (Ambiguity.is_unambiguous m) (Maximality.is_maximal m)
        (Expr_order.preceq e_expr m))
    [ m1; m2 ];
  Format.printf "  the two differ: %b@." (not (Expr_order.equivalent m1 m2));

  rule ();
  print_endline "PSPACE wall (Thm 5.12): maximality needs universality tests;";
  print_endline "ambiguity (Thm 5.6) stays polynomial.  Both exact here:";
  (* Prop 5.11: (Σ−p)*⟨p⟩E is maximal iff L(E) = Σ* — so deciding its
     maximality IS a universality test (the PSPACE-hardness source).
     E here is the classic lookbehind family with exponential minimal
     DFA. *)
  let hard =
    Extraction.parse alpha "([^p])* <p> (p | q)* q (p | q) (p | q) (p | q)"
  in
  let t0 = Sys.time () in
  let amb = Ambiguity.is_ambiguous hard in
  let t1 = Sys.time () in
  Format.printf "  ambiguity  of (Σ−p)*⟨p⟩lookbehind: %b  (%.4fs)@." amb (t1 -. t0);
  let mx = Maximality.check hard in
  let t2 = Sys.time () in
  Format.printf "  maximality of (Σ−p)*⟨p⟩lookbehind: %s (%.4fs)@."
    (match mx with
    | Maximality.Maximal -> "maximal"
    | Maximality.Not_maximal_left _ -> "not maximal (left)"
    | Maximality.Not_maximal_right _ -> "not maximal (right)"
    | Maximality.Ambiguous_input _ -> "ambiguous")
    (t2 -. t1);

  rule ();
  print_endline "Pivot maximization where plain left-filtering is impossible:";
  let e = Extraction.parse alpha "(p p)* q <p> .*" in
  (match Left_filter.maximize e with
  | Error Left_filter.Unbounded_mark_count ->
      print_endline "  Alg 6.2 rejects (pp)*q⟨p⟩Σ* — unboundedly many p's"
  | _ -> assert false);
  (match Synthesis.maximize e with
  | Ok (e', strategy) ->
      Format.printf "  synthesis strategy: %a@." (Synthesis.pp_strategy alpha) strategy;
      Format.printf "  result: %a@." Extraction.pp e';
      Format.printf "  unambiguous=%b maximal=%b generalizes=%b@."
        (Ambiguity.is_unambiguous e') (Maximality.is_maximal e')
        (Expr_order.preceq e e')
  | Error f -> Format.printf "  failed: %a@." (Synthesis.pp_failure alpha) f);
  rule ()

(* The paper's motivating example, end to end (§3 and §7).

   A shopbot must locate the text INPUT of the search form on a vendor
   catalog page — and keep finding it when the page is redesigned.  We
   train on the two Figure 1 variants, watch the §7 pipeline run (merge
   heuristic → pivot maximization), and then attack the wrapper with the
   §3 change taxonomy.

   Run with:  dune exec examples/shopbot.exe *)

let rule () = print_endline (String.make 72 '-')

let () =
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in

  rule ();
  print_endline "Figure 1, top page (original):";
  print_string (Html_tree.to_string ~indent:true top);
  rule ();
  print_endline "Figure 1, bottom page (rearranged):";
  print_string (Html_tree.to_string ~indent:true bottom);

  (* The §3 abstraction: pages as tag sequences. *)
  let alpha = Wrapper.alphabet_for [ top; bottom ] in
  rule ();
  Format.printf "top    as tag sequence: %s@."
    (Word.to_string alpha (Tag_seq.of_doc alpha top));
  Format.printf "bottom as tag sequence: %s@."
    (Word.to_string alpha (Tag_seq.of_doc alpha bottom));

  (* Ground truth: the data-target INPUT (2nd input of the form). *)
  let pt = Option.get (Pagegen.target_path top) in
  let pb = Option.get (Pagegen.target_path bottom) in

  (* Learn: merge heuristic + maximization (§7). *)
  let w =
    match Wrapper.learn ~alpha [ (top, pt); (bottom, pb) ] with
    | Ok w -> w
    | Error e ->
        Format.eprintf "learning failed: %a@." Wrapper.pp_learn_error e;
        exit 1
  in
  rule ();
  (match w.Wrapper.strategy with
  | Some s -> Format.printf "maximization strategy: %a@." (Synthesis.pp_strategy alpha) s
  | None -> ());
  Format.printf "result is unambiguous: %b, maximal: %b@."
    (Ambiguity.is_unambiguous w.Wrapper.expr)
    (Maximality.is_maximal w.Wrapper.expr);

  (* Extract from both training pages. *)
  let show name doc truth =
    match Wrapper.extract w doc with
    | Ok path ->
        Format.printf "%-28s: found target at %s %s@." name
          (String.concat "." (List.map string_of_int path))
          (if path = truth then "(correct)" else "(WRONG)")
    | Error e ->
        Format.printf "%-28s: FAILED (%a)@." name Wrapper.pp_extract_error e
  in
  rule ();
  show "top page" top pt;
  show "bottom page" bottom pb;

  (* §3's stress scenario: the administrator keeps editing the page. *)
  rule ();
  print_endline "Attacking the wrapper with §3-taxonomy page edits:";
  let redesigned = Perturb.figure1_rearrangement top in
  show "deterministic redesign" redesigned
    (Option.get (Pagegen.target_path redesigned));
  let rng = Random.State.make [| 2000 |] in
  List.iter
    (fun intensity ->
      let page = Perturb.perturb rng ~intensity top in
      show
        (Printf.sprintf "random edits (intensity %d)" intensity)
        page
        (Option.get (Pagegen.target_path page)))
    [ 1; 2; 4; 6; 8 ];

  (* Compare against the rigid, un-maximized expression. *)
  rule ();
  let w_raw =
    match Wrapper.learn ~maximize:false ~alpha [ (top, pt); (bottom, pb) ] with
    | Ok w -> w
    | Error _ -> exit 1
  in
  let survival w =
    let rng = Random.State.make [| 123 |] in
    let ok = ref 0 and total = 50 in
    for _ = 1 to total do
      let page = Perturb.perturb rng ~intensity:4 top in
      match (Pagegen.target_path page, Wrapper.extract w page) with
      | Some truth, Ok path when path = truth -> incr ok
      | _ -> ()
    done;
    (!ok, total)
  in
  let mx, t = survival w in
  let rw, _ = survival w_raw in
  Format.printf "survival under 4 random edits: maximized %d/%d, un-maximized %d/%d@."
    mx t rw t;
  rule ()

(* DTD-guided extraction (§8's "using DTDs to guide the learning
   algorithms", instantiated).

   When the source is XML with a DTD, no sample pages are needed at all:
   the parent's content model — itself a regular expression — directly
   yields an unambiguous extraction expression for "the n-th TARGET child
   of PARENT", which the §6 machinery then maximizes.

   Run with:  dune exec examples/dtd_catalog.exe *)

let dtd_src =
  {|<!ELEMENT CATALOG (BANNER?, PRODUCT+, FOOTER?)>
<!ELEMENT BANNER EMPTY>
<!ELEMENT PRODUCT (NAME, PRICE, NOTE*)>
<!ELEMENT NAME (#PCDATA)>
<!ELEMENT PRICE (#PCDATA)>
<!ELEMENT NOTE (#PCDATA)>
<!ELEMENT FOOTER EMPTY>
<!ATTLIST PRODUCT id CDATA #REQUIRED>|}

let doc_src =
  {|<catalog>
  <banner/>
  <product id="p1"><name>Widget</name><price>19.99</price></product>
  <product id="p2"><name>Gadget</name><price>7.50</price><note>sale</note></product>
  <footer/>
</catalog>|}

let rule () = print_endline (String.make 72 '-')

let () =
  let dtd = Dtd_parse.parse dtd_src in
  let doc = Html_tree.parse doc_src in

  rule ();
  print_endline "The DTD:";
  print_endline dtd_src;

  rule ();
  (match Dtd.validate dtd doc with
  | [] -> print_endline "document validates against the DTD"
  | vs ->
      List.iter (fun v -> Format.printf "violation: %a@." Dtd.pp_violation v) vs);

  (* Content models are regular languages over the child alphabet. *)
  rule ();
  (match Dtd.content_lang dtd "CATALOG" with
  | Some l -> Format.printf "CATALOG content model as a language: %s@." (Lang.to_string l)
  | None -> ());

  (* Derive an extraction expression for "the PRICE of a PRODUCT" with no
     training pages — the content model is the teacher. *)
  rule ();
  (match Dtd_guide.child_expression dtd ~parent:"PRODUCT" ~target:"PRICE" ~nth:0 with
  | Error e -> Format.printf "error: %a@." Dtd_guide.pp_error e
  | Ok e ->
      Format.printf "DTD-derived expression : %a@." Extraction.pp e;
      Format.printf "unambiguous            : %b@." (Ambiguity.is_unambiguous e);
      (* maximize for resilience beyond what the DTD allows *)
      (match Dtd_guide.resilient_child_expression dtd ~parent:"PRODUCT" ~target:"PRICE" ~nth:0 with
      | Ok e' ->
          Format.printf "maximized              : %a@." Extraction.pp e';
          Format.printf "maximal                : %b@." (Maximality.is_maximal e')
      | Error _ -> ());
      (* extract from the real document tree *)
      List.iteri
        (fun i (path, _) ->
          match Dtd_guide.extract_child dtd e doc ~parent_path:path with
          | Ok idx -> (
              match Html_tree.node_at doc (path @ [ idx ]) with
              | Some (Html_tree.Element { children = [ Html_tree.Text price ]; _ })
                ->
                  Format.printf "product %d price       : %s@." (i + 1) price
              | _ -> Format.printf "product %d: unexpected node@." (i + 1))
          | Error msg -> Format.printf "product %d: %s@." (i + 1) msg)
        (Html_tree.find_elements "PRODUCT" doc));

  (* The "second PRODUCT" concept survives the optional BANNER vanishing. *)
  rule ();
  match Dtd_guide.child_expression dtd ~parent:"CATALOG" ~target:"PRODUCT" ~nth:1 with
  | Error e -> Format.printf "error: %a@." Dtd_guide.pp_error e
  | Ok e ->
      let alpha = Dtd.alphabet dtd in
      List.iter
        (fun names ->
          let word = Word.of_names alpha names in
          match Extraction.extract e word with
          | `Unique i ->
              Format.printf "%-45s -> position %d@."
                (String.concat " " names) i
          | `Ambiguous _ | `No_match ->
              Format.printf "%-45s -> no unique match@."
                (String.concat " " names))
        [
          [ "BANNER"; "PRODUCT"; "PRODUCT"; "FOOTER" ];
          [ "PRODUCT"; "PRODUCT"; "PRODUCT" ];
          [ "PRODUCT"; "PRODUCT" ];
        ];
      rule ()

(* Resilience in numbers: the E6 experiment at demo scale.

   Generates random catalog pages, learns four extractors from two
   samples each (rigid / LR baseline / merged / maximized), perturbs the
   pages with growing numbers of §3-taxonomy edits, and prints survival
   rates.

   Run with:  dune exec examples/resilience_demo.exe *)

let () =
  print_endline "Resilience of learned wrappers vs. number of page edits";
  print_endline "(20 random pages per intensity, seed 42)";
  print_newline ();
  let rows =
    Resilience.evaluate ~seed:42 ~trials:20 ~intensities:[ 0; 1; 2; 4; 6; 8 ] ()
  in
  Format.printf "%a@." Resilience.pp_table rows;
  print_newline ();
  print_endline
    "Reading: 'rigid' is the literal sample sequence; 'LR' the\n\
     delimiter-window baseline of the wrapper-induction literature;\n\
     'merged' the §7 heuristic before maximization; 'maximized' the\n\
     paper's proposal.  The ordering maximized ≥ merged ≥ rigid is the\n\
     resilience claim, reproduced."

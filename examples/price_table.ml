(* Tuple wrappers over HTML tables.

   The wrapper-induction systems the paper cites ([18, 21]) extract
   TUPLES (name, price, …) from result rows.  Multi_extraction carries
   the paper's formalism to that setting: a k-mark expression
   E0 ⟨p1⟩ E1 ⟨p2⟩ E2 …, unambiguous iff each coordinate expression is
   (the coordinate-wise reduction to Prop 5.4).

   Here: from a product-listing page, extract the (name-cell, price-cell)
   pair of the first result row, and keep extracting it as rows and
   decorations are added.

   Run with:  dune exec examples/price_table.exe *)

let page extra_rows decorated =
  Printf.sprintf
    {|<h1>Results</h1>%s
<table>
<tr><th>Product</th><th>Price</th></tr>
<tr><td><a href="p1.html">Widget</a></td><td><b>$19.99</b></td></tr>
%s
</table>|}
    (if decorated then "<p><img src=\"banner.gif\"><hr>" else "")
    (String.concat "\n"
       (List.init extra_rows (fun i ->
            Printf.sprintf
              "<tr><td><a href=\"p%d.html\">Item %d</a></td><td>$%d.00</td></tr>"
              (i + 2) (i + 2) (i + 2))))

let () =
  let doc = Html_tree.parse (page 1 false) in
  let alpha = Wrapper.alphabet_for [ doc ] in

  (* The tuple concept: inside the first data row (the one after the
     header), the A anchor holds the name, the B element the price.  As a
     two-mark expression over the tag sequence: mark the first row's TD
     that contains A, and the B inside the price TD. *)
  let me =
    Multi_extraction.parse alpha
      "([^TABLE])* TABLE TR TH /TH TH /TH /TR TR TD <A> /A /TD TD <B> /B /TD \
       /TR .*"
  in
  Format.printf "tuple expression : %a@." Multi_extraction.pp me;
  Format.printf "arity            : %d@." (Multi_extraction.arity me);
  Format.printf "unambiguous      : %b@." (Multi_extraction.is_unambiguous me);

  (* Generalize each coordinate with the §6 machinery: coordinate
     expressions are ordinary E1⟨p⟩E2, so Synthesis applies. *)
  (match Synthesis.maximize (Multi_extraction.coordinate_expression me 0) with
  | Ok (e, s) ->
      Format.printf "coordinate 0 max : %a  (via %a)@." Extraction.pp e
        (Synthesis.pp_strategy alpha) s
  | Error f ->
      Format.printf "coordinate 0     : %a@." (Synthesis.pp_failure alpha) f);

  let matcher = Multi_extraction.compile me in
  let try_page label html =
    let doc = Html_tree.parse html in
    let word = Tag_seq.of_doc alpha doc in
    match Multi_extraction.matcher_extract matcher word with
    | `Unique positions ->
        let names =
          List.map
            (fun i ->
              match Tag_seq.path_of_mark alpha doc i with
              | Some path -> (
                  match Html_tree.node_at doc path with
                  | Some (Html_tree.Element { children = [ Html_tree.Text t ]; _ })
                    ->
                      t
                  | _ -> "?")
              | None -> "?")
            positions
        in
        Format.printf "%-28s -> (%s)@." label (String.concat ", " names)
    | `Ambiguous _ -> Format.printf "%-28s -> ambiguous@." label
    | `No_match -> Format.printf "%-28s -> no match@." label
  in
  print_newline ();
  try_page "original page" (page 1 false);
  try_page "three more rows" (page 4 false);
  try_page "decorated header" (page 1 true);
  try_page "decorated + more rows" (page 6 true)

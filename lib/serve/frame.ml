type incoming =
  | Open of { id : int; fuel : int option; deadline_ms : int option }
  | Tokens of { id : int; syms : string list }
  | Page of { id : int; html : string }
  | Close of { id : int }

type outgoing =
  | Opened of { id : int }
  | Split of { id : int; pos : int }
  | Closed of { id : int; splits : int; tokens : int }
  | Healed of { generation : int; used : int }
  | Err_decode of { reason : string }
  | Err_proto of { id : int; reason : string }
  | Err_shed of { id : int; retry_after_ms : int }
  | Err_refused of { id : int }
  | Err_budget of { id : int; stage : string; spent : int; limit : int }
  | Err_fault of { id : int; reason : string }

let default_max_bytes = 1 lsl 20

(* Schema layer over the total Obs.Json parser: every violation is a
   plain [Error], so the only control flow a hostile client can reach
   is an error frame. *)

let field_int j name =
  match Obs.Json.member name j with
  | Obs.Json.Int i -> Ok i
  | Obs.Json.Null -> Error (Printf.sprintf "missing %S field" name)
  | _ -> Error (Printf.sprintf "%S must be an integer" name)

let field_str j name =
  match Obs.Json.member name j with
  | Obs.Json.Str s -> Ok s
  | Obs.Json.Null -> Error (Printf.sprintf "missing %S field" name)
  | _ -> Error (Printf.sprintf "%S must be a string" name)

let field_int_opt j name =
  match Obs.Json.member name j with
  | Obs.Json.Int i ->
      if i < 0 then Error (Printf.sprintf "%S must be non-negative" name)
      else Ok (Some i)
  | Obs.Json.Null -> Ok None
  | _ -> Error (Printf.sprintf "%S must be an integer" name)

let session_id j =
  match field_int j "id" with
  | Error _ as e -> e
  | Ok i when i < 0 -> Error "\"id\" must be non-negative"
  | Ok i -> Ok i

let ( let* ) = Result.bind

let decode ?(max_bytes = default_max_bytes) line =
  if String.length line > max_bytes then
    Error
      (Printf.sprintf "oversized frame: %d bytes exceeds the %d-byte cap"
         (String.length line) max_bytes)
  else
    match Obs.Json.of_string line with
    | Error reason -> Error ("bad JSON: " ^ reason)
    | Ok (Obs.Json.Obj _ as j) -> (
        match Obs.Json.member "op" j with
        | Obs.Json.Str "open" ->
            let* id = session_id j in
            let* fuel = field_int_opt j "fuel" in
            let* deadline_ms = field_int_opt j "deadline_ms" in
            Ok (Open { id; fuel; deadline_ms })
        | Obs.Json.Str "tokens" ->
            let* id = session_id j in
            let* syms =
              match Obs.Json.member "syms" j with
              | Obs.Json.List l ->
                  let rec strings acc = function
                    | [] -> Ok (List.rev acc)
                    | Obs.Json.Str s :: rest -> strings (s :: acc) rest
                    | _ -> Error "\"syms\" must be a list of strings"
                  in
                  strings [] l
              | _ -> Error "missing \"syms\" list"
            in
            Ok (Tokens { id; syms })
        | Obs.Json.Str "page" ->
            let* id = session_id j in
            let* html = field_str j "html" in
            Ok (Page { id; html })
        | Obs.Json.Str "close" ->
            let* id = session_id j in
            Ok (Close { id })
        | Obs.Json.Str op -> Error (Printf.sprintf "unknown op %S" op)
        | Obs.Json.Null -> Error "missing \"op\" field"
        | _ -> Error "\"op\" must be a string")
    | Ok _ -> Error "frame must be a JSON object"

let encode out =
  let open Obs.Json in
  let j =
    match out with
    | Opened { id } -> Obj [ ("ok", Str "opened"); ("id", Int id) ]
    | Split { id; pos } -> Obj [ ("split", Int pos); ("id", Int id) ]
    | Closed { id; splits; tokens } ->
        Obj
          [
            ("ok", Str "closed");
            ("id", Int id);
            ("splits", Int splits);
            ("tokens", Int tokens);
          ]
    | Healed { generation; used } ->
        Obj
          [
            ("ok", Str "healed");
            ("generation", Int generation);
            ("used", Int used);
          ]
    | Err_decode { reason } ->
        Obj [ ("err", Str "decode"); ("reason", Str reason) ]
    | Err_proto { id; reason } ->
        Obj [ ("err", Str "proto"); ("id", Int id); ("reason", Str reason) ]
    | Err_shed { id; retry_after_ms } ->
        Obj
          [
            ("err", Str "shed");
            ("id", Int id);
            ("retry_after_ms", Int retry_after_ms);
          ]
    | Err_refused { id } -> Obj [ ("err", Str "refused"); ("id", Int id) ]
    | Err_budget { id; stage; spent; limit } ->
        Obj
          [
            ("err", Str "budget");
            ("id", Int id);
            ("stage", Str stage);
            ("spent", Int spent);
            ("limit", Int limit);
          ]
    | Err_fault { id; reason } ->
        Obj [ ("err", Str "fault"); ("id", Int id); ("reason", Str reason) ]
  in
  to_string j

let pp_outgoing ppf out = Format.pp_print_string ppf (encode out)

(** Session supervision: admission control, parallel scheduling,
    poisoned-session isolation, graceful drain.

    The supervisor owns the session table and turns batches of raw
    frame lines into outgoing frames.  Its degradation ladder is
    explicit and total — no input can kill the process:

    - {b shed}: an [open] beyond [max_sessions] is answered with
      [{"err":"shed","retry_after_ms":…}] and {e no} state change; the
      client retries after the hint and (capacity permitting) observes
      exactly the session it would have had (the serve oracle layer
      checks shed-then-retry equivalence).
    - {b refuse}: once draining (EOF / SIGTERM), every [open] is
      answered [{"err":"refused"}]; in-flight sessions keep running to
      completion.
    - {b kill}: a session that faults — injected probe, bad symbol,
      budget exhaustion, any escaping exception — is retired with a
      structured error frame.  Isolation is a tested invariant: the
      other sessions' outgoing frames are byte-identical to a
      fault-free run, because sessions share nothing but the immutable
      matcher and every session's events depend only on its own
      token stream.

    {b Raw pages.}  A session may stream raw HTML instead of symbol
    names ([page] frames): the daemon builds one fused front-end token
    table ({!Front.table}) at startup and every page session feeds its
    chunks through {!Session.feed_page}, so tokenization, interning,
    and matching happen in one pass with no per-page tree or word.

    {b Scheduling.}  A batch is processed in three deterministic
    passes: (1) sequential admission — decode, open/close/shed/refuse
    decisions in arrival order against a projected session table;
    (2) parallel advance — each session's token/close slots run {e in
    order} on one {!Pool} participant (sessions are mutually
    independent, so any interleaving of distinct sessions yields the
    same events); (3) sequential emission — outgoing frames in arrival
    order of the frames that caused them.  Output is therefore
    independent of [jobs], which the oracle layer pins at jobs 1/2/4.

    {b Metrics.}  Process-global counters (sessions opened / closed /
    shed / refused / faulted / budget-exhausted, frames, decode and
    protocol errors) plus a frame-latency histogram, exported as the
    ["serve"] {!Obs.metrics_json} provider.  Counters are
    unconditional, like the artifact store's; per-window readings use
    {!Obs.Histogram.delta} and friends rather than any reset. *)

type config = {
  matcher : Extraction.matcher;
  alpha : Alphabet.t;
  jobs : int;  (** pool participants for the parallel advance pass *)
  max_sessions : int;  (** admission cap; opens beyond it are shed *)
  fuel : int option;  (** default per-session fuel (frames can override) *)
  deadline_ms : int option;  (** default per-session deadline *)
  retry_after_ms : int;  (** backoff hint attached to shed frames *)
  heal : Heal.Manager.t option;
      (** the self-healing loop, when enabled.  Each session that
          terminates — cleanly or by fault — yields one verdict
          ([ok = no terminal event ∧ at least one split]), observed in
          arrival order at the batch boundary; page sessions are
          captured whole for the quarantine.  When the manager heals,
          the supervisor adopts the new generation's matcher, alphabet,
          and front-end table for sessions opened from the next frame
          on (live fibers are never migrated) and appends one
          [{"ok":"healed",…}] frame after the batch's output.  [None]
          leaves every byte of output identical to a daemon built
          without the heal subsystem. *)
}

val default_retry_after_ms : int

type t

val create : config -> t
(** @raise Extraction.Not_online if the matcher cannot stream
    because its right side is not Σ* — refused at startup, not per
    session.
    @raise Invalid_argument on a non-positive [max_sessions] or
    [jobs]. *)

val handle_batch : t -> string list -> Frame.outgoing list
(** Process one batch of frame lines (each one line, no newline) and
    answer the outgoing frames, in arrival order.  Total: malformed
    input produces error frames, never an exception. *)

val handle_line : t -> string -> Frame.outgoing list
(** [handle_batch] on a single line. *)

val set_draining : t -> unit
(** Stop admitting sessions ([open] ⇒ refused).  Feeding existing
    sessions remains allowed: drain means {e finish what you
    accepted}. *)

val draining : t -> bool

val drain : t -> Frame.outgoing list
(** {!set_draining}, then finish every live session in open order and
    answer their final frames.  The table is empty afterwards. *)

val active_sessions : t -> int

(** {1 Statistics} *)

type stats = {
  opened : int;
  closed : int;  (** clean closes: [close] frames and drains *)
  shed : int;
  refused : int;
  faulted : int;
      (** [err=fault] frames: injected faults and escaped exceptions *)
  budget_exhausted : int;
  frames : int;  (** incoming lines seen (including malformed) *)
  decode_errors : int;
  proto_errors : int;
      (** [err=proto] frames: protocol misuse and bad symbols *)
}

val stats : unit -> stats
(** Process-global, like {!Artifact.stats}; subtract snapshots for a
    window (never reset mid-daemon). *)

val frame_latency : unit -> Obs.Histogram.snapshot
(** Cumulative read-to-emit latency over all frames. *)

val pp_stats : Format.formatter -> stats -> unit

(** The serve wire protocol: newline-delimited JSON frames.

    One frame per line, both directions.  Incoming frames address a
    {e session} by a client-chosen non-negative integer id; outgoing
    frames echo that id, so a client multiplexing many documents over
    one daemon can demultiplex the answers.

    {b Incoming} (client → daemon):

    {v
      {"op":"open","id":7}                       open session 7
      {"op":"open","id":7,"fuel":500,
       "deadline_ms":2000}                       … with a budget override
      {"op":"tokens","id":7,"syms":["q","p"]}    feed a token chunk
      {"op":"page","id":7,"html":"<p>…"}         feed raw HTML bytes
      {"op":"close","id":7}                      end of session input
    v}

    {b Outgoing} (daemon → client):

    {v
      {"ok":"opened","id":7}
      {"split":3,"id":7}                         a pinned split position
      {"ok":"closed","id":7,"splits":1,"tokens":9}
      {"ok":"healed","generation":1,"used":3}    a wrapper generation swap
                                                 (only with --heal; see lib/heal)
      {"err":"decode","reason":"…"}              malformed frame (no session dies)
      {"err":"proto","id":7,"reason":"…"}        protocol misuse / bad symbol
      {"err":"shed","id":7,"retry_after_ms":50}  load shed: retry later
      {"err":"refused","id":7}                   daemon is draining
      {"err":"budget","id":7,"stage":"stream",
       "spent":501,"limit":500}                  session budget exhausted
      {"err":"fault","id":7,"reason":"…"}        session poisoned and isolated
    v}

    {b Totality.}  {!decode} never raises, whatever the bytes: the
    JSON layer ({!Obs.Json.of_string}) is depth-capped and total, the
    schema layer answers [Error] on every violation, and an input
    longer than [max_bytes] is rejected {e before} parsing so an
    adversarial client cannot make the daemon allocate unboundedly —
    the same discipline as [Artifact.of_bytes], enforced by the same
    kind of fuzz suite (500 random byte lines plus every truncation
    prefix of a valid frame). *)

type incoming =
  | Open of { id : int; fuel : int option; deadline_ms : int option }
  | Tokens of { id : int; syms : string list }
      (** symbol {e names}; resolution against the daemon's alphabet
          happens in the session, so decoding stays alphabet-free *)
  | Page of { id : int; html : string }
      (** a chunk of raw HTML bytes, fed through the session's fused
          front-end ({!Front.stream_feed}); chunks may split the page
          at any byte boundary.  [page] and [tokens] frames may not be
          mixed within one session *)
  | Close of { id : int }

type outgoing =
  | Opened of { id : int }
  | Split of { id : int; pos : int }
  | Closed of { id : int; splits : int; tokens : int }
  | Healed of { generation : int; used : int }
      (** the self-healing loop re-synthesized and hot-swapped the
          wrapper: sessions opened from the next frame on run the new
          [generation]; [used] counts the quarantined pages that were
          re-labeled into the training set.  Emitted at a batch
          boundary, after the batch's other frames, and never when
          healing is off — a healing-disabled daemon's output is
          byte-identical to one built without the heal subsystem *)
  | Err_decode of { reason : string }
  | Err_proto of { id : int; reason : string }
  | Err_shed of { id : int; retry_after_ms : int }
  | Err_refused of { id : int }
  | Err_budget of { id : int; stage : string; spent : int; limit : int }
  | Err_fault of { id : int; reason : string }

val default_max_bytes : int
(** Frame size cap applied by {!decode} unless overridden: 1 MiB. *)

val decode : ?max_bytes:int -> string -> (incoming, string) result
(** Decode one line (without its newline).  Total: any byte string
    answers [Ok] or [Error reason], never an exception. *)

val encode : outgoing -> string
(** One JSON line, without the trailing newline. *)

val pp_outgoing : Format.formatter -> outgoing -> unit

type source = Stdin | Socket of string

type config = {
  sup : Supervisor.config;
  source : source;
  batch_max : int;
  print_stats : bool;
}

let default_batch_max = 256

(* SIGTERM/SIGINT request a graceful drain.  The handler only flips an
   atomic: the loop notices either at the next batch boundary or when
   the blocking read is interrupted (EINTR). *)
let stop_requested = Atomic.make false

let install_signal_handlers () =
  let note _ = Atomic.set stop_requested true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle note)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle note)
   with Invalid_argument _ | Sys_error _ -> ());
  (* a vanished client must surface as EPIPE on write, not kill the
     process with SIGPIPE *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* Incremental line splitter over raw reads: the unterminated tail is
   carried in a buffer between chunks, capped at [limit + 1] bytes.
   Past the cap the rest of the line is discarded, so an adversarial
   client streaming a newline-free byte river cannot grow daemon
   memory; the truncated line still exceeds [limit], so [Frame.decode]
   answers its structured oversized-frame error once the line (or the
   input) finally ends. *)
type splitter = { carry : Buffer.t; limit : int }

let splitter limit = { carry = Buffer.create 4096; limit }

let splitter_add sp data start len =
  let keep = min len (sp.limit + 1 - Buffer.length sp.carry) in
  if keep > 0 then Buffer.add_substring sp.carry data start keep

let splitter_take sp =
  let line = Buffer.contents sp.carry in
  Buffer.clear sp.carry;
  line

(* Complete lines of [data] given the carried tail; the new tail stays
   in the splitter. *)
let split_lines sp data =
  let n = String.length data in
  let rec go start acc =
    match String.index_from_opt data start '\n' with
    | Some i ->
        splitter_add sp data start (i - start);
        go (i + 1) (splitter_take sp :: acc)
    | None ->
        splitter_add sp data start (n - start);
        List.rev acc
  in
  go 0 []

(* A write failure means this reader is gone: answer [false] so the
   caller stops feeding the connection and heads for the drain.  The
   process-global [stop_requested] stays signal-only — in socket mode
   the daemon outlives any one client, and a mid-write EPIPE must not
   keep the next connection from being accepted. *)
let emit oc frames =
  try
    List.iter
      (fun f ->
        output_string oc (Frame.encode f);
        output_char oc '\n')
      frames;
    flush oc;
    true
  with Sys_error _ -> false

(* Feed [lines] to the supervisor in batches of at most [batch_max],
   emitting after each batch so a long burst still streams answers.
   Answers [false] as soon as a write fails. *)
let process cfg sup oc lines =
  let rec go = function
    | [] -> true
    | lines ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | l :: rest -> take (k - 1) (l :: acc) rest
        in
        let batch, rest = take cfg.batch_max [] lines in
        if emit oc (Supervisor.handle_batch sup batch) then go rest else false
  in
  (* skip blank lines: convenient for hand-driven sessions, and a
     trailing newline at EOF is not a frame *)
  go (List.filter (fun l -> String.trim l <> "") lines)

(* Serve one input fd until EOF or a stop request; drains before
   returning.  [oc] is where outgoing frames go (stdout for stdin
   mode, the connection for socket mode). *)
let serve_fd cfg sup fd oc =
  let chunk = Bytes.create 65536 in
  let sp = splitter Frame.default_max_bytes in
  let rec loop () =
    if Atomic.get stop_requested then ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) ->
          (* a reset connection is an EOF with attitude: drain *)
          ()
      | 0 ->
          (* genuine EOF is the one place an unterminated final line
             still counts as a frame; the stop/read-error/writer-gone
             exits drop their mid-line tail instead of misparsing a
             truncated prefix *)
          if Buffer.length sp.carry > 0 then
            ignore (process cfg sup oc [ splitter_take sp ])
      | n ->
          let lines = split_lines sp (Bytes.sub_string chunk 0 n) in
          if process cfg sup oc lines then loop ()
  in
  loop ();
  ignore (emit oc (Supervisor.drain sup))

let print_exit_stats ~heal ~rt0 ~pool0 =
  Format.eprintf "%a" Supervisor.pp_stats (Supervisor.stats ());
  if heal then Format.eprintf "%a" Heal.pp_stats (Heal.stats ());
  Format.eprintf "%a" Runtime.Stats.pp
    (Runtime.Stats.delta ~earlier:rt0 (Runtime.stats ()));
  Format.eprintf "%a" Pool.pp_stats
    (Pool.delta_stats ~earlier:pool0 (Pool.stats ()))

let run cfg =
  (* validates the matcher (Not_online) before any I/O is touched *)
  let sup = Supervisor.create cfg.sup in
  install_signal_handlers ();
  Atomic.set stop_requested false;
  (* window baselines for the exit report: deltas, never resets *)
  let rt0 = Runtime.stats () and pool0 = Pool.stats () in
  let code =
    match cfg.source with
    | Stdin ->
        serve_fd cfg sup Unix.stdin stdout;
        0
    | Socket path -> (
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match
          (try Unix.unlink path with Unix.Unix_error _ -> ());
          Unix.bind sock (Unix.ADDR_UNIX path);
          Unix.listen sock 8
        with
        | exception Unix.Unix_error (e, _, _) ->
            Format.eprintf "error: cannot bind socket %s: %s@." path
              (Unix.error_message e);
            2
        | () ->
            let rec accept_loop () =
              if Atomic.get stop_requested then ()
              else
                match Unix.accept sock with
                | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                    accept_loop ()
                | conn, _ ->
                    let oc = Unix.out_channel_of_descr conn in
                    (* each connection gets its own supervisor: a
                       fresh session table and admission window (the
                       previous connection's drain flipped its
                       supervisor to refusing) *)
                    let conn_sup = Supervisor.create cfg.sup in
                    serve_fd cfg conn_sup conn oc;
                    (try flush oc with Sys_error _ -> ());
                    (try Unix.close conn with Unix.Unix_error _ -> ());
                    accept_loop ()
            in
            accept_loop ();
            (try Unix.close sock with Unix.Unix_error _ -> ());
            (try Unix.unlink path with Unix.Unix_error _ -> ());
            0)
  in
  if cfg.print_stats then
    print_exit_stats ~heal:(Option.is_some cfg.sup.Supervisor.heal) ~rt0 ~pool0;
  code

type event =
  | Split of int
  | Budget_exhausted of Guard.reason
  | Bad_symbol of string
  | Faulted of string

(* The fiber protocol: the matcher's input Seq performs [Await] for
   every element; [Some a] is the next token, [None] is end-of-stream.
   The deep handler parks the one-shot continuation in [fiber];
   resuming runs the matcher exactly until it needs the next token
   (emitting splits into [pending] on the way) or until it finishes. *)
type _ Effect.t += Await : int option Effect.t

type fiber =
  | Suspended of (int option, unit) Effect.Deep.continuation
  | Finished

type t = {
  sid : int;
  sordinal : int;
  sgeneration : int;
      (* the wrapper generation this session was admitted under; a heal
         swap mid-stream never migrates a live fiber *)
  alpha : Alphabet.t;
  front : Front.table option;
      (* shared fused-front-end token table (supervisor builds one per
         daemon); [None] falls back to a per-session build on the
         first [page] frame *)
  budget : Guard.Budget.t option;
  capture : Buffer.t option;
      (* bounded raw-page capture for the healing quarantine; [None]
         when healing is off, so the hot path allocates nothing *)
  capture_max : int;
  mutable capture_overflow : bool;
  mutable fiber : fiber;
  mutable live : bool;
  mutable failed : bool;
      (* a terminal event (bad symbol / budget / fault) killed the
         session — distinct from a clean finish *)
  mutable tokens : int;
  mutable splits : int;
  mutable f_stream : Front.stream option;
      (* incremental page front-end, created on the first [page] frame
         so token-only sessions never allocate one *)
  mutable pending : event list; (* reversed; drained per feed *)
}

let id t = t.sid
let ordinal t = t.sordinal
let generation t = t.sgeneration
let alive t = t.live
let failed t = t.failed
let tokens_fed t = t.tokens
let splits_emitted t = t.splits

let create ~matcher ~alpha ~id ~ordinal ?front ?fuel ?deadline_ms
    ?(generation = 0) ?capture () =
  let budget =
    match (fuel, deadline_ms) with
    | None, None -> None
    | _ ->
        Some
          (Guard.Budget.make
             ~fuel:(Option.value fuel ~default:max_int)
             ?deadline_ms ())
  in
  let t =
    {
      sid = id;
      sordinal = ordinal;
      sgeneration = generation;
      alpha;
      front;
      budget;
      capture = Option.map (fun _ -> Buffer.create 1024) capture;
      capture_max = Option.value capture ~default:0;
      capture_overflow = false;
      fiber = Finished;
      live = true;
      failed = false;
      tokens = 0;
      splits = 0;
      f_stream = None;
      pending = [];
    }
  in
  let rec input () =
    match Effect.perform Await with
    | None -> Seq.Nil
    | Some a ->
        (* one fuel unit per token: the serve analogue of the
           one-unit-per-DFA-state discipline of lib/automata *)
        Guard.charge ~stage:"stream" 1;
        Seq.Cons (a, input)
  in
  let run () =
    Seq.iter
      (fun pos ->
        t.splits <- t.splits + 1;
        t.pending <- Split pos :: t.pending)
      (Extraction.matcher_stream_splits matcher input)
  in
  (* Runs until the first [Await] (no input consumed yet, so no charge
     can fire here); [Extraction.Not_online] propagates via [exnc]. *)
  Effect.Deep.match_with run ()
    {
      retc = (fun () -> t.fiber <- Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Await ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  t.fiber <- Suspended k)
          | _ -> None);
    };
  t

(* Resume with the next token (or end-of-stream).  The fiber either
   re-suspends (handler stores the new continuation), finishes (retc),
   or lets an exception through — in which case its stack has unwound
   and [fiber] correctly stays [Finished]. *)
let resume t v =
  match t.fiber with
  | Finished -> ()
  | Suspended k -> (
      t.fiber <- Finished;
      let go () = Effect.Deep.continue k v in
      match t.budget with None -> go () | Some b -> Guard.with_budget b go)

let discard_fiber t =
  match t.fiber with
  | Finished -> ()
  | Suspended k -> (
      t.fiber <- Finished;
      (* unwind the matcher's stack; Exit comes straight back out *)
      try Effect.Deep.discontinue k Exit with _ -> ())

let kill t =
  t.live <- false;
  discard_fiber t

let drain_pending t =
  let evs = List.rev t.pending in
  t.pending <- [];
  evs

(* Terminal event: the session dies, whatever was already pinned this
   feed is kept (those splits are valid — they precede the failure
   point in the stream). *)
let die t ev =
  t.live <- false;
  t.failed <- true;
  discard_fiber t;
  t.pending <- ev :: t.pending

(* Capture happens outside the liveness check (the supervisor records
   every [page] chunk of a heal-observed session, even after it died on
   an earlier chunk): the quarantined page must be the whole document a
   re-synthesis can re-label, not the prefix up to the failure. *)
let capture_chunk t html =
  match t.capture with
  | None -> ()
  | Some buf ->
      if Buffer.length buf + String.length html > t.capture_max then
        t.capture_overflow <- true
      else Buffer.add_string buf html

let captured_page t =
  match t.capture with
  | Some buf when (not t.capture_overflow) && Buffer.length buf > 0 ->
      Some (Buffer.contents buf)
  | Some _ | None -> None

let feed t names =
  if not t.live then []
  else begin
    (try
       Guard_faults.point_indexed Guard_faults.Session_item t.sordinal;
       let rec go = function
         | [] -> ()
         | name :: rest -> (
             match Alphabet.find t.alpha name with
             | None -> die t (Bad_symbol name)
             | Some a ->
                 t.tokens <- t.tokens + 1;
                 resume t (Some a);
                 go rest)
       in
       go names
     with
    | Guard.Exhausted r -> die t (Budget_exhausted r)
    | e -> die t (Faulted (Printexc.to_string e)));
    drain_pending t
  end

(* The session's incremental front-end, created on first use.  Tokens
   emitted by the stream go through the exact [feed] path: count, then
   resume — so a [page] session is indistinguishable from a [tokens]
   session to the matcher fiber. *)
let stream_of t =
  match t.f_stream with
  | Some st -> st
  | None ->
      let tbl =
        match t.front with Some tbl -> tbl | None -> Front.build t.alpha
      in
      let st = Front.stream_make tbl in
      t.f_stream <- Some st;
      st

let feed_page t html =
  if not t.live then []
  else begin
    (try
       Guard_faults.point_indexed Guard_faults.Session_item t.sordinal;
       match
         Front.stream_feed (stream_of t) html ~emit:(fun a ->
             t.tokens <- t.tokens + 1;
             resume t (Some a))
       with
       | Ok () -> ()
       | Error name -> die t (Bad_symbol name)
     with
    | Guard.Exhausted r -> die t (Budget_exhausted r)
    | e -> die t (Faulted (Printexc.to_string e)));
    drain_pending t
  end

let finish t =
  if not t.live then []
  else begin
    (try
       (match t.f_stream with
       | None -> ()
       | Some st -> (
           (* flush the page front-end first: carried bytes and still
              open elements emit their final symbols before the matcher
              sees end-of-stream *)
           match
             Front.stream_finish st ~emit:(fun a ->
                 t.tokens <- t.tokens + 1;
                 resume t (Some a))
           with
           | Ok () -> ()
           | Error name -> die t (Bad_symbol name)));
       if t.live then resume t None
     with
    | Guard.Exhausted r -> die t (Budget_exhausted r)
    | e -> die t (Faulted (Printexc.to_string e)));
    t.live <- false;
    drain_pending t
  end

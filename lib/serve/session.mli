(** One streaming extraction session: a suspended run of
    {!Extraction.matcher_stream_splits} that is resumed one token at a
    time.

    The streaming matcher consumes an [int Seq.t]; a daemon has no
    such sequence — tokens arrive in chunks, interleaved with other
    sessions'.  Rather than re-implement the matcher's stepping logic,
    a session runs the {e real} [matcher_stream_splits] inside an
    OCaml effect fiber whose input sequence {e performs} an [Await]
    effect per element: the fiber suspends whenever the matcher needs
    a token it does not have, and {!feed} resumes it with the next
    symbol.  Splits therefore pop out of the authentic one-pass
    matcher the moment the unambiguity invariant pins them, and the
    laziness contract of the offline API is exercised verbatim by the
    daemon (the serve oracle layer cross-checks streamed ≡ offline).

    {b Budgets.}  Each resumption runs under the session's own
    {!Guard.Budget.t} (ambient, per-domain — installed around the
    resume, so concurrent sessions on pool workers meter
    independently).  The input sequence charges one fuel unit per
    token; the budget's wall-clock deadline is measured from session
    creation.  Exhaustion surfaces as a {!Budget_exhausted} event and
    kills only this session.

    {b Crash-only.}  Every failure — injected {!Guard_faults} probes,
    out-of-range symbols, budget exhaustion, any escaping exception —
    is converted into a terminal event and the fiber is discarded;
    {!feed} and {!finish} never raise.  A dead session answers [[]]
    forever.  Continuations are one-shot and the supervisor serializes
    all resumptions of one session, so a fiber captured on one domain
    may be resumed on another (the pool does exactly this). *)

type t

type event =
  | Split of int  (** a pinned split position, ascending within a feed *)
  | Budget_exhausted of Guard.reason  (** terminal *)
  | Bad_symbol of string  (** terminal: token outside the alphabet *)
  | Faulted of string  (** terminal: injected fault or escaped exception *)

val create :
  matcher:Extraction.matcher ->
  alpha:Alphabet.t ->
  id:int ->
  ordinal:int ->
  ?front:Front.table ->
  ?fuel:int ->
  ?deadline_ms:int ->
  ?generation:int ->
  ?capture:int ->
  unit ->
  t
(** Start the fiber (runs until the matcher first awaits input).
    [ordinal] is the session's 0-based open ordinal — the index the
    {!Guard_faults.Session_item} probe fires on.  [front] is the fused
    front-end's token table used by {!feed_page}; the supervisor
    builds one per daemon so sessions share it (omitting it falls back
    to a per-session build on the first page chunk).  Omitting both
    [fuel] and [deadline_ms] runs unbudgeted.  [generation] (default
    0) records the wrapper generation the session was admitted under —
    a healing swap never migrates a live fiber.  [capture] (bytes)
    enables bounded raw-page capture for the healing quarantine;
    omitted, the session allocates no capture state.
    @raise Extraction.Not_online if the matcher's right side is not
    Σ* (the daemon checks once at startup, so reaching this from
    [serve] is a bug). *)

val id : t -> int
val ordinal : t -> int

val generation : t -> int
(** The wrapper generation this session runs ([create]'s argument). *)

val alive : t -> bool
(** [false] once a terminal event was emitted or {!finish}/{!kill}
    ran. *)

val failed : t -> bool
(** [true] once a {e terminal} event (bad symbol, exhausted budget,
    fault) killed the session — a clean {!finish} leaves it [false].
    The healing verdict distinguishes the two. *)

val tokens_fed : t -> int
val splits_emitted : t -> int

val feed : t -> string list -> event list
(** Resolve each symbol name and resume the fiber with it, collecting
    events in order.  Stops at the first terminal event (remaining
    symbols are dropped — the stream is corrupt or the session is
    over-budget; replaying the rest would desynchronize positions).
    Never raises.  A dead session answers [[]]. *)

val feed_page : t -> string -> event list
(** Feed a chunk of raw HTML bytes through the session's incremental
    fused front-end ({!Front.stream_feed}); each symbol the page
    resolves to resumes the fiber exactly as {!feed} would, so page
    sessions and token sessions are indistinguishable to the matcher.
    Chunks may split the page at any byte boundary.  A tag outside the
    alphabet is a terminal {!Bad_symbol} (the same error a [tokens]
    client would get for that name).  Never raises.  Mixing
    {!feed_page} and {!feed} in one session is a client error: symbol
    positions interleave in arrival order, which is meaningless.  A
    dead session answers [[]]. *)

val finish : t -> event list
(** Signal end-of-stream: flush the page front-end if the session
    streamed raw HTML (carried bytes and implicitly closed elements
    emit their final symbols), then signal the matcher and retire the
    session.  Never raises; idempotent. *)

val kill : t -> unit
(** Discard the fiber without end-of-stream (supervisor shutdown of a
    poisoned session).  Never raises; idempotent. *)

(** {1 Page capture (healing)} *)

val capture_chunk : t -> string -> unit
(** Record one raw [page] chunk into the session's bounded capture
    buffer (no-op unless [create ~capture] enabled it).  Deliberately
    independent of liveness: the supervisor records every chunk of a
    heal-observed session even after it died on an earlier one, so the
    quarantined page is the whole document re-synthesis can re-label,
    not the prefix up to the failure.  Exceeding the cap discards the
    capture (the page is shed, not truncated). *)

val captured_page : t -> string option
(** The complete captured page bytes; [None] for token-only sessions,
    capture-disabled sessions, and pages that overflowed the cap. *)

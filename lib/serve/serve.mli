(** The [rexdex serve] daemon: a crash-only streaming extraction
    service over stdin or a Unix socket.

    The process model is deliberately minimal: read newline-delimited
    frames, hand each burst to the {!Supervisor}, write the outgoing
    frames, repeat.  Every failure mode below the process boundary —
    malformed frames, poisoned sessions, exhausted budgets, load
    beyond capacity — is absorbed by the supervisor into structured
    error frames; the {e only} ways out of the loop are end-of-input
    and SIGTERM/SIGINT, and both take the graceful-drain path
    (in-flight sessions finish, new ones are refused, exit 0).

    {b Batching.}  Input is read from the raw fd in large chunks; all
    complete lines of a chunk form one supervisor batch (capped at
    [batch_max]), so a bursty producer gets multi-session parallelism
    over the pool while an interactive one gets per-line latency.  A
    final unterminated line at EOF is processed as a frame.

    {b Socket mode.}  [Socket path] binds a Unix domain socket and
    serves one client connection at a time (accept → serve to EOF →
    drain that client's sessions → accept again).  SIGTERM interrupts
    the accept loop, drains and exits 0; the socket file is removed on
    the way out. *)

type source = Stdin | Socket of string

type config = {
  sup : Supervisor.config;
  source : source;
  batch_max : int;  (** max frames per supervisor batch *)
  print_stats : bool;
      (** on exit, print supervisor/runtime/pool window stats to
          stderr (snapshot deltas since startup — never resets) *)
}

val default_batch_max : int

val run : config -> int
(** Run the daemon until EOF or SIGTERM/SIGINT; answers the process
    exit code (0 after a graceful drain, 2 on a startup failure such
    as an unbindable socket path).
    @raise Extraction.Not_online if the configured matcher cannot
    stream — callers surface it as a structured exit-2 error. *)

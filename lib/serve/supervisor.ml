type config = {
  matcher : Extraction.matcher;
  alpha : Alphabet.t;
  jobs : int;
  max_sessions : int;
  fuel : int option;
  deadline_ms : int option;
  retry_after_ms : int;
  heal : Heal.Manager.t option;
}

let default_retry_after_ms = 50

(* --- process-global counters (the "serve" metrics provider) ---

   Unconditional, like the artifact store's: a daemon's vitals must
   not depend on --trace.  Atomics because the parallel advance pass
   could in principle be extended to count from workers; today all
   increments happen on the supervising domain. *)

let opened_c = Atomic.make 0
let closed_c = Atomic.make 0
let shed_c = Atomic.make 0
let refused_c = Atomic.make 0
let faulted_c = Atomic.make 0
let budget_c = Atomic.make 0
let frames_c = Atomic.make 0
let decode_err_c = Atomic.make 0
let proto_err_c = Atomic.make 0
let latency = Obs.Histogram.make ()

type stats = {
  opened : int;
  closed : int;
  shed : int;
  refused : int;
  faulted : int;
  budget_exhausted : int;
  frames : int;
  decode_errors : int;
  proto_errors : int;
}

let stats () =
  {
    opened = Atomic.get opened_c;
    closed = Atomic.get closed_c;
    shed = Atomic.get shed_c;
    refused = Atomic.get refused_c;
    faulted = Atomic.get faulted_c;
    budget_exhausted = Atomic.get budget_c;
    frames = Atomic.get frames_c;
    decode_errors = Atomic.get decode_err_c;
    proto_errors = Atomic.get proto_err_c;
  }

let frame_latency () = Obs.Histogram.snapshot latency

let pp_stats ppf s =
  Format.fprintf ppf "serve stats:@.";
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "opened" s.opened "closed"
    s.closed;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "shed" s.shed "refused"
    s.refused;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "faulted" s.faulted "budget"
    s.budget_exhausted;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "frames" s.frames
    "decode-errors" s.decode_errors;
  Format.fprintf ppf "  %-12s %8d@." "proto-errors" s.proto_errors

let () =
  Obs.register_provider "serve" (fun () ->
      let open Obs.Json in
      let s = stats () in
      let l = frame_latency () in
      Obj
        [
          ("opened", Int s.opened);
          ("closed", Int s.closed);
          ("shed", Int s.shed);
          ("refused", Int s.refused);
          ("faulted", Int s.faulted);
          ("budget_exhausted", Int s.budget_exhausted);
          ("frames", Int s.frames);
          ("decode_errors", Int s.decode_errors);
          ("proto_errors", Int s.proto_errors);
          ( "frame_latency",
            Obj
              [
                ("count", Int l.Obs.Histogram.count);
                ( "mean_us",
                  Int (Obs.Histogram.mean_ns l / 1000) );
                ( "p99_us",
                  Int (Obs.Histogram.percentile_ns l 0.99 / 1000) );
                ("max_us", Int (l.Obs.Histogram.max_ns / 1000));
              ] );
        ])

(* --- the supervisor --- *)

type t = {
  cfg : config;
  mutable cur_matcher : Extraction.matcher;
  mutable cur_alpha : Alphabet.t;
      (* the current wrapper generation's matcher and alphabet; equal
         to [cfg.matcher]/[cfg.alpha] until a heal swaps them.  Only
         the supervising domain writes, and only at batch boundaries —
         live sessions keep the matcher they were admitted with. *)
  mutable front : Front.table;
      (* one fused front-end token table per daemon, shared read-only
         by every session that streams raw HTML ([page] frames);
         rebuilt on a generation swap *)
  sessions : (int, Session.t) Hashtbl.t;
  mutable next_ordinal : int;
  mutable is_draining : bool;
}

let create cfg =
  if cfg.max_sessions < 1 then
    invalid_arg "Supervisor.create: max_sessions must be positive";
  if cfg.jobs < 1 then invalid_arg "Supervisor.create: jobs must be positive";
  if not (Extraction.matcher_online cfg.matcher) then
    raise
      (Extraction.Not_online
         { expr = Extraction.to_string (Extraction.matcher_expr cfg.matcher) });
  {
    cfg;
    cur_matcher = cfg.matcher;
    cur_alpha = cfg.alpha;
    front = Front.build cfg.alpha;
    sessions = Hashtbl.create 64;
    next_ordinal = 0;
    is_draining = false;
  }

let active_sessions t = Hashtbl.length t.sessions
let set_draining t = t.is_draining <- true
let draining t = t.is_draining

(* A batch slot: what pass 1 decided for one incoming line.  [Advance]
   slots carry the work pass 2 runs on the pool; everything else is
   already a finished answer. *)
type slot =
  | Done of Frame.outgoing list
  | Advance of { session : Session.t; work : work }

and work = W_feed of string list | W_page of string | W_close

(* Events → outgoing frames for one slot of one session.  [None]
   events means the session was already dead when the slot ran
   (poisoned earlier in the same batch). *)
let frames_of_events ~id evs =
  List.map
    (fun ev ->
      match ev with
      | Session.Split pos -> Frame.Split { id; pos }
      | Session.Budget_exhausted r ->
          Atomic.incr budget_c;
          Frame.Err_budget
            { id; stage = r.Guard.stage; spent = r.spent; limit = r.limit }
      | Session.Bad_symbol name ->
          (* counted with the protocol errors so the counters match
             the err=proto frames a client can tally; [faulted] stays
             in lockstep with err=fault *)
          Atomic.incr proto_err_c;
          Frame.Err_proto { id; reason = Printf.sprintf "unknown symbol %S" name }
      | Session.Faulted reason ->
          Atomic.incr faulted_c;
          Frame.Err_fault { id; reason })
    evs

let close_frame s =
  Atomic.incr closed_c;
  Frame.Closed
    {
      id = Session.id s;
      splits = Session.splits_emitted s;
      tokens = Session.tokens_fed s;
    }

let handle_batch t lines =
  let t0 = Obs.now_ns () in
  let n = List.length lines in
  ignore (Atomic.fetch_and_add frames_c n);
  (* --- pass 1: sequential admission in arrival order.

     The session table is updated eagerly for [open]/[close], so it
     doubles as the projection: a close followed by a re-open of the
     same id within one batch yields two distinct session objects,
     each with its own slots. *)
  let slots =
    List.map
      (fun line ->
        match Frame.decode line with
        | Error reason ->
            Atomic.incr decode_err_c;
            Done [ Frame.Err_decode { reason } ]
        | Ok (Frame.Open { id; fuel; deadline_ms }) ->
            if t.is_draining then begin
              Atomic.incr refused_c;
              Done [ Frame.Err_refused { id } ]
            end
            else if Hashtbl.mem t.sessions id then begin
              Atomic.incr proto_err_c;
              Done [ Frame.Err_proto { id; reason = "session already open" } ]
            end
            else if Hashtbl.length t.sessions >= t.cfg.max_sessions then begin
              Atomic.incr shed_c;
              Done
                [
                  Frame.Err_shed
                    { id; retry_after_ms = t.cfg.retry_after_ms };
                ]
            end
            else begin
              let ordinal = t.next_ordinal in
              t.next_ordinal <- ordinal + 1;
              let generation, capture =
                match t.cfg.heal with
                | None -> (0, None)
                | Some m ->
                    ( Heal.Manager.generation m,
                      Some (Heal.Manager.config m).Heal.max_page_bytes )
              in
              let s =
                Session.create ~matcher:t.cur_matcher ~alpha:t.cur_alpha ~id
                  ~ordinal ~front:t.front ~generation ?capture
                  ?fuel:
                    (match fuel with Some _ -> fuel | None -> t.cfg.fuel)
                  ?deadline_ms:
                    (match deadline_ms with
                    | Some _ -> deadline_ms
                    | None -> t.cfg.deadline_ms)
                  ()
              in
              Hashtbl.replace t.sessions id s;
              Atomic.incr opened_c;
              Done [ Frame.Opened { id } ]
            end
        | Ok (Frame.Tokens { id; syms }) -> (
            match Hashtbl.find_opt t.sessions id with
            | None ->
                Atomic.incr proto_err_c;
                Done [ Frame.Err_proto { id; reason = "unknown session" } ]
            | Some s -> Advance { session = s; work = W_feed syms })
        | Ok (Frame.Page { id; html }) -> (
            match Hashtbl.find_opt t.sessions id with
            | None ->
                Atomic.incr proto_err_c;
                Done [ Frame.Err_proto { id; reason = "unknown session" } ]
            | Some s -> Advance { session = s; work = W_page html })
        | Ok (Frame.Close { id }) -> (
            match Hashtbl.find_opt t.sessions id with
            | None ->
                Atomic.incr proto_err_c;
                Done [ Frame.Err_proto { id; reason = "unknown session" } ]
            | Some s ->
                (* the id is free again from the next slot on; the
                   session object itself is finished in pass 2 *)
                Hashtbl.remove t.sessions id;
                Advance { session = s; work = W_close }))
      lines
  in
  (* --- pass 2: parallel advance, one pool item per session.

     Slots are grouped per session object in arrival order; each
     group runs sequentially on its participant (a session is a
     single fiber — order within it is semantics), while distinct
     sessions are independent by construction.  Results land in
     per-slot cells, so emission order never depends on the
     schedule. *)
  let slot_arr = Array.of_list slots in
  let results = Array.make (Array.length slot_arr) [] in
  let groups : (int, (int * work) list ref) Hashtbl.t = Hashtbl.create 16 in
  let group_order = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with
      | Done _ -> ()
      | Advance { session; work } -> (
          let key = Session.ordinal session in
          match Hashtbl.find_opt groups key with
          | Some l -> l := (i, work) :: !l
          | None ->
              Hashtbl.add groups key (ref [ (i, work) ]);
              group_order := (key, session) :: !group_order))
    slot_arr;
  let group_arr = Array.of_list (List.rev !group_order) in
  let run_group g =
    let _, session = group_arr.(g) in
    let slots_for =
      List.rev !(Hashtbl.find groups (Session.ordinal session))
    in
    List.iter
      (fun (i, work) ->
        let id = Session.id session in
        let was_alive = Session.alive session in
        match work with
        | W_feed syms ->
            if was_alive then
              results.(i) <- frames_of_events ~id (Session.feed session syms)
            else begin
              Atomic.incr proto_err_c;
              results.(i) <-
                [ Frame.Err_proto { id; reason = "session is gone" } ]
            end
        | W_page html ->
            (* capture is independent of liveness: the quarantined page
               must be the whole document, not the prefix up to the
               failure (a no-op unless healing enabled it) *)
            Session.capture_chunk session html;
            if was_alive then
              results.(i) <-
                frames_of_events ~id (Session.feed_page session html)
            else begin
              Atomic.incr proto_err_c;
              results.(i) <-
                [ Frame.Err_proto { id; reason = "session is gone" } ]
            end
        | W_close ->
            if was_alive then begin
              let evs = Session.finish session in
              results.(i) <- frames_of_events ~id evs @ [ close_frame session ]
            end
            else begin
              Atomic.incr proto_err_c;
              results.(i) <-
                [ Frame.Err_proto { id; reason = "session is gone" } ]
            end)
      slots_for
  in
  let n_groups = Array.length group_arr in
  if n_groups > 0 then
    Pool.run ~chunk:(Pool.Items 1) ~participants:t.cfg.jobs n_groups run_group;
  (* dead sessions leave the table so their ids free up and drain
     skips them *)
  let dead =
    Hashtbl.fold
      (fun id s acc -> if Session.alive s then acc else id :: acc)
      t.sessions []
  in
  List.iter (Hashtbl.remove t.sessions) dead;
  (* --- healing: verdicts and (maybe) a generation swap.

     Every session that terminated this batch — cleanly or not — yields
     one verdict, observed in [group_arr] (arrival) order on the
     supervising domain, so the detector's trip point is deterministic
     and jobs-invariant.  A successful heal swaps the current
     matcher/alphabet/front for sessions opened from the next frame on
     and appends one [healed] frame after the batch's output; with
     [heal = None] this whole block is inert and the output is
     byte-identical to a build without the heal subsystem. *)
  let heal_frames =
    match t.cfg.heal with
    | None -> []
    | Some m -> (
        Array.iter
          (fun (_, s) ->
            if not (Session.alive s) then
              Heal.Manager.observe m
                ~ok:((not (Session.failed s)) && Session.splits_emitted s > 0)
                ~page:(Session.captured_page s))
          group_arr;
        match Heal.Manager.maybe_heal m with
        | Heal.Manager.No_trip | Heal.Manager.Heal_failed _ -> []
        | Heal.Manager.Healed { generation; used } ->
            let w = Heal.Manager.wrapper m in
            t.cur_matcher <- w.Wrapper.matcher;
            t.cur_alpha <- w.Wrapper.alpha;
            t.front <- Front.build ~abs:w.Wrapper.abs w.Wrapper.alpha;
            [ Frame.Healed { generation; used } ])
  in
  (* --- pass 3: emission in arrival order --- *)
  let out = ref [] in
  Array.iteri
    (fun i slot ->
      match slot with
      | Done frames -> out := List.rev_append frames !out
      | Advance _ -> out := List.rev_append results.(i) !out)
    slot_arr;
  let dt = Obs.now_ns () - t0 in
  for _ = 1 to n do
    Obs.Histogram.observe latency dt
  done;
  List.rev !out @ heal_frames

let handle_line t line = handle_batch t [ line ]

let drain t =
  set_draining t;
  let live =
    Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions []
    |> List.sort (fun a b -> compare (Session.ordinal a) (Session.ordinal b))
  in
  Hashtbl.reset t.sessions;
  List.concat_map
    (fun s ->
      let id = Session.id s in
      let evs = Session.finish s in
      frames_of_events ~id evs @ [ close_frame s ])
    live

(** Zero-dependency observability: spans, counters, histograms, JSON.

    The runtime's expensive stages — subset construction, Hopcroft
    minimization, products, Def 5.1 quotients, cache builds, verdict
    computations, pool batches — are instrumented with {!Span}s, and
    the fuel/state accounting with {!Metric} counters.  Everything is
    {e observational}: no instrumented code path reads anything back
    from this module, so outputs are bit-identical with tracing on or
    off (the differential "obs" oracle layer enforces this).

    {b Disabled path.}  Tracing is off by default.  Every entry point
    opens with a single [Atomic.get] on the global switch and returns
    an immediate [int] / [unit] — no allocation, no mutex, no clock
    read.  Instrumentation sites therefore use the explicit pattern

    {[
      let sp = Obs.Span.enter Obs.Span.Determinize in
      try ... ; Obs.Span.exit_n sp size; result
      with e -> Obs.Span.fail sp; raise e
    ]}

    rather than [Fun.protect] (whose closures would allocate even when
    disabled).  E15 measures the residual cost; CI gates it at 2%.

    {b Domain safety.}  Span records live in per-domain buffers keyed
    by [Domain.DLS]; counters and histograms are atomics.  The only
    cross-domain reads are [records ()], [metrics_json ()] and
    [reset ()], which are snapshot operations: call them from a
    quiesced process (no batch in flight) for exact totals.

    {b Clock.}  [Unix.gettimeofday] (the only clock the dependency
    cone offers — no [mtime]); durations are clamped at zero so a
    wall-clock step backwards cannot produce negative latencies. *)

val set_enabled : bool -> unit
(** Turn tracing/metrics collection on or off (default off). *)

val enabled : unit -> bool

val now_ns : unit -> int
(** Nanoseconds since process start (the span clock), exposed so
    runtime-side consumers (the {!Pool} cost estimator) can time work
    units without growing their own [Unix] dependency.  Wall-clock
    based; treat differences as best-effort durations. *)

(** {1 Packed hit/miss pairs}

    A single [Atomic.t] holding hits in the high 31 bits and misses in
    the low 31 (the {!Pool} deque trick).  [read] is one atomic load,
    so the pair is always {e internally} consistent — unlike two
    separate atomics read sequentially, which can disagree with totals
    under load.  {!Lang_cache} and the {!Runtime} verdict cache count
    through these.  Counting here is unconditional (these are the
    production stats counters, not tracing). *)
module Counter2 : sig
  type t

  val make : unit -> t
  val hit : t -> unit
  val miss : t -> unit

  val read : t -> int * int
  (** [(hits, misses)] from one atomic load: any interleaving of
      concurrent [hit]/[miss] calls yields a pair whose components sum
      to the number of events that happened-before the load. *)

  val reset : t -> unit
end

(** {1 Latency histograms}

    Sixteen log2 buckets over microseconds: bucket 0 holds durations
    below 2 µs, bucket [i] (1 ≤ i ≤ 14) holds [[2^i, 2^(i+1))] µs and
    bucket 15 everything from [2^15] µs (≈ 33 ms) up.  All fields are
    atomics; [snapshot] reads them individually (per-stage histograms
    are only read quiesced). *)
module Histogram : sig
  type t

  type snapshot = {
    count : int;
    total_ns : int;
    max_ns : int;
    buckets : int array; (* length 16 *)
  }

  val make : unit -> t
  val bucket_of_ns : int -> int
  val observe : t -> int -> unit
  val snapshot : t -> snapshot

  val mean_ns : snapshot -> int
  (** Mean observed duration, [0] when the snapshot is empty (never
      divides by zero) and clamped at zero if [total_ns] wrapped. *)

  val delta : earlier:snapshot -> snapshot -> snapshot
  (** [delta ~earlier later] — the window of observations between two
      cumulative snapshots, component-wise [later − earlier] clamped
      at zero.  This is the {e serve-safe} way to report per-session
      or per-window latencies from a long-lived daemon: take a
      snapshot at the window edges and subtract, instead of calling
      [reset] and destroying every concurrent observer's baseline.
      [max_ns] cannot be recovered from cumulative snapshots, so the
      later snapshot's maximum is kept as an upper bound. *)

  val percentile_ns : snapshot -> float -> int
  (** [percentile_ns s q] — an upper bound (the covering bucket's
      edge) for the [q]-th percentile observation, [0 < q <= 1].  The
      open-ended top bucket answers [max_ns], as does any rank landing
      on the final observation ([q = 1.0] in particular — the maximum
      is tracked exactly, so it is the tighter bound); an empty
      snapshot answers [0].  Coarse (log2 buckets) but monotone —
      what the E17 p99 frame-latency gate reads. *)

  val reset : t -> unit
end

(** {1 Spans} *)
module Span : sig
  (** The taxonomy mirrors the paper's cost centres: [Determinize]
      (Thm 5.12 subset constructions), [Minimize], [Product]
      (Lemma 5.9 universality tests run on products), [Quotient]
      (Lemma 5.2 / Def 5.1 constructions), [Cache_build] (a memo miss
      computing its value), [Verdict] (a Thm 5.6 / Cor 5.8 decision),
      [Batch_run] (a pool fan-out), [Front] (a fused raw-HTML →
      symbol-id → path pass over a page), [Heal] (a wrapper
      re-synthesis run of the self-healing loop). *)
  type stage =
    | Determinize
    | Minimize
    | Product
    | Quotient
    | Cache_build
    | Verdict
    | Batch_run
    | Front
    | Heal

  val stage_name : stage -> string

  type t = private int
  (** A span token: the span's id when tracing is on, {!none} when
      off.  An [int], so the disabled path allocates nothing. *)

  val none : t

  val enter : stage -> t
  (** Open a span on the calling domain.  Its parent is the innermost
      span still open on this domain, or the domain's {!ambient}
      span. *)

  val exit : t -> unit
  val exit_n : t -> int -> unit
  (** Close a span; [exit_n] attaches a size note (states built, items
      run).  Closing [none] is a no-op. *)

  val fail : t -> unit
  (** Close a span as failed (exception unwind: exhaustion, injected
      fault).  Spans left open {e between} an [enter] and the matching
      close when an exception unwinds through them are closed as
      failed too. *)

  val ambient : unit -> t
  (** The calling domain's cross-domain parent: what a span opened now
      with an empty open-stack would get as parent. *)

  val set_ambient : t -> unit
  (** Install a parent for spans subsequently opened on this domain
      with an empty stack.  The pool points workers' ambient at the
      submitting batch's [Batch_run] span so worker-side spans nest
      under the batch in the tree. *)

  type record = {
    id : int;
    parent : int; (* -1 for roots *)
    domain : int;
    stage : stage;
    start_ns : int;
    mutable dur_ns : int; (* -1 while open *)
    mutable note : int; (* -1 when absent *)
    mutable failed : bool;
  }

  val records : unit -> record list
  (** Every {e closed} span, across all domains, sorted by id (= open
      order).  Snapshot operation: quiesce first. *)

  val dropped : unit -> int
  (** Spans discarded because a domain's buffer hit its cap. *)

  val latency : stage -> Histogram.snapshot
  (** Closed-span durations per stage, fed by [exit]/[fail]. *)

  val pp_trace : Format.formatter -> unit -> unit
  (** Human sink: a one-line summary and the span tree. *)
end

(** {1 Work counters}

    [charge] shadows {!Guard.charge}: one unit per DFA state
    constructed, attributed to the same stage strings
    ("determinize" | "minimize" | "product" | "quotient"; anything
    else lands in "other").  [budgeted] tells whether a {!Guard}
    budget was active, so fuel spent can be reconciled against
    [Guard.Budget.spent] exactly (the obs oracle does). *)
module Metric : sig
  val charge : stage:string -> budgeted:bool -> int -> unit

  val states_built : unit -> (string * int) list
  val fuel_spent : unit -> (string * int) list
  val total_states : unit -> int
  val total_fuel : unit -> int
end

(** {1 JSON}

    A minimal emitter/inspector (the tree has no [yojson]); output is
    a single line, suitable for [--metrics-json] and bench files. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val member : string -> t -> t
  (** Field of an [Obj], [Null] if absent or not an object. *)

  val path : string list -> t -> t
  val get_int : t -> int
  (** [Int] payload; raises [Invalid_argument] otherwise. *)

  val get_bool : t -> bool

  val get_str : t -> string
  (** [Str] payload; raises [Invalid_argument] otherwise. *)

  val of_string : string -> (t, string) result
  (** Parse one JSON value.  {e Total}: any byte string answers [Ok]
      or [Error] (with an offset-bearing reason), never an exception —
      the serve frame decoder and its fuzz suite rely on this.
      Nesting is capped (64 levels) so adversarial input cannot blow
      the stack; trailing bytes after the value are rejected. *)
end

val register_provider : string -> (unit -> Json.t) -> unit
(** Contribute a top-level field to {!metrics_json} — the runtime
    registers ["cache"], the pool ["pool"].  Re-registering a name
    replaces it.  Providers are emitted sorted by name. *)

val metrics_json : unit -> Json.t
(** One consistent snapshot of everything: schema ["rexdex-obs/1"]
    with [traced], [counters.states_built], [counters.fuel_spent],
    [spans] (per-stage count/total_ms/max_ms/buckets), [spans_dropped]
    and one field per registered provider.  Stable schema — bench and
    CI parse it. *)

val reset : unit -> unit
(** Clear span buffers, histograms and work counters (not providers,
    not the enabled switch).  Snapshot operation: quiesce first. *)

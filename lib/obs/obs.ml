(* Observability layer: spans, counters, histograms, JSON.

   Everything funnels through one global switch so the disabled path —
   the production default — is a single atomic load and a branch at
   every instrumentation site.  Span records live in per-domain
   buffers (Domain.DLS) appended without synchronization; ids come
   from one global atomic so a merged, id-sorted record list replays
   open order across domains. *)

let on = Atomic.make false
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

(* --- clock ---

   Unix.gettimeofday is the only clock in the dependency cone (no
   mtime); nanoseconds relative to module init keep durations in small
   ints.  Wall time can step backwards, so durations clamp at 0. *)

let epoch = Unix.gettimeofday ()
let now_ns () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9)

(* --- JSON --- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Buffer-based (not Format): the output must stay a single line
     regardless of margin settings. *)
  let rec to_buf b = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.3f" f)
        else Buffer.add_string b "null"
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            to_buf b x)
          l;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            to_buf b v)
          kvs;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    to_buf b t;
    Buffer.contents b

  let member k = function
    | Obj kvs -> ( match List.assoc_opt k kvs with Some v -> v | None -> Null)
    | _ -> Null

  let path ks t = List.fold_left (fun acc k -> member k acc) t ks

  let get_int = function
    | Int i -> i
    | _ -> invalid_arg "Obs.Json.get_int: not an Int"

  let get_bool = function
    | Bool b -> b
    | _ -> invalid_arg "Obs.Json.get_bool: not a Bool"

  let get_str = function
    | Str s -> s
    | _ -> invalid_arg "Obs.Json.get_str: not a Str"

  (* Total recursive-descent parser for the serve wire protocol and the
     metrics round-trip tests.  Depth-capped so adversarial nesting
     cannot blow the stack; every failure is [Error], never an
     exception (the frame-decoder fuzz suite holds this to 500 random
     byte lines plus every truncation of a valid frame). *)
  exception Bad of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              (if !pos >= n then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char b '"'
                 | '\\' -> Buffer.add_char b '\\'
                 | '/' -> Buffer.add_char b '/'
                 | 'b' -> Buffer.add_char b '\b'
                 | 'f' -> Buffer.add_char b '\012'
                 | 'n' -> Buffer.add_char b '\n'
                 | 'r' -> Buffer.add_char b '\r'
                 | 't' -> Buffer.add_char b '\t'
                 | 'u' ->
                     if !pos + 4 >= n then fail "truncated \\u escape";
                     let hex = String.sub s (!pos + 1) 4 in
                     let code =
                       try int_of_string ("0x" ^ hex)
                       with _ -> fail "bad \\u escape"
                     in
                     (* BMP code points as UTF-8; enough for a wire
                        protocol whose field names are ASCII *)
                     if code < 0x80 then Buffer.add_char b (Char.chr code)
                     else if code < 0x800 then begin
                       Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
                       Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                     end
                     else begin
                       Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
                       Buffer.add_char b
                         (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                       Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
                     end;
                     pos := !pos + 4
                 | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
              advance ();
              go ()
          | c ->
              advance ();
              Buffer.add_char b c;
              go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
            advance ();
            go ()
        | Some ('.' | 'e' | 'E') ->
            is_float := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      let lit = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt lit with
        | Some i -> Int i
        | None -> fail "bad number"
    in
    let rec parse_value depth =
      if depth > 64 then fail "nesting too deep";
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value (depth + 1) in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else
            let rec elements acc =
              let v = parse_value (depth + 1) in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    match
      let v = parse_value 0 in
      skip_ws ();
      if !pos <> n then fail "trailing bytes after value";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg
end

(* --- packed hit/miss pairs --- *)

module Counter2 = struct
  type t = int Atomic.t

  (* hits high / misses low, 31 bits each (the Pool.Deque packing):
     one fetch_and_add per event, one load per read, so a read can
     never observe a half-updated pair.  2^31 events per side before
     wraparound — the caches count thousands per run. *)
  let half_bits = 31
  let lo_mask = (1 lsl half_bits) - 1
  let make () = Atomic.make 0
  let hit t = ignore (Atomic.fetch_and_add t (1 lsl half_bits))
  let miss t = ignore (Atomic.fetch_and_add t 1)

  let read t =
    let v = Atomic.get t in
    ((v lsr half_bits) land lo_mask, v land lo_mask)

  let reset t = Atomic.set t 0
end

(* --- histograms --- *)

module Histogram = struct
  let n_buckets = 16

  type t = {
    buckets : int Atomic.t array;
    count : int Atomic.t;
    total_ns : int Atomic.t;
    max_ns : int Atomic.t;
  }

  type snapshot = {
    count : int;
    total_ns : int;
    max_ns : int;
    buckets : int array;
  }

  let make () : t =
    {
      buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
      count = Atomic.make 0;
      total_ns = Atomic.make 0;
      max_ns = Atomic.make 0;
    }

  (* bucket 0: [0, 2) µs; bucket i: [2^i, 2^(i+1)) µs; bucket 15 is
     open-ended — floor(log2(µs)) capped to the range. *)
  let bucket_of_ns ns =
    let us = ns / 1000 in
    if us < 2 then 0
    else begin
      let b = ref 0 and v = ref us in
      while !v > 1 do
        incr b;
        v := !v lsr 1
      done;
      min !b (n_buckets - 1)
    end

  let observe (t : t) ns =
    let ns = max 0 ns in
    ignore (Atomic.fetch_and_add t.buckets.(bucket_of_ns ns) 1);
    Atomic.incr t.count;
    ignore (Atomic.fetch_and_add t.total_ns ns);
    let rec bump () =
      let m = Atomic.get t.max_ns in
      if ns > m && not (Atomic.compare_and_set t.max_ns m ns) then bump ()
    in
    bump ()

  let snapshot (t : t) : snapshot =
    {
      count = Atomic.get t.count;
      total_ns = Atomic.get t.total_ns;
      max_ns = Atomic.get t.max_ns;
      buckets = Array.map Atomic.get t.buckets;
    }

  (* Mean duration over the snapshot, 0 when empty — the read-back
     entry point for consumers (the Cost estimator) that must not
     divide by a live count.  total_ns can wrap under adversarial
     observe values; a wrapped (negative) mean is clamped to 0 rather
     than surfaced. *)
  let mean_ns (s : snapshot) =
    if s.count <= 0 then 0 else max 0 (s.total_ns / s.count)

  (* Window = later − earlier, component-wise and clamped at zero: the
     serve-safe alternative to [reset] for per-session / per-window
     metrics inside a long-lived daemon, where zeroing global state
     would corrupt every other observer.  [max_ns] is not a
     difference — the maximum of the window cannot be recovered from
     two cumulative snapshots — so the later snapshot's value is kept
     as an upper bound. *)
  let delta ~(earlier : snapshot) (later : snapshot) : snapshot =
    {
      count = max 0 (later.count - earlier.count);
      total_ns = max 0 (later.total_ns - earlier.total_ns);
      max_ns = later.max_ns;
      buckets =
        Array.init n_buckets (fun i ->
            max 0 (later.buckets.(i) - earlier.buckets.(i)));
    }

  (* Upper bound of the bucket holding the q-th percentile observation
     (0 < q <= 1), in ns; the open-ended top bucket answers [max_ns],
     and so does a rank landing on the final observation (q = 1.0 in
     particular) — the maximum is tracked exactly, so it is the
     tighter bound.  Coarse by construction (log2 buckets) but
     monotone and total — an empty snapshot answers 0. *)
  let percentile_ns (s : snapshot) q =
    if s.count <= 0 then 0
    else begin
      let rank =
        let r = int_of_float (ceil (q *. float_of_int s.count)) in
        if r < 1 then 1 else if r > s.count then s.count else r
      in
      if rank = s.count then s.max_ns
      else
        let rec go i seen =
          if i >= n_buckets then s.max_ns
          else
            let seen = seen + s.buckets.(i) in
            if seen >= rank then
              if i = n_buckets - 1 then s.max_ns
              else
                (* bucket i covers [2^i, 2^(i+1)) µs (bucket 0: [0,2)) *)
                (1 lsl (i + 1)) * 1000
            else go (i + 1) seen
        in
        go 0 0
    end

  let reset (t : t) =
    Array.iter (fun b -> Atomic.set b 0) t.buckets;
    Atomic.set t.count 0;
    Atomic.set t.total_ns 0;
    Atomic.set t.max_ns 0
end

(* --- spans --- *)

module Span = struct
  type stage =
    | Determinize
    | Minimize
    | Product
    | Quotient
    | Cache_build
    | Verdict
    | Batch_run
    | Front
    | Heal

  let n_stages = 9

  let stage_id = function
    | Determinize -> 0
    | Minimize -> 1
    | Product -> 2
    | Quotient -> 3
    | Cache_build -> 4
    | Verdict -> 5
    | Batch_run -> 6
    | Front -> 7
    | Heal -> 8

  let all_stages =
    [
      Determinize;
      Minimize;
      Product;
      Quotient;
      Cache_build;
      Verdict;
      Batch_run;
      Front;
      Heal;
    ]

  let stage_name = function
    | Determinize -> "determinize"
    | Minimize -> "minimize"
    | Product -> "product"
    | Quotient -> "quotient"
    | Cache_build -> "cache-build"
    | Verdict -> "verdict"
    | Batch_run -> "batch"
    | Front -> "front"
    | Heal -> "heal"

  type t = int

  let none = -1

  type record = {
    id : int;
    parent : int;
    domain : int;
    stage : stage;
    start_ns : int;
    mutable dur_ns : int;
    mutable note : int;
    mutable failed : bool;
  }

  let dummy =
    {
      id = -1;
      parent = -1;
      domain = -1;
      stage = Determinize;
      start_ns = 0;
      dur_ns = -1;
      note = -1;
      failed = false;
    }

  (* Per-domain record buffer.  Appends are domain-local; the registry
     (for snapshot reads) is touched once per domain, on first use.
     Buffers cap at [max_records] per domain so a traced long campaign
     degrades to counting drops instead of growing without bound. *)
  type dstate = {
    dom : int;
    mutable recs : record array;
    mutable len : int;
    mutable open_ : int list; (* indexes of open spans, innermost first *)
    mutable amb : int;
  }

  let max_records = 1 lsl 16
  let dropped_c = Atomic.make 0
  let registry_m = Mutex.create ()
  let registry : dstate list ref = ref []

  let dkey : dstate Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        let ds =
          {
            dom = (Domain.self () :> int);
            recs = Array.make 64 dummy;
            len = 0;
            open_ = [];
            amb = none;
          }
        in
        Mutex.protect registry_m (fun () -> registry := ds :: !registry);
        ds)

  let next_id = Atomic.make 0
  let histograms = Array.init n_stages (fun _ -> Histogram.make ())

  let enter stage =
    if not (Atomic.get on) then none
    else
      let ds = Domain.DLS.get dkey in
      if ds.len >= max_records then begin
        Atomic.incr dropped_c;
        none
      end
      else begin
        let id = Atomic.fetch_and_add next_id 1 in
        let parent =
          match ds.open_ with i :: _ -> ds.recs.(i).id | [] -> ds.amb
        in
        let r =
          {
            id;
            parent;
            domain = ds.dom;
            stage;
            start_ns = now_ns ();
            dur_ns = -1;
            note = -1;
            failed = false;
          }
        in
        if ds.len = Array.length ds.recs then begin
          let nr = Array.make (2 * ds.len) dummy in
          Array.blit ds.recs 0 nr 0 ds.len;
          ds.recs <- nr
        end;
        ds.recs.(ds.len) <- r;
        ds.open_ <- ds.len :: ds.open_;
        ds.len <- ds.len + 1;
        id
      end

  let close_rec r ~failed ~note =
    r.dur_ns <- max 0 (now_ns () - r.start_ns);
    r.note <- note;
    r.failed <- failed;
    Histogram.observe histograms.(stage_id r.stage) r.dur_ns

  let close t ~failed ~note =
    if t >= 0 then begin
      let ds = Domain.DLS.get dkey in
      if List.exists (fun i -> ds.recs.(i).id = t) ds.open_ then
        (* Instrumentation is well-bracketed, so t is normally the
           innermost open span; anything above it on the stack was
           left open by an exception unwinding past its handler and is
           closed as failed. *)
        let rec pop = function
          | [] -> []
          | i :: rest ->
              let r = ds.recs.(i) in
              if r.id = t then begin
                close_rec r ~failed ~note;
                rest
              end
              else begin
                close_rec r ~failed:true ~note:(-1);
                pop rest
              end
        in
        ds.open_ <- pop ds.open_
    end

  let exit t = close t ~failed:false ~note:(-1)
  let exit_n t n = close t ~failed:false ~note:n
  let fail t = close t ~failed:true ~note:(-1)
  let ambient () = if Atomic.get on then (Domain.DLS.get dkey).amb else none

  let set_ambient t =
    if Atomic.get on then (Domain.DLS.get dkey).amb <- t

  let dropped () = Atomic.get dropped_c
  let latency stage = Histogram.snapshot histograms.(stage_id stage)

  let records () =
    let dss = Mutex.protect registry_m (fun () -> !registry) in
    let acc = ref [] in
    List.iter
      (fun ds ->
        for i = ds.len - 1 downto 0 do
          let r = ds.recs.(i) in
          if r.dur_ns >= 0 then acc := r :: !acc
        done)
      dss;
    List.sort (fun a b -> compare a.id b.id) !acc

  let reset () =
    Mutex.protect registry_m (fun () ->
        List.iter
          (fun ds ->
            ds.len <- 0;
            ds.open_ <- [];
            ds.amb <- none)
          !registry);
    Atomic.set dropped_c 0;
    Atomic.set next_id 0;
    Array.iter Histogram.reset histograms

  let pp_trace ppf () =
    let recs = records () in
    let domains =
      List.sort_uniq compare (List.map (fun r -> r.domain) recs)
    in
    Format.fprintf ppf "trace: %d spans across %d domain%s (%d dropped)@."
      (List.length recs) (List.length domains)
      (if List.length domains = 1 then "" else "s")
      (dropped ());
    (* children indexed by parent id, kept in id order *)
    let children : (int, record list ref) Hashtbl.t = Hashtbl.create 64 in
    let ids = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.replace ids r.id ()) recs;
    List.iter
      (fun r ->
        let key = if Hashtbl.mem ids r.parent then r.parent else -1 in
        match Hashtbl.find_opt children key with
        | Some l -> l := r :: !l
        | None -> Hashtbl.add children key (ref [ r ]))
      recs;
    let kids id =
      match Hashtbl.find_opt children id with
      | Some l -> List.rev !l
      | None -> []
    in
    let rec pp_node depth r =
      Format.fprintf ppf "%s%s %.3fms" (String.make (2 * depth) ' ')
        (stage_name r.stage)
        (float_of_int r.dur_ns /. 1e6);
      if r.note >= 0 then Format.fprintf ppf " [%d]" r.note;
      if r.failed then Format.fprintf ppf " FAILED";
      Format.fprintf ppf "@.";
      List.iter (pp_node (depth + 1)) (kids r.id)
    in
    List.iter (pp_node 1) (kids (-1))
end

(* --- work counters --- *)

module Metric = struct
  let names = [| "determinize"; "minimize"; "product"; "quotient"; "other" |]
  let n = Array.length names

  let stage_ix = function
    | "determinize" -> 0
    | "minimize" -> 1
    | "product" -> 2
    | "quotient" -> 3
    | _ -> 4

  let states = Array.init n (fun _ -> Atomic.make 0)
  let fuel = Array.init n (fun _ -> Atomic.make 0)

  let charge ~stage ~budgeted k =
    if Atomic.get on then begin
      let i = stage_ix stage in
      ignore (Atomic.fetch_and_add states.(i) k);
      if budgeted then ignore (Atomic.fetch_and_add fuel.(i) k)
    end

  let rows arr =
    Array.to_list (Array.mapi (fun i c -> (names.(i), Atomic.get c)) arr)

  let states_built () = rows states
  let fuel_spent () = rows fuel
  let total arr = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 arr
  let total_states () = total states
  let total_fuel () = total fuel

  let reset () =
    Array.iter (fun c -> Atomic.set c 0) states;
    Array.iter (fun c -> Atomic.set c 0) fuel
end

(* --- snapshot --- *)

let providers_m = Mutex.create ()
let providers : (string * (unit -> Json.t)) list ref = ref []

let register_provider name f =
  Mutex.protect providers_m (fun () ->
      providers := (name, f) :: List.remove_assoc name !providers)

let metrics_json () =
  let counter_obj rows = Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) rows) in
  let ms ns = float_of_int ns /. 1e6 in
  let span_rows =
    List.map
      (fun st ->
        let h = Span.latency st in
        Json.Obj
          [
            ("stage", Json.Str (Span.stage_name st));
            ("count", Json.Int h.Histogram.count);
            ("total_ms", Json.Float (ms h.Histogram.total_ns));
            ("max_ms", Json.Float (ms h.Histogram.max_ns));
            ( "buckets",
              Json.List
                (Array.to_list (Array.map (fun c -> Json.Int c) h.Histogram.buckets))
            );
          ])
      Span.all_stages
  in
  let provided =
    Mutex.protect providers_m (fun () -> !providers)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (name, f) -> (name, f ()))
  in
  Json.Obj
    ([
       ("schema", Json.Str "rexdex-obs/1");
       ("traced", Json.Bool (enabled ()));
       ( "counters",
         Json.Obj
           [
             ("states_built", counter_obj (Metric.states_built ()));
             ("fuel_spent", counter_obj (Metric.fuel_spent ()));
           ] );
       ("spans", Json.List span_rows);
       ("spans_dropped", Json.Int (Span.dropped ()));
     ]
    @ provided)

let reset () =
  Span.reset ();
  Metric.reset ()

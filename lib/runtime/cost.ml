(* Per-item cost estimation and chunk planning for the pool.

   The E14 inversion (speedup_j4 = 0.53 on ~0.2 ms pages) is a
   granularity failure: per-item dispatch through the deques costs a
   fixed few microseconds, so items below that cost lose more to
   scheduling than they gain from parallelism.  The fix is to size the
   scheduler's work units to a break-even budget measured in the same
   clock the work is measured in: an EWMA of observed per-item
   latencies (backed by an always-on Obs histogram for cold read-back),
   scaled by optional caller-provided relative weights, partitioned by
   a pure greedy planner that never merges an expensive giant into a
   larger unit — so the PR-4 skew tolerance survives chunking. *)

(* --- bounds --- *)

(* Estimates are clamped into [min_item_ns, max_item_ns]: the lower
   bound keeps a degenerate (or wrapped) measurement from planning
   one-item chunks for everything, the upper bound keeps a saturated
   histogram from overflowing weight scaling. *)
let min_item_ns = 1_000
let max_item_ns = 1_000_000_000

(* First-ever batch: no histogram, no EWMA.  50 µs sits between the
   "trivial page" and "real page" regimes, so a cold 3000-item batch
   still gets multi-item chunks without starving a 100-item one. *)
let cold_default_ns = 50_000

let clamp ns = max min_item_ns (min max_item_ns ns)

(* --- break-even target --- *)

(* A work unit should amortize dispatch over ~1 ms of work: measured
   deque claim + wakeup cost is a few µs, so 1 ms keeps scheduling
   below 1% overhead while still yielding hundreds of units on the
   corpora that matter (3000 × 0.2 ms ≈ 600 ms ≈ 600 units). *)
let default_target_ns = 1_000_000
let target = Atomic.make default_target_ns
let target_ns () = Atomic.get target
let set_target_ns ns = Atomic.set target (max 1 ns)

(* --- the estimator --- *)

(* Always-on (not gated on Obs.enabled): the estimator is production
   scheduling state, not tracing.  The histogram gives cold-start
   read-back and distribution shape; the EWMA tracks drift cheaply. *)
let hist = Obs.Histogram.make ()

(* 0 = cold.  Races between concurrent updates lose an observation,
   which is fine — this is a smoothed hint, not an accounting
   counter. *)
let ewma = Atomic.make 0

(* Per-item decay factor: one observed item keeps 98% of the current
   estimate.  Updates are per work unit but weighted by the unit's
   item count (0.98^items), so a 30-item chunk moves the estimate
   like 30 single observations and — the important direction — a
   singleton giant moves it like just one: without the weighting, a
   few 10 ms giants would swing a 100 µs estimate far above the
   break-even target and the next batch would degenerate to
   singleton units (re-creating the E14 inversion from the other
   side). *)
let keep_per_item = 0.98

let observe ~items ~total_ns =
  if items > 0 then begin
    let per = clamp (total_ns / items) in
    Obs.Histogram.observe hist per;
    let cur = Atomic.get ewma in
    if cur = 0 then ignore (Atomic.compare_and_set ewma 0 per)
    else begin
      let keep = keep_per_item ** float_of_int (min items 512) in
      let v =
        float_of_int per +. ((float_of_int cur -. float_of_int per) *. keep)
      in
      Atomic.set ewma (clamp (int_of_float v))
    end
  end

let of_histogram (s : Obs.Histogram.snapshot) =
  if s.Obs.Histogram.count <= 0 then None
  else Some (clamp (Obs.Histogram.mean_ns s))

let estimate_ns () =
  let e = Atomic.get ewma in
  if e > 0 then clamp e
  else
    match of_histogram (Obs.Histogram.snapshot hist) with
    | Some ns -> ns
    | None -> cold_default_ns

let reset () =
  Atomic.set ewma 0;
  Obs.Histogram.reset hist

(* --- weight scaling --- *)

(* Caller weights are relative (node counts, byte sizes); rescale so
   their mean is the estimated per-item cost, making them commensurate
   with the planner's nanosecond target.  All-zero weights mean "no
   signal": fall back to uniform.  Products stay within 63-bit range:
   weights and estimates are both clamped well below 2^31. *)
let scale_weights ~estimate weights =
  let n = Array.length weights in
  if n = 0 then [||]
  else begin
    let sum = Array.fold_left (fun a w -> a + max 0 w) 0 weights in
    if sum <= 0 then Array.make n estimate
    else begin
      let mean_w = sum / n in
      if mean_w <= 0 then Array.make n estimate
      else Array.map (fun w -> max 0 w * estimate / mean_w) weights
    end
  end

(* --- the planner --- *)

(* Greedy left-to-right partition of [0..n) into contiguous (lo, hi)
   units: accumulate until the unit reaches [target], and cut a giant
   (cost >= target on its own) as a singleton — flushing whatever
   preceded it first, so order is preserved and a giant never drags
   small neighbours into its unit.  Pure and deterministic: same costs
   and target, same plan. *)
let plan ~target costs =
  let target = max 1 target in
  let n = Array.length costs in
  let chunks = ref [] in
  let lo = ref 0 and acc = ref 0 in
  let flush hi =
    if hi > !lo then begin
      chunks := (!lo, hi) :: !chunks;
      lo := hi;
      acc := 0
    end
  in
  for i = 0 to n - 1 do
    let c = max 0 costs.(i) in
    if c >= target then begin
      flush i;
      flush (i + 1)
    end
    else begin
      acc := !acc + c;
      if !acc >= target then flush (i + 1)
    end
  done;
  flush n;
  Array.of_list (List.rev !chunks)

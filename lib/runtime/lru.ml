type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  mutable cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option; (* most recently used *)
  mutable last : ('k, 'v) node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ~cap =
  {
    cap = max 0 cap;
    table = Hashtbl.create 64;
    first = None;
    last = None;
    hits = 0;
    misses = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.first <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.first;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t k = Hashtbl.mem t.table k

let evict_to_cap t =
  while Hashtbl.length t.table > t.cap do
    match t.last with
    | None -> assert false (* nonempty table implies nonempty list *)
    | Some n ->
        unlink t n;
        Hashtbl.remove t.table n.key
  done

let add t k v =
  if t.cap > 0 then
    match Hashtbl.find_opt t.table k with
    | Some n ->
        n.value <- v;
        unlink t n;
        push_front t n
    | None ->
        let n = { key = k; value = v; prev = None; next = None } in
        Hashtbl.replace t.table k n;
        push_front t n;
        evict_to_cap t

let length t = Hashtbl.length t.table
let capacity t = t.cap

let set_capacity t cap =
  t.cap <- max 0 cap;
  evict_to_cap t

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None

let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

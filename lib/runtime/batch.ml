let recommended_jobs () = Domain.recommended_domain_count ()

let chunk_bounds ~jobs n =
  let jobs = max 1 (min jobs n) in
  let base = n / jobs and extra = n mod jobs in
  Array.init jobs (fun c ->
      let lo = (c * base) + min c extra in
      let hi = lo + base + if c < extra then 1 else 0 in
      (lo, hi))

(* Evaluate one item in isolation: whatever the application raises —
   a worker bug, an injected fault, a Guard.Exhausted from a per-item
   budget — becomes this item's Error cell and the worker moves on to
   the next index.  The armed-in-tests-only fault probe sits inside the
   handler so an injected failure degrades exactly like a real one. *)
let eval_item f i x =
  match
    Guard_faults.point_indexed Guard_faults.Batch_item i;
    f x
  with
  | v -> Ok v
  | exception e -> Error e

(* Thin client of the persistent pool: results are written to distinct
   indices of one array, so the result is total, in input order, and
   identical for every job count — the pool only decides which domain
   executes which index, never what lands where.  eval_item never
   raises, which is the pool's run_item contract. *)
let run_isolated ~jobs ?cost ?chunk f arr =
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then Array.mapi (fun i x -> eval_item f i x) arr
  else begin
    let results = Array.make n (Error Exit) in
    (* per-item relative weights for the Auto planner; purely a
       scheduling hint, never part of the result *)
    let costs = Option.map (fun h -> Array.map h arr) cost in
    Pool.run ?costs ?chunk ~participants:jobs n (fun i ->
        results.(i) <- eval_item f i arr.(i));
    results
  end

let map_isolated ?jobs ?cost ?chunk f xs =
  let jobs =
    match jobs with Some j -> max 1 j | None -> recommended_jobs ()
  in
  let results = run_isolated ~jobs ?cost ?chunk f (Array.of_list xs) in
  Array.to_list
    (Array.map
       (function Ok v -> Ok v | Error e -> Error (Printexc.to_string e))
       results)

let map ?jobs ?cost ?chunk f xs =
  let jobs =
    match jobs with Some j -> max 1 j | None -> recommended_jobs ()
  in
  let results = run_isolated ~jobs ?cost ?chunk f (Array.of_list xs) in
  Array.iter (function Error e -> raise e | Ok _ -> ()) results;
  Array.to_list (Array.map (function Ok v -> v | Error _ -> assert false) results)

let recommended_jobs () = Domain.recommended_domain_count ()

let chunk_bounds ~jobs n =
  let jobs = max 1 (min jobs n) in
  let base = n / jobs and extra = n mod jobs in
  Array.init jobs (fun c ->
      let lo = (c * base) + min c extra in
      let hi = lo + base + if c < extra then 1 else 0 in
      (lo, hi))

let map ?jobs f xs =
  let jobs =
    match jobs with Some j -> max 1 j | None -> recommended_jobs ()
  in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let jobs = min jobs n in
  if jobs <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let bounds = chunk_bounds ~jobs n in
    (* Distinct chunks write distinct indices; Domain.join publishes the
       writes to the joining domain. *)
    let work c () =
      let lo, hi = bounds.(c) in
      match
        for i = lo to hi - 1 do
          results.(i) <- Some (f arr.(i))
        done
      with
      | () -> None
      | exception e -> Some e
    in
    let spawned = Array.init (jobs - 1) (fun c -> Domain.spawn (work (c + 1))) in
    let own = work 0 () in
    let joined = Array.map Domain.join spawned in
    (match own with
    | Some e -> raise e
    | None ->
        Array.iter (function Some e -> raise e | None -> ()) joined);
    Array.to_list (Array.map Option.get results)
  end

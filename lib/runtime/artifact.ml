type t = {
  alpha : Alphabet.t;
  abstraction : string;
  expr : Extraction.t;
  left_dfa : Dfa.t;
  right_dfa : Dfa.t;
  right_rev_dfa : Dfa.t;
  generation : int;
}

let magic = "rxc!"
let format_version = 1

type error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Checksum_mismatch
  | Malformed of string

let error_to_string = function
  | Truncated -> "truncated"
  | Bad_magic -> "bad-magic"
  | Bad_version v -> Printf.sprintf "bad-version %d" v
  | Checksum_mismatch -> "checksum-mismatch"
  | Malformed msg -> "malformed: " ^ msg

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

(* --- statistics --- *)

type stats = { saved : int; loaded : int; rejected : int }

let saved_c = Atomic.make 0
let loaded_c = Atomic.make 0
let rejected_c = Atomic.make 0

let stats () =
  {
    saved = Atomic.get saved_c;
    loaded = Atomic.get loaded_c;
    rejected = Atomic.get rejected_c;
  }

let reset_stats () =
  Atomic.set saved_c 0;
  Atomic.set loaded_c 0;
  Atomic.set rejected_c 0

let () =
  Obs.register_provider "artifact" (fun () ->
      let s = stats () in
      Obs.Json.Obj
        [
          ("saved", Obs.Json.Int s.saved);
          ("loaded", Obs.Json.Int s.loaded);
          ("rejected", Obs.Json.Int s.rejected);
        ])

(* --- CRC-32 (IEEE 802.3, the zlib polynomial) ---

   Hand-rolled table-driven implementation: the dependency cone has no
   checksum library, and 32-bit arithmetic fits comfortably in OCaml's
   63-bit ints (every intermediate stays non-negative). *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* --- encoding --- *)

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_dfa buf (d : Dfa.t) =
  put_u32 buf d.Dfa.alpha_size;
  put_u32 buf d.Dfa.size;
  put_u32 buf d.Dfa.start;
  (* finals as packed bits, LSB-first within each byte *)
  let nbytes = (d.Dfa.size + 7) / 8 in
  let bytes = Bytes.make nbytes '\000' in
  Array.iteri
    (fun q f ->
      if f then
        Bytes.set bytes (q lsr 3)
          (Char.chr (Char.code (Bytes.get bytes (q lsr 3)) lor (1 lsl (q land 7)))))
    d.Dfa.finals;
  Buffer.add_bytes buf bytes;
  Array.iter (fun q -> put_u32 buf q) d.Dfa.delta

let to_bytes t =
  let payload = Buffer.create 1024 in
  let names = Alphabet.names t.alpha in
  put_u32 payload (List.length names);
  List.iter (put_string payload) names;
  put_string payload t.abstraction;
  put_string payload (Extraction.to_string t.expr);
  put_u32 payload t.expr.Extraction.mark;
  put_dfa payload t.left_dfa;
  put_dfa payload t.right_dfa;
  put_dfa payload t.right_rev_dfa;
  (* healing-generation stamp: a trailing u32, present only when
     non-zero.  Generation-0 artifacts therefore encode byte-for-byte
     as format 1 always did — the golden-corpus identity gate and every
     pre-healing reader stay valid. *)
  if t.generation > 0 then put_u32 payload t.generation;
  let payload = Buffer.contents payload in
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  put_u32 buf format_version;
  put_u32 buf (String.length payload);
  put_u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* --- decoding ---

   Every read is bounds-checked against the payload; every structural
   invariant Dfa.validate would establish is enforced field-by-field,
   so a successfully decoded DFA is licensed for unsafe_step without a
   separate validation pass.  Failures raise the local [Fail] which
   [of_bytes] converts to a result — the decoder is total. *)

exception Fail of error

let fail e = raise (Fail e)
let malformed fmt = Printf.ksprintf (fun s -> fail (Malformed s)) fmt

let get_u32 s pos =
  if !pos + 4 > String.length s then malformed "payload ends inside an integer";
  let b i = Char.code s.[!pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  pos := !pos + 4;
  v

let get_string s pos =
  let n = get_u32 s pos in
  if !pos + n > String.length s then malformed "payload ends inside a string";
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

let get_dfa ~expect_alpha s pos =
  let alpha_size = get_u32 s pos in
  if alpha_size <> expect_alpha then
    malformed "DFA alphabet size %d does not match the %d-symbol alphabet"
      alpha_size expect_alpha;
  let size = get_u32 s pos in
  if size <= 0 then malformed "DFA has no states";
  let start = get_u32 s pos in
  if start >= size then malformed "DFA start state out of range";
  let nbytes = (size + 7) / 8 in
  if !pos + nbytes > String.length s then
    malformed "payload ends inside a finals bitset";
  let finals =
    Array.init size (fun q ->
        Char.code s.[!pos + (q lsr 3)] lsr (q land 7) land 1 = 1)
  in
  pos := !pos + nbytes;
  (* the remaining-byte bound caps size*alpha_size before the array is
     allocated, so a crafted header cannot demand a giant allocation *)
  let cells = size * alpha_size in
  if !pos + (4 * cells) > String.length s then
    malformed "payload ends inside a transition array";
  let delta = Array.make (max 1 cells) 0 in
  (* explicit loop: the reads advance [pos], so order matters (Array.init
     applies its function in unspecified order) *)
  for i = 0 to cells - 1 do
    let q = get_u32 s pos in
    if q >= size then malformed "DFA transition target out of range";
    delta.(i) <- q
  done;
  let delta = if cells = 0 then [||] else delta in
  { Dfa.alpha_size; size; start; finals; delta }

let decode bytes =
  let n = String.length bytes in
  if n < 4 then fail Truncated;
  if String.sub bytes 0 4 <> magic then fail Bad_magic;
  if n < 16 then fail Truncated;
  let pos = ref 4 in
  let version = get_u32 bytes pos in
  if version <> format_version then fail (Bad_version version);
  let payload_len = get_u32 bytes pos in
  let crc = get_u32 bytes pos in
  if 16 + payload_len > n then fail Truncated;
  if 16 + payload_len < n then malformed "trailing bytes after the payload";
  let payload = String.sub bytes 16 payload_len in
  if crc32 payload <> crc then fail Checksum_mismatch;
  let pos = ref 0 in
  let n_names = get_u32 payload pos in
  (* each name costs at least its 4-byte length prefix *)
  if n_names > (String.length payload - !pos) / 4 then
    malformed "alphabet claims more names than the payload can hold";
  let names = ref [] in
  for _ = 1 to n_names do
    names := get_string payload pos :: !names
  done;
  let names = List.rev !names in
  let alpha =
    match Alphabet.make names with
    | a -> a
    | exception Invalid_argument msg -> malformed "bad alphabet: %s" msg
  in
  let abstraction = get_string payload pos in
  let expr_text = get_string payload pos in
  let mark = get_u32 payload pos in
  if mark >= Alphabet.size alpha then malformed "mark symbol out of range";
  let expr =
    match Extraction.parse alpha expr_text with
    | e -> e
    | exception Regex_parse.Parse_error (msg, _) ->
        malformed "unparseable expression: %s" msg
    | exception Invalid_argument msg ->
        malformed "unparseable expression: %s" msg
  in
  if expr.Extraction.mark <> mark then
    malformed "stored mark disagrees with the expression";
  let expect_alpha = Alphabet.size alpha in
  let left_dfa = get_dfa ~expect_alpha payload pos in
  let right_dfa = get_dfa ~expect_alpha payload pos in
  let right_rev_dfa = get_dfa ~expect_alpha payload pos in
  (* the optional generation stamp is exactly one trailing u32; any
     other leftover is still malformed *)
  let generation =
    match String.length payload - !pos with
    | 0 -> 0
    | 4 ->
        let g = get_u32 payload pos in
        if g = 0 then malformed "explicit generation 0 (must be omitted)";
        g
    | _ -> malformed "trailing bytes inside the payload"
  in
  { alpha; abstraction; expr; left_dfa; right_dfa; right_rev_dfa; generation }

let of_bytes bytes =
  match decode bytes with
  | t ->
      Atomic.incr loaded_c;
      Ok t
  | exception Fail e ->
      Atomic.incr rejected_c;
      Error e

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | bytes -> of_bytes bytes
  | exception Sys_error msg ->
      Atomic.incr rejected_c;
      Error (Malformed ("cannot read artifact: " ^ msg))

(* --- producing --- *)

let of_extraction ?(abstraction = "tags") ?(generation = 0) expr =
  if generation < 0 then
    invalid_arg "Artifact.of_extraction: negative generation";
  (* The wire form of the expression is its concrete syntax, and the
     parser's smart constructors normalize as they build — so package
     the parse of the rendering, making save∘load the identity on the
     artifact (and the seeded cache keys the ones a loading process
     will actually look up). *)
  let expr = Extraction.parse expr.Extraction.alpha (Extraction.to_string expr) in
  let left = Extraction.left_lang expr in
  let right = Extraction.right_lang expr in
  let left_dfa = Lang.dfa left in
  let right_dfa = Lang.dfa right in
  let right_rev_dfa = Lang.dfa (Lang.reverse right) in
  (* the save-side half of the checksum licence: only DFAs that passed
     validate are ever serialized *)
  Dfa.validate left_dfa;
  Dfa.validate right_dfa;
  Dfa.validate right_rev_dfa;
  {
    alpha = expr.Extraction.alpha;
    abstraction;
    expr;
    left_dfa;
    right_dfa;
    right_rev_dfa;
    generation;
  }

let save t path =
  let bytes = to_bytes t in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc bytes);
  Atomic.incr saved_c

(* --- wiring into the runtime --- *)

let matcher t =
  Extraction.matcher_of_validated t.expr ~left_dfa:t.left_dfa
    ~right_rev_dfa:t.right_rev_dfa

let seed_caches t =
  let names = Alphabet.names t.alpha in
  let _, left_id = Regex_hc.intern t.expr.Extraction.left in
  let _, right_id = Regex_hc.intern t.expr.Extraction.right in
  Lang_cache.seed (Lang_cache.K_regex (names, left_id)) t.left_dfa;
  Lang_cache.seed (Lang_cache.K_regex (names, right_id)) t.right_dfa;
  Lang_cache.seed (Lang_cache.K_unop ("reverse", t.right_dfa)) t.right_rev_dfa

let equal a b =
  Alphabet.names a.alpha = Alphabet.names b.alpha
  && a.abstraction = b.abstraction
  && Extraction.to_string a.expr = Extraction.to_string b.expr
  && a.expr.Extraction.mark = b.expr.Extraction.mark
  && a.generation = b.generation
  && Dfa.equal_structure a.left_dfa b.left_dfa
  && Dfa.equal_structure a.right_dfa b.right_dfa
  && Dfa.equal_structure a.right_rev_dfa b.right_rev_dfa

(** Per-item cost estimation and chunk planning for the {!Pool}.

    Work-stealing with one deque slot per item pays a fixed dispatch
    cost per item; on sub-millisecond pages that cost dominates and
    parallel runs invert (E14: jobs=4 at 0.53× jobs=1).  This module
    supplies the two pure ingredients of the fix:

    - an {e estimator} of per-item cost — an EWMA over observed chunk
      latencies, backed by an always-on {!Obs.Histogram} for cold
      read-back, clamped into [[min_item_ns, max_item_ns]] and
      defaulting to {!cold_default_ns} before any observation — and

    - a {e planner}: a pure, deterministic greedy partition of a cost
      vector into contiguous units of at least a break-even
      {!target_ns} total cost, with any single item at or above the
      target cut as a singleton unit so skew tolerance survives.

    The estimator is process-global shared mutable state (atomics);
    the planner and {!scale_weights} are pure functions, exposed so
    tests can exercise them without a pool. *)

(** {1 Bounds and defaults} *)

val min_item_ns : int
(** Estimate floor (1 µs): keeps degenerate measurements from
    planning one-item units. *)

val max_item_ns : int
(** Estimate ceiling (1 s): keeps saturated measurements from
    overflowing weight scaling. *)

val cold_default_ns : int
(** Estimate used before any observation (50 µs). *)

val target_ns : unit -> int
val set_target_ns : int -> unit
(** Break-even total cost per work unit (default 1 ms, floor 1). *)

(** {1 The estimator} *)

val observe : items:int -> total_ns:int -> unit
(** Feed one executed work unit: [total_ns] wall time over [items]
    items.  [items <= 0] is ignored.  Thread-safe; racy updates may
    drop an observation (it is a smoothed hint, not an accounting
    counter). *)

val estimate_ns : unit -> int
(** Current per-item cost estimate: the EWMA when warm, the histogram
    mean when only the histogram has data, {!cold_default_ns} when
    cold.  Always within [[min_item_ns, max_item_ns]]; never raises
    and never divides by zero. *)

val of_histogram : Obs.Histogram.snapshot -> int option
(** Pure read-back: the clamped mean of a latency snapshot, [None]
    when the snapshot is empty.  Exposed for cold-start unit tests
    (empty / single-bucket / saturated histograms). *)

val reset : unit -> unit
(** Forget all observations (back to cold).  {!Runtime.reset} calls
    this so benchmark repetitions start from identical state. *)

(** {1 Pure planning} *)

val scale_weights : estimate:int -> int array -> int array
(** [scale_weights ~estimate w] — rescale relative weights (node
    counts, byte sizes) so their mean is [estimate] nanoseconds,
    making them commensurate with {!plan}'s target.  All-zero or
    empty-sum weights yield a uniform [estimate] vector.  Negative
    weights are treated as 0. *)

val plan : target:int -> int array -> (int * int) array
(** [plan ~target costs] — partition [0..Array.length costs) into
    contiguous half-open [(lo, hi)] units, greedily accumulating until
    a unit reaches [target] total cost.  Guarantees, for every input:
    the units are a partition of the full index range in increasing
    order (every index covered exactly once); any item with
    [costs.(i) >= target] forms a singleton unit; and the plan is a
    pure function of [(target, costs)] — deterministic across runs and
    schedules.  [target] is floored at 1; negative costs count as 0. *)

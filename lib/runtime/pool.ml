(* Persistent work-stealing domain pool, granularity-aware.

   One set of worker domains is spawned lazily on first parallel batch
   and reused for every batch after it — the Domain.spawn/join cost
   that made per-call chunking slower at jobs=4 than jobs=1 (E12) is
   paid once per process, not once per batch.

   Scheduling is over *work units*, not raw items: the Cost planner
   groups small items into contiguous chunks worth roughly a
   break-even budget of wall time, so per-unit dispatch (a CAS claim,
   possibly a steal) is amortized over enough work to win — the E14
   inversion (jobs=4 slower than jobs=1 on ~0.2 ms pages) was exactly
   this dispatch cost paid per item.  Items at or above the break-even
   cost stay singleton units, so the PR-4 skew tolerance survives: an
   adversarial giant delays only its claimer, never a merged chunk.
   Units are seeded into per-participant deques as contiguous ranges; a
   participant that drains its own range steals from the back of the
   others.

   When the whole batch plans below break-even (a single unit), the
   pool degrades to a counted sequential run on the submitter: same
   results, same stats visibility, none of the wakeup cost. *)

(* A deque over a fixed unit-index range [lo, hi).  No units are ever
   pushed after creation (batches do not spawn work), so the deque is
   just two cursors moving toward each other, packed into one Atomic
   int (front in the high bits, back in the low bits) so a claim is a
   single CAS and every unit is claimed exactly once.  Ranges are
   bounded by the batch size, far below the 2^31 cursor ceiling. *)
module Deque = struct
  type t = int Atomic.t

  let cursor_bits = 31
  let mask = (1 lsl cursor_bits) - 1
  let make ~lo ~hi : t = Atomic.make ((lo lsl cursor_bits) lor hi)

  (* owner end *)
  let rec take_front (t : t) =
    let s = Atomic.get t in
    let f = s lsr cursor_bits and b = s land mask in
    if f >= b then None
    else if Atomic.compare_and_set t s (((f + 1) lsl cursor_bits) lor b) then
      Some f
    else take_front t

  (* thief end *)
  let rec steal_back (t : t) =
    let s = Atomic.get t in
    let f = s lsr cursor_bits and b = s land mask in
    if f >= b then None
    else if Atomic.compare_and_set t s ((f lsl cursor_bits) lor (b - 1)) then
      Some (b - 1)
    else steal_back t
end

type chunking = Auto | Items of int

type job = {
  deques : Deque.t array; (* one per participant, over unit indices *)
  plan : (int * int) array; (* unit u covers item indices [lo, hi) *)
  participants : int;
  run_item : int -> unit; (* contract: must not raise *)
  remaining : int Atomic.t; (* units not yet executed *)
  done_m : Mutex.t;
  done_cv : Condition.t;
  obs_parent : Obs.Span.t;
      (* the submitter's Batch_run span: workers adopt it as their
         ambient parent so worker-side spans nest under the batch *)
}

type t = {
  m : Mutex.t; (* protects gen / current / shutdown *)
  cv : Condition.t;
  mutable gen : int;
  mutable current : job option;
  mutable shutdown : bool;
  mutable workers : unit Domain.t list;
  mutable n_workers : int;
  submit : Mutex.t; (* serializes whole-pool batch submissions *)
}

let pool =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    gen = 0;
    current = None;
    shutdown = false;
    workers = [];
    n_workers = 0;
    submit = Mutex.create ();
  }

(* --- statistics --- *)

let batches_c = Atomic.make 0
let items_c = Atomic.make 0
let steals_c = Atomic.make 0
let chunks_c = Atomic.make 0
let seq_fallbacks_c = Atomic.make 0

type stats = {
  workers : int;
  batches : int;
  items : int;
  steals : int;
  chunks : int;
  seq_fallbacks : int;
}

let stats () =
  {
    workers = pool.n_workers;
    batches = Atomic.get batches_c;
    items = Atomic.get items_c;
    steals = Atomic.get steals_c;
    chunks = Atomic.get chunks_c;
    seq_fallbacks = Atomic.get seq_fallbacks_c;
  }

let reset_stats () =
  Atomic.set batches_c 0;
  Atomic.set items_c 0;
  Atomic.set steals_c 0;
  Atomic.set chunks_c 0;
  Atomic.set seq_fallbacks_c 0

let pp_stats ppf s =
  Format.fprintf ppf "pool stats:@.";
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "workers" s.workers "batches"
    s.batches;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "items" s.items "steals"
    s.steals;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "chunks" s.chunks
    "seq-fallbacks" s.seq_fallbacks

(* Counter-wise window between two snapshots; [workers] is a gauge,
   not a counter, so the later value is kept as-is. *)
let delta_stats ~earlier later =
  let d a b = max 0 (b - a) in
  {
    workers = later.workers;
    batches = d earlier.batches later.batches;
    items = d earlier.items later.items;
    steals = d earlier.steals later.steals;
    chunks = d earlier.chunks later.chunks;
    seq_fallbacks = d earlier.seq_fallbacks later.seq_fallbacks;
  }

(* --- the scheduler --- *)

(* Set while a domain is executing pool work: a nested [run] from
   inside an item must not wait on the pool it is part of, so it
   degrades to the sequential path (deadlock-free by construction). *)
let in_worker : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let finish_unit j =
  (* last decrement wakes the submitter *)
  if Atomic.fetch_and_add j.remaining (-1) = 1 then begin
    Mutex.lock j.done_m;
    Condition.broadcast j.done_cv;
    Mutex.unlock j.done_m
  end

let execute j u =
  (* run one work unit: every item in its contiguous range, each under
     its own handler — run_item must not raise (Batch captures
     per-item exceptions below this layer), but if it somehow does the
     rest of the unit still runs and the unit still counts as executed,
     or the submitter would wait forever.  The unit's wall time feeds
     the cost estimator, so granularity self-corrects batch over
     batch. *)
  let lo, hi = j.plan.(u) in
  let t0 = Obs.now_ns () in
  for i = lo to hi - 1 do
    try j.run_item i with _ -> ()
  done;
  Cost.observe ~items:(hi - lo) ~total_ns:(Obs.now_ns () - t0);
  ignore (Atomic.fetch_and_add items_c (hi - lo));
  Atomic.incr chunks_c;
  finish_unit j

(* Participant p: drain the own deque from the front, then steal from
   the back of the others (round-robin from the right neighbour,
   staying on a victim until it dries).  All deques empty means every
   unit has been claimed — nothing left to do for this participant. *)
let work j p =
  let dq = j.deques.(p) in
  let rec own () =
    match Deque.take_front dq with
    | Some u ->
        execute j u;
        own ()
    | None -> scan 1
  and scan k =
    if k < j.participants then
      match Deque.steal_back j.deques.((p + k) mod j.participants) with
      | Some u ->
          Atomic.incr steals_c;
          execute j u;
          scan k
      | None -> scan (k + 1)
  in
  let flag = Domain.DLS.get in_worker in
  flag := true;
  let saved_ambient = Obs.Span.ambient () in
  Obs.Span.set_ambient j.obs_parent;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_ambient saved_ambient;
      flag := false)
    (fun () -> own ())

let rec worker_loop w last_gen =
  Mutex.lock pool.m;
  while pool.gen = last_gen && not pool.shutdown do
    Condition.wait pool.cv pool.m
  done;
  let gen = pool.gen and job = pool.current and stop = pool.shutdown in
  Mutex.unlock pool.m;
  if not stop then begin
    (* worker w is participant w+1; spare workers sit the job out so
       the effective parallelism honors the requested job count *)
    (match job with
    | Some j when w + 1 < j.participants -> work j (w + 1)
    | _ -> ());
    worker_loop w gen
  end

let shutdown () =
  Mutex.lock pool.m;
  pool.shutdown <- true;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.workers;
  pool.workers <- [];
  pool.n_workers <- 0;
  Mutex.lock pool.m;
  pool.shutdown <- false;
  Mutex.unlock pool.m

let at_exit_registered = ref false

(* called under pool.submit; gen is stable because submissions are
   serialized, so a fresh worker's last_gen can be read lock-free *)
let ensure_workers k =
  if pool.n_workers < k then begin
    if not !at_exit_registered then begin
      at_exit_registered := true;
      at_exit shutdown
    end;
    for w = pool.n_workers to k - 1 do
      let gen0 = pool.gen in
      pool.workers <- Domain.spawn (fun () -> worker_loop w gen0) :: pool.workers
    done;
    pool.n_workers <- k
  end

let max_participants = max 16 (Domain.recommended_domain_count ())

let sequential n run_item =
  for i = 0 to n - 1 do
    run_item i
  done

(* The unit partition for a batch.  [Items k] is the manual override:
   fixed-size blocks of [k] ([Items 1] reproduces the PR-4 per-item
   scheduling exactly).  [Auto] scales the caller's relative weights
   (or a uniform vector) by the current per-item estimate and plans to
   the break-even target — giants come out singleton, small items come
   out grouped. *)
let make_plan ~chunk ~costs n =
  match chunk with
  | Items k ->
      if k < 1 then invalid_arg "Pool.run: chunk item count must be >= 1";
      let units = (n + k - 1) / k in
      Array.init units (fun u -> (u * k, min n ((u + 1) * k)))
  | Auto ->
      let estimate = Cost.estimate_ns () in
      let cost_ns =
        match costs with
        | Some w -> Cost.scale_weights ~estimate w
        | None -> Array.make n estimate
      in
      Cost.plan ~target:(Cost.target_ns ()) cost_ns

let run ?costs ?(chunk = Auto) ~participants n run_item =
  (match costs with
  | Some w when Array.length w <> n ->
      invalid_arg "Pool.run: costs length must equal the item count"
  | _ -> ());
  if n > 0 then begin
    let participants = min (min participants n) max_participants in
    if
      participants <= 1
      || !(Domain.DLS.get in_worker)
      || n >= Deque.mask
      || not (Mutex.try_lock pool.submit)
    then sequential n run_item
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock pool.submit)
        (fun () ->
          let plan = make_plan ~chunk ~costs n in
          let units = Array.length plan in
          if units < 2 then begin
            (* Below break-even: the whole batch is one work unit, so
               waking workers would cost more than it buys.  Run it on
               the submitter — counted (stats and the Batch_run span
               still see the batch) and timed (the estimator still
               learns), unlike the uncounted guard paths above. *)
            Atomic.incr batches_c;
            Atomic.incr seq_fallbacks_c;
            ignore (Atomic.fetch_and_add items_c n);
            let sp = Obs.Span.enter Obs.Span.Batch_run in
            try
              let t0 = Obs.now_ns () in
              for i = 0 to n - 1 do
                try run_item i with _ -> ()
              done;
              Cost.observe ~items:n ~total_ns:(Obs.now_ns () - t0);
              Obs.Span.exit_n sp n
            with e ->
              Obs.Span.fail sp;
              raise e
          end
          else begin
            let participants = min participants units in
            ensure_workers (participants - 1);
            let sp = Obs.Span.enter Obs.Span.Batch_run in
            try
              (* same contiguous seeding as the old per-item deques,
                 over unit indices — the deques only change who
                 finishes a range, never which result index an item
                 writes to *)
              let base = units / participants
              and extra = units mod participants in
              let deques =
                Array.init participants (fun c ->
                    let lo = (c * base) + min c extra in
                    let hi = lo + base + if c < extra then 1 else 0 in
                    Deque.make ~lo ~hi)
              in
              let job =
                {
                  deques;
                  plan;
                  participants;
                  run_item;
                  remaining = Atomic.make units;
                  done_m = Mutex.create ();
                  done_cv = Condition.create ();
                  obs_parent = sp;
                }
              in
              Atomic.incr batches_c;
              Mutex.lock pool.m;
              pool.current <- Some job;
              pool.gen <- pool.gen + 1;
              Condition.broadcast pool.cv;
              Mutex.unlock pool.m;
              (* the submitter is participant 0: it works too, so a
                 batch always completes even if every worker is
                 lagging *)
              work job 0;
              Mutex.lock job.done_m;
              while Atomic.get job.remaining > 0 do
                Condition.wait job.done_cv job.done_m
              done;
              Mutex.unlock job.done_m;
              Obs.Span.exit_n sp n
            with e ->
              Obs.Span.fail sp;
              raise e
          end)
  end

let size () = pool.n_workers

(* Pool traffic as a metrics-snapshot provider, mirroring [stats]. *)
let () =
  Obs.register_provider "pool" (fun () ->
      let open Obs.Json in
      let s = stats () in
      Obj
        [
          ("workers", Int s.workers);
          ("batches", Int s.batches);
          ("items", Int s.items);
          ("steals", Int s.steals);
          ("chunks", Int s.chunks);
          ("seq_fallbacks", Int s.seq_fallbacks);
        ])

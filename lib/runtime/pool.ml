(* Persistent work-stealing domain pool.

   One set of worker domains is spawned lazily on first parallel batch
   and reused for every batch after it — the Domain.spawn/join cost
   that made per-call chunking slower at jobs=4 than jobs=1 (E12) is
   paid once per process, not once per batch.  Items are scheduled
   through per-participant deques seeded with contiguous ranges; a
   participant that drains its own range steals from the back of the
   others, so one adversarial item skews only its claimer, never a
   whole static chunk. *)

(* A deque over a fixed index range [lo, hi).  No items are ever
   pushed after creation (batches do not spawn work), so the deque is
   just two cursors moving toward each other, packed into one Atomic
   int (front in the high bits, back in the low bits) so a claim is a
   single CAS and every index is claimed exactly once.  Ranges are
   bounded by the batch size, far below the 2^31 cursor ceiling. *)
module Deque = struct
  type t = int Atomic.t

  let cursor_bits = 31
  let mask = (1 lsl cursor_bits) - 1
  let make ~lo ~hi : t = Atomic.make ((lo lsl cursor_bits) lor hi)

  (* owner end *)
  let rec take_front (t : t) =
    let s = Atomic.get t in
    let f = s lsr cursor_bits and b = s land mask in
    if f >= b then None
    else if Atomic.compare_and_set t s (((f + 1) lsl cursor_bits) lor b) then
      Some f
    else take_front t

  (* thief end *)
  let rec steal_back (t : t) =
    let s = Atomic.get t in
    let f = s lsr cursor_bits and b = s land mask in
    if f >= b then None
    else if Atomic.compare_and_set t s ((f lsl cursor_bits) lor (b - 1)) then
      Some (b - 1)
    else steal_back t
end

type job = {
  deques : Deque.t array; (* one per participant *)
  participants : int;
  run_item : int -> unit; (* contract: must not raise *)
  remaining : int Atomic.t; (* items not yet executed *)
  done_m : Mutex.t;
  done_cv : Condition.t;
  obs_parent : Obs.Span.t;
      (* the submitter's Batch_run span: workers adopt it as their
         ambient parent so worker-side spans nest under the batch *)
}

type t = {
  m : Mutex.t; (* protects gen / current / shutdown *)
  cv : Condition.t;
  mutable gen : int;
  mutable current : job option;
  mutable shutdown : bool;
  mutable workers : unit Domain.t list;
  mutable n_workers : int;
  submit : Mutex.t; (* serializes whole-pool batch submissions *)
}

let pool =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    gen = 0;
    current = None;
    shutdown = false;
    workers = [];
    n_workers = 0;
    submit = Mutex.create ();
  }

(* --- statistics --- *)

let batches_c = Atomic.make 0
let items_c = Atomic.make 0
let steals_c = Atomic.make 0

type stats = { workers : int; batches : int; items : int; steals : int }

let stats () =
  {
    workers = pool.n_workers;
    batches = Atomic.get batches_c;
    items = Atomic.get items_c;
    steals = Atomic.get steals_c;
  }

let reset_stats () =
  Atomic.set batches_c 0;
  Atomic.set items_c 0;
  Atomic.set steals_c 0

let pp_stats ppf s =
  Format.fprintf ppf "pool stats:@.";
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "workers" s.workers "batches"
    s.batches;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "items" s.items "steals"
    s.steals

(* --- the scheduler --- *)

(* Set while a domain is executing pool work: a nested [run] from
   inside an item must not wait on the pool it is part of, so it
   degrades to the sequential path (deadlock-free by construction). *)
let in_worker : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let finish_item j =
  (* last decrement wakes the submitter *)
  if Atomic.fetch_and_add j.remaining (-1) = 1 then begin
    Mutex.lock j.done_m;
    Condition.broadcast j.done_cv;
    Mutex.unlock j.done_m
  end

let execute j i =
  (* run_item must not raise (Batch captures per-item exceptions below
     this layer); if it somehow does, the item still counts as executed
     or the submitter would wait forever. *)
  (try j.run_item i with _ -> ());
  Atomic.incr items_c;
  finish_item j

(* Participant p: drain the own deque from the front, then steal from
   the back of the others (round-robin from the right neighbour,
   staying on a victim until it dries).  All deques empty means every
   item has been claimed — nothing left to do for this participant. *)
let work j p =
  let dq = j.deques.(p) in
  let rec own () =
    match Deque.take_front dq with
    | Some i ->
        execute j i;
        own ()
    | None -> scan 1
  and scan k =
    if k < j.participants then
      match Deque.steal_back j.deques.((p + k) mod j.participants) with
      | Some i ->
          Atomic.incr steals_c;
          execute j i;
          scan k
      | None -> scan (k + 1)
  in
  let flag = Domain.DLS.get in_worker in
  flag := true;
  let saved_ambient = Obs.Span.ambient () in
  Obs.Span.set_ambient j.obs_parent;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_ambient saved_ambient;
      flag := false)
    (fun () -> own ())

let rec worker_loop w last_gen =
  Mutex.lock pool.m;
  while pool.gen = last_gen && not pool.shutdown do
    Condition.wait pool.cv pool.m
  done;
  let gen = pool.gen and job = pool.current and stop = pool.shutdown in
  Mutex.unlock pool.m;
  if not stop then begin
    (* worker w is participant w+1; spare workers sit the job out so
       the effective parallelism honors the requested job count *)
    (match job with
    | Some j when w + 1 < j.participants -> work j (w + 1)
    | _ -> ());
    worker_loop w gen
  end

let shutdown () =
  Mutex.lock pool.m;
  pool.shutdown <- true;
  Condition.broadcast pool.cv;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.workers;
  pool.workers <- [];
  pool.n_workers <- 0;
  Mutex.lock pool.m;
  pool.shutdown <- false;
  Mutex.unlock pool.m

let at_exit_registered = ref false

(* called under pool.submit; gen is stable because submissions are
   serialized, so a fresh worker's last_gen can be read lock-free *)
let ensure_workers k =
  if pool.n_workers < k then begin
    if not !at_exit_registered then begin
      at_exit_registered := true;
      at_exit shutdown
    end;
    for w = pool.n_workers to k - 1 do
      let gen0 = pool.gen in
      pool.workers <- Domain.spawn (fun () -> worker_loop w gen0) :: pool.workers
    done;
    pool.n_workers <- k
  end

let max_participants = max 16 (Domain.recommended_domain_count ())

let sequential n run_item =
  for i = 0 to n - 1 do
    run_item i
  done

let run ~participants n run_item =
  if n > 0 then begin
    let participants = min (min participants n) max_participants in
    if
      participants <= 1
      || !(Domain.DLS.get in_worker)
      || n >= Deque.mask
      || not (Mutex.try_lock pool.submit)
    then sequential n run_item
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock pool.submit)
        (fun () ->
          ensure_workers (participants - 1);
          let sp = Obs.Span.enter Obs.Span.Batch_run in
          try
            (* same contiguous seeding as the old static chunking — the
               deques only change who finishes a range, never who is
               assigned which result index *)
            let base = n / participants and extra = n mod participants in
            let deques =
              Array.init participants (fun c ->
                  let lo = (c * base) + min c extra in
                  let hi = lo + base + if c < extra then 1 else 0 in
                  Deque.make ~lo ~hi)
            in
            let job =
              {
                deques;
                participants;
                run_item;
                remaining = Atomic.make n;
                done_m = Mutex.create ();
                done_cv = Condition.create ();
                obs_parent = sp;
              }
            in
            Atomic.incr batches_c;
            Mutex.lock pool.m;
            pool.current <- Some job;
            pool.gen <- pool.gen + 1;
            Condition.broadcast pool.cv;
            Mutex.unlock pool.m;
            (* the submitter is participant 0: it works too, so a batch
               always completes even if every worker is lagging *)
            work job 0;
            Mutex.lock job.done_m;
            while Atomic.get job.remaining > 0 do
              Condition.wait job.done_cv job.done_m
            done;
            Mutex.unlock job.done_m;
            Obs.Span.exit_n sp n
          with e ->
            Obs.Span.fail sp;
            raise e)
  end

let size () = pool.n_workers

(* Pool traffic as a metrics-snapshot provider, mirroring [stats]. *)
let () =
  Obs.register_provider "pool" (fun () ->
      let open Obs.Json in
      let s = stats () in
      Obj
        [
          ("workers", Int s.workers);
          ("batches", Int s.batches);
          ("items", Int s.items);
          ("steals", Int s.steals);
        ])

(** The compiled-extraction runtime: one compilation, many evaluations.

    The §5–§6 decision procedures (ambiguity per Prop 5.4, maximality
    per Cor 5.8, maximization per Algorithm 6.2) all funnel through the
    same regex → NFA → DFA pipeline; this module is the front door to
    the memoized version of that pipeline:

    - expressions are {e hash-consed} ({!Regex_hc}), so structurally
      equal regexes share one node and one compiled automaton;
    - the pipeline stages — determinization, minimization, and the
      Def 5.1 quotient constructions — are cached in a bounded LRU
      ({!Lang_cache}), shared by every [Lang] call site in [lib/core];
    - whole decision {e verdicts} are cached here, keyed by the
      interned sides of the extraction expression.

    Answers are observationally identical to the direct [lib/core]
    path — the [lib/oracle] campaign cross-checks this property —
    because every cached stage is a deterministic function of its key
    and all cached values are immutable.  All state is process-global;
    the LRUs are {e sharded} by key hash (one mutex per shard, atomic
    counters), so the {!Batch} pool's domains contend only on
    same-shard keys — sharding moves eviction boundaries, never what a
    hit returns.  See {!Batch} for running extraction over many
    documents in parallel. *)

(** {1 Statistics} *)

module Stats : sig
  type counter = { hits : int; misses : int }

  type t = {
    intern : counter;  (** hash-consing table lookups *)
    compile : counter;  (** regex → minimal DFA ({!Lang.of_regex}) *)
    determinize : counter;  (** concat / star / reverse *)
    minimize : counter;  (** boolean products + minimization *)
    quotient : counter;  (** Def 5.1 quotients, Def 6.1 filters *)
    decision : counter;  (** whole ambiguity/maximality/maximize verdicts *)
  }

  val pp : Format.formatter -> t -> unit

  val delta : earlier:t -> t -> t
  (** [delta ~earlier later] — counter-wise [later − earlier], clamped
      at zero.  The {e serve-safe} per-window view: a daemon snapshots
      at a window's edges and subtracts, instead of calling {!reset}
      (all-or-nothing: it also empties the caches and zeroes every
      other observer's baseline) mid-flight. *)
end

val stats : unit -> Stats.t

(** {1 Configuration} *)

val set_cache_size : int -> unit
(** Capacity of the pipeline LRU and of the verdict LRU (each holds at
    least this many entries; the sharded layout rounds the per-shard
    share up, so the effective bound is within a shard count of [n]).
    Default 4096. *)

val cache_size : unit -> int

val set_enabled : bool -> unit
(** Disable/enable memoization globally (hash-consing stays on; it is
    semantics-free).  Used by the differential oracles. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Empty every cache and zero every counter — the "cold" state of the
    E12 benchmark. *)

(** {1 Hash-consing} *)

val intern : Regex.t -> Regex.t
(** The canonical node structurally equal to the argument. *)

(** {1 The cached pipeline} *)

val lang_of_regex : Alphabet.t -> Regex.t -> Lang.t
(** Compile through the cache (this is [Lang.of_regex]; exposed here so
    runtime users need not know where the cache lives). *)

val left_lang : Extraction.t -> Lang.t
val right_lang : Extraction.t -> Lang.t

(** {1 Cached decision procedures}

    Same contracts as their [lib/core] counterparts. *)

val is_ambiguous : Extraction.t -> bool
val is_unambiguous : Extraction.t -> bool
val ambiguity_witness : Extraction.t -> Word.t option
val check_maximality : Extraction.t -> Maximality.verdict
val is_maximal : Extraction.t -> bool

val maximize :
  Extraction.t ->
  (Extraction.t * Synthesis.strategy, Synthesis.failure) result

(** {1 Budgeted decision procedures}

    The cached procedures metered by a {!Guard.Budget.t}.  A verdict
    already in the cache answers [Decided] without spending fuel; an
    in-budget miss computes the exact unbudgeted answer {e and caches
    it}; an exhausted run returns [Unknown] and caches {e nothing} —
    transient "don't know" outcomes are never served stale, a retry
    with a larger budget always recomputes. *)

val is_ambiguous_bounded :
  budget:Guard.Budget.t -> Extraction.t -> bool Guard.outcome

val ambiguity_witness_bounded :
  budget:Guard.Budget.t -> Extraction.t -> Word.t option Guard.outcome

val check_maximality_bounded :
  budget:Guard.Budget.t -> Extraction.t -> Maximality.verdict Guard.outcome

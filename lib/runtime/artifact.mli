(** Compiled-wrapper artifacts: the [.rxc] binary format.

    Determinize/minimize is the front-loaded cost of the whole pipeline
    (the step {!Guard} meters and {!Lang_cache} amortizes), yet every
    process pays it again from a cold start.  An artifact freezes a
    compiled extraction expression — the alphabet interning table, the
    expression's concrete syntax, the marked symbol, and the three
    validated minimal DFAs the runtime needs (left language, right
    language, {e reversed} right language) — into a stable, versioned
    binary file, so a fleet ships precompiled wrappers and starts warm
    at zero build cost.

    {b Wire format} (all integers little-endian u32):

    {v
      magic   "rxc!"            4 bytes
      version u32               format_version (currently 1)
      length  u32               payload byte count
      crc     u32               CRC-32 (IEEE 802.3) of the payload
      payload length bytes      alphabet, abstraction, expression,
                                mark, then the three DFAs
    v}

    Payload: alphabet = count + length-prefixed names; abstraction and
    expression = length-prefixed strings; mark = u32; each DFA =
    [alpha_size], [size], [start], packed finals bits
    (⌈size/8⌉ bytes), then the row-major flattened transition array
    ([size·alpha_size] u32 state ids).  Anything after the payload is
    rejected — a file is exactly header + payload.

    {b Trust model.}  The decoder enforces, field by field, the same
    structural invariants {!Dfa.validate} establishes (delta length and
    targets in range, finals length = size, start in range), plus mark
    ∈ alphabet and expression/mark agreement; the CRC-32 rejects every
    truncation and bit flip of a well-formed file.  A loaded artifact
    therefore licenses the zero-allocation {!Dfa.unsafe_step} matcher
    path {e without} re-running [Dfa.validate]
    ({!Extraction.matcher_of_validated}).  What is {e not} re-checked
    is semantic fidelity — that the stored DFAs really denote the
    stored expression's languages; that is the producer's contract
    ({!of_extraction} only ever stores pipeline-built, validated DFAs),
    and the oracle layer ([oracle_artifact]) cross-checks it
    differentially. *)

type t = {
  alpha : Alphabet.t;
  abstraction : string;
      (** opaque metadata consumed by the wrapper layer
          ({!Abstraction.of_string} form); ["tags"] for bare
          expressions *)
  expr : Extraction.t;
  left_dfa : Dfa.t;
  right_dfa : Dfa.t;
  right_rev_dfa : Dfa.t;
  generation : int;
      (** healing generation: 0 for a freshly compiled wrapper,
          incremented each time the self-healing loop re-synthesizes
          and re-saves it.  Encoded as a single trailing u32 inside the
          CRC-covered payload {e only when non-zero}, so generation-0
          artifacts are byte-identical to pre-healing format-1 files
          (the golden-corpus identity gate depends on this). *)
}

val format_version : int

(** Structured load failures, one constructor per defence layer.  The
    CLI maps every one to exit 2 with [error_to_string]. *)
type error =
  | Truncated  (** file shorter than its header + declared payload *)
  | Bad_magic
  | Bad_version of int  (** the version the file declares *)
  | Checksum_mismatch
  | Malformed of string
      (** CRC passed but a structural invariant failed — a producer
          bug or a crafted file, never simple corruption *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Producing} *)

val of_extraction : ?abstraction:string -> ?generation:int -> Extraction.t -> t
(** Compile (through the cached {!Lang} pipeline) and package an
    expression.  The packaged expression is {e normalized} — re-parsed
    from its own rendering, since the wire form is concrete syntax and
    the parser's smart constructors simplify as they build — so
    [save]∘[load] is the identity on the artifact and the seeded cache
    keys are the ones a loading process interns.  All three DFAs pass
    {!Dfa.validate} before they are ever serialized — the save side of
    the checksum licence.  [abstraction] defaults to ["tags"];
    [generation] to [0] (a fresh, never-healed wrapper).
    @raise Invalid_argument on a negative [generation]. *)

val to_bytes : t -> string
val save : t -> string -> unit

(** {1 Loading} *)

val of_bytes : string -> (t, error) result
(** Decode and structurally verify.  Total: any input string answers
    [Ok] or [Error], never an exception. *)

val load : string -> (t, error) result
(** [of_bytes] over a file; unreadable paths answer
    [Error (Malformed _)]. *)

val matcher : t -> Extraction.matcher
(** The compiled matcher, assembled from the verified DFAs without
    re-validation ({!Extraction.matcher_of_validated}). *)

val seed_caches : t -> unit
(** Install the loaded DFAs into {!Lang_cache} under the keys the
    pipeline would have stored them at (the interned left/right
    regexes' compile keys and the reverse-unop key), so the first
    decision procedure over the loaded expression starts warm and the
    runtime's hit counters see it as cache traffic. *)

val equal : t -> t -> bool
(** Structural round-trip equality: alphabet names, abstraction,
    rendered expression, mark, and all three DFAs. *)

(** {1 Statistics}

    Unconditional process-global counters (independent of
    {!Obs.set_enabled}), also exported as the ["artifact"]
    {!Obs.metrics_json} provider. *)

type stats = { saved : int; loaded : int; rejected : int }

val stats : unit -> stats
val reset_stats : unit -> unit

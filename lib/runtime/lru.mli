(** Bounded least-recently-used cache (the runtime memo substrate).

    A polymorphic-key LRU map with O(1) lookup, insertion and eviction,
    built from a hash table over an intrusive doubly-linked recency
    list.  Keys are compared with structural equality and hashed with
    {!Hashtbl.hash}, so any immutable key type without functional or
    cyclic components works.

    The cache itself is {e not} thread-safe; callers that share one
    across domains must serialize access (see {!Lang_cache} and
    {!Runtime}, which hold a mutex around every operation). *)

type ('k, 'v) t

val create : cap:int -> ('k, 'v) t
(** [create ~cap] — an empty cache holding at most [cap] bindings.
    [cap <= 0] gives a cache that stores nothing (every {!find} misses),
    which is how caching is disabled without touching call sites. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit moves the binding to the front of the recency list
    and increments the hit counter, a miss increments the miss
    counter. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, making the binding most recent; evicts from the
    least-recent end until the capacity bound holds. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership without touching recency or the counters. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val set_capacity : ('k, 'v) t -> int -> unit
(** Resize; shrinking evicts least-recent bindings immediately. *)

val clear : ('k, 'v) t -> unit
(** Drop every binding.  Counters are preserved ({!reset_stats} clears
    them). *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val reset_stats : ('k, 'v) t -> unit

module Stats = struct
  type counter = { hits : int; misses : int }

  type t = {
    intern : counter;
    compile : counter;
    determinize : counter;
    minimize : counter;
    quotient : counter;
    decision : counter;
  }

  let pp ppf t =
    let row name c =
      Format.fprintf ppf "  %-12s %8d hits %8d misses@." name c.hits c.misses
    in
    Format.fprintf ppf "runtime cache stats:@.";
    row "intern" t.intern;
    row "compile" t.compile;
    row "determinize" t.determinize;
    row "minimize" t.minimize;
    row "quotient" t.quotient;
    row "decision" t.decision

  (* Counter-wise [later − earlier], clamped at zero: per-window stats
     for a long-lived daemon without resetting the process-global
     counters (which would yank the baseline out from under every
     other observer mid-flight). *)
  let delta ~earlier later =
    let d a b =
      { hits = max 0 (b.hits - a.hits); misses = max 0 (b.misses - a.misses) }
    in
    {
      intern = d earlier.intern later.intern;
      compile = d earlier.compile later.compile;
      determinize = d earlier.determinize later.determinize;
      minimize = d earlier.minimize later.minimize;
      quotient = d earlier.quotient later.quotient;
      decision = d earlier.decision later.decision;
    }
end

(* --- verdict cache --- *)

type decision_key = {
  names : string list;
  left : int; (* interned regex ids *)
  mark : int;
  right : int;
  op : string;
}

type decision_value =
  | D_bool of bool
  | D_witness of Word.t option
  | D_verdict of Maximality.verdict
  | D_maximize of (Extraction.t * Synthesis.strategy, Synthesis.failure) result

(* The verdict LRU is sharded by key hash, like {!Lang_cache}: a key
   always lands in the same shard, so concurrent domains only contend
   on same-shard keys; hit/miss counters are atomics.  Sharding cannot
   change cached answers — decisions are pure functions of their key,
   so shard layout only moves eviction boundaries (what gets
   recomputed), never what a hit returns. *)
let shard_count = 16

type decision_shard = {
  m : Mutex.t;
  lru : (decision_key, decision_value) Lru.t;
}

let decision_capacity_default = 4096
let shard_cap total = max 1 ((total + shard_count - 1) / shard_count)

let decision_shards =
  Array.init shard_count (fun _ ->
      {
        m = Mutex.create ();
        lru = Lru.create ~cap:(shard_cap decision_capacity_default);
      })

(* One packed pair (hits high bits / misses low): a stats read is a
   single atomic load, so it can never catch the pair half-updated
   between a bump and a racing reader. *)
let decision_c = Obs.Counter2.make ()

let decision_key (e : Extraction.t) op =
  let _, left = Regex_hc.intern e.Extraction.left in
  let _, right = Regex_hc.intern e.Extraction.right in
  {
    names = Alphabet.names e.Extraction.alpha;
    left;
    mark = e.Extraction.mark;
    right;
    op;
  }

let compute_verdict compute =
  let sp = Obs.Span.enter Obs.Span.Verdict in
  try
    let v = compute () in
    Obs.Span.exit sp;
    v
  with e ->
    Obs.Span.fail sp;
    raise e

let decide e op compute =
  if not (Lang_cache.enabled ()) then compute_verdict compute
  else
    let key = decision_key e op in
    let s = decision_shards.(Hashtbl.hash key land (shard_count - 1)) in
    match Mutex.protect s.m (fun () -> Lru.find s.lru key) with
    | Some v ->
        Obs.Counter2.hit decision_c;
        v
    | None ->
        Obs.Counter2.miss decision_c;
        let v = compute_verdict compute in
        Mutex.protect s.m (fun () -> Lru.add s.lru key v);
        v

(* --- configuration --- *)

let stats () =
  let c (h, m) : Stats.counter = { hits = h; misses = m } in
  {
    Stats.intern = c (Regex_hc.stats ());
    compile = c (Lang_cache.counts Lang_cache.Compile);
    determinize = c (Lang_cache.counts Lang_cache.Determinize);
    minimize = c (Lang_cache.counts Lang_cache.Minimize);
    quotient = c (Lang_cache.counts Lang_cache.Quotient);
    decision = c (Obs.Counter2.read decision_c);
  }

(* Cache traffic as a metrics-snapshot provider: per-stage pairs, the
   decision pair and the per-shard Lang_cache breakdown, all read as
   consistent packed pairs.  Registered at module init so any program
   linking Runtime gets the "cache" field in Obs.metrics_json. *)
let () =
  Obs.register_provider "cache" (fun () ->
      let open Obs.Json in
      let pair (h, m) = Obj [ ("hits", Int h); ("misses", Int m) ] in
      let s = stats () in
      let c (x : Stats.counter) = pair (x.hits, x.misses) in
      Obj
        [
          ("intern", c s.Stats.intern);
          ("compile", c s.Stats.compile);
          ("determinize", c s.Stats.determinize);
          ("minimize", c s.Stats.minimize);
          ("quotient", c s.Stats.quotient);
          ("decision", c s.Stats.decision);
          ( "shards",
            List (Array.to_list (Array.map pair (Lang_cache.shard_counts ())))
          );
        ])

let set_cache_size n =
  Lang_cache.set_capacity n;
  let per_shard = shard_cap n in
  Array.iter
    (fun s -> Mutex.protect s.m (fun () -> Lru.set_capacity s.lru per_shard))
    decision_shards

let cache_size () = Lang_cache.capacity ()
let set_enabled = Lang_cache.set_enabled
let enabled = Lang_cache.enabled

let reset () =
  Lang_cache.clear ();
  Regex_hc.reset ();
  Array.iter
    (fun s -> Mutex.protect s.m (fun () -> Lru.clear s.lru))
    decision_shards;
  Obs.Counter2.reset decision_c;
  (* scheduling state is warm-path state too: benchmarks that reset
     between repetitions must also re-cold the chunk-size estimator *)
  Cost.reset ()

(* --- cached pipeline --- *)

let intern = Regex_hc.intern_node
let lang_of_regex = Lang.of_regex
let left_lang (e : Extraction.t) = lang_of_regex e.Extraction.alpha e.Extraction.left
let right_lang (e : Extraction.t) = lang_of_regex e.Extraction.alpha e.Extraction.right

(* --- cached decision procedures --- *)

let expect_bool = function D_bool b -> b | _ -> assert false

let is_ambiguous e =
  expect_bool (decide e "ambiguous" (fun () -> D_bool (Ambiguity.is_ambiguous e)))

let is_unambiguous e = not (is_ambiguous e)

let ambiguity_witness e =
  match decide e "witness" (fun () -> D_witness (Ambiguity.witness e)) with
  | D_witness w -> w
  | _ -> assert false

let check_maximality e =
  match decide e "maximality" (fun () -> D_verdict (Maximality.check e)) with
  | D_verdict v -> v
  | _ -> assert false

let is_maximal e = check_maximality e = Maximality.Maximal

let maximize e =
  match decide e "maximize" (fun () -> D_maximize (Synthesis.maximize e)) with
  | D_maximize r -> r
  | _ -> assert false

(* --- budgeted decision procedures ---

   Each bounded entry runs the cached procedure under the caller's
   budget.  The interplay with the verdict cache is deliberate:

   - a cache hit answers [Decided] for free (no fuel spent);
   - an in-budget miss computes the exact unbudgeted answer and caches
     it under the same key, so later unbounded calls hit;
   - an exhausted run raises out of [decide] {e before} [Lru.add], so
     an [Unknown] is never cached — a retry with a larger budget
     recomputes instead of being served the stale "don't know". *)

let is_ambiguous_bounded ~budget e =
  Guard.capture budget (fun () -> is_ambiguous e)

let ambiguity_witness_bounded ~budget e =
  Guard.capture budget (fun () -> ambiguity_witness e)

let check_maximality_bounded ~budget e =
  Guard.capture budget (fun () -> check_maximality e)

(** Multicore batch execution (compile once, evaluate many).

    A thin client of the persistent work-stealing pool ({!Pool}): the
    input list is seeded into per-participant deques as [jobs]
    contiguous ranges, and participants that drain their range steal
    from the others — so a skewed or adversarial item delays only
    itself, not the rest of a static chunk.  Worker domains persist
    across calls; no [Domain.spawn] happens per batch after the first.
    Results are written to per-index cells and come back in input
    order, so output is bit-identical for every job count and every
    schedule.

    Items are evaluated in {e isolation}: an exception raised by one
    application is caught at the item boundary and recorded in that
    item's result cell — it never kills the worker domain, the other
    items, or the batch.  {!map_isolated} surfaces the per-item cells;
    {!map} keeps the historical raising interface on top of them.

    The mapped function runs concurrently in several domains — callers
    pass pure functions over immutable data (compiled matchers, parsed
    documents).  The {!Runtime}/{!Lang_cache} memo tables are sharded
    and mutex-protected per shard, so even a function that re-enters
    the cached pipeline is safe, and mostly contention-free. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default parallelism. *)

val map_isolated :
  ?jobs:int ->
  ?cost:('a -> int) ->
  ?chunk:Pool.chunking ->
  ('a -> 'b) ->
  'a list ->
  ('b, string) result list
(** [map_isolated ~jobs f xs] — [f] over every item, one result cell
    per item in input order: [Ok (f x)] normally, [Error exn_string]
    when that application raised (the exception rendered with
    [Printexc], so {!Guard.Exhausted} and {!Guard_faults.Injected}
    cells read deterministically).  A poisoned item affects only its
    own cell: every other item still completes, and the output is
    byte-identical for every [jobs] value, every [chunk] policy, and
    every [cost] hint.

    [cost] maps an item to a {e relative} weight (node count, byte
    size) for the pool's [Auto] chunk planner; [chunk] overrides the
    planner (see {!Pool.chunking}).  Both are scheduling hints only:
    they never change results, isolation, or error ordering. *)

val map :
  ?jobs:int ->
  ?cost:('a -> int) ->
  ?chunk:Pool.chunking ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs f xs] = [List.map f xs], evaluated on up to [jobs]
    domains.  [jobs] defaults to {!recommended_jobs}; values [<= 1] (in
    particular on single-core hosts, where the recommendation is 1)
    run sequentially.  If any application raises, the first failing
    item's exception {e in input order} is re-raised after every item
    has been evaluated — the job count never changes which exception
    surfaces, and neither do [cost]/[chunk] (scheduling hints, as in
    {!map_isolated}). *)

val chunk_bounds : jobs:int -> int -> (int * int) array
(** [chunk_bounds ~jobs n] — the [(lo, hi)] half-open index ranges the
    per-participant deques are {e seeded} with (work stealing can move
    items between participants afterwards), exposed for tests: ranges
    partition [0..n), are contiguous, and differ in size by at most
    one. *)

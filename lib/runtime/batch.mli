(** Multicore batch execution (compile once, evaluate many).

    A deliberately simple chunked scheduler over OCaml 5 domains: the
    input list is split into [jobs] contiguous chunks, one domain per
    chunk, no work stealing.  Extraction cost is near-uniform per
    document, so static chunking matches dynamic scheduling without any
    cross-domain synchronization; results come back in input order, so
    output is bit-identical for every job count.

    The mapped function runs concurrently in several domains — callers
    pass pure functions over immutable data (compiled matchers, parsed
    documents).  The {!Runtime}/{!Lang_cache} memo tables are
    mutex-protected, so even a function that re-enters the cached
    pipeline is safe, just serialized. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default parallelism. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] = [List.map f xs], evaluated on up to [jobs]
    domains.  [jobs] defaults to {!recommended_jobs}; values [<= 1] (in
    particular on single-core hosts, where the recommendation is 1)
    fall back to plain sequential [List.map].  If any application
    raises, the first chunk's exception (in chunk order) is re-raised
    after all domains are joined. *)

val chunk_bounds : jobs:int -> int -> (int * int) array
(** [chunk_bounds ~jobs n] — the [(lo, hi)] half-open index ranges the
    scheduler assigns, exposed for tests: ranges partition [0..n), are
    contiguous, and differ in size by at most one. *)

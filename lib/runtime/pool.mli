(** Persistent work-stealing domain pool, granularity-aware.

    The scheduler under {!Batch}: worker domains are spawned lazily on
    the first parallel batch and then {e reused} for every later batch,
    so the per-call [Domain.spawn]/[join] cost of the old chunked
    executor (which made jobs=4 slower than jobs=1 on small batches,
    see E12) is paid once per process.

    Scheduling: the index range [0..n) is first partitioned into
    contiguous {e work units} by the {!Cost} planner — small items are
    grouped until a unit is worth roughly the break-even wall time
    ({!Cost.target_ns}), while any item estimated at or above
    break-even stays a singleton unit (skew tolerance: an adversarial
    giant delays only its claimer, never a merged chunk).  The units
    are seeded into one deque per participant as contiguous ranges;
    each participant pops its own deque from the front, and when it
    runs dry it steals units from the {e back} of the other deques.
    Executed units feed their wall time back into the estimator, so
    granularity self-corrects batch over batch.  A batch that plans to
    a single unit (total cost below break-even) runs sequentially on
    the submitter instead of waking workers — counted in {!stats} as a
    [seq_fallbacks], with results identical to the pooled schedule.

    Determinism: which participant {e executes} a unit is scheduling-
    dependent, but items are identified by index and callers write
    results to per-index cells, so batch {e results} are independent of
    the schedule {e and} of the plan.  The pool never reorders, drops,
    or duplicates an index: the plan is a partition of [0..n) and every
    unit is claimed exactly once (a single CAS per claim).

    Nesting and re-entrancy: a [run] issued from inside a pool item
    (nested batch) or while another domain holds the pool runs the
    items sequentially in the caller — correct, just not extra-parallel
    — so the pool cannot deadlock on itself. *)

type chunking =
  | Auto
      (** Plan work units from the cost estimator and the optional
          per-item weights (the default). *)
  | Items of int
      (** Fixed units of exactly this many items (last unit may be
          smaller).  [Items 1] reproduces per-item scheduling; values
          [< 1] raise [Invalid_argument]. *)

val run :
  ?costs:int array ->
  ?chunk:chunking ->
  participants:int ->
  int ->
  (int -> unit) ->
  unit
(** [run ~participants n f] — execute [f i] for every [i] in [0..n),
    across up to [participants] domains (the caller plus up to
    [participants - 1] pool workers; capped by the machine's
    recommended domain count, floor 16).  Blocks until every item has
    executed.  [f] receives each index exactly once and {b must not
    raise}: an escaping exception is swallowed (the item still counts
    as executed) — callers that need per-item failures capture them
    into result cells, as {!Batch} does.  [participants <= 1] (or
    [n <= 1]) runs sequentially without touching the pool.

    [costs] gives per-item {e relative} weights (any unit: node
    counts, byte sizes) used by [Auto] planning to group cheap items
    and isolate expensive ones; it must have length [n] (else
    [Invalid_argument]).  Without it, [Auto] plans uniform units from
    the estimator alone.  [chunk] overrides planning; see
    {!chunking}.  Neither parameter affects {e what} is computed —
    only the work-unit boundaries. *)

val size : unit -> int
(** Worker domains currently alive (0 until the first pooled run —
    batches that degrade to a sequential fallback spawn nothing). *)

val shutdown : unit -> unit
(** Join every worker domain and return the pool to its initial empty
    state (it can be used again afterwards; workers respawn on
    demand).  Registered via [at_exit] automatically, so normal
    programs never call this. *)

(** {1 Statistics}

    Scheduler counters, aggregated over the process lifetime (or since
    {!reset_stats}).  [steals] and [chunks] are scheduling- and
    estimator-dependent and therefore {e not} deterministic across
    runs — stats are for observability, never for results. *)

type stats = {
  workers : int;  (** persistent worker domains alive *)
  batches : int;  (** batches accepted (pooled or counted fallback) *)
  items : int;  (** items executed through pooled or fallback batches *)
  steals : int;  (** units claimed from another participant's deque *)
  chunks : int;  (** work units executed through the pooled path *)
  seq_fallbacks : int;
      (** batches that planned below break-even and ran sequentially
          on the submitter *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
val pp_stats : Format.formatter -> stats -> unit

val delta_stats : earlier:stats -> stats -> stats
(** [delta_stats ~earlier later] — the counter window between two
    snapshots, clamped at zero ([workers] is a gauge and keeps the
    later value).  Long-lived daemons report per-window scheduler
    traffic this way instead of {!reset_stats}, which would zero the
    process totals under every concurrent reader. *)

(** Persistent work-stealing domain pool.

    The scheduler under {!Batch}: worker domains are spawned lazily on
    the first parallel batch and then {e reused} for every later batch,
    so the per-call [Domain.spawn]/[join] cost of the old chunked
    executor (which made jobs=4 slower than jobs=1 on small batches,
    see E12) is paid once per process.

    Scheduling: the index range [0..n) is seeded into one deque per
    participant as contiguous ranges (identical to the old
    {!Batch.chunk_bounds} partition).  Each participant pops its own
    deque from the front; when it runs dry it steals single items from
    the {e back} of the other deques.  A skewed or adversarial item
    therefore delays only the participant that claimed it — the rest of
    its range is stolen by idle participants instead of stalling behind
    it.

    Determinism: which participant {e executes} an item is scheduling-
    dependent, but items are identified by index and callers write
    results to per-index cells, so batch {e results} are independent of
    the schedule.  The pool never reorders, drops, or duplicates an
    index: every index in [0..n) is claimed exactly once (a single CAS
    per claim).

    Nesting and re-entrancy: a [run] issued from inside a pool item
    (nested batch) or while another domain holds the pool runs the
    items sequentially in the caller — correct, just not extra-parallel
    — so the pool cannot deadlock on itself. *)

val run : participants:int -> int -> (int -> unit) -> unit
(** [run ~participants n f] — execute [f i] for every [i] in [0..n),
    across up to [participants] domains (the caller plus up to
    [participants - 1] pool workers; capped by the machine's
    recommended domain count, floor 16).  Blocks until every item has
    executed.  [f] receives each index exactly once and {b must not
    raise}: an escaping exception is swallowed (the item still counts
    as executed) — callers that need per-item failures capture them
    into result cells, as {!Batch} does.  [participants <= 1] (or
    [n <= 1]) runs sequentially without touching the pool. *)

val size : unit -> int
(** Worker domains currently alive (0 until the first parallel run). *)

val shutdown : unit -> unit
(** Join every worker domain and return the pool to its initial empty
    state (it can be used again afterwards; workers respawn on
    demand).  Registered via [at_exit] automatically, so normal
    programs never call this. *)

(** {1 Statistics}

    Scheduler counters, aggregated over the process lifetime (or since
    {!reset_stats}).  [steals] is scheduling-dependent and therefore
    {e not} deterministic across runs — stats are for observability,
    never for results. *)

type stats = {
  workers : int;  (** persistent worker domains alive *)
  batches : int;  (** pool-scheduled batches *)
  items : int;  (** items executed through the pool *)
  steals : int;  (** items claimed from another participant's deque *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
val pp_stats : Format.formatter -> stats -> unit

(** The §7 left-to-right merging heuristic.

    Input: marked sample sequences [(w, i)] (the target object is the
    symbol at position [i], the same symbol in every sample).  Output:
    an initial extraction expression that parses every sample and marks
    the right occurrence — the raw material the maximization algorithms
    then generalize.

    Construction (following §7): align the pre-mark prefixes on a common
    subsequence of tags; each maximal run between two common tags becomes
    the {e union} of the corresponding gap segments across samples (with
    [?] when some sample's gap is empty); the post-mark suffixes are
    generalized to Σ* by default (that is what expression (10) does), or
    merged symmetrically with [~generalize_suffix:false]. *)

type sample = { word : Word.t; mark_pos : int }

val sample : Word.t -> int -> sample
(** @raise Invalid_argument if the position is out of range. *)

type error =
  | No_samples
  | Mark_symbol_differs  (** samples mark different alphabet symbols *)

val pp_error : Format.formatter -> error -> unit

val merge :
  ?generalize_suffix:bool ->
  Alphabet.t ->
  sample list ->
  (Extraction.t, error) result
(** The merged expression.  Guarantees: every sample word is parsed and
    its marked position is among the splits (exactness of the marked
    position for {e unambiguous} results is checked by the caller via
    {!Ambiguity}). *)

val template_decomposition :
  Alphabet.t -> sample list -> (Pivot.decomposition * int, error) result
(** The merged prefix as an explicit pivot decomposition (segments =
    gap unions, pivots = common tags) together with the marked symbol —
    ready for {!Pivot.maximize}. *)

(** Kushmerick-style LR wrapper baseline.

    The wrapper-induction line the paper cites ([18, 21]) locates a
    target by a fixed {e left delimiter} (the longest tag context
    immediately preceding the target common to all samples) and a fixed
    {e right delimiter}.  Extraction scans for the first occurrence of
    [ℓ · p · r].  This is the baseline the resilience experiment (E6)
    compares against: it is brittle exactly where maximized extraction
    expressions are robust, because any insertion inside its delimiter
    window breaks it.

    An LR wrapper is also expressible as the (usually non-maximal,
    sometimes ambiguous) extraction expression [Σ*·ℓ ⟨p⟩ r·Σ*]; see
    {!to_extraction}. *)

type t = { alpha : Alphabet.t; left : Word.t; mark : int; right : Word.t }

type error = No_samples | Mark_symbol_differs

val pp_error : Format.formatter -> error -> unit

val learn : Alphabet.t -> Merge.sample list -> (t, error) result
(** Delimiters = longest common suffix of pre-mark prefixes / longest
    common prefix of post-mark suffixes. *)

val extract : t -> Word.t -> int option
(** First position whose context matches [ℓ…⟨p⟩…r]. *)

val to_extraction : t -> Extraction.t

val pp : Format.formatter -> t -> unit

type outcome =
  | Disambiguated of Extraction.t * int
  | Already_unambiguous
  | Gave_up

let run (e : Extraction.t) (examples : (Word.t * int) list) =
  let alpha = e.Extraction.alpha in
  List.iter
    (fun (w, i) ->
      if i < 0 || i >= Array.length w || w.(i) <> e.Extraction.mark then
        invalid_arg "Disambiguate.run: example does not mark the symbol")
    examples;
  if Ambiguity.is_unambiguous e then Already_unambiguous
  else begin
    let prefixes = List.map (fun (w, i) -> Word.sub w 0 i) examples in
    let common = Align.common_suffix prefixes in
    let max_k = Array.length common in
    let extracts_all e' =
      List.for_all
        (fun (w, i) ->
          match Extraction.extract e' w with `Unique j -> j = i | _ -> false)
        examples
    in
    let candidates_for k =
      let ctx = Word.sub common (max_k - k) k in
      let ends_with_ctx = Regex.cat Regex.sigma_star (Regex.word ctx) in
      (* Plain context: the mark must be preceded by ctx. *)
      let plain = Regex.inter e.Extraction.left ends_with_ctx in
      (* First-match context: additionally, no earlier ctx·p occurrence —
         the prefix language {α ∈ Σ*·ctx | ctx·p occurs in α·p only at
         the end}, which is unambiguous against any right side because a
         second split would put a ctx·p occurrence strictly inside. *)
      let earlier =
        Regex.cat_list
          [
            Regex.sigma_star;
            Regex.word ctx;
            Regex.sym e.Extraction.mark;
            Regex.sigma_star;
          ]
      in
      let first_match =
        Regex.inter plain (Regex.compl earlier)
      in
      [ plain; first_match ]
    in
    let rec try_k k =
      if k > max_k then Gave_up
      else
        let attempt left' =
          let e' =
            Extraction.make alpha left' e.Extraction.mark e.Extraction.right
          in
          if Ambiguity.is_unambiguous e' && extracts_all e' then Some e'
          else None
        in
        match List.find_map attempt (candidates_for k) with
        | Some e' -> Disambiguated (e', k)
        | None -> try_k (k + 1)
    in
    try_k 1
  end

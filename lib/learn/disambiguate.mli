(** Counterexample-guided disambiguation (the §8 "future work"
    procedure, instantiated).

    When a learned expression [E1⟨p⟩E2] is ambiguous, the paper proposes
    feeding it to a disambiguation procedure together with
    counterexamples.  This implementation specializes the left side by
    intersecting it with a growing required left context
    [Σ*·ℓ_k] (where [ℓ_k] is the length-[k] common left context of the
    marked positions in the examples), until the expression becomes
    unambiguous while still extracting every example correctly.  Two
    specializations are tried per context length: the plain context
    intersection, and a "first-match" variant that additionally forbids
    earlier context-preceded marks (which is unambiguous against any
    right side). *)

type outcome =
  | Disambiguated of Extraction.t * int  (** result and context length used *)
  | Already_unambiguous
  | Gave_up  (** no context length up to the examples' bound works *)

val run : Extraction.t -> (Word.t * int) list -> outcome
(** [(word, intended position)] examples.  @raise Invalid_argument on an
    example whose position does not carry the marked symbol. *)

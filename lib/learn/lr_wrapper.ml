type t = { alpha : Alphabet.t; left : Word.t; mark : int; right : Word.t }
type error = No_samples | Mark_symbol_differs

let pp_error ppf = function
  | No_samples -> Format.pp_print_string ppf "no samples"
  | Mark_symbol_differs ->
      Format.pp_print_string ppf "samples mark different symbols"

let learn alpha (samples : Merge.sample list) =
  match samples with
  | [] -> Error No_samples
  | s :: rest ->
      let mark = s.Merge.word.(s.Merge.mark_pos) in
      if
        not
          (List.for_all
             (fun s' -> s'.Merge.word.(s'.Merge.mark_pos) = mark)
             rest)
      then Error Mark_symbol_differs
      else
        let prefixes =
          List.map
            (fun s -> Word.sub s.Merge.word 0 s.Merge.mark_pos)
            samples
        in
        let suffixes =
          List.map
            (fun s ->
              Word.sub s.Merge.word
                (s.Merge.mark_pos + 1)
                (Array.length s.Merge.word - s.Merge.mark_pos - 1))
            samples
        in
        Ok
          {
            alpha;
            left = Align.common_suffix prefixes;
            mark;
            right = Align.common_prefix suffixes;
          }

let matches_at (w : Word.t) (pat : Word.t) (pos : int) =
  pos >= 0
  && pos + Array.length pat <= Array.length w
  && (let ok = ref true in
      Array.iteri (fun k c -> if w.(pos + k) <> c then ok := false) pat;
      !ok)

let extract t w =
  let n = Array.length w in
  let ln = Array.length t.left in
  let rec scan i =
    if i >= n then None
    else if
      w.(i) = t.mark
      && matches_at w t.left (i - ln)
      && matches_at w t.right (i + 1)
    then Some i
    else scan (i + 1)
  in
  scan 0

let to_extraction t =
  Extraction.make t.alpha
    (Regex.cat Regex.sigma_star (Regex.word t.left))
    t.mark
    (Regex.cat (Regex.word t.right) Regex.sigma_star)

let pp ppf t =
  Format.fprintf ppf "LR[%a ⟨%s⟩ %a]" (Word.pp t.alpha) t.left
    (Alphabet.name t.alpha t.mark)
    (Word.pp t.alpha) t.right

(** Sequence alignment primitives for the merging heuristic. *)

val lcs : Word.t -> Word.t -> Word.t
(** A longest common subsequence (classic O(nm) DP; ties broken toward
    earlier matches in the first word). *)

val lcs_many : Word.t list -> Word.t
(** Progressive LCS over a list ([lcs_many [] = ε]).  Note this computes
    {e a} common subsequence of all words, not necessarily a longest one
    (multi-sequence LCS is NP-hard); good enough as the paper's
    "sequence of tags common to the strings". *)

val lcs_many_guided : Word.t list -> Word.t
(** Progressive LCS with a similarity guide order: start from the most
    similar pair and fold in the remaining words by decreasing LCS
    length against the current skeleton.  Still only a common
    subsequence, but less sensitive to a degenerate first sample than
    {!lcs_many}'s input order. *)

val carve : Word.t -> Word.t -> Word.t list option
(** [carve w c]: match common subsequence [c] against [w] greedily left
    to right (earliest occurrences) and return the [|c|+1] gap segments
    around the matched symbols; [None] if [c] is not a subsequence. *)

val common_suffix : Word.t list -> Word.t
(** Longest common suffix of all words. *)

val common_prefix : Word.t list -> Word.t

let lcs (a : Word.t) (b : Word.t) : Word.t =
  let n = Array.length a and m = Array.length b in
  (* dp.(i).(j) = LCS length of a[i..], b[j..] *)
  let dp = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      dp.(i).(j) <-
        (if a.(i) = b.(j) then 1 + dp.(i + 1).(j + 1)
         else max dp.(i + 1).(j) dp.(i).(j + 1))
    done
  done;
  let buf = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < n && !j < m do
    if a.(!i) = b.(!j) && dp.(!i).(!j) = 1 + dp.(!i + 1).(!j + 1) then begin
      buf := a.(!i) :: !buf;
      incr i;
      incr j
    end
    else if dp.(!i + 1).(!j) >= dp.(!i).(!j + 1) then incr i
    else incr j
  done;
  Word.of_list (List.rev !buf)

let lcs_many = function
  | [] -> Word.empty
  | w :: rest -> List.fold_left lcs w rest

let lcs_many_guided words =
  match words with
  | [] -> Word.empty
  | [ w ] -> w
  | _ ->
      (* seed with the most similar pair *)
      let arr = Array.of_list words in
      let n = Array.length arr in
      let best = ref (0, 1, -1) in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let len = Array.length (lcs arr.(i) arr.(j)) in
          let _, _, b = !best in
          if len > b then best := (i, j, len)
        done
      done;
      let i0, j0, _ = !best in
      let skeleton = ref (lcs arr.(i0) arr.(j0)) in
      let remaining =
        List.filteri (fun k _ -> k <> i0 && k <> j0) (Array.to_list arr)
      in
      let rec fold remaining =
        match remaining with
        | [] -> ()
        | _ ->
            (* fold in the word most similar to the current skeleton *)
            let scored =
              List.map (fun w -> (Array.length (lcs !skeleton w), w)) remaining
            in
            let best_len, best_w =
              List.fold_left
                (fun (bl, bw) (l, w) -> if l > bl then (l, w) else (bl, bw))
                (List.hd scored) (List.tl scored)
            in
            ignore best_len;
            skeleton := lcs !skeleton best_w;
            fold (List.filter (fun w -> not (Word.equal w best_w)) remaining)
      in
      fold remaining;
      !skeleton

let carve (w : Word.t) (c : Word.t) : Word.t list option =
  let n = Array.length w and k = Array.length c in
  let gaps = ref [] in
  let rec go i j gap_start =
    if j = k then begin
      gaps := Word.sub w gap_start (n - gap_start) :: !gaps;
      Some (List.rev !gaps)
    end
    else if i = n then None
    else if w.(i) = c.(j) then begin
      gaps := Word.sub w gap_start (i - gap_start) :: !gaps;
      go (i + 1) (j + 1) (i + 1)
    end
    else go (i + 1) j gap_start
  in
  go 0 0 0

let common_suffix = function
  | [] -> Word.empty
  | w :: rest ->
      let len =
        List.fold_left
          (fun len v ->
            let nv = Array.length v and nw = Array.length w in
            let rec ext k =
              if k >= len || k >= nv || k >= nw then k
              else if v.(nv - 1 - k) = w.(nw - 1 - k) then ext (k + 1)
              else k
            in
            ext 0)
          (Array.length w) rest
      in
      Word.sub w (Array.length w - len) len

let common_prefix = function
  | [] -> Word.empty
  | w :: rest ->
      let len =
        List.fold_left
          (fun len v ->
            let rec ext k =
              if k >= len || k >= Array.length v || k >= Array.length w then k
              else if v.(k) = w.(k) then ext (k + 1)
              else k
            in
            ext 0)
          (Array.length w) rest
      in
      Word.sub w 0 len

type sample = { word : Word.t; mark_pos : int }

let sample word mark_pos =
  if mark_pos < 0 || mark_pos >= Array.length word then
    invalid_arg "Merge.sample: mark position out of range";
  { word; mark_pos }

type error = No_samples | Mark_symbol_differs

let pp_error ppf = function
  | No_samples -> Format.pp_print_string ppf "no samples"
  | Mark_symbol_differs ->
      Format.pp_print_string ppf "samples mark different symbols"

let prefix_of s = Word.sub s.word 0 s.mark_pos

let suffix_of s =
  Word.sub s.word (s.mark_pos + 1) (Array.length s.word - s.mark_pos - 1)

(* Union of gap segments as a regex: the | of the words, with ? when one
   of them is empty. *)
let gap_regex (gaps : Word.t list) : Regex.t =
  let distinct = List.sort_uniq Word.compare gaps in
  let has_empty = List.exists (fun g -> Array.length g = 0) distinct in
  let nonempty = List.filter (fun g -> Array.length g > 0) distinct in
  match (nonempty, has_empty) with
  | [], _ -> Regex.eps
  | ws, false -> Regex.alt_list (List.map Regex.word ws)
  | ws, true -> Regex.opt (Regex.alt_list (List.map Regex.word ws))

(* Align the marked prefixes: common tag skeleton + per-sample gaps. *)
let aligned_prefix samples =
  let prefixes = List.map prefix_of samples in
  let skeleton = Align.lcs_many_guided prefixes in
  let gap_rows =
    List.map
      (fun p ->
        match Align.carve p skeleton with
        | Some gaps -> gaps
        | None -> invalid_arg "Merge: skeleton is not a common subsequence")
      prefixes
  in
  (* transpose: k+1 columns of gaps *)
  let k = Array.length skeleton in
  let columns =
    List.init (k + 1) (fun i -> List.map (fun row -> List.nth row i) gap_rows)
  in
  (List.map gap_regex columns, Word.to_list skeleton)

let check samples =
  match samples with
  | [] -> Error No_samples
  | s :: rest ->
      let mark = s.word.(s.mark_pos) in
      if List.for_all (fun s' -> s'.word.(s'.mark_pos) = mark) rest then
        Ok mark
      else Error Mark_symbol_differs

let template_decomposition alpha samples =
  ignore alpha;
  match check samples with
  | Error e -> Error e
  | Ok mark ->
      let segments, pivots = aligned_prefix samples in
      Ok ({ Pivot.segments; pivots }, mark)

let merge ?(generalize_suffix = true) alpha samples =
  match check samples with
  | Error e -> Error e
  | Ok mark ->
      let segments, pivots = aligned_prefix samples in
      let left = Pivot.recompose { Pivot.segments; pivots } in
      let right =
        if generalize_suffix then Regex.sigma_star
        else
          let suffixes = List.map suffix_of samples in
          let segs, pivs =
            let skeleton = Align.lcs_many_guided suffixes in
            let rows =
              List.map
                (fun s ->
                  match Align.carve s skeleton with
                  | Some gaps -> gaps
                  | None -> invalid_arg "Merge: suffix skeleton")
                suffixes
            in
            let k = Array.length skeleton in
            let cols =
              List.init (k + 1) (fun i ->
                  List.map (fun row -> List.nth row i) rows)
            in
            (List.map gap_regex cols, Word.to_list skeleton)
          in
          Pivot.recompose { Pivot.segments = segs; pivots = pivs }
      in
      Ok (Extraction.make alpha left mark right)

(** A practical HTML tokenizer.

    Handles start/end tags with quoted, unquoted, and valueless
    attributes, self-closing syntax, comments, doctype, and the raw-text
    content model of [script] and [style] (their bodies are emitted as a
    single [Text] token, unparsed).  Malformed input never raises: stray
    [<] characters are treated as text, unterminated constructs run to
    end of input.  This is the §3 substrate: pages become token streams
    before being abstracted to tag sequences. *)

val tokenize : string -> Html_token.t list

val tags_only : Html_token.t list -> Html_token.t list
(** Drop text, comments, and doctype — the paper's abstraction keeps
    only the tag skeleton. *)

val decode_entities : string -> string
(** Resolve character references ([&lt;] [&gt;] [&amp;] [&quot;]
    [&apos;] and numeric [&#n;] for printable ASCII); anything
    unrecognized is kept verbatim.  Exposed so the fused front-end
    ([Front]) can decode a refined attribute-value {e slice} with
    byte-identical semantics to the tree path's attribute decoding. *)

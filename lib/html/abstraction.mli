(** Abstraction levels for the page → token-sequence mapping.

    §3: "It is easy to enrich this model to take the tag attributes into
    account."  [Tags] is the paper's default (tag names only);
    [Tags_with_attrs] refines selected elements by a selected attribute's
    value, e.g. refining [INPUT] by [type] distinguishes
    [INPUT:type=text] from [INPUT:type=radio].  Finer abstractions make
    concepts more precise (fewer decoys match) at the cost of a larger,
    page-dependent alphabet — experiment E9 measures the trade-off. *)

type t =
  | Tags
  | Tags_with_attrs of (string * string) list
      (** [(element, attribute)] pairs to refine, e.g.
          [[("INPUT", "type")]] *)

val start_symbol : t -> string -> Html_token.attr list -> string
(** Symbol name for a start tag (upper-case element name, possibly
    refined as [NAME:attr=value]). *)

val end_symbol : string -> string
(** ["/NAME"] — end tags are never refined. *)

val refinements : t -> string -> string option
(** The refining attribute for an element, if any. *)

val to_string : t -> string
(** Persistence form: ["tags"] or ["tags+attrs EL.ATTR,EL.ATTR"] — the
    wrapper-file and [.rxc]-artifact metadata encoding ({!of_string}
    inverts it). *)

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit

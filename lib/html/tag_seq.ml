type origin = Open_of of Html_tree.path | Close_of of Html_tree.path

exception Unknown_symbol of string

let () =
  Printexc.register_printer (function
    | Unknown_symbol name ->
        Some (Printf.sprintf "Tag_seq.Unknown_symbol(%S): tag not in alphabet" name)
    | _ -> None)

module SS = Set.Make (String)

let doc_symbols abs doc =
  Html_tree.fold
    (fun acc _ nd ->
      match nd with
      | Html_tree.Element { name; attrs; _ } ->
          let acc = SS.add (Abstraction.start_symbol abs name attrs) acc in
          if Html_tree.is_void name then acc
          else SS.add (Abstraction.end_symbol name) acc
      | Html_tree.Text _ | Html_tree.Comment _ -> acc)
    SS.empty doc

let tag_names ?(abs = Abstraction.Tags) doc = SS.elements (doc_symbols abs doc)

let alphabet_of_docs ?(abs = Abstraction.Tags) docs =
  let names =
    List.fold_left (fun acc d -> SS.union acc (doc_symbols abs d)) SS.empty docs
  in
  Alphabet.make (SS.elements names)

let emit_doc abs alpha doc =
  let syms = ref [] and origins = ref [] in
  let push s o =
    syms := s :: !syms;
    origins := o :: !origins
  in
  let code name =
    match Alphabet.find alpha name with
    | Some c -> c
    | None -> raise (Unknown_symbol name)
  in
  let rec go rev_path i nodes =
    match nodes with
    | [] -> ()
    | nd :: rest ->
        let path = List.rev (i :: rev_path) in
        (match nd with
        | Html_tree.Element { name; attrs; children } ->
            push (code (Abstraction.start_symbol abs name attrs)) (Open_of path);
            if not (Html_tree.is_void name) then begin
              go (i :: rev_path) 0 children;
              push (code (Abstraction.end_symbol name)) (Close_of path)
            end
        | Html_tree.Text _ | Html_tree.Comment _ -> ());
        go rev_path (i + 1) rest
  in
  go [] 0 doc;
  (Word.of_list (List.rev !syms), Array.of_list (List.rev !origins))

let of_doc_indexed ?(abs = Abstraction.Tags) alpha doc = emit_doc abs alpha doc
let of_doc ?(abs = Abstraction.Tags) alpha doc = fst (emit_doc abs alpha doc)

let mark_of_path ?(abs = Abstraction.Tags) alpha doc path =
  match Html_tree.node_at doc path with
  | Some (Html_tree.Element _) ->
      let word, origins = emit_doc abs alpha doc in
      let found = ref None in
      Array.iteri
        (fun i o -> if !found = None && o = Open_of path then found := Some i)
        origins;
      (match !found with Some i -> Some (word, i) | None -> None)
  | Some (Html_tree.Text _ | Html_tree.Comment _) | None -> None

let path_of_mark ?(abs = Abstraction.Tags) alpha doc i =
  let _, origins = emit_doc abs alpha doc in
  if i < 0 || i >= Array.length origins then None
  else match origins.(i) with Open_of p -> Some p | Close_of p -> Some p

(** The §3 abstraction: documents as tag sequences over an interned
    alphabet, with a bidirectional mapping between sequence positions and
    tree nodes so that a target {e node} can be marked as a sequence
    {e position} (and an extracted position mapped back to a node).

    Start tags map to symbols named like the tag ([FORM]) — or, under a
    finer {!Abstraction.t}, refined by an attribute value
    ([INPUT:type=text]).  End tags of non-void elements map to [/FORM].
    Text and comments are dropped, exactly as in the paper's
    representation.  All functions take the abstraction as an optional
    argument defaulting to {!Abstraction.Tags} (the paper's model). *)

type origin =
  | Open_of of Html_tree.path  (** token is the start tag of this node *)
  | Close_of of Html_tree.path

exception Unknown_symbol of string
(** A document emitted a symbol the alphabet does not contain.  The
    payload is the full symbol name (which may itself contain [:] or
    [=] under refined abstractions — no string parsing needed, unlike
    the [Invalid_argument] message this replaced).  Raised by
    {!of_doc}/{!of_doc_indexed} and by the fused front-end
    ([Front]), so both paths report unknown tags identically. *)

val tag_names : ?abs:Abstraction.t -> Html_tree.doc -> string list
(** Symbol names occurring in a document (sorted, distinct; includes
    refined start symbols and [/T] close symbols). *)

val alphabet_of_docs : ?abs:Abstraction.t -> Html_tree.doc list -> Alphabet.t
(** Alphabet covering every symbol the given documents emit. *)

val of_doc : ?abs:Abstraction.t -> Alphabet.t -> Html_tree.doc -> Word.t
(** The tag sequence.  @raise Unknown_symbol if the document emits a
    symbol missing from the alphabet. *)

val of_doc_indexed :
  ?abs:Abstraction.t -> Alphabet.t -> Html_tree.doc -> Word.t * origin array
(** Tag sequence plus, for each position, the node it came from.
    @raise Unknown_symbol like {!of_doc}. *)

val mark_of_path :
  ?abs:Abstraction.t ->
  Alphabet.t ->
  Html_tree.doc ->
  Html_tree.path ->
  (Word.t * int) option
(** [(word, i)] where [i] is the position of the start tag of the node
    at the given path; [None] if the path misses or addresses a
    text/comment node. *)

val path_of_mark :
  ?abs:Abstraction.t -> Alphabet.t -> Html_tree.doc -> int -> Html_tree.path option
(** Inverse: which node's start (or end) tag sits at position [i]. *)

type node =
  | Element of {
      name : string;
      attrs : Html_token.attr list;
      children : node list;
    }
  | Text of string
  | Comment of string

type doc = node list

let void_names =
  [
    "AREA"; "BASE"; "BR"; "COL"; "EMBED"; "HR"; "IMG"; "INPUT"; "LINK";
    "META"; "PARAM"; "SOURCE"; "TRACK"; "WBR";
  ]

let is_void name = List.mem (String.uppercase_ascii name) void_names

(* closes_implicitly incoming open_tag: does <incoming> implicitly close
   the currently open <open_tag>? *)
let closes_implicitly incoming open_tag =
  let block =
    [
      "P"; "DIV"; "TABLE"; "UL"; "OL"; "LI"; "H1"; "H2"; "H3"; "H4"; "H5";
      "H6"; "FORM"; "HR"; "PRE"; "BLOCKQUOTE"; "SECTION"; "HEADER"; "FOOTER";
    ]
  in
  match open_tag with
  | "P" -> List.mem incoming block
  | "LI" -> incoming = "LI"
  | "TR" -> incoming = "TR"
  | "TD" | "TH" -> List.mem incoming [ "TD"; "TH"; "TR" ]
  | "OPTION" -> incoming = "OPTION"
  | "DT" | "DD" -> List.mem incoming [ "DT"; "DD" ]
  | _ -> false

(* The builder keeps a stack of open elements as (name, attrs, rev
   children).  Closing pops one frame and appends the finished element to
   its parent's children. *)
type frame = { fname : string; fattrs : Html_token.attr list; mutable rev_children : node list }

let of_tokens (toks : Html_token.t list) : doc =
  let root = { fname = ""; fattrs = []; rev_children = [] } in
  let stack = ref [ root ] in
  let top () = List.hd !stack in
  let add_node nd = (top ()).rev_children <- nd :: (top ()).rev_children in
  let close_one () =
    match !stack with
    | fr :: (parent :: _ as rest) ->
        stack := rest;
        ignore parent;
        add_node
          (Element
             {
               name = fr.fname;
               attrs = fr.fattrs;
               children = List.rev fr.rev_children;
             })
    | _ -> ()
  in
  let rec close_until name =
    match !stack with
    | fr :: _ :: _ when fr.fname = name -> close_one ()
    | _ :: _ :: _ ->
        close_one ();
        close_until name
    | _ -> ()
  in
  let open_in_stack name =
    List.exists (fun fr -> fr.fname = name) !stack
  in
  List.iter
    (fun tok ->
      match tok with
      | Html_token.Text t -> add_node (Text t)
      | Html_token.Comment c -> add_node (Comment c)
      | Html_token.Doctype _ -> ()
      | Html_token.Start_tag { name; attrs; self_closing } ->
          (* implied end tags *)
          let rec imply () =
            match !stack with
            | fr :: _ :: _ when closes_implicitly name fr.fname ->
                close_one ();
                imply ()
            | _ -> ()
          in
          imply ();
          if self_closing || is_void name then
            add_node (Element { name; attrs; children = [] })
          else stack := { fname = name; fattrs = attrs; rev_children = [] } :: !stack
      | Html_token.End_tag name ->
          if is_void name then ()
          else if open_in_stack name then close_until name
          (* unmatched end tag: drop *))
    toks;
  (* close any leftovers *)
  while List.length !stack > 1 do
    close_one ()
  done;
  List.rev root.rev_children

let parse s = of_tokens (Html_lexer.tokenize s)

let element ?(attrs = []) name children =
  Element
    {
      name = String.uppercase_ascii name;
      attrs =
        List.map (fun (name, value) -> { Html_token.name; value }) attrs;
      children;
    }

let text t = Text t

let to_string ?(indent = false) doc =
  let buf = Buffer.create 1024 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth nd =
    match nd with
    | Text t ->
        pad depth;
        Buffer.add_string buf (Html_token.escape_text t);
        nl ()
    | Comment c ->
        pad depth;
        Buffer.add_string buf ("<!--" ^ c ^ "-->");
        nl ()
    | Element { name; attrs; children } ->
        pad depth;
        Buffer.add_string buf
          (Html_token.to_string
             (Html_token.Start_tag { name; attrs; self_closing = false }));
        if is_void name then nl ()
        else begin
          nl ();
          List.iter (emit (depth + 1)) children;
          pad depth;
          Buffer.add_string buf (Html_token.to_string (Html_token.End_tag name));
          nl ()
        end
  in
  List.iter (emit 0) doc;
  Buffer.contents buf

type path = int list

let rec node_at_nodes nodes path =
  match path with
  | [] -> None
  | [ i ] -> List.nth_opt nodes i
  | i :: rest -> (
      match List.nth_opt nodes i with
      | Some (Element { children; _ }) -> node_at_nodes children rest
      | Some (Text _ | Comment _) | None -> None)

let node_at doc path = node_at_nodes doc path

let rec replace_nodes nodes path f =
  match path with
  | [] -> None
  | [ i ] ->
      if i < 0 || i >= List.length nodes then None
      else
        Some
          (List.concat
             (List.mapi (fun j nd -> if j = i then f nd else [ nd ]) nodes))
  | i :: rest -> (
      match List.nth_opt nodes i with
      | Some (Element { name; attrs; children }) -> (
          match replace_nodes children rest f with
          | None -> None
          | Some children' ->
              Some
                (List.mapi
                   (fun j nd ->
                     if j = i then Element { name; attrs; children = children' }
                     else nd)
                   nodes))
      | Some (Text _ | Comment _) | None -> None)

let replace_at doc path f = replace_nodes doc path f

let rec insert_nodes nodes path nd =
  match path with
  | [] -> None
  | [ i ] ->
      if i < 0 || i > List.length nodes then None
      else begin
        let rec ins j = function
          | rest when j = i -> nd :: rest
          | [] -> [] (* unreachable: i ≤ length *)
          | x :: rest -> x :: ins (j + 1) rest
        in
        Some (ins 0 nodes)
      end
  | i :: rest -> (
      match List.nth_opt nodes i with
      | Some (Element { name; attrs; children }) -> (
          match insert_nodes children rest nd with
          | None -> None
          | Some children' ->
              Some
                (List.mapi
                   (fun j x ->
                     if j = i then Element { name; attrs; children = children' }
                     else x)
                   nodes))
      | Some (Text _ | Comment _) | None -> None)

let insert_at doc path nd = insert_nodes doc path nd

let fold f acc doc =
  let rec go acc rev_path i nodes =
    match nodes with
    | [] -> acc
    | nd :: rest ->
        let path = List.rev (i :: rev_path) in
        let acc = f acc path nd in
        let acc =
          match nd with
          | Element { children; _ } -> go acc (i :: rev_path) 0 children
          | Text _ | Comment _ -> acc
        in
        go acc rev_path (i + 1) rest
  in
  go acc [] 0 doc

let find_all pred doc =
  List.rev
    (fold (fun acc path nd -> if pred nd then (path, nd) :: acc else acc) [] doc)

let find_elements name doc =
  let uname = String.uppercase_ascii name in
  find_all
    (function Element { name; _ } -> name = uname | Text _ | Comment _ -> false)
    doc

let count_nodes doc = fold (fun n _ _ -> n + 1) 0 doc

let equal (a : doc) (b : doc) = a = b

(* Hand-rolled scanner over the input string.  [pos] is the cursor; every
   helper returns the new cursor position.  Never raises on malformed
   input: anything unrecognizable is swallowed as text. *)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012'

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = ':'


(* Decode the basic character entities; unknown entities pass through
   verbatim.  Together with escaping on output this makes
   serialize ∘ parse a fixpoint on text and attribute values. *)
let decode_entities s =
  if not (String.contains s '&') then s
  else begin
    let n = String.length s in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        let semi =
          let rec find j =
            if j >= n || j > !i + 10 then None
            else if s.[j] = ';' then Some j
            else find (j + 1)
          in
          find (!i + 1)
        in
        match semi with
        | None ->
            Buffer.add_char buf '&';
            incr i
        | Some j -> (
            let entity = String.sub s (!i + 1) (j - !i - 1) in
            let decoded =
              match entity with
              | "lt" -> Some "<"
              | "gt" -> Some ">"
              | "amp" -> Some "&"
              | "quot" -> Some "\""
              | "apos" -> Some "'"
              | _ ->
                  if String.length entity > 1 && entity.[0] = '#' then
                    let num = String.sub entity 1 (String.length entity - 1) in
                    match int_of_string_opt num with
                    | Some c when c >= 32 && c < 127 ->
                        Some (String.make 1 (Char.chr c))
                    | _ -> None
                  else None
            in
            match decoded with
            | Some d ->
                Buffer.add_string buf d;
                i := j + 1
            | None ->
                Buffer.add_char buf '&';
                incr i)
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let tokenize (s : string) : Html_token.t list =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let skip_space i =
    let i = ref i in
    while !i < n && is_space s.[!i] do incr i done;
    !i
  in
  let scan_name i =
    let j = ref i in
    while !j < n && is_name_char s.[!j] do incr j done;
    (String.sub s i (!j - i), !j)
  in
  let index_from_opt i c = if i >= n then None else String.index_from_opt s i c in
  (* Attribute: name [= value]. *)
  let scan_attr i =
    let name, i = scan_name i in
    if name = "" then None
    else
      let i = skip_space i in
      if i < n && s.[i] = '=' then begin
        let i = skip_space (i + 1) in
        if i < n && (s.[i] = '"' || s.[i] = '\'') then
          let quote = s.[i] in
          match index_from_opt (i + 1) quote with
          | Some j ->
              Some
                ( {
                    Html_token.name = String.lowercase_ascii name;
                    value = Some (decode_entities (String.sub s (i + 1) (j - i - 1)));
                  },
                  j + 1 )
          | None ->
              Some
                ( {
                    Html_token.name = String.lowercase_ascii name;
                    value = Some (decode_entities (String.sub s (i + 1) (n - i - 1)));
                  },
                  n )
        else begin
          (* unquoted value: up to space, '>', or '/' *)
          let j = ref i in
          while
            !j < n && (not (is_space s.[!j])) && s.[!j] <> '>' && s.[!j] <> '/'
          do
            incr j
          done;
          Some
            ( {
                Html_token.name = String.lowercase_ascii name;
                value = Some (decode_entities (String.sub s i (!j - i)));
              },
              !j )
        end
      end
      else
        Some ({ Html_token.name = String.lowercase_ascii name; value = None }, i)
  in
  let rec scan_attrs i acc =
    let i = skip_space i in
    if i >= n then (List.rev acc, i, false)
    else if s.[i] = '>' then (List.rev acc, i + 1, false)
    else if s.[i] = '/' then
      let j = skip_space (i + 1) in
      if j < n && s.[j] = '>' then (List.rev acc, j + 1, true)
      else scan_attrs (i + 1) acc
    else
      match scan_attr i with
      | Some (a, j) -> scan_attrs j (a :: acc)
      | None -> scan_attrs (i + 1) acc
  in
  (* Raw-text elements: swallow everything until the matching end tag. *)
  let raw_text_until i name =
    let close = "</" ^ String.lowercase_ascii name in
    let low = String.lowercase_ascii s in
    let rec find j =
      if j + String.length close > n then n
      else if String.sub low j (String.length close) = close then j
      else find (j + 1)
    in
    let j = find i in
    if j > i then emit (Html_token.Text (String.sub s i (j - i)));
    j
  in
  let text_start = ref 0 in
  let flush_text upto =
    if upto > !text_start then
      emit
        (Html_token.Text
           (decode_entities (String.sub s !text_start (upto - !text_start))))
  in
  let i = ref 0 in
  while !i < n do
    if s.[!i] <> '<' then incr i
    else begin
      let start = !i in
      if start + 1 >= n then incr i
      else
        let c = s.[start + 1] in
        if c = '!' then begin
          flush_text start;
          if start + 3 < n && s.[start + 2] = '-' && s.[start + 3] = '-' then begin
            (* comment *)
            let rec find j =
              if j + 2 >= n then n
              else if s.[j] = '-' && s.[j + 1] = '-' && s.[j + 2] = '>' then j
              else find (j + 1)
            in
            let j = find (start + 4) in
            emit (Html_token.Comment (String.sub s (start + 4) (max 0 (j - start - 4))));
            i := min n (j + 3)
          end
          else begin
            let j =
              match index_from_opt (start + 1) '>' with Some j -> j | None -> n
            in
            emit (Html_token.Doctype (String.sub s (start + 1) (j - start - 1)));
            i := min n (j + 1)
          end;
          text_start := !i
        end
        else if c = '/' then begin
          let name, j = scan_name (start + 2) in
          if name = "" then incr i
          else begin
            flush_text start;
            let j =
              match index_from_opt j '>' with Some k -> k + 1 | None -> n
            in
            emit (Html_token.End_tag (String.uppercase_ascii name));
            i := j;
            text_start := !i
          end
        end
        else if is_name_char c then begin
          let name, j = scan_name (start + 1) in
          flush_text start;
          let attrs, j, self_closing = scan_attrs j [] in
          let uname = String.uppercase_ascii name in
          emit (Html_token.Start_tag { name = uname; attrs; self_closing });
          i := j;
          text_start := !i;
          if (not self_closing) && (uname = "SCRIPT" || uname = "STYLE") then begin
            let k = raw_text_until j uname in
            i := k;
            text_start := k
          end
        end
        else incr i
    end
  done;
  flush_text n;
  (* Drop whitespace-only text tokens. *)
  List.rev !toks
  |> List.filter (function
       | Html_token.Text t -> not (String.for_all is_space t)
       | Html_token.Start_tag _ | Html_token.End_tag _ | Html_token.Comment _
       | Html_token.Doctype _ ->
           true)

let tags_only toks =
  List.filter
    (function
      | Html_token.Start_tag _ | Html_token.End_tag _ -> true
      | Html_token.Text _ | Html_token.Comment _ | Html_token.Doctype _ ->
          false)
    toks

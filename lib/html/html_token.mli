(** HTML tokens.

    Tag names are normalized to upper case (matching the paper's
    [P H1 /H1 P FORM …] notation); attribute names to lower case. *)

type attr = { name : string; value : string option }

type t =
  | Start_tag of { name : string; attrs : attr list; self_closing : bool }
  | End_tag of string
  | Text of string  (** text run; basic entities decoded by the lexer *)
  | Comment of string
  | Doctype of string

val tag_name : t -> string option
(** The tag name of a start/end tag, [None] for other tokens. *)

val attr : t -> string -> string option option
(** [attr tok name] — [None] if not a start tag or attribute absent;
    [Some v] gives the (optional) attribute value. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Re-serialize the token as HTML source.  Text and attribute values
    are entity-escaped, making serialize ∘ parse a fixpoint. *)

val escape_text : string -> string
val escape_attr : string -> string

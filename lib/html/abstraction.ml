type t = Tags | Tags_with_attrs of (string * string) list

let refinements t name =
  match t with
  | Tags -> None
  | Tags_with_attrs specs ->
      List.find_map
        (fun (el, attr) ->
          if String.uppercase_ascii el = String.uppercase_ascii name then
            Some attr
          else None)
        specs

let start_symbol t name attrs =
  let name = String.uppercase_ascii name in
  match refinements t name with
  | None -> name
  | Some attr -> (
      match
        List.find_opt (fun a -> a.Html_token.name = attr) attrs
      with
      | Some { Html_token.value = Some v; _ } ->
          Printf.sprintf "%s:%s=%s" name attr (String.lowercase_ascii v)
      | Some { Html_token.value = None; _ } | None -> name)

let end_symbol name = "/" ^ String.uppercase_ascii name

let pp ppf = function
  | Tags -> Format.pp_print_string ppf "tags"
  | Tags_with_attrs specs ->
      Format.fprintf ppf "tags+attrs(%s)"
        (String.concat ","
           (List.map (fun (el, at) -> el ^ "." ^ at) specs))

type t = Tags | Tags_with_attrs of (string * string) list

let refinements t name =
  match t with
  | Tags -> None
  | Tags_with_attrs specs ->
      List.find_map
        (fun (el, attr) ->
          if String.uppercase_ascii el = String.uppercase_ascii name then
            Some attr
          else None)
        specs

let start_symbol t name attrs =
  let name = String.uppercase_ascii name in
  match refinements t name with
  | None -> name
  | Some attr -> (
      match
        List.find_opt (fun a -> a.Html_token.name = attr) attrs
      with
      | Some { Html_token.value = Some v; _ } ->
          Printf.sprintf "%s:%s=%s" name attr (String.lowercase_ascii v)
      | Some { Html_token.value = None; _ } | None -> name)

let end_symbol name = "/" ^ String.uppercase_ascii name

(* Persistence encoding, shared by Wrapper_io and the .rxc artifact
   metadata: "tags", or "tags+attrs EL.ATTR,EL.ATTR". *)
let to_string = function
  | Tags -> "tags"
  | Tags_with_attrs specs ->
      "tags+attrs "
      ^ String.concat "," (List.map (fun (el, at) -> el ^ "." ^ at) specs)

let of_string s =
  let s = String.trim s in
  if s = "tags" then Ok Tags
  else
    match String.index_opt s ' ' with
    | Some i when String.sub s 0 i = "tags+attrs" ->
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        let specs =
          String.split_on_char ',' rest
          |> List.filter (fun x -> String.trim x <> "")
          |> List.map (fun spec ->
                 match String.index_opt spec '.' with
                 | Some j ->
                     Ok
                       ( String.sub spec 0 j,
                         String.sub spec (j + 1) (String.length spec - j - 1) )
                 | None -> Error ("bad refinement spec: " ^ spec))
        in
        let rec collect acc = function
          | [] -> Ok (Tags_with_attrs (List.rev acc))
          | Ok x :: rest -> collect (x :: acc) rest
          | Error e :: _ -> Error e
        in
        collect [] specs
    | _ -> Error ("unknown abstraction: " ^ s)

let pp ppf = function
  | Tags -> Format.pp_print_string ppf "tags"
  | Tags_with_attrs specs ->
      Format.fprintf ppf "tags+attrs(%s)"
        (String.concat ","
           (List.map (fun (el, at) -> el ^ "." ^ at) specs))

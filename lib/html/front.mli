(** Fused page front-end: one pass over raw HTML bytes straight to
    interned symbol ids.

    The §3 pipeline materializes three intermediate structures per page
    — a token list ([Html_lexer]), a [Html_tree.doc], and a [Word.t]
    plus origin array ([Tag_seq]) — and allocates a symbol-name string
    per tag before interning it through the alphabet's hash table.
    This module fuses the whole front: a single scan over the raw
    bytes resolves each tag {e slice} directly to its symbol id via a
    precomputed case-folded token table (open addressing keyed on the
    lexeme slice — no name string, no [Hashtbl] probe on an allocated
    key), replays [Html_tree.of_tokens]'s structural rules (implicit
    closes, void and self-closing elements, the [script]/[style]
    raw-text model) on an O(depth) stack of open frames, and feeds ids
    to the matcher as they are produced.

    Equivalence contract: for every input string — well-formed or not —
    the symbol sequence equals
    [Tag_seq.of_doc_indexed alpha (Html_tree.parse s)], including which
    unknown symbol is reported first, and the extracted node path
    equals the tree path the origin array yields.  The [front] oracle
    layer and the fuzz totality suite check this differentially.

    Matching runs in {e class} space: the matcher's
    {!Extraction.matcher_compressed} tables collapse symbols with
    identical transition columns, so the hot loop steps a DFA whose
    rows are indexed by the handful of classes the expression actually
    distinguishes. *)

type table
(** Precomputed token-interning table for one (alphabet, abstraction)
    pair.  Immutable after {!build}; shared freely across domains. *)

val build : ?abs:Abstraction.t -> Alphabet.t -> table
(** Index every symbol the abstraction can emit: plain start symbols,
    [/T] close symbols, and — under [Tags_with_attrs] — the refined
    [EL:attr=value] symbols grouped under their element's entry.
    Alphabet symbols no lexed tag can ever produce (lowercase names,
    stray [=] forms under [Tags]) are unreachable and get no entry. *)

val alphabet : table -> Alphabet.t
val abstraction : table -> Abstraction.t

val word : table -> string -> Word.t
(** The full symbol sequence of a page — the fused equivalent of
    [Tag_seq.of_doc ~abs alpha (Html_tree.parse s)], for differential
    tests.  @raise Tag_seq.Unknown_symbol exactly when the tree path
    does (same first symbol in emission order). *)

type error =
  | No_match
  | Ambiguous of int list  (** candidate split positions, ascending *)
  | Unknown_symbol of string

val extract : table -> Extraction.matcher -> string -> (Html_tree.path, error) result
(** Raw HTML in, winning node's path out.  The matcher must be
    compiled over [alphabet table].  Online (Σ*-right) matchers run
    truly streaming: no document, no word, no origin array — only the
    open-tag stack, from which the first hit's path is captured.
    Offline matchers buffer class ids in an int arena plus a
    parent-pointer node arena (still no strings, no tree) and run the
    two-pass {!Extraction.matcher_splits_classes}. *)

val splits : table -> Extraction.matcher -> string -> (int list, string) result
(** All split positions (ascending) over the page's symbol sequence;
    [Error tag] when the page emits an unknown symbol. *)

(** {1 Incremental streaming}

    The same engine, fed chunk by chunk — the [serve] daemon's [page]
    frames push raw HTML fragments through one of these inside the
    session fiber.  A construct split across a chunk boundary is
    carried and re-scanned when more bytes arrive, so chunk boundaries
    never change the emitted sequence (the fuzz suite checks every
    split point). *)

type stream

val stream_make : table -> stream

val stream_feed : stream -> string -> emit:(int -> unit) -> (unit, string) result
(** Feed a chunk; [emit] receives each resolved symbol id in emission
    order.  [Error tag] reports the first unknown symbol, after which
    the stream is dead (subsequent calls are no-ops returning [Ok ()]).
    Exceptions raised by [emit] itself (e.g. a session budget
    exhausting mid-page) propagate to the caller. *)

val stream_finish : stream -> emit:(int -> unit) -> (unit, string) result
(** End of input: flush any carried bytes in end-of-file mode and emit
    the close symbols of still-open elements, innermost first — the
    builder's leftover-closing rule. *)

(** {1 Statistics}

    Process-global counters (pages and bytes processed, token tables
    built and their entry totals, interner hit/miss traffic, and the
    most recent matcher's symbol-alphabet vs class-table sizes),
    exported as the ["front"] {!Obs.metrics_json} provider and
    printable for [--stats] reports.  Unconditional, like the pool's —
    the fused path's vitals must not depend on [--trace]. *)

type stats = {
  pages : int;
  bytes : int;
  tables : int;
  entries : int;
  interner_hits : int;  (** tag slices resolved to an interned entry *)
  interner_misses : int;  (** slices with no entry (unknown tags) *)
  last_alpha : int;  (** symbol count of the last matcher run fused *)
  last_classes : int;  (** its compressed class count *)
}

val stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

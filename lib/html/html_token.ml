type attr = { name : string; value : string option }

type t =
  | Start_tag of { name : string; attrs : attr list; self_closing : bool }
  | End_tag of string
  | Text of string
  | Comment of string
  | Doctype of string

let tag_name = function
  | Start_tag { name; _ } -> Some name
  | End_tag name -> Some name
  | Text _ | Comment _ | Doctype _ -> None

let attr tok name =
  match tok with
  | Start_tag { attrs; _ } -> (
      match List.find_opt (fun a -> a.name = name) attrs with
      | Some a -> Some a.value
      | None -> None)
  | End_tag _ | Text _ | Comment _ | Doctype _ -> None

let escape_attr v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "&quot;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_text t =
  let buf = Buffer.create (String.length t) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    t;
  Buffer.contents buf

let pp_attr ppf a =
  match a.value with
  | None -> Format.fprintf ppf " %s" a.name
  | Some v -> Format.fprintf ppf " %s=\"%s\"" a.name (escape_attr v)

let pp ppf = function
  | Start_tag { name; attrs; self_closing } ->
      Format.fprintf ppf "<%s%a%s>" (String.lowercase_ascii name)
        (fun ppf -> List.iter (pp_attr ppf))
        attrs
        (if self_closing then " /" else "")
  | End_tag name -> Format.fprintf ppf "</%s>" (String.lowercase_ascii name)
  | Text s -> Format.pp_print_string ppf (escape_text s)
  | Comment s -> Format.fprintf ppf "<!--%s-->" s
  | Doctype s -> Format.fprintf ppf "<!%s>" s

let to_string t = Format.asprintf "%a" pp t

(* Fused lex → intern → match front-end.  One pass over the raw bytes;
   per-tag work is a slice hash probe plus a DFA step.  The scanner
   replicates Html_lexer byte-for-byte and the builder replicates
   Html_tree.of_tokens' structural rules, so the emitted symbol
   sequence (and any Unknown_symbol error) is identical to the tree
   path's — the [front] oracle layer holds the two against each other.

   Known cost trade-off: a construct that straddles a chunk boundary
   in streaming mode is carried and re-scanned from its '<', so a
   single tag much larger than the chunk size re-scans quadratically.
   Tags are small in practice; text, comments, script bodies and
   doctypes all stream without carry. *)

(* --- production counters (cheap, unconditional, like serve's) --- *)

let pages_total = Atomic.make 0
let bytes_total = Atomic.make 0
let tables_built = Atomic.make 0
let entries_total = Atomic.make 0
let interner = Obs.Counter2.make ()

(* last matcher geometry seen by extract/splits: alphabet width vs
   compressed class count — the compression ratio --stats reports *)
let last_alpha = Atomic.make 0
let last_classes = Atomic.make 0

(* --- character classes (must mirror Html_lexer exactly) --- *)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\012'

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = ':'

(* --- implicit-close groups (must mirror Html_tree.closes_implicitly) ---

   An open element belongs to at most one group; an incoming start tag
   carries a bitmask of the groups it closes.  The bit test replaces
   the name comparisons of the tree builder's [imply] loop. *)

let g_p = 0
let g_li = 1
let g_tr = 2
let g_td = 3 (* TD | TH *)
let g_option = 4
let g_dt = 5 (* DT | DD *)

let block_list =
  [
    "P"; "DIV"; "TABLE"; "UL"; "OL"; "LI"; "H1"; "H2"; "H3"; "H4"; "H5";
    "H6"; "FORM"; "HR"; "PRE"; "BLOCKQUOTE"; "SECTION"; "HEADER"; "FOOTER";
  ]

let grp_of = function
  | "P" -> g_p
  | "LI" -> g_li
  | "TR" -> g_tr
  | "TD" | "TH" -> g_td
  | "OPTION" -> g_option
  | "DT" | "DD" -> g_dt
  | _ -> -1

let inflags_of k =
  let f = if List.mem k block_list then 1 lsl g_p else 0 in
  let f = if k = "LI" then f lor (1 lsl g_li) else f in
  let f = if k = "TR" then f lor (1 lsl g_tr) else f in
  let f = if k = "TD" || k = "TH" || k = "TR" then f lor (1 lsl g_td) else f in
  let f = if k = "OPTION" then f lor (1 lsl g_option) else f in
  let f = if k = "DT" || k = "DD" then f lor (1 lsl g_dt) else f in
  f

(* --- the token table --- *)

type entry = {
  e_key : string;  (* folded (uppercase) tag name *)
  e_open : int;  (* plain start symbol, -1 if not in the alphabet *)
  e_close : int;  (* "/KEY" symbol, -1 *)
  e_void : bool;
  e_raw : bool;  (* SCRIPT/STYLE raw-text content model *)
  e_grp : int;  (* implicit-close group when this element is open *)
  e_inflags : int;  (* groups an incoming tag of this name closes *)
  e_attr : string;  (* refining attribute, "" when unrefined *)
  e_vals : string array;  (* refined values (lowercase, entity-decoded) *)
  e_vsyms : int array;  (* symbol of [KEY:attr=vals.(i)] *)
}

let dummy =
  {
    e_key = "";
    e_open = -1;
    e_close = -1;
    e_void = false;
    e_raw = false;
    e_grp = -1;
    e_inflags = 0;
    e_attr = "";
    e_vals = [||];
    e_vsyms = [||];
  }

type table = {
  t_alpha : Alphabet.t;
  t_abs : Abstraction.t;
  t_slots : entry array;  (* open addressing; [dummy] marks empty *)
  t_mask : int;
}

let alphabet t = t.t_alpha
let abstraction t = t.t_abs

(* FNV-1a over upper-folded bytes; table keys are already uppercase so
   hashing a key string and hashing a slice that folds to it agree. *)
let fnv_prime = 0x01000193
let fnv_off = 0x811c9dc5

let fnv_str key =
  let h = ref fnv_off in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime) key;
  !h land max_int

let fnv_slice s pos len =
  let h = ref fnv_off in
  for k = pos to pos + len - 1 do
    h :=
      (!h lxor Char.code (Char.uppercase_ascii (String.unsafe_get s k)))
      * fnv_prime
  done;
  !h land max_int

let slice_is_key s pos len key =
  String.length key = len
  &&
  let ok = ref true in
  for k = 0 to len - 1 do
    if Char.uppercase_ascii (String.unsafe_get s (pos + k)) <> String.unsafe_get key k
    then ok := false
  done;
  !ok

(* lookup by slice; returns [dummy] on miss.  Counts interner traffic. *)
let lookup tbl s pos len =
  let mask = tbl.t_mask in
  let idx = ref (fnv_slice s pos len land mask) in
  let res = ref dummy in
  (try
     while true do
       let e = Array.unsafe_get tbl.t_slots (!idx land mask) in
       if e == dummy then raise_notrace Exit
       else if slice_is_key s pos len e.e_key then begin
         res := e;
         raise_notrace Exit
       end
       else incr idx
     done
   with Exit -> ());
  if !res == dummy then Obs.Counter2.miss interner else Obs.Counter2.hit interner;
  !res

(* A symbol is reachable as a plain start tag iff it could come out of
   Abstraction.start_symbol for some lexed name: nonempty, name
   characters only, already uppercase. *)
let valid_name nm =
  nm <> ""
  && String.for_all (fun c -> is_name_char c && Char.uppercase_ascii c = c) nm

type proto = {
  mutable p_open : int;
  mutable p_close : int;
  mutable p_vals : (string * int) list;
}

let build ?(abs = Abstraction.Tags) alpha =
  let protos : (string, proto) Hashtbl.t = Hashtbl.create 64 in
  let proto k =
    match Hashtbl.find_opt protos k with
    | Some p -> p
    | None ->
        let p = { p_open = -1; p_close = -1; p_vals = [] } in
        Hashtbl.add protos k p;
        p
  in
  (* Seed every refinable element, even when the alphabet holds none of
     its symbols: the capture of the refining attribute (and the error
     string it shapes) must happen for unknown-but-refined names too. *)
  (match abs with
  | Abstraction.Tags -> ()
  | Abstraction.Tags_with_attrs specs ->
      List.iter
        (fun (el, _) ->
          let k = String.uppercase_ascii el in
          if valid_name k then ignore (proto k))
        specs);
  let size = Alphabet.size alpha in
  for sym = 0 to size - 1 do
    let nm = Alphabet.name alpha sym in
    if String.length nm >= 2 && nm.[0] = '/' then begin
      let rest = String.sub nm 1 (String.length nm - 1) in
      if valid_name rest then (proto rest).p_close <- sym
    end
    else if valid_name nm then (proto nm).p_open <- sym
  done;
  (* refined symbols: for each key with a refining attribute, collect
     every alphabet symbol of the shape KEY:attr=value *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) protos [] in
  List.iter
    (fun k ->
      match Abstraction.refinements abs k with
      | None -> ()
      | Some attr ->
          let prefix = k ^ ":" ^ attr ^ "=" in
          let plen = String.length prefix in
          for sym = 0 to size - 1 do
            let nm = Alphabet.name alpha sym in
            if String.length nm > plen && String.sub nm 0 plen = prefix then
              (proto k).p_vals <-
                (String.sub nm plen (String.length nm - plen), sym)
                :: (proto k).p_vals
          done)
    keys;
  let count = Hashtbl.length protos in
  let cap = ref 8 in
  while !cap < 2 * (count + 1) do
    cap := !cap * 2
  done;
  let slots = Array.make !cap dummy in
  let mask = !cap - 1 in
  Hashtbl.iter
    (fun k p ->
      let vals = List.rev p.p_vals in
      let e =
        {
          e_key = k;
          e_open = p.p_open;
          e_close = p.p_close;
          e_void = List.mem k Html_tree.void_names;
          e_raw = k = "SCRIPT" || k = "STYLE";
          e_grp = grp_of k;
          e_inflags = inflags_of k;
          e_attr =
            (match Abstraction.refinements abs k with
            | Some a -> a
            | None -> "");
          e_vals = Array.of_list (List.map fst vals);
          e_vsyms = Array.of_list (List.map snd vals);
        }
      in
      let idx = ref (fnv_str k land mask) in
      while slots.(!idx land mask) != dummy do
        incr idx
      done;
      slots.(!idx land mask) <- e)
    protos;
  Atomic.incr tables_built;
  ignore (Atomic.fetch_and_add entries_total count);
  { t_alpha = alpha; t_abs = abs; t_slots = slots; t_mask = mask }

(* --- the engine --- *)

exception Unknown_sym of string
exception Need_more of int

type frame = {
  f_ent : entry;
  f_index : int;  (* child index in the parent *)
  f_node : int;  (* arena node id, -1 when the arena is off *)
  mutable f_next : int;  (* children added so far *)
}

type mode = M_text | M_comment | M_doctype | M_raw | M_rawend | M_skipgt

type engine = {
  tbl : table;
  arena : bool;
  mutable on_sym : int -> unit;
  mutable stack : frame list;  (* open elements, innermost first *)
  mutable root_next : int;
  mutable mode : mode;
  mutable text_nonspace : bool;  (* current text run survives the filter *)
  mutable dashes : int;  (* M_comment: trailing '-' count *)
  mutable raw_close : string;  (* M_raw: "</script" / "</style" *)
  mutable raw_base : string;  (* "SCRIPT" / "STYLE" *)
  mutable raw_m : int;  (* matched prefix of raw_close *)
  mutable raw_nonspace : bool;
  raw_name : Buffer.t;  (* M_rawend: end-tag name extension *)
  mutable cur_index : int;  (* valid during on_sym *)
  mutable cur_node : int;  (* valid during on_sym (arena) *)
  mutable n_emitted : int;
  mutable nd_parent : int array;
  mutable nd_index : int array;
  mutable nd_len : int;
  mutable carry : string;
  mutable dead : bool;
}

type stream = engine

let make_engine tbl ~arena =
  {
    tbl;
    arena;
    on_sym = ignore;
    stack = [];
    root_next = 0;
    mode = M_text;
    text_nonspace = false;
    dashes = 0;
    raw_close = "";
    raw_base = "";
    raw_m = 0;
    raw_nonspace = false;
    raw_name = Buffer.create 8;
    cur_index = -1;
    cur_node = -1;
    n_emitted = 0;
    nd_parent = (if arena then Array.make 64 0 else [||]);
    nd_index = (if arena then Array.make 64 0 else [||]);
    nd_len = 0;
    carry = "";
    dead = false;
  }

let grow a len =
  let b = Array.make (2 * max 1 (Array.length a)) 0 in
  Array.blit a 0 b 0 len;
  b

let add_child eng =
  match eng.stack with
  | fr :: _ ->
      let i = fr.f_next in
      fr.f_next <- i + 1;
      i
  | [] ->
      let i = eng.root_next in
      eng.root_next <- i + 1;
      i

let parent_node eng = match eng.stack with fr :: _ -> fr.f_node | [] -> -1

let alloc_node eng parent index =
  if not eng.arena then -1
  else begin
    if eng.nd_len = Array.length eng.nd_parent then begin
      eng.nd_parent <- grow eng.nd_parent eng.nd_len;
      eng.nd_index <- grow eng.nd_index eng.nd_len
    end;
    let nd = eng.nd_len in
    eng.nd_parent.(nd) <- parent;
    eng.nd_index.(nd) <- index;
    eng.nd_len <- nd + 1;
    nd
  end

(* path of the node whose symbol is being emitted (on_sym context) *)
let cur_path eng =
  let rec go acc = function
    | [] -> acc
    | fr :: rest -> go (fr.f_index :: acc) rest
  in
  go [ eng.cur_index ] eng.stack

(* path of an arena node, outermost index first *)
let node_path eng nd =
  let rec up acc nd =
    if nd < 0 then acc else up (eng.nd_index.(nd) :: acc) eng.nd_parent.(nd)
  in
  up [] nd

let emit eng sym =
  eng.n_emitted <- eng.n_emitted + 1;
  eng.on_sym sym

let close_top eng =
  match eng.stack with
  | [] -> ()
  | fr :: rest ->
      eng.stack <- rest;
      eng.cur_index <- fr.f_index;
      eng.cur_node <- fr.f_node;
      let e = fr.f_ent in
      if e.e_close >= 0 then emit eng e.e_close
      else raise (Unknown_sym ("/" ^ e.e_key))

let flush_text eng =
  if eng.text_nonspace then ignore (add_child eng);
  eng.text_nonspace <- false

let upper_slice s pos len =
  String.uppercase_ascii (String.sub s pos len)

(* find a captured value slice among an entry's refined values.  The
   tree path compares lowercase(decode(raw value)); without '&' the
   decode is the identity so a fold-compare on the slice suffices. *)
let find_val e s vpos vlen =
  let has_amp = ref false in
  for k = vpos to vpos + vlen - 1 do
    if String.unsafe_get s k = '&' then has_amp := true
  done;
  let n = Array.length e.e_vals in
  if !has_amp then begin
    let v =
      String.lowercase_ascii (Html_lexer.decode_entities (String.sub s vpos vlen))
    in
    let r = ref (-1) in
    for k = 0 to n - 1 do
      if !r < 0 && String.equal e.e_vals.(k) v then r := k
    done;
    !r
  end
  else begin
    let r = ref (-1) in
    for k = 0 to n - 1 do
      if !r < 0 then begin
        let v = e.e_vals.(k) in
        if String.length v = vlen then begin
          let ok = ref true in
          for j = 0 to vlen - 1 do
            if Char.lowercase_ascii (String.unsafe_get s (vpos + j))
               <> String.unsafe_get v j
            then ok := false
          done;
          if !ok then r := k
        end
      end
    done;
    !r
  end

let refined_error e s vpos vlen =
  e.e_key ^ ":" ^ e.e_attr ^ "="
  ^ String.lowercase_ascii (Html_lexer.decode_entities (String.sub s vpos vlen))

(* start-tag resolution: implied closes, then the (possibly refined)
   open symbol, then leaf/push and the raw-text mode switch.  All
   emissions happen in tree-walk order so the first Unknown_sym matches
   Tag_seq.of_doc_indexed on the equivalent tree. *)
let process_start eng s e npos nlen ~self_closing ~cap_found ~cap_vpos ~cap_vlen =
  let flags =
    if e != dummy then e.e_inflags else inflags_of (upper_slice s npos nlen)
  in
  let rec imply () =
    match eng.stack with
    | fr :: _
      when fr.f_ent.e_grp >= 0 && (flags lsr fr.f_ent.e_grp) land 1 = 1 ->
        close_top eng;
        imply ()
    | _ -> ()
  in
  imply ();
  if e == dummy then
    (* unrefinable unknown name (refinable ones are seeded entries) *)
    raise (Unknown_sym (upper_slice s npos nlen));
  let sym =
    if e.e_attr <> "" && cap_found = 1 then begin
      match find_val e s cap_vpos cap_vlen with
      | k when k >= 0 -> e.e_vsyms.(k)
      | _ -> raise (Unknown_sym (refined_error e s cap_vpos cap_vlen))
    end
    else if e.e_open >= 0 then e.e_open
    else raise (Unknown_sym e.e_key)
  in
  let index = add_child eng in
  let node = alloc_node eng (parent_node eng) index in
  eng.cur_index <- index;
  eng.cur_node <- node;
  emit eng sym;
  if self_closing || e.e_void then begin
    (* leaf; a self-closing non-void element still emits its close *)
    if not e.e_void then
      if e.e_close >= 0 then emit eng e.e_close
      else raise (Unknown_sym ("/" ^ e.e_key))
  end
  else
    eng.stack <- { f_ent = e; f_index = index; f_node = node; f_next = 0 } :: eng.stack;
  if (not self_closing) && e.e_raw then begin
    eng.mode <- M_raw;
    eng.raw_close <- (if e.e_key = "SCRIPT" then "</script" else "</style");
    eng.raw_base <- e.e_key;
    eng.raw_m <- 0;
    eng.raw_nonspace <- false
  end

(* end-tag resolution: void and unknown end tags are dropped; a match
   anywhere in the stack pops (emitting closes) down to it inclusive. *)
let process_end_entry eng e =
  if e == dummy || e.e_void then ()
  else if List.exists (fun fr -> fr.f_ent == e) eng.stack then begin
    let rec close () =
      match eng.stack with
      | fr :: _ ->
          let hit = fr.f_ent == e in
          close_top eng;
          if not hit then close ()
      | [] -> ()
    in
    close ()
  end

let process_end_slice eng s pos len =
  process_end_entry eng (lookup eng.tbl s pos len)

let finish_rawend eng =
  let name = eng.raw_base ^ Buffer.contents eng.raw_name in
  Buffer.clear eng.raw_name;
  process_end_slice eng name 0 (String.length name);
  eng.mode <- M_skipgt

(* '&' while the current run is still all-space: decide whether the
   decoded form is a space without materializing the run.  Mirrors
   decode_entities' window (';' within 10 chars, cut by the run-ending
   construct) — the only decodes that stay spaces are the numeric forms
   of 32. *)
let entity_step eng s n eof amp =
  let limit = amp + 10 in
  let rec scan j =
    if j > limit then begin
      eng.text_nonspace <- true;
      amp + 1
    end
    else if j >= n then
      if eof then begin
        eng.text_nonspace <- true;
        amp + 1
      end
      else raise (Need_more amp)
    else
      let c = String.unsafe_get s j in
      if c = ';' then begin
        let e_len = j - amp - 1 in
        let space_entity =
          e_len > 1
          && s.[amp + 1] = '#'
          && (match int_of_string_opt (String.sub s (amp + 2) (e_len - 1)) with
             | Some 32 -> true
             | _ -> false)
        in
        if space_entity then j + 1
        else begin
          eng.text_nonspace <- true;
          amp + 1
        end
      end
      else if c = '<' then begin
        (* a construct here ends the run before the ';' *)
        if j + 1 >= n then
          if eof then scan (j + 1) else raise (Need_more amp)
        else
          let c1 = s.[j + 1] in
          if c1 = '!' || is_name_char c1 then begin
            eng.text_nonspace <- true;
            amp + 1
          end
          else if c1 = '/' then begin
            if j + 2 >= n then
              if eof then scan (j + 1) else raise (Need_more amp)
            else if is_name_char s.[j + 2] then begin
              eng.text_nonspace <- true;
              amp + 1
            end
            else scan (j + 1)
          end
          else scan (j + 1)
      end
      else scan (j + 1)
  in
  scan (amp + 1)

(* full start-tag scan: name, then a faithful replica of the lexer's
   scan_attrs (quotes, junk skipping, '/' self-close lookahead), with
   the refining attribute captured as a slice on the fly.  Raises
   Need_more before any state mutation, so a re-scan from the carried
   '<' is safe. *)
let scan_start eng s n eof cstart =
  let npos = cstart + 1 in
  let j = ref npos in
  while !j < n && is_name_char (String.unsafe_get s !j) do
    incr j
  done;
  if !j = n && not eof then raise (Need_more cstart);
  let nlen = !j - npos in
  let e = lookup eng.tbl s npos nlen in
  let target = if e == dummy then "" else e.e_attr in
  let cap_found = ref 0 (* 0 none; 1 value captured; 2 valueless/plain *) in
  let cap_vpos = ref 0 and cap_vlen = ref 0 in
  let record_cap apos alen v =
    if target <> "" && !cap_found = 0 && String.length target = alen then begin
      let ok = ref true in
      for k = 0 to alen - 1 do
        if Char.lowercase_ascii (String.unsafe_get s (apos + k))
           <> String.unsafe_get target k
        then ok := false
      done;
      if !ok then
        match v with
        | Some (vp, vl) ->
            cap_found := 1;
            cap_vpos := vp;
            cap_vlen := vl
        | None -> cap_found := 2
    end
  in
  let self_closing = ref false in
  let fin = ref n in
  let skip_sp k =
    let k = ref k in
    while !k < n && is_space (String.unsafe_get s !k) do
      incr k
    done;
    !k
  in
  let i = ref !j in
  let continue_ = ref true in
  while !continue_ do
    let p = skip_sp !i in
    if p >= n then begin
      if not eof then raise (Need_more cstart);
      fin := n;
      continue_ := false
    end
    else if s.[p] = '>' then begin
      fin := p + 1;
      continue_ := false
    end
    else if s.[p] = '/' then begin
      let q = skip_sp (p + 1) in
      if q >= n && not eof then raise (Need_more cstart);
      if q < n && s.[q] = '>' then begin
        self_closing := true;
        fin := q + 1;
        continue_ := false
      end
      else i := p + 1
    end
    else begin
      (* scan_attr *)
      let apos = p in
      let k = ref p in
      while !k < n && is_name_char (String.unsafe_get s !k) do
        incr k
      done;
      if !k = n && not eof then raise (Need_more cstart);
      let alen = !k - apos in
      if alen = 0 then i := p + 1
      else begin
        let q = skip_sp !k in
        if q >= n then begin
          if not eof then raise (Need_more cstart);
          record_cap apos alen None;
          i := q
        end
        else if s.[q] = '=' then begin
          let v = skip_sp (q + 1) in
          if v >= n then begin
            if not eof then raise (Need_more cstart);
            record_cap apos alen (Some (v, 0));
            i := v
          end
          else if s.[v] = '"' || s.[v] = '\'' then begin
            let quote = s.[v] in
            let m = ref (v + 1) in
            while !m < n && String.unsafe_get s !m <> quote do
              incr m
            done;
            if !m = n then begin
              if not eof then raise (Need_more cstart);
              record_cap apos alen (Some (v + 1, n - v - 1));
              i := n
            end
            else begin
              record_cap apos alen (Some (v + 1, !m - v - 1));
              i := !m + 1
            end
          end
          else begin
            let m = ref v in
            while
              !m < n
              && (not (is_space (String.unsafe_get s !m)))
              && s.[!m] <> '>'
              && s.[!m] <> '/'
            do
              incr m
            done;
            if !m = n && not eof then raise (Need_more cstart);
            record_cap apos alen (Some (v, !m - v));
            i := !m
          end
        end
        else begin
          record_cap apos alen None;
          i := q
        end
      end
    end
  done;
  flush_text eng;
  process_start eng s e npos nlen ~self_closing:!self_closing
    ~cap_found:!cap_found ~cap_vpos:!cap_vpos ~cap_vlen:!cap_vlen;
  !fin

let scan_end eng s n eof cstart =
  let npos = cstart + 2 in
  let j = ref npos in
  while !j < n && is_name_char (String.unsafe_get s !j) do
    incr j
  done;
  if !j = n && not eof then raise (Need_more cstart);
  flush_text eng;
  process_end_slice eng s npos (!j - npos);
  eng.mode <- M_skipgt;
  !j

let scan eng s eof =
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    match eng.mode with
    | M_comment ->
        let c = String.unsafe_get s !i in
        incr i;
        if c = '-' then eng.dashes <- eng.dashes + 1
        else if c = '>' && eng.dashes >= 2 then begin
          ignore (add_child eng);
          (* the comment node *)
          eng.mode <- M_text
        end
        else eng.dashes <- 0
    | M_doctype ->
        let c = String.unsafe_get s !i in
        incr i;
        if c = '>' then eng.mode <- M_text
    | M_skipgt ->
        let c = String.unsafe_get s !i in
        incr i;
        if c = '>' then eng.mode <- M_text
    | M_rawend ->
        let c = String.unsafe_get s !i in
        if is_name_char c then begin
          Buffer.add_char eng.raw_name (Char.uppercase_ascii c);
          incr i
        end
        else finish_rawend eng
    | M_raw ->
        let c = String.unsafe_get s !i in
        incr i;
        let cl = eng.raw_close in
        if eng.raw_m > 0 then begin
          if Char.lowercase_ascii c = cl.[eng.raw_m] then begin
            eng.raw_m <- eng.raw_m + 1;
            if eng.raw_m = String.length cl then begin
              if eng.raw_nonspace then ignore (add_child eng);
              eng.raw_m <- 0;
              eng.raw_nonspace <- false;
              Buffer.clear eng.raw_name;
              eng.mode <- M_rawend
            end
          end
          else begin
            (* the held "</scri…" prefix chars are body, all non-space *)
            eng.raw_nonspace <- true;
            if c = '<' then eng.raw_m <- 1
            else begin
              eng.raw_m <- 0;
              if not (is_space c) then eng.raw_nonspace <- true
            end
          end
        end
        else if c = '<' then eng.raw_m <- 1
        else if not (is_space c) then eng.raw_nonspace <- true
    | M_text ->
        let c = String.unsafe_get s !i in
        if c = '<' then begin
          let st = !i in
          if st + 1 >= n then begin
            if not eof then raise (Need_more st);
            (* lone '<' at end of input stays text *)
            eng.text_nonspace <- true;
            incr i
          end
          else
            let c1 = s.[st + 1] in
            if c1 = '!' then begin
              (* comment needs "<!--" with the fourth byte in range *)
              if st + 2 >= n then begin
                if not eof then raise (Need_more st);
                flush_text eng;
                eng.mode <- M_doctype;
                i := st + 2
              end
              else if s.[st + 2] <> '-' then begin
                flush_text eng;
                eng.mode <- M_doctype;
                i := st + 2
              end
              else if st + 3 >= n then begin
                if not eof then raise (Need_more st);
                flush_text eng;
                eng.mode <- M_doctype;
                i := st + 2
              end
              else if s.[st + 3] = '-' then begin
                flush_text eng;
                eng.mode <- M_comment;
                eng.dashes <- 0;
                i := st + 4
              end
              else begin
                flush_text eng;
                eng.mode <- M_doctype;
                i := st + 2
              end
            end
            else if c1 = '/' then begin
              if st + 2 >= n then begin
                if not eof then raise (Need_more st);
                eng.text_nonspace <- true;
                incr i
              end
              else if is_name_char s.[st + 2] then i := scan_end eng s n eof st
              else begin
                eng.text_nonspace <- true;
                incr i
              end
            end
            else if is_name_char c1 then i := scan_start eng s n eof st
            else begin
              eng.text_nonspace <- true;
              incr i
            end
        end
        else if c = '&' && not eng.text_nonspace then
          i := entity_step eng s n eof !i
        else begin
          if not (is_space c) then eng.text_nonspace <- true;
          incr i
        end
  done

let finalize eng =
  (match eng.mode with
  | M_text -> flush_text eng
  | M_comment -> ignore (add_child eng)
  | M_doctype -> ()
  | M_raw ->
      if eng.raw_m > 0 then eng.raw_nonspace <- true;
      if eng.raw_nonspace then ignore (add_child eng)
  | M_rawend -> finish_rawend eng
  | M_skipgt -> ());
  eng.mode <- M_text;
  while eng.stack <> [] do
    close_top eng
  done

let feed eng chunk eof =
  let input = if eng.carry = "" then chunk else eng.carry ^ chunk in
  eng.carry <- "";
  (try scan eng input eof
   with Need_more r ->
     eng.carry <- String.sub input r (String.length input - r));
  if eof then finalize eng

(* --- one-shot drivers --- *)

let account_page nbytes =
  Atomic.incr pages_total;
  ignore (Atomic.fetch_and_add bytes_total nbytes)

let word tbl html =
  let sp = Obs.Span.enter Obs.Span.Front in
  match
    let eng = make_engine tbl ~arena:false in
    let buf = ref (Array.make 64 0) and len = ref 0 in
    eng.on_sym <-
      (fun sym ->
        if !len = Array.length !buf then buf := grow !buf !len;
        !buf.(!len) <- sym;
        incr len);
    feed eng html true;
    account_page (String.length html);
    Array.sub !buf 0 !len
  with
  | exception Unknown_sym name ->
      Obs.Span.fail sp;
      raise (Tag_seq.Unknown_symbol name)
  | exception e ->
      Obs.Span.fail sp;
      raise e
  | w ->
      Obs.Span.exit sp;
      w

type error =
  | No_match
  | Ambiguous of int list
  | Unknown_symbol of string

let record_geometry (comp : Extraction.compressed) =
  Atomic.set last_alpha (Array.length comp.Extraction.class_of);
  Atomic.set last_classes comp.Extraction.n_classes

(* online: step the compressed left DFA as ids arrive; a hit is a mark
   whose prefix state is final (the suffix is Σ*, always accepted).
   The first hit's path is captured from the live stack. *)
let run_online tbl (comp : Extraction.compressed) html ~want_path =
  let d = comp.Extraction.c_left in
  let cls = comp.Extraction.class_of in
  let c_mark = comp.Extraction.c_mark in
  let finals = d.Dfa.finals in
  let eng = make_engine tbl ~arena:false in
  let q = ref d.Dfa.start in
  let hits = ref [] and nhits = ref 0 in
  let path = ref [] in
  eng.on_sym <-
    (fun sym ->
      let c = Array.unsafe_get cls sym in
      if c = c_mark && Array.unsafe_get finals !q then begin
        if want_path && !nhits = 0 then path := cur_path eng;
        hits := eng.n_emitted - 1 :: !hits;
        incr nhits
      end;
      q := Dfa.unsafe_step d !q c);
  feed eng html true;
  account_page (String.length html);
  (List.rev !hits, !path)

(* offline: buffer class ids plus the emitting node's arena id, run the
   two-pass class-space matcher, then climb parent pointers. *)
let run_offline tbl m (comp : Extraction.compressed) html =
  let cls = comp.Extraction.class_of in
  let eng = make_engine tbl ~arena:true in
  let buf = ref (Array.make 64 0) and posn = ref (Array.make 64 0) in
  let len = ref 0 in
  eng.on_sym <-
    (fun sym ->
      if !len = Array.length !buf then begin
        buf := grow !buf !len;
        posn := grow !posn !len
      end;
      !buf.(!len) <- Array.unsafe_get cls sym;
      !posn.(!len) <- eng.cur_node;
      incr len);
  feed eng html true;
  account_page (String.length html);
  let w = Array.sub !buf 0 !len in
  (Extraction.matcher_splits_classes m w, eng, !posn)

let extract tbl m html =
  let sp = Obs.Span.enter Obs.Span.Front in
  match
    let comp = Extraction.matcher_compressed m in
    record_geometry comp;
    if Extraction.matcher_online m then begin
      let hits, path = run_online tbl comp html ~want_path:true in
      match hits with
      | [] -> Error No_match
      | [ _ ] -> Ok path
      | l -> Error (Ambiguous l)
    end
    else begin
      let splits, eng, posn = run_offline tbl m comp html in
      match splits with
      | [] -> Error No_match
      | [ i ] -> Ok (node_path eng posn.(i))
      | l -> Error (Ambiguous l)
    end
  with
  | exception Unknown_sym name ->
      Obs.Span.exit sp;
      Error (Unknown_symbol name)
  | exception e ->
      Obs.Span.fail sp;
      raise e
  | r ->
      Obs.Span.exit sp;
      r

let splits tbl m html =
  let sp = Obs.Span.enter Obs.Span.Front in
  match
    let comp = Extraction.matcher_compressed m in
    record_geometry comp;
    if Extraction.matcher_online m then
      fst (run_online tbl comp html ~want_path:false)
    else begin
      let splits, _, _ = run_offline tbl m comp html in
      splits
    end
  with
  | exception Unknown_sym name ->
      Obs.Span.exit sp;
      Error name
  | exception e ->
      Obs.Span.fail sp;
      raise e
  | r ->
      Obs.Span.exit sp;
      Ok r

(* --- incremental streaming --- *)

let stream_make tbl = make_engine tbl ~arena:false

let stream_feed st chunk ~emit =
  if st.dead then Ok ()
  else begin
    ignore (Atomic.fetch_and_add bytes_total (String.length chunk));
    st.on_sym <- emit;
    match feed st chunk false with
    | () -> Ok ()
    | exception Unknown_sym name ->
        st.dead <- true;
        Error name
  end

let stream_finish st ~emit =
  if st.dead then Ok ()
  else begin
    st.on_sym <- emit;
    Atomic.incr pages_total;
    match feed st "" true with
    | () -> Ok ()
    | exception Unknown_sym name ->
        st.dead <- true;
        Error name
  end

(* --- statistics --- *)

type stats = {
  pages : int;
  bytes : int;
  tables : int;
  entries : int;
  interner_hits : int;
  interner_misses : int;
  last_alpha : int;
  last_classes : int;
}

let stats () =
  let hits, misses = Obs.Counter2.read interner in
  {
    pages = Atomic.get pages_total;
    bytes = Atomic.get bytes_total;
    tables = Atomic.get tables_built;
    entries = Atomic.get entries_total;
    interner_hits = hits;
    interner_misses = misses;
    last_alpha = Atomic.get last_alpha;
    last_classes = Atomic.get last_classes;
  }

let pp_stats ppf s =
  Format.fprintf ppf "front stats:@.";
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "pages" s.pages "bytes" s.bytes;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "tables" s.tables "entries"
    s.entries;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "intern-hits" s.interner_hits
    "intern-misses" s.interner_misses;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "alpha" s.last_alpha "classes"
    s.last_classes

(* --- metrics provider --- *)

let () =
  Obs.register_provider "front" (fun () ->
      let open Obs.Json in
      let hits, misses = Obs.Counter2.read interner in
      Obj
        [
          ("pages", Int (Atomic.get pages_total));
          ("bytes", Int (Atomic.get bytes_total));
          ("tables", Int (Atomic.get tables_built));
          ("entries", Int (Atomic.get entries_total));
          ("interner", Obj [ ("hits", Int hits); ("misses", Int misses) ]);
          ("alpha", Int (Atomic.get last_alpha));
          ("classes", Int (Atomic.get last_classes));
        ])

(** HTML document trees.

    A forgiving stack-based tree builder over {!Html_lexer} tokens:
    void elements ([BR], [IMG], [INPUT], …) never take children;
    common implied-end-tag rules are applied ([P] closed by block
    elements, [LI] by [LI], [TR] by [TR], [TD]/[TH] by [TD]/[TH]/[TR],
    [OPTION] by [OPTION]); an unmatched end tag closes up to its nearest
    open ancestor or is dropped.  The result is the DOM-ish structure the
    perturbation models (§3's change taxonomy) operate on. *)

type node =
  | Element of {
      name : string;  (** upper case *)
      attrs : Html_token.attr list;
      children : node list;
    }
  | Text of string
  | Comment of string

type doc = node list

val parse : string -> doc
val of_tokens : Html_token.t list -> doc

val element : ?attrs:(string * string option) list -> string -> node list -> node
(** Convenience constructor; the name is upper-cased. *)

val text : string -> node

val to_string : ?indent:bool -> doc -> string
(** Serialize back to HTML source. *)

val is_void : string -> bool

val void_names : string list
(** The upper-case void-element names {!is_void} recognizes — exposed
    so the fused front-end ([Front]) precomputes voidness per interned
    entry instead of re-deciding per tag. *)

(** {1 Paths and traversal}

    A {e path} addresses a node as the list of child indices from the
    root list, e.g. [[1; 0]] = second root node's first child. *)

type path = int list

val node_at : doc -> path -> node option
val replace_at : doc -> path -> (node -> node list) -> doc option
(** Replace the addressed node by a (possibly empty or plural) node
    list; [None] if the path dangles. *)

val insert_at : doc -> path -> node -> doc option
(** Insert a node so that it takes position [path] (siblings shift). *)

val fold : ('a -> path -> node -> 'a) -> 'a -> doc -> 'a
(** Pre-order fold over all nodes with their paths. *)

val find_all : (node -> bool) -> doc -> (path * node) list
val find_elements : string -> doc -> (path * node) list
(** All elements with the given (case-insensitive) tag name. *)

val count_nodes : doc -> int
val equal : doc -> doc -> bool

(** Multi-field extraction expressions
    [E0 ⟨p1⟩ E1 ⟨p2⟩ E2 ⋯ ⟨pk⟩ Ek].

    The paper studies single-mark expressions; real wrappers extract
    {e tuples} (the cited induction systems [18, 21] are tuple-based, and
    §2 notes their data "must be representable as a set of tuples").
    This module extends the formalism to k marks.

    A word [w] is parsed by a tuple expression iff it decomposes as
    [α0·p1·α1·p2 ⋯ pk·αk] with [αj ∈ L(Ej)]; the extraction is the
    position tuple.  {e Unambiguity} = every parsed word has exactly one
    such tuple.

    Reduction to the single-mark theory: for each coordinate [j], the
    {!coordinate_expression} is the single-mark expression
    [(E0·p1 ⋯ E(j-1)) ⟨pj⟩ (Ej·p(j+1) ⋯ Ek)].  A tuple expression is
    unambiguous iff all its coordinate expressions are (two distinct
    tuples must first differ at some coordinate [j], where they witness
    coordinate-[j] ambiguity; the converse holds a fortiori) — so
    Prop 5.4's polynomial test decides tuple unambiguity too. *)

type t = private {
  alpha : Alphabet.t;
  segments : Regex.t list;  (** [E0; …; Ek] *)
  marks : int list;  (** [p1; …; pk]; one shorter than [segments] *)
}

val make : Alphabet.t -> Regex.t list -> int list -> t
(** @raise Invalid_argument on shape mismatch ([segments] must be one
    longer than [marks]) or out-of-range marks. *)

val parse : Alphabet.t -> string -> t
(** ["E0 <p1> E1 <p2> E2"] — one or more top-level markers.
    @raise Regex_parse.Parse_error if no marker is present. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val arity : t -> int
(** Number of marks, ≥ 1. *)

val language : t -> Lang.t
(** [L(E0·p1·E1 ⋯ pk·Ek)]. *)

val coordinate_expression : t -> int -> Extraction.t
(** 0-based coordinate; see module documentation. *)

val splits : t -> Word.t -> int list list
(** All valid position tuples (each ascending), in lexicographic order.
    Exponential in the worst case — test oracle; use {!extract} with a
    compiled matcher in production. *)

val extract :
  t -> Word.t -> [ `Unique of int list | `Ambiguous of int list list | `No_match ]

val is_unambiguous : t -> bool
val is_ambiguous : t -> bool

val of_extraction : Extraction.t -> t
val to_extraction : t -> Extraction.t option
(** [Some] iff the arity is 1. *)

(** {1 Compiled matchers} *)

type matcher

val compile : t -> matcher
(** Pre-computes the coordinate matchers; {!matcher_extract} then runs in
    O(k·n) transitions.  Sound for unambiguous expressions (coordinate
    positions of the unique tuple); on ambiguous expressions it reports
    [`Ambiguous] with the coordinate candidates whenever any coordinate
    is ambiguous on the word. *)

val matcher_extract :
  matcher -> Word.t -> [ `Unique of int list | `Ambiguous of int list list | `No_match ]

let check f e =
  if not (Alphabet.equal f.Extraction.alpha e.Extraction.alpha) then
    invalid_arg "Expr_order: different alphabets";
  if f.Extraction.mark <> e.Extraction.mark then
    invalid_arg "Expr_order: different marked symbols"

let preceq f e =
  check f e;
  Lang.subset (Extraction.left_lang f) (Extraction.left_lang e)
  && Lang.subset (Extraction.right_lang f) (Extraction.right_lang e)

let generalizes e f = preceq f e

let equivalent f e =
  check f e;
  Lang.equal (Extraction.left_lang f) (Extraction.left_lang e)
  && Lang.equal (Extraction.right_lang f) (Extraction.right_lang e)

let strictly_below f e = preceq f e && not (preceq e f)

let same_parsed_language f e =
  check f e;
  Lang.equal (Extraction.language f) (Extraction.language e)

let preceq_bounded ~budget f e = Guard.capture budget (fun () -> preceq f e)

let equivalent_bounded ~budget f e =
  Guard.capture budget (fun () -> equivalent f e)

type verdict =
  | Maximal
  | Not_maximal_left of Word.t
  | Not_maximal_right of Word.t
  | Ambiguous_input of Word.t option

let full_lang l1 p l2 =
  let alpha = Lang.alphabet l1 in
  Lang.concat_list alpha [ l1; Lang.sym alpha p; l2 ]

(* Σ* − (E1·p·E2)/(p·E2) *)
let left_deficiency l1 p l2 =
  let alpha = Lang.alphabet l1 in
  let whole = full_lang l1 p l2 in
  let pe2 = Lang.concat (Lang.sym alpha p) l2 in
  Lang.diff (Lang.sigma_star alpha) (Lang.suffix_quotient whole pe2)

(* Σ* − (E1·p)\(E1·p·E2) *)
let right_deficiency l1 p l2 =
  let alpha = Lang.alphabet l1 in
  let whole = full_lang l1 p l2 in
  let e1p = Lang.concat l1 (Lang.sym alpha p) in
  Lang.diff (Lang.sigma_star alpha) (Lang.prefix_quotient e1p whole)

let is_maximal_langs l1 p l2 =
  Lang.is_empty (left_deficiency l1 p l2)
  && Lang.is_empty (right_deficiency l1 p l2)

let check (e : Extraction.t) =
  let l1 = Extraction.left_lang e and l2 = Extraction.right_lang e in
  let p = e.Extraction.mark in
  if Ambiguity.is_ambiguous_langs l1 p l2 then
    Ambiguous_input (Ambiguity.witness e)
  else
    (* The witness must be actionable: adjoining it per Prop 5.7 has to
       give a STRICT extension, so words already in the side language
       are excluded.  Whenever E2 ≠ ∅ the exclusion is a no-op
       (L(E1) ⊆ (E1·p·E2)/(p·E2), so the deficiency avoids L(E1)); with
       E2 = ∅ the left deficiency is all of Σ* and would otherwise
       yield witnesses inside L(E1) — found by the lib/oracle campaign. *)
    match Lang.shortest (Lang.diff (left_deficiency l1 p l2) l1) with
    | Some w -> Not_maximal_left w
    | None -> (
        match Lang.shortest (Lang.diff (right_deficiency l1 p l2) l2) with
        | Some w -> Not_maximal_right w
        | None ->
            (* A nonempty deficiency hiding entirely inside its own side
               language needs the opposite side to be ∅, which makes the
               mirror deficiency all of Σ* minus that (empty) side — so
               reaching this point means both deficiencies are empty. *)
            Maximal)

let is_maximal e = check e = Maximal

let check_bounded ~budget e = Guard.capture budget (fun () -> check e)

let p_lang alpha p = Lang.sym alpha p

(* (E1·p)\E1 ∩ E2/(p·E2): the possible "middles" γ such that some
   α, α·p·γ ∈ L(E1) and some β, γ·p·β ∈ L(E2) (Lemma 5.3). *)
let ambiguous_core l1 p l2 =
  let alpha = Lang.alphabet l1 in
  let pl = p_lang alpha p in
  let x = Lang.prefix_quotient (Lang.concat l1 pl) l1 in
  let y = Lang.suffix_quotient l2 (Lang.concat pl l2) in
  Lang.inter x y

let is_ambiguous_langs l1 p l2 = not (Lang.is_empty (ambiguous_core l1 p l2))

let is_ambiguous (e : Extraction.t) =
  is_ambiguous_langs (Extraction.left_lang e) e.Extraction.mark
    (Extraction.right_lang e)

let is_unambiguous e = not (is_ambiguous e)

let is_ambiguous_bounded ~budget e =
  Guard.capture budget (fun () -> is_ambiguous e)

(* Prop 5.5: extend the alphabet with a fresh marker c.  The sides must
   first be re-rendered over the extended alphabet; Lang.to_regex emits
   only positive symbol classes, so the rendering keeps its Σ-meaning
   when re-read over Σ ∪ {c}. *)
let is_ambiguous_marker (e : Extraction.t) =
  let alpha = e.Extraction.alpha in
  let cname = Alphabet.fresh_name alpha "#mark" in
  let alpha', c = Alphabet.extend alpha cname in
  let lift l = Lang.of_regex alpha' (Lang.to_regex l) in
  let l1 = lift (Extraction.left_lang e) in
  let l2 = lift (Extraction.right_lang e) in
  let p = e.Extraction.mark in
  let psym = Lang.sym alpha' p and csym = Lang.sym alpha' c in
  (* E2 with every occurrence of p optionally replaced by c, then
     restricted to exactly one c: the paper's (E2)[p → (p|c)] device.
     Substitution is performed on the rendered regex. *)
  let rec subst (re : Regex.t) : Regex.t =
    match re with
    | Regex.Empty | Regex.Eps -> re
    | Regex.Cls { neg; syms } ->
        if (not neg) && Symset.mem p syms then
          Regex.alt (Regex.cls (Symset.elements syms)) (Regex.sym c)
        else if neg then
          (* cannot appear in Lang.to_regex output, but keep total *)
          Regex.neg_cls (c :: Symset.elements syms)
        else re
    | Regex.Alt (a, b) -> Regex.alt (subst a) (subst b)
    | Regex.Cat (a, b) -> Regex.cat (subst a) (subst b)
    | Regex.Star a -> Regex.star (subst a)
    | Regex.Inter (a, b) -> Regex.inter (subst a) (subst b)
    | Regex.Diff (a, b) -> Regex.diff (subst a) (subst b)
    | Regex.Compl a -> Regex.compl (subst a)
  in
  let l2_subst =
    Lang.filter_count
      (Lang.of_regex alpha' (subst (Lang.to_regex l2)))
      ~sym:c 1
  in
  let lhs = Lang.concat_list alpha' [ l1; csym; l2 ] in
  let rhs = Lang.concat_list alpha' [ l1; psym; l2_subst ] in
  not (Lang.is_empty (Lang.inter lhs rhs))

let witness (e : Extraction.t) =
  let alpha = e.Extraction.alpha in
  let p = e.Extraction.mark in
  let l1 = Extraction.left_lang e and l2 = Extraction.right_lang e in
  let core = ambiguous_core l1 p l2 in
  match Lang.shortest core with
  | None -> None
  | Some gamma ->
      let pl = p_lang alpha p in
      let gl = Lang.word alpha gamma in
      (* α: shortest member of E1 whose extension α·p·γ is also in E1. *)
      let alpha_set =
        Lang.inter l1
          (Lang.suffix_quotient l1 (Lang.concat_list alpha [ pl; gl ]))
      in
      (* β: shortest member of E2 such that γ·p·β ∈ E2. *)
      let beta_set =
        Lang.inter l2
          (Lang.prefix_quotient (Lang.concat_list alpha [ gl; pl ]) l2)
      in
      (match (Lang.shortest alpha_set, Lang.shortest beta_set) with
      | Some a, Some b ->
          Some (Word.concat [ a; [| p |]; gamma; [| p |]; b ])
      | _ -> None)

let witness_bounded ~budget e = Guard.capture budget (fun () -> witness e)

type decomposition = { segments : Regex.t list; pivots : int list }

let pp_decomposition alpha ppf d =
  let rec loop ppf (segs, pivs) =
    match (segs, pivs) with
    | [ s ], [] -> Format.fprintf ppf "(%a)" (Regex.pp alpha) s
    | s :: segs, q :: pivs ->
        Format.fprintf ppf "(%a) ⋅%s⋅ %a" (Regex.pp alpha) s
          (Alphabet.name alpha q) loop (segs, pivs)
    | _ -> Format.pp_print_string ppf "<malformed decomposition>"
  in
  loop ppf (d.segments, d.pivots)

let recompose d =
  let rec loop segs pivs =
    match (segs, pivs) with
    | [ s ], [] -> s
    | s :: segs, q :: pivs ->
        Regex.cat (Regex.cat s (Regex.sym q)) (loop segs pivs)
    | _ -> invalid_arg "Pivot.recompose: malformed decomposition"
  in
  loop d.segments d.pivots

type error = Bad_shape | Segment_failure of int * Left_filter.error

let pp_error ppf = function
  | Bad_shape ->
      Format.pp_print_string ppf "segment/pivot counts do not line up"
  | Segment_failure (i, e) ->
      Format.fprintf ppf "factor %d: %a" i Left_filter.pp_error e

let well_shaped d =
  List.length d.segments = List.length d.pivots + 1 && d.segments <> []

(* The per-factor side condition: Ei⟨qi⟩Σ* unambiguous with bounded
   qi-count, where the final factor is checked against [p]. *)
let factor_marks d p = d.pivots @ [ p ]

let check_factor alpha seg q =
  let l = Lang.of_regex alpha seg in
  let sigma_star = Lang.sigma_star alpha in
  if Ambiguity.is_ambiguous_langs l q sigma_star then
    Error
      (Left_filter.Ambiguous
         (Ambiguity.witness (Extraction.of_langs alpha l q sigma_star)))
  else
    match Left_filter.bounded_mark_count l q with
    | None -> Error Left_filter.Unbounded_mark_count
    | Some _ -> Ok l

let validate alpha d p =
  if not (well_shaped d) then Error Bad_shape
  else
    let rec loop i segs marks =
      match (segs, marks) with
      | [], [] -> Ok ()
      | seg :: segs, q :: marks -> (
          match check_factor alpha seg q with
          | Error e -> Error (Segment_failure (i, e))
          | Ok _ -> loop (i + 1) segs marks)
      | _ -> Error Bad_shape
    in
    loop 0 d.segments (factor_marks d p)

let maximize alpha d p =
  if not (well_shaped d) then Error Bad_shape
  else
    let rec loop i segs marks acc =
      match (segs, marks) with
      | [], [] -> Ok (List.rev acc)
      | seg :: segs, q :: marks -> (
          match check_factor alpha seg q with
          | Error e -> Error (Segment_failure (i, e))
          | Ok l -> (
              match Left_filter.maximize_lang l q with
              | Error e -> Error (Segment_failure (i, e))
              | Ok l' -> loop (i + 1) segs marks (l' :: acc)))
      | _ -> Error Bad_shape
    in
    match loop 0 d.segments (factor_marks d p) [] with
    | Error e -> Error e
    | Ok maxed ->
        (* Interleave E'1 q1 E'2 … qn E'(n+1). *)
        let rec weave ls qs =
          match (ls, qs) with
          | [ l ], [] -> [ l ]
          | l :: ls, q :: qs -> l :: Lang.sym alpha q :: weave ls qs
          | _ -> invalid_arg "Pivot.maximize: weave"
        in
        let left = Lang.concat_list alpha (weave maxed d.pivots) in
        Ok (Extraction.of_langs alpha left p (Lang.sigma_star alpha))

(* Flatten the top-level concatenation spine into atoms. *)
let rec cat_spine (re : Regex.t) : Regex.t list =
  match re with
  | Regex.Cat (a, b) -> cat_spine a @ cat_spine b
  | re -> [ re ]

let literal_sym (re : Regex.t) : int option =
  match re with
  | Regex.Cls { neg = false; syms } when Symset.cardinal syms = 1 ->
      Some (Symset.min_elt syms)
  | _ -> None

let auto_decompose alpha re p =
  let atoms = cat_spine re in
  let seg_of rev_atoms = Regex.cat_list (List.rev rev_atoms) in
  let ok seg q = Result.is_ok (check_factor alpha seg q) in
  let rec walk atoms cur segs pivs =
    match atoms with
    | [] ->
        let last = seg_of cur in
        if ok last p then
          Some { segments = List.rev (last :: segs); pivots = List.rev pivs }
        else None
    | atom :: rest -> (
        match literal_sym atom with
        | Some q when ok (seg_of cur) q ->
            walk rest [] (seg_of cur :: segs) (q :: pivs)
        | _ -> walk rest (atom :: cur) segs pivs)
  in
  walk atoms [] [] []

let compose (e1 : Extraction.t) (e2 : Extraction.t) =
  let alpha = e1.Extraction.alpha in
  if not (Alphabet.equal alpha e2.Extraction.alpha) then
    invalid_arg "Pivot.compose: different alphabets";
  if
    not
      (Lang.is_universal (Extraction.right_lang e1)
      && Lang.is_universal (Extraction.right_lang e2))
  then invalid_arg "Pivot.compose: right sides must be Σ*";
  let left =
    Regex.cat
      (Regex.cat e1.Extraction.left (Regex.sym e1.Extraction.mark))
      e2.Extraction.left
  in
  Extraction.make alpha left e2.Extraction.mark Regex.sigma_star

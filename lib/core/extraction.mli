(** Extraction expressions [E1 ⟨p⟩ E2] (Definition 4.1).

    An extraction expression is a regular expression of the special form
    [E1 · p · E2] with one {e marked} occurrence [⟨p⟩] of an alphabet
    symbol.  It parses the language [L(E1 · p · E2)] and, on a parsed
    string [ρ = α·p·β] with [α ∈ L(E1)], [β ∈ L(E2)], it {e extracts}
    the marked occurrence of [p].

    Concrete syntax: [E1 <p> E2], e.g. ["([^p])* <p> .*"] for the
    paper's [(Σ−p)* ⟨p⟩ Σ*]. *)

type t = {
  alpha : Alphabet.t;
  left : Regex.t;
  mark : int;  (** the marked symbol p *)
  right : Regex.t;
}

val make : Alphabet.t -> Regex.t -> int -> Regex.t -> t
(** @raise Invalid_argument if the mark is not an alphabet symbol. *)

val of_langs : Alphabet.t -> Lang.t -> int -> Lang.t -> t
(** Build from language values; sides are rendered via {!Lang.to_regex}. *)

val parse : Alphabet.t -> string -> t
(** Parse ["E1 <p> E2"].  @raise Regex_parse.Parse_error on bad syntax
    (including a missing or duplicated [<p>] marker). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Semantics} *)

val left_lang : t -> Lang.t
val right_lang : t -> Lang.t

val language : t -> Lang.t
(** [L(E1 · p · E2)] — the language parsed by the expression. *)

val parses : t -> Word.t -> bool

val splits : t -> Word.t -> int list
(** All positions [i] with [w.(i) = p], [w[0..i) ∈ L(E1)] and
    [w(i..] ∈ L(E2)] — the candidate extractions, ascending.  Uses a
    brute per-position check; see {!compile} for the linear-time path. *)

val splits_deriv : t -> Word.t -> int list
(** Same positions as {!splits}, computed by iterated Brzozowski
    derivatives ({!Regex.matches}) instead of compiled automata.  Slow;
    exists as an independent reference implementation for the
    differential oracles (lib/oracle). *)

val extract : t -> Word.t -> [ `Unique of int | `Ambiguous of int list | `No_match ]

(** {1 Compiled matchers} *)

type matcher
(** Pre-compiled form: the left language's DFA is run forward and the
    reversed right language's DFA backward, so all split positions of a
    word of length n are found in O(n) transitions.  A matcher is
    immutable once {!compile} returns (frozen before any parallel
    fan-out), so one matcher may be shared freely across the [Batch]
    pool's domains. *)

val compile : t -> matcher
(** Build (and {!Dfa.validate}) both DFAs.  Validation establishes the
    structural invariants the zero-allocation hot path of
    {!matcher_splits} relies on. *)

val matcher_of_validated :
  t -> left_dfa:Dfa.t -> right_rev_dfa:Dfa.t -> matcher
(** Assemble a matcher from DFAs that {e already} satisfy the
    {!Dfa.validate} invariants, skipping re-validation.  The intended
    caller is the [.rxc] artifact loader, whose decoder enforces the
    same structural checks field-by-field and whose CRC-32 rejects any
    corrupted payload — that verified decode is the licence for the
    zero-allocation [unsafe_step] hot path, exactly as [validate] is on
    the {!compile} path.  [left_dfa] must be the minimal DFA of the
    left language and [right_rev_dfa] of the {e reversed} right
    language.  Only the alphabet sizes are re-checked here
    (@raise Invalid_argument on mismatch); feeding DFAs that never
    passed the checks is unsound. *)

val matcher_expr : matcher -> t

(** {2 Alphabet class compression}

    Symbols with identical transition columns in {e both} the left DFA
    and the reversed-right DFA are indistinguishable to the matcher:
    they drive every run through the same state trajectories.  Each
    matcher therefore carries a quotiented form whose delta rows are
    indexed by {e class} ids — HTML alphabets with dozens of tags
    typically collapse to the handful of classes the expression
    separates.  The mark's signature is tagged so it always lands in a
    singleton class: [class = c_mark ⟺ symbol = mark], keeping the hot
    loops' mark test exact.  Computed eagerly by both {!compile} and
    {!matcher_of_validated} (so [.rxc]-loaded matchers get it without
    any wire-format change). *)

type compressed = {
  class_of : int array;  (** symbol id → class id *)
  n_classes : int;
  c_mark : int;  (** the mark's class — a singleton by construction *)
  c_left : Dfa.t;  (** left DFA over classes ([alpha_size = n_classes]) *)
  c_right_rev : Dfa.t;
}

val matcher_compressed : matcher -> compressed
(** The class-compressed tables.  Immutable, like the matcher; the
    shrunken DFAs satisfy the {!Dfa.validate} invariants (their rows
    are copied from validated tables), so {!Dfa.unsafe_step} over
    bound-checked class ids remains sound. *)

val matcher_splits_classes : matcher -> int array -> int list
(** {!matcher_splits} in class space: the input word holds {e class}
    ids (images under [class_of]), stepped on the compressed tables.
    Same split positions as the symbol-space run.
    @raise Invalid_argument on a class id out of range. *)

val matcher_splits : matcher -> Word.t -> int list
(** All split positions, ascending.  Hot path: the suffix bitset lives
    in per-domain scratch reused across calls (grown geometrically), so
    no per-word heap allocation happens beyond the result list.
    @raise Invalid_argument on a symbol outside the alphabet. *)

val matcher_splits_fresh : matcher -> Word.t -> int list
(** Same answers as {!matcher_splits}, but allocates a fresh bitset per
    call and uses only bounds-checked accesses — the reference
    implementation the sched oracle layer compares the scratch path
    against. *)

val matcher_extract :
  matcher -> Word.t -> [ `Unique of int | `Ambiguous of int list | `No_match ]

val matcher_online : matcher -> bool
(** Whether the right side is Σ*, making one-pass streaming extraction
    possible (no suffix check needed). *)

exception Not_online of { expr : string }
(** Streaming was requested on a matcher whose right side is not Σ*.
    Structured (carries the rendered expression, printer registered
    with [Printexc]) so the CLI front ends — [serve] at startup,
    [check]'s generic error path — can report [err=not_online] and
    exit 2 instead of dumping a backtrace. *)

val matcher_stream_splits : matcher -> int Seq.t -> int Seq.t
(** Lazily yield split positions while consuming a token stream — each
    position is emitted as soon as its prefix has been read, without
    buffering the page.  Only defined for Σ*-right expressions, which is
    what maximization produces for the §7 pipeline.
    @raise Not_online if [not (matcher_online m)].
    @raise Invalid_argument (lazily, at the offending element) on a
    symbol outside the alphabet. *)

type t = {
  alpha : Alphabet.t;
  left : Regex.t;
  mark : int;
  right : Regex.t;
}

let make alpha left mark right =
  if mark < 0 || mark >= Alphabet.size alpha then
    invalid_arg "Extraction.make: mark symbol out of range";
  { alpha; left; mark; right }

let of_langs alpha l mark r =
  make alpha (Lang.to_regex l) mark (Lang.to_regex r)

(* "E1 <p> E2": locate the (unique, top-level) <ident> marker textually,
   then parse the two sides.  An empty side denotes ε. *)
let parse alpha s =
  let n = String.length s in
  let find_marker () =
    let rec loop i depth =
      if i >= n then None
      else
        match s.[i] with
        | '(' -> loop (i + 1) (depth + 1)
        | ')' -> loop (i + 1) (depth - 1)
        | '<' ->
            (* scan to '>' *)
            let rec close j =
              if j >= n then None
              else if s.[j] = '>' then Some j
              else close (j + 1)
            in
            (match close (i + 1) with
            | Some j when depth = 0 -> Some (i, j)
            | Some j -> loop (j + 1) depth
            | None -> None)
        | _ -> loop (i + 1) depth
    in
    loop 0 0
  in
  match find_marker () with
  | None ->
      raise (Regex_parse.Parse_error ("missing <p> marker", 0))
  | Some (i, j) ->
      let name = String.trim (String.sub s (i + 1) (j - i - 1)) in
      let mark =
        match Alphabet.find alpha name with
        | Some a -> a
        | None ->
            raise
              (Regex_parse.Parse_error ("unknown marked symbol " ^ name, i))
      in
      let parse_side str =
        if String.trim str = "" then Regex.eps
        else Regex_parse.parse alpha str
      in
      let left = parse_side (String.sub s 0 i) in
      let right = parse_side (String.sub s (j + 1) (n - j - 1)) in
      make alpha left mark right

let pp ppf t =
  (* compact: extraction expressions are displayed/persisted for their
     language, so the shorter negated-class form is preferred *)
  Format.fprintf ppf "%a <%s> %a"
    (Regex.pp ~compact:true t.alpha)
    t.left
    (Alphabet.name t.alpha t.mark)
    (Regex.pp ~compact:true t.alpha)
    t.right

let to_string t = Format.asprintf "%a" pp t

let left_lang t = Lang.of_regex t.alpha t.left
let right_lang t = Lang.of_regex t.alpha t.right

let language t =
  Lang.concat_list t.alpha
    [ left_lang t; Lang.sym t.alpha t.mark; right_lang t ]

type matcher = {
  expr : t;
  left_dfa : Dfa.t;
  (* DFA of the reversed right language: running it over the suffix read
     right-to-left decides suffix ∈ L(E2). *)
  right_rev_dfa : Dfa.t;
}

let compile expr =
  {
    expr;
    left_dfa = Lang.dfa (left_lang expr);
    right_rev_dfa = Lang.dfa (Lang.reverse (right_lang expr));
  }

let matcher_expr m = m.expr

let matcher_splits m w =
  let n = Array.length w in
  let mark = m.expr.mark in
  (* suffix_ok.(i) ⇔ w[i..n) ∈ L(E2); computed right-to-left. *)
  let suffix_ok = Array.make (n + 1) false in
  let state = ref m.right_rev_dfa.Dfa.start in
  suffix_ok.(n) <- m.right_rev_dfa.Dfa.finals.(!state);
  for i = n - 1 downto 0 do
    state := Dfa.step m.right_rev_dfa !state w.(i);
    suffix_ok.(i) <- m.right_rev_dfa.Dfa.finals.(!state)
  done;
  let acc = ref [] in
  let lstate = ref m.left_dfa.Dfa.start in
  for i = 0 to n - 1 do
    if w.(i) = mark && m.left_dfa.Dfa.finals.(!lstate) && suffix_ok.(i + 1)
    then acc := i :: !acc;
    lstate := Dfa.step m.left_dfa !lstate w.(i)
  done;
  List.rev !acc

let classify = function
  | [] -> `No_match
  | [ i ] -> `Unique i
  | l -> `Ambiguous l

let matcher_extract m w = classify (matcher_splits m w)

let matcher_online m = Dfa_ops.is_universal m.right_rev_dfa

let matcher_stream_splits m syms =
  if not (matcher_online m) then
    invalid_arg "Extraction.matcher_stream_splits: right side is not Σ*";
  let mark = m.expr.mark in
  let dfa = m.left_dfa in
  (* unfold over (remaining stream, left-DFA state, position) *)
  let rec next (syms, state, i) () =
    match syms () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (a, rest) ->
        let hit = a = mark && dfa.Dfa.finals.(state) in
        let st' = (rest, Dfa.step dfa state a, i + 1) in
        if hit then Seq.Cons (i, next st') else next st' ()
  in
  next (syms, dfa.Dfa.start, 0)

let splits t w =
  let l = left_lang t and r = right_lang t in
  let n = Array.length w in
  let ok = ref [] in
  for i = n - 1 downto 0 do
    if
      w.(i) = t.mark
      && Lang.mem l (Array.sub w 0 i)
      && Lang.mem r (Array.sub w (i + 1) (n - i - 1))
    then ok := i :: !ok
  done;
  !ok

(* Same specification as [splits], but membership is decided by
   iterated Brzozowski derivatives on the syntax — no automata are
   built, so this path shares nothing with the DFA pipeline and serves
   as its differential reference (lib/oracle). *)
let splits_deriv t w =
  let n = Array.length w in
  let ok = ref [] in
  for i = n - 1 downto 0 do
    if
      w.(i) = t.mark
      && Regex.matches t.left (Array.sub w 0 i)
      && Regex.matches t.right (Array.sub w (i + 1) (n - i - 1))
    then ok := i :: !ok
  done;
  !ok

let parses t w = splits t w <> []
let extract t w = classify (splits t w)

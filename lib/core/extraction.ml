type t = {
  alpha : Alphabet.t;
  left : Regex.t;
  mark : int;
  right : Regex.t;
}

let make alpha left mark right =
  if mark < 0 || mark >= Alphabet.size alpha then
    invalid_arg "Extraction.make: mark symbol out of range";
  { alpha; left; mark; right }

let of_langs alpha l mark r =
  make alpha (Lang.to_regex l) mark (Lang.to_regex r)

(* "E1 <p> E2": locate the (unique, top-level) <ident> marker textually,
   then parse the two sides.  An empty side denotes ε. *)
let parse alpha s =
  let n = String.length s in
  let find_marker () =
    let rec loop i depth =
      if i >= n then None
      else
        match s.[i] with
        | '(' -> loop (i + 1) (depth + 1)
        | ')' -> loop (i + 1) (depth - 1)
        | '<' ->
            (* scan to '>' *)
            let rec close j =
              if j >= n then None
              else if s.[j] = '>' then Some j
              else close (j + 1)
            in
            (match close (i + 1) with
            | Some j when depth = 0 -> Some (i, j)
            | Some j -> loop (j + 1) depth
            | None -> None)
        | _ -> loop (i + 1) depth
    in
    loop 0 0
  in
  match find_marker () with
  | None ->
      raise (Regex_parse.Parse_error ("missing <p> marker", 0))
  | Some (i, j) ->
      let name = String.trim (String.sub s (i + 1) (j - i - 1)) in
      let mark =
        match Alphabet.find alpha name with
        | Some a -> a
        | None ->
            raise
              (Regex_parse.Parse_error ("unknown marked symbol " ^ name, i))
      in
      let parse_side str =
        if String.trim str = "" then Regex.eps
        else Regex_parse.parse alpha str
      in
      let left = parse_side (String.sub s 0 i) in
      let right = parse_side (String.sub s (j + 1) (n - j - 1)) in
      make alpha left mark right

let pp ppf t =
  (* compact: extraction expressions are displayed/persisted for their
     language, so the shorter negated-class form is preferred *)
  Format.fprintf ppf "%a <%s> %a"
    (Regex.pp ~compact:true t.alpha)
    t.left
    (Alphabet.name t.alpha t.mark)
    (Regex.pp ~compact:true t.alpha)
    t.right

let to_string t = Format.asprintf "%a" pp t

let left_lang t = Lang.of_regex t.alpha t.left
let right_lang t = Lang.of_regex t.alpha t.right

let language t =
  Lang.concat_list t.alpha
    [ left_lang t; Lang.sym t.alpha t.mark; right_lang t ]

(* --- alphabet equivalence-class compression ---

   Two symbols with identical delta columns in BOTH the left DFA and
   the reversed-right DFA drive every run through the same state
   trajectories, so the matcher cannot distinguish them: they share one
   class.  HTML alphabets with dozens of tags typically collapse to the
   handful of classes the expression actually separates, shrinking
   delta rows for the fused front-end's hot loop.  The mark is forced
   into a singleton class (its signature carries a distinguishing flag)
   so that "class = c_mark" remains an exact test for "symbol = mark". *)

type compressed = {
  class_of : int array;
  n_classes : int;
  c_mark : int;
  c_left : Dfa.t;
  c_right_rev : Dfa.t;
}

let compress expr ~left_dfa ~right_rev_dfa =
  let k = left_dfa.Dfa.alpha_size in
  let column (d : Dfa.t) a =
    List.init d.Dfa.size (fun q -> d.Dfa.delta.((q * k) + a))
  in
  let tbl = Hashtbl.create 16 in
  let class_of = Array.make k 0 in
  let rev_reprs = ref [] in
  let n = ref 0 in
  for a = 0 to k - 1 do
    let key = (a = expr.mark, column left_dfa a, column right_rev_dfa a) in
    match Hashtbl.find_opt tbl key with
    | Some c -> class_of.(a) <- c
    | None ->
        let c = !n in
        incr n;
        Hashtbl.add tbl key c;
        class_of.(a) <- c;
        rev_reprs := a :: !rev_reprs
  done;
  let reprs = Array.of_list (List.rev !rev_reprs) in
  let nc = !n in
  (* The shrunken DFAs inherit the validate invariants: every delta
     target is copied from a validated table, finals/size/start are
     unchanged, and the row width is exactly n_classes — so unsafe_step
     stays licensed on them. *)
  let shrink (d : Dfa.t) =
    {
      Dfa.alpha_size = nc;
      size = d.Dfa.size;
      start = d.Dfa.start;
      finals = Array.copy d.Dfa.finals;
      delta =
        Array.init (d.Dfa.size * nc) (fun i ->
            d.Dfa.delta.(((i / nc) * k) + reprs.(i mod nc)));
    }
  in
  {
    class_of;
    n_classes = nc;
    c_mark = class_of.(expr.mark);
    c_left = shrink left_dfa;
    c_right_rev = shrink right_rev_dfa;
  }

type matcher = {
  expr : t;
  left_dfa : Dfa.t;
  (* DFA of the reversed right language: running it over the suffix read
     right-to-left decides suffix ∈ L(E2). *)
  right_rev_dfa : Dfa.t;
  comp : compressed;
}

let compile expr =
  let left_dfa = Lang.dfa (left_lang expr) in
  let right_rev_dfa = Lang.dfa (Lang.reverse (right_lang expr)) in
  (* A matcher is frozen here — both DFAs are immutable from now on, so
     sharing one matcher across the Batch pool's domains is safe.
     validate establishes the structural invariants (delta targets in
     range, finals length = size) that license the unsafe accesses in
     the hot path below. *)
  Dfa.validate left_dfa;
  Dfa.validate right_rev_dfa;
  { expr; left_dfa; right_rev_dfa; comp = compress expr ~left_dfa ~right_rev_dfa }

(* Checksum-licensed constructor: the .rxc artifact loader decodes its
   DFAs under the same structural checks Dfa.validate performs (delta
   length and targets, finals length, start in range) and proves byte
   integrity with a CRC-32, so re-validating here would only repeat
   work already done.  The contract is the caller's to uphold — a DFA
   that never passed those checks makes the unsafe_step hot path
   unsound. *)
let matcher_of_validated expr ~left_dfa ~right_rev_dfa =
  let expect_alpha = Alphabet.size expr.alpha in
  if
    left_dfa.Dfa.alpha_size <> expect_alpha
    || right_rev_dfa.Dfa.alpha_size <> expect_alpha
  then invalid_arg "Extraction.matcher_of_validated: alphabet size mismatch";
  { expr; left_dfa; right_rev_dfa; comp = compress expr ~left_dfa ~right_rev_dfa }

let matcher_expr m = m.expr
let matcher_compressed m = m.comp

(* Per-domain scratch for the suffix_ok bitset: one Bytes buffer per
   domain, grown geometrically and reused across calls, so the hot
   matcher path performs no per-word heap allocation beyond the result
   list.  Domain-local storage keeps it safe under the Batch pool — no
   two domains ever share a buffer, and a matcher call never suspends
   mid-scratch. *)
let scratch_key : Bytes.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref Bytes.empty)

let get_scratch nbits =
  let cell = Domain.DLS.get scratch_key in
  let need = (nbits + 7) lsr 3 in
  if Bytes.length !cell < need then
    cell := Bytes.create (max 64 (max need (2 * Bytes.length !cell)));
  !cell

(* Raw bit ops on scratch.  Unsafe accesses are licensed by get_scratch
   sizing; callers write every bit they later read, so no zeroing. *)
let bit_write b i v =
  let byte = i lsr 3 and off = i land 7 in
  let cur = Char.code (Bytes.unsafe_get b byte) in
  let cur' = if v then cur lor (1 lsl off) else cur land lnot (1 lsl off) in
  Bytes.unsafe_set b byte (Char.unsafe_chr cur')

let bit_read b i =
  (Char.code (Bytes.unsafe_get b (i lsr 3)) lsr (i land 7)) land 1 <> 0

(* The zero-allocation fast path.  Symbols are bound-checked in the
   backward pass (the only unvalidated input); given that and the
   compile-time Dfa.validate, every unsafe array access below is in
   range — see Dfa.unsafe_step. *)
let matcher_splits m w =
  let n = Array.length w in
  let mark = m.expr.mark in
  let rd = m.right_rev_dfa and ld = m.left_dfa in
  let alpha = rd.Dfa.alpha_size in
  (* suffix_ok bit i ⇔ w[i..n) ∈ L(E2); computed right-to-left. *)
  let suffix_ok = get_scratch (n + 1) in
  let state = ref rd.Dfa.start in
  bit_write suffix_ok n (Array.unsafe_get rd.Dfa.finals !state);
  for i = n - 1 downto 0 do
    let a = Array.unsafe_get w i in
    if a < 0 || a >= alpha then
      invalid_arg "Extraction.matcher_splits: symbol out of range";
    state := Dfa.unsafe_step rd !state a;
    bit_write suffix_ok i (Array.unsafe_get rd.Dfa.finals !state)
  done;
  let acc = ref [] in
  let lstate = ref ld.Dfa.start in
  for i = 0 to n - 1 do
    let a = Array.unsafe_get w i in
    if a = mark && Array.unsafe_get ld.Dfa.finals !lstate
       && bit_read suffix_ok (i + 1)
    then acc := i :: !acc;
    lstate := Dfa.unsafe_step ld !lstate a
  done;
  List.rev !acc

(* Same two sweeps in class space: the word is a sequence of class ids
   (from comp.class_of), stepped on the shrunken tables.  Soundness:
   symbols of one class have identical columns in both DFAs, so the
   state trajectories — and hence the split set — equal the symbol-space
   run's (the front oracle layer checks this per symbol and per word). *)
let matcher_splits_classes m cw =
  let n = Array.length cw in
  let c = m.comp in
  let mark = c.c_mark in
  let rd = c.c_right_rev and ld = c.c_left in
  let alpha = rd.Dfa.alpha_size in
  let suffix_ok = get_scratch (n + 1) in
  let state = ref rd.Dfa.start in
  bit_write suffix_ok n (Array.unsafe_get rd.Dfa.finals !state);
  for i = n - 1 downto 0 do
    let a = Array.unsafe_get cw i in
    if a < 0 || a >= alpha then
      invalid_arg "Extraction.matcher_splits_classes: class out of range";
    state := Dfa.unsafe_step rd !state a;
    bit_write suffix_ok i (Array.unsafe_get rd.Dfa.finals !state)
  done;
  let acc = ref [] in
  let lstate = ref ld.Dfa.start in
  for i = 0 to n - 1 do
    let a = Array.unsafe_get cw i in
    if a = mark && Array.unsafe_get ld.Dfa.finals !lstate
       && bit_read suffix_ok (i + 1)
    then acc := i :: !acc;
    lstate := Dfa.unsafe_step ld !lstate a
  done;
  List.rev !acc

(* Allocating reference for the fast path: same two sweeps, but a fresh
   Bitvec per call and only safe accesses.  The sched oracle layer
   checks matcher_splits ≡ matcher_splits_fresh ≡ splits. *)
let matcher_splits_fresh m w =
  let n = Array.length w in
  let mark = m.expr.mark in
  let rd = m.right_rev_dfa and ld = m.left_dfa in
  let suffix_ok = Bitvec.create (n + 1) in
  let state = ref rd.Dfa.start in
  if rd.Dfa.finals.(!state) then Bitvec.set suffix_ok n;
  for i = n - 1 downto 0 do
    state := Dfa.step rd !state w.(i);
    if rd.Dfa.finals.(!state) then Bitvec.set suffix_ok i
  done;
  let acc = ref [] in
  let lstate = ref ld.Dfa.start in
  for i = 0 to n - 1 do
    if w.(i) = mark && ld.Dfa.finals.(!lstate) && Bitvec.mem suffix_ok (i + 1)
    then acc := i :: !acc;
    lstate := Dfa.step ld !lstate w.(i)
  done;
  List.rev !acc

let classify = function
  | [] -> `No_match
  | [ i ] -> `Unique i
  | l -> `Ambiguous l

let matcher_extract m w = classify (matcher_splits m w)

let matcher_online m = Dfa_ops.is_universal m.right_rev_dfa

exception Not_online of { expr : string }

let () =
  Printexc.register_printer (function
    | Not_online { expr } ->
        Some
          (Printf.sprintf
             "Extraction.Not_online(%s): right side is not Σ*, one-pass \
              streaming is undefined — maximize the expression first (§7)"
             expr)
    | _ -> None)

let matcher_stream_splits m syms =
  if not (matcher_online m) then
    raise (Not_online { expr = to_string m.expr });
  let mark = m.expr.mark in
  let dfa = m.left_dfa in
  let alpha = dfa.Dfa.alpha_size in
  (* unfold over (remaining stream, left-DFA state, position); the
     symbol check licenses unsafe_step as in matcher_splits *)
  let rec next (syms, state, i) () =
    match syms () with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (a, rest) ->
        if a < 0 || a >= alpha then
          invalid_arg "Extraction.matcher_stream_splits: symbol out of range";
        let hit = a = mark && Array.unsafe_get dfa.Dfa.finals state in
        let st' = (rest, Dfa.unsafe_step dfa state a, i + 1) in
        if hit then Seq.Cons (i, next st') else next st' ()
  in
  next (syms, dfa.Dfa.start, 0)

let splits t w =
  let l = left_lang t and r = right_lang t in
  let n = Array.length w in
  let ok = ref [] in
  for i = n - 1 downto 0 do
    if
      w.(i) = t.mark
      && Lang.mem l (Array.sub w 0 i)
      && Lang.mem r (Array.sub w (i + 1) (n - i - 1))
    then ok := i :: !ok
  done;
  !ok

(* Same specification as [splits], but membership is decided by
   iterated Brzozowski derivatives on the syntax — no automata are
   built, so this path shares nothing with the DFA pipeline and serves
   as its differential reference (lib/oracle). *)
let splits_deriv t w =
  let n = Array.length w in
  let ok = ref [] in
  for i = n - 1 downto 0 do
    if
      w.(i) = t.mark
      && Regex.matches t.left (Array.sub w 0 i)
      && Regex.matches t.right (Array.sub w (i + 1) (n - i - 1))
    then ok := i :: !ok
  done;
  !ok

let parses t w = splits t w <> []
let extract t w = classify (splits t w)

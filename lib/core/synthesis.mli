(** One-stop maximization of extraction expressions.

    Orchestrates the §6 toolbox over a general input [E1⟨p⟩E2]:

    + reject ambiguous input (with a witness);
    + if a side is already Σ*, run the matching left/right-filtering
      maximization (Algorithm 6.2 or its mirror);
    + otherwise try to {e relax} one side to Σ* (the §6 entry lemmas)
      and retry;
    + where Algorithm 6.2's bounded-count precondition fails, fall back
      to pivot maximization with automatic pivot discovery.

    The outcome records which strategy succeeded, so callers (CLI,
    benches, the wrapper pipeline) can report it. *)

type strategy =
  | Already_maximal
  | Left_filtering  (** Algorithm 6.2 on [E⟨p⟩Σ*] *)
  | Right_filtering  (** mirrored Algorithm 6.2 on [Σ*⟨p⟩E] *)
  | Relaxed_then_left  (** right side widened to Σ*, then Algorithm 6.2 *)
  | Relaxed_then_right
  | Pivoting of Pivot.decomposition
  | Relaxed_then_pivoting of Pivot.decomposition

val pp_strategy : Alphabet.t -> Format.formatter -> strategy -> unit

type failure =
  | Ambiguous of Word.t option
      (** no maximization is defined for ambiguous expressions *)
  | No_strategy
      (** the expression is outside the maximizable classes this paper
          gives algorithms for (its general decidability is open, §8) *)

val pp_failure : Alphabet.t -> Format.formatter -> failure -> unit

val maximize : Extraction.t -> (Extraction.t * strategy, failure) result
(** On success the returned expression is unambiguous, maximal
    (Cor 5.8-checkable), and generalizes the input ([≼]). *)

(** Deciding maximality of unambiguous extraction expressions
    (Defn 4.5, Prop 5.7, Cor 5.8, Thm 5.12).

    An unambiguous [E1⟨p⟩E2] is {e maximal} iff no unambiguous expression
    strictly above it in [≼] parses a larger language.  By Cor 5.8 this
    holds iff both

    - [(E1·p·E2) / (p·E2) = Σ*], and
    - [(E1·p) \ (E1·p·E2) = Σ*].

    The test is PSPACE-complete in general (Thm 5.12 — universality of a
    regular expression, Lemma 5.9); here it is exact via complementation
    of the minimal DFA, which is exponential-time in the worst case but
    fast at wrapper scale (experiment E3 measures the blowup family). *)

type verdict =
  | Maximal
  | Not_maximal_left of Word.t
      (** A word ρ ∉ (E1·p·E2)/(p·E2) with ρ ∉ L(E1): per the proof of
          Prop 5.7, [(ρ|E1)⟨p⟩E2] is unambiguous and strictly larger.
          (The second condition is automatic when E2 ≠ ∅ and keeps the
          witness actionable when E2 = ∅.) *)
  | Not_maximal_right of Word.t
      (** Dually, a word extending E2. *)
  | Ambiguous_input of Word.t option
      (** Maximality is only defined for unambiguous expressions; the
          witness is an ambiguously-parsed word if one was computed. *)

val check : Extraction.t -> verdict

val is_maximal : Extraction.t -> bool
(** [check e = Maximal].  Ambiguous input ⇒ [false]. *)

val check_bounded :
  budget:Guard.Budget.t -> Extraction.t -> verdict Guard.outcome
(** {!check} metered by a {!Guard.Budget.t}: the PSPACE-hard instances
    (Thm 5.12) answer [Unknown] when the fuel or deadline gives out
    instead of constructing an exponential DFA; [Decided v] is the
    exact unbudgeted verdict. *)

val is_maximal_langs : Lang.t -> int -> Lang.t -> bool
(** Language-level Cor 5.8 test, unambiguity {e not} re-checked —
    internal fast path for the synthesis algorithms. *)

val left_deficiency : Lang.t -> int -> Lang.t -> Lang.t
(** [Σ* − (E1·p·E2)/(p·E2)]: words that could be adjoined to E1. *)

val right_deficiency : Lang.t -> int -> Lang.t -> Lang.t
(** [Σ* − (E1·p)\(E1·p·E2)]: words that could be adjoined to E2. *)

type error =
  | Ambiguous of Word.t option
  | Unbounded_mark_count
  | Right_side_not_sigma_star
  | Left_side_not_sigma_star

let pp_error ppf = function
  | Ambiguous _ -> Format.pp_print_string ppf "input expression is ambiguous"
  | Unbounded_mark_count ->
      Format.pp_print_string ppf
        "left side matches unboundedly many marked symbols (Algorithm 6.2 \
         precondition); try pivot maximization"
  | Right_side_not_sigma_star ->
      Format.pp_print_string ppf "right side is not Σ*"
  | Left_side_not_sigma_star ->
      Format.pp_print_string ppf "left side is not Σ*"

let bounded_mark_count l p =
  match Lang.max_sym_count l ~sym:p with
  | `Empty -> Some 0
  | `Bounded n -> Some n
  | `Unbounded -> None

let maximize_lang (e : Lang.t) (p : int) : (Lang.t, error) result =
  let alpha = Lang.alphabet e in
  let sigma_star = Lang.sigma_star alpha in
  if Ambiguity.is_ambiguous_langs e p sigma_star then
    Error
      (Ambiguous
         (Ambiguity.witness (Extraction.of_langs alpha e p sigma_star)))
  else
    match bounded_mark_count e p with
    | None -> Error Unbounded_mark_count
    | Some _bound ->
        let psigma = Lang.concat (Lang.sym alpha p) sigma_star in
        let f = Lang.suffix_quotient e psigma in
        let nop_star = Lang.of_regex alpha (Regex.any_but_star p) in
        let filt n = Lang.filter_count f ~sym:p n in
        (* S := (Σ−p)* − F‖_p^0; each iteration's F‖_p^{n+1} is reused as
           the next iteration's F‖_p^n, so every filter is built once. *)
        let f0 = filt 0 in
        let s = ref (Lang.diff nop_star f0) in
        let fn = ref f0 in
        let n = ref 0 in
        while not (Lang.is_empty !fn) do
          (* S := S + (F‖_p^n · p · (Σ−p)* − F‖_p^{n+1}) *)
          let fn1 = filt (!n + 1) in
          let block =
            Lang.diff
              (Lang.concat_list alpha [ !fn; Lang.sym alpha p; nop_star ])
              fn1
          in
          s := Lang.union !s block;
          fn := fn1;
          incr n
        done;
        Ok (Lang.union e !s)

let is_sigma_star l = Lang.is_universal l

let maximize (e : Extraction.t) =
  if not (is_sigma_star (Extraction.right_lang e)) then
    Error Right_side_not_sigma_star
  else
    match maximize_lang (Extraction.left_lang e) e.Extraction.mark with
    | Error err -> Error err
    | Ok e' ->
        Ok
          (Extraction.of_langs e.Extraction.alpha e' e.Extraction.mark
             (Lang.sigma_star e.Extraction.alpha))

(* Mirror image.  Unambiguity, the order ≼, and maximality are all
   preserved by reversal with the two sides swapped: ρ = α·p·β splits of
   E1⟨p⟩E2 correspond to rev ρ = rev β·p·rev α splits of
   rev E2⟨p⟩rev E1. *)
let maximize_right_lang (e : Lang.t) (p : int) =
  match maximize_lang (Lang.reverse e) p with
  | Error err -> Error err
  | Ok e' -> Ok (Lang.reverse e')

let maximize_right (e : Extraction.t) =
  if not (is_sigma_star (Extraction.left_lang e)) then
    Error Left_side_not_sigma_star
  else
    match maximize_right_lang (Extraction.right_lang e) e.Extraction.mark with
    | Error err -> Error err
    | Ok e' ->
        Ok
          (Extraction.of_langs e.Extraction.alpha
             (Lang.sigma_star e.Extraction.alpha)
             e.Extraction.mark e')

let relax_right (e : Extraction.t) =
  let alpha = e.Extraction.alpha in
  let l1 = Extraction.left_lang e in
  let p = Lang.sym alpha e.Extraction.mark in
  let cond = Lang.prefix_quotient (Lang.concat l1 p) l1 in
  if Lang.is_empty cond then
    Some
      (Extraction.make alpha e.Extraction.left e.Extraction.mark
         Regex.sigma_star)
  else None

let relax_left (e : Extraction.t) =
  let alpha = e.Extraction.alpha in
  let l2 = Extraction.right_lang e in
  let p = Lang.sym alpha e.Extraction.mark in
  let cond = Lang.suffix_quotient l2 (Lang.concat p l2) in
  if Lang.is_empty cond then
    Some
      (Extraction.make alpha Regex.sigma_star e.Extraction.mark
         e.Extraction.right)
  else None

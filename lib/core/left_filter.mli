(** Algorithm 6.2 — left-filtering maximization.

    Input: an unambiguous extraction expression [E⟨p⟩Σ*] whose left side
    matches a {e bounded} number of [p]'s (i.e. [E‖_p^n = ∅] for some n —
    checked via {!Lang.max_sym_count}).  Output: a maximal unambiguous
    generalization [E'⟨p⟩Σ*] with [E ⊆ E'] (Prop 6.5).

    The algorithm, verbatim from the paper with [F = E/(p·Σ* )]:
    {v
      S := (Σ−p)* − F‖_p^0
      n := 0
      while F‖_p^n ≠ ∅:
        S := S + (F‖_p^n · p · (Σ−p)* − F‖_p^{n+1});  n := n+1
      E' := E + S
    v}

    Also provided are the §6 entry lemmas that reduce a general
    [E1⟨p⟩E2] to the [E⟨p⟩Σ*] form when one side is "independent":
    {!relax_right} and its mirror {!relax_left}, and the mirror-image
    maximizer {!maximize_right} for [Σ*⟨p⟩E] obtained by reversal. *)

type error =
  | Ambiguous of Word.t option
      (** input expression is not unambiguous *)
  | Unbounded_mark_count
      (** [E] matches unboundedly many [p]'s — Algorithm 6.2 does not
          apply (use pivot maximization) *)
  | Right_side_not_sigma_star
  | Left_side_not_sigma_star

val pp_error : Format.formatter -> error -> unit

val maximize_lang : Lang.t -> int -> (Lang.t, error) result
(** Core of Algorithm 6.2 on the left language: given [E] (as a
    language) with the preconditions above, return [E'].  Does not
    re-check that the right side is Σ* (it has no right side). *)

val maximize : Extraction.t -> (Extraction.t, error) result
(** Apply Algorithm 6.2 to [E⟨p⟩Σ*].  Fails with
    [Right_side_not_sigma_star] if the right side isn't Σ*. *)

val maximize_right_lang : Lang.t -> int -> (Lang.t, error) result
(** Mirror image: maximize [Σ*⟨p⟩E] by reversing, maximizing, and
    reversing back. *)

val maximize_right : Extraction.t -> (Extraction.t, error) result

val relax_right : Extraction.t -> Extraction.t option
(** §6: if [(E1·p)\E1 = ∅] then [E1⟨p⟩E2 ≼ E1⟨p⟩Σ*] and the widened
    expression is still unambiguous; returns it, or [None] if the
    condition fails. *)

val relax_left : Extraction.t -> Extraction.t option
(** Mirror: if [E2/(p·E2) = ∅], widen the left side to Σ*. *)

val bounded_mark_count : Lang.t -> int -> int option
(** [Some n] when the language matches at most [n] occurrences of the
    symbol (and [n] is attained), [None] when unbounded; empty language
    gives [Some 0] vacuously. *)

(** The pivot maximization framework (§6, Props 6.6–6.8).

    Given [E⟨p⟩Σ*] where [E] can be written as
    [E1·q1·E2·q2 ⋯ En·qn·E(n+1)] such that every
    [Ei⟨qi⟩Σ*] (and [E(n+1)⟨p⟩Σ*]) is unambiguous and left-filter
    maximizable, the composition of the maximized factors

    [(E'1·q1·E'2·q2 ⋯ E'n·qn·E'(n+1))⟨p⟩Σ*]

    is a maximal unambiguous generalization of [E⟨p⟩Σ*] (Prop 6.8).
    This is strictly stronger than plain left-filtering: [E] itself may
    match unboundedly many [p]'s as long as the {e last} factor does not
    — exactly the situation of the §7 shopbot walkthrough, where the
    pivots are the [FORM] and first [INPUT] tags. *)

type decomposition = {
  segments : Regex.t list;  (** [E1; …; E(n+1)] *)
  pivots : int list;  (** [q1; …; qn]; one shorter than [segments] *)
}

val pp_decomposition : Alphabet.t -> Format.formatter -> decomposition -> unit

val recompose : decomposition -> Regex.t
(** [E1·q1·E2 ⋯ qn·E(n+1)] — the expression the decomposition denotes. *)

type error =
  | Bad_shape  (** segment/pivot counts do not line up *)
  | Segment_failure of int * Left_filter.error
      (** 0-based index of the factor that violates the side conditions *)

val pp_error : Format.formatter -> error -> unit

val validate : Alphabet.t -> decomposition -> int -> (unit, error) result
(** Check all Prop 6.8 side conditions for marked symbol [p]. *)

val maximize :
  Alphabet.t -> decomposition -> int -> (Extraction.t, error) result
(** Left-filter each factor and recompose.  The result is maximal and
    unambiguous, and generalizes [recompose d ⟨p⟩ Σ*]. *)

val auto_decompose : Alphabet.t -> Regex.t -> int -> decomposition option
(** Greedy pivot discovery on the top-level concatenation spine: scan
    left to right; a literal-symbol atom [q] becomes a pivot as soon as
    the segment accumulated so far satisfies the [⟨q⟩] side conditions.
    Returns [None] when even the trivial decomposition (no pivots)
    fails, i.e. when the trailing factor is ambiguous or has unbounded
    [p]-count. *)

(** {1 Composition theorems as library functions} *)

val compose : Extraction.t -> Extraction.t -> Extraction.t
(** [compose (E1⟨q⟩Σ* ) (E2⟨p⟩Σ* ) = (E1·q·E2)⟨p⟩Σ*].  By Prop 6.6 the
    result is unambiguous when both inputs are; by Prop 6.7 it is also
    maximal when both inputs are.  @raise Invalid_argument if either
    right side is not Σ*. *)

(** Deciding (un)ambiguity of extraction expressions (§5, Defn 4.2).

    An extraction expression [E1⟨p⟩E2] is {e unambiguous} iff every
    parsed string has a unique split [α·p·β] with [α ∈ L(E1)],
    [β ∈ L(E2)].  Two independent decision procedures are provided:

    - {!is_ambiguous}: the quotient characterization of Prop 5.4 —
      ambiguous iff [(E1·p)\E1 ∩ E2/(p·E2) ≠ ∅] (via Lemma 5.3);
    - {!is_ambiguous_marker}: the fresh-marker characterization of
      Prop 5.5 — ambiguous iff
      [(E1·c·E2) ∩ (E1·p·E2[p → p|c]) ≠ ∅] over Σ ∪ {c}.

    Both are polynomial (Thm 5.6); they are cross-checked against each
    other and against a brute-force split-counting oracle in the tests. *)

val is_ambiguous : Extraction.t -> bool
val is_unambiguous : Extraction.t -> bool

val is_ambiguous_marker : Extraction.t -> bool
(** The Prop 5.5 construction, implemented independently. *)

val witness : Extraction.t -> Word.t option
(** When ambiguous, a (short) parsed word admitting at least two splits,
    built per Lemma 5.3 as [α·p·γ·p·β].  [None] iff unambiguous. *)

(** {1 Budgeted variants}

    Same procedures metered by a {!Guard.Budget.t}: [Decided v] is the
    exact unbudgeted answer (fuel never alters the computation, it only
    bounds it); [Unknown] means the budget gave out first.  The
    unbudgeted entry points above stay total for in-budget inputs. *)

val is_ambiguous_bounded :
  budget:Guard.Budget.t -> Extraction.t -> bool Guard.outcome

val witness_bounded :
  budget:Guard.Budget.t -> Extraction.t -> Word.t option Guard.outcome

(** {1 Language-level interface}

    Used by the synthesis algorithms, which manipulate languages
    directly. *)

val ambiguous_core : Lang.t -> int -> Lang.t -> Lang.t
(** [(E1·p)\E1 ∩ E2/(p·E2)] — the set of "middles" γ of Lemma 5.3;
    empty iff unambiguous. *)

val is_ambiguous_langs : Lang.t -> int -> Lang.t -> bool

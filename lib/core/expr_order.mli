(** The resilience partial order on extraction expressions (Defn 4.4).

    [F1⟨p⟩F2 ≼ E1⟨p⟩E2] iff [L(F1) ⊆ L(E1)] and [L(F2) ⊆ L(E2)]; we then
    say [E1⟨p⟩E2] {e generalizes} [F1⟨p⟩F2].  Larger expressions are more
    resilient: they uniquely parse strictly more document variants, and
    they agree with the smaller expression on every string the smaller
    one parses. *)

val preceq : Extraction.t -> Extraction.t -> bool
(** [preceq f e] ⇔ [f ≼ e].  @raise Invalid_argument if the expressions
    are over different alphabets or have different marked symbols. *)

val generalizes : Extraction.t -> Extraction.t -> bool
(** [generalizes e f] ⇔ [f ≼ e]. *)

val equivalent : Extraction.t -> Extraction.t -> bool
(** Both components equal as languages ([≼] in both directions). *)

val strictly_below : Extraction.t -> Extraction.t -> bool
(** [f ≼ e] and not [e ≼ f]. *)

val same_parsed_language : Extraction.t -> Extraction.t -> bool
(** [L(F1·p·F2) = L(E1·p·E2)].  Note (§4): [≼] implies containment of
    parsed languages but {e not} vice versa — [p⟨p⟩pp] and [pp⟨p⟩p]
    parse the same language yet extract different occurrences. *)

(** {1 Budgeted variants} — see {!Guard}.  [Decided v] is the exact
    unbudgeted answer; [Unknown] means the fuel/deadline gave out. *)

val preceq_bounded :
  budget:Guard.Budget.t -> Extraction.t -> Extraction.t -> bool Guard.outcome

val equivalent_bounded :
  budget:Guard.Budget.t -> Extraction.t -> Extraction.t -> bool Guard.outcome

type strategy =
  | Already_maximal
  | Left_filtering
  | Right_filtering
  | Relaxed_then_left
  | Relaxed_then_right
  | Pivoting of Pivot.decomposition
  | Relaxed_then_pivoting of Pivot.decomposition

let pp_strategy alpha ppf = function
  | Already_maximal -> Format.pp_print_string ppf "already maximal"
  | Left_filtering -> Format.pp_print_string ppf "left-filtering (Alg. 6.2)"
  | Right_filtering ->
      Format.pp_print_string ppf "right-filtering (mirrored Alg. 6.2)"
  | Relaxed_then_left ->
      Format.pp_print_string ppf "right side relaxed to Σ*, then Alg. 6.2"
  | Relaxed_then_right ->
      Format.pp_print_string ppf "left side relaxed to Σ*, then mirrored Alg. 6.2"
  | Pivoting d ->
      Format.fprintf ppf "pivot maximization with %a"
        (Pivot.pp_decomposition alpha) d
  | Relaxed_then_pivoting d ->
      Format.fprintf ppf "right side relaxed to Σ*, then pivots %a"
        (Pivot.pp_decomposition alpha) d

type failure = Ambiguous of Word.t option | No_strategy

let pp_failure alpha ppf = function
  | Ambiguous (Some w) ->
      Format.fprintf ppf "ambiguous (witness: %a)" (Word.pp alpha) w
  | Ambiguous None -> Format.pp_print_string ppf "ambiguous"
  | No_strategy ->
      Format.pp_print_string ppf
        "no applicable maximization strategy (outside the left-filtering \
         and pivot classes)"

(* Maximize E⟨p⟩Σ*.  Pivot decomposition is preferred when the spine
   offers pivots: §7 notes that the direct application of Algorithm 6.2
   "will be looking for a second INPUT-element on the page, even if the
   first and the second INPUT-elements come from different forms" — the
   pivot result keys on structural anchors instead and is the resilient
   one.  Plain left-filtering remains the fallback. *)
let maximize_left_form ~relaxed (e : Extraction.t) =
  let try_pivot () =
    match
      Pivot.auto_decompose e.Extraction.alpha e.Extraction.left
        e.Extraction.mark
    with
    | Some d when d.Pivot.pivots <> [] -> (
        match Pivot.maximize e.Extraction.alpha d e.Extraction.mark with
        | Ok e' ->
            Some (Ok (e', if relaxed then Relaxed_then_pivoting d else Pivoting d))
        | Error (Pivot.Segment_failure (_, Left_filter.Ambiguous w)) ->
            Some (Error (Ambiguous w))
        | Error _ -> None)
    | Some _ | None -> None
  in
  match try_pivot () with
  | Some outcome -> outcome
  | None -> (
      match Left_filter.maximize e with
      | Ok e' -> Ok (e', if relaxed then Relaxed_then_left else Left_filtering)
      | Error (Left_filter.Ambiguous w) -> Error (Ambiguous w)
      | Error Left_filter.Unbounded_mark_count -> Error No_strategy
      | Error
          ( Left_filter.Right_side_not_sigma_star
          | Left_filter.Left_side_not_sigma_star ) ->
          Error No_strategy)

let maximize_right_form (e : Extraction.t) ~relaxed =
  match Left_filter.maximize_right e with
  | Ok e' -> Ok (e', if relaxed then Relaxed_then_right else Right_filtering)
  | Error (Left_filter.Ambiguous w) -> Error (Ambiguous w)
  | Error _ -> Error No_strategy

let maximize (e : Extraction.t) =
  let l1 = Extraction.left_lang e and l2 = Extraction.right_lang e in
  let p = e.Extraction.mark in
  if Ambiguity.is_ambiguous_langs l1 p l2 then
    Error (Ambiguous (Ambiguity.witness e))
  else if Maximality.is_maximal_langs l1 p l2 then Ok (e, Already_maximal)
  else if Lang.is_universal l2 then maximize_left_form ~relaxed:false e
  else if Lang.is_universal l1 then maximize_right_form e ~relaxed:false
  else
    match Left_filter.relax_right e with
    | Some e' -> maximize_left_form ~relaxed:true e'
    | None -> (
        match Left_filter.relax_left e with
        | Some e' -> maximize_right_form e' ~relaxed:true
        | None -> Error No_strategy)

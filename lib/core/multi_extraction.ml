type t = {
  alpha : Alphabet.t;
  segments : Regex.t list;
  marks : int list;
}

let make alpha segments marks =
  if List.length segments <> List.length marks + 1 then
    invalid_arg "Multi_extraction.make: need one more segment than marks";
  if marks = [] then invalid_arg "Multi_extraction.make: at least one mark";
  List.iter
    (fun p ->
      if p < 0 || p >= Alphabet.size alpha then
        invalid_arg "Multi_extraction.make: mark symbol out of range")
    marks;
  { alpha; segments; marks }

(* Scan for all top-level <ident> markers, then parse the pieces. *)
let parse alpha s =
  let n = String.length s in
  let markers = ref [] in
  let rec scan i depth =
    if i >= n then ()
    else
      match s.[i] with
      | '(' -> scan (i + 1) (depth + 1)
      | ')' -> scan (i + 1) (depth - 1)
      | '<' when depth = 0 -> (
          match String.index_from_opt s i '>' with
          | Some j ->
              markers := (i, j) :: !markers;
              scan (j + 1) depth
          | None -> raise (Regex_parse.Parse_error ("unterminated marker", i)))
      | _ -> scan (i + 1) depth
  in
  scan 0 0;
  let markers = List.rev !markers in
  if markers = [] then
    raise (Regex_parse.Parse_error ("missing <p> marker", 0));
  let mark_of (i, j) =
    let name = String.trim (String.sub s (i + 1) (j - i - 1)) in
    match Alphabet.find alpha name with
    | Some a -> a
    | None ->
        raise (Regex_parse.Parse_error ("unknown marked symbol " ^ name, i))
  in
  let parse_side str =
    if String.trim str = "" then Regex.eps else Regex_parse.parse alpha str
  in
  let rec cut pos = function
    | [] -> [ parse_side (String.sub s pos (n - pos)) ]
    | (i, j) :: rest -> parse_side (String.sub s pos (i - pos)) :: cut (j + 1) rest
  in
  make alpha (cut 0 markers) (List.map mark_of markers)

let pp ppf t =
  let rec go ppf (segs, marks) =
    match (segs, marks) with
    | [ e ], [] -> Regex.pp ~compact:true t.alpha ppf e
    | e :: segs, p :: marks ->
        Format.fprintf ppf "%a <%s> %a"
          (Regex.pp ~compact:true t.alpha)
          e
          (Alphabet.name t.alpha p)
          go (segs, marks)
    | _ -> assert false
  in
  go ppf (t.segments, t.marks)

let to_string t = Format.asprintf "%a" pp t
let arity t = List.length t.marks

let language t =
  let rec weave segs marks =
    match (segs, marks) with
    | [ e ], [] -> [ Lang.of_regex t.alpha e ]
    | e :: segs, p :: marks ->
        Lang.of_regex t.alpha e :: Lang.sym t.alpha p :: weave segs marks
    | _ -> assert false
  in
  Lang.concat_list t.alpha (weave t.segments t.marks)

let coordinate_expression t j =
  let k = arity t in
  if j < 0 || j >= k then invalid_arg "Multi_extraction.coordinate_expression";
  let segs = Array.of_list t.segments in
  let marks = Array.of_list t.marks in
  let left =
    Regex.cat_list
      (List.concat
         (List.init j (fun i -> [ segs.(i); Regex.sym marks.(i) ])
         @ [ [ segs.(j) ] ]))
  in
  let right =
    Regex.cat_list
      (segs.(j + 1)
      :: List.concat
           (List.init (k - 1 - j) (fun d ->
                [ Regex.sym marks.(j + 1 + d); segs.(j + 2 + d) ])))
  in
  Extraction.make t.alpha left marks.(j) right

let splits t w =
  let segs = Array.of_list (List.map (Lang.of_regex t.alpha) t.segments) in
  let marks = Array.of_list t.marks in
  let k = Array.length marks in
  let n = Array.length w in
  (* go j start: tuples for marks j.. assuming segment j starts at [start] *)
  let rec go j start =
    if j = k then
      if Lang.mem segs.(k) (Word.sub w start (n - start)) then [ [] ] else []
    else begin
      let acc = ref [] in
      for i = n - 1 downto start do
        if w.(i) = marks.(j) && Lang.mem segs.(j) (Word.sub w start (i - start))
        then
          List.iter
            (fun rest -> acc := (i :: rest) :: !acc)
            (go (j + 1) (i + 1))
      done;
      !acc
    end
  in
  go 0 0

let classify = function
  | [] -> `No_match
  | [ tuple ] -> `Unique tuple
  | tuples -> `Ambiguous tuples

let extract t w = classify (splits t w)

let is_ambiguous t =
  let k = arity t in
  let rec any j =
    j < k
    && (Ambiguity.is_ambiguous (coordinate_expression t j) || any (j + 1))
  in
  any 0

let is_unambiguous t = not (is_ambiguous t)

let of_extraction (e : Extraction.t) =
  make e.Extraction.alpha
    [ e.Extraction.left; e.Extraction.right ]
    [ e.Extraction.mark ]

let to_extraction t =
  match (t.segments, t.marks) with
  | [ l; r ], [ p ] -> Some (Extraction.make t.alpha l p r)
  | _ -> None

type matcher = { expr : t; coords : Extraction.matcher array }

let compile t =
  {
    expr = t;
    coords =
      Array.init (arity t) (fun j -> Extraction.compile (coordinate_expression t j));
  }

let matcher_extract m w =
  let k = Array.length m.coords in
  let per_coord = Array.map (fun cm -> Extraction.matcher_splits cm w) m.coords in
  if Array.exists (fun l -> l = []) per_coord then `No_match
  else if Array.for_all (fun l -> List.length l = 1) per_coord then begin
    let tuple = Array.to_list (Array.map List.hd per_coord) in
    (* sanity: coordinates of a valid tuple are strictly increasing *)
    let rec increasing = function
      | a :: (b :: _ as rest) -> a < b && increasing rest
      | [ _ ] | [] -> true
    in
    if increasing tuple then `Unique tuple else `No_match
  end
  else
    `Ambiguous
      (List.filter
         (fun tuple -> List.length tuple = k)
         (splits m.expr w))

(** Document perturbation models — §3's taxonomy of page changes.

    "The most typical changes are insertion or deletion of HTML elements
    before or after the object of interest and embedding of the object
    inside some other HTML element."  Each operation transforms a
    document while {e preserving the ground truth}: the [data-target]
    node survives, and no [FORM]/[INPUT] material is inserted or removed
    {e before} the target (which would legitimately change which node
    the learned concept denotes).

    Operations are drawn from a seeded PRNG, so experiment runs are
    reproducible. *)

type op =
  | Insert_header_junk  (** a P/IMG/A/HR/BR fragment before the target *)
  | Insert_nav_row  (** an extra row in (or a whole new) leading table *)
  | Insert_after_target  (** arbitrary material after the target *)
  | Delete_optional  (** remove a FORM/INPUT-free node before the target *)
  | Embed_in_table  (** wrap the target's topmost section in TABLE/TR/TD *)
  | Embed_in_div
  | Append_decoy_form  (** a second form after the target's form *)

val all_ops : op list
val op_name : op -> string

val apply_op : Random.State.t -> op -> Html_tree.doc -> Html_tree.doc option
(** [None] when the operation is not applicable (e.g. nothing deletable);
    the document is returned unchanged in no case — inapplicable ops
    must be retried with another op. *)

val perturb : Random.State.t -> intensity:int -> Html_tree.doc -> Html_tree.doc
(** Apply [intensity] randomly chosen applicable operations in sequence.
    @raise Invalid_argument if the document has no [data-target] node. *)

val perturb_trace :
  Random.State.t -> intensity:int -> Html_tree.doc -> Html_tree.doc * op list
(** {!perturb} plus the ops that were actually applied, in application
    order (inapplicable draws are omitted) — the reproducible edit trace
    the resilience harness records per trial. *)

val figure1_rearrangement : Html_tree.doc -> Html_tree.doc
(** The deterministic §3 redesign: embed everything in a table with a
    header-image row and a customer-service row — turns (a page shaped
    like) Figure 1 top into Figure 1 bottom's layout. *)

let magic = "rexdex-wrapper/1"

let abstraction_to_string = Abstraction.to_string
let abstraction_of_string = Abstraction.of_string
let one_line s = String.map (fun c -> if c = '\n' then ' ' else c) s

let to_string (w : Wrapper.t) =
  String.concat "\n"
    [
      magic;
      "abstraction: " ^ abstraction_to_string w.Wrapper.abs;
      "alphabet: " ^ String.concat " " (Alphabet.names w.Wrapper.alpha);
      "expression: " ^ one_line (Extraction.to_string w.Wrapper.expr);
      "";
    ]

let save w path =
  let oc = open_out path in
  output_string oc (to_string w);
  close_out oc

let field lines key =
  let prefix = key ^ ": " in
  List.find_map
    (fun line ->
      if
        String.length line >= String.length prefix
        && String.sub line 0 (String.length prefix) = prefix
      then
        Some
          (String.sub line (String.length prefix)
             (String.length line - String.length prefix))
      else None)
    lines

let of_string s =
  match String.split_on_char '\n' s with
  | m :: lines when String.trim m = magic -> (
      match (field lines "abstraction", field lines "alphabet", field lines "expression") with
      | Some abs_s, Some alpha_s, Some expr_s -> (
          match abstraction_of_string abs_s with
          | Error e -> Error e
          | Ok abs -> (
              let symbols =
                String.split_on_char ' ' alpha_s
                |> List.filter (fun x -> x <> "")
              in
              match Alphabet.make symbols with
              | exception Invalid_argument e -> Error e
              | alpha -> (
                  match Extraction.parse alpha expr_s with
                  | exception Regex_parse.Parse_error (msg, pos) ->
                      Error (Printf.sprintf "expression (offset %d): %s" pos msg)
                  | expr ->
                      Ok
                        {
                          Wrapper.alpha;
                          abs;
                          expr;
                          matcher = Extraction.compile expr;
                          strategy = None;
                        })))
      | _ -> Error "missing abstraction/alphabet/expression field")
  | _ -> Error "not a rexdex wrapper file (bad magic)"

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s

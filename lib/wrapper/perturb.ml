type op =
  | Insert_header_junk
  | Insert_nav_row
  | Insert_after_target
  | Delete_optional
  | Embed_in_table
  | Embed_in_div
  | Append_decoy_form

let all_ops =
  [
    Insert_header_junk; Insert_nav_row; Insert_after_target; Delete_optional;
    Embed_in_table; Embed_in_div; Append_decoy_form;
  ]

let op_name = function
  | Insert_header_junk -> "insert-header-junk"
  | Insert_nav_row -> "insert-nav-row"
  | Insert_after_target -> "insert-after-target"
  | Delete_optional -> "delete-optional"
  | Embed_in_table -> "embed-in-table"
  | Embed_in_div -> "embed-in-div"
  | Append_decoy_form -> "append-decoy-form"

let el = Html_tree.element
let txt = Html_tree.text

let rec node_mentions names nd =
  match nd with
  | Html_tree.Element { name; children; _ } ->
      List.mem name names || List.exists (node_mentions names) children
  | Html_tree.Text _ | Html_tree.Comment _ -> false

let sensitive = [ "FORM"; "INPUT" ]

let junk_fragment rng =
  match Random.State.int rng 5 with
  | 0 -> el "P" [ txt "Special offers this week!" ]
  | 1 -> el "IMG" ~attrs:[ ("src", Some "promo.gif") ] []
  | 2 -> el "A" ~attrs:[ ("href", Some "deals.html") ] [ txt "Deals" ]
  | 3 -> el "HR" []
  | _ -> el "DIV" [ el "B" [ txt "New" ]; txt " catalog update" ]

let target_head doc =
  match Pagegen.target_path doc with
  | Some (i :: _) -> Some i
  | Some [] | None -> None

let apply_op rng op doc =
  match target_head doc with
  | None -> None
  | Some head -> (
      match op with
      | Insert_header_junk ->
          let pos = Random.State.int rng (head + 1) in
          Html_tree.insert_at doc [ pos ] (junk_fragment rng)
      | Insert_nav_row ->
          let row =
            el "TR"
              [ el "TD" [ el "A" ~attrs:[ ("href", Some "x.html") ] [ txt "X" ] ] ]
          in
          (* A leading FORM/INPUT-free table gets an extra row; otherwise a
             fresh one-row nav table is inserted before the target. *)
          let tables =
            Html_tree.find_elements "TABLE" doc
            |> List.filter (fun (path, nd) ->
                   (match path with i :: _ -> i < head | [] -> false)
                   && not (node_mentions sensitive nd))
          in
          (match tables with
          | (path, _) :: _ -> Html_tree.insert_at doc (path @ [ 0 ]) row
          | [] ->
              Html_tree.insert_at doc
                [ Random.State.int rng (head + 1) ]
                (el "TABLE" [ row ]))
      | Insert_after_target ->
          let n = List.length doc in
          let pos = head + 1 + Random.State.int rng (n - head) in
          Html_tree.insert_at doc [ pos ] (junk_fragment rng)
      | Delete_optional -> (
          let target = Pagegen.target_path doc in
          let is_prefix pre path =
            let rec go a b =
              match (a, b) with
              | [], _ -> true
              | x :: a', y :: b' -> x = y && go a' b'
              | _ -> false
            in
            go pre path
          in
          let candidates =
            Html_tree.find_all (fun _ -> true) doc
            |> List.filter (fun (path, nd) ->
                   (match target with
                   | Some t -> not (is_prefix path t)
                   | None -> true)
                   && not (node_mentions sensitive nd))
          in
          match candidates with
          | [] -> None
          | _ ->
              let path, _ =
                List.nth candidates (Random.State.int rng (List.length candidates))
              in
              Html_tree.replace_at doc path (fun _ -> []))
      | Embed_in_table ->
          Html_tree.replace_at doc [ head ] (fun nd ->
              [ el "TABLE" [ el "TR" [ el "TD" [ nd ] ] ] ])
      | Embed_in_div ->
          Html_tree.replace_at doc [ head ] (fun nd -> [ el "DIV" [ nd ] ])
      | Append_decoy_form ->
          let decoy =
            el "FORM"
              ~attrs:[ ("action", Some "other.cgi") ]
              [
                el ~attrs:[ ("type", Some "image") ] "INPUT" [];
                el ~attrs:[ ("type", Some "text") ] "INPUT" [];
              ]
          in
          Html_tree.insert_at doc [ List.length doc ] decoy)

let perturb_trace rng ~intensity doc =
  if Pagegen.target_path doc = None then
    invalid_arg "Perturb.perturb: document has no data-target node";
  let rec step doc applied k budget =
    if k = 0 || budget = 0 then (doc, List.rev applied)
    else
      let op = List.nth all_ops (Random.State.int rng (List.length all_ops)) in
      match apply_op rng op doc with
      | Some doc' -> step doc' (op :: applied) (k - 1) (budget - 1)
      | None -> step doc applied k (budget - 1)
  in
  step doc [] intensity (20 * intensity)

let perturb rng ~intensity doc = fst (perturb_trace rng ~intensity doc)

let figure1_rearrangement doc =
  match target_head doc with
  | None -> doc
  | Some head ->
      let form_section = List.nth doc head in
      [
        el "TABLE"
          [
            el "TR" [ el "TH" [ el "IMG" ~attrs:[ ("src", Some "supplier.gif") ] [] ] ];
            el "TR" [ el "TD" [ el "H1" [ txt "Virtual Supplier, Inc." ] ] ];
            el "TR"
              [
                el "TD"
                  [
                    el "A" ~attrs:[ ("href", Some "cust.html") ]
                      [ txt "Customer Service" ];
                  ];
              ];
            el "TR" [ el "TD" [ form_section ] ];
          ];
      ]

type profile = {
  header_blocks : int;
  nav_rows : int;
  embed_form : bool;
  inputs_before_target : int;
  inputs_after_target : int;
  product_rows : int;
  trailing_forms : int;
}

let default_profile =
  {
    header_blocks = 1;
    nav_rows = 0;
    embed_form = false;
    inputs_before_target = 1;
    inputs_after_target = 2;
    product_rows = 0;
    trailing_forms = 0;
  }

let random_profile rng =
  {
    header_blocks = Random.State.int rng 3;
    nav_rows = Random.State.int rng 4;
    embed_form = Random.State.bool rng;
    inputs_before_target = 1 + Random.State.int rng 2;
    inputs_after_target = Random.State.int rng 3;
    product_rows = Random.State.int rng 5;
    trailing_forms = Random.State.int rng 2;
  }

let el = Html_tree.element
let txt = Html_tree.text

let input ?(target = false) kind =
  el
    ~attrs:
      ((if target then [ ("data-target", Some "1") ] else [])
      @ [ ("type", Some kind) ])
    "INPUT" []

(* Figure 1, verbatim HTML (the target text INPUT carries data-target so
   the ground truth survives parsing and perturbation). *)
let figure1_top () =
  Html_tree.parse
    {|<P>
<H1>Virtual Supplier, Inc.</H1>
<P>
<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" data-target="1" />
<br />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form>
</p>|}

let figure1_bottom () =
  Html_tree.parse
    {|<table>
<tr><th><img src="supplier.gif"></th></tr>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><a href="cust.html">Customer Service</a></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target="1" />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form></td></tr>
</table>|}

let header_block rng i =
  match (i + Random.State.int rng 3) mod 3 with
  | 0 -> el "H1" [ txt "Virtual Supplier, Inc." ]
  | 1 -> el "IMG" ~attrs:[ ("src", Some "banner.gif") ] []
  | _ -> el "P" [ el "A" ~attrs:[ ("href", Some "home.html") ] [ txt "Home" ] ]

let nav_row _rng i =
  el "TR"
    [
      el "TD"
        [
          el "A"
            ~attrs:[ ("href", Some (Printf.sprintf "nav%d.html" i)) ]
            [ txt (Printf.sprintf "Section %d" i) ];
        ];
    ]

let product_row _rng i =
  el "TR"
    [
      el "TD" [ txt (Printf.sprintf "Part #%04d" i) ];
      el "TD" [ txt "$9.99" ];
    ]

let search_form ~target rng profile =
  ignore rng;
  el "FORM"
    ~attrs:[ ("method", Some "post"); ("action", Some "search.cgi") ]
    (List.init profile.inputs_before_target (fun _ -> input "image")
    @ [ (if target then input ~target:true "text" else input "text") ]
    @ List.init profile.inputs_after_target (fun _ -> input "radio")
    @ [ el "BR" [] ])

let generate rng profile =
  let header = List.init profile.header_blocks (header_block rng) in
  let nav =
    if profile.nav_rows = 0 then []
    else [ el "TABLE" (List.init profile.nav_rows (nav_row rng)) ]
  in
  let form = search_form ~target:true rng profile in
  let form_section =
    if profile.embed_form then
      [ el "TABLE" [ el "TR" [ el "TD" [ form ] ] ] ]
    else [ form ]
  in
  let products =
    if profile.product_rows = 0 then []
    else [ el "TABLE" (List.init profile.product_rows (product_row rng)) ]
  in
  let trailing =
    List.init profile.trailing_forms (fun _ ->
        search_form ~target:false rng
          { profile with inputs_before_target = 1; inputs_after_target = 1 })
  in
  header @ nav @ form_section @ products @ trailing

let target_path doc =
  let hits =
    Html_tree.find_all
      (function
        | Html_tree.Element { attrs; _ } ->
            List.exists
              (fun a -> a.Html_token.name = "data-target")
              attrs
        | Html_tree.Text _ | Html_tree.Comment _ -> false)
      doc
  in
  match hits with (path, _) :: _ -> Some path | [] -> None

let standard_tags =
  [
    "A"; "B"; "BR"; "CENTER"; "DIV"; "FONT"; "FORM"; "H1"; "H2"; "HR"; "I";
    "IMG"; "INPUT"; "LI"; "P"; "SELECT"; "OPTION"; "SPAN"; "TABLE"; "TD";
    "TH"; "TR"; "UL";
  ]

(* Attribute values the generator and perturbations can produce, per
   refinable (element, attribute) pair — needed to keep refined
   alphabets closed. *)
let known_attr_values =
  [
    ( "INPUT",
      "type",
      [ "text"; "image"; "radio"; "checkbox"; "submit"; "hidden"; "password" ]
    );
  ]

let refined_symbols abs =
  match abs with
  | Abstraction.Tags -> []
  | Abstraction.Tags_with_attrs specs ->
      List.concat_map
        (fun (el, attr) ->
          match
            List.find_opt
              (fun (e, a, _) ->
                String.uppercase_ascii e = String.uppercase_ascii el
                && a = attr)
              known_attr_values
          with
          | Some (_, _, values) ->
              List.map
                (fun v ->
                  Printf.sprintf "%s:%s=%s" (String.uppercase_ascii el) attr v)
                values
          | None -> [])
        specs

type counts = {
  trials : int;
  rigid : int;
  merged : int;
  maximized : int;
  lr : int;
  learn_failures : int;
}

type row = { intensity : int; counts : counts }

let zero = { trials = 0; rigid = 0; merged = 0; maximized = 0; lr = 0; learn_failures = 0 }

(* The four extractors learned from two marked samples. *)
type extractors = {
  x_rigid : Extraction.matcher;
  x_merged : Wrapper.t;
  x_maximized : Wrapper.t;
  x_lr : Lr_wrapper.t;
}

let learn_all abs alpha (samples : (Html_tree.doc * Html_tree.path) list) =
  let marked =
    List.map
      (fun (doc, path) ->
        match Tag_seq.mark_of_path ~abs alpha doc path with
        | Some (word, i) -> Merge.sample word i
        | None -> invalid_arg "Resilience: bad target path")
      samples
  in
  match
    ( Wrapper.learn ~maximize:false ~abs ~alpha samples,
      Wrapper.learn ~maximize:true ~abs ~alpha samples,
      Lr_wrapper.learn alpha marked )
  with
  | Ok merged, Ok maximized, Ok lr ->
      let s1 = List.hd marked in
      let w = s1.Merge.word and i = s1.Merge.mark_pos in
      let rigid =
        Extraction.make alpha
          (Regex.word (Word.sub w 0 i))
          w.(i)
          (Regex.word (Word.sub w (i + 1) (Array.length w - i - 1)))
      in
      Some
        {
          x_rigid = Extraction.compile rigid;
          x_merged = merged;
          x_maximized = maximized;
          x_lr = lr;
        }
  | _ -> None

let ground_truth abs alpha doc =
  match Pagegen.target_path doc with
  | None -> None
  | Some path -> (
      match Tag_seq.mark_of_path ~abs alpha doc path with
      | Some (word, i) -> Some (word, i, path)
      | None -> None)

(* One structured row per trial, so a surprising aggregate percentage
   replays from the artifact alone: the exact PRNG coordinates, the
   §3-taxonomy ops that were actually applied to the test page, and
   each extractor's verdict. *)
let trial_row ~seed ~intensity ~trial ~status ~ops ~verdicts =
  let open Obs.Json in
  Obj
    [
      ("seed", Int seed);
      ("intensity", Int intensity);
      ("trial", Int trial);
      ("status", Str status);
      ("ops", List (List.map (fun op -> Str (Perturb.op_name op)) ops));
      ( "verdicts",
        Obj (List.map (fun (name, hit) -> (name, Bool hit)) verdicts) );
    ]

let evaluate ?(abs = Abstraction.Tags) ?(train_perturbation = 2) ?sink ~seed
    ~trials ~intensities () =
  let alpha = Wrapper.alphabet_for ~abs [] in
  let emit row = match sink with None -> () | Some f -> f row in
  List.map
    (fun intensity ->
      let counts = ref { zero with trials } in
      for trial = 0 to trials - 1 do
        let rng = Random.State.make [| seed; intensity; trial |] in
        let profile = Pagegen.random_profile rng in
        let base = Pagegen.generate rng profile in
        let variant = Perturb.perturb rng ~intensity:train_perturbation base in
        let sample_of doc =
          match Pagegen.target_path doc with
          | Some p -> (doc, p)
          | None -> invalid_arg "Resilience: generator lost the target"
        in
        let learn_failure () =
          counts := { !counts with learn_failures = !counts.learn_failures + 1 };
          emit
            (trial_row ~seed ~intensity ~trial ~status:"learn-failure" ~ops:[]
               ~verdicts:[])
        in
        match learn_all abs alpha [ sample_of base; sample_of variant ] with
        | None -> learn_failure ()
        | Some xs -> (
            let test, ops = Perturb.perturb_trace rng ~intensity base in
            match ground_truth abs alpha test with
            | None -> learn_failure ()
            | Some (word, truth_pos, _) ->
                let hit_rigid =
                  Extraction.matcher_extract xs.x_rigid word = `Unique truth_pos
                in
                let hit m =
                  match Wrapper.extract_pos m word with
                  | Ok i -> i = truth_pos
                  | Error _ -> false
                in
                let hit_lr = Lr_wrapper.extract xs.x_lr word = Some truth_pos in
                let hit_merged = hit xs.x_merged in
                let hit_maximized = hit xs.x_maximized in
                emit
                  (trial_row ~seed ~intensity ~trial ~status:"evaluated" ~ops
                     ~verdicts:
                       [
                         ("rigid", hit_rigid);
                         ("lr", hit_lr);
                         ("merged", hit_merged);
                         ("maximized", hit_maximized);
                       ]);
                counts :=
                  {
                    !counts with
                    rigid = (!counts.rigid + if hit_rigid then 1 else 0);
                    merged = (!counts.merged + if hit_merged then 1 else 0);
                    maximized =
                      (!counts.maximized + if hit_maximized then 1 else 0);
                    lr = (!counts.lr + if hit_lr then 1 else 0);
                  })
      done;
      { intensity; counts = !counts })
    intensities

let pp_table ppf rows =
  let pct n d = if d = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int d in
  Format.fprintf ppf
    "@[<v>| intensity | trials | rigid %% | LR %% | merged %% | maximized %% |@,";
  Format.fprintf ppf "|---|---|---|---|---|---|@,";
  List.iter
    (fun { intensity; counts = c } ->
      let eff = c.trials - c.learn_failures in
      Format.fprintf ppf "| %d | %d | %.1f | %.1f | %.1f | %.1f |@," intensity
        eff (pct c.rigid eff) (pct c.lr eff) (pct c.merged eff)
        (pct c.maximized eff))
    rows;
  Format.fprintf ppf "@]"

(** Synthetic shopbot catalog pages — the §3 "Virtual Supplier" domain.

    The paper's motivating workload is a vendor catalog page containing a
    search form; the object of interest is an [INPUT] element of the
    first form (the text field the robot must fill).  Real pages and the
    authors' harvesting system are unavailable, so this generator
    produces structurally equivalent pages: optional header material,
    optional navigation table, the search form (optionally embedded in a
    layout table, as in the bottom half of Figure 1), product rows, and
    footer junk — each knob randomized from a seeded PRNG.

    The target [INPUT] carries the attribute [data-target="1"] so that
    perturbations can be applied freely and the ground-truth node
    recovered afterwards. *)

type profile = {
  header_blocks : int;  (** 0–3 H1/IMG/A header fragments *)
  nav_rows : int;  (** rows in a navigation table, 0 = no table *)
  embed_form : bool;  (** wrap the form in TABLE/TR/TD (Figure 1 bottom) *)
  inputs_before_target : int;  (** INPUTs in the form before the target *)
  inputs_after_target : int;
  product_rows : int;  (** result rows after the form *)
  trailing_forms : int;  (** decoy forms after the target's form *)
}

val default_profile : profile
val random_profile : Random.State.t -> profile

val figure1_top : unit -> Html_tree.doc
(** The top page of Figure 1, verbatim (target = 2nd INPUT of the form). *)

val figure1_bottom : unit -> Html_tree.doc
(** The rearranged page of Figure 1. *)

val generate : Random.State.t -> profile -> Html_tree.doc
(** A page realizing the profile; exactly one node carries
    [data-target]. *)

val target_path : Html_tree.doc -> Html_tree.path option
(** The path of the [data-target] node. *)

val standard_tags : string list
(** Tag vocabulary all generated/perturbed pages draw from; use it to
    build a closed alphabet up front. *)

val refined_symbols : Abstraction.t -> string list
(** The refined symbols ([INPUT:type=text], …) generated pages can emit
    under the given abstraction — the closure companion to
    {!standard_tags}. *)

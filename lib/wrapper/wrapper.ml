type t = {
  alpha : Alphabet.t;
  abs : Abstraction.t;
  expr : Extraction.t;
  matcher : Extraction.matcher;
  strategy : Synthesis.strategy option;
}

type learn_error =
  | Merge_failed of Merge.error
  | Ambiguous_merge of Word.t option
  | Maximization_failed of Synthesis.failure

let pp_learn_error ppf = function
  | Merge_failed e -> Format.fprintf ppf "merge failed: %a" Merge.pp_error e
  | Ambiguous_merge _ ->
      Format.pp_print_string ppf
        "merged expression is ambiguous (even after disambiguation)"
  | Maximization_failed _ ->
      Format.pp_print_string ppf "maximization failed"

module SS = Set.Make (String)

let alphabet_for ?(abs = Abstraction.Tags) docs =
  let standard =
    List.concat_map
      (fun n -> if Html_tree.is_void n then [ n ] else [ n; "/" ^ n ])
      Pagegen.standard_tags
    @ Pagegen.refined_symbols abs
  in
  let symbols =
    List.fold_left
      (fun acc d -> SS.union acc (SS.of_list (Tag_seq.tag_names ~abs d)))
      (SS.of_list standard) docs
  in
  Alphabet.make (SS.elements symbols)

let learn ?(maximize = true) ?(abs = Abstraction.Tags) ?alpha samples =
  let docs = List.map fst samples in
  let alpha = match alpha with Some a -> a | None -> alphabet_for ~abs docs in
  let marked =
    List.map
      (fun (doc, path) ->
        match Tag_seq.mark_of_path ~abs alpha doc path with
        | Some (word, i) -> Merge.sample word i
        | None -> invalid_arg "Wrapper.learn: target path does not address an element")
      samples
  in
  match Merge.merge alpha marked with
  | Error e -> Error (Merge_failed e)
  | Ok merged -> (
      (* Disambiguate against the samples if the merge came out ambiguous. *)
      let examples =
        List.map (fun s -> (s.Merge.word, s.Merge.mark_pos)) marked
      in
      (* Decision procedures go through the Runtime verdict cache:
         learning several wrappers over one page family re-decides the
         same merged expressions. *)
      let merged =
        if Runtime.is_unambiguous merged then Ok merged
        else
          match Disambiguate.run merged examples with
          | Disambiguate.Disambiguated (e, _) -> Ok e
          | Disambiguate.Already_unambiguous -> Ok merged
          | Disambiguate.Gave_up ->
              Error (Ambiguous_merge (Runtime.ambiguity_witness merged))
      in
      match merged with
      | Error e -> Error e
      | Ok merged ->
          if not maximize then
            Ok
              {
                alpha;
                abs;
                expr = merged;
                matcher = Extraction.compile merged;
                strategy = None;
              }
          else (
            match Runtime.maximize merged with
            | Ok (expr, strategy) ->
                Ok
                  {
                    alpha;
                    abs;
                    expr;
                    matcher = Extraction.compile expr;
                    strategy = Some strategy;
                  }
            | Error f -> Error (Maximization_failed f)))

type extract_error =
  | No_match
  | Ambiguous_on_page of int list
  | Unknown_tag of string
  | Exhausted_budget of Guard.reason
  | Worker_error of string

let pp_extract_error ppf = function
  | No_match -> Format.pp_print_string ppf "no match on page"
  | Ambiguous_on_page l ->
      Format.fprintf ppf "ambiguous on page (%d candidate positions)"
        (List.length l)
  | Unknown_tag t -> Format.fprintf ppf "page uses unknown tag %s" t
  | Exhausted_budget r -> Guard.pp_reason ppf r
  | Worker_error msg -> Format.fprintf ppf "worker error: %s" msg

let extract_pos t word =
  match Extraction.matcher_extract t.matcher word with
  | `Unique i -> Ok i
  | `No_match -> Error No_match
  | `Ambiguous l -> Error (Ambiguous_on_page l)

(* Compiled form: the immutable subset of a wrapper that per-document
   extraction needs.  Matcher DFAs and the alphabet are never mutated
   after construction, so one [compiled] value is shared read-only by
   every domain of a batch run. *)
type compiled = {
  c_alpha : Alphabet.t;
  c_abs : Abstraction.t;
  c_matcher : Extraction.matcher;
  c_front : Front.table Lazy.t;
      (* the fused front-end's token table; lazy so tree-path-only
         callers never pay for it, forced once before any parallel
         fan-out so domains share the frozen table *)
}

let compile t =
  {
    c_alpha = t.alpha;
    c_abs = t.abs;
    c_matcher = t.matcher;
    c_front = lazy (Front.build ~abs:t.abs t.alpha);
  }

let extract_compiled c doc =
  match Tag_seq.of_doc_indexed ~abs:c.c_abs c.c_alpha doc with
  | exception Tag_seq.Unknown_symbol tag -> Error (Unknown_tag tag)
  | word, origins -> (
      match Extraction.matcher_extract c.c_matcher word with
      | `No_match -> Error No_match
      | `Ambiguous l -> Error (Ambiguous_on_page l)
      | `Unique i -> (
          match origins.(i) with
          | Tag_seq.Open_of path | Tag_seq.Close_of path -> Ok path))

let extract t doc = extract_compiled (compile t) doc

(* Fused path: raw bytes straight to the winning path, no tree, no
   word, no origin array.  The [front] oracle layer holds this against
   [extract_compiled] on the parsed tree. *)
let extract_raw c html =
  match Front.extract (Lazy.force c.c_front) c.c_matcher html with
  | Ok path -> Ok path
  | Error Front.No_match -> Error No_match
  | Error (Front.Ambiguous l) -> Error (Ambiguous_on_page l)
  | Error (Front.Unknown_symbol tag) -> Error (Unknown_tag tag)

(* --- .rxc artifacts: ship the compiled form, start warm --- *)

let compile_to ?generation t path =
  Artifact.save
    (Artifact.of_extraction
       ~abstraction:(Abstraction.to_string t.abs)
       ?generation t.expr)
    path

let of_artifact a =
  match Abstraction.of_string a.Artifact.abstraction with
  | Error e -> Error ("bad artifact abstraction: " ^ e)
  | Ok abs ->
      (* the deserialized DFAs become both the matcher (no recompile,
         no re-validate: the decoder's structural checks + CRC license
         it) and warm Lang_cache entries, so decision procedures over
         the loaded expression start as cache hits *)
      Artifact.seed_caches a;
      Ok
        {
          alpha = a.Artifact.alpha;
          abs;
          expr = a.Artifact.expr;
          matcher = Artifact.matcher a;
          strategy = None;
        }

let extract_batch_compiled ?jobs ?chunk ?fuel ?deadline_ms ?(retries = 0) c
    docs =
  let step =
    match (fuel, deadline_ms) with
    | None, None -> extract_compiled c
    | _ ->
        (* Per-item escalating budget: each document gets its own fuel
           allowance and fresh deadline, so one adversarial page
           answers UNKNOWN instead of stalling the whole batch. *)
        let fuel = Option.value fuel ~default:max_int in
        let steps = Guard.escalation_steps ~fuel ~retries in
        fun doc ->
          (match
             Guard.with_escalation ~steps ?deadline_ms (fun () ->
                 extract_compiled c doc)
           with
          | Guard.Decided r -> r
          | Guard.Unknown reason -> Error (Exhausted_budget reason))
  in
  (* node count as the chunk planner's relative weight: page size is
     the best static proxy for the linear-time matching cost (Lemma
     5.2), so giants plan as singleton units before they ever run *)
  List.map
    (function Ok r -> r | Error msg -> Error (Worker_error msg))
    (Batch.map_isolated ?jobs ~cost:Html_tree.count_nodes ?chunk step docs)

let extract_batch ?jobs ?chunk ?fuel ?deadline_ms ?retries t docs =
  extract_batch_compiled ?jobs ?chunk ?fuel ?deadline_ms ?retries (compile t)
    docs

let extract_raw_batch_compiled ?jobs ?chunk ?fuel ?deadline_ms ?(retries = 0) c
    pages =
  (* force the token table on the submitting domain: workers must
     share one frozen table, not race to build their own *)
  ignore (Lazy.force c.c_front);
  let step =
    match (fuel, deadline_ms) with
    | None, None -> extract_raw c
    | _ ->
        let fuel = Option.value fuel ~default:max_int in
        let steps = Guard.escalation_steps ~fuel ~retries in
        fun html ->
          (match
             Guard.with_escalation ~steps ?deadline_ms (fun () ->
                 extract_raw c html)
           with
          | Guard.Decided r -> r
          | Guard.Unknown reason -> Error (Exhausted_budget reason))
  in
  (* byte length is the raw-page analogue of the node-count weight: the
     fused pass is linear in the input bytes *)
  List.map
    (function Ok r -> r | Error msg -> Error (Worker_error msg))
    (Batch.map_isolated ?jobs ~cost:String.length ?chunk step pages)

let extract_raw_batch ?jobs ?chunk ?fuel ?deadline_ms ?retries t pages =
  extract_raw_batch_compiled ?jobs ?chunk ?fuel ?deadline_ms ?retries
    (compile t) pages

(* --- generation cell: atomic hot-swap for the self-healing loop ---

   One immutable snapshot per generation: the wrapper, its compiled
   form (with the front-end table forced, so readers on any domain
   share the frozen structures), and the generation ordinal.  A swap
   publishes a whole new snapshot in a single [Atomic.set]; readers
   take one [Atomic.get] and never observe a torn (wrapper, generation)
   pair.  Swapping is single-writer by design (the heal manager runs on
   the supervising domain), so set — not CAS — is enough. *)

module Gen = struct
  type snapshot = { g_wrapper : t; g_compiled : compiled; g_generation : int }
  type gen = snapshot Atomic.t

  let snap w generation =
    let c = compile w in
    ignore (Lazy.force c.c_front);
    { g_wrapper = w; g_compiled = c; g_generation = generation }

  let make ?(generation = 0) w =
    if generation < 0 then invalid_arg "Wrapper.Gen.make: negative generation";
    Atomic.make (snap w generation)

  let get g =
    let s = Atomic.get g in
    (s.g_wrapper, s.g_generation)

  let wrapper g = (Atomic.get g).g_wrapper
  let generation g = (Atomic.get g).g_generation

  let swap g w =
    let next = (Atomic.get g).g_generation + 1 in
    Atomic.set g (snap w next);
    next

  (* One atomic snapshot for the whole batch: a concurrent swap never
     changes which generation a batch runs under mid-flight, and the
     snapshot's pre-forced compiled form is reused (no recompile per
     batch). *)
  let extract_batch ?jobs ?chunk ?fuel ?deadline_ms ?retries g docs =
    let s = Atomic.get g in
    extract_batch_compiled ?jobs ?chunk ?fuel ?deadline_ms ?retries
      s.g_compiled docs

  let extract_raw_batch ?jobs ?chunk ?fuel ?deadline_ms ?retries g pages =
    let s = Atomic.get g in
    extract_raw_batch_compiled ?jobs ?chunk ?fuel ?deadline_ms ?retries
      s.g_compiled pages
end

(** The resilience experiment (E6): does maximization actually buy
    robustness to page changes?

    Protocol, per trial: generate a random catalog page; produce two
    training variants (the base page and a lightly perturbed copy, as if
    the form had been filled out twice — §3's learning stage); learn
    four extractors from the same two samples:

    - {e rigid}: the sample-1 tag sequence as a literal expression
      (no generalization at all);
    - {e merged}: the §7 merge heuristic output, un-maximized;
    - {e maximized}: merge + §6 maximization (the paper's proposal);
    - {e LR}: the Kushmerick-style delimiter baseline;

    then perturb the page with [intensity] random §3-taxonomy edits and
    check whether each extractor still finds the ground-truth node.
    Success rates as a function of intensity are the paper's implicit
    "resilience" claim, quantified. *)

type counts = {
  trials : int;
  rigid : int;
  merged : int;
  maximized : int;
  lr : int;
  learn_failures : int;
      (** trials discarded because learning itself failed *)
}

type row = { intensity : int; counts : counts }

val evaluate :
  ?abs:Abstraction.t ->
  ?train_perturbation:int ->
  ?sink:(Obs.Json.t -> unit) ->
  seed:int ->
  trials:int ->
  intensities:int list ->
  unit ->
  row list
(** [sink], when given, receives one structured JSON row per trial —
    [{seed; intensity; trial; status; ops; verdicts}] where [status] is
    ["evaluated"] or ["learn-failure"], [ops] is the §3 edit trace
    actually applied to the test page ({!Perturb.perturb_trace}), and
    [verdicts] maps each extractor to its hit/miss boolean — so any
    aggregate count in the returned rows is reproducible from the
    emitted artifact alone. *)

val pp_table : Format.formatter -> row list -> unit
(** Render as the EXPERIMENTS.md table. *)

(** Wrapper persistence.

    A learned wrapper is a small, human-auditable text artifact: the
    abstraction level, the closed symbol alphabet, and the extraction
    expression (re-parseable concrete syntax).  Format:

    {v
      rexdex-wrapper/1
      abstraction: tags                      (or: tags+attrs INPUT.type)
      alphabet: A /A BR FORM /FORM INPUT …
      expression: ([^INPUT])* FORM <INPUT> .*
    v}

    Round-trip is exact up to expression normalization ({!Regex} smart
    constructors). *)

val to_string : Wrapper.t -> string
val save : Wrapper.t -> string -> unit
(** [save w path] writes the wrapper file. *)

val of_string : string -> (Wrapper.t, string) result
(** The loaded wrapper has [strategy = None] (strategies describe how an
    expression was obtained, not what it is). *)

val load : string -> (Wrapper.t, string) result

(** End-to-end resilient wrappers over HTML documents.

    The full §3/§7 pipeline: marked sample pages → tag-sequence
    abstraction → left-to-right merge → unambiguity check (with optional
    counterexample-driven disambiguation) → maximization → compiled
    extractor that maps a fresh page back to a DOM node. *)

type t = {
  alpha : Alphabet.t;
  abs : Abstraction.t;  (** page → token-sequence abstraction level *)
  expr : Extraction.t;  (** the (possibly maximized) expression *)
  matcher : Extraction.matcher;
  strategy : Synthesis.strategy option;
      (** [None] when learned with [~maximize:false] *)
}

type learn_error =
  | Merge_failed of Merge.error
  | Ambiguous_merge of Word.t option
  | Maximization_failed of Synthesis.failure

val pp_learn_error : Format.formatter -> learn_error -> unit

val alphabet_for : ?abs:Abstraction.t -> Html_tree.doc list -> Alphabet.t
(** Symbol alphabet of the given documents under the abstraction,
    widened with {!Pagegen.standard_tags} (and the matching
    {!Pagegen.refined_symbols}) so that perturbed pages remain
    mappable. *)

val learn :
  ?maximize:bool ->
  ?abs:Abstraction.t ->
  ?alpha:Alphabet.t ->
  (Html_tree.doc * Html_tree.path) list ->
  (t, learn_error) result
(** Learn from [(page, target path)] samples.  [maximize] defaults to
    [true]; [abs] to {!Abstraction.Tags}. *)

type extract_error =
  | No_match
  | Ambiguous_on_page of int list
  | Unknown_tag of string  (** page uses a tag outside the alphabet *)
  | Exhausted_budget of Guard.reason
      (** the per-item fuel/deadline of a budgeted batch gave out —
          a three-valued "don't know", not a negative answer *)
  | Worker_error of string
      (** the item's worker raised; the batch and the other items were
          unaffected (per-item isolation, {!Batch.map_isolated}) *)

val pp_extract_error : Format.formatter -> extract_error -> unit
(** [Exhausted_budget] renders as the machine-readable
    [UNKNOWN(<stage>,<spent>)] form the CLI and CI grep for. *)

val extract : t -> Html_tree.doc -> (Html_tree.path, extract_error) result
(** Locate the target node on a fresh page. *)

val extract_pos : t -> Word.t -> (int, extract_error) result
(** Sequence-level extraction (used by the resilience harness). *)

(** {1 Compile once, evaluate many}

    The document-spanner split: {!compile} freezes a wrapper into an
    immutable matcher table, after which {!extract_compiled} is a pure
    function of the document — safe to run concurrently from many
    domains. *)

type compiled
(** Immutable: the alphabet, the abstraction, the matcher DFAs, and
    (lazily) the fused front-end's token table ({!Front.table}). *)

val compile : t -> compiled

val extract_compiled :
  compiled -> Html_tree.doc -> (Html_tree.path, extract_error) result
(** Same contract as {!extract}. *)

val extract_raw : compiled -> string -> (Html_tree.path, extract_error) result
(** The fused path: raw HTML bytes → interned ids → class-space
    matching → winning node's path, in one pass with no intermediate
    tree, word, or origin array ({!Front.extract}).  Answers are
    byte-identical to parsing the page and calling {!extract_compiled}
    — including which [Unknown_tag] is reported — which the [front]
    oracle layer checks differentially. *)

(** {1 Artifacts}

    Ship the compiled form across processes: {!compile_to} freezes a
    learned wrapper into a [.rxc] file ({!Artifact}), and
    {!of_artifact} rebuilds a ready wrapper from a loaded artifact
    without re-running determinization — the loaded DFAs are wired
    straight into the matcher and seeded into {!Lang_cache}, so the
    warm-path statistics count them as cache traffic. *)

val compile_to : ?generation:int -> t -> string -> unit
(** Package the wrapper's expression (plus its abstraction, in
    {!Abstraction.to_string} form) and save it at the given path.  The
    maximization [strategy] is not persisted — a reloaded wrapper
    extracts identically but reports [strategy = None].  [generation]
    (default 0) stamps the artifact's healing generation
    ({!Artifact.t.generation}); generation-0 output is byte-identical
    to the pre-healing format. *)

val of_artifact : Artifact.t -> (t, string) result
(** Wrapper from a verified artifact.  Errors only when the stored
    abstraction string does not parse ({!Abstraction.of_string}).  As a
    side effect the artifact's DFAs are seeded into {!Lang_cache}
    ({!Artifact.seed_caches}). *)

val extract_batch :
  ?jobs:int ->
  ?chunk:Pool.chunking ->
  ?fuel:int ->
  ?deadline_ms:int ->
  ?retries:int ->
  t ->
  Html_tree.doc list ->
  (Html_tree.path, extract_error) result list
(** Extract from every document, in input order, across up to [jobs]
    domains ({!Batch.map_isolated}, a thin client of the persistent
    work-stealing pool; default {!Batch.recommended_jobs}, with a
    sequential fallback when that is 1).  The wrapper is compiled —
    frozen into its immutable matcher table — {e before} the parallel
    fan-out, so workers share it read-only.  The result list is
    identical for every [jobs] value, and a poisoned document degrades
    to its own [Error] cell ([Worker_error]) without affecting any
    other item.  When [fuel] (and optionally [deadline_ms] / [retries])
    is given, each item runs under its own escalating {!Guard} budget
    and answers [Error (Exhausted_budget _)] when every attempt runs
    out.

    Scheduling granularity: each document's node count is passed to
    the pool's chunk planner as its relative cost, so cheap pages are
    grouped into break-even work units and giant pages stay singleton
    units; [chunk] overrides the planner ({!Pool.chunking}, default
    [Auto]).  Like [jobs], it never changes the result list. *)

val extract_raw_batch :
  ?jobs:int ->
  ?chunk:Pool.chunking ->
  ?fuel:int ->
  ?deadline_ms:int ->
  ?retries:int ->
  t ->
  string list ->
  (Html_tree.path, extract_error) result list
(** {!extract_batch} over raw HTML strings via the fused path
    ({!extract_raw}): same isolation, budgeting, and order guarantees,
    with byte length as the chunk planner's cost proxy (the fused pass
    is linear in input bytes, Lemma 5.2's analogue).  The front-end
    token table is forced before the fan-out so all domains share one
    frozen table. *)

(** {1 Generations}

    The self-healing loop's publication point: a [gen] cell holds the
    {e current} wrapper together with its generation ordinal and
    pre-compiled form, and {!Gen.swap} replaces all three in one atomic
    store.  Readers ({!Gen.extract_batch}, the serve supervisor's
    admission pass) take a single snapshot, so a batch or session never
    observes a torn (wrapper, generation) pair and a swap mid-batch
    leaves that batch on the generation it started under.  Swapping is
    single-writer (the heal manager, on the supervising domain). *)

module Gen : sig
  type gen

  val make : ?generation:int -> t -> gen
  (** A cell at the given generation (default 0 — a freshly learned,
      never-healed wrapper).  Compiles the wrapper and forces its
      front-end table, so the snapshot is shareable across domains.
      @raise Invalid_argument on a negative [generation]. *)

  val get : gen -> t * int
  (** One atomic snapshot: the current wrapper and its generation. *)

  val wrapper : gen -> t
  val generation : gen -> int

  val swap : gen -> t -> int
  (** Publish a re-synthesized wrapper as the next generation and
      answer the new ordinal.  In-flight batches keep the snapshot they
      took; new snapshots see the new wrapper. *)

  val extract_batch :
    ?jobs:int ->
    ?chunk:Pool.chunking ->
    ?fuel:int ->
    ?deadline_ms:int ->
    ?retries:int ->
    gen ->
    Html_tree.doc list ->
    (Html_tree.path, extract_error) result list
  (** {!Wrapper.extract_batch} against one atomic snapshot of the cell,
      reusing its pre-compiled matcher and front-end table. *)

  val extract_raw_batch :
    ?jobs:int ->
    ?chunk:Pool.chunking ->
    ?fuel:int ->
    ?deadline_ms:int ->
    ?retries:int ->
    gen ->
    string list ->
    (Html_tree.path, extract_error) result list
end

(** Canonical regular-language values.

    A [Lang.t] pairs an alphabet with the {e minimal, canonical, complete}
    DFA of a regular language.  This is the semantic domain in which all
    of the paper's §5–§6 machinery operates: expressions are compiled in
    ({!of_regex}), the decision procedures and synthesis algorithms work
    on languages, and results are rendered back as expressions
    ({!to_regex}).

    Because the representation is canonical, {!equal} is structural and
    cheap, and every operation below is closed over the representation
    (results are re-minimized). *)

type t

val alphabet : t -> Alphabet.t
val dfa : t -> Dfa.t
(** The underlying minimal canonical complete DFA (do not mutate). *)

val state_count : t -> int

(** {1 Construction} *)

val of_regex : Alphabet.t -> Regex.t -> t
(** Compile any extended regular expression. *)

val of_dfa : Alphabet.t -> Dfa.t -> t
val of_nfa : Alphabet.t -> Nfa.t -> t
val parse : Alphabet.t -> string -> t
(** [of_regex] ∘ {!Regex_parse.parse}. *)

val empty : Alphabet.t -> t
val epsilon : Alphabet.t -> t
val sigma_star : Alphabet.t -> t
val sym : Alphabet.t -> int -> t
val word : Alphabet.t -> int array -> t
val of_words : Alphabet.t -> int array list -> t

(** {1 Algebra} *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val concat : t -> t -> t
val star : t -> t
val complement : t -> t
val reverse : t -> t
val union_list : Alphabet.t -> t list -> t
val concat_list : Alphabet.t -> t list -> t

(** {1 The paper's operators} *)

val suffix_quotient : t -> t -> t
(** [suffix_quotient a b] = [a / b] (Def 5.1). *)

val prefix_quotient : t -> t -> t
(** [prefix_quotient b a] = [b \ a] (Def 5.1). *)

val filter_count : t -> sym:int -> int -> t
(** [E ‖_p^n] (Def 6.1). *)

val max_sym_count : t -> sym:int -> [ `Empty | `Bounded of int | `Unbounded ]

(** {1 Decision procedures} *)

val is_empty : t -> bool
val is_universal : t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool
val mem : t -> int array -> bool
val nullable : t -> bool

(** {1 Witnesses and enumeration} *)

val shortest : t -> int array option
val shortest_not_in : t -> int array option
val shortest_in_diff : t -> t -> int array option
val words_upto : t -> int -> int array list
(** All members of length ≤ n (test oracle; exponential). *)

val sample : t -> Random.State.t -> max_len:int -> int array option
(** A random member of length ≤ [max_len], or [None] if there is none:
    a uniform-ish random walk over live states that stops at a final
    state with probability proportional to remaining budget, falling
    back to {!shortest} when every walk strands (never exceeding
    [max_len]).  Used by the tests and the oracle campaign to generate
    members of synthesized languages. *)

(** {1 Rendering} *)

val to_regex : t -> Regex.t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

type stage = Compile | Determinize | Minimize | Quotient

type key =
  | K_regex of string list * int
  | K_unop of string * Dfa.t
  | K_binop of string * Dfa.t * Dfa.t
  | K_filter of Dfa.t * int * int

(* Structural equality on keys is exact: Dfa.t is ints/bools/arrays all
   the way down, and canonical minimal DFAs are structurally equal iff
   they accept the same language.  Hashtbl.hash's node budget only
   limits how much of a large delta array feeds the hash — a collision
   concern, not a correctness one. *)

(* Per-stage hit/miss counters are atomics: a stats bump from a batch
   worker never serializes against another domain's lookup. *)
let stage_id = function
  | Compile -> 0
  | Determinize -> 1
  | Minimize -> 2
  | Quotient -> 3

let hit_counters = Array.init 4 (fun _ -> Atomic.make 0)
let miss_counters = Array.init 4 (fun _ -> Atomic.make 0)

(* The LRU is sharded by key hash: a key always lands in the same
   shard, so sharding is invisible to callers — it only splits the one
   global lock into [shard_count] independent ones.  Correctness is
   untouched because every cached function is a pure function of its
   key: which shard (or whether eviction timing differs between shard
   layouts) can only change what gets recomputed, never what a lookup
   answers. *)
let shard_bits = 4
let shard_count = 1 lsl shard_bits

type shard = { m : Mutex.t; lru : (key, Dfa.t) Lru.t }

let default_capacity = 4096

(* capacity as configured by the caller; shards each hold a ceiling
   share so the total stays >= the configured bound *)
let configured_capacity = Atomic.make default_capacity
let shard_cap total = max 1 ((total + shard_count - 1) / shard_count)

let shards =
  Array.init shard_count (fun _ ->
      { m = Mutex.create (); lru = Lru.create ~cap:(shard_cap default_capacity) })

let enabled_flag = Atomic.make true
let shard_of key = shards.(Hashtbl.hash key land (shard_count - 1))

let cached stage key compute =
  (* Fault-injection probe (tests only): an armed Cache_lookup site can
     make any memoized stage blow up deterministically, exercising the
     degradation paths of Runtime/Batch callers. *)
  Guard_faults.point Guard_faults.Cache_lookup;
  if not (Atomic.get enabled_flag) then compute ()
  else
    let s = shard_of key in
    match Mutex.protect s.m (fun () -> Lru.find s.lru key) with
    | Some v ->
        Atomic.incr hit_counters.(stage_id stage);
        v
    | None ->
        Atomic.incr miss_counters.(stage_id stage);
        (* compute outside the lock: Compile recurses into the cache *)
        let v = compute () in
        Mutex.protect s.m (fun () -> Lru.add s.lru key v);
        v

let set_capacity n =
  Atomic.set configured_capacity n;
  let per_shard = shard_cap n in
  Array.iter
    (fun s -> Mutex.protect s.m (fun () -> Lru.set_capacity s.lru per_shard))
    shards

let capacity () = Atomic.get configured_capacity
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let counts stage =
  let i = stage_id stage in
  (Atomic.get hit_counters.(i), Atomic.get miss_counters.(i))

let clear () =
  Array.iter (fun s -> Mutex.protect s.m (fun () -> Lru.clear s.lru)) shards;
  Array.iter (fun c -> Atomic.set c 0) hit_counters;
  Array.iter (fun c -> Atomic.set c 0) miss_counters

type stage = Compile | Determinize | Minimize | Quotient

type key =
  | K_regex of string list * int
  | K_unop of string * Dfa.t
  | K_binop of string * Dfa.t * Dfa.t
  | K_filter of Dfa.t * int * int

(* Structural equality on keys is exact: Dfa.t is ints/bools/arrays all
   the way down, and canonical minimal DFAs are structurally equal iff
   they accept the same language.  Hashtbl.hash's node budget only
   limits how much of a large delta array feeds the hash — a collision
   concern, not a correctness one. *)

type counter = { mutable hits : int; mutable misses : int }

let counters =
  [|
    { hits = 0; misses = 0 };
    { hits = 0; misses = 0 };
    { hits = 0; misses = 0 };
    { hits = 0; misses = 0 };
  |]

let counter_of = function
  | Compile -> counters.(0)
  | Determinize -> counters.(1)
  | Minimize -> counters.(2)
  | Quotient -> counters.(3)

let default_capacity = 4096
let cache : (key, Dfa.t) Lru.t = Lru.create ~cap:default_capacity
let enabled_flag = ref true
let mutex = Mutex.create ()

let cached stage key compute =
  (* Fault-injection probe (tests only): an armed Cache_lookup site can
     make any memoized stage blow up deterministically, exercising the
     degradation paths of Runtime/Batch callers. *)
  Guard_faults.point Guard_faults.Cache_lookup;
  if not !enabled_flag then compute ()
  else
    let c = counter_of stage in
    match
      Mutex.protect mutex (fun () ->
          match Lru.find cache key with
          | Some v ->
              c.hits <- c.hits + 1;
              Some v
          | None ->
              c.misses <- c.misses + 1;
              None)
    with
    | Some v -> v
    | None ->
        (* compute outside the lock: Compile recurses into the cache *)
        let v = compute () in
        Mutex.protect mutex (fun () -> Lru.add cache key v);
        v

let set_capacity n = Mutex.protect mutex (fun () -> Lru.set_capacity cache n)
let capacity () = Mutex.protect mutex (fun () -> Lru.capacity cache)
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let counts stage =
  Mutex.protect mutex (fun () ->
      let c = counter_of stage in
      (c.hits, c.misses))

let clear () =
  Mutex.protect mutex (fun () ->
      Lru.clear cache;
      Array.iter
        (fun c ->
          c.hits <- 0;
          c.misses <- 0)
        counters)

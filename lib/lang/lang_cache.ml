type stage = Compile | Determinize | Minimize | Quotient

type key =
  | K_regex of string list * int
  | K_unop of string * Dfa.t
  | K_binop of string * Dfa.t * Dfa.t
  | K_filter of Dfa.t * int * int

(* Structural equality on keys is exact: Dfa.t is ints/bools/arrays all
   the way down, and canonical minimal DFAs are structurally equal iff
   they accept the same language.  Hashtbl.hash's node budget only
   limits how much of a large delta array feeds the hash — a collision
   concern, not a correctness one. *)

(* Per-stage hit/miss counters are packed pairs (Obs.Counter2): a
   stats bump from a batch worker never serializes against another
   domain's lookup, and a [counts] read is ONE atomic load — the pair
   it returns is always internally consistent, where the previous two
   separate atomics could disagree with totals when read mid-traffic. *)
let stage_id = function
  | Compile -> 0
  | Determinize -> 1
  | Minimize -> 2
  | Quotient -> 3

let stage_counters = Array.init 4 (fun _ -> Obs.Counter2.make ())

(* The LRU is sharded by key hash: a key always lands in the same
   shard, so sharding is invisible to callers — it only splits the one
   global lock into [shard_count] independent ones.  Correctness is
   untouched because every cached function is a pure function of its
   key: which shard (or whether eviction timing differs between shard
   layouts) can only change what gets recomputed, never what a lookup
   answers. *)
let shard_bits = 4
let shard_count = 1 lsl shard_bits

type shard = { m : Mutex.t; lru : (key, Dfa.t) Lru.t }

let default_capacity = 4096

(* capacity as configured by the caller; shards each hold a ceiling
   share so the total stays >= the configured bound *)
let configured_capacity = Atomic.make default_capacity
let shard_cap total = max 1 ((total + shard_count - 1) / shard_count)

let shards =
  Array.init shard_count (fun _ ->
      { m = Mutex.create (); lru = Lru.create ~cap:(shard_cap default_capacity) })

let enabled_flag = Atomic.make true

(* Per-shard traffic, same packed representation: [shard_counts] is
   one load per shard, and each pair is consistent on its own, so the
   shard total always reconciles with the per-stage totals once the
   cache quiesces. *)
let shard_counters = Array.init shard_count (fun _ -> Obs.Counter2.make ())
let shard_ix key = Hashtbl.hash key land (shard_count - 1)

let cached stage key compute =
  (* Fault-injection probe (tests only): an armed Cache_lookup site can
     make any memoized stage blow up deterministically, exercising the
     degradation paths of Runtime/Batch callers. *)
  Guard_faults.point Guard_faults.Cache_lookup;
  if not (Atomic.get enabled_flag) then compute ()
  else
    let ix = shard_ix key in
    let s = shards.(ix) in
    match Mutex.protect s.m (fun () -> Lru.find s.lru key) with
    | Some v ->
        Obs.Counter2.hit stage_counters.(stage_id stage);
        Obs.Counter2.hit shard_counters.(ix);
        v
    | None ->
        Obs.Counter2.miss stage_counters.(stage_id stage);
        Obs.Counter2.miss shard_counters.(ix);
        (* compute outside the lock: Compile recurses into the cache *)
        let sp = Obs.Span.enter Obs.Span.Cache_build in
        let v =
          try compute ()
          with e ->
            Obs.Span.fail sp;
            raise e
        in
        Obs.Span.exit sp;
        Mutex.protect s.m (fun () -> Lru.add s.lru key v);
        v

let seed key v =
  (* Pre-populate a binding without touching the hit/miss counters:
     seeding is not a lookup, so warm-start statistics stay honest —
     the first client lookup of a seeded key counts as the hit it is.
     A no-op with the cache disabled (nothing would ever read it). *)
  if Atomic.get enabled_flag then begin
    let s = shards.(shard_ix key) in
    Mutex.protect s.m (fun () -> Lru.add s.lru key v)
  end

let set_capacity n =
  Atomic.set configured_capacity n;
  let per_shard = shard_cap n in
  Array.iter
    (fun s -> Mutex.protect s.m (fun () -> Lru.set_capacity s.lru per_shard))
    shards

let capacity () = Atomic.get configured_capacity
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let counts stage = Obs.Counter2.read stage_counters.(stage_id stage)
let shard_counts () = Array.map Obs.Counter2.read shard_counters

let clear () =
  Array.iter (fun s -> Mutex.protect s.m (fun () -> Lru.clear s.lru)) shards;
  Array.iter Obs.Counter2.reset stage_counters;
  Array.iter Obs.Counter2.reset shard_counters

(** Process-global memo cache over the expensive automata pipeline.

    Every {!Lang} operation that determinizes, minimizes or builds a
    Def 5.1/6.1 construction is routed through here.  Keys are the
    {e canonical minimal} input DFAs (plus an operation tag), so two
    [Lang.t] values denoting the same language — regardless of how they
    were built — share one cached result; values are the minimized
    result DFAs.  A bounded LRU backs all stages, with per-stage
    atomic hit/miss counters for {!Runtime.Stats}.

    Soundness: every cached function is a deterministic function of its
    key — the result DFA depends only on the input DFA structures (and
    the tag), never on the alphabet's symbol {e names}, which the
    caller's [Lang.t] carries separately.  Cached DFAs are immutable
    after construction, so sharing them is safe.

    Concurrency: the LRU is {e sharded} by key hash — each key always
    maps to the same shard, each shard has its own mutex, so concurrent
    domains (the {!Batch} pool) only contend when they touch the same
    slice of the key space.  Sharding cannot change cached answers:
    lookups for a key are always served by that key's shard, and every
    cached function is pure, so shard layout only affects what gets
    {e recomputed} (eviction timing), never what a lookup returns.  The
    cached computation itself runs {e outside} any lock (the
    regex→language pipeline re-enters the cache recursively). *)

(** Pipeline stage, for stats attribution. *)
type stage =
  | Compile  (** regex → NFA → DFA → minimal DFA ({!Lang.of_regex}) *)
  | Determinize  (** subset constructions: concat, star, reverse *)
  | Minimize  (** boolean products / complement + minimization *)
  | Quotient  (** Def 5.1 quotients and the Def 6.1 filter *)

(** Cache key; constructors are exposed so {!Lang} can build them. *)
type key =
  | K_regex of string list * int
      (** alphabet names × interned regex id ({!Regex_hc}) *)
  | K_unop of string * Dfa.t
  | K_binop of string * Dfa.t * Dfa.t
  | K_filter of Dfa.t * int * int  (** DFA, counted symbol, n *)

val cached : stage -> key -> (unit -> Dfa.t) -> Dfa.t
(** [cached stage key compute] — return the cached DFA for [key], or
    run [compute], store and return its result.  With the cache
    disabled, just computes. *)

val seed : key -> Dfa.t -> unit
(** [seed key dfa] — pre-populate a binding, counting neither a hit nor
    a miss (seeding is not a lookup).  The artifact loader uses this to
    start a process warm: a deserialized [.rxc] DFA is installed under
    the same key {!cached} would have stored it under, so the first
    pipeline call over the loaded expression is an LRU hit instead of a
    rebuild.  The caller vouches that [dfa] is what the stage's
    [compute] would have produced for [key] (the minimal canonical
    DFA); the artifact layer's checksum licenses that.  No-op when the
    cache is disabled. *)

(** {1 Configuration and introspection} *)

val set_capacity : int -> unit
(** Bound on the number of cached DFAs (default 4096).  Split evenly
    over the shards (ceiling division), so the effective total is
    [shards * ceil(n / shards)] — at least [n], within a shard count of
    it. *)

val capacity : unit -> int

val set_enabled : bool -> unit
(** [set_enabled false] makes {!cached} compute unconditionally — used
    by the differential oracles to compare cached against direct
    answers, and available as a kill switch. *)

val enabled : unit -> bool

val counts : stage -> int * int
(** [(hits, misses)] for a stage, read as one consistent pair: both
    components come from a single atomic load ({!Obs.Counter2}), so a
    read racing concurrent lookups still sees a pair whose sum is the
    number of lookups that happened-before it. *)

val shard_counts : unit -> (int * int) array
(** Per-shard [(hits, misses)], one consistent pair per shard.
    Σ shard pairs = Σ stage pairs once the cache quiesces. *)

val clear : unit -> unit
(** Drop every cached binding and zero the counters. *)

type t = { alpha : Alphabet.t; dfa : Dfa.t }

let alphabet t = t.alpha
let dfa t = t.dfa
let state_count t = t.dfa.Dfa.size

let check_compat a b =
  if not (Alphabet.equal a.alpha b.alpha) then
    invalid_arg "Lang: operands over different alphabets"

let of_dfa alpha d =
  if d.Dfa.alpha_size <> Alphabet.size alpha then
    invalid_arg "Lang.of_dfa: alphabet size mismatch";
  { alpha; dfa = Minimize.minimize d }

let of_nfa alpha n =
  if n.Nfa.alpha_size <> Alphabet.size alpha then
    invalid_arg "Lang.of_nfa: alphabet size mismatch";
  { alpha; dfa = Minimize.minimize (Determinize.run n) }

let empty alpha =
  { alpha; dfa = Dfa.trivial ~alpha_size:(Alphabet.size alpha) false }

let sigma_star alpha =
  { alpha; dfa = Dfa.trivial ~alpha_size:(Alphabet.size alpha) true }

let union a b =
  check_compat a b;
  { a with dfa = Minimize.minimize (Dfa_ops.union a.dfa b.dfa) }

let inter a b =
  check_compat a b;
  { a with dfa = Minimize.minimize (Dfa_ops.inter a.dfa b.dfa) }

let diff a b =
  check_compat a b;
  { a with dfa = Minimize.minimize (Dfa_ops.difference a.dfa b.dfa) }

let concat a b =
  check_compat a b;
  of_nfa a.alpha (Nfa.concat (Dfa.to_nfa a.dfa) (Dfa.to_nfa b.dfa))

let star a = of_nfa a.alpha (Nfa.star (Dfa.to_nfa a.dfa))

let complement a =
  { a with dfa = Minimize.minimize (Dfa.complement a.dfa) }

let reverse a = { a with dfa = Minimize.minimize (Dfa_ops.reverse a.dfa) }

let rec of_regex alpha (re : Regex.t) : t =
  if not (Regex.is_extended re) then of_nfa alpha (Nfa.of_regex alpha re)
  else
    match re with
    | Regex.Empty -> empty alpha
    | Regex.Eps | Regex.Cls _ ->
        (* Negated classes are handled directly by Thompson. *)
        of_nfa alpha (Nfa.of_regex alpha re)
    | Regex.Alt (x, y) -> union (of_regex alpha x) (of_regex alpha y)
    | Regex.Cat (x, y) -> concat (of_regex alpha x) (of_regex alpha y)
    | Regex.Star x -> star (of_regex alpha x)
    | Regex.Inter (x, y) -> inter (of_regex alpha x) (of_regex alpha y)
    | Regex.Diff (x, y) -> diff (of_regex alpha x) (of_regex alpha y)
    | Regex.Compl x -> complement (of_regex alpha x)

let parse alpha s = of_regex alpha (Regex_parse.parse alpha s)
let epsilon alpha = of_regex alpha Regex.eps
let sym alpha a = of_regex alpha (Regex.sym a)

let word alpha w =
  of_nfa alpha (Nfa.word ~alpha_size:(Alphabet.size alpha) w)

let of_words alpha ws =
  List.fold_left (fun acc w -> union acc (word alpha w)) (empty alpha) ws

let union_list alpha ls = List.fold_left union (empty alpha) ls

let concat_list alpha ls = List.fold_left concat (epsilon alpha) ls

let suffix_quotient a b =
  check_compat a b;
  { a with dfa = Minimize.minimize (Dfa_ops.suffix_quotient a.dfa b.dfa) }

let prefix_quotient b a =
  check_compat a b;
  { a with dfa = Minimize.minimize (Dfa_ops.prefix_quotient b.dfa a.dfa) }

let filter_count a ~sym n =
  { a with dfa = Minimize.minimize (Dfa_ops.filter_count a.dfa ~sym n) }

let max_sym_count a ~sym = Dfa_ops.max_sym_count a.dfa ~sym

let is_empty a = Dfa_ops.is_empty a.dfa
let is_universal a = Dfa_ops.is_universal a.dfa

let subset a b =
  check_compat a b;
  Dfa_ops.includes b.dfa a.dfa

(* Canonical minimal DFAs make equality structural. *)
let equal a b =
  check_compat a b;
  Dfa.equal_structure a.dfa b.dfa

let mem a w = Dfa.accepts a.dfa w
let nullable a = a.dfa.Dfa.finals.(a.dfa.Dfa.start)
let shortest a = Dfa_ops.shortest_accepted a.dfa
let shortest_not_in a = Dfa_ops.shortest_rejected a.dfa

let shortest_in_diff a b =
  check_compat a b;
  Dfa_ops.shortest_in_difference a.dfa b.dfa

let words_upto a n =
  List.of_seq (Seq.filter (mem a) (Word.enumerate a.alpha n))

let to_regex a = State_elim.to_regex a.dfa
let to_string a = Regex.to_string a.alpha (to_regex a)
let pp ppf a = Regex.pp a.alpha ppf (to_regex a)

let sample a rng ~max_len =
  let d = a.dfa in
  let live = Dfa.live d in
  if not (Bitvec.mem live d.Dfa.start) then None
  else begin
    (* precompute, per live state, the symbols that stay live *)
    let k = d.Dfa.alpha_size in
    let choices q =
      List.filter
        (fun s -> Bitvec.mem live (Dfa.step d q s))
        (List.init k Fun.id)
    in
    let rec walk q acc len =
      let stop_ok = d.Dfa.finals.(q) in
      if len >= max_len then if stop_ok then Some (List.rev acc) else None
      else if stop_ok && Random.State.int rng (max_len - len + 1) = 0 then
        Some (List.rev acc)
      else
        match choices q with
        | [] -> if stop_ok then Some (List.rev acc) else None
        | cs ->
            let s = List.nth cs (Random.State.int rng (List.length cs)) in
            walk (Dfa.step d q s) (s :: acc) (len + 1)
    in
    (* retry a few times: a walk can strand in a live loop with no final
       reachable within budget *)
    let rec attempt n =
      if n = 0 then
        (* fall back to the shortest word — unless even it exceeds the
           caller's budget, in which case honor the length contract *)
        match shortest a with
        | Some w when Array.length w <= max_len -> Some w
        | Some _ | None -> None
      else
        match walk d.Dfa.start [] 0 with
        | Some l -> Some (Word.of_list l)
        | None -> attempt (n - 1)
    in
    attempt 8
  end

type t = { alpha : Alphabet.t; dfa : Dfa.t }

let alphabet t = t.alpha
let dfa t = t.dfa
let state_count t = t.dfa.Dfa.size

let check_compat a b =
  if not (Alphabet.equal a.alpha b.alpha) then
    invalid_arg "Lang: operands over different alphabets"

let of_dfa alpha d =
  if d.Dfa.alpha_size <> Alphabet.size alpha then
    invalid_arg "Lang.of_dfa: alphabet size mismatch";
  { alpha; dfa = Minimize.minimize d }

let of_nfa alpha n =
  if n.Nfa.alpha_size <> Alphabet.size alpha then
    invalid_arg "Lang.of_nfa: alphabet size mismatch";
  { alpha; dfa = Minimize.minimize (Determinize.run n) }

let empty alpha =
  { alpha; dfa = Dfa.trivial ~alpha_size:(Alphabet.size alpha) false }

let sigma_star alpha =
  { alpha; dfa = Dfa.trivial ~alpha_size:(Alphabet.size alpha) true }

(* Every pipeline stage below is memoized through Lang_cache: the key
   is the operation plus the (canonical minimal) input DFAs, the value
   the minimized result.  Inputs denoting equal languages are
   structurally equal here, so the cache unifies them regardless of how
   they were written. *)

let binop stage tag f a b =
  check_compat a b;
  {
    a with
    dfa =
      Lang_cache.cached stage
        (Lang_cache.K_binop (tag, a.dfa, b.dfa))
        (fun () -> Minimize.minimize (f a.dfa b.dfa));
  }

let union = binop Lang_cache.Minimize "union" Dfa_ops.union
let inter = binop Lang_cache.Minimize "inter" Dfa_ops.inter
let diff = binop Lang_cache.Minimize "diff" Dfa_ops.difference

let concat a b =
  check_compat a b;
  {
    a with
    dfa =
      Lang_cache.cached Lang_cache.Determinize
        (Lang_cache.K_binop ("concat", a.dfa, b.dfa))
        (fun () ->
          Minimize.minimize
            (Determinize.run (Nfa.concat (Dfa.to_nfa a.dfa) (Dfa.to_nfa b.dfa))));
  }

let star a =
  {
    a with
    dfa =
      Lang_cache.cached Lang_cache.Determinize
        (Lang_cache.K_unop ("star", a.dfa))
        (fun () ->
          Minimize.minimize (Determinize.run (Nfa.star (Dfa.to_nfa a.dfa))));
  }

let complement a =
  {
    a with
    dfa =
      Lang_cache.cached Lang_cache.Minimize
        (Lang_cache.K_unop ("compl", a.dfa))
        (fun () -> Minimize.minimize (Dfa.complement a.dfa));
  }

let reverse a =
  {
    a with
    dfa =
      Lang_cache.cached Lang_cache.Determinize
        (Lang_cache.K_unop ("reverse", a.dfa))
        (fun () -> Minimize.minimize (Dfa_ops.reverse a.dfa));
  }

(* The regex front of the pipeline is cached per interned subexpression
   (Regex_hc), so re-deciding a property of E1⟨p⟩E2 never recompiles
   either side; the alphabet's names are part of the key because the
   same AST means different languages over different alphabets. *)
let rec of_regex alpha (re : Regex.t) : t =
  let re, id = Regex_hc.intern re in
  let dfa =
    Lang_cache.cached Lang_cache.Compile
      (Lang_cache.K_regex (Alphabet.names alpha, id))
      (fun () -> (of_regex_uncached alpha re).dfa)
  in
  { alpha; dfa }

and of_regex_uncached alpha (re : Regex.t) : t =
  if not (Regex.is_extended re) then of_nfa alpha (Nfa.of_regex alpha re)
  else
    match re with
    | Regex.Empty -> empty alpha
    | Regex.Eps | Regex.Cls _ ->
        (* Negated classes are handled directly by Thompson. *)
        of_nfa alpha (Nfa.of_regex alpha re)
    | Regex.Alt (x, y) -> union (of_regex alpha x) (of_regex alpha y)
    | Regex.Cat (x, y) -> concat (of_regex alpha x) (of_regex alpha y)
    | Regex.Star x -> star (of_regex alpha x)
    | Regex.Inter (x, y) -> inter (of_regex alpha x) (of_regex alpha y)
    | Regex.Diff (x, y) -> diff (of_regex alpha x) (of_regex alpha y)
    | Regex.Compl x -> complement (of_regex alpha x)

let parse alpha s = of_regex alpha (Regex_parse.parse alpha s)
let epsilon alpha = of_regex alpha Regex.eps
let sym alpha a = of_regex alpha (Regex.sym a)

let word alpha w =
  of_nfa alpha (Nfa.word ~alpha_size:(Alphabet.size alpha) w)

let of_words alpha ws =
  List.fold_left (fun acc w -> union acc (word alpha w)) (empty alpha) ws

let union_list alpha ls = List.fold_left union (empty alpha) ls

let concat_list alpha ls = List.fold_left concat (epsilon alpha) ls

let suffix_quotient =
  binop Lang_cache.Quotient "suffix-quotient" Dfa_ops.suffix_quotient

let prefix_quotient b a =
  binop Lang_cache.Quotient "prefix-quotient" Dfa_ops.prefix_quotient b a

let filter_count a ~sym n =
  {
    a with
    dfa =
      Lang_cache.cached Lang_cache.Quotient
        (Lang_cache.K_filter (a.dfa, sym, n))
        (fun () -> Minimize.minimize (Dfa_ops.filter_count a.dfa ~sym n));
  }

let max_sym_count a ~sym = Dfa_ops.max_sym_count a.dfa ~sym

let is_empty a = Dfa_ops.is_empty a.dfa
let is_universal a = Dfa_ops.is_universal a.dfa

let subset a b =
  check_compat a b;
  Dfa_ops.includes b.dfa a.dfa

(* Canonical minimal DFAs make equality structural. *)
let equal a b =
  check_compat a b;
  Dfa.equal_structure a.dfa b.dfa

let mem a w = Dfa.accepts a.dfa w
let nullable a = a.dfa.Dfa.finals.(a.dfa.Dfa.start)
let shortest a = Dfa_ops.shortest_accepted a.dfa
let shortest_not_in a = Dfa_ops.shortest_rejected a.dfa

let shortest_in_diff a b =
  check_compat a b;
  Dfa_ops.shortest_in_difference a.dfa b.dfa

let words_upto a n =
  List.of_seq (Seq.filter (mem a) (Word.enumerate a.alpha n))

let to_regex a = State_elim.to_regex a.dfa
let to_string a = Regex.to_string a.alpha (to_regex a)
let pp ppf a = Regex.pp a.alpha ppf (to_regex a)

let sample a rng ~max_len =
  let d = a.dfa in
  let live = Dfa.live d in
  if not (Bitvec.mem live d.Dfa.start) then None
  else begin
    (* precompute, per live state, the symbols that stay live *)
    let k = d.Dfa.alpha_size in
    let choices q =
      List.filter
        (fun s -> Bitvec.mem live (Dfa.step d q s))
        (List.init k Fun.id)
    in
    let rec walk q acc len =
      let stop_ok = d.Dfa.finals.(q) in
      if len >= max_len then if stop_ok then Some (List.rev acc) else None
      else if stop_ok && Random.State.int rng (max_len - len + 1) = 0 then
        Some (List.rev acc)
      else
        match choices q with
        | [] -> if stop_ok then Some (List.rev acc) else None
        | cs ->
            let s = List.nth cs (Random.State.int rng (List.length cs)) in
            walk (Dfa.step d q s) (s :: acc) (len + 1)
    in
    (* retry a few times: a walk can strand in a live loop with no final
       reachable within budget *)
    let rec attempt n =
      if n = 0 then
        (* fall back to the shortest word — unless even it exceeds the
           caller's budget, in which case honor the length contract *)
        match shortest a with
        | Some w when Array.length w <= max_len -> Some w
        | Some _ | None -> None
      else
        match walk d.Dfa.start [] 0 with
        | Some l -> Some (Word.of_list l)
        | None -> attempt (n - 1)
    in
    attempt 8
  end

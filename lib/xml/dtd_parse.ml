exception Parse_error of string * int

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (msg, st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '_' || c = '.' || c = ':'

let rec skip_ws st =
  (match peek st with
  | Some c when is_space c ->
      st.pos <- st.pos + 1;
      skip_ws st
  | _ -> ());
  (* comments *)
  if
    st.pos + 3 < String.length st.src
    && String.sub st.src st.pos 4 = "<!--"
  then begin
    let rec close i =
      if i + 2 >= String.length st.src then String.length st.src
      else if String.sub st.src i 3 = "-->" then i + 3
      else close (i + 1)
    in
    st.pos <- close (st.pos + 4);
    skip_ws st
  end

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %c" c)

let name st =
  skip_ws st;
  let start = st.pos in
  while
    st.pos < String.length st.src && is_name_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let literal st lit =
  skip_ws st;
  let n = String.length lit in
  if
    st.pos + n <= String.length st.src
    && String.uppercase_ascii (String.sub st.src st.pos n) = lit
  then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let quantifier st p =
  match peek st with
  | Some '*' ->
      st.pos <- st.pos + 1;
      Dtd.Star p
  | Some '+' ->
      st.pos <- st.pos + 1;
      Dtd.Plus p
  | Some '?' ->
      st.pos <- st.pos + 1;
      Dtd.Opt p
  | _ -> p

(* cp  := lparen cps rparen quant? | NAME quant?
   cps := cp (pipe cp)+ | cp (comma cp)+ | cp *)
let rec content_particle st =
  skip_ws st;
  match peek st with
  | Some '(' ->
      st.pos <- st.pos + 1;
      let first = content_particle st in
      skip_ws st;
      let p =
        match peek st with
        | Some '|' ->
            let rec alts acc =
              skip_ws st;
              match peek st with
              | Some '|' ->
                  st.pos <- st.pos + 1;
                  alts (content_particle st :: acc)
              | _ -> List.rev acc
            in
            Dtd.Choice (alts [ first ])
        | Some ',' ->
            let rec seqs acc =
              skip_ws st;
              match peek st with
              | Some ',' ->
                  st.pos <- st.pos + 1;
                  seqs (content_particle st :: acc)
              | _ -> List.rev acc
            in
            Dtd.Seq (seqs [ first ])
        | _ -> first
      in
      expect st ')';
      quantifier st p
  | _ ->
      let n = name st in
      quantifier st (Dtd.Name n)

(* content after <!ELEMENT name … *)
let content st =
  skip_ws st;
  if literal st "EMPTY" then Dtd.Empty_content
  else if literal st "ANY" then Dtd.Any_content
  else begin
    expect st '(';
    skip_ws st;
    if peek st = Some '#' then begin
      (* (#PCDATA) or (#PCDATA | a | b)* *)
      st.pos <- st.pos + 1;
      let kw = name st in
      if String.uppercase_ascii kw <> "PCDATA" then fail st "expected #PCDATA";
      let rec names acc =
        skip_ws st;
        match peek st with
        | Some '|' ->
            st.pos <- st.pos + 1;
            names (name st :: acc)
        | _ -> List.rev acc
      in
      let ns = names [] in
      expect st ')';
      if peek st = Some '*' then st.pos <- st.pos + 1
      else if ns <> [] then fail st "mixed content must end with )*";
      if ns = [] then Dtd.Pcdata else Dtd.Mixed ns
    end
    else begin
      (* rewind the '(' and parse a full particle *)
      st.pos <- st.pos - 1;
      Dtd.Children (content_particle st)
    end
  end

let quoted st =
  skip_ws st;
  match peek st with
  | Some (('"' | '\'') as q) ->
      st.pos <- st.pos + 1;
      let start = st.pos in
      while st.pos < String.length st.src && st.src.[st.pos] <> q do
        st.pos <- st.pos + 1
      done;
      if st.pos >= String.length st.src then fail st "unterminated string";
      let v = String.sub st.src start (st.pos - start) in
      st.pos <- st.pos + 1;
      v
  | _ -> fail st "expected a quoted string"

let attr_defs st =
  (* sequence of: name TYPE default, until '>' *)
  let rec loop acc =
    skip_ws st;
    match peek st with
    | Some '>' -> List.rev acc
    | _ ->
        let attr_name = String.lowercase_ascii (name st) in
        (* attribute type: a name, or an enumeration (a|b|c) *)
        skip_ws st;
        (match peek st with
        | Some '(' ->
            (* skip enumeration *)
            while peek st <> Some ')' && peek st <> None do
              st.pos <- st.pos + 1
            done;
            expect st ')'
        | _ -> ignore (name st));
        skip_ws st;
        let attr_default =
          if literal st "#REQUIRED" then Dtd.Required
          else if literal st "#IMPLIED" then Dtd.Implied
          else if literal st "#FIXED" then Dtd.Fixed (quoted st)
          else Dtd.Default (quoted st)
        in
        loop ({ Dtd.attr_name; attr_default } :: acc)
  in
  loop []

let parse src =
  let st = { src; pos = 0 } in
  let elements : (string, Dtd.content) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let attlists : (string, Dtd.attr_decl list) Hashtbl.t = Hashtbl.create 16 in
  let rec loop () =
    skip_ws st;
    match peek st with
    | None -> ()
    | Some ']' ->
        (* end of a <!DOCTYPE … [ internal subset ]> wrapper *)
        st.pos <- st.pos + 1;
        skip_ws st;
        (match peek st with
        | Some '>' -> st.pos <- st.pos + 1
        | Some _ | None -> ());
        loop ()
    | Some _ ->
        expect st '<';
        expect st '!';
        let kw = String.uppercase_ascii (name st) in
        (match kw with
        | "ELEMENT" ->
            let n = String.uppercase_ascii (name st) in
            let c = content st in
            if Hashtbl.mem elements n then
              fail st ("duplicate <!ELEMENT " ^ n ^ ">");
            Hashtbl.add elements n c;
            order := n :: !order;
            expect st '>'
        | "ATTLIST" ->
            let n = String.uppercase_ascii (name st) in
            let defs = attr_defs st in
            let prev = Option.value ~default:[] (Hashtbl.find_opt attlists n) in
            Hashtbl.replace attlists n (prev @ defs);
            expect st '>'
        | "DOCTYPE" ->
            (* skip "root" etc. up to the opening '[' of the subset *)
            let rec to_bracket () =
              match peek st with
              | Some '[' -> st.pos <- st.pos + 1
              | Some _ ->
                  st.pos <- st.pos + 1;
                  to_bracket ()
              | None -> fail st "expected [ after DOCTYPE"
            in
            to_bracket ()
        | other -> fail st ("unsupported declaration <!" ^ other));
        loop ()
  in
  loop ();
  let decls =
    List.rev_map
      (fun n ->
        {
          Dtd.el_name = n;
          el_content = Hashtbl.find elements n;
          el_attrs = Option.value ~default:[] (Hashtbl.find_opt attlists n);
        })
      !order
  in
  Dtd.make decls

let parse_result src =
  match parse src with
  | dtd -> Ok dtd
  | exception Parse_error (msg, pos) ->
      Error (Printf.sprintf "DTD parse error at offset %d: %s" pos msg)

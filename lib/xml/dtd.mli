(** Document Type Definitions and validation (§8: "using DTDs to guide
    the learning algorithms").

    A DTD's element content model is itself a regular expression over
    child element names — so the automata engine built for extraction
    expressions validates XML for free, and content models can seed
    extraction-expression synthesis ({!Dtd_guide}).

    Simplifications relative to full XML 1.0: element names are
    case-normalized to upper case (matching the HTML pipeline), mixed
    content [(#PCDATA | a | …)*] is modelled as the child elements being
    unconstrained in order, and attribute declarations are recorded but
    only [#REQUIRED] presence is enforced. *)

type particle =
  | Name of string
  | Choice of particle list  (** (a | b | …) *)
  | Seq of particle list  (** (a, b, …) *)
  | Star of particle
  | Plus of particle
  | Opt of particle

type content =
  | Pcdata  (** (#PCDATA) — text only, no element children *)
  | Empty_content  (** EMPTY *)
  | Any_content  (** ANY *)
  | Children of particle
  | Mixed of string list  (** (#PCDATA | a | b)* — allowed child names *)

type attr_default = Required | Implied | Fixed of string | Default of string

type attr_decl = { attr_name : string; attr_default : attr_default }

type element_decl = {
  el_name : string;
  el_content : content;
  el_attrs : attr_decl list;
}

type t

val make : element_decl list -> t
(** @raise Invalid_argument on duplicate element declarations. *)

val elements : t -> element_decl list
val find : t -> string -> element_decl option
(** Case-insensitive lookup. *)

val alphabet : t -> Alphabet.t
(** All declared element names (upper case) as an interned alphabet —
    the universe content models are interpreted over. *)

val content_lang : t -> string -> Lang.t option
(** The regular language of valid child-name sequences of an element:
    [Children m] compiles [m]; [Mixed names] gives [names*];
    [Pcdata]/[Empty_content] give [{ε}]; [Any_content] gives [Σ*].
    [None] if the element is undeclared. *)

(** {1 Validation} *)

type violation = {
  v_path : Html_tree.path;
  v_element : string;
  v_reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

val pp : Format.formatter -> t -> unit
(** Render back as DTD declarations; {!Dtd_parse.parse} of the output
    reconstructs an equal set of declarations. *)

val to_string : t -> string

val validate : t -> Html_tree.doc -> violation list
(** All violations, pre-order: undeclared elements, child sequences
    outside the content model, element children under [Pcdata]/[EMPTY],
    missing [#REQUIRED] attributes, and non-[Fixed] values for [#FIXED]
    attributes.  Empty list = valid. *)

val is_valid : t -> Html_tree.doc -> bool

(** DTD-guided synthesis of extraction expressions (§8: "using DTDs to
    guide the learning algorithms", instantiated).

    Instead of inducing the initial expression from sample pages, the
    parent element's {e content model} supplies it directly: to extract
    the (n+1)-th [target]-child of a [parent] element, take

    - left  = (CM / target·Σ* ) ‖_target^n — content-model prefixes that
      can be followed by [target] and already contain exactly [n]
      occurrences of it;
    - right = (left·target) \ CM — the valid completions;

    over the DTD's element alphabet.  The left side fixes the number of
    preceding [target]s, so the expression is unambiguous by
    construction, resilient to insertion/removal of {e other} sibling
    types wherever the content model allows them, and (having bounded
    mark count) maximizable by Algorithm 6.2 after relaxation. *)

type error =
  | Undeclared_parent of string
  | Target_not_in_content of string
      (** the content model admits no child sequence with > n targets *)

val pp_error : Format.formatter -> error -> unit

val child_expression :
  Dtd.t -> parent:string -> target:string -> nth:int -> (Extraction.t, error) result
(** The unambiguous initial expression described above ([nth] is
    0-based: [nth = 1] marks the second [target] child). *)

val resilient_child_expression :
  Dtd.t -> parent:string -> target:string -> nth:int -> (Extraction.t, error) result
(** [child_expression] followed by {!Synthesis.maximize}; falls back to
    the unmaximized expression if no strategy applies. *)

val extract_child :
  Dtd.t ->
  Extraction.t ->
  Html_tree.doc ->
  parent_path:Html_tree.path ->
  (int, string) result
(** Run a DTD-derived expression on the child-name sequence of the
    addressed element; returns the child index of the extracted node. *)

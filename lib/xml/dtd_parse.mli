(** Parser for DTD internal-subset syntax.

    Supported declarations:
    {v
      <!ELEMENT name EMPTY>            <!ELEMENT name ANY>
      <!ELEMENT name (#PCDATA)>        <!ELEMENT name (#PCDATA | a | b)*>
      <!ELEMENT name (a, (b | c)*, d?)>
      <!ATTLIST name attr CDATA #REQUIRED
                     other CDATA #IMPLIED
                     kind  CDATA #FIXED "v"
                     lang  CDATA "default">
    v}

    Comments ([<!-- … -->]) and whitespace are skipped.  Attribute types
    other than [CDATA] (enumerations, [ID], …) are accepted and treated
    as [CDATA].  Entity declarations are not supported. *)

exception Parse_error of string * int

val parse : string -> Dtd.t
val parse_result : string -> (Dtd.t, string) result

type error = Undeclared_parent of string | Target_not_in_content of string

let pp_error ppf = function
  | Undeclared_parent n ->
      Format.fprintf ppf "parent element %s is not declared" n
  | Target_not_in_content n ->
      Format.fprintf ppf
        "the content model admits no such occurrence of %s" n

let child_expression dtd ~parent ~target ~nth =
  if nth < 0 then invalid_arg "Dtd_guide.child_expression: negative nth";
  match Dtd.content_lang dtd parent with
  | None -> Error (Undeclared_parent parent)
  | Some cm -> (
      let alpha = Dtd.alphabet dtd in
      match Alphabet.find alpha (String.uppercase_ascii target) with
      | None -> Error (Target_not_in_content target)
      | Some t ->
          let tsym = Lang.sym alpha t in
          let sigma_star = Lang.sigma_star alpha in
          let left =
            Lang.filter_count
              (Lang.suffix_quotient cm (Lang.concat tsym sigma_star))
              ~sym:t nth
          in
          if Lang.is_empty left then Error (Target_not_in_content target)
          else
            let right =
              Lang.prefix_quotient (Lang.concat left tsym) cm
            in
            Ok (Extraction.of_langs alpha left t right))

let resilient_child_expression dtd ~parent ~target ~nth =
  match child_expression dtd ~parent ~target ~nth with
  | Error e -> Error e
  | Ok e -> (
      match Synthesis.maximize e with
      | Ok (e', _) -> Ok e'
      | Error _ -> Ok e)

let extract_child dtd expr doc ~parent_path =
  let alpha = Dtd.alphabet dtd in
  match Html_tree.node_at doc parent_path with
  | None -> Error "parent path dangles"
  | Some (Html_tree.Text _ | Html_tree.Comment _) ->
      Error "parent path addresses a non-element"
  | Some (Html_tree.Element { children; _ }) -> (
      (* child-name word, remembering which child each symbol came from *)
      let indexed =
        List.mapi (fun i nd -> (i, nd)) children
        |> List.filter_map (fun (i, nd) ->
               match nd with
               | Html_tree.Element { name; _ } -> (
                   match Alphabet.find alpha name with
                   | Some c -> Some (i, c)
                   | None -> None)
               | Html_tree.Text _ | Html_tree.Comment _ -> None)
      in
      let word = Word.of_list (List.map snd indexed) in
      match Extraction.extract expr word with
      | `Unique i -> Ok (fst (List.nth indexed i))
      | `Ambiguous _ -> Error "ambiguous extraction"
      | `No_match -> Error "no match")

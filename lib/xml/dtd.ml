type particle =
  | Name of string
  | Choice of particle list
  | Seq of particle list
  | Star of particle
  | Plus of particle
  | Opt of particle

type content =
  | Pcdata
  | Empty_content
  | Any_content
  | Children of particle
  | Mixed of string list

type attr_default = Required | Implied | Fixed of string | Default of string
type attr_decl = { attr_name : string; attr_default : attr_default }

type element_decl = {
  el_name : string;
  el_content : content;
  el_attrs : attr_decl list;
}

type t = {
  decls : element_decl list;
  index : (string, element_decl) Hashtbl.t;
  alpha : Alphabet.t;
}

let normalize = String.uppercase_ascii

let rec particle_names acc = function
  | Name n -> normalize n :: acc
  | Choice ps | Seq ps -> List.fold_left particle_names acc ps
  | Star p | Plus p | Opt p -> particle_names acc p

let make decls =
  let decls =
    List.map
      (fun d ->
        {
          d with
          el_name = normalize d.el_name;
          el_content =
            (match d.el_content with
            | Mixed names -> Mixed (List.map normalize names)
            | (Pcdata | Empty_content | Any_content | Children _) as c -> c);
        })
      decls
  in
  let index = Hashtbl.create 32 in
  List.iter
    (fun d ->
      if Hashtbl.mem index d.el_name then
        invalid_arg ("Dtd.make: duplicate element declaration " ^ d.el_name);
      Hashtbl.add index d.el_name d)
    decls;
  (* Alphabet: declared names plus any names referenced in content. *)
  let names =
    List.concat_map
      (fun d ->
        d.el_name
        ::
        (match d.el_content with
        | Children p -> particle_names [] p
        | Mixed ns -> ns
        | Pcdata | Empty_content | Any_content -> []))
      decls
  in
  let names = List.sort_uniq String.compare names in
  { decls; index; alpha = Alphabet.make names }

let elements t = t.decls
let find t name = Hashtbl.find_opt t.index (normalize name)
let alphabet t = t.alpha

let rec regex_of_particle alpha = function
  | Name n -> Regex.sym (Alphabet.find_exn alpha (normalize n))
  | Choice ps -> Regex.alt_list (List.map (regex_of_particle alpha) ps)
  | Seq ps -> Regex.cat_list (List.map (regex_of_particle alpha) ps)
  | Star p -> Regex.star (regex_of_particle alpha p)
  | Plus p -> Regex.plus (regex_of_particle alpha p)
  | Opt p -> Regex.opt (regex_of_particle alpha p)

let content_lang t name =
  match find t name with
  | None -> None
  | Some d ->
      Some
        (match d.el_content with
        | Pcdata | Empty_content -> Lang.epsilon t.alpha
        | Any_content -> Lang.sigma_star t.alpha
        | Mixed names ->
            Lang.of_regex t.alpha
              (Regex.star
                 (Regex.alt_list
                    (List.map
                       (fun n -> Regex.sym (Alphabet.find_exn t.alpha n))
                       names)))
        | Children p -> Lang.of_regex t.alpha (regex_of_particle t.alpha p))

let rec pp_particle ppf = function
  | Name n -> Format.pp_print_string ppf n
  | Choice ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           pp_particle)
        ps
  | Seq ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_particle)
        ps
  | Star p -> Format.fprintf ppf "%a*" pp_particle p
  | Plus p -> Format.fprintf ppf "%a+" pp_particle p
  | Opt p -> Format.fprintf ppf "%a?" pp_particle p

let pp_content ppf = function
  | Pcdata | Mixed [] -> Format.pp_print_string ppf "(#PCDATA)"
  | Empty_content -> Format.pp_print_string ppf "EMPTY"
  | Any_content -> Format.pp_print_string ppf "ANY"
  | Mixed names ->
      Format.fprintf ppf "(#PCDATA | %s)*" (String.concat " | " names)
  | Children (Choice _ as p) | Children (Seq _ as p) -> pp_particle ppf p
  | Children p -> Format.fprintf ppf "(%a)" pp_particle p

(* Pick whichever quote the value does not contain; a value with both
   kinds of quote is not representable in DTD literal syntax, so its
   single quotes are dropped to keep the output parseable. *)
let pp_quoted ppf v =
  if not (String.contains v '"') then Format.fprintf ppf "\"%s\"" v
  else if not (String.contains v '\'') then Format.fprintf ppf "'%s'" v
  else
    Format.fprintf ppf "'%s'"
      (String.concat "" (List.filter_map (fun c ->
           if c = '\'' then None else Some (String.make 1 c))
           (List.init (String.length v) (String.get v))))

let pp_attr_default ppf = function
  | Required -> Format.pp_print_string ppf "#REQUIRED"
  | Implied -> Format.pp_print_string ppf "#IMPLIED"
  | Fixed v -> Format.fprintf ppf "#FIXED %a" pp_quoted v
  | Default v -> Format.fprintf ppf "%a" pp_quoted v

let pp ppf t =
  List.iter
    (fun d ->
      Format.fprintf ppf "<!ELEMENT %s %a>@." d.el_name pp_content d.el_content;
      if d.el_attrs <> [] then begin
        Format.fprintf ppf "<!ATTLIST %s" d.el_name;
        List.iter
          (fun a ->
            Format.fprintf ppf " %s CDATA %a" a.attr_name pp_attr_default
              a.attr_default)
          d.el_attrs;
        Format.fprintf ppf ">@."
      end)
    t.decls

let to_string t = Format.asprintf "%a" pp t

type violation = {
  v_path : Html_tree.path;
  v_element : string;
  v_reason : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "%s at /%s: %s" v.v_element
    (String.concat "/" (List.map string_of_int v.v_path))
    v.v_reason

let child_elements children =
  List.filter_map
    (fun nd ->
      match nd with
      | Html_tree.Element { name; _ } -> Some name
      | Html_tree.Text _ | Html_tree.Comment _ -> None)
    children

let has_element_child children =
  List.exists
    (function
      | Html_tree.Element _ -> true | Html_tree.Text _ | Html_tree.Comment _ -> false)
    children

let has_text_child children =
  List.exists
    (function
      | Html_tree.Text _ -> true | Html_tree.Element _ | Html_tree.Comment _ -> false)
    children

let validate t doc =
  let violations = ref [] in
  let report path name reason =
    violations := { v_path = path; v_element = name; v_reason = reason } :: !violations
  in
  Html_tree.fold
    (fun () path nd ->
      match nd with
      | Html_tree.Text _ | Html_tree.Comment _ -> ()
      | Html_tree.Element { name; attrs; children } -> (
          match find t name with
          | None -> report path name "element not declared"
          | Some decl -> (
              (* attributes *)
              List.iter
                (fun ad ->
                  let present =
                    List.find_opt
                      (fun a -> a.Html_token.name = ad.attr_name)
                      attrs
                  in
                  match (ad.attr_default, present) with
                  | Required, None ->
                      report path name
                        ("missing #REQUIRED attribute " ^ ad.attr_name)
                  | Fixed v, Some a when a.Html_token.value <> Some v ->
                      report path name
                        ("attribute " ^ ad.attr_name ^ " must be fixed to " ^ v)
                  | (Required | Implied | Fixed _ | Default _), _ -> ())
                decl.el_attrs;
              (* content *)
              match decl.el_content with
              | Any_content -> ()
              | Empty_content ->
                  if children <> [] then report path name "EMPTY element has content"
              | Pcdata ->
                  if has_element_child children then
                    report path name "(#PCDATA) element has element children"
              | Mixed allowed ->
                  List.iter
                    (fun c ->
                      if not (List.mem (normalize c) allowed) then
                        report path name
                          ("child " ^ c ^ " not allowed in mixed content"))
                    (child_elements children)
              | Children p -> (
                  if has_text_child children then
                    report path name "element content model forbids text";
                  let names = child_elements children in
                  match
                    List.map (Alphabet.find t.alpha) (List.map normalize names)
                  with
                  | codes when List.for_all Option.is_some codes ->
                      let word =
                        Word.of_list (List.map Option.get codes)
                      in
                      let re = regex_of_particle t.alpha p in
                      if not (Regex.matches re word) then
                        report path name
                          (Printf.sprintf
                             "child sequence [%s] violates content model"
                             (String.concat " " names))
                  | _ ->
                      report path name "child element not in DTD alphabet"))))
    () doc;
  List.rev !violations

let is_valid t doc = validate t doc = []

(** Self-healing wrappers: drift detection, quarantine, re-synthesis,
    atomic generation swap.

    The paper's resilience claim (§6, Props 6.6–6.8) says a maximized
    wrapper survives the {e typical} page changes; it does not survive
    arbitrary redesigns, and a production extractor frozen at learn
    time decays silently as its site drifts.  This module industrializes
    the §3→§7 pipeline into a closed loop:

    + a {b drift detector} — a windowed EWMA over per-session
      extraction verdicts (failure and budget-[Unknown] rates), with a
      deterministic trip rule, so two runs fed the same verdict
      sequence trip at the same point;
    + a {b bounded quarantine ring} keeping the most recent failing
      pages (oldest evicted, oversized shed) as re-labeling material;
    + a {b re-synthesis driver} that re-runs the §7 merge heuristic
      plus pivot maximization over the {e original} training samples
      augmented with the quarantined pages — each re-labeled via its
      [data-target] mark when present, else via the Kushmerick LR
      locator learned from the original samples (the old wrapper
      partially matching is exactly when LR delimiters still anchor);
    + an {b atomic hot-swap} of the compiled wrapper generation
      ({!Wrapper.Gen}) under a {!Guard} budget, so a PSPACE-hard
      maximization (Thm 5.12) can never stall serving: an exhausted
      re-synthesis is a failed heal, not a hung daemon.

    Everything here is deterministic given the verdict/page sequence:
    the serve supervisor observes verdicts in arrival order on the
    supervising domain, so healed daemon output is jobs-invariant and
    healing-off output is byte-identical to a build without this
    module (both checked by the [heal] oracle layer). *)

(** {1 Drift detection} *)

module Detector : sig
  (** Exponentially weighted failure rate with decay [1 - 1/window]:
      [rate' = decay·rate + (1-decay)·(failure ? 1 : 0)].  Trips once
      at least [min_samples] verdicts were observed {e and} the rate
      exceeds [threshold].  Pure integer/float recurrence over the
      verdict sequence — no clocks, no randomness — so trip points
      replay exactly. *)

  type t

  val create : ?window:int -> ?threshold:float -> ?min_samples:int -> unit -> t
  (** Defaults: [window = 16], [threshold = 0.5], [min_samples = 4].
      @raise Invalid_argument if [window < 1], [min_samples < 1], or
      [threshold] is outside [(0, 1)]. *)

  val observe : t -> ok:bool -> unit
  val rate : t -> float
  val observations : t -> int

  val tripped : t -> bool
  (** [observations ≥ min_samples && rate > threshold]. *)

  val reset : t -> unit
  (** Back to the freshly created state (after a heal, successful or
      not, the drifted-site evidence starts over). *)
end

(** {1 Quarantine} *)

module Quarantine : sig
  (** A bounded ring of failing pages (raw HTML bytes), newest kept:
      adding to a full ring evicts the {e oldest} entry; a page larger
      than [max_page_bytes] is shed without entering.  The ring is the
      re-synthesis driver's sample-augmentation material, so it favours
      recency — after a layout flip, the oldest failures describe the
      dead layout. *)

  type t

  val create : ?capacity:int -> ?max_page_bytes:int -> unit -> t
  (** Defaults: [capacity = 8] pages, [max_page_bytes = 1 lsl 20].
      @raise Invalid_argument if [capacity < 1] or
      [max_page_bytes < 1]. *)

  type admit = Added | Evicted_oldest | Oversize_shed

  val add : t -> string -> admit
  val pages : t -> string list
  (** Oldest first. *)

  val depth : t -> int
  val capacity : t -> int
  val clear : t -> unit
end

(** {1 Re-synthesis} *)

type resynthesized = {
  r_wrapper : Wrapper.t;
  r_used : int;  (** quarantined pages incorporated as samples *)
  r_discarded : int;  (** quarantined pages with no recoverable label *)
  r_relabeled_lr : int;
      (** of [r_used], how many labels came from the LR locator rather
          than a surviving [data-target] mark *)
}

val relabel :
  ?abs:Abstraction.t ->
  Alphabet.t ->
  Lr_wrapper.t option ->
  Html_tree.doc ->
  (Html_tree.path * [ `Data_target | `Lr ]) option
(** Ground-truth recovery for one quarantined page: the [data-target]
    mark when the page still carries it, else the LR locator's first
    match mapped back to a tree path ({!Tag_seq.path_of_mark}).  [None]
    when neither anchors — the page is discarded. *)

val resynthesize :
  ?maximize:bool ->
  ?abs:Abstraction.t ->
  samples:(Html_tree.doc * Html_tree.path) list ->
  quarantined:string list ->
  unit ->
  (resynthesized, string) result
(** Re-run the full learning pipeline — alphabet recomputation over
    samples plus quarantined pages (so a drifted layout's new tags
    enter the symbol set), LR-locator learning from the original
    samples, per-page re-labeling, §7 merge, disambiguation, and (by
    default) §6 maximization — and answer a wrapper whose matcher is
    checked online-capable (Σ*-right).  Runs under the {e ambient}
    {!Guard} budget: callers wanting a bound install one
    ({!Manager.maybe_heal} does).  Never raises on bad pages; errors
    are strings fit for a heal-failure report. *)

(** {1 The manager} *)

type config = {
  window : int;
  threshold : float;
  min_samples : int;
  quarantine_capacity : int;
  max_page_bytes : int;
  fuel : int;  (** re-synthesis fuel budget (Guard units) *)
  deadline_ms : int option;  (** re-synthesis wall-clock bound *)
  maximize : bool;
  save_to : string option;
      (** re-save each healed generation as a [.rxc] artifact here,
          generation-stamped ({!Wrapper.compile_to}) *)
}

val default_config : config
(** [window = 16], [threshold = 0.5], [min_samples = 4],
    [quarantine_capacity = 8], [max_page_bytes = 1 lsl 20],
    [fuel = 200_000], [deadline_ms = Some 2000], [maximize = true],
    [save_to = None]. *)

module Manager : sig
  (** One healing loop: detector + quarantine + the generation cell
      the current wrapper is published through.  All entry points are
      called from one domain (the serve supervisor's sequential
      passes); only the generation cell is shared across domains. *)

  type t

  val create : ?config:config -> samples:(Html_tree.doc * Html_tree.path) list
    -> Wrapper.t -> t
  (** Manage the given learned wrapper (generation 0).  [samples] are
      the original training pages with their target paths — kept for
      re-synthesis.
      @raise Invalid_argument if [samples] is empty or a config bound
      is out of range. *)

  val wrapper : t -> Wrapper.t
  (** The current generation's wrapper (atomic snapshot). *)

  val generation : t -> int
  val config : t -> config

  val observe : t -> ok:bool -> page:string option -> unit
  (** One terminal session verdict: feed the detector; quarantine the
      page bytes of a failing session when available. *)

  type outcome =
    | No_trip
    | Healed of { generation : int; used : int }
    | Heal_failed of string

  val maybe_heal : t -> outcome
  (** If the detector has tripped: re-synthesize under the configured
      {!Guard} budget (inside an {!Obs.Span.Heal} span), publish the
      new generation via {!Wrapper.Gen.swap}, re-save the artifact when
      configured, clear the quarantine, and reset the detector.  A
      failed or budget-exhausted re-synthesis answers [Heal_failed]
      (and still resets the detector, so the daemon does not spin on an
      unhealable site — fresh evidence must accumulate before the next
      attempt).  Never raises. *)
end

(** {1 Statistics}

    Process-global, unconditional (independent of {!Obs.set_enabled}),
    exported as the ["heal"] {!Obs.metrics_json} provider: generations
    published, detector trips, heal failures, quarantine traffic
    (admitted / evicted / oversize-shed), re-labeling tallies, and a
    re-synthesis latency histogram. *)

type stats = {
  trips : int;
  healed : int;
  heal_failures : int;
  quarantined : int;
  evicted : int;
  oversize_shed : int;
  relabeled_data_target : int;
  relabeled_lr : int;
  discarded : int;
  generation : int;  (** highest generation published by any manager *)
}

val stats : unit -> stats
val resynthesis_latency : unit -> Obs.Histogram.snapshot
val pp_stats : Format.formatter -> stats -> unit

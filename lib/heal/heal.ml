(* --- process-global counters (the "heal" metrics provider) ---

   Unconditional, like the serve supervisor's: the healing loop's
   vitals must not depend on --trace.  Atomics for uniformity with the
   other providers; today every increment happens on the supervising
   domain. *)

let trips_c = Atomic.make 0
let healed_c = Atomic.make 0
let heal_failures_c = Atomic.make 0
let quarantined_c = Atomic.make 0
let evicted_c = Atomic.make 0
let oversize_c = Atomic.make 0
let relabeled_dt_c = Atomic.make 0
let relabeled_lr_c = Atomic.make 0
let discarded_c = Atomic.make 0
let generation_c = Atomic.make 0
let latency = Obs.Histogram.make ()

type stats = {
  trips : int;
  healed : int;
  heal_failures : int;
  quarantined : int;
  evicted : int;
  oversize_shed : int;
  relabeled_data_target : int;
  relabeled_lr : int;
  discarded : int;
  generation : int;
}

let stats () =
  {
    trips = Atomic.get trips_c;
    healed = Atomic.get healed_c;
    heal_failures = Atomic.get heal_failures_c;
    quarantined = Atomic.get quarantined_c;
    evicted = Atomic.get evicted_c;
    oversize_shed = Atomic.get oversize_c;
    relabeled_data_target = Atomic.get relabeled_dt_c;
    relabeled_lr = Atomic.get relabeled_lr_c;
    discarded = Atomic.get discarded_c;
    generation = Atomic.get generation_c;
  }

let resynthesis_latency () = Obs.Histogram.snapshot latency

let pp_stats ppf s =
  Format.fprintf ppf "heal stats:@.";
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "trips" s.trips "healed"
    s.healed;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "heal-failures"
    s.heal_failures "generation" s.generation;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "quarantined" s.quarantined
    "evicted" s.evicted;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "oversize-shed"
    s.oversize_shed "discarded" s.discarded;
  Format.fprintf ppf "  %-12s %8d  %-12s %8d@." "relabel-dt"
    s.relabeled_data_target "relabel-lr" s.relabeled_lr

let () =
  Obs.register_provider "heal" (fun () ->
      let open Obs.Json in
      let s = stats () in
      let l = resynthesis_latency () in
      Obj
        [
          ("trips", Int s.trips);
          ("healed", Int s.healed);
          ("heal_failures", Int s.heal_failures);
          ("quarantined", Int s.quarantined);
          ("evicted", Int s.evicted);
          ("oversize_shed", Int s.oversize_shed);
          ("relabeled_data_target", Int s.relabeled_data_target);
          ("relabeled_lr", Int s.relabeled_lr);
          ("discarded", Int s.discarded);
          ("generation", Int s.generation);
          ( "resynthesis_latency",
            Obj
              [
                ("count", Int l.Obs.Histogram.count);
                ("mean_us", Int (Obs.Histogram.mean_ns l / 1000));
                ("max_us", Int (l.Obs.Histogram.max_ns / 1000));
              ] );
        ])

(* --- drift detector --- *)

module Detector = struct
  type t = {
    decay : float;
    threshold : float;
    min_samples : int;
    mutable rate : float;
    mutable seen : int;
  }

  let create ?(window = 16) ?(threshold = 0.5) ?(min_samples = 4) () =
    if window < 1 then invalid_arg "Heal.Detector.create: window < 1";
    if min_samples < 1 then invalid_arg "Heal.Detector.create: min_samples < 1";
    if not (threshold > 0.0 && threshold < 1.0) then
      invalid_arg "Heal.Detector.create: threshold outside (0, 1)";
    {
      decay = 1.0 -. (1.0 /. float_of_int window);
      threshold;
      min_samples;
      rate = 0.0;
      seen = 0;
    }

  let observe t ~ok =
    t.seen <- t.seen + 1;
    t.rate <-
      (t.decay *. t.rate) +. ((1.0 -. t.decay) *. if ok then 0.0 else 1.0)

  let rate t = t.rate
  let observations t = t.seen
  let tripped t = t.seen >= t.min_samples && t.rate > t.threshold

  let reset t =
    t.rate <- 0.0;
    t.seen <- 0
end

(* --- quarantine ring --- *)

module Quarantine = struct
  type t = {
    ring : string array;
    cap : int;
    max_page_bytes : int;
    mutable head : int; (* index of the oldest entry *)
    mutable len : int;
  }

  type admit = Added | Evicted_oldest | Oversize_shed

  let create ?(capacity = 8) ?(max_page_bytes = 1 lsl 20) () =
    if capacity < 1 then invalid_arg "Heal.Quarantine.create: capacity < 1";
    if max_page_bytes < 1 then
      invalid_arg "Heal.Quarantine.create: max_page_bytes < 1";
    { ring = Array.make capacity ""; cap = capacity; max_page_bytes; head = 0; len = 0 }

  let add t page =
    if String.length page > t.max_page_bytes then begin
      Atomic.incr oversize_c;
      Oversize_shed
    end
    else begin
      Atomic.incr quarantined_c;
      if t.len < t.cap then begin
        t.ring.((t.head + t.len) mod t.cap) <- page;
        t.len <- t.len + 1;
        Added
      end
      else begin
        (* full: the slot under [head] holds the oldest entry — it is
           overwritten and the window slides *)
        t.ring.(t.head) <- page;
        t.head <- (t.head + 1) mod t.cap;
        Atomic.incr evicted_c;
        Evicted_oldest
      end
    end

  let pages t = List.init t.len (fun i -> t.ring.((t.head + i) mod t.cap))
  let depth t = t.len
  let capacity t = t.cap

  let clear t =
    t.head <- 0;
    t.len <- 0;
    Array.fill t.ring 0 t.cap ""
end

(* --- re-labeling and re-synthesis --- *)

type resynthesized = {
  r_wrapper : Wrapper.t;
  r_used : int;
  r_discarded : int;
  r_relabeled_lr : int;
}

let relabel ?(abs = Abstraction.Tags) alpha lr doc =
  match Pagegen.target_path doc with
  | Some path -> Some (path, `Data_target)
  | None -> (
      (* the page drifted past its mark (or never carried one): fall
         back to the Kushmerick LR locator — fixed delimiter contexts
         still anchor exactly when the old layout partially survives *)
      match lr with
      | None -> None
      | Some lr -> (
          match Tag_seq.of_doc ~abs alpha doc with
          | exception Tag_seq.Unknown_symbol _ -> None
          | word -> (
              match Lr_wrapper.extract lr word with
              | None -> None
              | Some pos -> (
                  match Tag_seq.path_of_mark ~abs alpha doc pos with
                  | None -> None
                  | Some path -> Some (path, `Lr)))))

let resynthesize ?(maximize = true) ?(abs = Abstraction.Tags) ~samples
    ~quarantined () =
  if samples = [] then Error "no training samples to re-synthesize from"
  else begin
    let qdocs = List.map Html_tree.parse quarantined in
    (* recompute the alphabet over old samples AND drifted pages: a
       layout flip's new tags must enter the symbol set, or the healed
       matcher dies on the same Bad_symbol the old one did *)
    let alpha =
      Wrapper.alphabet_for ~abs (List.map fst samples @ qdocs)
    in
    let marked =
      List.filter_map
        (fun (doc, path) ->
          Option.map
            (fun (w, i) -> Merge.sample w i)
            (Tag_seq.mark_of_path ~abs alpha doc path))
        samples
    in
    let lr =
      match Lr_wrapper.learn alpha marked with
      | Ok lr -> Some lr
      | Error _ -> None
    in
    let relabeled, discarded, via_lr =
      List.fold_left
        (fun (acc, discarded, via_lr) doc ->
          match relabel ~abs alpha lr doc with
          | Some (path, `Data_target) ->
              Atomic.incr relabeled_dt_c;
              ((doc, path) :: acc, discarded, via_lr)
          | Some (path, `Lr) ->
              Atomic.incr relabeled_lr_c;
              ((doc, path) :: acc, discarded, via_lr + 1)
          | None ->
              Atomic.incr discarded_c;
              (acc, discarded + 1, via_lr))
        ([], 0, 0) qdocs
    in
    let relabeled = List.rev relabeled in
    match Wrapper.learn ~maximize ~abs ~alpha (samples @ relabeled) with
    | Error e -> Error (Format.asprintf "%a" Wrapper.pp_learn_error e)
    | Ok w ->
        if not (Extraction.matcher_online w.Wrapper.matcher) then
          (* cannot happen with the default Σ*-suffix merge, but a
             healed daemon must never install a matcher it cannot
             stream *)
          Error "re-synthesized expression is not online (right side not Σ*)"
        else
          Ok
            {
              r_wrapper = w;
              r_used = List.length relabeled;
              r_discarded = discarded;
              r_relabeled_lr = via_lr;
            }
  end

(* --- manager --- *)

type config = {
  window : int;
  threshold : float;
  min_samples : int;
  quarantine_capacity : int;
  max_page_bytes : int;
  fuel : int;
  deadline_ms : int option;
  maximize : bool;
  save_to : string option;
}

let default_config =
  {
    window = 16;
    threshold = 0.5;
    min_samples = 4;
    quarantine_capacity = 8;
    max_page_bytes = 1 lsl 20;
    fuel = 200_000;
    deadline_ms = Some 2000;
    maximize = true;
    save_to = None;
  }

module Manager = struct
  type t = {
    cfg : config;
    samples : (Html_tree.doc * Html_tree.path) list;
    detector : Detector.t;
    quarantine : Quarantine.t;
    gen : Wrapper.Gen.gen;
  }

  let create ?(config = default_config) ~samples w =
    if samples = [] then invalid_arg "Heal.Manager.create: no samples";
    if config.fuel < 1 then invalid_arg "Heal.Manager.create: fuel < 1";
    {
      cfg = config;
      samples;
      detector =
        Detector.create ~window:config.window ~threshold:config.threshold
          ~min_samples:config.min_samples ();
      quarantine =
        Quarantine.create ~capacity:config.quarantine_capacity
          ~max_page_bytes:config.max_page_bytes ();
      gen = Wrapper.Gen.make w;
    }

  let wrapper t = Wrapper.Gen.wrapper t.gen
  let generation t = Wrapper.Gen.generation t.gen
  let config t = t.cfg

  let observe t ~ok ~page =
    Detector.observe t.detector ~ok;
    if not ok then
      match page with
      | Some p when String.length p > 0 -> ignore (Quarantine.add t.quarantine p)
      | Some _ | None -> ()

  type outcome =
    | No_trip
    | Healed of { generation : int; used : int }
    | Heal_failed of string

  let record_max cell v =
    (* single-writer in practice; the loop keeps it a max either way *)
    let rec go () =
      let cur = Atomic.get cell in
      if v <= cur || Atomic.compare_and_set cell cur v then () else go ()
    in
    go ()

  let maybe_heal t =
    if not (Detector.tripped t.detector) then No_trip
    else begin
      Atomic.incr trips_c;
      let sp = Obs.Span.enter Obs.Span.Heal in
      let t0 = Obs.now_ns () in
      let abs = (wrapper t).Wrapper.abs in
      let result =
        (* the re-synthesis is the one unbounded-cost step of the loop
           (maximization is PSPACE-hard, Thm 5.12): meter it so a heal
           can fail but never stall serving *)
        match
          Guard.run ~fuel:t.cfg.fuel ?deadline_ms:t.cfg.deadline_ms (fun () ->
              resynthesize ~maximize:t.cfg.maximize ~abs ~samples:t.samples
                ~quarantined:(Quarantine.pages t.quarantine) ())
        with
        | Guard.Decided r -> r
        | Guard.Unknown reason -> Error (Guard.reason_to_string reason)
        | exception e -> Error (Printexc.to_string e)
      in
      Obs.Histogram.observe latency (Obs.now_ns () - t0);
      Obs.Span.exit sp;
      (* win or lose, the drifted-site evidence is consumed: the
         detector restarts so the daemon does not re-trip every batch
         on the same stale window *)
      Detector.reset t.detector;
      match result with
      | Error msg ->
          Atomic.incr heal_failures_c;
          Heal_failed msg
      | Ok r ->
          let generation = Wrapper.Gen.swap t.gen r.r_wrapper in
          Quarantine.clear t.quarantine;
          Atomic.incr healed_c;
          record_max generation_c generation;
          (match t.cfg.save_to with
          | None -> ()
          | Some path -> (
              try Wrapper.compile_to ~generation r.r_wrapper path
              with Sys_error _ -> ()));
          Healed { generation; used = r.r_used }
    end
end

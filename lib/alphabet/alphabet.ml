type t = { names_arr : string array; index : (string, int) Hashtbl.t }

let of_array arr =
  let n = Array.length arr in
  let index = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i name ->
      if name = "" then invalid_arg "Alphabet.of_array: empty symbol name";
      if Hashtbl.mem index name then
        invalid_arg ("Alphabet.of_array: duplicate symbol " ^ name);
      Hashtbl.add index name i)
    arr;
  { names_arr = Array.copy arr; index }

let make names = of_array (Array.of_list names)
let size a = Array.length a.names_arr

let name a i =
  if i < 0 || i >= size a then
    invalid_arg (Printf.sprintf "Alphabet.name: symbol %d out of range" i);
  a.names_arr.(i)

let find a n = Hashtbl.find_opt a.index n

let find_exn a n =
  match find a n with
  | Some i -> i
  | None -> invalid_arg ("Alphabet.find_exn: unknown symbol " ^ n)

let mem_name a n = Hashtbl.mem a.index n
let symbols a = List.init (size a) Fun.id
let names a = Array.to_list a.names_arr

let extend a n =
  if mem_name a n then invalid_arg ("Alphabet.extend: symbol exists: " ^ n);
  (of_array (Array.append a.names_arr [| n |]), size a)

let fresh_name a base =
  if not (mem_name a base) then base
  else
    let rec loop i =
      let cand = Printf.sprintf "%s%d" base i in
      if mem_name a cand then loop (i + 1) else cand
    in
    loop 0

let equal a b = a.names_arr = b.names_arr

let pp ppf a =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    (names a)

let pp_symbol a ppf i = Format.pp_print_string ppf (name a i)

module S = Set.Make (Int)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let add = S.add
let remove = S.remove
let mem = S.mem
let union = S.union
let inter = S.inter
let diff = S.diff
let cardinal = S.cardinal
let elements = S.elements
let of_list l = List.fold_left (fun s x -> S.add x s) S.empty l
let iter = S.iter
let fold = S.fold
let for_all = S.for_all
let exists = S.exists
let subset = S.subset
let equal = S.equal
let compare = S.compare
let min_elt = S.min_elt
let choose_opt = S.choose_opt

let full n =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (S.add i acc) in
  loop (n - 1) S.empty

let complement n s = diff (full n) s

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements s)

(** Words (finite strings) over an interned alphabet.

    A word is an immutable-by-convention [int array] of symbol codes; the
    array representation keeps DFA runs allocation-free. *)

type t = int array

val empty : t
val of_list : int list -> t
val to_list : t -> int list
val length : t -> int
val append : t -> t -> t
val concat : t list -> t
val cons : int -> t -> t
val snoc : t -> int -> t
val sub : t -> int -> int -> t
val rev : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val count : int -> t -> int
(** [count p w] is the number of occurrences of symbol [p] in [w]. *)

val positions : int -> t -> int list
(** Indices at which symbol [p] occurs, ascending. *)

val of_names : Alphabet.t -> string list -> t
val to_names : Alphabet.t -> t -> string list

val of_string : Alphabet.t -> string -> t
(** Parse a whitespace-separated sequence of symbol names.  Single-letter
    alphabets also accept unseparated words, e.g. ["pqp"]. *)

val to_string : Alphabet.t -> t -> string
val pp : Alphabet.t -> Format.formatter -> t -> unit

val enumerate : Alphabet.t -> int -> t Seq.t
(** All words of length at most [n], in length-lexicographic order.
    Intended for brute-force oracles in tests. *)

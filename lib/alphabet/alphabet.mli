(** Finite alphabets of named symbols.

    Pages, expressions, and automata all work over an interned alphabet:
    symbols are dense non-negative integers [0 .. size-1], each carrying a
    human-readable name (an HTML tag such as ["FORM"], a token class, or a
    plain letter such as ["p"]).  Interning keeps the hot paths (DFA
    transition lookups) integer-indexed while all user-facing syntax uses
    names. *)

type t

val make : string list -> t
(** [make names] builds an alphabet from distinct symbol names.
    @raise Invalid_argument on duplicate or empty names. *)

val of_array : string array -> t

val size : t -> int

val name : t -> int -> string
(** @raise Invalid_argument if the symbol is out of range. *)

val find : t -> string -> int option
val find_exn : t -> string -> int
val mem_name : t -> string -> bool
val symbols : t -> int list
val names : t -> string list

val extend : t -> string -> t * int
(** [extend a n] is a copy of [a] with fresh symbol [n] appended, and the
    code of that symbol.  Used for the fresh-marker construction of
    Prop 5.5.  @raise Invalid_argument if [n] is already present. *)

val fresh_name : t -> string -> string
(** [fresh_name a base] is a name not present in [a], derived from
    [base]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_symbol : t -> Format.formatter -> int -> unit

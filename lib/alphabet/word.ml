type t = int array

let empty = [||]
let of_list = Array.of_list
let to_list = Array.to_list
let length = Array.length
let append = Array.append
let concat = Array.concat
let cons s w = Array.append [| s |] w
let snoc w s = Array.append w [| s |]
let sub = Array.sub

let rev w =
  let n = Array.length w in
  Array.init n (fun i -> w.(n - 1 - i))

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let count p w = Array.fold_left (fun n s -> if s = p then n + 1 else n) 0 w

let positions p w =
  let acc = ref [] in
  Array.iteri (fun i s -> if s = p then acc := i :: !acc) w;
  List.rev !acc

let of_names a l = of_list (List.map (Alphabet.find_exn a) l)
let to_names a w = List.map (Alphabet.name a) (to_list w)

let all_single_letter a =
  List.for_all (fun n -> String.length n = 1) (Alphabet.names a)

let of_string a s =
  let parts =
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char '\n')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun x -> x <> "")
  in
  let expand part =
    if Alphabet.mem_name a part then [ part ]
    else if all_single_letter a then
      List.init (String.length part) (fun i -> String.make 1 part.[i])
    else [ part ]
  in
  of_names a (List.concat_map expand parts)

let to_string a w =
  if all_single_letter a then String.concat "" (to_names a w)
  else String.concat " " (to_names a w)

let pp a ppf w =
  if length w = 0 then Format.pp_print_string ppf "ε"
  else Format.pp_print_string ppf (to_string a w)

let enumerate a n =
  let k = Alphabet.size a in
  (* Breadth-first over lengths; each length-l block generated on demand. *)
  let rec words_of_len l : t Seq.t =
    if l = 0 then Seq.return empty
    else
      Seq.concat_map
        (fun w -> Seq.init k (fun s -> snoc w s))
        (words_of_len (l - 1))
  in
  Seq.concat_map words_of_len (Seq.init (n + 1) Fun.id)

(** Finite sets of interned symbols (non-negative ints).

    A thin wrapper around [Set.Make (Int)] that additionally exposes a
    total order usable in larger structural comparisons, plus the few
    derived operations the regex and automata layers need. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val elements : t -> int list
val of_list : int list -> t
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min_elt : t -> int
val choose_opt : t -> int option

val full : int -> t
(** [full n] is [{0, …, n-1}]. *)

val complement : int -> t -> t
(** [complement n s] is [full n] minus [s]. *)

val pp : Format.formatter -> t -> unit

type t = { width : int; bits : Bytes.t }

let create width =
  { width; bits = Bytes.make ((width + 7) / 8) '\000' }

let length t = t.width

let check t i =
  if i < 0 || i >= t.width then invalid_arg "Bitvec: index out of range"

let set t i =
  check t i;
  let b = Bytes.get_uint8 t.bits (i lsr 3) in
  Bytes.set_uint8 t.bits (i lsr 3) (b lor (1 lsl (i land 7)))

let clear t i =
  check t i;
  let b = Bytes.get_uint8 t.bits (i lsr 3) in
  Bytes.set_uint8 t.bits (i lsr 3) (b land lnot (1 lsl (i land 7)))

let mem t i =
  check t i;
  Bytes.get_uint8 t.bits (i lsr 3) land (1 lsl (i land 7)) <> 0

let is_empty t =
  let n = Bytes.length t.bits in
  let rec loop i = i >= n || (Bytes.get_uint8 t.bits i = 0 && loop (i + 1)) in
  loop 0

let copy t = { width = t.width; bits = Bytes.copy t.bits }

let union_into dst src =
  if dst.width <> src.width then invalid_arg "Bitvec.union_into: width";
  for i = 0 to Bytes.length dst.bits - 1 do
    Bytes.set_uint8 dst.bits i
      (Bytes.get_uint8 dst.bits i lor Bytes.get_uint8 src.bits i)
  done

let inter a b =
  if a.width <> b.width then invalid_arg "Bitvec.inter: width";
  let r = create a.width in
  for i = 0 to Bytes.length r.bits - 1 do
    Bytes.set_uint8 r.bits i
      (Bytes.get_uint8 a.bits i land Bytes.get_uint8 b.bits i)
  done;
  r

let equal a b = a.width = b.width && Bytes.equal a.bits b.bits

let iter f t =
  for i = 0 to t.width - 1 do
    if mem t i then f i
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i l -> i :: l) t [])
let cardinal t = fold (fun _ n -> n + 1) t 0

let of_list width l =
  let t = create width in
  List.iter (set t) l;
  t

let key t = Bytes.to_string t.bits

let exists p t =
  let found = ref false in
  (try
     iter (fun i -> if p i then (found := true; raise Exit)) t
   with Exit -> ());
  !found

(** Graphviz (DOT) rendering of automata — debugging and documentation
    aid (`dot -Tsvg` turns the output into a diagram). *)

val dfa : ?name:string -> Alphabet.t -> Dfa.t -> string
(** Transitions into the same target are grouped into one labelled edge;
    the dead (non-co-reachable) states are drawn dashed. *)

val nfa : ?name:string -> Alphabet.t -> Nfa.t -> string

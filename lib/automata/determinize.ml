let run (n : Nfa.t) : Dfa.t =
  let sp = Obs.Span.enter Obs.Span.Determinize in
  try
  let k = n.Nfa.alpha_size in
  let table : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let sets : Bitvec.t list ref = ref [] in
  let count = ref 0 in
  let delta_rows : int array list ref = ref [] in
  let finals_rev : bool list ref = ref [] in
  let queue = Queue.create () in
  let intern set =
    let key = Bitvec.key set in
    match Hashtbl.find_opt table key with
    | Some id -> id
    | None ->
        (* One fuel unit per subset state: the 2^n blow-up of the
           PSPACE-hard instances (Thm 5.12) is charged right where it
           materializes. *)
        Guard.charge ~stage:"determinize" 1;
        Guard_faults.point Guard_faults.Determinize;
        let id = !count in
        incr count;
        Hashtbl.add table key id;
        sets := set :: !sets;
        Queue.add (id, set) queue;
        id
  in
  let start_set = Bitvec.of_list n.Nfa.size n.Nfa.starts in
  Nfa.eps_closure n start_set;
  let start = intern start_set in
  (* Process queue in insertion order; rows are collected in state order. *)
  while not (Queue.is_empty queue) do
    let _, set = Queue.pop queue in
    let row = Array.make k 0 in
    for a = 0 to k - 1 do
      let next = Bitvec.create n.Nfa.size in
      Bitvec.iter
        (fun q -> List.iter (Bitvec.set next) n.Nfa.delta.(q).(a))
        set;
      Nfa.eps_closure n next;
      row.(a) <- intern next
    done;
    delta_rows := row :: !delta_rows;
    finals_rev :=
      Bitvec.exists (fun q -> n.Nfa.finals.(q)) set :: !finals_rev
  done;
  let size = !count in
  let rows = Array.of_list (List.rev !delta_rows) in
  let finals = Array.of_list (List.rev !finals_rev) in
  let delta = Array.make (size * k) 0 in
  Array.iteri
    (fun q row -> Array.iteri (fun a d -> delta.((q * k) + a) <- d) row)
    rows;
  let d = { Dfa.alpha_size = k; size; start; finals; delta } in
  Dfa.validate d;
  Obs.Span.exit_n sp size;
  d
  with e ->
    Obs.Span.fail sp;
    raise e

let state_count_bound (n : Nfa.t) =
  if n.Nfa.size >= 62 then max_int else 1 lsl n.Nfa.size

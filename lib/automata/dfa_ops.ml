let check_alpha (a : Dfa.t) (b : Dfa.t) =
  if a.Dfa.alpha_size <> b.Dfa.alpha_size then
    invalid_arg "Dfa_ops: alphabet size mismatch"

(* Reachable product with finals combined by [conn]. *)
let product conn (a : Dfa.t) (b : Dfa.t) : Dfa.t =
  check_alpha a b;
  let sp = Obs.Span.enter Obs.Span.Product in
  try
  let k = a.Dfa.alpha_size in
  let nb = b.Dfa.size in
  let encode qa qb = (qa * nb) + qb in
  let table : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let count = ref 0 in
  let rows : int array list ref = ref [] in
  let finals_rev : bool list ref = ref [] in
  let intern qa qb =
    let code = encode qa qb in
    match Hashtbl.find_opt table code with
    | Some id -> id
    | None ->
        Guard.charge ~stage:"product" 1;
        let id = !count in
        incr count;
        Hashtbl.add table code id;
        Queue.add (qa, qb) queue;
        id
  in
  let start = intern a.Dfa.start b.Dfa.start in
  while not (Queue.is_empty queue) do
    let qa, qb = Queue.pop queue in
    let row = Array.make k 0 in
    for c = 0 to k - 1 do
      row.(c) <- intern (Dfa.step a qa c) (Dfa.step b qb c)
    done;
    rows := row :: !rows;
    finals_rev := conn a.Dfa.finals.(qa) b.Dfa.finals.(qb) :: !finals_rev
  done;
  let size = !count in
  let delta = Array.make (size * k) 0 in
  List.iteri
    (fun i row ->
      let q = size - 1 - i in
      Array.iteri (fun c d -> delta.((q * k) + c) <- d) row)
    !rows;
  let finals = Array.of_list (List.rev !finals_rev) in
  let d = { Dfa.alpha_size = k; size; start; finals; delta } in
  Dfa.validate d;
  Obs.Span.exit_n sp size;
  d
  with e ->
    Obs.Span.fail sp;
    raise e

let inter = product ( && )
let union = product ( || )
let difference = product (fun x y -> x && not y)
let symdiff = product (fun x y -> x <> y)

let is_empty (d : Dfa.t) =
  not (Bitvec.exists (fun q -> d.Dfa.finals.(q)) (Dfa.reachable d))

let is_universal d = is_empty (Dfa.complement d)
let includes a b = is_empty (difference b a)
let equivalent a b = is_empty (symdiff a b)

let shortest_accepted (d : Dfa.t) =
  (* BFS from the start, remembering (parent, symbol). *)
  let n = d.Dfa.size in
  let parent = Array.make n (-1, -1) in
  let seen = Bitvec.create n in
  Bitvec.set seen d.Dfa.start;
  let queue = Queue.create () in
  Queue.add d.Dfa.start queue;
  let target = ref None in
  if d.Dfa.finals.(d.Dfa.start) then target := Some d.Dfa.start;
  while !target = None && not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    let a = ref 0 in
    while !target = None && !a < d.Dfa.alpha_size do
      let t = Dfa.step d q !a in
      if not (Bitvec.mem seen t) then begin
        Bitvec.set seen t;
        parent.(t) <- (q, !a);
        if d.Dfa.finals.(t) then target := Some t else Queue.add t queue
      end;
      incr a
    done
  done;
  match !target with
  | None -> None
  | Some t ->
      let rec build q acc =
        if q = d.Dfa.start && parent.(q) = (-1, -1) then acc
        else
          let p, a = parent.(q) in
          build p (a :: acc)
      in
      Some (Array.of_list (build t []))

let shortest_rejected d = shortest_accepted (Dfa.complement d)
let shortest_in_difference a b = shortest_accepted (difference a b)

let reverse (d : Dfa.t) = Determinize.run (Nfa.reverse (Dfa.to_nfa d))

(* Pairs (qa, qb) of the full product from which an accepting pair is
   reachable; returned as a bitvec indexed by qa * |b| + qb. *)
let coreachable_pairs (a : Dfa.t) (b : Dfa.t) : Bitvec.t =
  check_alpha a b;
  let sp = Obs.Span.enter Obs.Span.Quotient in
  try
  let k = a.Dfa.alpha_size in
  let na = a.Dfa.size and nb = b.Dfa.size in
  let n = na * nb in
  (* The full product is materialized as predecessor lists, so the
     whole pair count is charged up front. *)
  Guard.charge ~stage:"quotient" n;
  let preds = Array.make n [] in
  for qa = 0 to na - 1 do
    for qb = 0 to nb - 1 do
      let src = (qa * nb) + qb in
      for c = 0 to k - 1 do
        let dst = (Dfa.step a qa c * nb) + Dfa.step b qb c in
        preds.(dst) <- src :: preds.(dst)
      done
    done
  done;
  let seen = Bitvec.create n in
  let stack = ref [] in
  for qa = 0 to na - 1 do
    if a.Dfa.finals.(qa) then
      for qb = 0 to nb - 1 do
        if b.Dfa.finals.(qb) then begin
          let p = (qa * nb) + qb in
          Bitvec.set seen p;
          stack := p :: !stack
        end
      done
  done;
  let rec loop () =
    match !stack with
    | [] -> ()
    | p :: rest ->
        stack := rest;
        List.iter
          (fun s ->
            if not (Bitvec.mem seen s) then begin
              Bitvec.set seen s;
              stack := s :: !stack
            end)
          preds.(p);
        loop ()
  in
  loop ();
  Obs.Span.exit_n sp n;
  seen
  with e ->
    Obs.Span.fail sp;
    raise e

let suffix_quotient (a : Dfa.t) (b : Dfa.t) : Dfa.t =
  let coreach = coreachable_pairs a b in
  let nb = b.Dfa.size in
  let finals =
    Array.init a.Dfa.size (fun qa ->
        Bitvec.mem coreach ((qa * nb) + b.Dfa.start))
  in
  Dfa.with_finals a finals

let prefix_quotient (b : Dfa.t) (a : Dfa.t) : Dfa.t =
  check_alpha a b;
  (* Forward-reachable pairs of the product from (start_a, start_b);
     states of [a] paired with a final of [b] become NFA start states.
     The final Determinize.run nests its own span under this one. *)
  let sp = Obs.Span.enter Obs.Span.Quotient in
  try
  let k = a.Dfa.alpha_size in
  let nb = b.Dfa.size in
  let seen = Bitvec.create (a.Dfa.size * nb) in
  let p0 = (a.Dfa.start * nb) + b.Dfa.start in
  Bitvec.set seen p0;
  let stack = ref [ p0 ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | p :: rest ->
        stack := rest;
        let qa = p / nb and qb = p mod nb in
        for c = 0 to k - 1 do
          let p' = (Dfa.step a qa c * nb) + Dfa.step b qb c in
          if not (Bitvec.mem seen p') then begin
            Guard.charge ~stage:"quotient" 1;
            Bitvec.set seen p';
            stack := p' :: !stack
          end
        done;
        loop ()
  in
  loop ();
  let starts = ref [] in
  Bitvec.iter
    (fun p ->
      let qa = p / nb and qb = p mod nb in
      if b.Dfa.finals.(qb) then starts := qa :: !starts)
    seen;
  let starts = List.sort_uniq Int.compare !starts in
  let d =
    if starts = [] then Dfa.trivial ~alpha_size:k false
    else Determinize.run (Nfa.with_starts (Dfa.to_nfa a) starts)
  in
  Obs.Span.exit sp;
  d
  with e ->
    Obs.Span.fail sp;
    raise e

let counter_dfa ~alpha_size ~sym n =
  (* States 0..n count occurrences; state n+1 is the overflow sink. *)
  let size = n + 2 in
  let delta = Array.make (size * alpha_size) 0 in
  for q = 0 to size - 1 do
    for a = 0 to alpha_size - 1 do
      let d =
        if a = sym then min (q + 1) (n + 1)
        else if q = n + 1 then n + 1
        else q
      in
      delta.((q * alpha_size) + a) <- d
    done
  done;
  let finals = Array.init size (fun q -> q = n) in
  { Dfa.alpha_size; size; start = 0; finals; delta }

let filter_count (d : Dfa.t) ~sym n =
  if n < 0 then invalid_arg "Dfa_ops.filter_count: negative count";
  inter d (counter_dfa ~alpha_size:d.Dfa.alpha_size ~sym n)

(* Tarjan SCC over the live sub-DFA. *)
let scc_of_live (d : Dfa.t) (live : Bitvec.t) =
  let n = d.Dfa.size in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let counter = ref 0 in
  let n_comp = ref 0 in
  (* Iterative Tarjan to avoid stack overflow on long chains. *)
  let rec strongconnect v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    for a = 0 to d.Dfa.alpha_size - 1 do
      let w = Dfa.step d v a in
      if Bitvec.mem live w then
        if index.(w) = -1 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
    done;
    if low.(v) = index.(v) then begin
      let id = !n_comp in
      incr n_comp;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- id;
            if w <> v then pop ()
      in
      pop ()
    end
  in
  Bitvec.iter (fun v -> if index.(v) = -1 then strongconnect v) live;
  (comp, !n_comp)

let max_sym_count (d : Dfa.t) ~sym =
  let live = Dfa.live d in
  if not (Bitvec.mem live d.Dfa.start) then `Empty
  else begin
    let comp, n_comp = scc_of_live d live in
    (* A sym-edge inside one SCC ⇒ a pumpable sym-cycle ⇒ unbounded. *)
    let unbounded = ref false in
    let cross : (int * int * int) list ref = ref [] in
    Bitvec.iter
      (fun q ->
        for a = 0 to d.Dfa.alpha_size - 1 do
          let t = Dfa.step d q a in
          if Bitvec.mem live t then
            if comp.(q) = comp.(t) then begin
              if a = sym then unbounded := true
            end
            else cross := (comp.(q), (if a = sym then 1 else 0), comp.(t)) :: !cross
        done)
      live;
    if !unbounded then `Unbounded
    else begin
      (* Longest sym-weighted path on the condensation DAG.  Tarjan
         numbers components in reverse topological order, so iterate
         components downward and relax outgoing edges. *)
      let adj = Array.make n_comp [] in
      List.iter (fun (s, w, t) -> adj.(s) <- (w, t) :: adj.(s)) !cross;
      let best = Array.make n_comp min_int in
      best.(comp.(d.Dfa.start)) <- 0;
      for c = n_comp - 1 downto 0 do
        if best.(c) > min_int then
          List.iter
            (fun (w, t) -> if best.(c) + w > best.(t) then best.(t) <- best.(c) + w)
            adj.(c)
      done;
      let answer = ref min_int in
      Bitvec.iter
        (fun q ->
          if d.Dfa.finals.(q) && best.(comp.(q)) > !answer then
            answer := best.(comp.(q)))
        live;
      if !answer = min_int then `Empty else `Bounded !answer
    end
  end

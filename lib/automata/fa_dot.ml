let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let dfa ?(name = "dfa") alpha (d : Dfa.t) =
  let buf = Buffer.create 1024 in
  let live = Dfa.live d in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string buf "  __start [shape=point];\n";
  for q = 0 to d.Dfa.size - 1 do
    let shape = if d.Dfa.finals.(q) then "doublecircle" else "circle" in
    let style = if Bitvec.mem live q then "solid" else "dashed" in
    Buffer.add_string buf
      (Printf.sprintf "  q%d [shape=%s, style=%s];\n" q shape style)
  done;
  Buffer.add_string buf (Printf.sprintf "  __start -> q%d;\n" d.Dfa.start);
  for q = 0 to d.Dfa.size - 1 do
    (* group symbols by target *)
    let groups = Hashtbl.create 8 in
    for a = 0 to d.Dfa.alpha_size - 1 do
      let t = Dfa.step d q a in
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups t) in
      Hashtbl.replace groups t (Alphabet.name alpha a :: prev)
    done;
    (* sort by target so equal automata render identically across runs *)
    Hashtbl.fold (fun t labels acc -> (t, labels) :: acc) groups []
    |> List.sort compare
    |> List.iter (fun (t, labels) ->
           Buffer.add_string buf
             (Printf.sprintf "  q%d -> q%d [label=\"%s\"];\n" q t
                (escape (String.concat "," (List.rev labels)))))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let nfa ?(name = "nfa") alpha (n : Nfa.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string buf "  __start [shape=point];\n";
  for q = 0 to n.Nfa.size - 1 do
    let shape = if n.Nfa.finals.(q) then "doublecircle" else "circle" in
    Buffer.add_string buf (Printf.sprintf "  q%d [shape=%s];\n" q shape)
  done;
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "  __start -> q%d;\n" s))
    n.Nfa.starts;
  for q = 0 to n.Nfa.size - 1 do
    Array.iteri
      (fun a dsts ->
        List.iter
          (fun t ->
            Buffer.add_string buf
              (Printf.sprintf "  q%d -> q%d [label=\"%s\"];\n" q t
                 (escape (Alphabet.name alpha a))))
          dsts)
      n.Nfa.delta.(q);
    List.iter
      (fun t ->
        Buffer.add_string buf
          (Printf.sprintf "  q%d -> q%d [label=\"ε\", style=dashed];\n" q t))
      n.Nfa.eps.(q)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Nondeterministic finite automata with ε-transitions.

    NFAs are the construction-side representation: regular expressions
    compile here (Thompson's construction), and the language-level
    combinators that are awkward on DFAs (concatenation, star, reversal,
    multi-start quotients) are phrased as NFA surgery before
    determinization. *)

type t = {
  alpha_size : int;
  size : int;
  starts : int list;
  finals : bool array;
  delta : int list array array;  (** [delta.(q).(a)] = successors *)
  eps : int list array;  (** ε-successors *)
}

val validate : t -> unit
(** Check internal consistency (state indices in range, array shapes).
    @raise Invalid_argument when malformed. *)

(** {1 Construction} *)

val of_regex : Alphabet.t -> Regex.t -> t
(** Thompson's construction.  Handles the plain fragment (∅, ε, classes,
    union, concatenation, star); negated classes are resolved against the
    alphabet.  @raise Invalid_argument on boolean nodes
    ([Inter]/[Diff]/[Compl]) — those are compiled at the {!Lang} level. *)

val word : alpha_size:int -> int array -> t
(** The singleton language of a word. *)

val union : t -> t -> t
val concat : t -> t -> t
val star : t -> t
val reverse : t -> t
(** Language reversal: flip all edges, swap starts and finals. *)

val with_starts : t -> int list -> t

(** {1 Queries} *)

val eps_closure : t -> Bitvec.t -> unit
(** Saturate the given state set under ε-transitions, in place. *)

val accepts : t -> int array -> bool
(** Membership by on-the-fly subset simulation. *)

val pp : Format.formatter -> t -> unit

(** Subset construction: NFA → complete DFA.

    Only the reachable subsets are materialized; the empty subset plays
    the role of the sink, so the result is always complete. *)

val run : Nfa.t -> Dfa.t

val state_count_bound : Nfa.t -> int
(** [2^size] capped at [max_int] — the theoretical bound quoted when
    reporting the PSPACE experiment (E3). *)

type t = {
  alpha_size : int;
  size : int;
  starts : int list;
  finals : bool array;
  delta : int list array array;
  eps : int list array;
}

let validate t =
  let bad msg = invalid_arg ("Nfa.validate: " ^ msg) in
  if t.size < 0 then bad "negative size";
  if Array.length t.finals <> t.size then bad "finals length";
  if Array.length t.delta <> t.size then bad "delta length";
  if Array.length t.eps <> t.size then bad "eps length";
  let check_state q = if q < 0 || q >= t.size then bad "state out of range" in
  List.iter check_state t.starts;
  Array.iter
    (fun row ->
      if Array.length row <> t.alpha_size then bad "delta row length";
      Array.iter (List.iter check_state) row)
    t.delta;
  Array.iter (List.iter check_state) t.eps

(* A mutable builder: states are allocated sequentially, edges appended. *)
module Builder = struct
  type b = {
    k : int;
    mutable n : int;
    mutable edges : (int * int * int) list;  (* src, sym, dst *)
    mutable eps_edges : (int * int) list;
  }

  let create k = { k; n = 0; edges = []; eps_edges = [] }

  let fresh b =
    let q = b.n in
    b.n <- b.n + 1;
    q

  let edge b src sym dst = b.edges <- (src, sym, dst) :: b.edges
  let eps b src dst = b.eps_edges <- (src, dst) :: b.eps_edges

  let finish b ~starts ~finals =
    let delta = Array.init b.n (fun _ -> Array.make b.k []) in
    List.iter (fun (s, a, d) -> delta.(s).(a) <- d :: delta.(s).(a)) b.edges;
    let eps = Array.make b.n [] in
    List.iter (fun (s, d) -> eps.(s) <- d :: eps.(s)) b.eps_edges;
    let fin = Array.make b.n false in
    List.iter (fun q -> fin.(q) <- true) finals;
    { alpha_size = b.k; size = b.n; starts; finals = fin; delta; eps }
end

let cls_symbols k neg syms =
  if neg then
    List.filter (fun a -> not (Symset.mem a syms)) (List.init k Fun.id)
  else Symset.elements syms

let of_regex alpha re =
  let k = Alphabet.size alpha in
  let b = Builder.create k in
  (* Returns (entry, exit); Thompson fragments have a single entry and a
     single exit, no edges leaving the exit except those we add. *)
  let rec go re =
    let entry = Builder.fresh b and exit_ = Builder.fresh b in
    (match re with
    | Regex.Empty -> ()
    | Regex.Eps -> Builder.eps b entry exit_
    | Regex.Cls { neg; syms } ->
        List.iter
          (fun a -> Builder.edge b entry a exit_)
          (cls_symbols k neg syms)
    | Regex.Alt (x, y) ->
        let ex, xx = go x and ey, xy = go y in
        Builder.eps b entry ex;
        Builder.eps b entry ey;
        Builder.eps b xx exit_;
        Builder.eps b xy exit_
    | Regex.Cat (x, y) ->
        let ex, xx = go x and ey, xy = go y in
        Builder.eps b entry ex;
        Builder.eps b xx ey;
        Builder.eps b xy exit_
    | Regex.Star x ->
        let ex, xx = go x in
        Builder.eps b entry exit_;
        Builder.eps b entry ex;
        Builder.eps b xx ex;
        Builder.eps b xx exit_
    | Regex.Inter _ | Regex.Diff _ | Regex.Compl _ ->
        invalid_arg
          "Nfa.of_regex: boolean operator — compile via Lang.of_regex");
    (entry, exit_)
  in
  let entry, exit_ = go re in
  Builder.finish b ~starts:[ entry ] ~finals:[ exit_ ]

let word ~alpha_size w =
  let n = Array.length w in
  let delta = Array.init (n + 1) (fun _ -> Array.make alpha_size []) in
  Array.iteri (fun i a -> delta.(i).(a) <- [ i + 1 ]) w;
  let finals = Array.make (n + 1) false in
  finals.(n) <- true;
  {
    alpha_size;
    size = n + 1;
    starts = [ 0 ];
    finals;
    delta;
    eps = Array.make (n + 1) [];
  }

(* Disjoint union of state spaces: [b]'s states are shifted by [a.size]. *)
let juxtapose a b =
  if a.alpha_size <> b.alpha_size then invalid_arg "Nfa: alphabet mismatch";
  let n = a.size + b.size in
  let shift l = List.map (fun q -> q + a.size) l in
  let delta =
    Array.init n (fun q ->
        if q < a.size then Array.copy a.delta.(q)
        else Array.map shift b.delta.(q - a.size))
  in
  let eps =
    Array.init n (fun q ->
        if q < a.size then a.eps.(q) else shift b.eps.(q - a.size))
  in
  let finals =
    Array.init n (fun q ->
        if q < a.size then a.finals.(q) else b.finals.(q - a.size))
  in
  (delta, eps, finals, shift)

let union a b =
  let delta, eps, finals, shift = juxtapose a b in
  {
    alpha_size = a.alpha_size;
    size = a.size + b.size;
    starts = a.starts @ shift b.starts;
    finals;
    delta;
    eps;
  }

let concat a b =
  let delta, eps, finals, shift = juxtapose a b in
  let b_starts = shift b.starts in
  (* ε from every final of [a] to every start of [b]; a-finals demoted. *)
  Array.iteri
    (fun q f -> if q < a.size && f then eps.(q) <- b_starts @ eps.(q))
    finals;
  for q = 0 to a.size - 1 do
    finals.(q) <- false
  done;
  {
    alpha_size = a.alpha_size;
    size = a.size + b.size;
    starts = a.starts;
    finals;
    delta;
    eps;
  }

let star a =
  (* Fresh state that is both start and final, looped around [a]. *)
  let n = a.size + 1 in
  let hub = a.size in
  let delta =
    Array.init n (fun q ->
        if q < a.size then Array.copy a.delta.(q)
        else Array.make a.alpha_size [])
  in
  let eps =
    Array.init n (fun q ->
        if q < a.size then
          if a.finals.(q) then hub :: a.eps.(q) else a.eps.(q)
        else a.starts)
  in
  let finals = Array.init n (fun q -> q = hub) in
  { alpha_size = a.alpha_size; size = n; starts = [ hub ]; finals; delta; eps }

let reverse a =
  let delta = Array.init a.size (fun _ -> Array.make a.alpha_size []) in
  Array.iteri
    (fun q row ->
      Array.iteri
        (fun sym dsts -> List.iter (fun d -> delta.(d).(sym) <- q :: delta.(d).(sym)) dsts)
        row)
    a.delta;
  let eps = Array.make a.size [] in
  Array.iteri (fun q l -> List.iter (fun d -> eps.(d) <- q :: eps.(d)) l) a.eps;
  let finals = Array.make a.size false in
  List.iter (fun q -> finals.(q) <- true) a.starts;
  let starts =
    List.filteri (fun _ _ -> true)
      (List.filter (fun q -> a.finals.(q)) (List.init a.size Fun.id))
  in
  { a with starts; finals; delta; eps }

let with_starts a starts =
  List.iter
    (fun q -> if q < 0 || q >= a.size then invalid_arg "Nfa.with_starts")
    starts;
  { a with starts }

let eps_closure t set =
  let stack = ref (Bitvec.elements set) in
  let rec loop () =
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        List.iter
          (fun d ->
            if not (Bitvec.mem set d) then begin
              Bitvec.set set d;
              stack := d :: !stack
            end)
          t.eps.(q);
        loop ()
  in
  loop ()

let accepts t w =
  let cur = Bitvec.of_list t.size t.starts in
  eps_closure t cur;
  let cur = ref cur in
  Array.iter
    (fun a ->
      let next = Bitvec.create t.size in
      Bitvec.iter
        (fun q -> List.iter (Bitvec.set next) t.delta.(q).(a))
        !cur;
      eps_closure t next;
      cur := next)
    w;
  Bitvec.exists (fun q -> t.finals.(q)) !cur

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>nfa: %d states, starts=%a@," t.size
    (pp_print_list ~pp_sep:pp_print_space pp_print_int)
    t.starts;
  for q = 0 to t.size - 1 do
    fprintf ppf "  %d%s:" q (if t.finals.(q) then "*" else "");
    Array.iteri
      (fun a dsts ->
        List.iter (fun d -> fprintf ppf " %d->%d" a d) dsts)
      t.delta.(q);
    List.iter (fun d -> fprintf ppf " ε->%d" d) t.eps.(q);
    fprintf ppf "@,"
  done;
  fprintf ppf "@]"

(** The boolean/decision algebra on complete DFAs, plus the two paper
    -specific constructions: language factoring (Def 5.1) and the finite
    sequence filtering operator (Def 6.1).

    Results are {e not} minimized here — callers ({!Lang}) minimize. *)

(** {1 Boolean combinations} *)

val product : (bool -> bool -> bool) -> Dfa.t -> Dfa.t -> Dfa.t
(** Reachable product automaton with finals combined by the given
    connective.  @raise Invalid_argument on alphabet-size mismatch. *)

val inter : Dfa.t -> Dfa.t -> Dfa.t
val union : Dfa.t -> Dfa.t -> Dfa.t
val difference : Dfa.t -> Dfa.t -> Dfa.t
val symdiff : Dfa.t -> Dfa.t -> Dfa.t

(** {1 Decision procedures} *)

val is_empty : Dfa.t -> bool
val is_universal : Dfa.t -> bool
val includes : Dfa.t -> Dfa.t -> bool
(** [includes a b] ⇔ L(b) ⊆ L(a). *)

val equivalent : Dfa.t -> Dfa.t -> bool

val shortest_accepted : Dfa.t -> int array option
(** A shortest word in the language, if any (BFS). *)

val shortest_rejected : Dfa.t -> int array option
(** A shortest word {e not} in the language — a non-universality witness. *)

val shortest_in_difference : Dfa.t -> Dfa.t -> int array option
(** Shortest word in [L(a) − L(b)]. *)

(** {1 Language operations} *)

val reverse : Dfa.t -> Dfa.t

val suffix_quotient : Dfa.t -> Dfa.t -> Dfa.t
(** [suffix_quotient a b] = [a / b] = {α | ∃β ∈ L(b). α·β ∈ L(a)}
    (Def 5.1).  Same transition structure as [a], re-marked finals. *)

val prefix_quotient : Dfa.t -> Dfa.t -> Dfa.t
(** [prefix_quotient b a] = [b \ a] = {α | ∃β ∈ L(b). β·α ∈ L(a)}
    (Def 5.1). *)

val filter_count : Dfa.t -> sym:int -> int -> Dfa.t
(** [filter_count a ~sym:p n] = [a ‖_p^n]: words of [L(a)] containing
    exactly [n] occurrences of [p] (Def 6.1). *)

val max_sym_count : Dfa.t -> sym:int -> [ `Empty | `Bounded of int | `Unbounded ]
(** Supremum of the number of [sym] occurrences over accepted words:
    the boundedness analysis behind Lemma 6.4(4–5) and the precondition
    of Algorithm 6.2. *)

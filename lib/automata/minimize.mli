(** DFA minimization.

    {!hopcroft} is the production path (O(k·n·log n)); {!moore} is the
    simple O(k·n²) refinement kept as an independently-implemented
    cross-check (property tests assert both produce the same automaton).
    Both first restrict to reachable states and return a canonical
    ({!Dfa.canonicalize}d) complete minimal DFA, so structural equality
    of results coincides with language equality. *)

val hopcroft : Dfa.t -> Dfa.t
val moore : Dfa.t -> Dfa.t

val minimize : Dfa.t -> Dfa.t
(** Alias for {!hopcroft}. *)

(** DFA → regular expression via GNFA state elimination.

    Used to render synthesized languages (the outputs of Algorithm 6.2 and
    pivot maximization) back as readable extraction expressions.  The
    result is language-equivalent to the input but not syntactically
    minimal; elimination order is chosen by a degree heuristic and the
    {!Regex} smart constructors absorb the easy redundancies (single-symbol
    unions become classes, ε/∅ units disappear). *)

val to_regex : Dfa.t -> Regex.t

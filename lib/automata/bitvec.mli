(** Dense mutable bit vectors, used as NFA state sets during subset
    construction.  Width is fixed at creation; the [bytes] payload doubles
    as a hashable key for determinization. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [{0, …, n-1}]. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val is_empty : t -> bool
val copy : t -> t
val union_into : t -> t -> unit
(** [union_into dst src] adds all of [src] to [dst]. *)

val inter : t -> t -> t
val equal : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val cardinal : t -> int
val of_list : int -> int list -> t

val key : t -> string
(** A string usable as a hash key; equal sets have equal keys. *)

val exists : (int -> bool) -> t -> bool

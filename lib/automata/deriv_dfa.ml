module RMap = Map.Make (struct
  type t = Regex.t

  let compare = Regex.compare
end)

let explore alpha re =
  let k = Alphabet.size alpha in
  let ids = ref RMap.empty in
  let states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern e =
    match RMap.find_opt e !ids with
    | Some id -> id
    | None ->
        let id = !count in
        incr count;
        ids := RMap.add e id !ids;
        states := e :: !states;
        Queue.add (id, e) queue;
        id
  in
  let start = intern re in
  let rows = ref [] in
  while not (Queue.is_empty queue) do
    let _, e = Queue.pop queue in
    let row = Array.init k (fun a -> intern (Regex.deriv a e)) in
    rows := row :: !rows
  done;
  (start, List.rev !states, List.rev !rows)

let of_regex alpha re =
  let k = Alphabet.size alpha in
  let start, states, rows = explore alpha re in
  let size = List.length states in
  let delta = Array.make (size * k) 0 in
  List.iteri
    (fun q row -> Array.iteri (fun a d -> delta.((q * k) + a) <- d) row)
    rows;
  let finals =
    Array.of_list (List.map Regex.nullable states)
  in
  let d = { Dfa.alpha_size = k; size; start; finals; delta } in
  Dfa.validate d;
  d

let state_regexes alpha re =
  let _, states, _ = explore alpha re in
  states

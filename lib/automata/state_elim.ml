(* GNFA over states {0 = new start, 1..n = DFA states, n+1 = new final}
   with regex-labelled edges stored in a dense matrix ([Empty] = no edge). *)

let to_regex (d : Dfa.t) : Regex.t =
  let live = Dfa.live d in
  if not (Bitvec.mem live d.Dfa.start) then Regex.empty
  else begin
    let states = Bitvec.elements live in
    let n = List.length states in
    let id_of = Hashtbl.create (2 * n) in
    List.iteri (fun i q -> Hashtbl.add id_of q (i + 1)) states;
    let total = n + 2 in
    let start = 0 and final = n + 1 in
    let m = Array.make (total * total) Regex.empty in
    let get i j = m.((i * total) + j) in
    let set i j e = m.((i * total) + j) <- e in
    let add i j e = set i j (Regex.alt (get i j) e) in
    List.iter
      (fun q ->
        let i = Hashtbl.find id_of q in
        for a = 0 to d.Dfa.alpha_size - 1 do
          let t = Dfa.step d q a in
          if Bitvec.mem live t then add i (Hashtbl.find id_of t) (Regex.sym a)
        done;
        if d.Dfa.finals.(q) then add i final Regex.eps)
      states;
    add start (Hashtbl.find id_of d.Dfa.start) Regex.eps;
    let alive = Array.make total true in
    (* Eliminate interior states cheapest-first (in-degree × out-degree). *)
    let cost k =
      let indeg = ref 0 and outdeg = ref 0 in
      for i = 0 to total - 1 do
        if alive.(i) && i <> k then begin
          if get i k <> Regex.empty then incr indeg;
          if get k i <> Regex.empty then incr outdeg
        end
      done;
      !indeg * !outdeg
    in
    for _ = 1 to n do
      let best = ref (-1) and best_cost = ref max_int in
      for k = 1 to n do
        if alive.(k) then begin
          let c = cost k in
          if c < !best_cost then begin
            best := k;
            best_cost := c
          end
        end
      done;
      let k = !best in
      let loop = Regex.star (get k k) in
      for i = 0 to total - 1 do
        if alive.(i) && i <> k && get i k <> Regex.empty then
          for j = 0 to total - 1 do
            if alive.(j) && j <> k && get k j <> Regex.empty then
              add i j (Regex.cat_list [ get i k; loop; get k j ])
          done
      done;
      alive.(k) <- false;
      for i = 0 to total - 1 do
        set i k Regex.empty;
        set k i Regex.empty
      done
    done;
    get start final
  end

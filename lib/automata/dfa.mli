(** Complete deterministic finite automata.

    Every DFA in this codebase is {e complete}: the transition function is
    total (a sink state is materialized where needed).  This makes
    complementation a finals-flip and keeps the product constructions
    simple, at the cost of carrying an explicit dead state. *)

type t = {
  alpha_size : int;
  size : int;
  start : int;
  finals : bool array;
  delta : int array;  (** row-major: [delta.(q * alpha_size + a)] *)
}

val validate : t -> unit

val step : t -> int -> int -> int
(** [step d q a] — one transition. *)

val unsafe_step : t -> int -> int -> int
(** [step] without bounds checks.  Only sound on a DFA that has passed
    {!validate} (all delta targets in range), with [0 <= q < size] and
    [0 <= a < alpha_size] — under those invariants a loop seeded with
    [start] can only ever reach in-range states, so the caller need
    only bound-check its {e symbols}.  The matcher hot path
    ([Extraction.matcher_splits]) is the intended user. *)

val run : t -> int array -> int
(** State reached from the start on a word. *)

val run_from : t -> int -> int array -> int
val accepts : t -> int array -> bool

val trivial : alpha_size:int -> bool -> t
(** One-state DFA: Σ* when [true], ∅ when [false]. *)

val reachable : t -> Bitvec.t
(** States reachable from the start. *)

val coreachable : t -> Bitvec.t
(** States from which some final state is reachable. *)

val live : t -> Bitvec.t
(** Reachable ∧ co-reachable. *)

val restrict_states : t -> Bitvec.t -> t option
(** Keep only the given states (must include the start to return [Some]);
    missing transitions are routed to a fresh sink, keeping the result
    complete.  Returns [None] if the start state is excluded (empty
    language); callers usually substitute [trivial ~alpha_size false]. *)

val with_finals : t -> bool array -> t
val complement : t -> t

val map_states : t -> int array -> int -> t
(** [map_states d perm new_size]: rename state [q] to [perm.(q)]
    (a surjection onto [0..new_size-1] compatible with the transition
    structure).  Used by minimization and canonicalization. *)

val canonicalize : t -> t
(** BFS-renumber states from the start (symbol order).  Two minimal
    complete DFAs accept the same language iff their canonical forms are
    structurally equal. *)

val equal_structure : t -> t -> bool

val to_nfa : t -> Nfa.t

val pp : Format.formatter -> t -> unit

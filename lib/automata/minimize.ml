(* Both algorithms assume a complete DFA.  Step 1 restricts to reachable
   states (keeping completeness via Dfa.restrict_states' sink); step 2
   refines the {final, non-final} partition; step 3 quotients and
   canonicalizes. *)

let reachable_part (d : Dfa.t) : Dfa.t =
  let reach = Dfa.reachable d in
  if Bitvec.cardinal reach = d.Dfa.size then d
  else
    match Dfa.restrict_states d reach with
    | Some d' -> d'
    | None -> assert false (* start is always reachable *)

let quotient (d : Dfa.t) (cls : int array) : Dfa.t =
  let n_cls = 1 + Array.fold_left max (-1) cls in
  let q = Dfa.map_states d cls n_cls in
  Dfa.canonicalize q

(* Moore: iterate "split by (class, successor classes) signature". *)
let moore d =
  let d = reachable_part d in
  let n = d.Dfa.size and k = d.Dfa.alpha_size in
  let cls = Array.map (fun f -> if f then 1 else 0) d.Dfa.finals in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Each refinement pass touches every state once. *)
    Guard.charge ~stage:"minimize" n;
    let sig_table : (int list, int) Hashtbl.t = Hashtbl.create (2 * n) in
    let next_cls = Array.make n 0 in
    let next_id = ref 0 in
    for q = 0 to n - 1 do
      let signature =
        cls.(q)
        :: List.init k (fun a -> cls.(Dfa.step d q a))
      in
      let id =
        match Hashtbl.find_opt sig_table signature with
        | Some id -> id
        | None ->
            let id = !next_id in
            incr next_id;
            Hashtbl.add sig_table signature id;
            id
      in
      next_cls.(q) <- id
    done;
    if !next_id > 1 + Array.fold_left max (-1) cls then changed := true;
    (* Also detect pure relabelings that change nothing: compare the
       induced partitions via class counts. *)
    if not !changed then begin
      (* Same number of classes: check the partition is unchanged. *)
      let same = ref true in
      let repr : (int, int) Hashtbl.t = Hashtbl.create n in
      for q = 0 to n - 1 do
        match Hashtbl.find_opt repr cls.(q) with
        | None -> Hashtbl.add repr cls.(q) next_cls.(q)
        | Some c -> if c <> next_cls.(q) then same := false
      done;
      if not !same then changed := true
    end;
    Array.blit next_cls 0 cls 0 n
  done;
  quotient d cls

(* Hopcroft's partition-refinement algorithm. *)
let hopcroft d =
  let d = reachable_part d in
  let n = d.Dfa.size and k = d.Dfa.alpha_size in
  (* Predecessor lists per symbol. *)
  let preds = Array.make (n * k) [] in
  for q = 0 to n - 1 do
    for a = 0 to k - 1 do
      let t = Dfa.step d q a in
      preds.((t * k) + a) <- q :: preds.((t * k) + a)
    done
  done;
  (* Partition as an array of blocks; each state knows its block. *)
  let block_of = Array.make n 0 in
  let blocks : int list array ref = ref (Array.make (2 * n + 2) []) in
  let block_size = ref (Array.make (2 * n + 2) 0) in
  let n_blocks = ref 0 in
  let add_block members =
    Guard.charge ~stage:"minimize" 1;
    let id = !n_blocks in
    incr n_blocks;
    if id >= Array.length !blocks then begin
      let nb = Array.make (2 * Array.length !blocks) [] in
      Array.blit !blocks 0 nb 0 (Array.length !blocks);
      blocks := nb;
      let ns = Array.make (2 * Array.length !block_size) 0 in
      Array.blit !block_size 0 ns 0 (Array.length !block_size);
      block_size := ns
    end;
    !blocks.(id) <- members;
    !block_size.(id) <- List.length members;
    List.iter (fun q -> block_of.(q) <- id) members;
    id
  in
  let finals, nonfinals =
    List.partition (fun q -> d.Dfa.finals.(q)) (List.init n Fun.id)
  in
  let worklist = Queue.create () in
  (* (block, symbol) pairs currently pending; Gries' bookkeeping: when a
     block that is itself pending gets split, BOTH halves must be pending,
     otherwise the smaller half suffices. *)
  let in_w : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let push b a =
    if not (Hashtbl.mem in_w (b, a)) then begin
      Hashtbl.add in_w (b, a) ();
      Queue.add (b, a) worklist
    end
  in
  (match (finals, nonfinals) with
  | [], _ | _, [] ->
      ignore (add_block (finals @ nonfinals))
  | _ ->
      let bf = add_block finals in
      let bn = add_block nonfinals in
      let smaller = if List.length finals <= List.length nonfinals then bf else bn in
      for a = 0 to k - 1 do
        push smaller a
      done);
  while not (Queue.is_empty worklist) do
    let splitter, a = Queue.pop worklist in
    Guard.charge ~stage:"minimize" 1;
    Hashtbl.remove in_w (splitter, a);
    (* X = states with an a-transition into the splitter block. *)
    let x = Hashtbl.create 16 in
    List.iter
      (fun q -> List.iter (fun p -> Hashtbl.replace x p ()) preds.((q * k) + a))
      !blocks.(splitter);
    if Hashtbl.length x > 0 then begin
      (* Group the X-states by their current block. *)
      let touched : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
      Hashtbl.iter
        (fun q () ->
          let b = block_of.(q) in
          match Hashtbl.find_opt touched b with
          | Some l -> l := q :: !l
          | None -> Hashtbl.add touched b (ref [ q ]))
        x;
      Hashtbl.iter
        (fun b inb ->
          let in_count = List.length !inb in
          if in_count < !block_size.(b) then begin
            (* Split block b into (b ∩ X) and (b \ X). *)
            let inx = !inb in
            let outx =
              List.filter (fun q -> not (Hashtbl.mem x q)) !blocks.(b)
            in
            !blocks.(b) <- outx;
            !block_size.(b) <- List.length outx;
            let nb = add_block inx in
            let small = if List.length inx <= List.length outx then nb else b in
            for c = 0 to k - 1 do
              if Hashtbl.mem in_w (b, c) then push nb c else push small c
            done
          end)
        touched
    end
  done;
  quotient d block_of

(* The production entry point is spanned; [moore] and [hopcroft] stay
   bare so the differential tests comparing them time only one side. *)
let minimize d =
  let sp = Obs.Span.enter Obs.Span.Minimize in
  try
    let r = hopcroft d in
    Obs.Span.exit_n sp r.Dfa.size;
    r
  with e ->
    Obs.Span.fail sp;
    raise e

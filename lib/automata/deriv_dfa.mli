(** Brzozowski-derivative DFA construction.

    A third, independent route from expressions to automata (besides
    Thompson+subset and the boolean compilation in {!Lang}): states are
    derivative expressions themselves, normalized up to the ACI laws of
    union by the {!Regex} smart constructors — which is exactly the
    normalization Brzozowski's finiteness theorem requires.  Unlike
    Thompson's construction this handles the boolean operators
    ([&], [-], [~]) natively, with no product constructions.

    Used as a cross-check engine in the property tests (all three
    pipelines must produce language-equal automata) and as the natural
    choice for one-shot membership on extended expressions. *)

val of_regex : Alphabet.t -> Regex.t -> Dfa.t
(** Complete DFA whose states are the reachable derivatives.  Not
    minimal in general (derivative-equality is coarser than language
    equality); minimize with {!Minimize.minimize} if needed. *)

val state_regexes : Alphabet.t -> Regex.t -> Regex.t list
(** The distinct derivatives explored (diagnostic / test helper). *)

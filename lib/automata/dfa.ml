type t = {
  alpha_size : int;
  size : int;
  start : int;
  finals : bool array;
  delta : int array;
}

let validate t =
  let bad msg = invalid_arg ("Dfa.validate: " ^ msg) in
  if t.size <= 0 then bad "size must be positive (complete DFA)";
  if t.start < 0 || t.start >= t.size then bad "start out of range";
  if Array.length t.finals <> t.size then bad "finals length";
  if Array.length t.delta <> t.size * t.alpha_size then bad "delta length";
  Array.iter (fun q -> if q < 0 || q >= t.size then bad "target out of range") t.delta

let step t q a = t.delta.((q * t.alpha_size) + a)

(* Bounds-check-free transition for validated DFAs on validated inputs:
   [validate] guarantees every delta target is in [0, size), so a loop
   that starts from [start] and checks only its *symbols* stays in
   range forever. *)
let unsafe_step t q a = Array.unsafe_get t.delta ((q * t.alpha_size) + a)

let run_from t q w =
  let q = ref q in
  Array.iter (fun a -> q := step t !q a) w;
  !q

let run t w = run_from t t.start w
let accepts t w = t.finals.(run t w)

let trivial ~alpha_size accept =
  {
    alpha_size;
    size = 1;
    start = 0;
    finals = [| accept |];
    delta = Array.make alpha_size 0;
  }

let reachable t =
  let seen = Bitvec.create t.size in
  Bitvec.set seen t.start;
  let stack = ref [ t.start ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        for a = 0 to t.alpha_size - 1 do
          let d = step t q a in
          if not (Bitvec.mem seen d) then begin
            Bitvec.set seen d;
            stack := d :: !stack
          end
        done;
        loop ()
  in
  loop ();
  seen

let coreachable t =
  (* Reverse adjacency, then BFS from final states. *)
  let preds = Array.make t.size [] in
  for q = 0 to t.size - 1 do
    for a = 0 to t.alpha_size - 1 do
      let d = step t q a in
      preds.(d) <- q :: preds.(d)
    done
  done;
  let seen = Bitvec.create t.size in
  let stack = ref [] in
  Array.iteri
    (fun q f ->
      if f then begin
        Bitvec.set seen q;
        stack := q :: !stack
      end)
    t.finals;
  let rec loop () =
    match !stack with
    | [] -> ()
    | q :: rest ->
        stack := rest;
        List.iter
          (fun p ->
            if not (Bitvec.mem seen p) then begin
              Bitvec.set seen p;
              stack := p :: !stack
            end)
          preds.(q);
        loop ()
  in
  loop ();
  seen

let live t = Bitvec.inter (reachable t) (coreachable t)

let restrict_states t keep =
  if not (Bitvec.mem keep t.start) then None
  else begin
    let n_keep = Bitvec.cardinal keep in
    let rename = Array.make t.size (-1) in
    let next = ref 0 in
    Bitvec.iter
      (fun q ->
        rename.(q) <- !next;
        incr next)
      keep;
    let sink = n_keep in
    let size = n_keep + 1 in
    let delta = Array.make (size * t.alpha_size) sink in
    let finals = Array.make size false in
    Bitvec.iter
      (fun q ->
        finals.(rename.(q)) <- t.finals.(q);
        for a = 0 to t.alpha_size - 1 do
          let d = step t q a in
          if Bitvec.mem keep d then
            delta.((rename.(q) * t.alpha_size) + a) <- rename.(d)
        done)
      keep;
    Some
      {
        alpha_size = t.alpha_size;
        size;
        start = rename.(t.start);
        finals;
        delta;
      }
  end

let with_finals t finals =
  if Array.length finals <> t.size then invalid_arg "Dfa.with_finals";
  { t with finals = Array.copy finals }

let complement t = { t with finals = Array.map not t.finals }

let map_states t perm new_size =
  let delta = Array.make (new_size * t.alpha_size) (-1) in
  let finals = Array.make new_size false in
  for q = 0 to t.size - 1 do
    let q' = perm.(q) in
    finals.(q') <- finals.(q') || t.finals.(q);
    for a = 0 to t.alpha_size - 1 do
      delta.((q' * t.alpha_size) + a) <- perm.(step t q a)
    done
  done;
  let r =
    { alpha_size = t.alpha_size; size = new_size; start = perm.(t.start); finals; delta }
  in
  validate r;
  r

let canonicalize t =
  (* Assumes all states reachable (minimization guarantees this). *)
  let order = Array.make t.size (-1) in
  let next = ref 0 in
  let assign q =
    if order.(q) = -1 then begin
      order.(q) <- !next;
      incr next;
      true
    end
    else false
  in
  let queue = Queue.create () in
  ignore (assign t.start);
  Queue.add t.start queue;
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    for a = 0 to t.alpha_size - 1 do
      let d = step t q a in
      if assign d then Queue.add d queue
    done
  done;
  if !next <> t.size then
    invalid_arg "Dfa.canonicalize: unreachable states present";
  map_states t order t.size

let equal_structure a b =
  a.alpha_size = b.alpha_size && a.size = b.size && a.start = b.start
  && a.finals = b.finals && a.delta = b.delta

let to_nfa t =
  let delta =
    Array.init t.size (fun q ->
        Array.init t.alpha_size (fun a -> [ step t q a ]))
  in
  {
    Nfa.alpha_size = t.alpha_size;
    size = t.size;
    starts = [ t.start ];
    finals = Array.copy t.finals;
    delta;
    eps = Array.make t.size [];
  }

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>dfa: %d states, start=%d@," t.size t.start;
  for q = 0 to t.size - 1 do
    fprintf ppf "  %d%s:" q (if t.finals.(q) then "*" else "");
    for a = 0 to t.alpha_size - 1 do
      fprintf ppf " %d->%d" a (step t q a)
    done;
    fprintf ppf "@,"
  done;
  fprintf ppf "@]"

(** Partial-order laws for the resilience order [≼] (Defn 4.4).

    [≼] is what "more resilient" {e means} in this system, and
    {!Synthesis.maximize} promises to move up it; these tests check it
    is actually a partial order (reflexive, transitive on constructed
    containment chains, antisymmetric up to language equivalence), that
    it implies containment of parsed languages, and that
    [strictly_below] is a strict order compatible with it. *)

val tests : count:int -> QCheck.Test.t list

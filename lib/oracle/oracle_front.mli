(** Differential oracles for the fused page front-end.

    The fused pass ([Front]) must be {e observationally identical} to
    the materializing pipeline it replaces — lex → tree → tag sequence
    → matcher — on every input string: same symbol sequence, same
    extracted node path, same first unknown symbol, wherever the chunk
    boundaries fall and at every job count of the raw batch API.  The
    alphabet class compression it matches through is checked sound:
    replacing symbols by same-class representatives never changes a
    split, the mark's class stays singleton, and class-space runs
    answer exactly the symbol-space positions. *)

val tests : count:int -> QCheck.Test.t list

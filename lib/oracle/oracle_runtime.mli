(** Differential oracles for the compiled-extraction runtime.

    The cached pipeline ({!Runtime}, {!Lang_cache}, {!Regex_hc}) claims
    to be {e observationally identical} to the direct [lib/core] path.
    These tests check exactly that, on the shared generator corpus
    ({!Oracle_gen}): each case computes an answer with every cache
    disabled, then again through the warm caches (twice — the second
    round is all hits), and demands byte-identical results — booleans,
    verdict constructors, witness words, and quotient DFAs alike.  Also
    covers the hash-consing invariants and the batch scheduler's
    jobs-invariance. *)

val tests : count:int -> QCheck.Test.t list

(* Properties of the budgeted-execution layer.  Where a property is
   about fuel accounting itself (monotonicity), the memo caches are
   disabled — a warm cache answers for free and would make the ladder
   vacuous; where it is about cache interaction (never caching
   Unknown), the caches are reset and left on. *)

let uncached f =
  Runtime.set_enabled false;
  Fun.protect ~finally:(fun () -> Runtime.set_enabled true) f

let with_faults site ~at f =
  Guard_faults.arm site ~at;
  Fun.protect ~finally:Guard_faults.disarm f

(* Small-to-ample fuel ladder: generator cases decide within a few
   thousand states, so the top rung always lands. *)
let fuel_ladder = [ 64; 256; 1024; 4096; 65536; max_int ]

let tests ~count =
  [
    QCheck.Test.make ~count
      ~name:"ample fuel: bounded ambiguity ≡ unbounded (Prop 5.4)"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let direct = Ambiguity.is_ambiguous e in
        let budget = Guard.Budget.make ~fuel:max_int () in
        Ambiguity.is_ambiguous_bounded ~budget e = Guard.Decided direct);
    QCheck.Test.make ~count
      ~name:"ample fuel: bounded maximality verdict ≡ unbounded (Cor 5.8)"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let direct = Maximality.check e in
        let budget = Guard.Budget.make ~fuel:max_int () in
        Maximality.check_bounded ~budget e = Guard.Decided direct);
    QCheck.Test.make ~count
      ~name:"fuel monotone: once Decided at F, every fuel ≥ F agrees"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        uncached (fun () ->
            let outcomes =
              List.map
                (fun fuel -> Guard.run ~fuel (fun () -> Maximality.check e))
                fuel_ladder
            in
            let rec monotone first = function
              | [] -> true
              | Guard.Unknown _ :: rest -> first = None && monotone None rest
              | Guard.Decided v :: rest -> (
                  match first with
                  | None -> monotone (Some v) rest
                  | Some v0 -> v = v0 && monotone first rest)
            in
            monotone None outcomes
            (* the max_int rung must decide *)
            && match List.rev outcomes with
               | Guard.Decided _ :: _ -> true
               | _ -> false));
    QCheck.Test.make ~count
      ~name:"injected faults: batch = fault-free run minus faulted indices"
      QCheck.(list small_int)
      (fun xs ->
        let f x = (x * 3) + 1 in
        let faulted =
          xs
          |> List.mapi (fun i x -> (i, x))
          |> List.filter (fun (_, x) -> x land 1 = 1)
          |> List.map fst
        in
        let clean = List.map (fun x -> Ok (f x)) xs in
        with_faults Guard_faults.Batch_item ~at:faulted (fun () ->
            List.for_all
              (fun jobs ->
                let got = Batch.map_isolated ~jobs f xs in
                List.length got = List.length clean
                && List.for_all2
                     (fun i (g, c) ->
                       if List.mem i faulted then Result.is_error g else g = c)
                     (List.mapi (fun i _ -> i) xs)
                     (List.combine got clean))
              [ 1; 2; 4 ]));
    QCheck.Test.make ~count
      ~name:"map_isolated ≡ map on fault-free functions, every job count"
      QCheck.(list small_int)
      (fun xs ->
        let f x = (x * 2) + 1 in
        let expect = List.map (fun x -> Ok (f x)) xs in
        List.for_all
          (fun jobs -> Batch.map_isolated ~jobs f xs = expect)
          [ 1; 2; 3; 4 ]);
    QCheck.Test.make ~count
      ~name:"exhausted verdicts are never cached: ample-fuel retry decides"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        Runtime.reset ();
        let direct = uncached (fun () -> Maximality.check e) in
        let tiny = Guard.Budget.make ~fuel:16 () in
        let first = Runtime.check_maximality_bounded ~budget:tiny e in
        let ample = Guard.Budget.make ~fuel:max_int () in
        let second = Runtime.check_maximality_bounded ~budget:ample e in
        (* the retry must decide and agree with the unbounded truth,
           whether or not the first attempt was served or exhausted *)
        second = Guard.Decided direct
        && match first with
           | Guard.Decided v -> v = direct
           | Guard.Unknown _ -> true);
  ]

(** Sized random generators and shrinkers for the differential oracles.

    Everything the oracle campaign ({!Oracle_harness}) and the QCheck
    test suites feed on is produced here: small random alphabets,
    words, plain and extended regular expressions, and extraction
    expressions.  All arbitraries carry printers (so counterexamples
    are readable) and shrinkers (so counterexamples are {e minimized}
    before being reported).

    Generators are deliberately biased toward the paper's regime: tiny
    alphabets (1–3 symbols drawn from [p q r]), expressions of ≤ 8 AST
    nodes, and words a DFA crosses in microseconds — the bugs the
    oracles hunt (wrong quotient finals, an off-by-one in [E‖_p^n],
    a bad minimization merge) all have counterexamples in that range. *)

(** {1 Core generators over a fixed alphabet} *)

val gen_alphabet : Alphabet.t QCheck.Gen.t
(** A random alphabet of 1–3 symbols named from [p q r], biased toward
    the paper's binary Σ = \{p, q\}. *)

val gen_word : Alphabet.t -> int -> Word.t QCheck.Gen.t
(** [gen_word alpha max_len] — uniform length ≤ [max_len], uniform
    symbols. *)

val gen_plain_regex : ?size:int -> Alphabet.t -> Regex.t QCheck.Gen.t
(** Star-height-unrestricted plain regexes (union, concat, star, opt,
    symbol classes); [size] bounds the AST node count (default 8). *)

val gen_ext_regex : ?size:int -> Alphabet.t -> Regex.t QCheck.Gen.t
(** Adds the extended connectives (intersection, difference,
    complement) on top of {!gen_plain_regex}. *)

val shrink_regex : Regex.t QCheck.Shrink.t
(** Structural shrinker: replaces a node by its subterms, [ε], or [∅],
    recursing into children.  Language-agnostic — any shrink of a
    failing instance is itself a candidate counterexample. *)

val shrink_word : Word.t QCheck.Shrink.t

val arb_plain_regex : Alphabet.t -> Regex.t QCheck.arbitrary
val arb_ext_regex : Alphabet.t -> Regex.t QCheck.arbitrary
val arb_word : Alphabet.t -> int -> Word.t QCheck.arbitrary

(** {1 Random-alphabet cases}

    Each case bundles its own freshly generated alphabet with the
    value(s) over it, so a campaign exercises unary, binary and ternary
    alphabets in one run.  Shrinking preserves the alphabet and
    shrinks the expression/word components. *)

val arb_lang_case : ?ext:bool -> unit -> (Alphabet.t * Regex.t) QCheck.arbitrary

val arb_lang2_case :
  ?ext:bool -> unit -> (Alphabet.t * Regex.t * Regex.t) QCheck.arbitrary

val arb_lang3_case :
  ?ext:bool -> unit -> (Alphabet.t * Regex.t * Regex.t * Regex.t) QCheck.arbitrary

val arb_member_case :
  ?ext:bool -> max_len:int -> unit -> (Alphabet.t * Regex.t * Word.t) QCheck.arbitrary

val arb_count_case : unit -> (Alphabet.t * Regex.t * int * int) QCheck.arbitrary
(** (alphabet, expression, counted symbol, n ≤ 3) — input to the
    [E‖_p^n] oracle. *)

val arb_extraction_case : unit -> Extraction.t QCheck.arbitrary
(** General [E1⟨p⟩E2] with plain random sides and a random mark. *)

val arb_extraction_word_case : unit -> (Extraction.t * Word.t) QCheck.arbitrary

val arb_bounded_case : unit -> Extraction.t QCheck.arbitrary
(** [E⟨p⟩Σ*] with ≤ 2 occurrences of the mark on the left — the class
    Algorithm 6.2 (and hence {!Synthesis.maximize}) is complete for. *)

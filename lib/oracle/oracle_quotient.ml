let tests ~count =
  let langs alpha a b = (Lang.of_regex alpha a, Lang.of_regex alpha b) in
  [
    QCheck.Test.make ~count ~name:"w ∈ A/B  ⇔  ({w}·B) ∩ A ≠ ∅"
      (Oracle_gen.arb_lang2_case ~ext:true ())
      (fun (alpha, a, b) ->
        let la, lb = langs alpha a b in
        let q = Lang.suffix_quotient la lb in
        Seq.for_all
          (fun w ->
            Lang.mem q w
            = not (Lang.is_empty (Lang.inter (Lang.concat (Lang.word alpha w) lb) la)))
          (Word.enumerate alpha 3));
    QCheck.Test.make ~count ~name:"w ∈ B\\A  ⇔  (B·{w}) ∩ A ≠ ∅"
      (Oracle_gen.arb_lang2_case ~ext:true ())
      (fun (alpha, a, b) ->
        let la, lb = langs alpha a b in
        let q = Lang.prefix_quotient lb la in
        Seq.for_all
          (fun w ->
            Lang.mem q w
            = not (Lang.is_empty (Lang.inter (Lang.concat lb (Lang.word alpha w)) la)))
          (Word.enumerate alpha 3));
    QCheck.Test.make ~count ~name:"reverse duality: (A/B)ʳ = Bʳ\\Aʳ"
      (Oracle_gen.arb_lang2_case ~ext:true ())
      (fun (alpha, a, b) ->
        let la, lb = langs alpha a b in
        Lang.equal
          (Lang.reverse (Lang.suffix_quotient la lb))
          (Lang.prefix_quotient (Lang.reverse lb) (Lang.reverse la)));
    QCheck.Test.make ~count ~name:"(A·B)/B ⊇ A when B ≠ ∅"
      (Oracle_gen.arb_lang2_case ())
      (fun (alpha, a, b) ->
        let la, lb = langs alpha a b in
        Lang.is_empty lb
        || Lang.subset la (Lang.suffix_quotient (Lang.concat la lb) lb));
    QCheck.Test.make ~count ~name:"B\\(B·A) ⊇ A when B ≠ ∅"
      (Oracle_gen.arb_lang2_case ())
      (fun (alpha, a, b) ->
        let la, lb = langs alpha a b in
        Lang.is_empty lb
        || Lang.subset la (Lang.prefix_quotient lb (Lang.concat lb la)));
    QCheck.Test.make ~count ~name:"quotients by ε are the identity"
      (Oracle_gen.arb_lang_case ~ext:true ())
      (fun (alpha, a) ->
        let la = Lang.of_regex alpha a in
        let eps = Lang.epsilon alpha in
        Lang.equal (Lang.suffix_quotient la eps) la
        && Lang.equal (Lang.prefix_quotient eps la) la);
    QCheck.Test.make ~count ~name:"A/(B ∪ C) = A/B ∪ A/C"
      (Oracle_gen.arb_lang3_case ())
      (fun (alpha, a, b, c) ->
        let la = Lang.of_regex alpha a in
        let lb = Lang.of_regex alpha b in
        let lc = Lang.of_regex alpha c in
        Lang.equal
          (Lang.suffix_quotient la (Lang.union lb lc))
          (Lang.union (Lang.suffix_quotient la lb) (Lang.suffix_quotient la lc)));
  ]

(** Metamorphic laws for the quotient algebra (Def 5.1, Lemma 5.2).

    The ambiguity and maximality procedures are built entirely out of
    [A / B] and [B \ A]; these tests pin their semantics two ways:

    - {e pointwise}, against the definition — [w ∈ A/B] iff
      [({w}·B) ∩ A ≠ ∅], computed through concat/inter/emptiness, a
      disjoint code path from {!Dfa_ops.suffix_quotient}'s
      final-remarking construction;
    - {e algebraically}, via identities quantified over random
      languages: quotient/reverse duality, [(A·B)/B ⊇ A],
      [B\(B·A) ⊇ A], neutrality of ε, and distribution over unions of
      the divisor. *)

val tests : count:int -> QCheck.Test.t list

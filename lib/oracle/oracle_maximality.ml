let extend_left (e : Extraction.t) w =
  Extraction.make e.Extraction.alpha
    (Regex.alt e.Extraction.left (Regex.word w))
    e.Extraction.mark e.Extraction.right

let extend_right (e : Extraction.t) w =
  Extraction.make e.Extraction.alpha e.Extraction.left e.Extraction.mark
    (Regex.alt e.Extraction.right (Regex.word w))

let tests ~count =
  [
    QCheck.Test.make ~count ~name:"Not_maximal witnesses extend the expression"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        match Maximality.check e with
        | Maximality.Maximal -> true
        | Maximality.Ambiguous_input _ -> Ambiguity.is_ambiguous e
        | Maximality.Not_maximal_left w ->
            let bigger = extend_left e w in
            Ambiguity.is_unambiguous bigger && Expr_order.strictly_below e bigger
        | Maximality.Not_maximal_right w ->
            let bigger = extend_right e w in
            Ambiguity.is_unambiguous bigger && Expr_order.strictly_below e bigger);
    QCheck.Test.make ~count ~name:"Maximal verdicts survive bounded refutation"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        match Maximality.check e with
        | Maximality.Maximal ->
            let l1 = Extraction.left_lang e
            and l2 = Extraction.right_lang e in
            Seq.for_all
              (fun w ->
                (Lang.mem l1 w || Ambiguity.is_ambiguous (extend_left e w))
                && (Lang.mem l2 w || Ambiguity.is_ambiguous (extend_right e w)))
              (Word.enumerate e.Extraction.alpha 2)
        | _ -> true);
    QCheck.Test.make ~count ~name:"verdict ⇔ emptiness of Cor 5.8 deficiencies"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let l1 = Extraction.left_lang e and l2 = Extraction.right_lang e in
        let p = e.Extraction.mark in
        if Ambiguity.is_ambiguous_langs l1 p l2 then
          match Maximality.check e with
          | Maximality.Ambiguous_input _ -> true
          | _ -> false
        else
          let ld = Maximality.left_deficiency l1 p l2 in
          let rd = Maximality.right_deficiency l1 p l2 in
          match Maximality.check e with
          | Maximality.Maximal -> Lang.is_empty ld && Lang.is_empty rd
          | Maximality.Not_maximal_left w ->
              (not (Lang.is_empty ld)) && Lang.mem ld w
          | Maximality.Not_maximal_right w ->
              (not (Lang.is_empty rd)) && Lang.mem rd w
          | Maximality.Ambiguous_input _ -> false);
  ]

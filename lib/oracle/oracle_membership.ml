let tests ~count =
  [
    QCheck.Test.make ~count ~name:"deriv = DFA on random words"
      (Oracle_gen.arb_member_case ~ext:true ~max_len:12 ())
      (fun (alpha, re, w) ->
        Regex.matches re w = Lang.mem (Lang.of_regex alpha re) w);
    QCheck.Test.make ~count ~name:"deriv = DFA on all words ≤ 4"
      (Oracle_gen.arb_lang_case ~ext:true ())
      (fun (alpha, re) ->
        let l = Lang.of_regex alpha re in
        Seq.for_all
          (fun w -> Regex.matches re w = Lang.mem l w)
          (Word.enumerate alpha 4));
    QCheck.Test.make ~count ~name:"nullability: deriv = DFA"
      (Oracle_gen.arb_lang_case ~ext:true ())
      (fun (alpha, re) ->
        Regex.nullable re = Lang.nullable (Lang.of_regex alpha re));
    QCheck.Test.make ~count ~name:"Lang.sample yields members within budget"
      (QCheck.pair (Oracle_gen.arb_lang_case ()) QCheck.small_int)
      (fun ((alpha, re), seed) ->
        let l = Lang.of_regex alpha re in
        let rng = Random.State.make [| seed |] in
        match Lang.sample l rng ~max_len:10 with
        | Some w -> Array.length w <= 10 && Lang.mem l w && Regex.matches re w
        | None -> (
            Lang.is_empty l
            ||
            match Lang.shortest l with
            | Some s -> Array.length s > 10
            | None -> true));
  ]

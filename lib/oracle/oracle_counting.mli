(** Brute-force oracle for the sequence filtering operator (Def 6.1).

    [E‖_p^n] — the words of [E] with exactly [n] occurrences of [p] —
    is the engine of Algorithm 6.2; a wrong final state in
    {!Dfa_ops.filter_count} silently corrupts every synthesized
    wrapper.  The reference here is the definition itself: enumerate
    short words and compare [mem (E‖_p^n)] against
    [mem E ∧ count p = n], then cross-check the boundedness analysis
    ({!Lang.max_sym_count}, {!Left_filter.bounded_mark_count}) that
    gates the algorithm. *)

val tests : count:int -> QCheck.Test.t list

(* Differential oracles for the self-healing loop: disabled healing is
   byte-inert, healed output is jobs-invariant, the detector is a pure
   recurrence, the quarantine is a keep-newest window, re-synthesis
   never loses the original training set, and re-labeling recovers the
   ground truth by mark or by LR locator. *)

let arb_seed = QCheck.int_range 0 1_000_000

(* The Figure 1 shopbot scenario, learned once and shared: samples,
   wrapper, and the serialized pages the serve scripts stream. *)
let the_samples =
  lazy
    (let top = Pagegen.figure1_top () in
     let bottom = Pagegen.figure1_bottom () in
     [
       (top, Option.get (Pagegen.target_path top));
       (bottom, Option.get (Pagegen.target_path bottom));
     ])

let the_wrapper =
  lazy
    (let samples = Lazy.force the_samples in
     let alpha = Wrapper.alphabet_for (List.map fst samples) in
     match Wrapper.learn ~alpha samples with
     | Ok w -> w
     | Error _ -> failwith "oracle_heal: Figure 1 wrapper failed to learn")

(* A layout drift the learned alphabet cannot express: SECTION is not
   in [Pagegen.standard_tags], so these pages die with Bad_symbol until
   a heal recomputes the alphabet over the quarantine. *)
let drifted html = "<section>" ^ html ^ "</section>"

let line fields = Obs.Json.to_string (Obs.Json.Obj fields)

let open_line id =
  let open Obs.Json in
  line [ ("op", Str "open"); ("id", Int id) ]

let page_line id html =
  let open Obs.Json in
  line [ ("op", Str "page"); ("id", Int id); ("html", Str html) ]

let close_line id =
  let open Obs.Json in
  line [ ("op", Str "close"); ("id", Int id) ]

let session_lines id html = [ open_line id; page_line id html; close_line id ]

(* Slice a line list into batches of [size] — the same slicing for
   every job count, so only the schedule varies across runs. *)
let batches_of size lines =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | l :: rest ->
        if n = size then go (List.rev cur :: acc) [ l ] 1 rest
        else go acc (l :: cur) (n + 1) rest
  in
  go [] [] 0 lines

let sup ~heal ~jobs () =
  let w = Lazy.force the_wrapper in
  Supervisor.create
    {
      Supervisor.matcher = w.Wrapper.matcher;
      alpha = w.Wrapper.alpha;
      jobs;
      max_sessions = 64;
      fuel = None;
      deadline_ms = None;
      retry_after_ms = Supervisor.default_retry_after_ms;
      heal;
    }

let run_script ~heal ~jobs batches =
  let s = sup ~heal ~jobs () in
  List.concat_map (Supervisor.handle_batch s) batches
  |> List.map Frame.encode

let fresh_manager ~min_samples ~threshold ~window () =
  let samples = Lazy.force the_samples in
  Heal.Manager.create
    ~config:
      {
        Heal.default_config with
        Heal.window;
        threshold;
        min_samples;
      }
    ~samples (Lazy.force the_wrapper)

let tests ~count =
  [
    QCheck.Test.make ~count:(max 1 (count / 5))
      ~name:"heal: disabled healing is byte-inert, jobs 1/2/4" arb_seed
      (fun seed ->
        (* good and drifting sessions mixed; the manager observes every
           verdict and captures every page but can never trip, so its
           output must be byte-identical to [heal = None] — which in
           turn is the PR 8/9 daemon unchanged *)
        let samples = Lazy.force the_samples in
        let good = Html_tree.to_string (fst (List.nth samples (seed mod 2))) in
        let bad = drifted good in
        let lines =
          List.concat
            [
              session_lines 1 good;
              session_lines 2 bad;
              session_lines 3 good;
              session_lines 4 bad;
            ]
        in
        let batches = batches_of (1 + (seed mod 5)) lines in
        let off = run_script ~heal:None ~jobs:1 batches in
        List.for_all
          (fun jobs ->
            let inert =
              fresh_manager ~min_samples:1_000_000 ~threshold:0.9 ~window:16 ()
            in
            run_script ~heal:(Some inert) ~jobs batches = off
            && run_script ~heal:None ~jobs batches = off)
          [ 1; 2; 4 ]);
    QCheck.Test.make ~count:(max 1 (count / 5))
      ~name:"heal: healed daemon output is jobs-invariant under drift"
      arb_seed
      (fun seed ->
        (* three drifting sessions trip the detector; the healed
           generation then extracts the same drifted layout.  The whole
           frame stream — including the healed frame's position and the
           post-heal splits — must not depend on the job count. *)
        let samples = Lazy.force the_samples in
        let bad =
          drifted (Html_tree.to_string (fst (List.nth samples (seed mod 2))))
        in
        let lines =
          List.concat (List.init 5 (fun i -> session_lines (i + 1) bad))
        in
        let batches = batches_of 3 lines in
        let run jobs =
          let m = fresh_manager ~min_samples:2 ~threshold:0.4 ~window:4 () in
          run_script ~heal:(Some m) ~jobs batches
        in
        let j1 = run 1 in
        (* at least one healed frame and one post-heal split: the run
           must not pass vacuously with healing never engaging *)
        List.exists
             (fun l ->
               String.length l >= 14 && String.sub l 0 14 = {|{"ok":"healed"|})
             j1
        && List.exists
             (fun l ->
               String.length l >= 8 && String.sub l 0 8 = {|{"split"|})
             j1
        && run 2 = j1 && run 4 = j1);
    QCheck.Test.make ~count
      ~name:"heal: detector trip point ≡ pure EWMA fold"
      QCheck.(
        quad (int_range 1 32) (int_range 1 10) (int_range 1 9)
          (list_of_size Gen.(1 -- 64) bool))
      (fun (window, min_samples, thr_tenths, oks) ->
        let threshold = float_of_int thr_tenths /. 10.0 in
        let d = Heal.Detector.create ~window ~threshold ~min_samples () in
        let decay = 1.0 -. (1.0 /. float_of_int window) in
        let rate = ref 0.0 in
        let trip_det = ref None and trip_ref = ref None in
        List.iteri
          (fun i ok ->
            Heal.Detector.observe d ~ok;
            if !trip_det = None && Heal.Detector.tripped d then
              trip_det := Some i;
            (rate :=
               (decay *. !rate)
               +. ((1.0 -. decay) *. if ok then 0.0 else 1.0));
            if !trip_ref = None && i + 1 >= min_samples && !rate > threshold
            then trip_ref := Some i)
          oks;
        !trip_det = !trip_ref
        && Heal.Detector.rate d = !rate
        && Heal.Detector.observations d = List.length oks
        &&
        (Heal.Detector.reset d;
         Heal.Detector.observations d = 0
         && Heal.Detector.rate d = 0.0
         && not (Heal.Detector.tripped d)));
    QCheck.Test.make ~count
      ~name:"heal: quarantine ring ≡ keep-newest list model" arb_seed
      (fun seed ->
        let rng = Random.State.make [| 0x9a4a; seed |] in
        let cap = 1 + Random.State.int rng 5 in
        let q = Heal.Quarantine.create ~capacity:cap ~max_page_bytes:16 () in
        let model = ref [] in
        let ok = ref (Heal.Quarantine.capacity q = cap) in
        for i = 0 to 39 do
          if i mod 13 = 12 then begin
            Heal.Quarantine.clear q;
            model := []
          end
          else begin
            let len = Random.State.int rng 24 in
            let page = String.make len (Char.chr (97 + (i mod 26))) in
            let admit = Heal.Quarantine.add q page in
            let expected =
              if len > 16 then Heal.Quarantine.Oversize_shed
              else if List.length !model < cap then Heal.Quarantine.Added
              else Heal.Quarantine.Evicted_oldest
            in
            if len <= 16 then begin
              model := !model @ [ page ];
              if List.length !model > cap then model := List.tl !model
            end;
            ok := !ok && admit = expected
          end;
          ok :=
            !ok
            && Heal.Quarantine.pages q = !model
            && Heal.Quarantine.depth q = List.length !model
        done;
        !ok);
    QCheck.Test.make ~count:(max 1 (count / 5))
      ~name:"heal: re-synthesis keeps every original training sample"
      arb_seed
      (fun seed ->
        let samples = Lazy.force the_samples in
        let intensity = seed mod 3 in
        let rng = Random.State.make [| 0x4ea1; seed |] in
        let quarantined =
          List.map
            (fun (d, _) ->
              Html_tree.to_string (Perturb.perturb rng ~intensity d))
            samples
        in
        match Heal.resynthesize ~samples ~quarantined () with
        | Error _ ->
            (* a perturbed training mix may legitimately fail to merge;
               the unperturbed mix never may *)
            intensity > 0
        | Ok r ->
            (* Perturb preserves the data-target mark, so every
               quarantined page re-labels and none via the LR fallback *)
            r.Heal.r_used = List.length quarantined
            && r.Heal.r_discarded = 0
            && List.for_all
                 (fun (d, p) -> Wrapper.extract r.Heal.r_wrapper d = Ok p)
                 samples);
    QCheck.Test.make ~count:(max 1 (count / 5))
      ~name:"heal: relabel recovers the mark, or the LR locator anchors"
      arb_seed
      (fun seed ->
        let samples = Lazy.force the_samples in
        let alpha = Wrapper.alphabet_for (List.map fst samples) in
        let marked =
          List.filter_map
            (fun (doc, path) ->
              Option.map
                (fun (w, i) -> Merge.sample w i)
                (Tag_seq.mark_of_path alpha doc path))
            samples
        in
        let lr =
          match Lr_wrapper.learn alpha marked with
          | Ok l -> Some l
          | Error _ -> None
        in
        let doc, path = List.nth samples (seed mod 2) in
        (* the mark survives: recovered directly *)
        Heal.relabel alpha lr doc = Some (path, `Data_target)
        &&
        (* the mark is stripped: the LR delimiters still anchor the
           same node *)
        let strip needle hay =
          let nl = String.length needle and hl = String.length hay in
          let buf = Buffer.create hl in
          let i = ref 0 in
          while !i < hl do
            if !i + nl <= hl && String.sub hay !i nl = needle then i := !i + nl
            else begin
              Buffer.add_char buf hay.[!i];
              incr i
            end
          done;
          Buffer.contents buf
        in
        let stripped = strip " data-target=\"1\"" (Html_tree.to_string doc) in
        match Heal.relabel alpha lr (Html_tree.parse stripped) with
        | Some (p, `Lr) -> p = path
        | Some (_, `Data_target) | None -> false);
  ]

(** Postcondition audit for the §6 synthesis pipeline (Prop 6.5).

    Every output of {!Synthesis.maximize} carries a three-part
    contract: it is unambiguous, it is maximal (checkable by Cor 5.8),
    and it generalizes its input in [≼].  Each fuzzed input has the
    contract re-verified through the {e decision procedures} — which
    the other oracles independently pin down — closing the loop: if
    synthesis and the checkers ever disagree, one of them is wrong and
    the campaign fails.  Maximization is also required to be
    idempotent, failures must be honest (an [Ambiguous] failure means
    the input really is ambiguous), and random members of synthesized
    languages must extract uniquely. *)

val tests : count:int -> QCheck.Test.t list

(* Differential oracles for the parallel scheduling layer: the
   persistent work-stealing pool behind Batch must be observationally
   identical to sequential List.map — for every job count, under cost
   skew (so stealing actually engages), under injected per-item faults,
   and for the exception-surfacing contract.  The matcher's per-domain
   scratch fast path is cross-checked against its allocating reference
   and the quadratic splits specification, both directly and from
   inside pool workers. *)

let with_faults site ~at f =
  Guard_faults.arm site ~at;
  Fun.protect ~finally:Guard_faults.disarm f

(* Item cost proportional to the value: small lists of small_int give
   ratios of hundreds between the cheapest and dearest item, so the
   seeded ranges drain unevenly and the steal path runs. *)
let skewed_cost x =
  let acc = ref 0 in
  for i = 0 to (x * 37) land 1023 do
    acc := !acc + (i land 7)
  done;
  (x * 2) + 1 + (!acc land 1)

let job_counts = [ 1; 2; 3; 4; 8 ]

let tests ~count =
  [
    QCheck.Test.make ~count
      ~name:"pool: Batch.map ≡ List.map under cost skew, every job count"
      QCheck.(list small_int)
      (fun xs ->
        let expect = List.map skewed_cost xs in
        List.for_all
          (fun jobs -> Batch.map ~jobs skewed_cost xs = expect)
          job_counts);
    QCheck.Test.make ~count
      ~name:"pool: injected Batch_item faults poison exactly their cells"
      QCheck.(list small_int)
      (fun xs ->
        let faulted =
          xs
          |> List.mapi (fun i x -> (i, x))
          |> List.filter (fun (_, x) -> x mod 3 = 0)
          |> List.map fst
        in
        let clean = List.map (fun x -> Ok (skewed_cost x)) xs in
        with_faults Guard_faults.Batch_item ~at:faulted (fun () ->
            List.for_all
              (fun jobs ->
                let got = Batch.map_isolated ~jobs skewed_cost xs in
                List.length got = List.length clean
                && List.for_all2
                     (fun i (g, c) ->
                       if List.mem i faulted then Result.is_error g else g = c)
                     (List.mapi (fun i _ -> i) xs)
                     (List.combine got clean))
              job_counts));
    QCheck.Test.make ~count
      ~name:"pool: map re-raises the first in-input-order error, every jobs"
      QCheck.(list small_int)
      (fun xs ->
        let f x = if x land 1 = 1 then failwith (string_of_int x) else x in
        match List.find_opt (fun x -> x land 1 = 1) xs with
        | None ->
            List.for_all
              (fun jobs -> Batch.map ~jobs f xs = xs)
              job_counts
        | Some first ->
            List.for_all
              (fun jobs ->
                match Batch.map ~jobs f xs with
                | _ -> false
                | exception Failure msg -> msg = string_of_int first)
              job_counts);
    QCheck.Test.make ~count
      ~name:"pool: items counter advances by the batch size"
      QCheck.(list_of_size Gen.(2 -- 40) small_int)
      (fun xs ->
        let before = (Pool.stats ()).Pool.items in
        ignore (Batch.map_isolated ~jobs:4 skewed_cost xs);
        let after = (Pool.stats ()).Pool.items in
        (* jobs=4 over >= 2 items is always counted: either pooled or
           the counted sequential fallback, never the silent bypass *)
        after - before = List.length xs);
    QCheck.Test.make ~count
      ~name:"chunking: Auto ≡ Items 1 ≡ Items 3 ≡ List.map under skew"
      QCheck.(list small_int)
      (fun xs ->
        let expect = List.map skewed_cost xs in
        List.for_all
          (fun jobs ->
            List.for_all
              (fun chunk -> Batch.map ~jobs ~chunk skewed_cost xs = expect)
              [ Pool.Auto; Pool.Items 1; Pool.Items 3 ])
          job_counts);
    QCheck.Test.make ~count
      ~name:"chunking: plan is a contiguous in-order partition of 0..n"
      QCheck.(pair (int_range 1 64) (list (int_range 0 50)))
      (fun (target, costs) ->
        let costs = Array.of_list costs in
        let n = Array.length costs in
        let plan = Cost.plan ~target costs in
        (* every index covered exactly once, in increasing order *)
        let next = ref 0 and ok = ref true in
        Array.iter
          (fun (lo, hi) ->
            if lo <> !next || hi <= lo then ok := false;
            next := hi)
          plan;
        !ok && !next = n);
    QCheck.Test.make ~count
      ~name:"chunking: giants stay singleton and the plan is deterministic"
      QCheck.(pair (int_range 1 64) (list (int_range 0 200)))
      (fun (target, costs) ->
        let costs = Array.of_list costs in
        let plan = Cost.plan ~target costs in
        plan = Cost.plan ~target costs
        && Array.for_all
             (fun (lo, hi) ->
               hi - lo = 1
               || Seq.for_all
                    (fun i -> costs.(i) < target)
                    (Seq.init (hi - lo) (fun k -> lo + k)))
             plan);
    QCheck.Test.make ~count
      ~name:
        "chunking: faults poison exactly their cells across chunk boundaries"
      QCheck.(list small_int)
      (fun xs ->
        let faulted =
          xs
          |> List.mapi (fun i x -> (i, x))
          |> List.filter (fun (_, x) -> x mod 3 = 0)
          |> List.map fst
        in
        let clean = List.map (fun x -> Ok (skewed_cost x)) xs in
        with_faults Guard_faults.Batch_item ~at:faulted (fun () ->
            List.for_all
              (fun jobs ->
                List.for_all
                  (fun chunk ->
                    let got =
                      Batch.map_isolated ~jobs ~chunk skewed_cost xs
                    in
                    List.length got = List.length clean
                    && List.for_all2
                         (fun i (g, c) ->
                           if List.mem i faulted then Result.is_error g
                           else g = c)
                         (List.mapi (fun i _ -> i) xs)
                         (List.combine got clean))
                  [ Pool.Auto; Pool.Items 1; Pool.Items 4 ])
              job_counts));
    QCheck.Test.make ~count
      ~name:"chunking: first-in-order error survives every chunk policy"
      QCheck.(list small_int)
      (fun xs ->
        let f x = if x land 1 = 1 then failwith (string_of_int x) else x in
        let policies = [ Pool.Auto; Pool.Items 2 ] in
        match List.find_opt (fun x -> x land 1 = 1) xs with
        | None ->
            List.for_all
              (fun jobs ->
                List.for_all
                  (fun chunk -> Batch.map ~jobs ~chunk f xs = xs)
                  policies)
              job_counts
        | Some first ->
            List.for_all
              (fun jobs ->
                List.for_all
                  (fun chunk ->
                    match Batch.map ~jobs ~chunk f xs with
                    | _ -> false
                    | exception Failure msg -> msg = string_of_int first)
                  policies)
              job_counts);
    QCheck.Test.make ~count
      ~name:"chunking: sub-break-even batches fall back sequentially"
      QCheck.(list_of_size Gen.(0 -- 10) small_int)
      (fun xs ->
        (* A cold estimator prices n <= 10 trivial items far below the
           1 ms break-even target, so jobs=4 must degrade to the
           counted sequential fallback — same results, no pool wakeup,
           and the fallback counter advancing by exactly one (zero for
           n < 2, where the uncounted participants<=1 bypass wins). *)
        Cost.reset ();
        let before = (Pool.stats ()).Pool.seq_fallbacks in
        let got = Batch.map ~jobs:4 skewed_cost xs in
        let after = (Pool.stats ()).Pool.seq_fallbacks in
        got = List.map skewed_cost xs
        && after - before = if List.length xs >= 2 then 1 else 0);
    QCheck.Test.make ~count
      ~name:"matcher: scratch fast path ≡ fresh bitset ≡ splits reference"
      (Oracle_gen.arb_extraction_word_case ())
      (fun (e, w) ->
        let m = Extraction.compile e in
        let hot = Extraction.matcher_splits m w in
        let fresh = Extraction.matcher_splits_fresh m w in
        let reference = Extraction.splits e w in
        hot = fresh && fresh = reference);
    QCheck.Test.make ~count
      ~name:"matcher: scratch path inside pool workers ≡ sequential"
      (Oracle_gen.arb_extraction_word_case ())
      (fun (e, w) ->
        (* Many words through one shared matcher: per-domain scratch
           must never bleed between items or domains. *)
        let m = Extraction.compile e in
        let words =
          List.init 12 (fun k ->
              Array.sub w 0 (Array.length w * (k mod 4) / 4))
          @ [ w; w ]
        in
        let expect = List.map (Extraction.matcher_splits m) words in
        List.for_all
          (fun jobs ->
            Batch.map ~jobs (Extraction.matcher_splits m) words = expect)
          job_counts);
  ]

(** Bounded-enumeration oracle for the ambiguity procedures (§5).

    Three independent answers to "is [E1⟨p⟩E2] ambiguous?" are forced
    to agree:

    - the quotient characterization of Prop 5.4
      ({!Ambiguity.is_ambiguous});
    - the fresh-marker characterization of Prop 5.5
      ({!Ambiguity.is_ambiguous_marker});
    - brute force — count parse splits of every short word with the
      automata-free derivative matcher
      ({!Extraction.splits_deriv}).

    The brute-force direction is one-sided (it can only {e refute} a
    claimed unambiguity within the length bound), so the witness of
    {!Ambiguity.witness} is additionally required to be a genuine
    doubly-split word, which makes the "ambiguous" verdicts checkable
    too. *)

val tests : count:int -> QCheck.Test.t list

(** Differential oracles for the self-healing loop.

    The healing subsystem's contracts are all about {e not} changing
    anything it did not promise to change: a healing-disabled daemon
    must be byte-identical to one built without the subsystem, a healed
    daemon's output must stay jobs-invariant (verdicts are observed in
    arrival order, never schedule order), the drift detector must trip
    at exactly the point the pure EWMA recurrence predicts, the
    quarantine ring must keep exactly the newest [capacity] pages, a
    re-synthesized wrapper must still extract every original training
    sample, and re-labeling must recover the ground-truth node through
    either the surviving [data-target] mark or the LR locator. *)

val tests : count:int -> QCheck.Test.t list

(** Differential oracles for the serve subsystem.

    The streaming daemon's contract is that supervision is
    {e observation-free}: a session fed through {!Supervisor} must
    yield exactly the splits of the offline
    {!Extraction.matcher_splits}, for every job count, wherever the
    batch and chunk boundaries fall.  The degradation ladder is then
    attacked directly — an injected {!Guard_faults.Session_item} fault
    must leave every other session's outgoing frames byte-identical to
    the fault-free run; a shed [open], retried once capacity returns,
    must observe exactly the session it would have had; an exhausted
    budget must starve only its own session while ample fuel is
    unobservable.  {!Frame.decode} is checked total (any byte string
    answers [Ok] or [Error], never an exception) and inverse to the
    frame builders. *)

val tests : count:int -> QCheck.Test.t list

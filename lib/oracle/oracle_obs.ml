(* Differential oracles for the observability layer: tracing is
   observation only.  Each test runs the same computation with the obs
   switch off and on and demands bit-identical results; the snapshot
   tests demand that Obs.metrics_json reconciles exactly with the
   counters the runtime already exposed (Runtime.Stats, Pool.stats,
   Guard.Budget.spent).  The initial switch state is saved and
   restored, so a traced selftest run stays traced. *)

let with_obs b f =
  let saved = Obs.enabled () in
  Obs.set_enabled b;
  Fun.protect ~finally:(fun () -> Obs.set_enabled saved) f

(* Fuel-accounting properties must not be answered by a warm verdict
   cache (a hit decides for free and the comparison turns vacuous). *)
let uncached f =
  Runtime.set_enabled false;
  Fun.protect ~finally:(fun () -> Runtime.set_enabled true) f

let job_counts = [ 1; 2; 4 ]

let skewed_cost x =
  let acc = ref 0 in
  for i = 0 to (x * 37) land 1023 do
    acc := !acc + (i land 7)
  done;
  (x * 2) + 1 + (!acc land 1)

let tests ~count =
  [
    QCheck.Test.make ~count
      ~name:"obs: ambiguity/maximality verdicts ≡ with tracing off and on"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let run () =
          ( Runtime.is_ambiguous e,
            if Ambiguity.is_ambiguous e then None
            else Some (Runtime.check_maximality e) )
        in
        let off = with_obs false run in
        let on_ = with_obs true run in
        off = on_);
    QCheck.Test.make ~count
      ~name:"obs: matcher splits ≡ reference with tracing off and on"
      (Oracle_gen.arb_extraction_word_case ())
      (fun (e, w) ->
        let m = Extraction.compile e in
        let reference = Extraction.splits e w in
        let off = with_obs false (fun () -> Extraction.matcher_splits m w) in
        let on_ = with_obs true (fun () -> Extraction.matcher_splits m w) in
        off = reference && on_ = reference);
    QCheck.Test.make ~count
      ~name:"obs: traced pool batches ≡ untraced sequential, jobs 1/2/4"
      QCheck.(list small_int)
      (fun xs ->
        let expect =
          with_obs false (fun () -> Batch.map ~jobs:1 skewed_cost xs)
        in
        with_obs true (fun () ->
            List.for_all
              (fun jobs -> Batch.map ~jobs skewed_cost xs = expect)
              job_counts));
    QCheck.Test.make ~count
      ~name:"obs: Guard exhaustion outcome (incl. spent) ≡ off and on"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        uncached (fun () ->
            List.for_all
              (fun fuel ->
                let run () =
                  Guard.run ~fuel (fun () -> Maximality.check e)
                in
                let off = with_obs false run in
                let on_ = with_obs true run in
                Guard.outcome_equal ( = ) off on_)
              [ 48; 4096; max_int ]));
    QCheck.Test.make ~count
      ~name:"obs: metrics snapshot reconciles with Runtime.Stats and Pool"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        with_obs true (fun () -> ignore (Runtime.is_ambiguous e));
        (* quiesced: nothing runs between the snapshot and the reads *)
        let j = Obs.metrics_json () in
        let s = Runtime.stats () in
        let p = Pool.stats () in
        let geti ks = Obs.Json.get_int (Obs.Json.path ks j) in
        let pair name (c : Runtime.Stats.counter) =
          geti [ "cache"; name; "hits" ] = c.Runtime.Stats.hits
          && geti [ "cache"; name; "misses" ] = c.Runtime.Stats.misses
        in
        let shard_sum =
          match Obs.Json.path [ "cache"; "shards" ] j with
          | Obs.Json.List shards ->
              List.fold_left
                (fun acc sh ->
                  acc
                  + Obs.Json.get_int (Obs.Json.member "hits" sh)
                  + Obs.Json.get_int (Obs.Json.member "misses" sh))
                0 shards
          | _ -> -1
        in
        let stage_sum =
          List.fold_left
            (fun acc (c : Runtime.Stats.counter) ->
              acc + c.Runtime.Stats.hits + c.Runtime.Stats.misses)
            0
            [ s.Runtime.Stats.compile; s.determinize; s.minimize; s.quotient ]
        in
        pair "intern" s.Runtime.Stats.intern
        && pair "compile" s.Runtime.Stats.compile
        && pair "determinize" s.determinize
        && pair "minimize" s.minimize
        && pair "quotient" s.quotient
        && pair "decision" s.decision
        && shard_sum = stage_sum
        && geti [ "pool"; "workers" ] = p.Pool.workers
        && geti [ "pool"; "batches" ] = p.Pool.batches
        && geti [ "pool"; "items" ] = p.Pool.items
        && geti [ "pool"; "steals" ] = p.Pool.steals);
    QCheck.Test.make ~count
      ~name:"obs: states_built and fuel_spent advance by Budget.spent"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        uncached (fun () ->
            with_obs true (fun () ->
                let s0 = Obs.Metric.total_states () in
                let f0 = Obs.Metric.total_fuel () in
                let b = Guard.Budget.make ~fuel:max_int () in
                match Guard.capture b (fun () -> Maximality.check e) with
                | Guard.Decided _ ->
                    let spent = Guard.Budget.spent b in
                    Obs.Metric.total_states () - s0 = spent
                    && Obs.Metric.total_fuel () - f0 = spent
                | Guard.Unknown _ -> false)));
  ]

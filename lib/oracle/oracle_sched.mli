(** Differential oracles for the parallel scheduling layer.

    The persistent work-stealing pool ({!Pool}, via {!Batch}) claims to
    be observationally identical to sequential [List.map] for every job
    count; these properties attack that claim where it is most likely
    to break — cost-skewed items (stealing engages), injected per-item
    faults, the first-error-in-input-order raising contract, and the
    stats accounting.  The granularity layer is attacked the same way:
    chunked execution ([Auto] planning and fixed [Items n] overrides)
    must be observationally identical to per-item scheduling and to
    [List.map] — including fault isolation and error ordering across
    chunk boundaries — the pure {!Cost.plan} must always produce a
    contiguous in-order partition with giants singleton, and
    sub-break-even batches must take the counted sequential fallback
    without changing results.  The matcher's per-domain scratch fast path is
    cross-checked against its allocating reference
    ({!Extraction.matcher_splits_fresh}) and the quadratic
    {!Extraction.splits} specification, including from inside pool
    workers where scratch reuse could bleed between items. *)

val tests : count:int -> QCheck.Test.t list

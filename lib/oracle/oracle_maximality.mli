(** Bounded refutation oracle for maximality (Cor 5.8, Prop 5.7).

    Maximality claims are attacked from both sides:

    - a [Maximal] verdict is challenged by {e bounded refutation}:
      adjoin every short word missing from a side and demand the
      extension be ambiguous — Prop 5.7 says a single word extending
      an unambiguous expression would disprove maximality;
    - a [Not_maximal_*] verdict must be {e actionable}: its witness
      word, adjoined per the proof of Prop 5.7, must produce an
      unambiguous expression strictly above the input in [≼];
    - the verdict as a whole must coincide with emptiness of the
      deficiency languages of Cor 5.8. *)

val tests : count:int -> QCheck.Test.t list

(* Generators and shrinkers for the differential-oracle campaign. *)

let name_pool = [ "p"; "q"; "r" ]

let gen_alphabet : Alphabet.t QCheck.Gen.t =
  let open QCheck.Gen in
  map
    (fun k -> Alphabet.make (List.filteri (fun i _ -> i < k) name_pool))
    (frequency [ (1, return 1); (4, return 2); (2, return 3) ])

let gen_word alpha max_len : Word.t QCheck.Gen.t =
  let open QCheck.Gen in
  let k = Alphabet.size alpha in
  let* n = int_bound max_len in
  map Array.of_list (list_size (return n) (int_bound (k - 1)))

let gen_plain_regex ?(size = 8) alpha : Regex.t QCheck.Gen.t =
  let open QCheck.Gen in
  let k = Alphabet.size alpha in
  let gen_syms = list_size (int_range 1 k) (int_bound (k - 1)) in
  let leaf =
    frequency
      [
        (6, map Regex.sym (int_bound (k - 1)));
        (1, return Regex.eps);
        (1, return Regex.empty);
        (1, return Regex.any);
        (1, map Regex.cls gen_syms);
        (1, map Regex.neg_cls gen_syms);
      ]
  in
  fix
    (fun self n ->
      if n <= 1 then leaf
      else
        frequency
          [
            (3, leaf);
            (4, map2 Regex.alt (self (n / 2)) (self (n / 2)));
            (5, map2 Regex.cat (self (n / 2)) (self (n / 2)));
            (2, map Regex.star (self (n - 1)));
            (1, map Regex.opt (self (n - 1)));
          ])
    size

let gen_ext_regex ?(size = 8) alpha : Regex.t QCheck.Gen.t =
  let open QCheck.Gen in
  let plain = gen_plain_regex ~size alpha in
  let* base = plain in
  let* rest = plain in
  frequency
    [
      (3, return base);
      (1, return (Regex.inter base rest));
      (1, return (Regex.diff base rest));
      (1, return (Regex.compl base));
    ]

(* Structural shrinking: a failing regex shrinks to its subterms and to
   nodes with one shrunk child; leaves shrink toward ∅ and ε. *)
let rec shrink_regex (r : Regex.t) : Regex.t QCheck.Iter.t =
  let open QCheck.Iter in
  let binary mk a b =
    of_list [ a; b ]
    <+> map (fun a' -> mk a' b) (shrink_regex a)
    <+> map (fun b' -> mk a b') (shrink_regex b)
  in
  match r with
  | Regex.Empty -> empty
  | Regex.Eps -> return Regex.empty
  | Regex.Cls _ -> of_list [ Regex.empty; Regex.eps ]
  | Regex.Alt (a, b) -> binary Regex.alt a b
  | Regex.Cat (a, b) -> binary Regex.cat a b
  | Regex.Inter (a, b) -> binary Regex.inter a b
  | Regex.Diff (a, b) -> binary Regex.diff a b
  | Regex.Star a -> return a <+> map Regex.star (shrink_regex a)
  | Regex.Compl a -> return a <+> map Regex.compl (shrink_regex a)

let shrink_word : Word.t QCheck.Shrink.t = QCheck.Shrink.array ~shrink:QCheck.Shrink.int

let arb_plain_regex alpha =
  QCheck.make
    ~print:(Regex.to_string alpha)
    ~shrink:shrink_regex (gen_plain_regex alpha)

let arb_ext_regex alpha =
  QCheck.make
    ~print:(Regex.to_string alpha)
    ~shrink:shrink_regex (gen_ext_regex alpha)

let arb_word alpha max_len =
  QCheck.make
    ~print:(Word.to_string alpha)
    ~shrink:shrink_word (gen_word alpha max_len)

(* --- random-alphabet cases --- *)

let pp_alpha alpha = "Σ={" ^ String.concat "," (Alphabet.names alpha) ^ "}"

let pick_regex ext alpha =
  if ext then gen_ext_regex alpha else gen_plain_regex alpha

let arb_lang_case ?(ext = false) () =
  let open QCheck.Gen in
  let gen =
    let* alpha = gen_alphabet in
    let* re = pick_regex ext alpha in
    return (alpha, re)
  in
  QCheck.make gen
    ~print:(fun (alpha, re) ->
      Printf.sprintf "%s  %s" (pp_alpha alpha) (Regex.to_string alpha re))
    ~shrink:(fun (alpha, re) ->
      QCheck.Iter.map (fun re' -> (alpha, re')) (shrink_regex re))

let arb_lang2_case ?(ext = false) () =
  let open QCheck.Gen in
  let gen =
    let* alpha = gen_alphabet in
    let* a = pick_regex ext alpha in
    let* b = pick_regex ext alpha in
    return (alpha, a, b)
  in
  QCheck.make gen
    ~print:(fun (alpha, a, b) ->
      Printf.sprintf "%s  A=%s  B=%s" (pp_alpha alpha)
        (Regex.to_string alpha a) (Regex.to_string alpha b))
    ~shrink:(fun (alpha, a, b) ->
      let open QCheck.Iter in
      map (fun a' -> (alpha, a', b)) (shrink_regex a)
      <+> map (fun b' -> (alpha, a, b')) (shrink_regex b))

let arb_lang3_case ?(ext = false) () =
  let open QCheck.Gen in
  let gen =
    let* alpha = gen_alphabet in
    let* a = pick_regex ext alpha in
    let* b = pick_regex ext alpha in
    let* c = pick_regex ext alpha in
    return (alpha, a, b, c)
  in
  QCheck.make gen
    ~print:(fun (alpha, a, b, c) ->
      Printf.sprintf "%s  A=%s  B=%s  C=%s" (pp_alpha alpha)
        (Regex.to_string alpha a) (Regex.to_string alpha b)
        (Regex.to_string alpha c))
    ~shrink:(fun (alpha, a, b, c) ->
      let open QCheck.Iter in
      map (fun a' -> (alpha, a', b, c)) (shrink_regex a)
      <+> map (fun b' -> (alpha, a, b', c)) (shrink_regex b)
      <+> map (fun c' -> (alpha, a, b, c')) (shrink_regex c))

let arb_member_case ?(ext = false) ~max_len () =
  let open QCheck.Gen in
  let gen =
    let* alpha = gen_alphabet in
    let* re = pick_regex ext alpha in
    let* w = gen_word alpha max_len in
    return (alpha, re, w)
  in
  QCheck.make gen
    ~print:(fun (alpha, re, w) ->
      Printf.sprintf "%s  %s  w=%S" (pp_alpha alpha)
        (Regex.to_string alpha re) (Word.to_string alpha w))
    ~shrink:(fun (alpha, re, w) ->
      let open QCheck.Iter in
      map (fun re' -> (alpha, re', w)) (shrink_regex re)
      <+> map (fun w' -> (alpha, re, w')) (shrink_word w))

let arb_count_case () =
  let open QCheck.Gen in
  let gen =
    let* alpha = gen_alphabet in
    let* re = gen_plain_regex alpha in
    let* sym = int_bound (Alphabet.size alpha - 1) in
    let* n = int_bound 3 in
    return (alpha, re, sym, n)
  in
  QCheck.make gen
    ~print:(fun (alpha, re, sym, n) ->
      Printf.sprintf "%s  %s ‖_%s^%d" (pp_alpha alpha)
        (Regex.to_string alpha re) (Alphabet.name alpha sym) n)
    ~shrink:(fun (alpha, re, sym, n) ->
      let open QCheck.Iter in
      map (fun re' -> (alpha, re', sym, n)) (shrink_regex re)
      <+> if n > 0 then return (alpha, re, sym, n - 1) else empty)

(* --- extraction expressions --- *)

let gen_extraction : Extraction.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* alpha = gen_alphabet in
  let* mark = int_bound (Alphabet.size alpha - 1) in
  let* left = gen_plain_regex ~size:6 alpha in
  let* right = gen_plain_regex ~size:6 alpha in
  return (Extraction.make alpha left mark right)

let shrink_extraction (e : Extraction.t) : Extraction.t QCheck.Iter.t =
  let open QCheck.Iter in
  map
    (fun l -> Extraction.make e.Extraction.alpha l e.Extraction.mark e.Extraction.right)
    (shrink_regex e.Extraction.left)
  <+> map
        (fun r -> Extraction.make e.Extraction.alpha e.Extraction.left e.Extraction.mark r)
        (shrink_regex e.Extraction.right)

let print_extraction (e : Extraction.t) =
  Printf.sprintf "%s  %s" (pp_alpha e.Extraction.alpha) (Extraction.to_string e)

let arb_extraction_case () =
  QCheck.make gen_extraction ~print:print_extraction ~shrink:shrink_extraction

let arb_extraction_word_case () =
  let open QCheck.Gen in
  let gen =
    let* e = gen_extraction in
    let* w = gen_word e.Extraction.alpha 8 in
    return (e, w)
  in
  QCheck.make gen
    ~print:(fun (e, w) ->
      Printf.sprintf "%s  w=%S" (print_extraction e)
        (Word.to_string e.Extraction.alpha w))
    ~shrink:(fun (e, w) ->
      let open QCheck.Iter in
      map (fun e' -> (e', w)) (shrink_extraction e)
      <+> map (fun w' -> (e, w')) (shrink_word w))

(* Mark-free building blocks with the mark spliced in at most twice:
   the bounded-‖p‖ left sides Algorithm 6.2 requires. *)
let gen_bounded : Extraction.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* alpha = gen_alphabet in
  let k = Alphabet.size alpha in
  let* mark = int_bound (k - 1) in
  let others = List.filter (fun s -> s <> mark) (Alphabet.symbols alpha) in
  let leaf =
    frequency
      ((3, return (Regex.any_but mark))
      :: (1, return Regex.eps)
      ::
      (match others with
      | [] -> []
      | _ :: _ -> [ (6, map Regex.sym (oneofl others)) ]))
  in
  let pfree =
    fix
      (fun self n ->
        if n <= 1 then leaf
        else
          frequency
            [
              (3, leaf);
              (3, map2 Regex.alt (self (n / 2)) (self (n / 2)));
              (4, map2 Regex.cat (self (n / 2)) (self (n / 2)));
              (2, map Regex.star (self (n - 1)));
            ])
      6
  in
  let* a = pfree in
  let* b = pfree in
  let* c = pfree in
  let* shape = int_bound 2 in
  let left =
    match shape with
    | 0 -> a
    | 1 -> Regex.cat_list [ a; Regex.sym mark; b ]
    | _ -> Regex.cat_list [ a; Regex.sym mark; b; Regex.sym mark; c ]
  in
  return (Extraction.make alpha left mark Regex.sigma_star)

let arb_bounded_case () =
  QCheck.make gen_bounded ~print:print_extraction ~shrink:shrink_extraction

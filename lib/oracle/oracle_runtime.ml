(* Compute with every memo cache disabled: the direct lib/core path the
   runtime claims to be observationally identical to.  The flag is
   restored even when the property raises (QCheck records the raise as
   a violation; later cases must still see an enabled cache). *)
let uncached f =
  Runtime.set_enabled false;
  Fun.protect ~finally:(fun () -> Runtime.set_enabled true) f

(* Run cached twice: the first call may populate (miss path), the
   second must hit.  Both must agree with the direct answer. *)
let tri direct cached_f =
  let d = uncached direct in
  let c1 = cached_f () in
  let c2 = cached_f () in
  (d, c1, c2)

let tests ~count =
  [
    QCheck.Test.make ~count ~name:"cached ambiguity ≡ direct Prop 5.4 path"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let d, c1, c2 =
          tri
            (fun () -> Ambiguity.is_ambiguous e)
            (fun () -> Runtime.is_ambiguous e)
        in
        d = c1 && c1 = c2);
    QCheck.Test.make ~count
      ~name:"cached maximality verdict ≡ direct Cor 5.8 (incl. witnesses)"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let d, c1, c2 =
          tri (fun () -> Maximality.check e) (fun () -> Runtime.check_maximality e)
        in
        d = c1 && c1 = c2);
    QCheck.Test.make ~count ~name:"cached ambiguity witness ≡ direct witness"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let d, c1, c2 =
          tri (fun () -> Ambiguity.witness e) (fun () -> Runtime.ambiguity_witness e)
        in
        d = c1 && c1 = c2);
    QCheck.Test.make ~count
      ~name:"cached Def 5.1 quotient DFAs ≡ uncached, structurally"
      (Oracle_gen.arb_lang2_case ~ext:true ())
      (fun (alpha, a, b) ->
        let build () =
          let la = Lang.of_regex alpha a and lb = Lang.of_regex alpha b in
          ( Lang.dfa (Lang.suffix_quotient la lb),
            Lang.dfa (Lang.prefix_quotient lb la) )
        in
        let ds, dp = uncached build in
        let cs1, cp1 = build () in
        let cs2, cp2 = build () in
        Dfa.equal_structure ds cs1 && Dfa.equal_structure cs1 cs2
        && Dfa.equal_structure dp cp1
        && Dfa.equal_structure cp1 cp2);
    QCheck.Test.make ~count
      ~name:"hash-consing: structurally equal regexes share one node"
      (Oracle_gen.arb_lang_case ~ext:true ())
      (fun (_alpha, re) ->
        let n1 = Runtime.intern re in
        let n2 = Runtime.intern re in
        Regex.equal n1 re && n1 == n2);
    QCheck.Test.make ~count ~name:"Batch.map ≡ List.map for every job count"
      QCheck.(list small_int)
      (fun xs ->
        let f x = (x * 2) + 1 in
        let expect = List.map f xs in
        List.for_all
          (fun jobs -> Batch.map ~jobs f xs = expect)
          [ 1; 2; 3; 4 ]);
  ]

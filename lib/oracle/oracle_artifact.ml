(* Differential oracles for the [.rxc] artifact layer (Artifact).

   The checksum-licenses-unsafe_step invariant makes the loader part of
   the trusted base: a loaded artifact skips Dfa.validate on the
   matcher path.  These oracles keep that licence honest from both
   sides — the happy path (a loaded matcher must be observationally
   identical to a freshly compiled one, alone and under the pool) and
   the rejection path (every truncation and every single-bit flip of a
   well-formed file must come back as a structured [Error], never an
   exception and never [Ok]). *)

let roundtrip e =
  match Artifact.of_bytes (Artifact.to_bytes (Artifact.of_extraction e)) with
  | Ok a -> a
  | Error err ->
      QCheck.Test.fail_reportf "round-trip rejected: %s"
        (Artifact.error_to_string err)

let flip_bit s i j =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl j)));
  Bytes.to_string b

let structured_reject bytes =
  match Artifact.of_bytes bytes with
  | Ok _ -> false
  | Error _ -> true
  | exception e ->
      QCheck.Test.fail_reportf "of_bytes raised %s" (Printexc.to_string e)

let job_counts = [ 1; 2; 4 ]

let tests ~count =
  [
    QCheck.Test.make ~count
      ~name:"artifact: to_bytes ∘ of_bytes is the structural identity"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let a = Artifact.of_extraction e in
        let r = roundtrip e in
        Artifact.equal a r
        && r.Artifact.expr.Extraction.mark = e.Extraction.mark
        && Alphabet.names r.Artifact.alpha = Alphabet.names e.Extraction.alpha);
    QCheck.Test.make ~count
      ~name:"artifact: loaded matcher ≡ fresh compile on splits/extract"
      (Oracle_gen.arb_extraction_word_case ())
      (fun (e, w) ->
        let loaded = Artifact.matcher (roundtrip e) in
        let fresh = Extraction.compile e in
        Extraction.matcher_splits loaded w = Extraction.matcher_splits fresh w
        && Extraction.matcher_extract loaded w
           = Extraction.matcher_extract fresh w);
    QCheck.Test.make ~count
      ~name:"artifact: loaded matcher under Batch.map ≡ List.map, jobs 1/2/4"
      (Oracle_gen.arb_extraction_word_case ())
      (fun (e, w) ->
        let m = Artifact.matcher (roundtrip e) in
        let words =
          List.init 10 (fun k -> Array.sub w 0 (Array.length w * (k mod 5) / 5))
          @ [ w; w ]
        in
        let expect = List.map (Extraction.matcher_splits m) words in
        List.for_all
          (fun jobs ->
            Batch.map ~jobs (Extraction.matcher_splits m) words = expect)
          job_counts);
    QCheck.Test.make ~count
      ~name:"artifact: every truncation prefix is a structured rejection"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let bytes = Artifact.to_bytes (Artifact.of_extraction e) in
        let ok = ref true in
        for k = 0 to String.length bytes - 1 do
          if not (structured_reject (String.sub bytes 0 k)) then ok := false
        done;
        !ok);
    QCheck.Test.make ~count
      ~name:"artifact: every single-bit flip is a structured rejection"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let bytes = Artifact.to_bytes (Artifact.of_extraction e) in
        let ok = ref true in
        for i = 0 to String.length bytes - 1 do
          for j = 0 to 7 do
            if not (structured_reject (flip_bit bytes i j)) then ok := false
          done
        done;
        !ok);
    QCheck.Test.make ~count
      ~name:"artifact: seed_caches turns the first pipeline build into a hit"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        let a = roundtrip e in
        let was_enabled = Lang_cache.enabled () in
        Fun.protect
          ~finally:(fun () -> Lang_cache.set_enabled was_enabled)
          (fun () ->
            Lang_cache.set_enabled true;
            Lang_cache.clear ();
            Artifact.seed_caches a;
            (* look up through the loaded expression, as a consumer of
               the artifact would (its ASTs are the ones that intern to
               the seeded keys) *)
            let le = a.Artifact.expr in
            let hits0, _ = Lang_cache.counts Lang_cache.Compile in
            let left =
              Lang.dfa (Lang.of_regex le.Extraction.alpha le.Extraction.left)
            in
            let right =
              Lang.dfa (Lang.of_regex le.Extraction.alpha le.Extraction.right)
            in
            let hits1, _ = Lang_cache.counts Lang_cache.Compile in
            (* the seeded DFAs are what the pipeline would have built,
               and both lookups were served from the seed *)
            Dfa.equal_structure left a.Artifact.left_dfa
            && Dfa.equal_structure right a.Artifact.right_dfa
            && hits1 - hits0 = 2));
  ]

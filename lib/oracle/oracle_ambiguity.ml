let enum_bound alpha = if Alphabet.size alpha <= 2 then 5 else 4

let tests ~count =
  [
    QCheck.Test.make ~count ~name:"Prop 5.4 verdict = Prop 5.5 verdict"
      (Oracle_gen.arb_extraction_case ())
      (fun e -> Ambiguity.is_ambiguous e = Ambiguity.is_ambiguous_marker e);
    QCheck.Test.make ~count ~name:"witness is a doubly-split word, iff ambiguous"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        match Ambiguity.witness e with
        | Some w ->
            Ambiguity.is_ambiguous e
            && List.length (Extraction.splits_deriv e w) >= 2
        | None -> Ambiguity.is_unambiguous e);
    QCheck.Test.make ~count ~name:"unambiguous ⇒ ≤ 1 split on all short words"
      (Oracle_gen.arb_extraction_case ())
      (fun e ->
        (not (Ambiguity.is_unambiguous e))
        || Seq.for_all
             (fun w -> List.length (Extraction.splits_deriv e w) <= 1)
             (Word.enumerate e.Extraction.alpha (enum_bound e.Extraction.alpha)));
    QCheck.Test.make ~count ~name:"splits: brute = compiled matcher = derivatives"
      (Oracle_gen.arb_extraction_word_case ())
      (fun (e, w) ->
        let brute = Extraction.splits e w in
        let compiled = Extraction.matcher_splits (Extraction.compile e) w in
        let deriv = Extraction.splits_deriv e w in
        brute = compiled && compiled = deriv);
  ]

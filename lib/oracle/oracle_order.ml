(* A pair/triple of extraction expressions over one alphabet and mark,
   for the binary/ternary laws. *)
let gen_pair =
  let open QCheck.Gen in
  let* alpha = Oracle_gen.gen_alphabet in
  let* mark = int_bound (Alphabet.size alpha - 1) in
  let* l1 = Oracle_gen.gen_plain_regex ~size:6 alpha in
  let* r1 = Oracle_gen.gen_plain_regex ~size:6 alpha in
  let* l2 = Oracle_gen.gen_plain_regex ~size:6 alpha in
  let* r2 = Oracle_gen.gen_plain_regex ~size:6 alpha in
  return (Extraction.make alpha l1 mark r1, Extraction.make alpha l2 mark r2)

let arb_pair =
  QCheck.make gen_pair ~print:(fun (e, f) ->
      Printf.sprintf "%s  /  %s" (Extraction.to_string e) (Extraction.to_string f))

let tests ~count =
  [
    QCheck.Test.make ~count ~name:"≼ is reflexive"
      (Oracle_gen.arb_extraction_case ())
      (fun e -> Expr_order.preceq e e);
    QCheck.Test.make ~count ~name:"≼ is transitive on containment chains"
      (Oracle_gen.arb_lang3_case ())
      (fun (alpha, a, b, c) ->
        (* a ⊆ a|b ⊆ a|b|c holds by construction, so each ≼ premise does *)
        let mark = 0 in
        let e1 = Extraction.make alpha a mark a in
        let e2 =
          Extraction.make alpha (Regex.alt a b) mark (Regex.alt a b)
        in
        let e3 =
          Extraction.make alpha
            (Regex.alt_list [ a; b; c ])
            mark
            (Regex.alt_list [ a; b; c ])
        in
        Expr_order.preceq e1 e2 && Expr_order.preceq e2 e3
        && Expr_order.preceq e1 e3);
    QCheck.Test.make ~count ~name:"mutual ≼ = equivalence (antisymmetry)"
      arb_pair
      (fun (e, f) ->
        if Expr_order.preceq e f && Expr_order.preceq f e then
          Expr_order.equivalent e f
        else true);
    QCheck.Test.make ~count ~name:"f ≼ e ⇒ L(f) ⊆ L(e), and equivalent ⇒ same parse"
      arb_pair
      (fun (e, f) ->
        (if Expr_order.preceq f e then
           Lang.subset (Extraction.language f) (Extraction.language e)
         else true)
        && (if Expr_order.equivalent e f then Expr_order.same_parsed_language e f
            else true));
    QCheck.Test.make ~count ~name:"strictly_below is irreflexive and asymmetric"
      arb_pair
      (fun (e, f) ->
        (not (Expr_order.strictly_below e e))
        && (not (Expr_order.strictly_below f f))
        && not (Expr_order.strictly_below e f && Expr_order.strictly_below f e));
  ]

(* Differential oracles for the fused page front-end: raw bytes
   through [Front] must be observationally identical to the
   materializing lex → tree → tag-sequence → matcher pipeline, and the
   class-compressed matcher tables must be a sound quotient. *)

let arb_seed = QCheck.int_range 0 1_000_000

(* One learned wrapper shared by the page-level tests: the Figure 1
   shopbot scenario, learned once (maximization is the expensive
   part). *)
let the_wrapper =
  lazy
    (let top = Pagegen.figure1_top () in
     let bottom = Pagegen.figure1_bottom () in
     let alpha = Wrapper.alphabet_for [ top; bottom ] in
     let pt = Option.get (Pagegen.target_path top) in
     let pb = Option.get (Pagegen.target_path bottom) in
     match Wrapper.learn ~alpha [ (top, pt); (bottom, pb) ] with
     | Ok w -> (w, Wrapper.compile w)
     | Error _ -> failwith "oracle_front: Figure 1 wrapper failed to learn")

let page_of_seed seed =
  let rng = Random.State.make [| 0xf407; seed |] in
  Pagegen.generate rng (Pagegen.random_profile rng)

(* Both paths over the same bytes; the tree path re-parses the
   serialized string so the comparison is bytes-in, answer-out. *)
let both_paths cw html =
  (Wrapper.extract_raw cw html, Wrapper.extract_compiled cw (Html_tree.parse html))

(* Front.word and Tag_seq.of_doc as total functions into a comparable
   sum, so "same exception" is part of the identity. *)
let word_fused tbl html =
  match Front.word tbl html with
  | w -> Ok (Array.to_list w)
  | exception Tag_seq.Unknown_symbol t -> Error t

let word_tree ~abs alpha html =
  match Tag_seq.of_doc ~abs alpha (Html_tree.parse html) with
  | w -> Ok (Array.to_list w)
  | exception Tag_seq.Unknown_symbol t -> Error t

let stream_word tbl chunks =
  let acc = ref [] in
  let emit a = acc := a :: !acc in
  let st = Front.stream_make tbl in
  let rec go = function
    | [] -> (
        match Front.stream_finish st ~emit with
        | Ok () -> Ok (List.rev !acc)
        | Error t -> Error t)
    | c :: rest -> (
        match Front.stream_feed st c ~emit with
        | Ok () -> go rest
        | Error t -> Error t)
  in
  go chunks

let tests ~count =
  [
    QCheck.Test.make ~count
      ~name:"front: fused extraction ≡ tree extraction on catalog pages"
      arb_seed
      (fun seed ->
        let w, cw = Lazy.force the_wrapper in
        let html = Html_tree.to_string (page_of_seed seed) in
        let fused, tree = both_paths cw html in
        let tbl = Front.build ~abs:w.Wrapper.abs w.Wrapper.alpha in
        fused = tree
        && word_fused tbl html
           = word_tree ~abs:w.Wrapper.abs w.Wrapper.alpha html);
    QCheck.Test.make ~count:(max 1 (count / 5))
      ~name:"front: raw batch ≡ tree batch at jobs 1/2/4" arb_seed
      (fun seed ->
        let w, _ = Lazy.force the_wrapper in
        let htmls =
          List.init 6 (fun i ->
              Html_tree.to_string (page_of_seed ((seed * 7) + i)))
        in
        let docs = List.map Html_tree.parse htmls in
        let tree = Wrapper.extract_batch ~jobs:1 w docs in
        List.for_all
          (fun jobs -> Wrapper.extract_raw_batch ~jobs w htmls = tree)
          [ 1; 2; 4 ]);
    QCheck.Test.make ~count
      ~name:"front: fused ≡ tree on perturbed pages (chunked too)"
      (QCheck.pair arb_seed (QCheck.int_range 1 3))
      (fun (seed, intensity) ->
        let w, cw = Lazy.force the_wrapper in
        let rng = Random.State.make [| 0xbadd; seed |] in
        let doc = Perturb.perturb rng ~intensity (page_of_seed seed) in
        let html = Html_tree.to_string doc in
        let fused, tree = both_paths cw html in
        let tbl = Front.build ~abs:w.Wrapper.abs w.Wrapper.alpha in
        let whole = word_fused tbl html in
        let cut = String.length html / 2 in
        let chunked =
          stream_word tbl
            [ String.sub html 0 cut;
              String.sub html cut (String.length html - cut) ]
          |> Result.map (fun l -> l)
        in
        fused = tree
        && whole = word_tree ~abs:w.Wrapper.abs w.Wrapper.alpha html
        && chunked = whole);
    QCheck.Test.make ~count
      ~name:"front: class compression is a sound quotient"
      (QCheck.pair (Oracle_gen.arb_extraction_word_case ()) arb_seed)
      (fun ((e, w), seed) ->
        let m = Extraction.compile e in
        let comp = Extraction.matcher_compressed m in
        let n = Alphabet.size e.Extraction.alpha in
        let mark = e.Extraction.mark in
        (* structure: total surjective map, singleton mark class *)
        Array.length comp.Extraction.class_of = n
        && comp.Extraction.c_left.Dfa.alpha_size
           = comp.Extraction.n_classes
        && comp.Extraction.c_right_rev.Dfa.alpha_size
           = comp.Extraction.n_classes
        && Array.for_all
             (fun c -> c >= 0 && c < comp.Extraction.n_classes)
             comp.Extraction.class_of
        && comp.Extraction.class_of.(mark) = comp.Extraction.c_mark
        && Array.for_all Fun.id
             (Array.init n (fun a ->
                  (comp.Extraction.class_of.(a) = comp.Extraction.c_mark)
                  = (a = mark)))
        (* class-space run answers the symbol-space positions *)
        && Extraction.matcher_splits_classes m
             (Array.map (fun a -> comp.Extraction.class_of.(a)) w)
           = Extraction.matcher_splits m w
        (* behavioral soundness: swapping each symbol for a random
           same-class representative never changes a split *)
        &&
        let rng = Random.State.make [| 0xc1a5; seed |] in
        let reps = Array.init comp.Extraction.n_classes (fun _ -> []) in
        Array.iteri
          (fun a c -> reps.(c) <- a :: reps.(c))
          comp.Extraction.class_of;
        let swap a =
          let peers = reps.(comp.Extraction.class_of.(a)) in
          List.nth peers (Random.State.int rng (List.length peers))
        in
        Extraction.matcher_splits m (Array.map swap w)
        = Extraction.matcher_splits m w);
    QCheck.Test.make ~count
      ~name:"front: unknown-symbol errors are identical" arb_seed
      (fun seed ->
        let w, cw = Lazy.force the_wrapper in
        let html = Html_tree.to_string (page_of_seed seed) in
        (* splice an out-of-alphabet element at a seed-chosen byte
           offset: wherever it lands — text, tag, attribute — both
           paths see the same bytes and must answer identically *)
        let cut = seed mod (String.length html + 1) in
        let html' =
          String.sub html 0 cut ^ "<blink>"
          ^ String.sub html cut (String.length html - cut)
        in
        let fused, tree = both_paths cw html' in
        let tbl = Front.build ~abs:w.Wrapper.abs w.Wrapper.alpha in
        fused = tree
        && word_fused tbl html'
           = word_tree ~abs:w.Wrapper.abs w.Wrapper.alpha html'
        (* the canonical prefix splice names the culprit *)
        && Wrapper.extract_raw cw ("<blink>" ^ html)
           = Error (Wrapper.Unknown_tag "BLINK"));
    QCheck.Test.make ~count
      ~name:"front: tag-soup equivalence under both abstractions"
      Oracle_soup.arb_htmlish
      (fun s ->
        List.for_all
          (fun abs ->
            (* close the alphabet over the parsed soup so the tree
               path is total, then demand byte-level identity from the
               fused pass — one-shot and split at the midpoint *)
            let alpha = Wrapper.alphabet_for ~abs [ Html_tree.parse s ] in
            let tbl = Front.build ~abs alpha in
            let whole = word_fused tbl s in
            let cut = String.length s / 2 in
            whole = word_tree ~abs alpha s
            && stream_word tbl
                 [ String.sub s 0 cut;
                   String.sub s cut (String.length s - cut) ]
               = whole)
          [
            Abstraction.Tags;
            Abstraction.Tags_with_attrs [ ("INPUT", "type"); ("A", "href") ];
          ]);
  ]

let tests ~count =
  [
    QCheck.Test.make ~count ~name:"E‖_p^n = {w ∈ E | #p(w) = n} on words ≤ 4"
      (Oracle_gen.arb_count_case ())
      (fun (alpha, re, sym, n) ->
        let l = Lang.of_regex alpha re in
        let f = Lang.filter_count l ~sym n in
        Seq.for_all
          (fun w ->
            Lang.mem f w = (Lang.mem l w && Word.count sym w = n))
          (Word.enumerate alpha 4));
    QCheck.Test.make ~count ~name:"max_sym_count bound is attained and tight"
      (Oracle_gen.arb_count_case ())
      (fun (alpha, re, sym, _) ->
        let l = Lang.of_regex alpha re in
        match Lang.max_sym_count l ~sym with
        | `Empty -> Lang.is_empty l
        | `Unbounded -> not (Lang.is_empty l)
        | `Bounded k ->
            (not (Lang.is_empty (Lang.filter_count l ~sym k)))
            && Lang.is_empty (Lang.filter_count l ~sym (k + 1)));
    QCheck.Test.make ~count ~name:"bounded_mark_count agrees with max_sym_count"
      (Oracle_gen.arb_count_case ())
      (fun (alpha, re, sym, _) ->
        let l = Lang.of_regex alpha re in
        match (Left_filter.bounded_mark_count l sym, Lang.max_sym_count l ~sym) with
        | Some n, `Bounded k -> n = k
        | Some 0, `Empty -> true
        | None, `Unbounded -> true
        | _ -> false);
  ]

(** Differential membership oracle.

    The repo has two fully independent membership procedures: extended
    Brzozowski derivatives on the syntax ({!Regex.matches}) and the
    compiled minimal-DFA pipeline ({!Lang.mem}, via Thompson/subset
    construction or the boolean algebra on DFAs).  They share no code
    below the AST, so agreement on random and exhaustively enumerated
    inputs is strong evidence both are right.  {!Lang.sample} — the
    primitive every other oracle uses to produce members — is audited
    here too. *)

val tests : count:int -> QCheck.Test.t list

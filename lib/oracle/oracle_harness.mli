(** Budgeted, reproducible execution of the oracle campaign.

    {!run} splits a total case budget evenly over every test of every
    suite, runs each with a PRNG state derived only from the campaign
    seed and the test's position, and collects per-test outcomes with
    {e minimized} counterexamples (QCheck shrinking).  Two campaigns
    with the same seed and budget produce byte-identical reports — the
    report contains no timing, no pointers, and no ambient randomness —
    so a CI failure is replayed locally by copying two integers. *)

type outcome = {
  suite : string;  (** suite the test belongs to, e.g. ["quotient-laws"] *)
  test : string;  (** the QCheck test name *)
  cases : int;  (** cases actually executed *)
  violations : int;
  counterexample : string option;  (** minimized, printed; [None] iff 0 violations *)
}

type suite = { name : string; tests : count:int -> QCheck.Test.t list }

val all : suite list
(** The fourteen oracle layers: membership, counting, quotient-laws,
    ambiguity, maximality, order-laws, synthesis, runtime (the cached
    pipeline vs. the direct one), guard (budgeted verdicts vs.
    unbounded ones, fuel monotonicity, fault-injected batch
    isolation), sched (the work-stealing pool vs. sequential
    [List.map], matcher scratch path vs. its allocating reference),
    obs (tracing is observation only), artifact (save∘load identity,
    loaded ≡ fresh matchers, deserializer totality under truncation
    and bit flips, cache seeding), serve (streamed sessions vs. the
    offline matcher at every job count, fault/budget isolation as
    byte identity, shed-then-retry equivalence, frame-decoder
    totality), front (the fused zero-copy page pass vs. the
    materializing lex → tree → tag-sequence pipeline, chunk-boundary
    invariance, class-compression soundness). *)

val run : seed:int -> budget:int -> suite list -> outcome list
(** [run ~seed ~budget suites] — [budget] is the total number of fuzz
    cases, split evenly (at least 1 per test). *)

val total_cases : outcome list -> int
val total_violations : outcome list -> int

val pp_report : seed:int -> budget:int -> Format.formatter -> outcome list -> unit
(** The selftest report: a fixed-width table of per-test outcomes,
    counterexample blocks for any violations, and a final verdict
    line.  Deterministic given the outcomes. *)

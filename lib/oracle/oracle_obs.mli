(** Differential oracles for the observability layer (lib/obs).

    Tracing must be purely observational: every verdict, split and
    batch result must be bit-identical with tracing enabled vs
    disabled — including under pool fan-out and under Guard
    exhaustion — and the metrics snapshot must reconcile exactly with
    the pre-existing {!Runtime.Stats} and {!Pool.stats} counters and
    with {!Guard.Budget} fuel accounting. *)

val tests : count:int -> QCheck.Test.t list

let tests ~count =
  [
    QCheck.Test.make ~count
      ~name:"maximize: unambiguous ∧ maximal ∧ ≼-above input (Prop 6.5)"
      (Oracle_gen.arb_bounded_case ())
      (fun e ->
        match Synthesis.maximize e with
        | Ok (e', _) ->
            Ambiguity.is_unambiguous e'
            && Maximality.is_maximal e'
            && Expr_order.preceq e e'
        | Error (Synthesis.Ambiguous _) -> Ambiguity.is_ambiguous e
        | Error Synthesis.No_strategy -> true);
    QCheck.Test.make ~count ~name:"maximize is idempotent (Already_maximal)"
      (Oracle_gen.arb_bounded_case ())
      (fun e ->
        match Synthesis.maximize e with
        | Error _ -> true
        | Ok (e', _) -> (
            match Synthesis.maximize e' with
            | Ok (e'', Synthesis.Already_maximal) -> Expr_order.equivalent e' e''
            | Ok _ | Error _ -> false));
    QCheck.Test.make ~count ~name:"members of maximized languages extract uniquely"
      (QCheck.pair (Oracle_gen.arb_bounded_case ()) QCheck.small_int)
      (fun (e, seed) ->
        match Synthesis.maximize e with
        | Error _ -> true
        | Ok (e', _) -> (
            let rng = Random.State.make [| seed |] in
            match Lang.sample (Extraction.language e') rng ~max_len:12 with
            | None -> true
            | Some w -> (
                match Extraction.extract e' w with
                | `Unique _ -> true
                | `Ambiguous _ | `No_match -> false)));
  ]

(* Differential oracles for the serve subsystem: the supervised
   streaming daemon must be observationally identical to the offline
   matcher — for every job count, across any batch or chunk boundary
   placement, and under the full degradation ladder (injected faults,
   exhausted budgets, shed admissions).  Isolation is checked as byte
   identity: the frames of unaffected sessions must not change by one
   byte when a neighbour dies. *)

let with_faults site ~at f =
  Guard_faults.arm site ~at;
  Fun.protect ~finally:Guard_faults.disarm f

(* Streaming is only defined for Σ*-right expressions (§7), so every
   generated expression is re-rooted on Σ* — the same move the
   maximization pipeline performs before going online. *)
let onlineify e =
  Extraction.make e.Extraction.alpha e.Extraction.left e.Extraction.mark
    Regex.sigma_star

(* --- incoming-frame builders (JSON via the same printer the daemon's
       decoder is fuzzed against) --- *)

let line fields = Obs.Json.to_string (Obs.Json.Obj fields)

let open_line ?fuel id =
  let open Obs.Json in
  line
    (("op", Str "open") :: ("id", Int id)
    :: (match fuel with None -> [] | Some f -> [ ("fuel", Int f) ]))

let tokens_line alpha id syms =
  let open Obs.Json in
  line
    [
      ("op", Str "tokens");
      ("id", Int id);
      ("syms", List (List.map (fun a -> Str (Alphabet.name alpha a)) syms));
    ]

let close_line id =
  let open Obs.Json in
  line [ ("op", Str "close"); ("id", Int id) ]

let sup ?(jobs = 1) ?(max_sessions = 64) ?fuel m alpha =
  Supervisor.create
    {
      Supervisor.matcher = m;
      alpha;
      jobs;
      max_sessions;
      fuel;
      deadline_ms = None;
      retry_after_ms = Supervisor.default_retry_after_ms;
      heal = None;
    }

(* One session per derived word: full word, half prefix, short prefix —
   skewed enough that the parallel advance pass has real imbalance. *)
let words_of w =
  let n = Array.length w in
  [ w; Array.sub w 0 (n / 2); Array.sub w 0 (min n 3) ]

(* Interleaved script: all opens, then the sessions' token chunks
   round-robin (two chunks each), then all closes — the adversarial
   ordering for anything keyed on "one session at a time". *)
let script alpha words =
  let opens = List.mapi (fun i _ -> open_line (i + 1)) words in
  let halves =
    List.mapi
      (fun i w ->
        let n = Array.length w in
        let syms lo hi =
          List.init (hi - lo) (fun k -> w.(lo + k))
        in
        ( tokens_line alpha (i + 1) (syms 0 (n / 2)),
          tokens_line alpha (i + 1) (syms (n / 2) n) ))
      words
  in
  let closes = List.mapi (fun i _ -> close_line (i + 1)) words in
  opens @ List.map fst halves @ List.map snd halves @ closes

let frame_id = function
  | Frame.Err_decode _ | Frame.Healed _ -> None
  | Frame.Opened { id }
  | Frame.Split { id; _ }
  | Frame.Closed { id; _ }
  | Frame.Err_proto { id; _ }
  | Frame.Err_shed { id; _ }
  | Frame.Err_refused { id }
  | Frame.Err_budget { id; _ }
  | Frame.Err_fault { id; _ } ->
      Some id

let splits_for id frames =
  List.filter_map
    (function
      | Frame.Split { id = i; pos } when i = id -> Some pos | _ -> None)
    frames

let bytes_for id frames =
  frames
  |> List.filter (fun f -> frame_id f = Some id)
  |> List.map Frame.encode

let tests ~count =
  [
    QCheck.Test.make ~count
      ~name:"serve: streamed sessions ≡ offline matcher_splits, jobs 1/2/4"
      (Oracle_gen.arb_extraction_word_case ())
      (fun (e, w) ->
        let e = onlineify e in
        let m = Extraction.compile e in
        let alpha = e.Extraction.alpha in
        let words = words_of w in
        let lines = script alpha words in
        let out jobs = Supervisor.handle_batch (sup ~jobs m alpha) lines in
        let base = out 1 in
        out 2 = base
        && out 4 = base
        && List.for_all
             (fun (i, wi) ->
               let id = i + 1 in
               splits_for id base = Extraction.matcher_splits m wi
               && List.exists
                    (function
                      | Frame.Closed { id = i'; splits; tokens } ->
                          i' = id
                          && splits
                             = List.length (Extraction.matcher_splits m wi)
                          && tokens = Array.length wi
                      | _ -> false)
                    base)
             (List.mapi (fun i wi -> (i, wi)) words));
    QCheck.Test.make ~count
      ~name:"serve: output is invariant under batch boundary placement"
      (Oracle_gen.arb_extraction_word_case ())
      (fun (e, w) ->
        let e = onlineify e in
        let m = Extraction.compile e in
        let alpha = e.Extraction.alpha in
        let lines = script alpha (words_of w) in
        let one_batch = Supervisor.handle_batch (sup m alpha) lines in
        let per_line =
          let s = sup m alpha in
          List.concat_map (Supervisor.handle_line s) lines
        in
        (* and per-token chunking of a single session's stream *)
        let whole =
          Supervisor.handle_batch (sup m alpha)
            (open_line 1
            :: tokens_line alpha 1 (Array.to_list w)
            :: [ close_line 1 ])
        in
        let per_token =
          Supervisor.handle_batch (sup m alpha)
            ((open_line 1
             :: List.map (fun a -> tokens_line alpha 1 [ a ]) (Array.to_list w))
            @ [ close_line 1 ])
        in
        one_batch = per_line
        && splits_for 1 whole = splits_for 1 per_token
        && List.filter (fun f -> frame_id f = None) per_token = []);
    QCheck.Test.make ~count
      ~name:"serve: a poisoned session leaves the others byte-identical"
      (QCheck.pair (Oracle_gen.arb_extraction_word_case ())
         QCheck.(int_range 0 2))
      (fun ((e, w), victim) ->
        let e = onlineify e in
        let m = Extraction.compile e in
        let alpha = e.Extraction.alpha in
        let words = words_of w in
        let lines = script alpha words in
        let clean = Supervisor.handle_batch (sup m alpha) lines in
        let faulted =
          with_faults Guard_faults.Session_item ~at:[ victim ] (fun () ->
              Supervisor.handle_batch (sup m alpha) lines)
        in
        let victim_id = victim + 1 in
        List.for_all
          (fun (i, _) ->
            let id = i + 1 in
            id = victim_id || bytes_for id faulted = bytes_for id clean)
          (List.mapi (fun i wi -> (i, wi)) words)
        && List.exists
             (function
               | Frame.Err_fault { id; _ } -> id = victim_id | _ -> false)
             faulted
        && not
             (List.exists
                (function
                  | Frame.Closed { id; _ } -> id = victim_id | _ -> false)
                faulted));
    QCheck.Test.make ~count
      ~name:"serve: shed-then-retry observes the session it would have had"
      (Oracle_gen.arb_extraction_word_case ())
      (fun (e, w) ->
        let e = onlineify e in
        let m = Extraction.compile e in
        let alpha = e.Extraction.alpha in
        let syms = Array.to_list w in
        let s = sup ~max_sessions:1 m alpha in
        let b1 = Supervisor.handle_batch s [ open_line 1; open_line 2 ] in
        let _b2 =
          Supervisor.handle_batch s
            [ tokens_line alpha 1 syms; close_line 1 ]
        in
        let retry =
          Supervisor.handle_batch s
            [ open_line 2; tokens_line alpha 2 syms; close_line 2 ]
        in
        let control =
          Supervisor.handle_batch (sup m alpha)
            [ open_line 2; tokens_line alpha 2 syms; close_line 2 ]
        in
        b1
        = [
            Frame.Opened { id = 1 };
            Frame.Err_shed
              {
                id = 2;
                retry_after_ms = Supervisor.default_retry_after_ms;
              };
          ]
        && retry = control);
    QCheck.Test.make ~count
      ~name:"serve: budget exhaustion is isolated; ample fuel ≡ unbudgeted"
      (Oracle_gen.arb_extraction_word_case ())
      (fun (e, w) ->
        let e = onlineify e in
        let m = Extraction.compile e in
        let alpha = e.Extraction.alpha in
        let n = Array.length w in
        let syms = Array.to_list w in
        let solo fuel =
          Supervisor.handle_batch (sup m alpha)
            [ open_line ?fuel 2; tokens_line alpha 2 syms; close_line 2 ]
        in
        (* fuel beyond the stream length is unobservable *)
        let ample_invisible =
          bytes_for 2 (solo (Some (n + 1))) = bytes_for 2 (solo None)
        in
        if n = 0 then ample_invisible
        else
          (* session 1 starves at its last token; session 2, fed the
             same stream unbudgeted, must not notice *)
          let pair =
            Supervisor.handle_batch (sup m alpha)
              [
                open_line ~fuel:(n - 1) 1;
                open_line 2;
                tokens_line alpha 1 syms;
                tokens_line alpha 2 syms;
                close_line 1;
                close_line 2;
              ]
          in
          ample_invisible
          && bytes_for 2 pair = bytes_for 2 (solo None)
          && List.exists
               (function
                 | Frame.Err_budget { id = 1; stage; spent; limit } ->
                     stage = "stream" && spent = n && limit = n - 1
                 | _ -> false)
               pair);
    QCheck.Test.make ~count
      ~name:"serve: Frame.decode is total and inverts the frame builders"
      QCheck.(
        triple small_nat (small_list (string_of_size (Gen.int_range 0 6)))
          (string_of_size (Gen.int_range 0 40)))
      (fun (id, names, junk) ->
        let total s =
          match Frame.decode s with Ok _ | Error _ -> true
        in
        let alpha = Alphabet.make [ "p"; "q" ] in
        let w = [ 0; 1; 0 ] in
        total junk
        && total (String.concat "" names)
        && Frame.decode (open_line id) = Ok (Frame.Open { id; fuel = None; deadline_ms = None })
        && Frame.decode (open_line ~fuel:7 id)
           = Ok (Frame.Open { id; fuel = Some 7; deadline_ms = None })
        && Frame.decode (tokens_line alpha id w)
           = Ok (Frame.Tokens { id; syms = [ "p"; "q"; "p" ] })
        && Frame.decode (close_line id) = Ok (Frame.Close { id })
        &&
        (* arbitrary symbol names survive the JSON round trip *)
        match
          Frame.decode
            (line
               Obs.Json.
                 [
                   ("op", Str "tokens");
                   ("id", Int id);
                   ("syms", List (List.map (fun s -> Str s) names));
                 ])
        with
        | Ok (Frame.Tokens { id = i; syms }) -> i = id && syms = names
        | _ -> false);
  ]

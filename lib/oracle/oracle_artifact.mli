(** Differential oracles for the [.rxc] artifact layer: save∘load is
    the identity on compiled expressions, a loaded matcher is
    observationally identical to a freshly compiled one (sequentially
    and across the pool), the deserializer is total and rejects every
    truncation and single-bit corruption with a structured error, and
    cache seeding installs exactly the DFAs the pipeline would have
    built. *)

val tests : count:int -> QCheck.Test.t list

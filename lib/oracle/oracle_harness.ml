type outcome = {
  suite : string;
  test : string;
  cases : int;
  violations : int;
  counterexample : string option;
}

type suite = { name : string; tests : count:int -> QCheck.Test.t list }

let all =
  [
    { name = "membership"; tests = Oracle_membership.tests };
    { name = "counting"; tests = Oracle_counting.tests };
    { name = "quotient-laws"; tests = Oracle_quotient.tests };
    { name = "ambiguity"; tests = Oracle_ambiguity.tests };
    { name = "maximality"; tests = Oracle_maximality.tests };
    { name = "order-laws"; tests = Oracle_order.tests };
    { name = "synthesis"; tests = Oracle_synthesis.tests };
    { name = "runtime"; tests = Oracle_runtime.tests };
    { name = "guard"; tests = Oracle_guard.tests };
    { name = "sched"; tests = Oracle_sched.tests };
    { name = "obs"; tests = Oracle_obs.tests };
    { name = "artifact"; tests = Oracle_artifact.tests };
    { name = "serve"; tests = Oracle_serve.tests };
    { name = "front"; tests = Oracle_front.tests };
    { name = "heal"; tests = Oracle_heal.tests };
  ]

let run_one ~seed ~index ~suite t =
  let (QCheck2.Test.Test cell) = t in
  (* State depends only on (seed, position): reports replay byte-for-byte. *)
  let rand = Random.State.make [| 0x5e1f7e57; seed; index |] in
  let res = QCheck.Test.check_cell ~rand cell in
  let test = QCheck.Test.get_name cell in
  let cases = QCheck.TestResult.get_count res in
  match QCheck.TestResult.get_state res with
  | QCheck.TestResult.Success ->
      { suite; test; cases; violations = 0; counterexample = None }
  | QCheck.TestResult.Failed { instances } ->
      {
        suite;
        test;
        cases;
        violations = List.length instances;
        counterexample = Some (QCheck.Test.print_c_ex cell (List.hd instances));
      }
  | QCheck.TestResult.Failed_other { msg } ->
      { suite; test; cases; violations = 1; counterexample = Some msg }
  | QCheck.TestResult.Error { instance; exn; backtrace = _ } ->
      {
        suite;
        test;
        cases;
        violations = 1;
        counterexample =
          Some
            (Printf.sprintf "%s raised %s"
               (QCheck.Test.print_c_ex cell instance)
               (Printexc.to_string exn));
      }

let run ~seed ~budget suites =
  let n_tests =
    List.fold_left (fun acc s -> acc + List.length (s.tests ~count:1)) 0 suites
  in
  let per_test = max 1 (budget / max 1 n_tests) in
  let index = ref 0 in
  List.concat_map
    (fun s ->
      List.map
        (fun t ->
          let i = !index in
          incr index;
          run_one ~seed ~index:i ~suite:s.name t)
        (s.tests ~count:per_test))
    suites

let total_cases = List.fold_left (fun acc o -> acc + o.cases) 0
let total_violations = List.fold_left (fun acc o -> acc + o.violations) 0

let pp_report ~seed ~budget ppf outcomes =
  Format.fprintf ppf "rexdex selftest — differential oracle campaign@.";
  Format.fprintf ppf "seed %d · budget %d cases · %d oracle tests@.@." seed
    budget (List.length outcomes);
  List.iter
    (fun o ->
      Format.fprintf ppf "  %-14s %-52s %5d  %s@." o.suite o.test o.cases
        (if o.violations = 0 then "ok"
         else Printf.sprintf "%d VIOLATION%s" o.violations
                (if o.violations = 1 then "" else "S")))
    outcomes;
  List.iter
    (fun o ->
      match o.counterexample with
      | None -> ()
      | Some cex ->
          Format.fprintf ppf "@.VIOLATION in %s / %s:@.  %s@." o.suite o.test
            cex)
    outcomes;
  let violations = total_violations outcomes in
  Format.fprintf ppf "@.%s: %d cases, %d violation%s@."
    (if violations = 0 then "selftest OK" else "selftest FAILED")
    (total_cases outcomes) violations
    (if violations = 1 then "" else "s")

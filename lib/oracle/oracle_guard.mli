(** Differential oracles for the budgeted-execution layer (lib/guard).

    The guard's contract has three faces, each fuzzed here:

    - {e conservativeness}: with ample fuel, every [*_bounded] entry
      point answers [Decided v] where [v] is bit-identical to the
      unbounded procedure — fuel meters work, it never alters it;
    - {e monotonicity}: once a decision is [Decided] at fuel [F], every
      fuel [≥ F] is [Decided] with the same value — more budget can
      only turn [Unknown] into [Decided], never flip an answer;
    - {e isolation}: under injected faults, a batch run equals the
      fault-free run minus {e exactly} the faulted indices, for every
      job count. *)

val tests : count:int -> QCheck.Test.t list

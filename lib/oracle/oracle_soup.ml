let gen_bytes =
  QCheck.Gen.(map Bytes.unsafe_to_string (bytes_size (int_bound 300)))

let arb_bytes =
  QCheck.make ~print:String.escaped ~shrink:QCheck.Shrink.string gen_bytes

let of_chars chars size =
  QCheck.Gen.(
    map
      (fun l -> String.init (List.length l) (List.nth l))
      (list_size (int_bound size) (oneofl chars)))

let html_chars =
  [ '<'; '>'; '/'; '='; '"'; '\''; '!'; '-'; 'a'; 'b'; 'p'; ' '; '\n' ]

let arb_htmlish =
  QCheck.make ~print:String.escaped ~shrink:QCheck.Shrink.string
    (of_chars html_chars 400)

let dtd_chars =
  [ '<'; '>'; '!'; '('; ')'; '|'; ','; '*'; '+'; '?'; '#'; 'E'; 'L'; 'M';
    'N'; 'T'; 'A'; 'a'; ' ' ]

let arb_dtdish =
  QCheck.make ~print:String.escaped ~shrink:QCheck.Shrink.string
    QCheck.Gen.(map (fun s -> "<!ELEMENT " ^ s) (of_chars dtd_chars 120))

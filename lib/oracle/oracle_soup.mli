(** Adversarial string generators for totality fuzzing.

    The HTML/DTD/regex parsers must be total: arbitrary byte soup and
    near-miss grammatical shapes may be rejected with errors but must
    never raise unexpectedly or hang.  The generators live here (rather
    than in the test tree) so the CLI selftest and any future harness
    share one definition; all carry shrinkers so a crashing input
    minimizes to its smallest reproduction. *)

val arb_bytes : string QCheck.arbitrary
(** Arbitrary bytes, length ≤ 300. *)

val arb_htmlish : string QCheck.arbitrary
(** Tag-soup alphabet (angle brackets, slashes, quotes, equals, bangs,
    dashes, a few letters, whitespace), length ≤ 400 — biased to hit
    the lexer's state machine. *)

val arb_dtdish : string QCheck.arbitrary
(** Truncated/garbled [<!ELEMENT] declarations. *)

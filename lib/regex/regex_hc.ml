(* Symset values are balanced trees, so two equal sets can differ in
   shape; the hash must fold over the elements, not the representation
   (which also rules out Hashtbl.hash on the AST). *)
let hash_syms syms =
  Symset.fold (fun s h -> (h * 31) + s + 1) syms 0x53

let rec hash (e : Regex.t) =
  match e with
  | Regex.Empty -> 0x11
  | Regex.Eps -> 0x23
  | Regex.Cls { neg; syms } ->
      (if neg then 0x3501 else 0x3500) lxor (hash_syms syms * 131)
  | Regex.Alt (a, b) -> combine 0x41 a b
  | Regex.Cat (a, b) -> combine 0x43 a b
  | Regex.Inter (a, b) -> combine 0x47 a b
  | Regex.Diff (a, b) -> combine 0x4d a b
  | Regex.Star a -> (hash a * 599) lxor 0x51
  | Regex.Compl a -> (hash a * 757) lxor 0x53

and combine tag a b = (((hash a * 1009) + hash b) * 31) + tag

module H = Hashtbl.Make (struct
  type t = Regex.t

  let equal = Regex.equal
  let hash = hash
end)

type entry = { node : Regex.t; id : int }

let table : entry H.t = H.create 1024
let mutex = Mutex.create ()
let next_id = ref 0
let hit_count = ref 0
let miss_count = ref 0

let intern e =
  Mutex.protect mutex (fun () ->
      match H.find_opt table e with
      | Some { node; id } ->
          incr hit_count;
          (node, id)
      | None ->
          incr miss_count;
          let id = !next_id in
          incr next_id;
          H.replace table e { node = e; id };
          (e, id))

let intern_node e = fst (intern e)
let stats () = Mutex.protect mutex (fun () -> (!hit_count, !miss_count))
let table_size () = Mutex.protect mutex (fun () -> H.length table)

let reset () =
  Mutex.protect mutex (fun () ->
      H.reset table;
      hit_count := 0;
      miss_count := 0)

(** Hash-consing of regular expressions.

    The decision procedures of §5–§6 repeatedly rebuild structurally
    equal expressions (the two sides of an extraction expression, the
    outputs of {!Lang.to_regex}, the intermediate unions of Algorithm
    6.2).  Interning maps every such expression to a single canonical
    node with a stable integer identity, so

    - structurally equal expressions become physically shared ([==]),
      and
    - downstream caches (the compiled-automaton cache in {!Lang}, the
      decision-verdict cache in {!Runtime}) can key on a machine word
      instead of re-hashing the whole AST.

    Interning is shallow: the argument itself becomes (or maps to) the
    canonical node; subterms are shared only insofar as callers intern
    them too.  The table is append-only between {!reset}s; identities
    are never reused, even across a reset, so a stale id held by an
    external cache can never collide with a live one.

    All operations are thread-safe (one process-global table behind a
    mutex). *)

val intern : Regex.t -> Regex.t * int
(** [intern e] — the canonical node structurally equal to [e], and its
    unique identity.  The first caller's node becomes canonical. *)

val intern_node : Regex.t -> Regex.t
(** [fst (intern e)]. *)

val stats : unit -> int * int
(** [(hits, misses)] — interning lookups that found an existing node
    vs. ones that registered a fresh one. *)

val table_size : unit -> int

val reset : unit -> unit
(** Drop the table and the counters.  Fresh ids continue from where the
    old table stopped. *)

(** Concrete syntax for extended regular expressions.

    Grammar (loosest to tightest binding):

    {v
      expr    ::= diff ('|' diff)*                 union
      diff    ::= inter ('-' inter)*               left-assoc difference
      inter   ::= cat ('&' cat)*                   intersection
      cat     ::= postfix+                         juxtaposition = concat
      postfix ::= atom ('*' | '+' | '?' | '{' n (',' n?)? '}')*
      atom    ::= IDENT            a symbol (must be in the alphabet)
                | '.'              any symbol (Σ as a one-symbol class)
                | '@'              epsilon
                | '!'              the empty language
                | '~' atom         complement
                | '[' IDENT* ']'   symbol class
                | '[^' IDENT* ']'  negated symbol class
                | '(' expr ')'
    v}

    Identifiers are runs of [A-Za-z0-9_/:='] (so HTML closing tags such as
    [/FORM] are single tokens).  Whitespace separates tokens and is
    otherwise ignored. *)

exception Parse_error of string * int
(** Message and byte offset of the error. *)

val parse : Alphabet.t -> string -> Regex.t
(** @raise Parse_error on syntax errors or unknown symbols. *)

val parse_result : Alphabet.t -> string -> (Regex.t, string) result

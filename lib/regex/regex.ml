type t =
  | Empty
  | Eps
  | Cls of { neg : bool; syms : Symset.t }
  | Alt of t * t
  | Cat of t * t
  | Star of t
  | Inter of t * t
  | Diff of t * t
  | Compl of t

let empty = Empty
let eps = Eps
let sym a = Cls { neg = false; syms = Symset.singleton a }
let cls l = Cls { neg = false; syms = Symset.of_list l }
let neg_cls l = Cls { neg = true; syms = Symset.of_list l }
let any = neg_cls []
let any_but p = neg_cls [ p ]

let rec compare x y =
  match (x, y) with
  | Empty, Empty | Eps, Eps -> 0
  | Cls a, Cls b ->
      let c = Bool.compare a.neg b.neg in
      if c <> 0 then c else Symset.compare a.syms b.syms
  | Alt (a, b), Alt (c, d)
  | Cat (a, b), Cat (c, d)
  | Inter (a, b), Inter (c, d)
  | Diff (a, b), Diff (c, d) ->
      let c0 = compare a c in
      if c0 <> 0 then c0 else compare b d
  | Star a, Star b | Compl a, Compl b -> compare a b
  | Empty, _ -> -1
  | _, Empty -> 1
  | Eps, _ -> -1
  | _, Eps -> 1
  | Cls _, _ -> -1
  | _, Cls _ -> 1
  | Alt _, _ -> -1
  | _, Alt _ -> 1
  | Cat _, _ -> -1
  | _, Cat _ -> 1
  | Star _, _ -> -1
  | _, Star _ -> 1
  | Inter _, _ -> -1
  | _, Inter _ -> 1
  | Diff _, _ -> -1
  | _, Diff _ -> 1

let equal x y = compare x y = 0

(* Smart constructors.  Alternation is flattened, sorted, deduplicated,
   and adjacent positive classes are merged; this keeps syntactically
   different but trivially equal constructions (e.g. results of repeated
   unions in Algorithm 6.2) in a common form. *)

let rec alt_flatten e acc =
  match e with Alt (a, b) -> alt_flatten a (alt_flatten b acc) | e -> e :: acc

let is_pos_cls = function Cls { neg = false; _ } -> true | _ -> false

let alt_list es =
  let es = List.concat_map (fun e -> alt_flatten e []) es in
  let es = List.filter (fun e -> e <> Empty) es in
  let pos, rest = List.partition is_pos_cls es in
  let merged =
    match pos with
    | [] -> []
    | _ ->
        let syms =
          List.fold_left
            (fun s e ->
              match e with
              | Cls { neg = false; syms } -> Symset.union s syms
              | Empty | Eps | Cls _ | Alt _ | Cat _ | Star _ | Inter _
              | Diff _ | Compl _ ->
                  assert false)
            Symset.empty pos
        in
        if Symset.is_empty syms then [] else [ Cls { neg = false; syms } ]
  in
  let es = List.sort_uniq compare (merged @ rest) in
  match es with
  | [] -> Empty
  | [ e ] -> e
  | e :: rest -> List.fold_left (fun a b -> Alt (a, b)) e rest

let alt a b = alt_list [ a; b ]

let rec cat_flatten e acc =
  match e with Cat (a, b) -> cat_flatten a (cat_flatten b acc) | e -> e :: acc

let cat_list es =
  let es = List.concat_map (fun e -> cat_flatten e []) es in
  let es = List.filter (fun e -> e <> Eps) es in
  if List.exists (fun e -> e = Empty) es then Empty
  else
    match es with
    | [] -> Eps
    | [ e ] -> e
    | es -> (
        match List.rev es with
        | [] -> Eps
        | last :: revinit ->
            List.fold_left (fun acc e -> Cat (e, acc)) last revinit)

let cat a b = cat_list [ a; b ]

let star = function
  | Empty | Eps -> Eps
  | Star _ as e -> e
  | e -> Star e

let inter a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | a, b when equal a b -> a
  | Compl Empty, e | e, Compl Empty -> e
  | a, b -> if compare a b <= 0 then Inter (a, b) else Inter (b, a)

let diff a b =
  match (a, b) with
  | Empty, _ -> Empty
  | a, Empty -> a
  | a, b when equal a b -> Empty
  | a, b -> Diff (a, b)

let compl = function Compl e -> e | e -> Compl e
let plus e = cat e (star e)
let opt e = alt Eps e

let repeat n e =
  if n < 0 then invalid_arg "Regex.repeat: negative count"
  else cat_list (List.init n (fun _ -> e))

let repeat_range lo hi e =
  if lo < 0 then invalid_arg "Regex.repeat_range: negative lower bound";
  match hi with
  | None -> cat (repeat lo e) (star e)
  | Some hi ->
      if hi < lo then invalid_arg "Regex.repeat_range: empty range";
      let tail = repeat (hi - lo) (opt e) in
      cat (repeat lo e) tail

let sigma_star = star any
let any_but_star p = star (any_but p)
let word w = cat_list (List.map sym (Array.to_list w))

let rec nullable = function
  | Empty | Cls _ -> false
  | Eps | Star _ -> true
  | Alt (a, b) -> nullable a || nullable b
  | Cat (a, b) | Inter (a, b) -> nullable a && nullable b
  | Diff (a, b) -> nullable a && not (nullable b)
  | Compl a -> not (nullable a)

let rec size = function
  | Empty | Eps | Cls _ -> 1
  | Alt (a, b) | Cat (a, b) | Inter (a, b) | Diff (a, b) ->
      1 + size a + size b
  | Star a | Compl a -> 1 + size a

let rec height = function
  | Empty | Eps | Cls _ -> 1
  | Alt (a, b) | Cat (a, b) | Inter (a, b) | Diff (a, b) ->
      1 + max (height a) (height b)
  | Star a | Compl a -> 1 + height a

let rec is_extended = function
  | Empty | Eps -> false
  | Cls { neg; syms = _ } -> neg
  | Alt (a, b) | Cat (a, b) -> is_extended a || is_extended b
  | Star a -> is_extended a
  | Inter _ | Diff _ | Compl _ -> true

let rec syms_used = function
  | Empty | Eps -> Symset.empty
  | Cls { syms; _ } -> syms
  | Alt (a, b) | Cat (a, b) | Inter (a, b) | Diff (a, b) ->
      Symset.union (syms_used a) (syms_used b)
  | Star a | Compl a -> syms_used a

let cls_matches a = function
  | Cls { neg; syms } -> if neg then not (Symset.mem a syms) else Symset.mem a syms
  | Empty | Eps | Alt _ | Cat _ | Star _ | Inter _ | Diff _ | Compl _ ->
      invalid_arg "cls_matches"

let rec deriv a = function
  | Empty | Eps -> Empty
  | Cls _ as c -> if cls_matches a c then Eps else Empty
  | Alt (x, y) -> alt (deriv a x) (deriv a y)
  | Cat (x, y) ->
      let head = cat (deriv a x) y in
      if nullable x then alt head (deriv a y) else head
  | Star x as s -> cat (deriv a x) s
  | Inter (x, y) -> inter (deriv a x) (deriv a y)
  | Diff (x, y) -> diff (deriv a x) (deriv a y)
  | Compl x -> compl (deriv a x)

let deriv_word w e = Array.fold_left (fun e a -> deriv a e) e w
let matches e w = nullable (deriv_word w e)

(* Printing.  Precedence levels (loosest to tightest):
   0 alt '|', 1 diff '-', 2 inter '&', 3 concatenation, 4 postfix, 5 atom. *)

let rec pp_prec ~compact alpha lvl ppf e =
  let open Format in
  let pp_prec = pp_prec ~compact in
  let paren need body =
    if need then fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Empty -> pp_print_string ppf "!"
  | Eps -> pp_print_string ppf "@"
  | Cls { neg; syms } -> (
      (* In compact mode a positive class covering more than half the
         alphabet displays as the negation of its complement (language-
         preserving, not AST-preserving). *)
      let neg, syms =
        if
          compact && (not neg)
          && 2 * Symset.cardinal syms > Alphabet.size alpha
        then (true, Symset.complement (Alphabet.size alpha) syms)
        else (neg, syms)
      in
      let names =
        List.map (Alphabet.name alpha) (Symset.elements syms)
      in
      match (neg, names) with
      | false, [ n ] -> pp_print_string ppf n
      | false, _ ->
          fprintf ppf "[%a]"
            (pp_print_list ~pp_sep:(fun ppf () -> pp_print_char ppf ' ') pp_print_string)
            names
      | true, [] -> pp_print_string ppf "."
      | true, _ ->
          fprintf ppf "[^%a]"
            (pp_print_list ~pp_sep:(fun ppf () -> pp_print_char ppf ' ') pp_print_string)
            names)
  | Alt (a, b) ->
      paren (lvl > 0) (fun ppf ->
          fprintf ppf "%a | %a" (pp_prec alpha 1) a (pp_prec alpha 0) b)
  | Diff (a, b) ->
      paren (lvl > 1) (fun ppf ->
          fprintf ppf "%a - %a" (pp_prec alpha 1) a (pp_prec alpha 2) b)
  | Inter (a, b) ->
      paren (lvl > 2) (fun ppf ->
          fprintf ppf "%a & %a" (pp_prec alpha 3) a (pp_prec alpha 2) b)
  | Cat (a, b) ->
      paren (lvl > 3) (fun ppf ->
          fprintf ppf "%a %a" (pp_prec alpha 4) a (pp_prec alpha 3) b)
  | Star a -> paren (lvl > 4) (fun ppf -> fprintf ppf "%a*" (pp_prec alpha 5) a)
  | Compl a ->
      paren (lvl > 4) (fun ppf -> fprintf ppf "~%a" (pp_prec alpha 5) a)

let pp ?(compact = false) alpha ppf e = pp_prec ~compact alpha 0 ppf e

let to_string ?(compact = false) alpha e =
  Format.asprintf "%a" (pp ~compact alpha) e

let rec pp_raw ppf e =
  let open Format in
  match e with
  | Empty -> pp_print_string ppf "Empty"
  | Eps -> pp_print_string ppf "Eps"
  | Cls { neg; syms } ->
      fprintf ppf "Cls(%s%a)" (if neg then "^" else "") Symset.pp syms
  | Alt (a, b) -> fprintf ppf "Alt(%a,%a)" pp_raw a pp_raw b
  | Cat (a, b) -> fprintf ppf "Cat(%a,%a)" pp_raw a pp_raw b
  | Star a -> fprintf ppf "Star(%a)" pp_raw a
  | Inter (a, b) -> fprintf ppf "Inter(%a,%a)" pp_raw a pp_raw b
  | Diff (a, b) -> fprintf ppf "Diff(%a,%a)" pp_raw a pp_raw b
  | Compl a -> fprintf ppf "Compl(%a)" pp_raw a

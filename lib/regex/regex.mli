(** Extended regular expressions over an interned alphabet.

    This is the user-facing syntax of the system: the paper writes
    expressions such as [(Σ − p)* ⟨p⟩ Σ*] and [E1 − E2]; we support the
    boolean connectives (intersection, difference, complement) directly in
    the AST so that those expressions can be written, parsed, and printed
    verbatim.  Semantics of the boolean connectives is delegated either to
    Brzozowski derivatives (here) or to the automata layer ({!Lang}).

    Values are kept lightly normalized by the smart constructors
    ({!alt}, {!cat}, {!star}, …): identities such as [E|∅ = E],
    [E·ε = E], [(E* )* = E*] are applied on construction.  Use the
    constructors rather than the raw variants. *)

type t = private
  | Empty  (** ∅ — matches nothing *)
  | Eps  (** ε — the empty word *)
  | Cls of { neg : bool; syms : Symset.t }
      (** symbol class; [neg = true] means "any symbol except [syms]"
          (resolved against the ambient alphabet).  A single symbol [a]
          is [Cls {neg = false; syms = {a}}]. *)
  | Alt of t * t
  | Cat of t * t
  | Star of t
  | Inter of t * t
  | Diff of t * t
  | Compl of t

(** {1 Constructors} *)

val empty : t
val eps : t
val sym : int -> t
val cls : int list -> t
val neg_cls : int list -> t

val any : t
(** Σ — any single symbol; [neg_cls []]. *)

val any_but : int -> t
(** (Σ − p) as a single-symbol class. *)

val alt : t -> t -> t
val cat : t -> t -> t
val star : t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val compl : t -> t
val plus : t -> t
val opt : t -> t
val alt_list : t list -> t
val cat_list : t list -> t
val repeat : int -> t -> t
val repeat_range : int -> int option -> t -> t
(** [repeat_range lo hi e]: between [lo] and [hi] copies; [None] = no
    upper bound. *)

val sigma_star : t
(** Σ* *)

val any_but_star : int -> t
(** (Σ − p)* — the paper's pervasive "no [p] here" context. *)

val word : int array -> t
(** The singleton language of a word. *)

(** {1 Predicates and metrics} *)

val nullable : t -> bool
(** Does the language contain ε?  (Extended Brzozowski nullability.) *)

val size : t -> int
(** Number of AST nodes — the size parameter of Thm 5.6. *)

val height : t -> int

val is_extended : t -> bool
(** Does the AST contain [Inter]/[Diff]/[Compl] (or negated classes)?
    Plain expressions compile to NFAs directly; extended ones go through
    the boolean algebra on DFAs. *)

val syms_used : t -> Symset.t
(** Symbols mentioned positively or negatively in the expression. *)

val compare : t -> t -> int
val equal : t -> t -> bool

(** {1 Derivatives} *)

val deriv : int -> t -> t
(** Brzozowski derivative by one symbol.  Total for extended regexes. *)

val deriv_word : int array -> t -> t
val matches : t -> int array -> bool
(** Membership by iterated derivatives — independent of the automata
    pipeline, used as a cross-check oracle. *)

(** {1 Printing} *)

val pp : ?compact:bool -> Alphabet.t -> Format.formatter -> t -> unit
(** Precedence-aware concrete syntax, re-parseable by {!Regex_parse}.
    With [~compact:true], positive classes covering more than half the
    alphabet print as negated classes — language-preserving but not
    AST-preserving (re-parsing gives an equal language, possibly a
    different tree). *)

val to_string : ?compact:bool -> Alphabet.t -> t -> string

val pp_raw : Format.formatter -> t -> unit
(** Debug AST dump with numeric symbols. *)

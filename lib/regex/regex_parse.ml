exception Parse_error of string * int

type token =
  | Tident of string
  | Tdot
  | Teps
  | Tempty
  | Tstar
  | Tplus
  | Topt
  | Tbar
  | Tamp
  | Tminus
  | Ttilde
  | Tlpar
  | Trpar
  | Tlbrack of bool (* negated? *)
  | Trbrack
  | Tlbrace
  | Trbrace
  | Tcomma
  | Tnum of int
  | Teof

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '/' || c = '\'' || c = ':' || c = '='

let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let push t pos = toks := (t, pos) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let pos = !i in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '.' -> push Tdot pos; incr i
    | '@' -> push Teps pos; incr i
    | '!' -> push Tempty pos; incr i
    | '*' -> push Tstar pos; incr i
    | '+' -> push Tplus pos; incr i
    | '?' -> push Topt pos; incr i
    | '|' -> push Tbar pos; incr i
    | '&' -> push Tamp pos; incr i
    | '-' -> push Tminus pos; incr i
    | '~' -> push Ttilde pos; incr i
    | '(' -> push Tlpar pos; incr i
    | ')' -> push Trpar pos; incr i
    | ']' -> push Trbrack pos; incr i
    | '{' -> push Tlbrace pos; incr i
    | '}' -> push Trbrace pos; incr i
    | ',' -> push Tcomma pos; incr i
    | '[' ->
        if !i + 1 < n && s.[!i + 1] = '^' then (push (Tlbrack true) pos; i := !i + 2)
        else (push (Tlbrack false) pos; incr i)
    | c when is_ident_char c ->
        let j = ref !i in
        while !j < n && is_ident_char s.[!j] do incr j done;
        let word = String.sub s !i (!j - !i) in
        (* Inside {…} repetition braces, digits are numbers; elsewhere a
           digit-run is still an identifier candidate (alphabets may name
           symbols "0", "1").  Disambiguate in the parser via Tnum when a
           pure digit run appears. *)
        if String.for_all is_digit word then push (Tnum (int_of_string word)) pos
        else push (Tident word) pos;
        i := !j
    | c ->
        raise (Parse_error (Printf.sprintf "unexpected character %C" c, pos)));
  done;
  push Teof n;
  List.rev !toks

type state = { mutable toks : (token * int) list; alpha : Alphabet.t }

let peek st = match st.toks with [] -> (Teof, -1) | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg =
  let _, pos = peek st in
  raise (Parse_error (msg, pos))

let expect st tok msg =
  let t, _ = peek st in
  if t = tok then advance st else fail st msg

let sym_of_ident st name =
  match Alphabet.find st.alpha name with
  | Some a -> a
  | None -> fail st (Printf.sprintf "unknown symbol %S" name)

let starts_atom = function
  | Tident _ | Tnum _ | Tdot | Teps | Tempty | Ttilde | Tlpar | Tlbrack _ ->
      true
  | Tstar | Tplus | Topt | Tbar | Tamp | Tminus | Trpar | Trbrack | Tlbrace
  | Trbrace | Tcomma | Teof ->
      false

let rec parse_expr st =
  let e = parse_diff st in
  match peek st with
  | Tbar, _ ->
      advance st;
      Regex.alt e (parse_expr st)
  | _ -> e

and parse_diff st =
  let rec loop acc =
    match peek st with
    | Tminus, _ ->
        advance st;
        loop (Regex.diff acc (parse_inter st))
    | _ -> acc
  in
  loop (parse_inter st)

and parse_inter st =
  let e = parse_cat st in
  match peek st with
  | Tamp, _ ->
      advance st;
      Regex.inter e (parse_inter st)
  | _ -> e

and parse_cat st =
  let rec loop acc =
    let t, _ = peek st in
    if starts_atom t then loop (Regex.cat acc (parse_postfix st))
    else acc
  in
  loop (parse_postfix st)

and parse_postfix st =
  let e = ref (parse_atom st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Tstar, _ -> advance st; e := Regex.star !e
    | Tplus, _ -> advance st; e := Regex.plus !e
    | Topt, _ -> advance st; e := Regex.opt !e
    | Tlbrace, _ ->
        advance st;
        let lo =
          match peek st with
          | Tnum k, _ -> advance st; k
          | _ -> fail st "expected number in {…}"
        in
        let hi =
          match peek st with
          | Tcomma, _ -> (
              advance st;
              match peek st with
              | Tnum k, _ -> advance st; Some k
              | Trbrace, _ -> None
              | _ -> fail st "expected number or '}' after ','")
          | _ -> Some lo
        in
        expect st Trbrace "expected '}'";
        e := Regex.repeat_range lo hi !e
    | _ -> continue := false
  done;
  !e

and parse_atom st =
  match peek st with
  | Tident name, _ ->
      advance st;
      Regex.sym (sym_of_ident st name)
  | Tnum k, _ ->
      advance st;
      Regex.sym (sym_of_ident st (string_of_int k))
  | Tdot, _ -> advance st; Regex.any
  | Teps, _ -> advance st; Regex.eps
  | Tempty, _ -> advance st; Regex.empty
  | Ttilde, _ ->
      advance st;
      Regex.compl (parse_atom st)
  | Tlpar, _ ->
      advance st;
      let e = parse_expr st in
      expect st Trpar "expected ')'";
      e
  | Tlbrack neg, _ ->
      advance st;
      let rec syms acc =
        match peek st with
        | Tident name, _ -> advance st; syms (sym_of_ident st name :: acc)
        | Tnum k, _ -> advance st; syms (sym_of_ident st (string_of_int k) :: acc)
        | Trbrack, _ -> advance st; List.rev acc
        | _ -> fail st "expected symbol or ']'"
      in
      let l = syms [] in
      if neg then Regex.neg_cls l else Regex.cls l
  | (Tstar | Tplus | Topt | Tbar | Tamp | Tminus | Trpar | Trbrack | Tlbrace
    | Trbrace | Tcomma | Teof), _ ->
      fail st "expected an expression"

let parse alpha s =
  let st = { toks = tokenize s; alpha } in
  let e = parse_expr st in
  (match peek st with
  | Teof, _ -> ()
  | _, pos -> raise (Parse_error ("trailing input", pos)));
  e

let parse_result alpha s =
  match parse alpha s with
  | e -> Ok e
  | exception Parse_error (msg, pos) ->
      Error (Printf.sprintf "parse error at offset %d: %s" pos msg)

type reason = { stage : string; spent : int; limit : int }

exception Exhausted of reason

let pp_reason ppf r = Format.fprintf ppf "UNKNOWN(%s,%d)" r.stage r.spent
let reason_to_string r = Format.asprintf "%a" pp_reason r

let () =
  Printexc.register_printer (function
    | Exhausted r ->
        Some
          (Printf.sprintf "Guard.Exhausted(stage=%s, spent=%d, limit=%d)"
             r.stage r.spent r.limit)
    | _ -> None)

(* How many charge units between wall-clock checks: frequent enough to
   catch a blow-up within a fraction of a millisecond of DFA work,
   rare enough that gettimeofday never shows up in a profile. *)
let deadline_check_period = 256

module Budget = struct
  type t = {
    fuel_limit : int;
    mutable spent : int;
    deadline : float option; (* absolute, Unix.gettimeofday scale *)
    mutable countdown : int; (* charges until the next clock check *)
  }

  let make ~fuel ?deadline_ms () =
    if fuel < 0 then invalid_arg "Guard.Budget.make: negative fuel";
    (match deadline_ms with
    | Some ms when ms < 0 ->
        invalid_arg "Guard.Budget.make: negative deadline"
    | _ -> ());
    {
      fuel_limit = fuel;
      spent = 0;
      deadline =
        Option.map
          (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
          deadline_ms;
      countdown = deadline_check_period;
    }

  let spent t = t.spent
  let fuel_limit t = t.fuel_limit
end

(* The installed budget is per-domain: Batch workers meter their own
   items without synchronization, and the common unbudgeted path costs
   one DLS read per charge. *)
let current : Budget.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = Option.is_some !(Domain.DLS.get current)

let charge ~stage n =
  match !(Domain.DLS.get current) with
  | None -> Obs.Metric.charge ~stage ~budgeted:false n
  | Some b ->
      (* counted before the limit check so an exhausting charge is
         still attributed — Metric totals then match Budget.spent
         exactly, Decided or Unknown (the obs oracle reconciles) *)
      Obs.Metric.charge ~stage ~budgeted:true n;
      b.Budget.spent <- b.Budget.spent + n;
      if b.Budget.spent > b.Budget.fuel_limit then
        raise
          (Exhausted
             { stage; spent = b.Budget.spent; limit = b.Budget.fuel_limit });
      b.Budget.countdown <- b.Budget.countdown - n;
      if b.Budget.countdown <= 0 then begin
        b.Budget.countdown <- deadline_check_period;
        match b.Budget.deadline with
        | Some t when Unix.gettimeofday () > t ->
            raise
              (Exhausted
                 {
                   stage = "deadline";
                   spent = b.Budget.spent;
                   limit = b.Budget.fuel_limit;
                 })
        | _ -> ()
      end

let with_budget b f =
  let slot = Domain.DLS.get current in
  let saved = !slot in
  slot := Some b;
  Fun.protect ~finally:(fun () -> slot := saved) f

type 'a outcome = Decided of 'a | Unknown of reason

let capture b f =
  match with_budget b f with
  | v -> Decided v
  | exception Exhausted r -> Unknown r

let run ~fuel ?deadline_ms f = capture (Budget.make ~fuel ?deadline_ms ()) f

let with_escalation ~steps ?deadline_ms f =
  if steps = [] then invalid_arg "Guard.with_escalation: no steps";
  let rec go = function
    | [] -> assert false
    | [ fuel ] -> run ~fuel ?deadline_ms f
    | fuel :: rest -> (
        match run ~fuel ?deadline_ms f with
        | Decided _ as d -> d
        | Unknown _ -> go rest)
  in
  go steps

let escalation_steps ~fuel ~retries =
  if fuel < 0 then invalid_arg "Guard.escalation_steps: negative fuel";
  if retries < 0 then invalid_arg "Guard.escalation_steps: negative retries";
  let double f = if f > max_int / 2 then max_int else 2 * f in
  let rec go f k acc =
    if k < 0 then List.rev acc else go (double f) (k - 1) (f :: acc)
  in
  go fuel retries []

let outcome_map f = function
  | Decided v -> Decided (f v)
  | Unknown r -> Unknown r

let outcome_equal eq a b =
  match (a, b) with
  | Decided x, Decided y -> eq x y
  | Unknown x, Unknown y -> x = y
  | _ -> false

(** Deterministic fault injection for the degradation paths.

    Production code never arms this module: every probe compiles to a
    single load of {!enabled} that stays [false], so the hooks are free
    on the hot path.  The test suites (and the CLI's [--inject-fault]
    testing flag) arm individual sites to fire at chosen hit counts or
    item indices, which lets the oracle layer and the cram tests drive
    every failure branch — a poisoned batch item, a cache lookup that
    blows up, a determinization that dies midway — with byte-identical
    replays. *)

type site =
  | Cache_lookup  (** entry of [Lang_cache.cached] *)
  | Batch_item  (** per-item boundary inside a [Batch] worker *)
  | Determinize  (** each new subset state of [Determinize.run] *)
  | Session_item
      (** per-feed boundary of a [Serve] streaming session, indexed by
          the session's open ordinal (0-based) — poisons one daemon
          session while its concurrent neighbours must stay
          byte-identical to a fault-free run *)

val site_name : site -> string

exception Injected of { site : string; hit : int }
(** The injected failure.  [hit] is the 1-based hit count (for
    counter sites) or the item index (for {!Batch_item}).  A printer is
    registered with [Printexc], so batch error cells render it
    deterministically. *)

val arm : site -> at:int list -> unit
(** Arm [site] to fire: counter sites ({!Cache_lookup},
    {!Determinize}) fire when their cumulative hit count reaches any
    element of [at] (1-based); {!Batch_item} fires on the item indices
    in [at] (0-based).  Arming resets the site's hit counter. *)

val disarm : unit -> unit
(** Disarm every site and reset all counters. *)

val enabled : unit -> bool
(** Whether any site is currently armed. *)

val point : site -> unit
(** Counter probe: count a hit of [site] and raise {!Injected} if armed
    to fire at that count.  No-op (one load) when nothing is armed. *)

val point_indexed : site -> int -> unit
(** Index probe: raise {!Injected} if [site] is armed at this index.
    Stateless, hence race-free across batch domains. *)

type site = Cache_lookup | Batch_item | Determinize | Session_item

let site_name = function
  | Cache_lookup -> "cache-lookup"
  | Batch_item -> "batch-item"
  | Determinize -> "determinize"
  | Session_item -> "session-item"

exception Injected of { site : string; hit : int }

let () =
  Printexc.register_printer (function
    | Injected { site; hit } ->
        Some (Printf.sprintf "Guard_faults.Injected(%s, hit %d)" site hit)
    | _ -> None)

let n_sites = 4

let site_id = function
  | Cache_lookup -> 0
  | Batch_item -> 1
  | Determinize -> 2
  | Session_item -> 3

(* One global switch guards every probe; the per-site state only
   matters once something is armed.  Counters are atomic because
   Determinize runs concurrently under Batch. *)
let enabled_flag = ref false
let armed_at : int list array = Array.make n_sites []
let counters = Array.init n_sites (fun _ -> Atomic.make 0)

let arm site ~at =
  let i = site_id site in
  armed_at.(i) <- at;
  Atomic.set counters.(i) 0;
  enabled_flag := true

let disarm () =
  Array.fill armed_at 0 n_sites [];
  Array.iter (fun c -> Atomic.set c 0) counters;
  enabled_flag := false

let enabled () = !enabled_flag

let point site =
  if !enabled_flag then begin
    let i = site_id site in
    match armed_at.(i) with
    | [] -> ()
    | at ->
        let hit = 1 + Atomic.fetch_and_add counters.(i) 1 in
        if List.mem hit at then
          raise (Injected { site = site_name site; hit })
  end

let point_indexed site index =
  if !enabled_flag then
    let i = site_id site in
    if List.mem index armed_at.(i) then
      raise (Injected { site = site_name site; hit = index })

(** Budgeted execution: fuel metering and wall-clock deadlines for the
    automata pipeline.

    The paper's Thm 5.12 makes maximality testing PSPACE-complete (via
    universality, Lemma 5.9), so the determinize / minimize / product
    constructions behind {!Ambiguity.check}, {!Maximality.check} and
    {!Expr_order} can require exponentially many DFA states on
    adversarial inputs.  This module bounds that work {e explicitly}: a
    {!Budget.t} carries a fuel allowance — charged once per DFA state
    (or product pair) constructed — and an optional wall-clock
    deadline.  When either runs out the construction site raises
    {!Exhausted} with the pipeline stage, the fuel spent and the limit,
    instead of running away.

    The active budget is {e per-domain} (domain-local storage), so
    parallel {!Batch} workers meter independently and an unbudgeted
    caller pays one array read per charge.  Computations that finish
    within budget are bit-identical to unbudgeted runs: fuel only
    counts work, it never alters it. *)

type reason = {
  stage : string;
      (** construction site that ran out: ["determinize"], ["product"],
          ["minimize"], ["quotient"], or ["deadline"] when the
          wall-clock bound fired *)
  spent : int;  (** fuel consumed when the budget gave out *)
  limit : int;  (** the fuel allowance that was exceeded *)
}

exception Exhausted of reason
(** Raised by {!charge} from inside the automata constructions.  A
    human-readable printer is registered with [Printexc]. *)

val pp_reason : Format.formatter -> reason -> unit
(** Machine-readable rendering: [UNKNOWN(<stage>,<spent>)] — the format
    the CLI prints and CI greps. *)

val reason_to_string : reason -> string

(** {1 Budgets} *)

module Budget : sig
  type t

  val make : fuel:int -> ?deadline_ms:int -> unit -> t
  (** A fresh budget of [fuel] charge units.  [deadline_ms], when
      given, sets an absolute wall-clock deadline that many
      milliseconds from now (checked every few hundred charges, so a
      blow-up is caught within a fraction of a millisecond of work).
      @raise Invalid_argument if [fuel < 0] or [deadline_ms < 0]. *)

  val spent : t -> int
  (** Fuel consumed so far (total across every {!with_budget} scope the
      budget was installed in). *)

  val fuel_limit : t -> int
end

val with_budget : Budget.t -> (unit -> 'a) -> 'a
(** [with_budget b f] installs [b] as the current domain's budget,
    runs [f], and restores the previous budget (budgets nest; the
    innermost wins).  Exceptions — including {!Exhausted} — propagate. *)

val charge : stage:string -> int -> unit
(** [charge ~stage n] debits [n] fuel units from the current domain's
    budget, a no-op when none is installed.  Called by the
    [lib/automata] constructions once per DFA state / product pair.
    @raise Exhausted when the allowance is exceeded or the deadline has
    passed. *)

val active : unit -> bool
(** Whether a budget is installed in the current domain. *)

(** {1 Three-valued outcomes}

    Decision procedures running under a budget answer [Decided v] or
    [Unknown reason] — never a wrong [v]: an in-budget run is the exact
    unbudgeted computation, and an out-of-budget run refuses to answer
    rather than guess.  See DESIGN.md §"Budgeted execution" for why
    this preserves the soundness of Props 5.4/5.7. *)

type 'a outcome = Decided of 'a | Unknown of reason

val capture : Budget.t -> (unit -> 'a) -> 'a outcome
(** [capture b f] = [Decided (with_budget b f)], turning {!Exhausted}
    into [Unknown].  Other exceptions propagate. *)

val run : fuel:int -> ?deadline_ms:int -> (unit -> 'a) -> 'a outcome
(** One-shot: [capture (Budget.make ~fuel ?deadline_ms ()) f]. *)

val with_escalation :
  steps:int list -> ?deadline_ms:int -> (unit -> 'a) -> 'a outcome
(** Retry policy: run [f] under each fuel allowance of [steps] in turn
    (each attempt gets a fresh deadline of [deadline_ms]); the first
    [Decided] wins, and if every step exhausts, the {e last} attempt's
    [Unknown] is returned.  Earlier attempts' partial work is not
    wasted when the pipeline caches are on — completed stages are exact
    and get reused.  @raise Invalid_argument on an empty [steps]. *)

val escalation_steps : fuel:int -> retries:int -> int list
(** The doubling ladder the CLI uses: [retries + 1] attempts starting
    at [fuel], each doubling the previous (saturating at [max_int]). *)

val outcome_map : ('a -> 'b) -> 'a outcome -> 'b outcome
val outcome_equal : ('a -> 'a -> bool) -> 'a outcome -> 'a outcome -> bool

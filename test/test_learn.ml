(* Tests for the learning layer: alignment, the §7 merging heuristic,
   the LR-wrapper baseline, and counterexample-guided disambiguation. *)

open Helpers

let p = Alphabet.find_exn ab_pq "p"

(* --- alignment --- *)

let test_lcs () =
  let a = w ab_pq "pqpq" and b = w ab_pq "qpp" in
  let c = Align.lcs a b in
  (* LCS length must be 2: e.g. qp or pp *)
  check_int "lcs length" 2 (Array.length c);
  check_string "lcs of equal words" "pqpq"
    (Word.to_string ab_pq (Align.lcs a a));
  check_int "lcs with empty" 0 (Array.length (Align.lcs a [||]))

let test_lcs_many () =
  let words = [ w ab_pq "pqp"; w ab_pq "qp"; w ab_pq "qqp" ] in
  let c = Align.lcs_many words in
  (* qp is common to all three *)
  check_bool "common subsequence nonempty" true (Array.length c >= 1);
  List.iter
    (fun word ->
      match Align.carve word c with
      | Some gaps -> check_int "gap count" (Array.length c + 1) (List.length gaps)
      | None -> Alcotest.fail "lcs_many result must be a common subsequence")
    words

let test_carve () =
  (match Align.carve (w ab_pq "qpqppq") (w ab_pq "ppp") with
  | Some gaps ->
      Alcotest.(check (list string))
        "gaps" [ "q"; "q"; ""; "q" ]
        (List.map (Word.to_string ab_pq) gaps)
  | None -> Alcotest.fail "ppp is a subsequence");
  check_bool "non-subsequence" true
    (Align.carve (w ab_pq "qq") (w ab_pq "p") = None)

let test_common_affixes () =
  let words = [ w ab_pq "pqpp"; w ab_pq "qqpp"; w ab_pq "pp" ] in
  check_string "common suffix" "pp"
    (Word.to_string ab_pq (Align.common_suffix words));
  let words2 = [ w ab_pq "pqp"; w ab_pq "pqq" ] in
  check_string "common prefix" "pq"
    (Word.to_string ab_pq (Align.common_prefix words2))

(* --- merge heuristic --- *)

let mk_sample s i = Merge.sample (w ab_pq s) i

let test_merge_two_samples () =
  (* Samples: q p ⟨p⟩ q   and   q q p ⟨p⟩ — mark the p after a p. *)
  let samples = [ mk_sample "qppq" 2; mk_sample "qqpp" 3 ] in
  match Merge.merge ab_pq samples with
  | Error e -> Alcotest.failf "merge: %a" Merge.pp_error e
  | Ok e ->
      (* both samples must parse with the right mark position *)
      List.iter
        (fun s ->
          let splits = Extraction.splits e s.Merge.word in
          check_bool "sample parsed with its mark" true
            (List.mem s.Merge.mark_pos splits))
        samples;
      (* suffix generalized to Σ* by default *)
      check_bool "suffix is Σ*" true
        (Lang.is_universal (Extraction.right_lang e))

let test_merge_suffix_not_generalized () =
  let samples = [ mk_sample "qppq" 2; mk_sample "qqpp" 3 ] in
  match Merge.merge ~generalize_suffix:false ab_pq samples with
  | Error e -> Alcotest.failf "merge: %a" Merge.pp_error e
  | Ok e ->
      check_bool "suffix not Σ*" false
        (Lang.is_universal (Extraction.right_lang e));
      List.iter
        (fun s ->
          check_bool "sample still parsed" true
            (List.mem s.Merge.mark_pos (Extraction.splits e s.Merge.word)))
        samples

let test_merge_errors () =
  (match Merge.merge ab_pq [] with
  | Error Merge.No_samples -> ()
  | _ -> Alcotest.fail "empty sample list");
  match Merge.merge ab_pq [ mk_sample "qp" 1; mk_sample "qp" 0 ] with
  | Error Merge.Mark_symbol_differs -> ()
  | _ -> Alcotest.fail "different marked symbols"

let test_template_decomposition () =
  let samples = [ mk_sample "qppq" 2; mk_sample "qqpp" 3 ] in
  match Merge.template_decomposition ab_pq samples with
  | Error e -> Alcotest.failf "decomposition: %a" Merge.pp_error e
  | Ok (d, mark) ->
      check_int "mark" p mark;
      check_int "segments = pivots + 1"
        (List.length d.Pivot.pivots + 1)
        (List.length d.Pivot.segments);
      (* the recomposed prefix must accept both sample prefixes *)
      let l = Lang.of_regex ab_pq (Pivot.recompose d) in
      List.iter
        (fun s ->
          check_bool "prefix accepted" true
            (Lang.mem l (Word.sub s.Merge.word 0 s.Merge.mark_pos)))
        samples

let prop_merge_parses_all_samples =
  (* Random words with a random marked p position; merged expression must
     include each sample's mark among its splits. *)
  let gen =
    let open QCheck.Gen in
    let word_with_p =
      let* pre = list_size (int_bound 4) (int_bound 1) in
      let* post = list_size (int_bound 4) (int_bound 1) in
      return (Array.of_list (pre @ [ p ] @ post), List.length pre)
    in
    list_size (int_range 1 4) word_with_p
  in
  let print samples =
    String.concat "; "
      (List.map
         (fun (word, i) -> Printf.sprintf "%s@%d" (Word.to_string ab_pq word) i)
         samples)
  in
  qtest ~count:100 "merge parses every sample at its mark"
    (QCheck.make ~print gen)
    (fun raw ->
      let samples = List.map (fun (word, i) -> Merge.sample word i) raw in
      match Merge.merge ab_pq samples with
      | Error _ -> false
      | Ok e ->
          List.for_all
            (fun s -> List.mem s.Merge.mark_pos (Extraction.splits e s.Merge.word))
            samples)

(* --- LR wrapper baseline --- *)

let test_lr_learn_extract () =
  let samples = [ mk_sample "qqpq" 2; mk_sample "qpq" 1 ] in
  match Lr_wrapper.learn ab_pq samples with
  | Error e -> Alcotest.failf "lr: %a" Lr_wrapper.pp_error e
  | Ok lr ->
      (* common left context: q; common right: q *)
      check_string "left delim" "q" (Word.to_string ab_pq lr.Lr_wrapper.left);
      check_string "right delim" "q" (Word.to_string ab_pq lr.Lr_wrapper.right);
      check_bool "extracts sample" true
        (Lr_wrapper.extract lr (w ab_pq "qqpq") = Some 2);
      (* first-match semantics *)
      check_bool "first occurrence wins" true
        (Lr_wrapper.extract lr (w ab_pq "qpqqpq") = Some 1);
      check_bool "no match" true (Lr_wrapper.extract lr (w ab_pq "pp") = None)

let test_lr_to_extraction () =
  let samples = [ mk_sample "qqpq" 2; mk_sample "qpq" 1 ] in
  match Lr_wrapper.learn ab_pq samples with
  | Error _ -> Alcotest.fail "learn"
  | Ok lr ->
      let e = Lr_wrapper.to_extraction lr in
      check_bool "expression form parses samples" true
        (List.mem 2 (Extraction.splits e (w ab_pq "qqpq")))

(* --- disambiguation --- *)

let test_disambiguate () =
  (* Σ*⟨p⟩Σ* is very ambiguous; examples where the target p always
     follows q should drive specialization. *)
  let e = Extraction.parse ab_pq ".* <p> .*" in
  let examples = [ (w ab_pq "qpp", 1); (w ab_pq "pqp", 2) ] in
  match Disambiguate.run e examples with
  | Disambiguate.Disambiguated (e', k) ->
      check_bool "result unambiguous" true (Ambiguity.is_unambiguous e');
      check_bool "context used" true (k >= 1);
      List.iter
        (fun (word, i) ->
          check_bool "examples extract correctly" true
            (Extraction.extract e' word = `Unique i))
        examples
  | Disambiguate.Already_unambiguous -> Alcotest.fail "input was ambiguous"
  | Disambiguate.Gave_up -> Alcotest.fail "should find the q-context"

let test_disambiguate_already () =
  let e = Extraction.parse ab_pq "([^p])* <p> .*" in
  check_bool "already unambiguous" true
    (Disambiguate.run e [ (w ab_pq "qp", 1) ] = Disambiguate.Already_unambiguous)

let test_disambiguate_gave_up () =
  (* No left context can disambiguate Σ*⟨p⟩Σ* when examples share none. *)
  let e = Extraction.parse ab_pq ".* <p> .*" in
  let examples = [ (w ab_pq "qpp", 1); (w ab_pq "ppq", 0) ] in
  match Disambiguate.run e examples with
  | Disambiguate.Gave_up -> ()
  | Disambiguate.Disambiguated _ ->
      (* also acceptable if some context works for both; verify honesty *)
      ()
  | Disambiguate.Already_unambiguous -> Alcotest.fail "input was ambiguous"

let () =
  Alcotest.run "learn"
    [
      ( "align",
        [
          Alcotest.test_case "lcs" `Quick test_lcs;
          Alcotest.test_case "lcs_many" `Quick test_lcs_many;
          Alcotest.test_case "carve" `Quick test_carve;
          Alcotest.test_case "common affixes" `Quick test_common_affixes;
        ] );
      ( "merge",
        [
          Alcotest.test_case "two samples" `Quick test_merge_two_samples;
          Alcotest.test_case "literal suffix mode" `Quick
            test_merge_suffix_not_generalized;
          Alcotest.test_case "errors" `Quick test_merge_errors;
          Alcotest.test_case "template decomposition" `Quick
            test_template_decomposition;
          prop_merge_parses_all_samples;
        ] );
      ( "lr-baseline",
        [
          Alcotest.test_case "learn and extract" `Quick test_lr_learn_extract;
          Alcotest.test_case "as extraction expression" `Quick
            test_lr_to_extraction;
        ] );
      ( "disambiguate",
        [
          Alcotest.test_case "specializes to q-context" `Quick test_disambiguate;
          Alcotest.test_case "no-op when unambiguous" `Quick
            test_disambiguate_already;
          Alcotest.test_case "gives up honestly" `Quick
            test_disambiguate_gave_up;
        ] );
    ]

(* Unit and property tests for the Regex AST, smart constructors,
   Brzozowski derivatives, and the concrete-syntax parser/printer. *)

open Helpers

let p = Alphabet.find_exn ab_pq "p"
let q = Alphabet.find_exn ab_pq "q"

(* --- smart constructors --- *)

let test_alt_identities () =
  check_bool "E|∅ = E" true Regex.(equal (alt (sym p) empty) (sym p));
  check_bool "∅|E = E" true Regex.(equal (alt empty (sym p)) (sym p));
  check_bool "E|E = E" true Regex.(equal (alt (sym p) (sym p)) (sym p));
  check_bool "commutative normal form" true
    Regex.(equal (alt (sym p) eps) (alt eps (sym p)))

let test_alt_merges_classes () =
  check_bool "p|q = [p q]" true
    Regex.(equal (alt (sym p) (sym q)) (cls [ p; q ]))

let test_cat_identities () =
  check_bool "E·ε = E" true Regex.(equal (cat (sym p) eps) (sym p));
  check_bool "ε·E = E" true Regex.(equal (cat eps (sym p)) (sym p));
  check_bool "E·∅ = ∅" true Regex.(equal (cat (sym p) empty) empty);
  check_bool "∅·E = ∅" true Regex.(equal (cat empty (sym p)) empty)

let test_star_identities () =
  check_bool "(E*)* = E*" true
    Regex.(equal (star (star (sym p))) (star (sym p)));
  check_bool "∅* = ε" true Regex.(equal (star empty) eps);
  check_bool "ε* = ε" true Regex.(equal (star eps) eps)

let test_repeat () =
  let pp3 = Regex.repeat 3 (Regex.sym p) in
  check_bool "p{3} matches ppp" true (Regex.matches pp3 (w ab_pq "ppp"));
  check_bool "p{3} rejects pp" false (Regex.matches pp3 (w ab_pq "pp"));
  let r = Regex.repeat_range 1 (Some 2) (Regex.sym q) in
  check_bool "q{1,2} matches q" true (Regex.matches r (w ab_pq "q"));
  check_bool "q{1,2} matches qq" true (Regex.matches r (w ab_pq "qq"));
  check_bool "q{1,2} rejects ε" false (Regex.matches r [||]);
  check_bool "q{1,2} rejects qqq" false (Regex.matches r (w ab_pq "qqq"))

(* --- nullability and derivatives --- *)

let test_nullable () =
  check_bool "ε nullable" true (Regex.nullable Regex.eps);
  check_bool "∅ not nullable" false (Regex.nullable Regex.empty);
  check_bool "p not nullable" false (Regex.nullable (Regex.sym p));
  check_bool "p* nullable" true (Regex.nullable (Regex.star (Regex.sym p)));
  check_bool "~p nullable (complement)" true
    (Regex.nullable (Regex.compl (Regex.sym p)));
  check_bool "p* & q* nullable" true
    Regex.(nullable (inter (star (sym p)) (star (sym q))));
  check_bool "p* - ε not nullable" true
    (not Regex.(nullable (diff (star (sym p)) eps)))

let test_deriv_matches () =
  let e = rx ab_pq "(p q)* p" in
  check_bool "matches p" true (Regex.matches e (w ab_pq "p"));
  check_bool "matches pqp" true (Regex.matches e (w ab_pq "pqp"));
  check_bool "rejects pq" false (Regex.matches e (w ab_pq "pq"));
  check_bool "rejects ε" false (Regex.matches e [||])

let test_deriv_extended () =
  let e = rx ab_pq "(p | q)* - (p q)" in
  check_bool "pq excluded" false (Regex.matches e (w ab_pq "pq"));
  check_bool "qp included" true (Regex.matches e (w ab_pq "qp"));
  let c = rx ab_pq "~(p*)" in
  check_bool "complement rejects pp" false (Regex.matches c (w ab_pq "pp"));
  check_bool "complement accepts q" true (Regex.matches c (w ab_pq "q"))

(* --- parser / printer --- *)

let test_parse_basics () =
  let cases =
    [
      ("p", Regex.sym p);
      ("p | q", Regex.alt (Regex.sym p) (Regex.sym q));
      ("p q", Regex.cat (Regex.sym p) (Regex.sym q));
      ("p*", Regex.star (Regex.sym p));
      ("p+", Regex.plus (Regex.sym p));
      ("p?", Regex.opt (Regex.sym p));
      (".", Regex.any);
      ("@", Regex.eps);
      ("!", Regex.empty);
      ("[^p]", Regex.any_but p);
      ("[p q]", Regex.cls [ p; q ]);
      ("~p", Regex.compl (Regex.sym p));
      ( "(p | q) & p*",
        Regex.inter
          (Regex.alt (Regex.sym p) (Regex.sym q))
          (Regex.star (Regex.sym p)) );
      (". - p", Regex.diff Regex.any (Regex.sym p));
    ]
  in
  List.iter
    (fun (s, expected) ->
      let got = rx ab_pq s in
      Alcotest.(check bool)
        (Printf.sprintf "parse %S" s)
        true
        (Regex.equal got expected))
    cases

let test_parse_precedence () =
  (* union binds loosest: p | q p* parses as p | (q (p* )) *)
  let e = rx ab_pq "p | q p*" in
  let expected =
    Regex.alt (Regex.sym p) (Regex.cat (Regex.sym q) (Regex.star (Regex.sym p)))
  in
  check_bool "p | q p*" true (Regex.equal e expected);
  (* diff between union and inter: p - q & p == p - (q & p) *)
  let e2 = rx ab_pq "p - q & p" in
  let expected2 =
    Regex.diff (Regex.sym p) (Regex.inter (Regex.sym q) (Regex.sym p))
  in
  check_bool "p - q & p" true (Regex.equal e2 expected2)

let test_parse_tags () =
  let e = rx ab_tags "FORM ([^INPUT])* INPUT" in
  let form = Alphabet.find_exn ab_tags "FORM" in
  let input = Alphabet.find_exn ab_tags "INPUT" in
  let expected =
    Regex.cat_list [ Regex.sym form; Regex.any_but_star input; Regex.sym input ]
  in
  check_bool "HTML-ish expression" true (Regex.equal e expected)

let test_parse_errors () =
  let bad s =
    match Regex_parse.parse_result ab_pq s with
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
    | Error _ -> ()
  in
  bad "p |";
  bad "(p";
  bad "z";
  bad "p )";
  bad "[p";
  bad "*";
  bad "p{2";
  bad "p{}"

let prop_print_parse_roundtrip =
  qtest "print/parse roundtrip preserves AST" (arb_plain_regex ab_pqr)
    (fun e ->
      let s = Regex.to_string ab_pqr e in
      let e' = Regex_parse.parse ab_pqr s in
      Regex.equal e e')

let prop_deriv_word_assoc =
  qtest "derivative by uv = derivative by u then v"
    (QCheck.pair (arb_plain_regex ab_pq)
       (QCheck.pair (arb_word ab_pq 4) (arb_word ab_pq 4)))
    (fun (e, (u, v)) ->
      let both = Regex.deriv_word (Array.append u v) e in
      let stepwise = Regex.deriv_word v (Regex.deriv_word u e) in
      Regex.matches both [||] = Regex.matches stepwise [||])

let prop_size_positive =
  qtest "size and height are positive" (arb_ext_regex ab_pq) (fun e ->
      Regex.size e >= 1 && Regex.height e >= 1)

let () =
  Alcotest.run "regex"
    [
      ( "smart-constructors",
        [
          Alcotest.test_case "alt identities" `Quick test_alt_identities;
          Alcotest.test_case "alt merges classes" `Quick test_alt_merges_classes;
          Alcotest.test_case "cat identities" `Quick test_cat_identities;
          Alcotest.test_case "star identities" `Quick test_star_identities;
          Alcotest.test_case "repeat" `Quick test_repeat;
        ] );
      ( "derivatives",
        [
          Alcotest.test_case "nullable" `Quick test_nullable;
          Alcotest.test_case "matches" `Quick test_deriv_matches;
          Alcotest.test_case "extended operators" `Quick test_deriv_extended;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "tag alphabet" `Quick test_parse_tags;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "properties",
        [ prop_print_parse_roundtrip; prop_deriv_word_assoc; prop_size_positive ]
      );
    ]

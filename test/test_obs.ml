(* Tests for the observability layer (lib/obs): span nesting and
   cross-domain parenting, packed-counter consistency under concurrent
   increments, histogram bucket edges, the zero-allocation disabled
   path, failure propagation through instrumented stages, and the
   consistent-snapshot invariants of the sharded Lang_cache counters
   hammered from four domains. *)

open Helpers

(* Save/restore the global switch so a failing assertion cannot leave
   tracing on for the rest of the binary. *)
let with_tracing f =
  let saved = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled saved)
    f

(* --- spans --- *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  let a = Obs.Span.enter Obs.Span.Verdict in
  let b = Obs.Span.enter Obs.Span.Determinize in
  let c = Obs.Span.enter Obs.Span.Minimize in
  Obs.Span.exit c;
  Obs.Span.exit_n b 42;
  let d = Obs.Span.enter Obs.Span.Product in
  Obs.Span.exit d;
  Obs.Span.exit a;
  let recs = Obs.Span.records () in
  check_int "four closed spans" 4 (List.length recs);
  let by_stage st =
    List.find (fun r -> r.Obs.Span.stage = st) recs
  in
  let ra = by_stage Obs.Span.Verdict in
  let rb = by_stage Obs.Span.Determinize in
  let rc = by_stage Obs.Span.Minimize in
  let rd = by_stage Obs.Span.Product in
  check_int "outer span is a root" (-1) ra.Obs.Span.parent;
  check_int "first child under outer" ra.Obs.Span.id rb.Obs.Span.parent;
  check_int "grandchild under first child" rb.Obs.Span.id rc.Obs.Span.parent;
  check_int "sibling also under outer" ra.Obs.Span.id rd.Obs.Span.parent;
  check_int "exit_n note recorded" 42 rb.Obs.Span.note;
  check_int "exit leaves no note" (-1) rc.Obs.Span.note;
  check_bool "none failed" false
    (List.exists (fun r -> r.Obs.Span.failed) recs);
  check_bool "ids replay open order" true
    (ra.Obs.Span.id < rb.Obs.Span.id
    && rb.Obs.Span.id < rc.Obs.Span.id
    && rc.Obs.Span.id < rd.Obs.Span.id)

let test_span_parenting_across_domains () =
  with_tracing @@ fun () ->
  let root = Obs.Span.enter Obs.Span.Batch_run in
  let doms =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            Obs.Span.set_ambient root;
            let sp = Obs.Span.enter Obs.Span.Determinize in
            Obs.Span.exit sp))
  in
  List.iter Domain.join doms;
  Obs.Span.exit root;
  let recs = Obs.Span.records () in
  let root_rec =
    List.find (fun r -> r.Obs.Span.stage = Obs.Span.Batch_run) recs
  in
  let children =
    List.filter (fun r -> r.Obs.Span.stage = Obs.Span.Determinize) recs
  in
  check_int "both domain spans recorded" 2 (List.length children);
  List.iter
    (fun r ->
      check_int "child parented under the ambient root" root_rec.Obs.Span.id
        r.Obs.Span.parent)
    children;
  check_int "children live on two distinct domains" 2
    (List.length
       (List.sort_uniq compare
          (List.map (fun r -> r.Obs.Span.domain) children)))

let test_span_parenting_through_pool () =
  with_tracing @@ fun () ->
  Pool.run ~participants:4 16 (fun _ ->
      let sp = Obs.Span.enter Obs.Span.Determinize in
      Obs.Span.exit sp);
  let recs = Obs.Span.records () in
  let batch =
    List.find (fun r -> r.Obs.Span.stage = Obs.Span.Batch_run) recs
  in
  let items =
    List.filter (fun r -> r.Obs.Span.stage = Obs.Span.Determinize) recs
  in
  check_int "every item span recorded" 16 (List.length items);
  check_int "batch note carries the item count" 16 batch.Obs.Span.note;
  List.iter
    (fun r ->
      check_int "item span parented under Batch_run" batch.Obs.Span.id
        r.Obs.Span.parent)
    items

let test_exhaustion_closes_spans_failed () =
  with_tracing @@ fun () ->
  Runtime.set_enabled false;
  Fun.protect ~finally:(fun () -> Runtime.set_enabled true) @@ fun () ->
  let e = Extraction.parse ab_pq "(q p)* <p> (p | q)*" in
  (match Guard.run ~fuel:8 (fun () -> Maximality.check e) with
  | Guard.Unknown _ -> ()
  | Guard.Decided _ -> Alcotest.fail "fuel 8 unexpectedly sufficed");
  let recs = Obs.Span.records () in
  check_bool "exhaustion recorded at least one failed span" true
    (List.exists (fun r -> r.Obs.Span.failed) recs);
  check_bool "every span was closed (none left open)" true
    (List.for_all (fun r -> r.Obs.Span.dur_ns >= 0) recs)

let test_injected_fault_closes_build_span_failed () =
  with_tracing @@ fun () ->
  Runtime.reset ();
  Guard_faults.arm Guard_faults.Determinize ~at:[ 1 ];
  Fun.protect ~finally:Guard_faults.disarm @@ fun () ->
  (match Lang.parse ab_pq "(p q)* p" with
  | _ -> Alcotest.fail "armed Determinize fault did not fire"
  | exception Guard_faults.Injected _ -> ());
  let recs = Obs.Span.records () in
  check_bool "the injected fault closed a failed span" true
    (List.exists (fun r -> r.Obs.Span.failed) recs)

(* --- packed counters --- *)

let test_counter2_concurrent_consistency () =
  let c = Obs.Counter2.make () in
  let per_domain = 20_000 in
  let stop = Atomic.make false in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              if i land 1 = 0 then Obs.Counter2.hit c else Obs.Counter2.miss c
            done))
  in
  (* reader: every pair read mid-traffic must be internally consistent
     — components non-negative, sum within bounds and nondecreasing *)
  let reader =
    Domain.spawn (fun () ->
        let prev = ref 0 in
        let ok = ref true in
        while not (Atomic.get stop) do
          let h, m = Obs.Counter2.read c in
          let s = h + m in
          if h < 0 || m < 0 || s < !prev || s > 4 * per_domain then
            ok := false;
          prev := s
        done;
        !ok)
  in
  List.iter Domain.join doms;
  Atomic.set stop true;
  check_bool "mid-traffic reads stayed consistent" true (Domain.join reader);
  let h, m = Obs.Counter2.read c in
  check_int "hits exact at join" (4 * (per_domain / 2)) h;
  check_int "misses exact at join" (4 * (per_domain / 2)) m

(* --- histogram --- *)

let test_histogram_bucket_edges () =
  List.iter
    (fun (ns, bucket) ->
      check_int (Printf.sprintf "bucket_of_ns %d" ns) bucket
        (Obs.Histogram.bucket_of_ns ns))
    [
      (0, 0);
      (999, 0);
      (1_999, 0);
      (2_000, 1);
      (3_999, 1);
      (4_000, 2);
      (7_999, 2);
      (8_000, 3);
      (1_000_000, 9);
      (* 2^15 µs and anything above land in the open-ended last bucket *)
      ((1 lsl 15) * 1000, 15);
      (max_int / 2, 15);
    ]

let test_histogram_observe () =
  let h = Obs.Histogram.make () in
  Obs.Histogram.observe h 1_000;
  Obs.Histogram.observe h 5_000;
  Obs.Histogram.observe h 5_000;
  Obs.Histogram.observe h (-7) (* clock stepped back: clamps to 0 *);
  let s = Obs.Histogram.snapshot h in
  check_int "count" 4 s.Obs.Histogram.count;
  check_int "total_ns" 11_000 s.Obs.Histogram.total_ns;
  check_int "max_ns" 5_000 s.Obs.Histogram.max_ns;
  check_int "bucket 0" 2 s.Obs.Histogram.buckets.(0);
  check_int "bucket 2" 2 s.Obs.Histogram.buckets.(2);
  check_int "bucket sum = count" s.Obs.Histogram.count
    (Array.fold_left ( + ) 0 s.Obs.Histogram.buckets);
  (* mid-rank percentiles answer the covering bucket's upper edge;
     a rank landing on the final observation (q = 1.0 in particular)
     answers the exactly-tracked maximum instead *)
  check_int "p50 = covering bucket edge" 2_000
    (Obs.Histogram.percentile_ns s 0.5);
  check_int "p99 rank = count: exact max" 5_000
    (Obs.Histogram.percentile_ns s 0.99);
  check_int "p100 = max_ns" 5_000 (Obs.Histogram.percentile_ns s 1.0)

(* --- disabled path --- *)

let test_null_sink_allocations () =
  let saved = Obs.enabled () in
  Obs.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.set_enabled saved) @@ fun () ->
  let iters = 100_000 in
  (* warm-up so the measured loop sees no one-time setup *)
  for _ = 1 to 1_000 do
    Obs.Span.exit (Obs.Span.enter Obs.Span.Verdict)
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    let sp = Obs.Span.enter Obs.Span.Verdict in
    Obs.Metric.charge ~stage:"determinize" ~budgeted:false 1;
    Obs.Span.exit sp;
    (* the fused front-end's span must ride the same free path *)
    Obs.Span.exit (Obs.Span.enter Obs.Span.Front)
  done;
  let per_call = (Gc.minor_words () -. w0) /. float_of_int iters in
  check_bool
    (Printf.sprintf "≈0 minor words per disabled call (got %.4f)" per_call)
    true (per_call < 0.5)

let test_disabled_span_is_none () =
  let saved = Obs.enabled () in
  Obs.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.set_enabled saved) @@ fun () ->
  check_bool "enter returns the none token when disabled" true
    (Obs.Span.enter Obs.Span.Determinize = Obs.Span.none)

(* --- Lang_cache snapshot invariants under concurrent traffic --- *)

let test_cache_snapshot_under_hammer () =
  Runtime.reset ();
  let per_domain = 4_000 in
  let dfa = Dfa.trivial ~alpha_size:1 true in
  let stages =
    [|
      Lang_cache.Determinize; Lang_cache.Minimize; Lang_cache.Quotient;
      Lang_cache.Determinize;
    |]
  in
  let stop = Atomic.make false in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              (* 64 distinct keys per domain: mostly hits, some misses *)
              let key =
                Lang_cache.K_unop
                  (Printf.sprintf "obs-hammer-%d-%d" d (i land 63), dfa)
              in
              ignore (Lang_cache.cached stages.(d) key (fun () -> dfa))
            done))
  in
  (* Reader discipline: shards first, stages second.  Every lookup
     bumps its stage pair before its shard pair, so a shard event seen
     at T1 has its stage event visible by T2 > T1 — the stage total
     must dominate the shard total, and both pairs stay internally
     consistent (single-load packed reads). *)
  let reader =
    Domain.spawn (fun () ->
        let ok = ref true in
        let prev = ref 0 in
        while not (Atomic.get stop) do
          let shard_sum =
            Array.fold_left
              (fun acc (h, m) ->
                if h < 0 || m < 0 then ok := false;
                acc + h + m)
              0 (Lang_cache.shard_counts ())
          in
          let stage_sum =
            List.fold_left
              (fun acc st ->
                let h, m = Lang_cache.counts st in
                if h < 0 || m < 0 then ok := false;
                acc + h + m)
              0
              [
                Lang_cache.Compile; Lang_cache.Determinize;
                Lang_cache.Minimize; Lang_cache.Quotient;
              ]
          in
          if stage_sum < shard_sum then ok := false;
          if shard_sum < !prev then ok := false;
          if stage_sum > 4 * per_domain then ok := false;
          prev := shard_sum
        done;
        !ok)
  in
  List.iter Domain.join doms;
  Atomic.set stop true;
  check_bool "snapshot invariants held under 4-domain hammer" true
    (Domain.join reader);
  (* quiesced: stage totals, shard totals and traffic agree exactly *)
  let stage_sum =
    List.fold_left
      (fun acc st ->
        let h, m = Lang_cache.counts st in
        acc + h + m)
      0
      [
        Lang_cache.Compile; Lang_cache.Determinize; Lang_cache.Minimize;
        Lang_cache.Quotient;
      ]
  in
  let shard_sum =
    Array.fold_left (fun acc (h, m) -> acc + h + m) 0
      (Lang_cache.shard_counts ())
  in
  check_int "stage totals = lookups at join" (4 * per_domain) stage_sum;
  check_int "shard totals = lookups at join" (4 * per_domain) shard_sum

(* --- metrics snapshot --- *)

let test_metrics_json_schema () =
  with_tracing @@ fun () ->
  Runtime.reset ();
  ignore (Runtime.is_ambiguous (Extraction.parse ab_pq "(q p)* <p> .*"));
  let j = Obs.metrics_json () in
  check_bool "schema pinned" true
    (Obs.Json.member "schema" j = Obs.Json.Str "rexdex-obs/1");
  check_bool "traced flag reflects the switch" true
    (Obs.Json.get_bool (Obs.Json.member "traced" j));
  check_bool "some states were counted" true
    (Obs.Json.get_int
       (Obs.Json.path [ "counters"; "states_built"; "determinize" ] j)
    > 0);
  (* a fresh decision is a miss: the cache provider must agree *)
  check_int "decision miss visible through the provider" 1
    (Obs.Json.get_int (Obs.Json.path [ "cache"; "decision"; "misses" ] j));
  match Obs.Json.member "spans" j with
  | Obs.Json.List rows ->
      check_int "one row per span stage" 9 (List.length rows);
      check_bool "verdict spans were recorded" true
        (List.exists
           (fun r ->
             Obs.Json.member "stage" r = Obs.Json.Str "verdict"
             && Obs.Json.get_int (Obs.Json.member "count" r) > 0)
           rows)
  | _ -> Alcotest.fail "spans is not a list"

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and notes" `Quick test_span_nesting;
          Alcotest.test_case "parenting across domains" `Quick
            test_span_parenting_across_domains;
          Alcotest.test_case "parenting through the pool" `Quick
            test_span_parenting_through_pool;
          Alcotest.test_case "exhaustion closes spans failed" `Quick
            test_exhaustion_closes_spans_failed;
          Alcotest.test_case "injected fault closes spans failed" `Quick
            test_injected_fault_closes_build_span_failed;
        ] );
      ( "counters",
        [
          Alcotest.test_case "packed pairs under 4-domain traffic" `Quick
            test_counter2_concurrent_consistency;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket edges" `Quick test_histogram_bucket_edges;
          Alcotest.test_case "observe/snapshot" `Quick test_histogram_observe;
        ] );
      ( "disabled-path",
        [
          Alcotest.test_case "no allocation per call" `Quick
            test_null_sink_allocations;
          Alcotest.test_case "enter yields none" `Quick
            test_disabled_span_is_none;
        ] );
      ( "cache-snapshot",
        [
          Alcotest.test_case "invariants under 4-domain hammer" `Quick
            test_cache_snapshot_under_hammer;
        ] );
      ( "metrics-json",
        [
          Alcotest.test_case "stable schema" `Quick test_metrics_json_schema;
        ] );
      ("oracle", of_oracle ~count:40 Oracle_obs.tests);
    ]

(* Tests for the paper's core machinery: extraction expressions,
   ambiguity (Prop 5.4/5.5), the ≼ order, maximality (Cor 5.8),
   Algorithm 6.2 and pivot maximization — including every worked example
   in the paper (Ex 4.3, 4.6, 4.7; Lemma 5.10; Prop 5.11). *)

open Helpers

let p = Alphabet.find_exn ab_pq "p"
let ex s = Extraction.parse ab_pq s

(* Brute-force ambiguity oracle: count splits of every word up to a
   length bound; ambiguous iff some word has ≥ 2 splits. *)
let brute_ambiguous e max_len =
  Seq.exists
    (fun word -> List.length (Extraction.splits e word) >= 2)
    (Word.enumerate e.Extraction.alpha max_len)

(* --- parsing and semantics --- *)

let test_parse_roundtrip () =
  let e = ex "([^p])* <p> .*" in
  check_int "mark is p" p e.Extraction.mark;
  check_bool "left is (Σ-p)*" true
    (Regex.equal e.Extraction.left (Regex.any_but_star p));
  let e2 = ex "q p <p> " in
  check_bool "empty right side is ε" true
    (Regex.equal e2.Extraction.right Regex.eps);
  (* printing re-parses to the same expression *)
  let printed = Extraction.to_string e in
  let e' = Extraction.parse ab_pq printed in
  check_bool "roundtrip" true
    (Regex.equal e.Extraction.left e'.Extraction.left
    && Regex.equal e.Extraction.right e'.Extraction.right
    && e.Extraction.mark = e'.Extraction.mark)

let test_parse_errors () =
  let bad s =
    match Extraction.parse ab_pq s with
    | exception Regex_parse.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected failure on %S" s
  in
  bad "p* q*";
  (* no marker *)
  bad "p <z> q" (* unknown symbol *)

let test_splits () =
  (* p*⟨p⟩q parses ppq with a unique split; pppq has several candidate
     positions but only position 2 (0-based) works since right side is q. *)
  let e = ex "p* <p> q" in
  Alcotest.(check (list int)) "ppq" [ 1 ] (Extraction.splits e (w ab_pq "ppq"));
  Alcotest.(check (list int))
    "pppq" [ 2 ]
    (Extraction.splits e (w ab_pq "pppq"));
  Alcotest.(check (list int)) "no match" [] (Extraction.splits e (w ab_pq "qq"));
  (* the paper's ambiguous example: (qp)?p*⟨p⟩p* on qpqpp — here use
     p*⟨p⟩p* which has many splits on ppp. *)
  let amb = ex "p* <p> p*" in
  Alcotest.(check (list int))
    "all three positions" [ 0; 1; 2 ]
    (Extraction.splits amb (w ab_pq "ppp"))

let test_language () =
  let e = ex "([^p])* <p> .*" in
  let l = Extraction.language e in
  check_bool "qqpqp parsed" true (Lang.mem l (w ab_pq "qqpqp"));
  check_bool "qq not parsed" false (Lang.mem l (w ab_pq "qq"))

let prop_matcher_equals_brute_splits =
  qtest ~count:150 "compiled matcher = brute-force splits"
    (QCheck.pair
       (QCheck.pair (arb_plain_regex ab_pq) (arb_plain_regex ab_pq))
       (arb_word ab_pq 7))
    (fun ((e1, e2), word) ->
      let e = Extraction.make ab_pq e1 p e2 in
      let m = Extraction.compile e in
      Extraction.matcher_splits m word = Extraction.splits e word)

(* --- ambiguity: Example 4.3 and decision procedures --- *)

let test_example_4_3 () =
  (* Ambiguous: (pq)*(p)Σ*  — wait, the paper's Example 4.3 lists
     p*⟨p⟩Σ* and (p|pp)⟨p⟩(p|pp) as ambiguous, and (pq)*⟨p⟩Σ* and
     (p|pp)p⟨p⟩(p|pp) -style as unambiguous; we exercise all four. *)
  check_bool "p*⟨p⟩Σ* ambiguous" true (Ambiguity.is_ambiguous (ex "p* <p> .*"));
  check_bool "(p|pp)⟨p⟩(p|pp) ambiguous" true
    (Ambiguity.is_ambiguous (ex "(p | p p) <p> (p | p p)"));
  (* (pq)*⟨p⟩Σ* is ambiguous (pqp = ε·p·qp = pq·p·ε) while (qp)*⟨p⟩Σ*
     is unambiguous: after a (qp)*-prefix the next symbol is q, never p. *)
  check_bool "(pq)*⟨p⟩Σ* ambiguous" true
    (Ambiguity.is_ambiguous (ex "(p q)* <p> .*"));
  check_bool "(qp)*⟨p⟩Σ* unambiguous" true
    (Ambiguity.is_unambiguous (ex "(q p)* <p> .*"));
  check_bool "(Σ−p)*⟨p⟩Σ* unambiguous" true
    (Ambiguity.is_unambiguous (ex "([^p])* <p> .*"))

let test_ambiguity_motivating () =
  (* §3: ((q p)(Σ−p)* )⟨p⟩p* unambiguous even though the prefix matches
     a string prefix in more than one way; (qp)p*⟨p⟩p* ambiguous on
     qpqpp-style strings... we use the concrete §3 pair. *)
  check_bool "(q p) p* <p> p* ambiguous" true
    (Ambiguity.is_ambiguous (ex "(q p) p* <p> p*"));
  match Ambiguity.witness (ex "(q p) p* <p> p*") with
  | None -> Alcotest.fail "expected a witness"
  | Some word ->
      let e = ex "(q p) p* <p> p*" in
      check_bool "witness has ≥2 splits" true
        (List.length (Extraction.splits e word) >= 2)

let prop_quotient_test_equals_marker_test =
  qtest ~count:100 "Prop 5.4 test ⇔ Prop 5.5 test"
    (QCheck.pair (arb_plain_regex ab_pq) (arb_plain_regex ab_pq))
    (fun (e1, e2) ->
      let e = Extraction.make ab_pq e1 p e2 in
      Ambiguity.is_ambiguous e = Ambiguity.is_ambiguous_marker e)

let prop_ambiguity_equals_brute_force =
  qtest ~count:100 "decision procedure ⇔ split-counting (bounded oracle)"
    (QCheck.pair (arb_plain_regex ab_pq) (arb_plain_regex ab_pq))
    (fun (e1, e2) ->
      let e = Extraction.make ab_pq e1 p e2 in
      (* The oracle can only confirm ambiguity, not refute it (bounded
         length), so check one direction, plus witness soundness. *)
      if brute_ambiguous e 6 then Ambiguity.is_ambiguous e
      else
        match Ambiguity.witness e with
        | None -> not (Ambiguity.is_ambiguous e)
        | Some word -> List.length (Extraction.splits e word) >= 2)

(* --- order ≼ (Defn 4.4) --- *)

let test_order_basics () =
  let small = ex "q p <p> q*" in
  let big = ex "([^p])* p <p> .*" in
  check_bool "small ≼ big" true (Expr_order.preceq small big);
  check_bool "big ⋠ small" false (Expr_order.preceq big small);
  check_bool "strictly below" true (Expr_order.strictly_below small big);
  check_bool "reflexive" true (Expr_order.preceq small small)

let test_order_same_language_not_comparable () =
  (* §4: p⟨p⟩ppp and ppp⟨p⟩p parse the same language but extract
     different occurrences — neither ≼ holds. *)
  let a = ex "p <p> p p p" in
  let b = ex "p p p <p> p" in
  check_bool "same parsed language" true (Expr_order.same_parsed_language a b);
  check_bool "a ⋠ b" false (Expr_order.preceq a b);
  check_bool "b ⋠ a" false (Expr_order.preceq b a);
  (* and indeed they extract different positions from ppppp *)
  let wrd = w ab_pq "ppppp" in
  check_bool "different extraction" true
    (Extraction.extract a wrd <> Extraction.extract b wrd)

(* --- maximality: Examples 4.6, Prop 5.11, Cor 5.8 --- *)

let test_example_4_6 () =
  (* Both (Σ−p)*⟨p⟩Σ* and (qp)*((Σ−p)*−q)... are maximal; we check the
     first (the second is equivalent to a left-filter output tested
     below). *)
  check_bool "(Σ−p)*⟨p⟩Σ* maximal" true
    (Maximality.is_maximal (ex "([^p])* <p> .*"))

let test_prop_5_11 () =
  (* (Σ−p)*⟨p⟩E maximal iff L(E) = Σ*. *)
  check_bool "E = Σ* ⇒ maximal" true
    (Maximality.is_maximal (ex "([^p])* <p> (p | q)*"));
  (match Maximality.check (ex "([^p])* <p> q*") with
  | Maximality.Not_maximal_right _ | Maximality.Not_maximal_left _ -> ()
  | _ -> Alcotest.fail "expected non-maximality for E = q*");
  (* Lemma 5.10: (Σ−p)*⟨p⟩E is unambiguous for every E. *)
  List.iter
    (fun right ->
      check_bool
        ("lemma 5.10 on " ^ right)
        true
        (Ambiguity.is_unambiguous (ex ("([^p])* <p> " ^ right))))
    [ "q*"; "p*"; ".*"; "(p q)*"; "@"; "!" ]

let test_non_maximal_verdicts () =
  (match Maximality.check (ex "q p <p> .*") with
  | Maximality.Not_maximal_left wrd ->
      (* Adding the witness to the left side must keep unambiguity and
         strictly grow the language (per the proof of Prop 5.7). *)
      let e = ex "q p <p> .*" in
      let bigger =
        Extraction.make ab_pq
          (Regex.alt e.Extraction.left (Regex.word wrd))
          p e.Extraction.right
      in
      check_bool "extended stays unambiguous" true
        (Ambiguity.is_unambiguous bigger);
      check_bool "input ≼ extended" true (Expr_order.preceq e bigger);
      check_bool "strict growth" false (Expr_order.preceq bigger e)
  | _ -> Alcotest.fail "qp⟨p⟩Σ* should be non-maximal on the left");
  match Maximality.check (ex "p* <p> p*") with
  | Maximality.Ambiguous_input _ -> ()
  | _ -> Alcotest.fail "ambiguous input must be flagged"

(* --- Algorithm 6.2 (left-filtering) --- *)

let test_example_4_7_left_filter () =
  (* qp⟨p⟩Σ* maximizes (via Algorithm 6.2) to ((qp(Σ−p)* ) | ((Σ−p)*−q))⟨p⟩Σ*. *)
  let e = ex "q p <p> .*" in
  match Left_filter.maximize e with
  | Error err -> Alcotest.failf "unexpected: %a" Left_filter.pp_error err
  | Ok e' ->
      let expected = ex "(q p ([^p])*) | (([^p])* - q) <p> .*" in
      check_bool "matches the paper's Example 4.7 result" true
        (Expr_order.equivalent e' expected);
      check_bool "maximal" true (Maximality.is_maximal e');
      check_bool "unambiguous" true (Ambiguity.is_unambiguous e');
      check_bool "generalizes input" true (Expr_order.preceq e e')

let test_example_4_7_other_maximization () =
  (* The same qp⟨p⟩Σ* is also generalized by the other maximal
     expression (Σ−p)*·p·(Σ−p)*⟨p⟩Σ* — maximization is not unique. *)
  let e = ex "q p <p> .*" in
  let other = ex "([^p])* p ([^p])* <p> .*" in
  check_bool "q p ≼ other" true (Expr_order.preceq e other);
  check_bool "other is unambiguous" true (Ambiguity.is_unambiguous other);
  check_bool "other is maximal" true (Maximality.is_maximal other);
  (* ... and it differs from the Algorithm 6.2 maximization, witnessing
     non-uniqueness of maximal generalizations. *)
  let alg = ex "(q p ([^p])*) | (([^p])* - q) <p> .*" in
  check_bool "two distinct maximal generalizations" false
    (Expr_order.equivalent other alg)

let test_left_filter_no_p () =
  (* E with no p at all: q⟨p⟩Σ* → (Σ−p)*⟨p⟩Σ*. *)
  let e = ex "q <p> .*" in
  match Left_filter.maximize e with
  | Error err -> Alcotest.failf "unexpected: %a" Left_filter.pp_error err
  | Ok e' ->
      check_bool "result is (Σ−p)*⟨p⟩Σ*" true
        (Expr_order.equivalent e' (ex "([^p])* <p> .*"))

let test_left_filter_unbounded () =
  let e = ex "(q p)* <p> .*" in
  match Left_filter.maximize e with
  | Error Left_filter.Unbounded_mark_count -> ()
  | Ok _ -> Alcotest.fail "unbounded p-count must be rejected"
  | Error err -> Alcotest.failf "wrong error: %a" Left_filter.pp_error err

let test_left_filter_ambiguous () =
  let e = ex "p* <p> .*" in
  match Left_filter.maximize e with
  | Error (Left_filter.Ambiguous _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "ambiguous input must be rejected"

let arb_bounded_left =
  (* Left sides with bounded p-count: generated from p-free pieces with
     at most two explicit p's. *)
  let open QCheck.Gen in
  let pfree =
    let base =
      oneofl
        [ "q"; "q q"; "[^p]"; "([^p])*"; "q*"; "(q q)*"; "@"; "q | q q" ]
    in
    base
  in
  let gen =
    let* a = pfree and* b = pfree and* c = pfree in
    let* shape = int_bound 2 in
    return
      (match shape with
      | 0 -> Printf.sprintf "%s" a
      | 1 -> Printf.sprintf "%s p %s" a b
      | _ -> Printf.sprintf "%s p %s p %s" a b c)
  in
  QCheck.make ~print:Fun.id gen

let prop_left_filter_postconditions =
  qtest ~count:60 "Alg 6.2: maximal ∧ unambiguous ∧ generalizes (Prop 6.5)"
    arb_bounded_left
    (fun left_str ->
      let e = ex (left_str ^ " <p> .*") in
      match Left_filter.maximize e with
      | Error (Left_filter.Ambiguous _) -> true (* generator may produce ambiguous *)
      | Error _ -> false
      | Ok e' ->
          Ambiguity.is_unambiguous e'
          && Maximality.is_maximal e'
          && Expr_order.preceq e e')

let test_relax_right () =
  (* E1 = (Σ−p)* q: no E1-word extends by p·γ to another E1-word, so the
     right side may be widened to Σ*. *)
  let e = ex "([^p])* q <p> q q" in
  (match Left_filter.relax_right e with
  | None -> Alcotest.fail "relaxation should apply"
  | Some e' ->
      check_bool "widened right" true
        (Lang.is_universal (Extraction.right_lang e'));
      check_bool "still unambiguous" true (Ambiguity.is_unambiguous e'));
  (* p*: trivially extensible, must not relax. *)
  let e2 = ex "p* <p> q" in
  check_bool "no relaxation for p*" true (Left_filter.relax_right e2 = None)

let test_maximize_right_mirror () =
  (* Σ*⟨p⟩pq — mirror image of qp⟨p⟩Σ*. *)
  let e = ex ".* <p> p q" in
  match Left_filter.maximize_right e with
  | Error err -> Alcotest.failf "unexpected: %a" Left_filter.pp_error err
  | Ok e' ->
      check_bool "unambiguous" true (Ambiguity.is_unambiguous e');
      check_bool "maximal" true (Maximality.is_maximal e');
      check_bool "generalizes" true (Expr_order.preceq e e')

(* --- composition (Props 6.6 / 6.7) --- *)

let test_composition_unambiguous () =
  let e1 = ex "([^q])* <q> .*" in
  let e2 = ex "([^p])* <p> .*" in
  let c = Pivot.compose e1 e2 in
  check_bool "composition unambiguous (Prop 6.6)" true
    (Ambiguity.is_unambiguous c);
  check_bool "composition maximal (Prop 6.7)" true (Maximality.is_maximal c)

let prop_composition_preserves_unambiguity =
  qtest ~count:40 "Prop 6.6 on generated factors"
    (QCheck.pair arb_bounded_left arb_bounded_left)
    (fun (s1, s2) ->
      let q = Alphabet.find_exn ab_pq "q" in
      let e1 = Extraction.make ab_pq (rx ab_pq s1) q Regex.sigma_star in
      let e2 = Extraction.make ab_pq (rx ab_pq s2) p Regex.sigma_star in
      if Ambiguity.is_ambiguous e1 || Ambiguity.is_ambiguous e2 then true
      else Ambiguity.is_unambiguous (Pivot.compose e1 e2))

let prop_composition_of_maximal_is_maximal =
  (* Prop 6.7 as a property: maximize two bounded factors, compose, and
     the composition must be maximal and unambiguous. *)
  qtest ~count:25 "Prop 6.7 on synthesized maximal factors"
    (QCheck.pair arb_bounded_left arb_bounded_left)
    (fun (s1, s2) ->
      let q = Alphabet.find_exn ab_pq "q" in
      let max_of s mark =
        let l = Lang.of_regex ab_pq (rx ab_pq s) in
        match Left_filter.maximize_lang l mark with
        | Ok l' -> Some (Extraction.of_langs ab_pq l' mark (Lang.sigma_star ab_pq))
        | Error _ -> None
      in
      match (max_of s1 q, max_of s2 p) with
      | Some e1, Some e2 ->
          let c = Pivot.compose e1 e2 in
          Ambiguity.is_unambiguous c && Maximality.is_maximal c
      | _ -> true)

(* --- pivot maximization --- *)

let test_pivot_beats_left_filter () =
  (* E = (qp)*·q·p with last factor bounded: plain left-filtering fails
     (E matches unboundedly many p's); pivoting on the final q... the
     spine is ((qp)* q) with pivot opportunities.  Use
     E = (q p)* q <p> Σ* and decompose manually: E1 = (qp)* with pivot
     q1 = q?  No: (qp)*⟨q⟩Σ* is ambiguous.  Use instead
     E = p* q <p> Σ* decomposed as E1 = p* ⟨q⟩ E2 = ε. *)
  let e = ex "p* q <p> .*" in
  (match Left_filter.maximize e with
  | Error Left_filter.Unbounded_mark_count -> ()
  | _ -> Alcotest.fail "expected unbounded for p* q");
  let q = Alphabet.find_exn ab_pq "q" in
  let d = { Pivot.segments = [ Regex.star (Regex.sym p); Regex.eps ]; pivots = [ q ] } in
  (match Pivot.validate ab_pq d p with
  | Error err -> Alcotest.failf "validate: %a" Pivot.pp_error err
  | Ok () -> ());
  match Pivot.maximize ab_pq d p with
  | Error err -> Alcotest.failf "maximize: %a" Pivot.pp_error err
  | Ok e' ->
      check_bool "pivot result unambiguous" true (Ambiguity.is_unambiguous e');
      check_bool "pivot result maximal" true (Maximality.is_maximal e');
      check_bool "generalizes input" true (Expr_order.preceq e e')

let test_auto_decompose () =
  let e = rx ab_pq "p* q" in
  match Pivot.auto_decompose ab_pq e p with
  | None -> Alcotest.fail "expected a decomposition"
  | Some d ->
      check_int "one pivot" 1 (List.length d.Pivot.pivots);
      check_bool "recompose equals input (as language)" true
        (Lang.equal (Lang.of_regex ab_pq (Pivot.recompose d))
           (Lang.of_regex ab_pq e))

let test_auto_decompose_failure () =
  (* (qp)* has unbounded p and no usable pivot: auto decomposition for
     mark p must fail. *)
  check_bool "no decomposition for (q p)*" true
    (Pivot.auto_decompose ab_pq (rx ab_pq "(q p)*") p = None)

(* --- synthesis orchestrator --- *)

let test_synthesis_strategies () =
  let outcomes =
    [
      ("([^p])* <p> .*", `Already_maximal);
      (* literal symbols on the spine become pivots (preferred, per §7) *)
      ("q p <p> .*", `Pivot);
      (* no literal atoms on the spine ⇒ plain Algorithm 6.2 *)
      ("(q | q q) <p> .*", `Left);
      (".* <p> p q", `Right);
      ("p* q <p> .*", `Pivot);
      ("p* <p> .*", `Ambiguous);
      ("q p <p> q*", `Relaxed);
    ]
  in
  List.iter
    (fun (s, expected) ->
      match (Synthesis.maximize (ex s), expected) with
      | Ok (_, Synthesis.Already_maximal), `Already_maximal -> ()
      | Ok (_, Synthesis.Left_filtering), `Left -> ()
      | Ok (_, Synthesis.Right_filtering), `Right -> ()
      | Ok (_, Synthesis.Pivoting _), `Pivot -> ()
      | ( Ok
            ( _,
              ( Synthesis.Relaxed_then_left | Synthesis.Relaxed_then_right
              | Synthesis.Relaxed_then_pivoting _ ) ),
          `Relaxed ) ->
          ()
      | Error (Synthesis.Ambiguous _), `Ambiguous -> ()
      | Ok (_, st), _ ->
          Alcotest.failf "%s: unexpected strategy %a" s
            (Synthesis.pp_strategy ab_pq) st
      | Error f, _ ->
          Alcotest.failf "%s: unexpected failure %a" s
            (Synthesis.pp_failure ab_pq) f)
    outcomes

let prop_synthesis_postconditions =
  qtest ~count:60 "synthesis output is maximal, unambiguous, generalizing"
    arb_bounded_left
    (fun left_str ->
      let e = ex (left_str ^ " <p> .*") in
      match Synthesis.maximize e with
      | Error _ -> true
      | Ok (e', _) ->
          Ambiguity.is_unambiguous e'
          && Maximality.is_maximal e'
          && Expr_order.preceq e e')

(* --- multi-field (tuple) extraction --- *)

let test_multi_parse_and_extract () =
  (* E0 <p> E1 <q> E2: first p, then the last q (suffix is all-p) *)
  let me = Multi_extraction.parse ab_pq "q* <p> q* <q> p*" in
  Alcotest.(check int) "arity" 2 (Multi_extraction.arity me);
  let word = w ab_pq "qpqqp" in
  (match Multi_extraction.extract me word with
  | `Unique [ 1; 3 ] -> ()
  | `Unique t ->
      Alcotest.failf "wrong tuple: %s"
        (String.concat "," (List.map string_of_int t))
  | `Ambiguous _ -> Alcotest.fail "ambiguous"
  | `No_match -> Alcotest.fail "no match");
  check_bool "unambiguous" true (Multi_extraction.is_unambiguous me);
  check_bool "no match on qq" true
    (Multi_extraction.extract me (w ab_pq "qq") = `No_match)

let test_multi_ambiguous () =
  (* .* <p> .*: second mark can land on several q's *)
  let me = Multi_extraction.parse ab_pq ".* <p> .* <q> .*" in
  check_bool "ambiguous" true (Multi_extraction.is_ambiguous me);
  match Multi_extraction.extract me (w ab_pq "pqq") with
  | `Ambiguous tuples -> Alcotest.(check int) "two tuples" 2 (List.length tuples)
  | _ -> Alcotest.fail "expected ambiguity on pqq"

let test_multi_coordinate_reduction () =
  let me = Multi_extraction.parse ab_pq "q* <p> q* <q> p*" in
  (* coordinate expressions must both be unambiguous *)
  check_bool "coord 0" true
    (Ambiguity.is_unambiguous (Multi_extraction.coordinate_expression me 0));
  check_bool "coord 1" true
    (Ambiguity.is_unambiguous (Multi_extraction.coordinate_expression me 1))

let test_multi_roundtrip_single () =
  let e = ex "q p <p> q*" in
  let me = Multi_extraction.of_extraction e in
  Alcotest.(check int) "arity 1" 1 (Multi_extraction.arity me);
  match Multi_extraction.to_extraction me with
  | Some e' ->
      check_bool "roundtrip left" true
        (Regex.equal e.Extraction.left e'.Extraction.left)
  | None -> Alcotest.fail "roundtrip"

let prop_multi_matcher_equals_splits =
  qtest ~count:80 "compiled tuple matcher = brute splits (unambiguous cases)"
    (QCheck.pair arb_bounded_left (arb_word ab_pq 7))
    (fun (left_str, word) ->
      let q = Alphabet.find_exn ab_pq "q" in
      match
        Multi_extraction.make ab_pq
          [ rx ab_pq left_str; Regex.any_but_star p; Regex.sigma_star ]
          [ p; q ]
      with
      | exception Invalid_argument _ -> true
      | me ->
          if Multi_extraction.is_ambiguous me then true
          else
            let m = Multi_extraction.compile me in
            let brute = Multi_extraction.extract me word in
            let fast = Multi_extraction.matcher_extract m word in
            brute = fast)

(* --- streaming extraction --- *)

let test_stream_splits () =
  let e = ex "([^p])* <p> .*" in
  let m = Extraction.compile e in
  check_bool "online" true (Extraction.matcher_online m);
  let word = w ab_pq "qqpqp" in
  let streamed =
    List.of_seq (Extraction.matcher_stream_splits m (Array.to_seq word))
  in
  Alcotest.(check (list int)) "matches batch splits"
    (Extraction.matcher_splits m word)
    streamed

let test_stream_requires_sigma_star () =
  let e = ex "q* <p> q" in
  let m = Extraction.compile e in
  check_bool "not online" false (Extraction.matcher_online m);
  match Extraction.matcher_stream_splits m (List.to_seq [ 0 ]) with
  | exception Extraction.Not_online { expr } ->
      (* structured, not a bare Invalid_argument: the daemon and the
         CLI report err=not_online from this payload *)
      Alcotest.(check string)
        "carries the rendered expression" (Extraction.to_string e) expr
  | (_ : int Seq.t) -> Alcotest.fail "must reject non-Sigma* right sides"

let test_stream_edge_cases () =
  let e = ex "([^p])* <p> .*" in
  let m = Extraction.compile e in
  let stream word =
    List.of_seq (Extraction.matcher_stream_splits m (Array.to_seq word))
  in
  (* empty word: no positions, no crash *)
  Alcotest.(check (list int)) "empty word" [] (stream [||]);
  (* mark at position 0: ε ∈ L(left), so position 0 splits *)
  let w0 = w ab_pq "pqq" in
  Alcotest.(check (list int)) "mark at 0" [ 0 ] (stream w0);
  check_bool "agrees with batch at 0" true
    (stream w0 = Extraction.matcher_splits m w0);
  (* mark at the last position n-1 *)
  let wn = w ab_pq "qqp" in
  Alcotest.(check (list int)) "mark at n-1" [ 2 ] (stream wn);
  check_bool "agrees with batch at n-1" true
    (stream wn = Extraction.matcher_splits m wn)

let test_stream_symbol_out_of_range () =
  let e = ex "([^p])* <p> .*" in
  let m = Extraction.compile e in
  let consume s = List.of_seq (Extraction.matcher_stream_splits m s) in
  (match consume (List.to_seq [ 0; 99; 1 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "must reject out-of-alphabet symbols");
  match consume (List.to_seq [ 0; -1 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "must reject negative symbols"

let test_stream_is_lazy () =
  (* consuming only the first element must not force the rest *)
  let e = ex "([^p])* <p> .*" in
  let m = Extraction.compile e in
  let forced = ref 0 in
  let infinite =
    Seq.unfold (fun i -> incr forced; Some ((if i = 1 then p else 1 - p), i + 1)) 0
  in
  (match (Extraction.matcher_stream_splits m infinite) () with
  | Seq.Cons (i, _) -> Alcotest.(check int) "first split" 1 i
  | Seq.Nil -> Alcotest.fail "expected a split");
  check_bool "did not consume unboundedly" true (!forced < 100)

let test_stream_pulls_each_token_once () =
  (* the serve sessions hand the matcher a one-shot effect-backed
     stream, so re-pulling any element would deadlock a session: count
     every pull and insist on exactly one per token *)
  let m = Extraction.compile (ex "([^p])* <p> .*") in
  let word = w ab_pq "q q p q p" in
  let pulls = Array.make (Array.length word) 0 in
  let counted =
    Seq.mapi
      (fun i a ->
        pulls.(i) <- pulls.(i) + 1;
        a)
      (Array.to_seq word)
  in
  let streamed = List.of_seq (Extraction.matcher_stream_splits m counted) in
  Alcotest.(check (list int))
    "splits" (Extraction.matcher_splits m word) streamed;
  Array.iteri
    (fun i n -> Alcotest.(check int) (Printf.sprintf "token %d pulls" i) 1 n)
    pulls

let test_stream_every_truncation () =
  (* end-of-stream can land anywhere (a serve client may vanish
     mid-session): every prefix must still equal the offline answer *)
  let m = Extraction.compile (ex "([^p])* <p> .*") in
  let word = w ab_pq "p q p q p" in
  for k = 0 to Array.length word do
    let prefix = Array.sub word 0 k in
    Alcotest.(check (list int))
      (Printf.sprintf "prefix of length %d" k)
      (Extraction.matcher_splits m prefix)
      (List.of_seq (Extraction.matcher_stream_splits m (Array.to_seq prefix)))
  done

let test_stream_bad_symbol_is_lazy () =
  (* splits pinned before an out-of-range symbol must still be
     delivered; the raise happens at the offending element, not
     eagerly *)
  let m = Extraction.compile (ex "([^p])* <p> .*") in
  let s = Extraction.matcher_stream_splits m (List.to_seq [ p; 99 ]) in
  match s () with
  | Seq.Cons (0, rest) -> (
      match rest () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad symbol must raise when reached")
  | _ -> Alcotest.fail "expected the pinned split before the bad symbol"

let () =
  Alcotest.run "core"
    [
      ( "extraction",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "splits" `Quick test_splits;
          Alcotest.test_case "language" `Quick test_language;
          prop_matcher_equals_brute_splits;
        ] );
      ( "ambiguity",
        [
          Alcotest.test_case "example 4.3" `Quick test_example_4_3;
          Alcotest.test_case "motivating §3" `Quick test_ambiguity_motivating;
          prop_quotient_test_equals_marker_test;
          prop_ambiguity_equals_brute_force;
        ] );
      ( "order",
        [
          Alcotest.test_case "basics" `Quick test_order_basics;
          Alcotest.test_case "same language, incomparable" `Quick
            test_order_same_language_not_comparable;
        ] );
      ( "maximality",
        [
          Alcotest.test_case "example 4.6" `Quick test_example_4_6;
          Alcotest.test_case "prop 5.11 + lemma 5.10" `Quick test_prop_5_11;
          Alcotest.test_case "non-maximal verdicts" `Quick
            test_non_maximal_verdicts;
        ] );
      ( "left-filtering",
        [
          Alcotest.test_case "example 4.7" `Quick test_example_4_7_left_filter;
          Alcotest.test_case "example 4.7 non-uniqueness" `Quick
            test_example_4_7_other_maximization;
          Alcotest.test_case "no-p input" `Quick test_left_filter_no_p;
          Alcotest.test_case "unbounded rejected" `Quick
            test_left_filter_unbounded;
          Alcotest.test_case "ambiguous rejected" `Quick
            test_left_filter_ambiguous;
          prop_left_filter_postconditions;
          Alcotest.test_case "relax right" `Quick test_relax_right;
          Alcotest.test_case "mirror (right) maximization" `Quick
            test_maximize_right_mirror;
        ] );
      ( "composition",
        [
          Alcotest.test_case "props 6.6/6.7" `Quick test_composition_unambiguous;
          prop_composition_preserves_unambiguity;
          prop_composition_of_maximal_is_maximal;
        ] );
      ( "pivot",
        [
          Alcotest.test_case "beats plain left-filter" `Quick
            test_pivot_beats_left_filter;
          Alcotest.test_case "auto decompose" `Quick test_auto_decompose;
          Alcotest.test_case "auto decompose failure" `Quick
            test_auto_decompose_failure;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "strategy selection" `Quick
            test_synthesis_strategies;
          prop_synthesis_postconditions;
        ] );
      ( "multi-extraction",
        [
          Alcotest.test_case "parse and extract" `Quick
            test_multi_parse_and_extract;
          Alcotest.test_case "ambiguity" `Quick test_multi_ambiguous;
          Alcotest.test_case "coordinate reduction" `Quick
            test_multi_coordinate_reduction;
          Alcotest.test_case "single-mark roundtrip" `Quick
            test_multi_roundtrip_single;
          prop_multi_matcher_equals_splits;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "stream = batch" `Quick test_stream_splits;
          Alcotest.test_case "requires Sigma* right" `Quick
            test_stream_requires_sigma_star;
          Alcotest.test_case "edge cases" `Quick test_stream_edge_cases;
          Alcotest.test_case "symbol out of range" `Quick
            test_stream_symbol_out_of_range;
          Alcotest.test_case "laziness" `Quick test_stream_is_lazy;
          Alcotest.test_case "each token pulled exactly once" `Quick
            test_stream_pulls_each_token_once;
          Alcotest.test_case "every truncation = offline prefix" `Quick
            test_stream_every_truncation;
          Alcotest.test_case "bad symbol raises lazily" `Quick
            test_stream_bad_symbol_is_lazy;
        ] );
    ]

Error paths: every failure must be a diagnostic plus a nonzero exit,
never a backtrace.

A duplicate symbol makes the alphabet ill-formed:

  $ rexdex check -a p,p 'q <p> q*'
  error: Alphabet.of_array: duplicate symbol p
  [2]

An extraction expression needs exactly one mark:

  $ rexdex check -a p,q 'p q*'
  parse error at offset 0: missing <p> marker
  [2]

  $ rexdex check -a p,q 'q <p> q <p> q'
  parse error at offset 3: unexpected character '<'
  [2]

Marks must name an alphabet symbol:

  $ rexdex extract -a p,q 'q* <z> q' 'q q'
  parse error at offset 3: unknown marked symbol z
  [2]

Regex syntax errors are reported, not raised:

  $ rexdex check -a p,q 'q* <p> (q'
  parse error at offset 3: expected ')'
  [2]

  $ rexdex dot -a p,q '*q'
  parse error at offset 0: expected an expression
  [2]

Learning needs the target marked in every sample:

  $ cat > unmarked.html <<'EOF'
  > <p><h1>Shop</h1><form><input type="image"><input type="text"></form>
  > EOF
  $ rexdex learn unmarked.html
  unmarked.html: no data-target element
  [2]

A corrupt wrapper file is rejected gracefully:

  $ echo 'not a wrapper' > broken.rexdex
  $ cat > page.html <<'EOF'
  > <p>anything</p>
  > EOF
  $ rexdex apply -w broken.rexdex page.html
  broken.rexdex: not a rexdex wrapper file (bad magic)
  [2]

A malformed DTD is a validation-side error:

  $ cat > broken.dtd <<'EOF'
  > <!ELEMENT catalog (product+
  > EOF
  $ cat > doc.xml <<'EOF'
  > <catalog></catalog>
  > EOF
  $ rexdex validate broken.dtd doc.xml
  broken.dtd: DTD parse error at offset 28: expected )
  [2]

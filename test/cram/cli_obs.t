Observability: --trace prints a span tree on stderr, --metrics-json
writes a machine-readable counter snapshot.  Both are observation
only — stdout (and the verdict) must be byte-identical with the
instrumentation on or off.

A Decided check, traced: stdout matches the untraced run exactly and
the stage spans from the paper's pipeline land on stderr:

  $ rexdex check -a p,q '(q p)* <p> .*' > plain.txt
  $ rexdex check -a p,q --trace '(q p)* <p> .*' > traced.txt 2> tree.txt
  $ cmp plain.txt traced.txt && echo stdout-identical
  stdout-identical
  $ grep -c '^trace: ' tree.txt
  1
  $ grep -q 'verdict' tree.txt && echo has-verdict
  has-verdict
  $ grep -q 'determinize' tree.txt && echo has-determinize
  has-determinize
  $ grep -q 'minimize' tree.txt && echo has-minimize
  has-minimize

An exhausted (UNKNOWN) check, traced: the verdict line is still the
deterministic one pinned in cli_guard.t, and the interrupted
determinization shows up as a failed span:

  $ rexdex check -a p,q --fuel 5000 --retries 1 '([^p])* <p> (p | q)* q (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q)' > plain-u.txt
  [3]
  $ rexdex check -a p,q --fuel 5000 --retries 1 --trace '([^p])* <p> (p | q)* q (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q)' > traced-u.txt 2> tree-u.txt
  [3]
  $ cat traced-u.txt
  expression : [^p]* <p> .* q . . . . . . . . . . . . . . . .
  ambiguous  : UNKNOWN(determinize,10001)
  $ cmp plain-u.txt traced-u.txt && echo stdout-identical
  stdout-identical
  $ grep -q 'FAILED' tree-u.txt && echo has-failed-span
  has-failed-span

Batch with a metrics sink: the snapshot is valid JSON with the pinned
schema, and the extraction output is unchanged:

  $ cat > s1.html <<'EOF'
  > <p><h1>Shop</h1><form><input type="image"><input type="text" data-target="1"><input type="radio"></form>
  > EOF
  $ cat > s2.html <<'EOF'
  > <table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input type="image"><input type="text" data-target="1"><input type="radio"></form></td></tr></table>
  > EOF
  $ rexdex learn s1.html s2.html --save w.rexdex | tail -1
  saved     : w.rexdex
  $ rexdex batch -w w.rexdex s1.html s2.html > plain-b.txt
  $ rexdex batch -w w.rexdex --jobs 2 --metrics-json m.json s1.html s2.html > metered-b.txt
  $ cmp plain-b.txt metered-b.txt && echo stdout-identical
  stdout-identical
  $ cat metered-b.txt
  s1.html: target at 2.1
  s2.html: target at 0.1.0.0.1
  $ python3 - <<'EOF'
  > import json
  > m = json.load(open("m.json"))
  > print(m["schema"], m["traced"])
  > print(sorted(m.keys()))
  > print(m["pool"]["batches"] >= 1, m["pool"]["items"] == 2)
  > json.loads(json.dumps(m)) == m or exit(1)
  > EOF
  rexdex-obs/1 True
  ['artifact', 'cache', 'counters', 'front', 'heal', 'pool', 'schema', 'serve', 'spans', 'spans_dropped', 'traced']
  True True

The oracle itself can run traced; its verdict stream on stdout is
untouched:

  $ rexdex selftest -n 40 -s 3 > plain-s.txt
  $ rexdex selftest -n 40 -s 3 --trace > traced-s.txt 2> /dev/null
  $ cmp plain-s.txt traced-s.txt && echo oracle-identical
  oracle-identical

Sink misconfiguration is a usage error (exit 2), reported before any
work runs:

  $ rexdex check -a p,q --metrics-json a.json --metrics-json b.json '<p>'
  error: conflicting --metrics-json sinks (a.json, b.json)
  [2]
  $ rexdex check -a p,q --metrics-json /nonexistent-dir/m.json '<p>'
  error: cannot open metrics sink: /nonexistent-dir/m.json: No such file or directory
  [2]

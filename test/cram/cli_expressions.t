Expression-level subcommands.

Check a maximal expression:

  $ rexdex check -a p,q '([^p])* <p> .*'
  expression : [^p]* <p> .*
  ambiguous  : no
  maximal    : yes

Check a non-maximal one (witness wording may vary; exit code 0):

  $ rexdex check -a p,q 'q p <p> .*' | head -2
  expression : q p <p> .*
  ambiguous  : no

An ambiguous expression exits 1 with a witness:

  $ rexdex check -a p,q 'p* <p> p*'
  expression : p* <p> p*
  ambiguous  : yes — e.g. pp has multiple splits
  [1]

Maximize Example 4.7's expression:

  $ rexdex maximize -a p,q 'q p <p> .*'
  strategy : pivot maximization with (@) ⋅q⋅ (@) ⋅p⋅ (@)
  result   : p* q q* p q* <p> .*

Extract from a token string:

  $ rexdex extract -a p,q 'q p <p> q*' 'q p p q'
  position 2

  $ rexdex extract -a p,q 'q p <p> q*' 'q q'
  no match
  [1]

Errors are reported with positions:

  $ rexdex check -a p,q 'p* <p'
  parse error at offset 0: missing <p> marker
  [2]

  $ rexdex extract -a p,q 'z <p> .*' 'p'
  parse error at offset 2: unknown symbol "z"
  [2]

Render a minimal DFA as Graphviz DOT:

  $ rexdex dot -a p,q '(p q)* p' | head -5
  digraph dfa {
    rankdir=LR;
    __start [shape=point];
    q0 [shape=circle, style=solid];
    q1 [shape=doublecircle, style=solid];

Compiled artifacts: `rexdex compile` freezes an expression (alphabet,
concrete syntax, mark, and the three validated minimal DFAs) into a
versioned, checksummed .rxc file that `check --load` and
`batch --load` start from without paying the determinize/minimize
cost again.

  $ rexdex compile -a p,q '([^p])* <p> .*' -o paper.rxc
  expression : [^p]* <p> .*
  artifact   : paper.rxc (129 bytes, format v1)

Loading replaces both -a and the compile step, and the output is
byte-identical to checking the expression from source:

  $ rexdex check --load paper.rxc
  expression : [^p]* <p> .*
  ambiguous  : no
  maximal    : yes
  $ rexdex check -a p,q '([^p])* <p> .*' > from_source.txt
  $ rexdex check --load paper.rxc > from_artifact.txt
  $ cmp from_source.txt from_artifact.txt && echo identical
  identical

Every defence layer of the loader answers a structured reason and
exit 2, never a crash.  Truncation (the file ends before its declared
payload):

  $ head -c 10 paper.rxc > broken.rxc
  $ rexdex check --load broken.rxc
  broken.rxc: truncated
  [2]

A corrupt magic number:

  $ cp paper.rxc broken.rxc
  $ printf 'X' | dd of=broken.rxc bs=1 seek=0 conv=notrunc status=none
  $ rexdex check --load broken.rxc
  broken.rxc: bad-magic
  [2]

An unknown format version:

  $ cp paper.rxc broken.rxc
  $ printf '\011' | dd of=broken.rxc bs=1 seek=4 conv=notrunc status=none
  $ rexdex check --load broken.rxc
  broken.rxc: bad-version 9
  [2]

A flipped payload byte fails the CRC-32:

  $ cp paper.rxc broken.rxc
  $ printf '\377' | dd of=broken.rxc bs=1 seek=100 conv=notrunc status=none
  $ rexdex check --load broken.rxc
  broken.rxc: checksum-mismatch
  [2]

Bytes appended after the payload are rejected (a file is exactly
header + payload):

  $ cp paper.rxc broken.rxc
  $ printf 'Z' >> broken.rxc
  $ rexdex check --load broken.rxc
  broken.rxc: malformed: trailing bytes after the payload
  [2]

A missing file:

  $ rexdex check --load missing.rxc
  missing.rxc: malformed: cannot read artifact: missing.rxc: No such file or directory
  [2]

EXPR and --load are alternatives, not companions:

  $ rexdex check -a p,q '([^p])* <p> .*' --load paper.rxc
  error: give either an EXPR or --load, not both
  [2]
  $ rexdex check
  error: give an EXPR to check, or --load a compiled artifact
  [2]

batch --load drives extraction from an artifact instead of a learned
wrapper file, through the same loader (same structured failures):

  $ cat > page.html <<'EOF'
  > <html><body><b>x</b></body></html>
  > EOF
  $ rexdex compile -a 'HTML,/HTML,BODY,/BODY,B,/B' 'HTML BODY <B> /B /BODY /HTML' -o wb.rxc | tail -1
  artifact   : wb.rxc (484 bytes, format v1)
  $ rexdex batch --load wb.rxc page.html
  page.html: target at 0.0.0
  $ rexdex batch --load broken.rxc page.html
  broken.rxc: malformed: trailing bytes after the payload
  [2]
  $ rexdex batch page.html
  error: a wrapper (-w) or a compiled artifact (--load) is required
  [2]

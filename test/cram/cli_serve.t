rexdex serve: a crash-only streaming daemon.  Newline-delimited JSON
frames in, split records out the moment they pin; every failure below
the process boundary becomes a structured error frame and the only
exits are EOF and SIGTERM — both via graceful drain, both 0.

A clean session: open, stream tokens in chunks, close.  The split at
position 2 is emitted as soon as token 2 pins it, not at close:

  $ rexdex serve -a p,q '([^p])* <p> .*' <<'EOF'
  > {"op":"open","id":1}
  > {"op":"tokens","id":1,"syms":["q","q","p","q"]}
  > {"op":"tokens","id":1,"syms":["p"]}
  > {"op":"close","id":1}
  > EOF
  {"ok":"opened","id":1}
  {"split":2,"id":1}
  {"ok":"closed","id":1,"splits":1,"tokens":5}

Malformed frames — byte soup, wrong types, unknown ops, unknown
sessions — are answered with structured errors and never disturb the
daemon or their neighbours:

  $ rexdex serve -a p,q '([^p])* <p> .*' <<'EOF'
  > {"op":"open","id":1}
  > not json at all
  > {"op":"open","id":1}
  > {"op":"nope","id":1}
  > {"op":"tokens","id":7,"syms":["p"]}
  > {"op":"tokens","id":1,"syms":["p"]}
  > {"op":"close","id":1}
  > EOF
  {"ok":"opened","id":1}
  {"err":"decode","reason":"bad JSON: expected null at offset 0"}
  {"err":"proto","id":1,"reason":"session already open"}
  {"err":"decode","reason":"unknown op \"nope\""}
  {"err":"proto","id":7,"reason":"unknown session"}
  {"split":0,"id":1}
  {"ok":"closed","id":1,"splits":1,"tokens":1}
  $ echo exit=$?
  exit=0

An oversized line — here 2 MiB without a newline — is answered with a
single structured decode error: the carried partial line is capped at
the frame-size limit (the rest is discarded until the next newline),
so an adversarial byte river cannot grow daemon memory, and the
neighbouring frames are untouched:

  $ { printf '{"op":"open","id":1}\n'
  >   head -c 2097152 /dev/zero | tr '\0' 'x'
  >   printf '\n{"op":"tokens","id":1,"syms":["p"]}\n{"op":"close","id":1}\n'
  > } | rexdex serve -a p,q '([^p])* <p> .*'
  {"ok":"opened","id":1}
  {"err":"decode","reason":"oversized frame: 1048577 bytes exceeds the 1048576-byte cap"}
  {"split":0,"id":1}
  {"ok":"closed","id":1,"splits":1,"tokens":1}

A session's ambient budget turns exhaustion into a frame, closes that
session, and leaves the daemon (exit 0) and other sessions alone:

  $ rexdex serve -a p,q '([^p])* <p> .*' <<'EOF'
  > {"op":"open","id":1,"fuel":3}
  > {"op":"open","id":2}
  > {"op":"tokens","id":1,"syms":["q","q","q","q"]}
  > {"op":"tokens","id":2,"syms":["q","p"]}
  > {"op":"close","id":2}
  > EOF
  {"ok":"opened","id":1}
  {"ok":"opened","id":2}
  {"err":"budget","id":1,"stage":"stream","spent":4,"limit":3}
  {"split":1,"id":2}
  {"ok":"closed","id":2,"splits":1,"tokens":2}

Load shedding beyond --max-sessions carries a retry hint; after the
occupant closes, the retried open is admitted as if never shed:

  $ rexdex serve -a p,q '([^p])* <p> .*' --max-sessions 1 <<'EOF'
  > {"op":"open","id":1}
  > {"op":"open","id":2}
  > {"op":"close","id":1}
  > {"op":"open","id":2}
  > {"op":"tokens","id":2,"syms":["p"]}
  > {"op":"close","id":2}
  > EOF
  {"ok":"opened","id":1}
  {"err":"shed","id":2,"retry_after_ms":50}
  {"ok":"closed","id":1,"splits":0,"tokens":0}
  {"ok":"opened","id":2}
  {"split":0,"id":2}
  {"ok":"closed","id":2,"splits":1,"tokens":1}

Poisoned-session isolation, checked as byte identity: inject a fault
into the first-opened session and the surviving session's frames must
not change by one byte:

  $ cat > script.txt <<'EOF'
  > {"op":"open","id":1}
  > {"op":"open","id":2}
  > {"op":"tokens","id":1,"syms":["q","p"]}
  > {"op":"tokens","id":2,"syms":["q","p"]}
  > {"op":"close","id":1}
  > {"op":"close","id":2}
  > EOF
  $ rexdex serve -a p,q '([^p])* <p> .*' < script.txt > clean.out
  $ rexdex serve -a p,q '([^p])* <p> .*' --inject-fault 0 < script.txt > faulty.out
  $ grep -c '"err":"fault"' faulty.out
  1
  $ grep '"id":2' clean.out > clean2.out
  $ grep '"id":2' faulty.out > faulty2.out
  $ cmp clean2.out faulty2.out && echo bystander-identical
  bystander-identical

Streaming needs a Σ*-right expression; anything else is refused at
startup with a structured reason, before any input is read:

  $ rexdex serve -a p,q '([^p])* <p> q' </dev/null
  error: not_online: [^p]* <p> q — streaming needs a Σ*-right expression (run 'rexdex maximize' first)
  [2]

A compiled artifact replaces -a and the expression:

  $ rexdex compile -a p,q '([^p])* <p> .*' -o online.rxc > /dev/null
  $ rexdex serve --load online.rxc <<'EOF'
  > {"op":"open","id":1}
  > {"op":"tokens","id":1,"syms":["q","p"]}
  > {"op":"close","id":1}
  > EOF
  {"ok":"opened","id":1}
  {"split":1,"id":1}
  {"ok":"closed","id":1,"splits":1,"tokens":2}

EOF with sessions still open takes the drain path: in-flight sessions
are finished and closed in open order, exit 0:

  $ rexdex serve -a p,q '([^p])* <p> .*' <<'EOF'
  > {"op":"open","id":4}
  > {"op":"open","id":9}
  > {"op":"tokens","id":9,"syms":["p"]}
  > EOF
  {"ok":"opened","id":4}
  {"ok":"opened","id":9}
  {"split":0,"id":9}
  {"ok":"closed","id":4,"splits":0,"tokens":0}
  {"ok":"closed","id":9,"splits":1,"tokens":1}
  $ echo exit=$?
  exit=0

SIGTERM is the other graceful exit: the daemon drains its in-flight
sessions and exits 0 — crash-only means the clean path and the kill
path are the same path:

  $ mkfifo in.fifo
  $ rexdex serve -a p,q '([^p])* <p> .*' < in.fifo > term.out 2> term.err &
  $ pid=$!
  $ exec 9> in.fifo
  $ printf '{"op":"open","id":1}\n{"op":"tokens","id":1,"syms":["q","p"]}\n' >&9
  $ i=0; while ! grep -q split term.out 2>/dev/null && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done
  $ kill -TERM $pid
  $ wait $pid && echo drained-exit-0
  drained-exit-0
  $ exec 9>&-
  $ cat term.out
  {"ok":"opened","id":1}
  {"split":1,"id":1}
  {"ok":"closed","id":1,"splits":1,"tokens":2}

Socket mode outlives its clients: a client vanishing without reading
its answers (EPIPE on the daemon's writes) only ends that connection —
the next client is accepted with a fresh session table, and SIGTERM
still takes the graceful exit:

  $ rexdex serve -a p,q '([^p])* <p> .*' --socket serve.sock > sock.out 2>&1 &
  $ pid=$!
  $ i=0; while [ ! -S serve.sock ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i+1)); done
  $ python3 - <<'EOF'
  > import socket
  > c1 = socket.socket(socket.AF_UNIX); c1.connect('serve.sock')
  > c1.sendall(b'{"op":"open","id":1}\n')
  > c1.close()
  > c2 = socket.socket(socket.AF_UNIX); c2.connect('serve.sock')
  > c2.sendall(b'{"op":"open","id":2}\n'
  >            b'{"op":"tokens","id":2,"syms":["p"]}\n'
  >            b'{"op":"close","id":2}\n')
  > c2.shutdown(socket.SHUT_WR)
  > print(c2.makefile().read(), end='')
  > EOF
  {"ok":"opened","id":2}
  {"split":0,"id":2}
  {"ok":"closed","id":2,"splits":1,"tokens":1}
  $ kill -TERM $pid
  $ wait $pid && echo drained-exit-0
  drained-exit-0

The --stats report is a per-run window built from snapshot deltas
(the daemon never resets process-global metrics):

  $ rexdex serve -a p,q '([^p])* <p> .*' --stats < script.txt > /dev/null 2> stats.err
  $ grep -c "serve stats:" stats.err
  1
  $ grep "opened" stats.err | head -1 | tr -s ' ' | cut -d' ' -f2,3
  opened 2

Batch extraction: compile the wrapper once, evaluate over many pages,
with output independent of the number of domains.

  $ cat > sample1.html <<'EOF'
  > <p><h1>Shop</h1><form><input type="image"><input type="text" data-target="1"><input type="radio"></form>
  > EOF
  $ cat > sample2.html <<'EOF'
  > <table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input type="image"><input type="text" data-target="1"><input type="radio"></form></td></tr></table>
  > EOF
  $ rexdex learn sample1.html sample2.html --save w.rexdex | tail -1
  saved     : w.rexdex

Deterministically perturbed variants give the batch something to chew on:

  $ rexdex perturb sample1.html -n 1 --seed 3 > v1.html
  $ rexdex perturb sample2.html -n 1 --seed 4 > v2.html
  $ rexdex perturb sample1.html -n 1 --seed 5 > v3.html

Sequential and multicore runs produce byte-identical output, in input
order:

  $ rexdex batch -w w.rexdex --jobs 1 sample1.html sample2.html v1.html v2.html v3.html > j1.txt
  $ rexdex batch -w w.rexdex --jobs 4 sample1.html sample2.html v1.html v2.html v3.html > j4.txt
  $ cmp j1.txt j4.txt && echo identical
  identical
  $ cat j1.txt
  sample1.html: target at 2.1
  sample2.html: target at 0.1.0.0.1
  v1.html: target at 2.1
  v2.html: target at 0.0.0.0.1.0.0.1
  v3.html: target at 2.0.1

So does the default (one domain per recommended core), and --stats
reports the cache counters and the domain-pool counters on stderr
without touching stdout:

  $ rexdex batch -w w.rexdex --cache-size 256 --stats sample1.html 2> stats.txt
  sample1.html: target at 2.1
  $ grep -c "hits" stats.txt > /dev/null && echo has-stats
  has-stats
  $ grep -c "pool stats" stats.txt > /dev/null && echo has-pool-stats
  has-pool-stats

Work-unit granularity is a scheduling knob, never a result knob:
forcing per-item chunks (--chunk 1) is byte-identical to the
cost-aware planner (--chunk auto, the default), and --stats reports
the chunk and sequential-fallback counters:

  $ rexdex batch -w w.rexdex --jobs 4 --chunk auto sample1.html sample2.html v1.html v2.html v3.html > ca.txt
  $ rexdex batch -w w.rexdex --jobs 4 --chunk 1 sample1.html sample2.html v1.html v2.html v3.html > c1.txt
  $ rexdex batch -w w.rexdex --jobs 4 --chunk 3 sample1.html sample2.html v1.html v2.html v3.html > c3.txt
  $ cmp ca.txt c1.txt && cmp ca.txt c3.txt && cmp ca.txt j1.txt && echo chunk-identical
  chunk-identical
  $ rexdex batch -w w.rexdex --stats --chunk 1 sample1.html 2> cstats.txt
  sample1.html: target at 2.1
  $ grep -q "chunks" cstats.txt && echo has-chunk-counter
  has-chunk-counter
  $ grep -q "seq-fallbacks" cstats.txt && echo has-fallback-counter
  has-fallback-counter

Bad granularity specs are usage errors (exit 2), reported before any
work runs:

  $ rexdex batch -w w.rexdex --chunk 0 sample1.html
  error: --chunk expects 'auto' or a positive integer, got 0
  [2]
  $ rexdex batch -w w.rexdex --chunk wide sample1.html
  error: --chunk expects 'auto' or a positive integer, got wide
  [2]

Error paths: a corrupt wrapper file is rejected, and a page the
wrapper cannot match fails with exit 1:

  $ echo garbage > bad.rexdex
  $ rexdex batch -w bad.rexdex sample1.html
  bad.rexdex: not a rexdex wrapper file (bad magic)
  [2]
  $ cat > empty.html <<'EOF'
  > <p>nothing here</p>
  > EOF
  $ rexdex batch -w w.rexdex --jobs 2 sample1.html empty.html
  sample1.html: target at 2.1
  empty.html: no match on page
  [1]

A poisoned item (a deterministic fault injected into worker 1) is
contained to its own line — every other item still extracts, the
report stays in input order, and the degraded output is byte-identical
at every parallelism level:

  $ rexdex batch -w w.rexdex --jobs 1 --inject-fault 1 sample1.html sample2.html v1.html > p1.txt
  [1]
  $ rexdex batch -w w.rexdex --jobs 2 --inject-fault 1 sample1.html sample2.html v1.html > p2.txt
  [1]
  $ rexdex batch -w w.rexdex --jobs 4 --inject-fault 1 sample1.html sample2.html v1.html > p4.txt
  [1]
  $ cmp p1.txt p2.txt && cmp p1.txt p4.txt && echo isolated-identically
  isolated-identically
  $ cat p1.txt
  sample1.html: target at 2.1
  sample2.html: worker error: Guard_faults.Injected(batch-item, hit 1)
  v1.html: target at 2.1

The fused page front-end (--fused) skips the parse tree entirely —
raw bytes are lexed, interned, and matched in one pass — and its
output is byte-identical to the tree-building path at every
parallelism level:

  $ rexdex batch -w w.rexdex --fused --jobs 1 sample1.html sample2.html v1.html v2.html v3.html > f1.txt
  $ rexdex batch -w w.rexdex --fused --jobs 4 sample1.html sample2.html v1.html v2.html v3.html > f4.txt
  $ cmp f1.txt f4.txt && cmp f1.txt j1.txt && echo fused-identical
  fused-identical
  $ rexdex batch -w w.rexdex --fused --jobs 2 sample1.html empty.html
  sample1.html: target at 2.1
  empty.html: no match on page
  [1]

--stats on a fused run adds the front-end's own counters (pages,
interner traffic, and the symbol-alphabet → class-table compression):

  $ rexdex batch -w w.rexdex --fused --stats sample1.html 2> fstats.txt
  sample1.html: target at 2.1
  $ grep -q "front stats" fstats.txt && echo has-front-stats
  has-front-stats
  $ grep -q "classes" fstats.txt && echo has-class-count
  has-class-count

Self-healing serve: rexdex serve --heal learns the wrapper from sample
pages, watches per-session verdicts through a windowed drift detector,
quarantines failing pages, and re-synthesizes a new generation the
moment the failure rate trips — announcing it with a healed frame.

The training pages (Figure 1's two layouts, data-target marked) and a
drifted page: the same document wrapped in a SECTION, a tag outside
the learned alphabet, so the generation-0 wrapper must die on it:

  $ cat > sample1.html <<'EOF'
  > <p><h1>Shop</h1><form><input type="image"><input type="text" data-target="1"><input type="radio"></form>
  > EOF
  $ cat > sample2.html <<'EOF'
  > <table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input type="image"><input type="text" data-target="1"><input type="radio"></form></td></tr></table>
  > EOF
  $ printf '<section>%s</section>\n' "$(cat sample1.html)" > drift.html

Three sessions each stream the drifted page (one batch per session via
--batch-max 3).  With window 4, threshold 0.4, min-samples 2 the
detector trips deterministically after the second failure: sessions 1
and 2 die on the unknown symbol, the healed frame announces generation
1 re-synthesized from both quarantined pages, and session 3 extracts
from the drifted layout:

  $ python3 - <<'PYEOF'
  > import json
  > page = open('drift.html').read().strip()
  > with open('script.txt', 'w') as f:
  >     for sid in (1, 2, 3):
  >         f.write(json.dumps({"op": "open", "id": sid}) + '\n')
  >         f.write(json.dumps({"op": "page", "id": sid, "html": page}) + '\n')
  >         f.write(json.dumps({"op": "close", "id": sid}) + '\n')
  > PYEOF
  $ rexdex serve --heal --heal-sample sample1.html --heal-sample sample2.html \
  >   --heal-window 4 --heal-threshold 0.4 --heal-min-samples 2 \
  >   --heal-save gen.rxc --batch-max 3 --stats < script.txt 2> stats.err
  {"ok":"opened","id":1}
  {"err":"proto","id":1,"reason":"unknown symbol \"SECTION\""}
  {"err":"proto","id":1,"reason":"session is gone"}
  {"ok":"opened","id":2}
  {"err":"proto","id":2,"reason":"unknown symbol \"SECTION\""}
  {"err":"proto","id":2,"reason":"session is gone"}
  {"ok":"healed","generation":1,"used":2}
  {"ok":"opened","id":3}
  {"split":7,"id":3}
  {"ok":"closed","id":3,"splits":1,"tokens":11}
  $ echo exit=$?
  exit=0

The --stats report gains a heal section with the loop's counters:

  $ grep -c "heal stats:" stats.err
  1
  $ grep "trips" stats.err | tr -s ' ' | sed 's/^ //'
  trips 1 healed 1
  $ grep "generation" stats.err | tr -s ' ' | sed 's/^ //'
  heal-failures 0 generation 1

Each healed generation is re-saved as a generation-stamped compiled
artifact, loadable anywhere a .rxc goes:

  $ rexdex check --load gen.rxc | grep -c "maximal"
  1

A page whose recovered mark conflicts with the training concept (here
a B element where the samples mark INPUTs) makes re-synthesis fail;
the failed heal is contained — no healed frame, generation stays 0,
the daemon keeps serving, and the failure is counted:

  $ python3 - <<'PYEOF'
  > import json
  > page = '<p><b data-target="1">conflicting mark</b>'
  > with open('bad.txt', 'w') as f:
  >     for sid in (1, 2):
  >         f.write(json.dumps({"op": "open", "id": sid}) + '\n')
  >         f.write(json.dumps({"op": "page", "id": sid, "html": page}) + '\n')
  >         f.write(json.dumps({"op": "close", "id": sid}) + '\n')
  > PYEOF
  $ rexdex serve --heal --heal-sample sample1.html --heal-sample sample2.html \
  >   --heal-window 4 --heal-threshold 0.4 --heal-min-samples 2 \
  >   --batch-max 3 --stats < bad.txt > bad.out 2> bad.err
  $ grep -c healed bad.out
  0
  [1]
  $ grep "heal-failures" bad.err | tr -s ' ' | sed 's/^ //'
  heal-failures 1 generation 0

A quarantine of capacity 1 evicts its oldest page when the second
failure arrives — recency wins, and the eviction is counted:

  $ rexdex serve --heal --heal-sample sample1.html --heal-sample sample2.html \
  >   --heal-window 4 --heal-threshold 0.4 --heal-min-samples 2 \
  >   --heal-quarantine 1 --batch-max 3 --stats < script.txt > /dev/null 2> q.err
  $ grep "evicted" q.err | tr -s ' ' | sed 's/^ //'
  quarantined 2 evicted 1
  $ rexdex serve --heal --heal-sample sample1.html --heal-sample sample2.html \
  >   --heal-window 4 --heal-threshold 0.4 --heal-min-samples 2 \
  >   --heal-quarantine 1 --batch-max 3 < script.txt | grep healed
  {"ok":"healed","generation":1,"used":1}

Healing is opt-in and its flags police each other — no samples, a
positional expression, or an orphaned --heal-sample are all refused
before any input is read:

  $ rexdex serve --heal </dev/null
  error: --heal requires at least one --heal-sample page
  [2]
  $ rexdex serve --heal --heal-sample sample1.html -a p,q '([^p])* <p> .*' </dev/null
  error: --heal learns the wrapper from --heal-sample pages; drop EXPR, -a, and --load
  [2]
  $ rexdex serve --heal-sample sample1.html -a p,q '([^p])* <p> .*' </dev/null
  error: --heal-sample requires --heal
  [2]
  $ cat > unmarked.html <<'EOF'
  > <p><h1>Shop</h1><form><input type="image"></form>
  > EOF
  $ rexdex serve --heal --heal-sample unmarked.html </dev/null
  unmarked.html: no data-target element
  [2]

The learn and perturb commands refuse unmarked pages too:

  $ rexdex learn unmarked.html
  unmarked.html: no data-target element
  [2]
  $ rexdex perturb unmarked.html -n 1 --seed 1
  error: Perturb.perturb: document has no data-target node
  [2]

HTML pipeline subcommands.

  $ cat > sample1.html <<'EOF'
  > <p><h1>Shop</h1><form><input type="image"><input type="text" data-target="1"><input type="radio"></form>
  > EOF
  $ cat > sample2.html <<'EOF'
  > <table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input type="image"><input type="text" data-target="1"><input type="radio"></form></td></tr></table>
  > EOF
  $ cat > fresh.html <<'EOF'
  > <div><h1>Shop</h1><hr><form><input type="image"><input type="text"><input type="radio"></form></div>
  > EOF

Tag-sequence view (§3 abstraction):

  $ rexdex tokens sample1.html
  P /P H1 /H1 FORM INPUT INPUT INPUT /FORM

Learn a wrapper from two marked samples and test it on a fresh page:

  $ rexdex learn sample1.html sample2.html -t fresh.html --save w.rexdex | tail -2
  saved     : w.rexdex
  fresh.html: target at 0.2.1

Apply the saved wrapper:

  $ rexdex apply -w w.rexdex fresh.html
  fresh.html: target at 0.2.1

A page without the concept's anchors fails honestly:

  $ cat > empty.html <<'EOF'
  > <p>nothing here</p>
  > EOF
  $ rexdex apply -w w.rexdex empty.html
  empty.html: no match on page
  [1]

DTD validation:

  $ cat > cat.dtd <<'EOF'
  > <!ELEMENT catalog (product+)>
  > <!ELEMENT product (name, price)>
  > <!ELEMENT name (#PCDATA)>
  > <!ELEMENT price (#PCDATA)>
  > EOF
  $ cat > ok.xml <<'EOF'
  > <catalog><product><name>x</name><price>9</price></product></catalog>
  > EOF
  $ cat > bad.xml <<'EOF'
  > <catalog><product><price>9</price><name>x</name></product></catalog>
  > EOF
  $ rexdex validate cat.dtd ok.xml
  ok.xml: valid
  $ rexdex validate cat.dtd bad.xml
  bad.xml: PRODUCT at /0/0: child sequence [PRICE NAME] violates content model
  [1]

Perturbation is deterministic under a fixed seed:

  $ rexdex perturb sample1.html -n 2 --seed 7 > v1.html
  $ rexdex perturb sample1.html -n 2 --seed 7 > v2.html
  $ cmp v1.html v2.html && echo deterministic
  deterministic

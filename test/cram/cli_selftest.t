The differential-oracle campaign: same seed and budget must produce
byte-identical reports (no timing, no ambient randomness).

  $ rexdex selftest -n 60 -s 7 > r1.txt
  $ rexdex selftest -n 60 -s 7 > r2.txt
  $ cmp r1.txt r2.txt && echo deterministic
  deterministic

A different seed drives different cases but the same verdict shape:

  $ rexdex selftest -n 60 -s 8 > r3.txt
  $ head -2 r1.txt
  rexdex selftest — differential oracle campaign
  seed 7 · budget 60 cases · 83 oracle tests
  $ tail -1 r1.txt
  selftest OK: 83 cases, 0 violations
  $ tail -1 r3.txt
  selftest OK: 83 cases, 0 violations

The budget is split evenly across the oracle tests (at least one case
each), so a tiny run still touches every oracle:

  $ rexdex selftest -n 1 -s 0 | tail -1
  selftest OK: 83 cases, 0 violations

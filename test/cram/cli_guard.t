Budgeted execution: --fuel meters DFA-state construction, --deadline-ms
bounds wall clock, and exhaustion is a third verdict (UNKNOWN, exit 3),
never a wrong answer.

In-budget runs are byte-identical to unbounded ones — the budget meters
the work, it does not change it:

  $ rexdex check -a p,q '([^p])* <p> .*' > unbounded.txt
  $ rexdex check -a p,q --fuel 100000 '([^p])* <p> .*' > bounded.txt
  $ cmp unbounded.txt bounded.txt && echo identical
  identical
  $ cat bounded.txt
  expression : [^p]* <p> .*
  ambiguous  : no
  maximal    : yes

The Theorem 5.12 blow-up family ([^p])* <p> (p|q)* q (p|q){k} needs a
2^(k+1)-state DFA on the right side; at k=16 that dwarfs any sane fuel
budget.  One retry doubles the fuel (5000 -> 10000) and the spent
counter is deterministic, so the UNKNOWN line is reproducible
byte-for-byte:

  $ rexdex check -a p,q --fuel 5000 --retries 1 '([^p])* <p> (p | q)* q (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q)'
  expression : [^p]* <p> .* q . . . . . . . . . . . . . . . .
  ambiguous  : UNKNOWN(determinize,10001)
  [3]

A wall-clock deadline exhausts too (the spent count at the moment the
clock fires is timing-dependent, so we normalize it):

  $ rexdex check -a p,q --deadline-ms 150 '([^p])* <p> (p | q)* q (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q) (p | q)' > out.txt
  [3]
  $ sed 's/UNKNOWN(deadline,[0-9]*)/UNKNOWN(deadline,_)/' out.txt
  expression : [^p]* <p> .* q . . . . . . . . . . . . . . . . . . . .
  ambiguous  : UNKNOWN(deadline,_)

Batch accepts the same budget flags; a wrapper compiled in-budget
extracts identically with and without them:

  $ cat > s1.html <<'EOF'
  > <p><h1>Shop</h1><form><input type="image"><input type="text" data-target="1"><input type="radio"></form>
  > EOF
  $ cat > s2.html <<'EOF'
  > <table><tr><td><h1>Shop</h1></td></tr><tr><td><form><input type="image"><input type="text" data-target="1"><input type="radio"></form></td></tr></table>
  > EOF
  $ rexdex learn s1.html s2.html --save w.rexdex | tail -1
  saved     : w.rexdex
  $ rexdex batch -w w.rexdex s1.html s2.html > plain.txt
  $ rexdex batch -w w.rexdex --fuel 100000 --deadline-ms 5000 --retries 2 s1.html s2.html > budgeted.txt
  $ cmp plain.txt budgeted.txt && echo identical
  identical
  $ cat budgeted.txt
  s1.html: target at 2.1
  s2.html: target at 0.1.0.0.1

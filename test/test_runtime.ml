(* Tests for the compiled-extraction runtime: the LRU kernel, regex
   hash-consing, the memoized pipeline's observational transparency,
   and the chunked multicore batch executor. *)

open Helpers

let ex s = Extraction.parse ab_pq s

(* --- Lru kernel --- *)

let test_lru_basic () =
  let c = Lru.create ~cap:2 in
  check_bool "miss on empty" true (Lru.find c "a" = None);
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check_bool "hit a" true (Lru.find c "a" = Some 1);
  (* "b" is now least-recent; adding "c" evicts it *)
  Lru.add c "c" 3;
  check_bool "b evicted" true (Lru.find c "b" = None);
  check_bool "a kept" true (Lru.find c "a" = Some 1);
  check_bool "c kept" true (Lru.find c "c" = Some 3);
  check_int "length" 2 (Lru.length c);
  check_int "hits" 3 (Lru.hits c);
  check_int "misses" 2 (Lru.misses c)

let test_lru_replace_and_resize () =
  let c = Lru.create ~cap:3 in
  Lru.add c 1 "one";
  Lru.add c 2 "two";
  Lru.add c 1 "uno";
  check_bool "replace keeps one binding" true (Lru.length c = 2);
  check_bool "replaced value" true (Lru.find c 1 = Some "uno");
  Lru.add c 3 "three";
  (* recency now: 3, 1, 2 — shrinking to 1 keeps only 3 *)
  Lru.set_capacity c 1;
  check_int "shrunk" 1 (Lru.length c);
  check_bool "most recent survives" true (Lru.mem c 3);
  Lru.set_capacity c 0;
  check_int "cap 0 empties" 0 (Lru.length c);
  Lru.add c 9 "nine";
  check_int "cap 0 stores nothing" 0 (Lru.length c)

let test_lru_clear () =
  let c = Lru.create ~cap:4 in
  Lru.add c 1 1;
  ignore (Lru.find c 1);
  Lru.clear c;
  check_int "cleared" 0 (Lru.length c);
  check_int "stats survive clear" 1 (Lru.hits c);
  Lru.reset_stats c;
  check_int "stats reset" 0 (Lru.hits c)

(* --- hash-consing --- *)

let test_intern_sharing () =
  (* Two separately parsed copies are structurally equal, hence share
     one canonical node after interning. *)
  let a = rx ab_pq "(q p)* q" in
  let b = rx ab_pq "(q p)* q" in
  check_bool "distinct parses" true (Regex.equal a b);
  check_bool "interned nodes are physically shared" true
    (Runtime.intern a == Runtime.intern b);
  check_bool "intern is structure-preserving" true
    (Regex.equal (Runtime.intern a) a)

(* --- cached pipeline transparency --- *)

let with_uncached f =
  Runtime.set_enabled false;
  Fun.protect ~finally:(fun () -> Runtime.set_enabled true) f

let test_cached_equals_direct () =
  let cases =
    [ "([^p])* <p> .*"; "q p <p> .*"; "p* <p> p*"; "(q p){3} <p> .*" ]
  in
  List.iter
    (fun s ->
      let e = ex s in
      let direct_amb = with_uncached (fun () -> Ambiguity.is_ambiguous e) in
      let direct_max = with_uncached (fun () -> Maximality.check e) in
      check_bool (s ^ ": ambiguity") direct_amb (Runtime.is_ambiguous e);
      check_bool (s ^ ": ambiguity (cache hit)") direct_amb
        (Runtime.is_ambiguous e);
      check_bool (s ^ ": maximality") true
        (direct_max = Runtime.check_maximality e))
    cases

let test_stats_move () =
  Runtime.reset ();
  let e = ex "(q p){2} <p> .*" in
  ignore (Runtime.is_ambiguous e);
  let s1 = Runtime.stats () in
  check_bool "first decision misses" true (s1.Runtime.Stats.decision.misses >= 1);
  ignore (Runtime.is_ambiguous e);
  let s2 = Runtime.stats () in
  check_bool "second decision hits" true
    (s2.Runtime.Stats.decision.hits > s1.Runtime.Stats.decision.hits);
  check_bool "pipeline compile counted" true
    (s2.Runtime.Stats.compile.misses > 0);
  Runtime.reset ();
  let s3 = Runtime.stats () in
  check_int "reset zeroes hits" 0 s3.Runtime.Stats.decision.hits;
  check_int "reset zeroes compile" 0 s3.Runtime.Stats.compile.misses

let test_cache_size_config () =
  let before = Runtime.cache_size () in
  Runtime.set_cache_size 17;
  check_int "configured" 17 (Runtime.cache_size ());
  Runtime.set_cache_size before;
  check_int "restored" before (Runtime.cache_size ())

(* --- batch executor --- *)

let test_chunk_bounds () =
  List.iter
    (fun (jobs, n) ->
      let bounds = Batch.chunk_bounds ~jobs n in
      let covered = ref 0 in
      Array.iteri
        (fun i (lo, hi) ->
          check_bool "ordered" true (lo <= hi);
          if i > 0 then
            check_int "contiguous" (snd bounds.(i - 1)) lo;
          covered := !covered + (hi - lo))
        bounds;
      check_int (Printf.sprintf "jobs=%d n=%d partitions" jobs n) n !covered;
      let sizes = Array.map (fun (lo, hi) -> hi - lo) bounds in
      let mn = Array.fold_left min max_int sizes in
      let mx = Array.fold_left max 0 sizes in
      check_bool "balanced" true (mx - mn <= 1))
    [ (1, 10); (3, 10); (4, 4); (4, 3); (7, 100) ]

let test_batch_map () =
  let xs = List.init 37 Fun.id in
  let f x = (x * x) - 1 in
  let expect = List.map f xs in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "jobs=%d" jobs)
        true
        (Batch.map ~jobs f xs = expect))
    [ 1; 2; 3; 8; 64 ];
  check_bool "empty list" true (Batch.map ~jobs:4 f [] = []);
  check_bool "default jobs" true (Batch.map f xs = expect)

let test_batch_exception () =
  match Batch.map ~jobs:3 (fun x -> if x = 5 then failwith "boom" else x)
          (List.init 9 Fun.id)
  with
  | exception Failure msg -> check_string "exception propagates" "boom" msg
  | _ -> Alcotest.fail "expected the worker's exception to re-raise"

(* --- wrapper batch --- *)

let test_extract_batch_matches_extract () =
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Wrapper.alphabet_for [ top; bottom ] in
  let pt = Option.get (Pagegen.target_path top) in
  let pb = Option.get (Pagegen.target_path bottom) in
  match Wrapper.learn ~alpha [ (top, pt); (bottom, pb) ] with
  | Error e -> Alcotest.failf "learn failed: %a" Wrapper.pp_learn_error e
  | Ok w ->
      let rng = Random.State.make [| 5 |] in
      let docs =
        top :: bottom :: List.init 30 (fun _ -> Perturb.perturb rng ~intensity:2 top)
      in
      let seq = List.map (Wrapper.extract w) docs in
      List.iter
        (fun jobs ->
          check_bool
            (Printf.sprintf "batch jobs=%d ≡ sequential extract" jobs)
            true
            (Wrapper.extract_batch ~jobs w docs = seq))
        [ 1; 2; 4 ]

let () =
  Alcotest.run "runtime"
    [
      ( "lru",
        [
          Alcotest.test_case "find/add/evict order" `Quick test_lru_basic;
          Alcotest.test_case "replace and resize" `Quick
            test_lru_replace_and_resize;
          Alcotest.test_case "clear and stats" `Quick test_lru_clear;
        ] );
      ( "hash-consing",
        [ Alcotest.test_case "physical sharing" `Quick test_intern_sharing ] );
      ( "cached-pipeline",
        [
          Alcotest.test_case "cached ≡ direct" `Quick test_cached_equals_direct;
          Alcotest.test_case "stats counters move" `Quick test_stats_move;
          Alcotest.test_case "cache-size config" `Quick test_cache_size_config;
        ] );
      ( "batch",
        [
          Alcotest.test_case "chunk bounds partition" `Quick test_chunk_bounds;
          Alcotest.test_case "map ≡ List.map" `Quick test_batch_map;
          Alcotest.test_case "exceptions re-raise" `Quick test_batch_exception;
          Alcotest.test_case "wrapper extract_batch" `Quick
            test_extract_batch_matches_extract;
        ] );
      ( "oracle",
        [
          (* the full differential suite, seeded like every other suite *)
          ( "runtime oracles",
            `Quick,
            fun () ->
              ignore
                (List.map
                   (fun t ->
                     QCheck.Test.check_exn
                       ~rand:(Random.State.make [| qcheck_seed |])
                       t)
                   (Oracle_runtime.tests ~count:40)) );
        ] );
    ]

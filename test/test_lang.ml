(* Tests for the Lang canonical-language layer: algebra laws, quotient
   identities from Lemma 6.3, rendering round-trips. *)

open Helpers

let p = Alphabet.find_exn ab_pq "p"

let l s = lang ab_pq s
let sigma_star = Lang.sigma_star ab_pq
let p_sigma_star = l "p (p | q)*"

let test_construction () =
  check_bool "empty is empty" true (Lang.is_empty (Lang.empty ab_pq));
  check_bool "ε ∈ epsilon" true (Lang.mem (Lang.epsilon ab_pq) [||]);
  check_bool "Σ* universal" true (Lang.is_universal sigma_star);
  check_bool "word self-membership" true
    (Lang.mem (Lang.word ab_pq (w ab_pq "pqp")) (w ab_pq "pqp"));
  check_bool "of_words" true
    (Lang.equal
       (Lang.of_words ab_pq [ w ab_pq "p"; w ab_pq "q" ])
       (l "p | q"))

let test_extended_compile () =
  check_lang ab_pq "difference" (l "q | q q") (l "(q | q q | p) - p");
  check_lang ab_pq "intersection" (l "p q") (l "(p q | q p) & (p q | p p)");
  check_lang ab_pq "complement of Σ*" (Lang.empty ab_pq) (l "~((p | q)*)");
  (* Double complement is identity. *)
  check_lang ab_pq "double complement" (l "(p q)* p") (l "~(~((p q)* p))")

let test_algebra_laws () =
  let a = l "(p q)*" and b = l "p* q" and c = l "q (p | q)" in
  check_lang ab_pq "union assoc"
    (Lang.union a (Lang.union b c))
    (Lang.union (Lang.union a b) c);
  check_lang ab_pq "inter distributes over union"
    (Lang.inter a (Lang.union b c))
    (Lang.union (Lang.inter a b) (Lang.inter a c));
  check_lang ab_pq "de morgan"
    (Lang.complement (Lang.union a b))
    (Lang.inter (Lang.complement a) (Lang.complement b));
  check_lang ab_pq "concat unit"
    (Lang.concat a (Lang.epsilon ab_pq))
    a;
  check_lang ab_pq "star of union idempotent-ish"
    (Lang.star (Lang.union a (Lang.star a)))
    (Lang.star a);
  check_lang ab_pq "reverse of reverse" a (Lang.reverse (Lang.reverse a));
  check_lang ab_pq "reverse of concat"
    (Lang.reverse (Lang.concat b c))
    (Lang.concat (Lang.reverse c) (Lang.reverse b))

(* Lemma 6.3: distribution laws of factoring over union and concatenation. *)
let test_lemma_6_3_distribution () =
  let e = l "(p q)* p" and e1 = l "p* q" and e2 = l "q q*" in
  (* (1)  (E1 + E2)/E = E1/E + E2/E *)
  check_lang ab_pq "6.3(1)"
    (Lang.suffix_quotient (Lang.union e1 e2) e)
    (Lang.union (Lang.suffix_quotient e1 e) (Lang.suffix_quotient e2 e));
  (* (2)  E\(E1 + E2) = E\E1 + E\E2 *)
  check_lang ab_pq "6.3(2)"
    (Lang.prefix_quotient e (Lang.union e1 e2))
    (Lang.union (Lang.prefix_quotient e e1) (Lang.prefix_quotient e e2));
  (* (3)  E/(E1 + E2) = E/E1 + E/E2 *)
  check_lang ab_pq "6.3(3)"
    (Lang.suffix_quotient e (Lang.union e1 e2))
    (Lang.union (Lang.suffix_quotient e e1) (Lang.suffix_quotient e e2))

(* Lemma 6.3(5):  (E1·E2)/(p·Σ* ) = E1/(p·Σ* ) + E1·(E2/(p·Σ* )) *)
let test_lemma_6_3_5 () =
  let e1 = l "(q p)* q" and e2 = l "q* p q*" in
  let psig = Lang.concat (Lang.sym ab_pq p) sigma_star in
  check_lang ab_pq "6.3(5)"
    (Lang.suffix_quotient (Lang.concat e1 e2) psig)
    (Lang.union
       (Lang.suffix_quotient e1 psig)
       (Lang.concat e1 (Lang.suffix_quotient e2 psig)))

(* Lemma 6.4(2): E/(p·Σ* ) ∩ E = ∅ ⇔ (E·p)\E = ∅ *)
let test_lemma_6_4_2 () =
  let check_iff name e =
    let psig = Lang.concat (Lang.sym ab_pq p) sigma_star in
    let lhs = Lang.is_empty (Lang.inter (Lang.suffix_quotient e psig) e) in
    let rhs =
      Lang.is_empty
        (Lang.prefix_quotient (Lang.concat e (Lang.sym ab_pq p)) e)
    in
    check_bool name true (lhs = rhs)
  in
  List.iter
    (fun s -> check_iff ("6.4(2) on " ^ s) (l s))
    [ "(q p)*"; "q p"; "p*"; "(p | q)*"; "q* p"; "q*" ]

let test_quotient_examples () =
  (* qp / (p·Σ* ) = {q} — the F of Example 4.7. *)
  let f = Lang.suffix_quotient (l "q p") p_sigma_star in
  check_lang ab_pq "qp/(pΣ* ) = q" (l "q") f;
  (* Σ* / anything-nonempty = Σ*. *)
  check_lang ab_pq "Σ*/x" sigma_star (Lang.suffix_quotient sigma_star (l "p"));
  (* x \ Σ* = Σ* when x nonempty. *)
  check_lang ab_pq "x\\Σ*" sigma_star (Lang.prefix_quotient (l "q") sigma_star);
  (* Quotient by the empty language is empty. *)
  check_bool "E/∅ = ∅" true
    (Lang.is_empty (Lang.suffix_quotient (l "(p | q)*") (Lang.empty ab_pq)));
  check_bool "∅\\E = ∅" true
    (Lang.is_empty (Lang.prefix_quotient (Lang.empty ab_pq) (l "(p | q)*")))

let test_counting () =
  let s2 = Lang.filter_count sigma_star ~sym:p 2 in
  check_bool "qpqp ∈ Σ*‖_p²" true (Lang.mem s2 (w ab_pq "qpqp"));
  check_bool "qp ∉" false (Lang.mem s2 (w ab_pq "qp"));
  check_bool "max count of (qp){2}" true
    (Lang.max_sym_count (l "(q p){2}") ~sym:p = `Bounded 2);
  (* Lemma 6.4(4): if E‖_p^n = ∅ then E‖_p^m = ∅ for all m > n. *)
  let e = l "(q p){2} | q q" in
  let empties =
    List.map (fun n -> Lang.is_empty (Lang.filter_count e ~sym:p n)) [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check (list bool)) "6.4(4) profile"
    [ false; true; false; true; true ]
    empties

let test_words_upto () =
  let words = Lang.words_upto (l "p q | q") 2 in
  let strs = List.map (Word.to_string ab_pq) words in
  Alcotest.(check (list string)) "enumeration" [ "q"; "pq" ] strs

(* Degenerate languages: ∅, {ε}, Σ*.  These hit every early-exit path
   in the enumeration/sampling code (no live states, final initial
   state, all states final). *)

let test_edge_empty () =
  let empty = Lang.empty ab_pq in
  let rng = Random.State.make [| 1 |] in
  check_bool "sample ∅ = None" true (Lang.sample empty rng ~max_len:5 = None);
  check_int "words_upto ∅" 0 (List.length (Lang.words_upto empty 3));
  check_bool "shortest ∅ = None" true (Lang.shortest empty = None);
  (* the complement of ∅ contains ε, the shortest word of all *)
  check_bool "shortest_not_in ∅ = ε" true (Lang.shortest_not_in empty = Some [||])

let test_edge_epsilon () =
  let eps = Lang.epsilon ab_pq in
  let rng = Random.State.make [| 1 |] in
  check_bool "sample {ε} = ε" true (Lang.sample eps rng ~max_len:5 = Some [||]);
  (* max_len 0 still admits ε itself *)
  check_bool "sample {ε} with budget 0" true
    (Lang.sample eps rng ~max_len:0 = Some [||]);
  check_bool "words_upto {ε} = [ε]" true (Lang.words_upto eps 3 = [ [||] ]);
  check_bool "shortest_not_in {ε} has length 1" true
    (match Lang.shortest_not_in eps with
    | Some w -> Array.length w = 1
    | None -> false)

let test_edge_universal () =
  let rng = Random.State.make [| 1 |] in
  (match Lang.sample sigma_star rng ~max_len:4 with
  | Some w -> check_bool "sample Σ* within budget" true (Array.length w <= 4)
  | None -> Alcotest.fail "sample Σ* returned None");
  (* 1 + 2 + 4 words of length ≤ 2 over a binary alphabet *)
  check_int "words_upto Σ* counts all words" 7
    (List.length (Lang.words_upto sigma_star 2));
  check_bool "shortest Σ* = ε" true (Lang.shortest sigma_star = Some [||]);
  check_bool "shortest_not_in Σ* = None" true
    (Lang.shortest_not_in sigma_star = None)

(* A nonempty language whose shortest word exceeds the budget: sample
   must return None rather than a too-long word (its documented
   contract — regression for the fallback path). *)
let test_edge_sample_budget () =
  let long = l "p p p p p p" in
  let rng = Random.State.make [| 1 |] in
  check_bool "sample respects max_len over shortest" true
    (Lang.sample long rng ~max_len:3 = None);
  check_bool "sample finds it with enough budget" true
    (Lang.sample long rng ~max_len:6 = Some (w ab_pq "pppppp"))

(* Lemma 6.3(7): E1 ⊆ E2/(p·Σ^* ) implies E1/(p·Σ^* ) ⊆ E2/(p·Σ^* ). *)
let prop_lemma_6_3_7 =
  qtest ~count:60 "lemma 6.3(7)" (arb_plain_regex ab_pq) (fun e2 ->
      let psig = Lang.concat (Lang.sym ab_pq p) sigma_star in
      let q2 = Lang.suffix_quotient (Lang.of_regex ab_pq e2) psig in
      (* choose E1 = E2/(p·Σ^* ) so the premise holds by construction *)
      Lang.subset (Lang.suffix_quotient q2 psig) q2)

(* Lemma 6.3(8): α ∈ (E·p·Σ^* )/(p·Σ^* ) iff α/(p·Σ^* ) ∩ E ≠ ∅ or
   α ∈ E + E/(p·Σ^* ).  For a single word α, α/(p·Σ^* ) is the set of
   prefixes cut just before an occurrence of p. *)
let prop_lemma_6_3_8 =
  qtest ~count:80 "lemma 6.3(8)"
    (QCheck.pair (arb_plain_regex ab_pq) (arb_word ab_pq 6))
    (fun (e, alpha_w) ->
      let el = Lang.of_regex ab_pq e in
      let psig = Lang.concat (Lang.sym ab_pq p) sigma_star in
      let lhs =
        Lang.mem
          (Lang.suffix_quotient
             (Lang.concat_list ab_pq [ el; Lang.sym ab_pq p; sigma_star ])
             psig)
          alpha_w
      in
      let prefixes_before_p =
        List.filter_map
          (fun i -> if alpha_w.(i) = p then Some (Word.sub alpha_w 0 i) else None)
          (List.init (Array.length alpha_w) Fun.id)
      in
      let rhs =
        List.exists (Lang.mem el) prefixes_before_p
        || Lang.mem el alpha_w
        || Lang.mem (Lang.suffix_quotient el psig) alpha_w
      in
      lhs = rhs)

let prop_roundtrip_to_regex =
  qtest ~count:80 "Lang → regex → Lang is the identity"
    (arb_ext_regex ab_pqr)
    (fun e ->
      let a = Lang.of_regex ab_pqr e in
      Lang.equal a (Lang.of_regex ab_pqr (Lang.to_regex a)))

let prop_lang_equal_iff_same_membership =
  qtest ~count:80 "equal languages agree with derivative membership"
    (QCheck.pair (arb_plain_regex ab_pq) (arb_word ab_pq 6))
    (fun (e, word) -> Lang.mem (Lang.of_regex ab_pq e) word = Regex.matches e word)

let prop_subset_antisymmetry =
  qtest ~count:80 "subset antisymmetry = equality"
    (QCheck.pair (arb_plain_regex ab_pq) (arb_plain_regex ab_pq))
    (fun (e1, e2) ->
      let a = Lang.of_regex ab_pq e1 and b = Lang.of_regex ab_pq e2 in
      Lang.subset a b && Lang.subset b a = Lang.equal a b
      || Lang.subset a b = false
      || Lang.subset b a = false
      || Lang.equal a b)

let prop_quotient_concat_inverse =
  qtest ~count:80 "(A·B)/B ⊇ A when B nonempty"
    (QCheck.pair (arb_plain_regex ab_pq) (arb_plain_regex ab_pq))
    (fun (e1, e2) ->
      let a = Lang.of_regex ab_pq e1 and b = Lang.of_regex ab_pq e2 in
      if Lang.is_empty b then true
      else Lang.subset a (Lang.suffix_quotient (Lang.concat a b) b))

let prop_prefix_quotient_concat_inverse =
  qtest ~count:80 "B\\(B·A) ⊇ A when B nonempty"
    (QCheck.pair (arb_plain_regex ab_pq) (arb_plain_regex ab_pq))
    (fun (e1, e2) ->
      let a = Lang.of_regex ab_pq e1 and b = Lang.of_regex ab_pq e2 in
      if Lang.is_empty b then true
      else Lang.subset a (Lang.prefix_quotient b (Lang.concat b a)))

let () =
  Alcotest.run "lang"
    [
      ( "construction",
        [
          Alcotest.test_case "basics" `Quick test_construction;
          Alcotest.test_case "extended operators" `Quick test_extended_compile;
        ] );
      ("algebra", [ Alcotest.test_case "laws" `Quick test_algebra_laws ]);
      ( "quotients",
        [
          Alcotest.test_case "lemma 6.3 (1-3)" `Quick test_lemma_6_3_distribution;
          Alcotest.test_case "lemma 6.3 (5)" `Quick test_lemma_6_3_5;
          prop_lemma_6_3_7;
          prop_lemma_6_3_8;
          Alcotest.test_case "lemma 6.4 (2)" `Quick test_lemma_6_4_2;
          Alcotest.test_case "worked examples" `Quick test_quotient_examples;
        ] );
      ( "counting",
        [
          Alcotest.test_case "filtering operator" `Quick test_counting;
          Alcotest.test_case "words_upto" `Quick test_words_upto;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty language" `Quick test_edge_empty;
          Alcotest.test_case "epsilon language" `Quick test_edge_epsilon;
          Alcotest.test_case "universal language" `Quick test_edge_universal;
          Alcotest.test_case "sample length budget" `Quick
            test_edge_sample_budget;
        ] );
      ( "properties",
        [
          prop_roundtrip_to_regex;
          prop_lang_equal_iff_same_membership;
          prop_subset_antisymmetry;
          prop_quotient_concat_inverse;
          prop_prefix_quotient_concat_inverse;
        ] );
    ]

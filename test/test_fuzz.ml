(* Failure injection: the parsers must be total — arbitrary byte soup,
   adversarial HTML shapes, and truncated DTDs may be rejected with
   errors but must never raise unexpected exceptions or hang.  Also the
   §8 expressiveness-limitation demonstration.

   The adversarial generators live in Oracle_soup (lib/oracle) so the
   CLI selftest and this suite share one definition. *)

open Helpers

(* --- totality under random/adversarial input --- *)

let prop_lexer_total =
  qtest ~count:500 "Html_lexer.tokenize never raises" Oracle_soup.arb_bytes
    (fun s -> match Html_lexer.tokenize s with _ -> true)

let prop_lexer_total_htmlish =
  qtest ~count:500 "tokenizer survives tag-soup" Oracle_soup.arb_htmlish
    (fun s -> match Html_lexer.tokenize s with _ -> true)

let prop_tree_total =
  qtest ~count:500 "Html_tree.parse never raises" Oracle_soup.arb_htmlish
    (fun s -> match Html_tree.parse s with _ -> true)

let prop_tree_serialize_total =
  qtest ~count:200 "parse ∘ serialize is total and stable"
    Oracle_soup.arb_htmlish
    (fun s ->
      let d1 = Html_tree.parse s in
      let d2 = Html_tree.parse (Html_tree.to_string d1) in
      let d3 = Html_tree.parse (Html_tree.to_string d2) in
      Html_tree.equal d2 d3)

let prop_dtd_parse_total =
  qtest ~count:500 "Dtd_parse rejects garbage without raising"
    Oracle_soup.arb_bytes
    (fun s -> match Dtd_parse.parse_result s with Ok _ | Error _ -> true)

let prop_dtd_parse_total_dtdish =
  qtest ~count:500 "Dtd_parse survives truncated declarations"
    Oracle_soup.arb_dtdish
    (fun s -> match Dtd_parse.parse_result s with Ok _ | Error _ -> true)

let prop_regex_parse_total =
  qtest ~count:500 "Regex_parse rejects garbage without raising"
    Oracle_soup.arb_bytes
    (fun s ->
      match Regex_parse.parse_result ab_pq s with Ok _ | Error _ -> true)

let prop_wrapper_io_total =
  qtest ~count:300 "Wrapper_io.of_string rejects garbage gracefully"
    Oracle_soup.arb_bytes
    (fun s -> match Wrapper_io.of_string s with Ok _ | Error _ -> true)

let prop_artifact_total =
  qtest ~count:500 "Artifact.of_bytes rejects byte soup gracefully"
    Oracle_soup.arb_bytes
    (fun s -> match Artifact.of_bytes s with Ok _ | Error _ -> true)

let prop_artifact_roundtrip =
  qtest ~count:150 "Artifact save∘load is the structural identity"
    (Oracle_gen.arb_extraction_case ())
    (fun e ->
      let a = Artifact.of_extraction e in
      match Artifact.of_bytes (Artifact.to_bytes a) with
      | Error _ -> false
      | Ok b -> Artifact.equal a b)

(* --- fused page front-end: total on any bytes, chunking-invariant ---

   The fused pass replicates the lexer+builder state machine byte for
   byte, so it inherits their totality obligation: arbitrary soup may
   answer structured errors (unknown symbol, no match) but must never
   raise or hang, wherever the chunk boundaries fall. *)

let front_fixture =
  lazy
    (let top = Pagegen.figure1_top () in
     let bottom = Pagegen.figure1_bottom () in
     let alpha = Wrapper.alphabet_for [ top; bottom ] in
     let pt = Option.get (Pagegen.target_path top) in
     let pb = Option.get (Pagegen.target_path bottom) in
     match Wrapper.learn ~alpha [ (top, pt); (bottom, pb) ] with
     | Ok w -> (Wrapper.compile w, Front.build alpha)
     | Error _ -> failwith "front_fixture: learning failed")

let prop_front_extract_total =
  qtest ~count:500 "fused extract rejects byte soup gracefully"
    Oracle_soup.arb_bytes
    (fun s ->
      let c, _ = Lazy.force front_fixture in
      match Wrapper.extract_raw c s with Ok _ | Error _ -> true)

let prop_front_extract_total_htmlish =
  qtest ~count:500 "fused extract survives tag-soup" Oracle_soup.arb_htmlish
    (fun s ->
      let c, _ = Lazy.force front_fixture in
      match Wrapper.extract_raw c s with Ok _ | Error _ -> true)

let prop_front_word_total =
  qtest ~count:500 "Front.word raises only Unknown_symbol"
    Oracle_soup.arb_bytes
    (fun s ->
      let _, tbl = Lazy.force front_fixture in
      match Front.word tbl s with
      | _ -> true
      | exception Tag_seq.Unknown_symbol _ -> true)

let prop_front_stream_chunks =
  qtest ~count:300 "fused stream: chunk boundaries never change the answer"
    (QCheck.pair Oracle_soup.arb_htmlish QCheck.small_nat)
    (fun (s, k) ->
      let _, tbl = Lazy.force front_fixture in
      let oneshot =
        match Front.word tbl s with
        | w -> Ok (Array.to_list w)
        | exception Tag_seq.Unknown_symbol t -> Error t
      in
      let cut = k mod (String.length s + 1) in
      let acc = ref [] in
      let emit a = acc := a :: !acc in
      let st = Front.stream_make tbl in
      let chunked =
        match Front.stream_feed st (String.sub s 0 cut) ~emit with
        | Error t -> Error t
        | Ok () -> (
            match
              Front.stream_feed st
                (String.sub s cut (String.length s - cut))
                ~emit
            with
            | Error t -> Error t
            | Ok () -> (
                match Front.stream_finish st ~emit with
                | Error t -> Error t
                | Ok () -> Ok (List.rev !acc)))
      in
      match (oneshot, chunked) with
      | Ok w, Ok w' -> w = w'
      | Error a, Error b -> a = b
      | _ -> false)

let prop_frame_decode_total =
  qtest ~count:500 "Frame.decode rejects byte soup gracefully"
    Oracle_soup.arb_bytes
    (fun s -> match Frame.decode s with Ok _ | Error _ -> true)

(* Same discipline as the artifact loader: every truncation of a valid
   frame is a structured rejection — a client dying mid-line can never
   kill the daemon. *)
let test_frame_decode_truncations () =
  let valid = {|{"op":"tokens","id":12,"syms":["p","q","p"]}|} in
  (match Frame.decode valid with
  | Ok (Frame.Tokens { id = 12; syms = [ "p"; "q"; "p" ] }) -> ()
  | Ok _ -> Alcotest.fail "decoded to the wrong frame"
  | Error e -> Alcotest.failf "valid frame rejected: %s" e);
  for k = 0 to String.length valid - 1 do
    match Frame.decode (String.sub valid 0 k) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation at %d byte(s) decoded" k
  done;
  (* the size cap is a structured rejection too, checked before parse *)
  match Frame.decode ~max_bytes:8 valid with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized frame accepted"

(* Deep nesting must not blow the stack at realistic depths. *)
let test_deep_nesting () =
  let depth = 20_000 in
  let buf = Buffer.create (depth * 10) in
  for _ = 1 to depth do
    Buffer.add_string buf "<div>"
  done;
  Buffer.add_string buf "x";
  (* unclosed on purpose: builder must auto-close *)
  let doc = Html_tree.parse (Buffer.contents buf) in
  Alcotest.(check bool) "parsed" true (Html_tree.count_nodes doc > 0)

let test_pathological_attributes () =
  let page =
    "<input " ^ String.concat " " (List.init 500 (fun i -> Printf.sprintf "a%d=\"%d\"" i i)) ^ ">"
  in
  match Html_lexer.tokenize page with
  | [ Html_token.Start_tag { attrs; _ } ] ->
      Alcotest.(check int) "all attributes kept" 500 (List.length attrs)
  | _ -> Alcotest.fail "expected one start tag"

(* --- §8 limitation: middle-row extraction is not regular --- *)

let test_section8_middle_row_limitation () =
  (* Training sets TR^n ⟨TR⟩ TR^n for growing n.  Any regular wrapper
     that generalizes the samples must eventually mis-extract: the true
     concept TR^n ⟨TR⟩ TR^n is context-free.  We show the concrete
     failure: merging the first k samples yields an expression that
     either fails to parse or extracts the wrong row of a larger
     table — the paper's §8 honesty point. *)
  let alpha = Alphabet.make [ "TR" ] in
  let tr = Alphabet.find_exn alpha "TR" in
  let sample n =
    Merge.sample (Word.of_list (List.init ((2 * n) + 1) (fun _ -> tr))) n
  in
  match Merge.merge ~generalize_suffix:false alpha [ sample 1; sample 2 ] with
  | Error e -> Alcotest.failf "merge: %a" Merge.pp_error e
  | Ok e ->
      (* the merged expression handles the training sizes … *)
      List.iter
        (fun n ->
          let s = sample n in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d trained ok" n)
            true
            (List.mem s.Merge.mark_pos (Extraction.splits e s.Merge.word)))
        [ 1; 2 ];
      (* … but on a larger table it cannot pick out exactly the middle *)
      let big = sample 10 in
      let verdict = Extraction.extract e big.Merge.word in
      Alcotest.(check bool)
        "middle row of a larger table is missed or ambiguous" true
        (match verdict with
        | `Unique i -> i <> big.Merge.mark_pos
        | `Ambiguous _ | `No_match -> true)

let () =
  Alcotest.run "fuzz"
    [
      ( "totality",
        [
          prop_lexer_total;
          prop_lexer_total_htmlish;
          prop_tree_total;
          prop_tree_serialize_total;
          prop_dtd_parse_total;
          prop_dtd_parse_total_dtdish;
          prop_regex_parse_total;
          prop_wrapper_io_total;
          prop_artifact_total;
          prop_artifact_roundtrip;
          prop_front_extract_total;
          prop_front_extract_total_htmlish;
          prop_front_word_total;
          prop_front_stream_chunks;
          prop_frame_decode_total;
          Alcotest.test_case "Frame.decode truncation prefixes" `Quick
            test_frame_decode_truncations;
        ] );
      ( "pathological-inputs",
        [
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "many attributes" `Quick
            test_pathological_attributes;
        ] );
      ( "expressiveness-limits",
        [
          Alcotest.test_case "§8 middle-row concept is not regular" `Quick
            test_section8_middle_row_limitation;
        ] );
    ]

(* Tests for the persistent work-stealing domain pool (lib/runtime/pool)
   and its Batch clients: seeding, stealing under skew, stats
   accounting, worker persistence across batches, nesting degradation,
   the matcher scratch path inside pool workers, and the granularity
   layer (the pure Cost planner and estimator, plus the chunk and
   sequential-fallback accounting). *)

open Helpers

(* --- Pool.run primitive --- *)

let test_pool_covers_every_index () =
  List.iter
    (fun (participants, n) ->
      let hits = Array.make n 0 in
      Pool.run ~participants n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i c ->
          check_int
            (Printf.sprintf "participants=%d n=%d index %d run once"
               participants n i)
            1 c)
        hits)
    [ (1, 10); (2, 10); (4, 37); (8, 3); (3, 0); (16, 100) ]

let test_pool_skewed_items () =
  (* Cost proportional to the index puts most work in the last seeded
     range; the result must still be exactly the sequential one. *)
  let n = 64 in
  let out = Array.make n 0 in
  let cost i =
    let acc = ref 0 in
    for k = 0 to i * 200 do
      acc := !acc + (k land 15)
    done;
    !acc
  in
  let expect = Array.init n cost in
  Pool.run ~participants:4 n (fun i -> out.(i) <- cost i);
  check_bool "skewed results ≡ sequential" true (out = expect)

let test_pool_stats_accounting () =
  let s0 = Pool.stats () in
  Pool.run ~participants:4 25 (fun _ -> ());
  let s1 = Pool.stats () in
  check_int "items counted" (s0.Pool.items + 25) s1.Pool.items;
  check_int "one batch counted" (s0.Pool.batches + 1) s1.Pool.batches;
  (* participants=1 runs inline and never touches the pool *)
  Pool.run ~participants:1 25 (fun _ -> ());
  let s2 = Pool.stats () in
  check_int "sequential path bypasses the pool" s1.Pool.batches s2.Pool.batches

let test_pool_workers_persist () =
  (* Items 1 forces the pooled path: trivial items under Auto plan
     below break-even and would run on the submitter without spawning
     any worker at all. *)
  Pool.run ~chunk:(Pool.Items 1) ~participants:4 8 (fun _ -> ());
  let w1 = Pool.size () in
  for _ = 1 to 20 do
    Pool.run ~chunk:(Pool.Items 1) ~participants:4 8 (fun _ -> ())
  done;
  check_int "no respawn across batches" w1 (Pool.size ());
  check_bool "workers exist after a parallel batch" true (w1 >= 1)

let test_pool_nested_run_degrades () =
  (* A run_item that itself calls Pool.run must not deadlock: the inner
     call detects the worker context (or the held submit lock) and runs
     sequentially. *)
  let inner_total = Atomic.make 0 in
  Pool.run ~participants:4 6 (fun _ ->
      Pool.run ~participants:4 5 (fun _ -> Atomic.incr inner_total));
  check_int "nested items all ran" 30 (Atomic.get inner_total)

(* --- the chunk planner as a pure function --- *)

let check_plan name expect ~target costs =
  check_bool name true (Cost.plan ~target costs = expect)

let test_plan_fixed_cases () =
  check_plan "uniform 1s, target 10: one full unit plus the remainder"
    [| (0, 10); (10, 12) |]
    ~target:10 (Array.make 12 1);
  check_plan "giant mid-vector flushes its prefix and stays singleton"
    [| (0, 2); (2, 3); (3, 7) |]
    ~target:10
    [| 3; 3; 50; 3; 3; 3; 3 |];
  check_plan "empty input plans no units" [||] ~target:10 [||];
  check_plan "target 1 over positive costs: every item singleton"
    [| (0, 1); (1, 2); (2, 3) |]
    ~target:1 [| 1; 1; 1 |];
  check_plan "zero-cost run groups into one trailing unit"
    [| (0, 5) |]
    ~target:10
    [| 0; 0; 0; 0; 0 |];
  check_plan "negative target floors to 1"
    [| (0, 1); (1, 2) |]
    ~target:(-3) [| 1; 1 |]

let test_plan_properties () =
  (* QCHECK_SEED-reproducible: partition, order, giant isolation,
     determinism — same properties the sched oracle checks, run here
     against a wider cost range. *)
  let arb = QCheck.(pair (int_range 1 100) (array (int_range 0 400))) in
  QCheck.Test.check_exn
    ~rand:(Random.State.make [| qcheck_seed |])
    (QCheck.Test.make ~count:200 ~name:"plan partitions 0..n in order" arb
       (fun (target, costs) ->
         let plan = Cost.plan ~target costs in
         let next = ref 0 and ok = ref true in
         Array.iter
           (fun (lo, hi) ->
             if lo <> !next || hi <= lo then ok := false;
             next := hi)
           plan;
         !ok
         && !next = Array.length costs
         && plan = Cost.plan ~target costs
         && Array.for_all
              (fun (lo, hi) ->
                hi - lo = 1
                || Seq.for_all
                     (fun i -> costs.(i) < target)
                     (Seq.init (hi - lo) (fun k -> lo + k)))
              plan))

(* --- the estimator's cold-start edges --- *)

let test_estimator_empty_histogram () =
  let h = Obs.Histogram.make () in
  let s = Obs.Histogram.snapshot h in
  check_int "mean of an empty histogram is 0 (no division)" 0
    (Obs.Histogram.mean_ns s);
  check_bool "of_histogram on empty is None" true (Cost.of_histogram s = None)

let test_estimator_single_bucket () =
  let h = Obs.Histogram.make () in
  Obs.Histogram.observe h 5_000;
  check_bool "single observation reads back exactly" true
    (Cost.of_histogram (Obs.Histogram.snapshot h) = Some 5_000);
  let tiny = Obs.Histogram.make () in
  Obs.Histogram.observe tiny 10;
  check_bool "sub-floor mean clamps up to min_item_ns" true
    (Cost.of_histogram (Obs.Histogram.snapshot tiny)
    = Some Cost.min_item_ns)

let test_estimator_saturated_histogram () =
  let h = Obs.Histogram.make () in
  for _ = 1 to 3 do
    Obs.Histogram.observe h max_int
  done;
  (* total_ns has wrapped; the estimate must still come back clamped
     into bounds, not raise or go negative *)
  match Cost.of_histogram (Obs.Histogram.snapshot h) with
  | None -> Alcotest.fail "saturated histogram lost its count"
  | Some v ->
      check_bool "saturated estimate stays within bounds" true
        (v >= Cost.min_item_ns && v <= Cost.max_item_ns)

let test_estimator_cold_default () =
  Cost.reset ();
  check_int "cold estimate is the documented default" Cost.cold_default_ns
    (Cost.estimate_ns ());
  (* a cold 100-item uniform batch must not plan one-item chunks *)
  let costs = Array.make 100 (Cost.estimate_ns ()) in
  let plan = Cost.plan ~target:(Cost.target_ns ()) costs in
  check_bool "cold uniform plan groups items" true
    (Array.length plan < 100
    && Array.for_all (fun (lo, hi) -> hi - lo >= 2) plan)

let test_estimator_warms_from_observations () =
  Cost.reset ();
  Cost.observe ~items:10 ~total_ns:2_000_000;
  let e = Cost.estimate_ns () in
  check_bool "estimate follows the observed 200µs per item" true
    (e >= 100_000 && e <= 400_000);
  Cost.observe ~items:0 ~total_ns:123;
  check_int "items=0 observations are ignored" e (Cost.estimate_ns ());
  Cost.reset ();
  check_int "reset returns to cold" Cost.cold_default_ns (Cost.estimate_ns ())

let test_scale_weights () =
  check_bool "all-zero weights fall back to uniform" true
    (Cost.scale_weights ~estimate:7 [| 0; 0; 0 |] = [| 7; 7; 7 |]);
  check_bool "empty weights scale to empty" true
    (Cost.scale_weights ~estimate:7 [||] = [||]);
  let scaled = Cost.scale_weights ~estimate:100 [| 1; 2; 3 |] in
  check_bool "mean of scaled weights tracks the estimate" true
    (Array.fold_left ( + ) 0 scaled / 3 = 100)

(* --- granularity accounting --- *)

let test_chunk_counter_advances () =
  let s0 = Pool.stats () in
  Pool.run ~chunk:(Pool.Items 2) ~participants:4 10 (fun _ -> ());
  let s1 = Pool.stats () in
  check_int "10 items in 2-item units execute 5 chunks" (s0.Pool.chunks + 5)
    s1.Pool.chunks;
  check_int "fixed chunking is not a fallback" s0.Pool.seq_fallbacks
    s1.Pool.seq_fallbacks

let test_seq_fallback_counted () =
  Cost.reset ();
  let s0 = Pool.stats () in
  Pool.run ~participants:4 4 (fun _ -> ());
  let s1 = Pool.stats () in
  check_int "sub-break-even batch is one fallback"
    (s0.Pool.seq_fallbacks + 1) s1.Pool.seq_fallbacks;
  check_int "fallback still counts the batch" (s0.Pool.batches + 1)
    s1.Pool.batches;
  check_int "fallback still counts the items" (s0.Pool.items + 4)
    s1.Pool.items;
  check_int "fallback executes no pooled chunks" s0.Pool.chunks s1.Pool.chunks

let test_bad_chunk_spec_rejected () =
  check_bool "Items 0 is an invalid argument" true
    (match Pool.run ~chunk:(Pool.Items 0) ~participants:4 8 (fun _ -> ()) with
    | () -> false
    | exception Invalid_argument _ -> true);
  check_bool "mismatched costs length is an invalid argument" true
    (match
       Pool.run ~costs:[| 1; 2 |] ~participants:4 8 (fun _ -> ())
     with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- Batch on top of the pool --- *)

let test_batch_skew_matches_sequential () =
  let xs = List.init 50 Fun.id in
  let f x =
    let acc = ref 0 in
    for k = 0 to (x * x * 7) land 4095 do
      acc := !acc + k
    done;
    (x, !acc)
  in
  let expect = List.map f xs in
  List.iter
    (fun jobs ->
      check_bool (Printf.sprintf "jobs=%d" jobs) true
        (Batch.map ~jobs f xs = expect))
    [ 1; 2; 3; 4; 8 ]

let test_batch_injected_faults_via_pool () =
  let xs = List.init 12 Fun.id in
  Guard_faults.arm Guard_faults.Batch_item ~at:[ 2; 7 ];
  Fun.protect ~finally:Guard_faults.disarm (fun () ->
      let got = Batch.map_isolated ~jobs:4 (fun x -> x * 10) xs in
      List.iteri
        (fun i cell ->
          if i = 2 || i = 7 then
            check_bool (Printf.sprintf "index %d poisoned" i) true
              (Result.is_error cell)
          else
            check_bool (Printf.sprintf "index %d clean" i) true
              (cell = Ok (i * 10)))
        got)

let test_batch_exception_order_under_pool () =
  (* Two failing items: the FIRST in input order must surface, for
     every job count, regardless of which domain hits which first. *)
  let xs = List.init 20 Fun.id in
  let f x = if x = 13 || x = 4 then failwith (string_of_int x) else x in
  List.iter
    (fun jobs ->
      match Batch.map ~jobs f xs with
      | _ -> Alcotest.fail "expected a raise"
      | exception Failure msg ->
          check_string (Printf.sprintf "jobs=%d first error" jobs) "4" msg)
    [ 1; 2; 4; 8 ]

(* --- matcher scratch inside workers --- *)

let test_scratch_matches_fresh_in_workers () =
  let e = Extraction.parse ab_pq "(q p)* <p> .*" in
  let m = Extraction.compile e in
  let rng = Random.State.make [| 42 |] in
  let words =
    List.init 40 (fun _ ->
        Array.init
          (Random.State.int rng 200)
          (fun _ -> Random.State.int rng 2))
  in
  let expect = List.map (Extraction.matcher_splits_fresh m) words in
  check_bool "scratch ≡ fresh sequentially" true
    (List.map (Extraction.matcher_splits m) words = expect);
  check_bool "scratch ≡ fresh under jobs=4" true
    (Batch.map ~jobs:4 (Extraction.matcher_splits m) words = expect)

let () =
  Alcotest.run "sched"
    [
      ( "pool",
        [
          Alcotest.test_case "every index runs once" `Quick
            test_pool_covers_every_index;
          Alcotest.test_case "skewed items" `Quick test_pool_skewed_items;
          Alcotest.test_case "stats accounting" `Quick
            test_pool_stats_accounting;
          Alcotest.test_case "workers persist" `Quick test_pool_workers_persist;
          Alcotest.test_case "nested run degrades" `Quick
            test_pool_nested_run_degrades;
        ] );
      ( "planner",
        [
          Alcotest.test_case "fixed plans" `Quick test_plan_fixed_cases;
          Alcotest.test_case "partition properties" `Quick
            test_plan_properties;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "empty histogram" `Quick
            test_estimator_empty_histogram;
          Alcotest.test_case "single bucket" `Quick
            test_estimator_single_bucket;
          Alcotest.test_case "saturated histogram" `Quick
            test_estimator_saturated_histogram;
          Alcotest.test_case "cold default" `Quick test_estimator_cold_default;
          Alcotest.test_case "warms from observations" `Quick
            test_estimator_warms_from_observations;
          Alcotest.test_case "weight scaling" `Quick test_scale_weights;
        ] );
      ( "granularity",
        [
          Alcotest.test_case "chunk counter" `Quick
            test_chunk_counter_advances;
          Alcotest.test_case "seq fallback counted" `Quick
            test_seq_fallback_counted;
          Alcotest.test_case "bad specs rejected" `Quick
            test_bad_chunk_spec_rejected;
        ] );
      ( "batch",
        [
          Alcotest.test_case "skew ≡ sequential" `Quick
            test_batch_skew_matches_sequential;
          Alcotest.test_case "injected faults via pool" `Quick
            test_batch_injected_faults_via_pool;
          Alcotest.test_case "first-error order" `Quick
            test_batch_exception_order_under_pool;
        ] );
      ( "matcher-scratch",
        [
          Alcotest.test_case "scratch ≡ fresh in workers" `Quick
            test_scratch_matches_fresh_in_workers;
        ] );
      ( "oracle",
        [
          ( "sched oracles",
            `Quick,
            fun () ->
              ignore
                (List.map
                   (fun t ->
                     QCheck.Test.check_exn
                       ~rand:(Random.State.make [| qcheck_seed |])
                       t)
                   (Oracle_sched.tests ~count:40)) );
        ] );
    ]

(* Tests for the persistent work-stealing domain pool (lib/runtime/pool)
   and its Batch clients: seeding, stealing under skew, stats
   accounting, worker persistence across batches, nesting degradation,
   and the matcher scratch path inside pool workers. *)

open Helpers

(* --- Pool.run primitive --- *)

let test_pool_covers_every_index () =
  List.iter
    (fun (participants, n) ->
      let hits = Array.make n 0 in
      Pool.run ~participants n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i c ->
          check_int
            (Printf.sprintf "participants=%d n=%d index %d run once"
               participants n i)
            1 c)
        hits)
    [ (1, 10); (2, 10); (4, 37); (8, 3); (3, 0); (16, 100) ]

let test_pool_skewed_items () =
  (* Cost proportional to the index puts most work in the last seeded
     range; the result must still be exactly the sequential one. *)
  let n = 64 in
  let out = Array.make n 0 in
  let cost i =
    let acc = ref 0 in
    for k = 0 to i * 200 do
      acc := !acc + (k land 15)
    done;
    !acc
  in
  let expect = Array.init n cost in
  Pool.run ~participants:4 n (fun i -> out.(i) <- cost i);
  check_bool "skewed results ≡ sequential" true (out = expect)

let test_pool_stats_accounting () =
  let s0 = Pool.stats () in
  Pool.run ~participants:4 25 (fun _ -> ());
  let s1 = Pool.stats () in
  check_int "items counted" (s0.Pool.items + 25) s1.Pool.items;
  check_int "one batch counted" (s0.Pool.batches + 1) s1.Pool.batches;
  (* participants=1 runs inline and never touches the pool *)
  Pool.run ~participants:1 25 (fun _ -> ());
  let s2 = Pool.stats () in
  check_int "sequential path bypasses the pool" s1.Pool.batches s2.Pool.batches

let test_pool_workers_persist () =
  Pool.run ~participants:4 8 (fun _ -> ());
  let w1 = Pool.size () in
  for _ = 1 to 20 do
    Pool.run ~participants:4 8 (fun _ -> ())
  done;
  check_int "no respawn across batches" w1 (Pool.size ());
  check_bool "workers exist after a parallel batch" true (w1 >= 1)

let test_pool_nested_run_degrades () =
  (* A run_item that itself calls Pool.run must not deadlock: the inner
     call detects the worker context (or the held submit lock) and runs
     sequentially. *)
  let inner_total = Atomic.make 0 in
  Pool.run ~participants:4 6 (fun _ ->
      Pool.run ~participants:4 5 (fun _ -> Atomic.incr inner_total));
  check_int "nested items all ran" 30 (Atomic.get inner_total)

(* --- Batch on top of the pool --- *)

let test_batch_skew_matches_sequential () =
  let xs = List.init 50 Fun.id in
  let f x =
    let acc = ref 0 in
    for k = 0 to (x * x * 7) land 4095 do
      acc := !acc + k
    done;
    (x, !acc)
  in
  let expect = List.map f xs in
  List.iter
    (fun jobs ->
      check_bool (Printf.sprintf "jobs=%d" jobs) true
        (Batch.map ~jobs f xs = expect))
    [ 1; 2; 3; 4; 8 ]

let test_batch_injected_faults_via_pool () =
  let xs = List.init 12 Fun.id in
  Guard_faults.arm Guard_faults.Batch_item ~at:[ 2; 7 ];
  Fun.protect ~finally:Guard_faults.disarm (fun () ->
      let got = Batch.map_isolated ~jobs:4 (fun x -> x * 10) xs in
      List.iteri
        (fun i cell ->
          if i = 2 || i = 7 then
            check_bool (Printf.sprintf "index %d poisoned" i) true
              (Result.is_error cell)
          else
            check_bool (Printf.sprintf "index %d clean" i) true
              (cell = Ok (i * 10)))
        got)

let test_batch_exception_order_under_pool () =
  (* Two failing items: the FIRST in input order must surface, for
     every job count, regardless of which domain hits which first. *)
  let xs = List.init 20 Fun.id in
  let f x = if x = 13 || x = 4 then failwith (string_of_int x) else x in
  List.iter
    (fun jobs ->
      match Batch.map ~jobs f xs with
      | _ -> Alcotest.fail "expected a raise"
      | exception Failure msg ->
          check_string (Printf.sprintf "jobs=%d first error" jobs) "4" msg)
    [ 1; 2; 4; 8 ]

(* --- matcher scratch inside workers --- *)

let test_scratch_matches_fresh_in_workers () =
  let e = Extraction.parse ab_pq "(q p)* <p> .*" in
  let m = Extraction.compile e in
  let rng = Random.State.make [| 42 |] in
  let words =
    List.init 40 (fun _ ->
        Array.init
          (Random.State.int rng 200)
          (fun _ -> Random.State.int rng 2))
  in
  let expect = List.map (Extraction.matcher_splits_fresh m) words in
  check_bool "scratch ≡ fresh sequentially" true
    (List.map (Extraction.matcher_splits m) words = expect);
  check_bool "scratch ≡ fresh under jobs=4" true
    (Batch.map ~jobs:4 (Extraction.matcher_splits m) words = expect)

let () =
  Alcotest.run "sched"
    [
      ( "pool",
        [
          Alcotest.test_case "every index runs once" `Quick
            test_pool_covers_every_index;
          Alcotest.test_case "skewed items" `Quick test_pool_skewed_items;
          Alcotest.test_case "stats accounting" `Quick
            test_pool_stats_accounting;
          Alcotest.test_case "workers persist" `Quick test_pool_workers_persist;
          Alcotest.test_case "nested run degrades" `Quick
            test_pool_nested_run_degrades;
        ] );
      ( "batch",
        [
          Alcotest.test_case "skew ≡ sequential" `Quick
            test_batch_skew_matches_sequential;
          Alcotest.test_case "injected faults via pool" `Quick
            test_batch_injected_faults_via_pool;
          Alcotest.test_case "first-error order" `Quick
            test_batch_exception_order_under_pool;
        ] );
      ( "matcher-scratch",
        [
          Alcotest.test_case "scratch ≡ fresh in workers" `Quick
            test_scratch_matches_fresh_in_workers;
        ] );
      ( "oracle",
        [
          ( "sched oracles",
            `Quick,
            fun () ->
              ignore
                (List.map
                   (fun t ->
                     QCheck.Test.check_exn
                       ~rand:(Random.State.make [| qcheck_seed |])
                       t)
                   (Oracle_sched.tests ~count:40)) );
        ] );
    ]

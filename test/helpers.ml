(* Shared test scaffolding: fixed alphabets, generators, oracles. *)

(* The paper's running alphabet: Σ = {p, q}, plus a third letter for
   cases that need it. *)
let ab_pq = Alphabet.make [ "p"; "q" ]
let ab_pqr = Alphabet.make [ "p"; "q"; "r" ]

(* HTML-ish alphabet used by the §3/§7 examples. *)
let ab_tags =
  Alphabet.make
    [
      "P"; "/P"; "H1"; "/H1"; "FORM"; "/FORM"; "INPUT"; "TABLE"; "/TABLE";
      "TR"; "/TR"; "TD"; "/TD"; "A"; "/A"; "IMG"; "BR"; "TH"; "/TH";
    ]

let w alpha s = Word.of_string alpha s
let rx alpha s = Regex_parse.parse alpha s
let lang alpha s = Lang.parse alpha s

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let lang_testable alpha =
  Alcotest.testable
    (fun ppf l -> Lang.pp ppf l)
    (fun a b -> ignore alpha; Lang.equal a b)

let check_lang alpha msg expected actual =
  Alcotest.check (lang_testable alpha) msg expected actual

(* Every QCheck suite draws from a PRNG seeded here, so a run is
   reproduced by exporting the seed baked into the failing test's
   name.  QCHECK_SEED overrides; otherwise a fixed default keeps CI
   and local runs identical. *)
let qcheck_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 0x5eed

(* Generators are shared with the selftest oracles (lib/oracle) so the
   two suites can never drift apart. *)
let gen_plain_regex alpha = Oracle_gen.gen_plain_regex alpha
let gen_ext_regex alpha = Oracle_gen.gen_ext_regex alpha
let arb_plain_regex = Oracle_gen.arb_plain_regex
let arb_ext_regex = Oracle_gen.arb_ext_regex
let gen_word = Oracle_gen.gen_word
let arb_word = Oracle_gen.arb_word

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| qcheck_seed |])
    (QCheck.Test.make ~count
       ~name:(Printf.sprintf "%s [QCHECK_SEED=%d]" name qcheck_seed)
       arb prop)

(* Lift a list of oracle tests (lib/oracle) into seeded alcotest cases. *)
let of_oracle ?(count = 60) tests =
  List.map
    (fun t ->
      let name, speed, run =
        QCheck_alcotest.to_alcotest
          ~rand:(Random.State.make [| qcheck_seed |])
          t
      in
      (Printf.sprintf "%s [QCHECK_SEED=%d]" name qcheck_seed, speed, run))
    (tests ~count)

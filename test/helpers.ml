(* Shared test scaffolding: fixed alphabets, generators, oracles. *)

(* The paper's running alphabet: Σ = {p, q}, plus a third letter for
   cases that need it. *)
let ab_pq = Alphabet.make [ "p"; "q" ]
let ab_pqr = Alphabet.make [ "p"; "q"; "r" ]

(* HTML-ish alphabet used by the §3/§7 examples. *)
let ab_tags =
  Alphabet.make
    [
      "P"; "/P"; "H1"; "/H1"; "FORM"; "/FORM"; "INPUT"; "TABLE"; "/TABLE";
      "TR"; "/TR"; "TD"; "/TD"; "A"; "/A"; "IMG"; "BR"; "TH"; "/TH";
    ]

let w alpha s = Word.of_string alpha s
let rx alpha s = Regex_parse.parse alpha s
let lang alpha s = Lang.parse alpha s

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let lang_testable alpha =
  Alcotest.testable
    (fun ppf l -> Lang.pp ppf l)
    (fun a b -> ignore alpha; Lang.equal a b)

let check_lang alpha msg expected actual =
  Alcotest.check (lang_testable alpha) msg expected actual

(* QCheck generator for plain regexes over a given alphabet. *)
let gen_plain_regex alpha : Regex.t QCheck.Gen.t =
  let open QCheck.Gen in
  let k = Alphabet.size alpha in
  let leaf =
    frequency
      [
        (6, map Regex.sym (int_bound (k - 1)));
        (1, return Regex.eps);
        (1, return Regex.empty);
        (1, return Regex.any);
      ]
  in
  fix
    (fun self n ->
      if n <= 1 then leaf
      else
        frequency
          [
            (3, leaf);
            (4, map2 Regex.alt (self (n / 2)) (self (n / 2)));
            (5, map2 Regex.cat (self (n / 2)) (self (n / 2)));
            (2, map Regex.star (self (n - 1)));
            (1, map Regex.opt (self (n - 1)));
          ])
    8

(* Extended regexes: adds intersection, difference, complement. *)
let gen_ext_regex alpha : Regex.t QCheck.Gen.t =
  let open QCheck.Gen in
  let plain = gen_plain_regex alpha in
  let* base = plain in
  let* rest = plain in
  frequency
    [
      (3, return base);
      (1, return (Regex.inter base rest));
      (1, return (Regex.diff base rest));
      (1, return (Regex.compl base));
    ]

let arb_plain_regex alpha =
  QCheck.make ~print:(Regex.to_string alpha) (gen_plain_regex alpha)

let arb_ext_regex alpha =
  QCheck.make ~print:(Regex.to_string alpha) (gen_ext_regex alpha)

let gen_word alpha max_len : Word.t QCheck.Gen.t =
  let open QCheck.Gen in
  let k = Alphabet.size alpha in
  let* n = int_bound max_len in
  map Array.of_list (list_size (return n) (int_bound (k - 1)))

let arb_word alpha max_len =
  QCheck.make ~print:(Word.to_string alpha) (gen_word alpha max_len)

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* Tests for the XML/DTD extension (§8 future work): DTD parsing,
   content-model validation via the automata engine, and DTD-guided
   extraction-expression synthesis. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let catalog_dtd_src =
  {|<!-- a product catalog -->
<!ELEMENT CATALOG (BANNER?, PRODUCT+)>
<!ELEMENT BANNER EMPTY>
<!ELEMENT PRODUCT (NAME, PRICE, NOTE*)>
<!ELEMENT NAME (#PCDATA)>
<!ELEMENT PRICE (#PCDATA)>
<!ELEMENT NOTE (#PCDATA | B)*>
<!ELEMENT B (#PCDATA)>
<!ATTLIST PRODUCT id CDATA #REQUIRED
                  status (new|used) #IMPLIED
                  kind CDATA #FIXED "good"
                  lang CDATA "en">|}

let catalog_dtd = Dtd_parse.parse catalog_dtd_src

(* --- parsing --- *)

let test_parse_declarations () =
  check_int "seven elements" 7 (List.length (Dtd.elements catalog_dtd));
  (match Dtd.find catalog_dtd "product" with
  | Some d -> (
      check_int "four attribute declarations" 4 (List.length d.Dtd.el_attrs);
      match d.Dtd.el_content with
      | Dtd.Children (Dtd.Seq [ Dtd.Name "NAME"; Dtd.Name "PRICE"; Dtd.Star (Dtd.Name "NOTE") ])
        ->
          ()
      | _ -> Alcotest.fail "PRODUCT content shape")
  | None -> Alcotest.fail "PRODUCT not found");
  (match Dtd.find catalog_dtd "BANNER" with
  | Some { Dtd.el_content = Dtd.Empty_content; _ } -> ()
  | _ -> Alcotest.fail "BANNER should be EMPTY");
  (match Dtd.find catalog_dtd "NOTE" with
  | Some { Dtd.el_content = Dtd.Mixed [ "B" ]; _ } -> ()
  | _ -> Alcotest.fail "NOTE should be mixed");
  match Dtd.find catalog_dtd "NAME" with
  | Some { Dtd.el_content = Dtd.Pcdata; _ } -> ()
  | _ -> Alcotest.fail "NAME should be #PCDATA"

let test_parse_doctype_wrapper () =
  let src =
    "<!DOCTYPE catalog [ <!ELEMENT catalog (item*)> <!ELEMENT item EMPTY> ]>"
  in
  let dtd = Dtd_parse.parse src in
  check_int "two elements" 2 (List.length (Dtd.elements dtd))

let test_parse_errors () =
  let bad s =
    match Dtd_parse.parse_result s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected failure: %s" s
  in
  bad "<!ELEMENT a (b>";
  bad "<!ELEMENT a (#WRONG)>";
  bad "<!WHAT x>";
  bad "<!ELEMENT a EMPTY> <!ELEMENT a EMPTY>"

let test_content_lang () =
  let alpha = Dtd.alphabet catalog_dtd in
  let word names = Word.of_names alpha names in
  (match Dtd.content_lang catalog_dtd "CATALOG" with
  | Some l ->
      check_bool "banner + products ok" true
        (Lang.mem l (word [ "BANNER"; "PRODUCT"; "PRODUCT" ]));
      check_bool "products only ok" true (Lang.mem l (word [ "PRODUCT" ]));
      check_bool "no products rejected" false (Lang.mem l (word [ "BANNER" ]));
      check_bool "two banners rejected" false
        (Lang.mem l (word [ "BANNER"; "BANNER"; "PRODUCT" ]))
  | None -> Alcotest.fail "CATALOG content_lang");
  match Dtd.content_lang catalog_dtd "BANNER" with
  | Some l ->
      check_bool "EMPTY means epsilon" true (Lang.mem l [||]);
      check_bool "EMPTY rejects children" false (Lang.mem l (word [ "B" ]))
  | None -> Alcotest.fail "BANNER content_lang"

(* --- validation --- *)

let valid_doc =
  Html_tree.parse
    {|<catalog><banner></banner>
      <product id="1"><name>x</name><price>9</price></product>
      <product id="2"><name>y</name><price>8</price><note>hi <b>new</b></note></product>
      </catalog>|}

let test_validate_ok () =
  Alcotest.(check (list string))
    "no violations" []
    (List.map
       (fun v -> Format.asprintf "%a" Dtd.pp_violation v)
       (Dtd.validate catalog_dtd valid_doc))

let test_validate_violations () =
  let check_violation name doc expected_substring =
    let contains msg re =
      let rec go i =
        i + String.length re <= String.length msg
        && (String.sub msg i (String.length re) = re || go (i + 1))
      in
      go 0
    in
    match Dtd.validate catalog_dtd (Html_tree.parse doc) with
    | [] -> Alcotest.failf "%s: expected a violation" name
    | vs ->
        let msgs = List.map (Format.asprintf "%a" Dtd.pp_violation) vs in
        check_bool
          (Printf.sprintf "%s mentions %S (got %s)" name expected_substring
             (String.concat "; " msgs))
          true
          (List.exists (fun m -> contains m expected_substring) msgs)
  in
  check_violation "missing product" "<catalog><banner></banner></catalog>"
    "violates content model";
  check_violation "wrong order"
    {|<catalog><product id="1"><price>9</price><name>x</name></product></catalog>|}
    "violates content model";
  check_violation "undeclared element" "<catalog><widget></widget></catalog>"
    "not declared";
  check_violation "missing required attr"
    "<catalog><product><name>x</name><price>9</price></product></catalog>"
    "#REQUIRED";
  check_violation "banner with content"
    {|<catalog><banner><b>x</b></banner><product id="1"><name>x</name><price>9</price></product></catalog>|}
    "EMPTY";
  check_violation "fixed attribute"
    {|<catalog><product id="1" kind="bad"><name>x</name><price>9</price></product></catalog>|}
    "fixed"

let test_is_valid () =
  check_bool "valid doc" true (Dtd.is_valid catalog_dtd valid_doc);
  check_bool "invalid doc" false
    (Dtd.is_valid catalog_dtd (Html_tree.parse "<catalog></catalog>"))

(* --- DTD-guided extraction --- *)

let test_child_expression () =
  (* the PRICE child of a PRODUCT (first and only) *)
  match Dtd_guide.child_expression catalog_dtd ~parent:"PRODUCT" ~target:"PRICE" ~nth:0 with
  | Error e -> Alcotest.failf "child_expression: %a" Dtd_guide.pp_error e
  | Ok e ->
      check_bool "unambiguous by construction" true (Ambiguity.is_unambiguous e);
      let alpha = Dtd.alphabet catalog_dtd in
      let word = Word.of_names alpha [ "NAME"; "PRICE"; "NOTE"; "NOTE" ] in
      (match Extraction.extract e word with
      | `Unique 1 -> ()
      | _ -> Alcotest.fail "should extract the PRICE position")

let test_child_expression_nth () =
  (* second PRODUCT of the CATALOG *)
  match Dtd_guide.child_expression catalog_dtd ~parent:"CATALOG" ~target:"PRODUCT" ~nth:1 with
  | Error e -> Alcotest.failf "nth: %a" Dtd_guide.pp_error e
  | Ok e -> (
      let alpha = Dtd.alphabet catalog_dtd in
      let word names = Word.of_names alpha names in
      (match Extraction.extract e (word [ "BANNER"; "PRODUCT"; "PRODUCT"; "PRODUCT" ]) with
      | `Unique 2 -> ()
      | _ -> Alcotest.fail "2nd product with banner");
      (* resilient to the optional BANNER disappearing *)
      match Extraction.extract e (word [ "PRODUCT"; "PRODUCT" ]) with
      | `Unique 1 -> ()
      | _ -> Alcotest.fail "2nd product without banner")

let test_child_expression_errors () =
  (match Dtd_guide.child_expression catalog_dtd ~parent:"NOSUCH" ~target:"X" ~nth:0 with
  | Error (Dtd_guide.Undeclared_parent _) -> ()
  | _ -> Alcotest.fail "undeclared parent");
  (* BANNER never appears twice in CATALOG *)
  match Dtd_guide.child_expression catalog_dtd ~parent:"CATALOG" ~target:"BANNER" ~nth:1 with
  | Error (Dtd_guide.Target_not_in_content _) -> ()
  | _ -> Alcotest.fail "second banner impossible"

let test_resilient_child_expression () =
  match
    Dtd_guide.resilient_child_expression catalog_dtd ~parent:"PRODUCT"
      ~target:"PRICE" ~nth:0
  with
  | Error e -> Alcotest.failf "resilient: %a" Dtd_guide.pp_error e
  | Ok e ->
      check_bool "still unambiguous" true (Ambiguity.is_unambiguous e);
      check_bool "maximal after synthesis" true (Maximality.is_maximal e);
      (* now resilient even to child sequences the DTD does not allow *)
      let alpha = Dtd.alphabet catalog_dtd in
      let weird = Word.of_names alpha [ "NOTE"; "NAME"; "NAME"; "PRICE"; "B" ] in
      match Extraction.extract e weird with
      | `Unique 3 -> ()
      | _ -> Alcotest.fail "maximized expression should still find PRICE"

let test_extract_child () =
  match Dtd_guide.child_expression catalog_dtd ~parent:"PRODUCT" ~target:"PRICE" ~nth:0 with
  | Error _ -> Alcotest.fail "expression"
  | Ok e -> (
      (* product at path [0;1]: text children interleaved *)
      match Dtd_guide.extract_child catalog_dtd e valid_doc ~parent_path:[ 0; 1 ] with
      | Ok idx -> (
          match Html_tree.node_at valid_doc [ 0; 1; idx ] with
          | Some (Html_tree.Element { name = "PRICE"; _ }) -> ()
          | _ -> Alcotest.fail "index does not address the PRICE node")
      | Error msg -> Alcotest.failf "extract_child: %s" msg)

let test_dtd_print_parse_roundtrip () =
  let printed = Dtd.to_string catalog_dtd in
  let dtd2 = Dtd_parse.parse printed in
  Alcotest.(check int)
    "same number of declarations"
    (List.length (Dtd.elements catalog_dtd))
    (List.length (Dtd.elements dtd2));
  List.iter
    (fun d ->
      match Dtd.find dtd2 d.Dtd.el_name with
      | Some d2 ->
          check_bool (d.Dtd.el_name ^ " content roundtrips") true
            (d.Dtd.el_content = d2.Dtd.el_content);
          check_bool (d.Dtd.el_name ^ " attrs roundtrip") true
            (d.Dtd.el_attrs = d2.Dtd.el_attrs)
      | None -> Alcotest.failf "lost declaration %s" d.Dtd.el_name)
    (Dtd.elements catalog_dtd);
  (* content languages agree too *)
  check_bool "CATALOG language preserved" true
    (Lang.equal
       (Option.get (Dtd.content_lang catalog_dtd "CATALOG"))
       (Option.get (Dtd.content_lang dtd2 "CATALOG")))

let () =
  Alcotest.run "xml"
    [
      ( "dtd-parse",
        [
          Alcotest.test_case "declarations" `Quick test_parse_declarations;
          Alcotest.test_case "doctype wrapper" `Quick test_parse_doctype_wrapper;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "print/parse roundtrip" `Quick
            test_dtd_print_parse_roundtrip;
        ] );
      ( "content-models",
        [ Alcotest.test_case "content_lang" `Quick test_content_lang ] );
      ( "validation",
        [
          Alcotest.test_case "valid document" `Quick test_validate_ok;
          Alcotest.test_case "violations" `Quick test_validate_violations;
          Alcotest.test_case "is_valid" `Quick test_is_valid;
        ] );
      ( "dtd-guided-extraction",
        [
          Alcotest.test_case "child expression" `Quick test_child_expression;
          Alcotest.test_case "nth occurrence" `Quick test_child_expression_nth;
          Alcotest.test_case "errors" `Quick test_child_expression_errors;
          Alcotest.test_case "maximized" `Quick test_resilient_child_expression;
          Alcotest.test_case "tree-level extraction" `Quick test_extract_child;
        ] );
    ]

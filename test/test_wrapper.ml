(* Tests for the wrapper pipeline: page generation, perturbation models,
   end-to-end learning/extraction — including the full Figure 1 / §7
   integration scenario (experiment E1's assertions). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- page generation --- *)

let test_generate_has_target () =
  for seed = 0 to 19 do
    let rng = Random.State.make [| seed |] in
    let doc = Pagegen.generate rng (Pagegen.random_profile rng) in
    match Pagegen.target_path doc with
    | Some path -> (
        match Html_tree.node_at doc path with
        | Some (Html_tree.Element { name = "INPUT"; _ }) -> ()
        | _ -> Alcotest.fail "target is not an INPUT")
    | None -> Alcotest.fail "generated page lost its target"
  done

let test_generate_profile_shape () =
  let rng = Random.State.make [| 7 |] in
  let profile =
    {
      Pagegen.default_profile with
      Pagegen.trailing_forms = 2;
      Pagegen.product_rows = 3;
    }
  in
  let doc = Pagegen.generate rng profile in
  check_int "three forms" 3 (List.length (Html_tree.find_elements "FORM" doc));
  (* the target form is the first one *)
  let target = Option.get (Pagegen.target_path doc) in
  let forms = Html_tree.find_elements "FORM" doc in
  let first_form_path = fst (List.hd forms) in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && is_prefix a' b'
    | _ -> false
  in
  check_bool "target inside first form" true (is_prefix first_form_path target)

let test_standard_alphabet_covers_generator () =
  let alpha = Wrapper.alphabet_for [] in
  for seed = 0 to 9 do
    let rng = Random.State.make [| seed; 1 |] in
    let doc = Pagegen.generate rng (Pagegen.random_profile rng) in
    (* must not raise *)
    ignore (Tag_seq.of_doc alpha doc)
  done

(* --- perturbations --- *)

let test_perturb_preserves_target () =
  let alpha = Wrapper.alphabet_for [] in
  for seed = 0 to 19 do
    let rng = Random.State.make [| seed; 2 |] in
    let doc = Pagegen.generate rng (Pagegen.random_profile rng) in
    let doc' = Perturb.perturb rng ~intensity:5 doc in
    (match Pagegen.target_path doc' with
    | Some path -> (
        match Html_tree.node_at doc' path with
        | Some (Html_tree.Element { name = "INPUT"; _ }) -> ()
        | _ -> Alcotest.fail "perturbed target is not an INPUT")
    | None -> Alcotest.fail "perturbation lost the target");
    (* perturbed pages stay within the standard alphabet *)
    ignore (Tag_seq.of_doc alpha doc')
  done

(* The §3 perturbation invariant, checked per operation as a QCheck
   property: the data-target node survives every op, and no FORM/INPUT
   material is inserted or removed strictly before it in document
   order (which would legitimately change which node the learned
   concept denotes).  Document order over tree paths is lexicographic,
   so "before the target" is a plain list compare. *)

let form_input_before doc target =
  Html_tree.find_all
    (function
      | Html_tree.Element { name = "FORM" | "INPUT"; _ } -> true
      | _ -> false)
    doc
  |> List.filter (fun (p, _) -> compare p target < 0)
  |> List.length

let target_is_input doc path =
  match Html_tree.node_at doc path with
  | Some (Html_tree.Element { name = "INPUT"; _ }) -> true
  | _ -> false

let prop_each_op_preserves_invariant =
  Helpers.qtest ~count:100 "perturb: every op preserves mark and concept"
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 11 |] in
      let doc = Pagegen.generate rng (Pagegen.random_profile rng) in
      let target = Option.get (Pagegen.target_path doc) in
      let before = form_input_before doc target in
      List.for_all
        (fun op ->
          match Perturb.apply_op rng op doc with
          | None -> true (* inapplicable here: nothing to check *)
          | Some doc' -> (
              match Pagegen.target_path doc' with
              | None -> false
              | Some target' ->
                  target_is_input doc' target'
                  && form_input_before doc' target' = before))
        Perturb.all_ops)

let prop_chained_perturbation_preserves_invariant =
  Helpers.qtest ~count:100 "perturb: chained trace preserves the invariant"
    (QCheck.pair (QCheck.int_range 0 1_000_000) (QCheck.int_range 0 8))
    (fun (seed, intensity) ->
      let rng = Random.State.make [| seed; 12 |] in
      let doc = Pagegen.generate rng (Pagegen.random_profile rng) in
      let target = Option.get (Pagegen.target_path doc) in
      let before = form_input_before doc target in
      let doc', ops = Perturb.perturb_trace rng ~intensity doc in
      List.length ops <= intensity
      && List.for_all
           (fun op -> List.mem op Perturb.all_ops)
           ops
      &&
      match Pagegen.target_path doc' with
      | None -> false
      | Some target' ->
          target_is_input doc' target'
          && form_input_before doc' target' = before)

let test_perturb_preserves_concept () =
  (* Ground truth stability: the target remains the
     (inputs_before_target + 1)-th INPUT of the FIRST form. *)
  for seed = 0 to 19 do
    let rng = Random.State.make [| seed; 3 |] in
    let profile = Pagegen.random_profile rng in
    let doc = Pagegen.generate rng profile in
    let doc' = Perturb.perturb rng ~intensity:5 doc in
    let target = Option.get (Pagegen.target_path doc') in
    let forms = Html_tree.find_elements "FORM" doc' in
    let rec is_prefix a b =
      match (a, b) with
      | [], _ -> true
      | x :: a', y :: b' -> x = y && is_prefix a' b'
      | _ -> false
    in
    let first_form_path = fst (List.hd forms) in
    check_bool "target still in first form" true
      (is_prefix first_form_path target)
  done

let test_each_op_applies_somewhere () =
  let rng = Random.State.make [| 99 |] in
  let doc = Pagegen.generate rng Pagegen.default_profile in
  List.iter
    (fun op ->
      (* try a few RNG draws; every op should apply to the default page *)
      let rec attempt k =
        if k = 0 then
          Alcotest.failf "op %s never applied" (Perturb.op_name op)
        else
          match Perturb.apply_op rng op doc with
          | Some doc' ->
              check_bool
                (Perturb.op_name op ^ " preserves target")
                true
                (Pagegen.target_path doc' <> None)
          | None -> attempt (k - 1)
      in
      attempt 5)
    Perturb.all_ops

let test_figure1_rearrangement () =
  let top = Pagegen.figure1_top () in
  let re = Perturb.figure1_rearrangement top in
  (* shape: one TABLE with four rows, target inside the fourth *)
  match re with
  | [ Html_tree.Element { name = "TABLE"; children; _ } ] ->
      check_int "four rows" 4 (List.length children);
      check_bool "target survives" true (Pagegen.target_path re <> None)
  | _ -> Alcotest.fail "rearrangement shape"

(* --- end-to-end wrapper (Figure 1 / §7 integration) --- *)

let learn_figure1 () =
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Wrapper.alphabet_for [ top; bottom ] in
  let pt = Option.get (Pagegen.target_path top) in
  let pb = Option.get (Pagegen.target_path bottom) in
  match Wrapper.learn ~alpha [ (top, pt); (bottom, pb) ] with
  | Ok w -> (w, top, bottom, pt, pb)
  | Error e -> Alcotest.failf "learn: %a" Wrapper.pp_learn_error e

let test_figure1_learning () =
  let w, top, bottom, pt, pb = learn_figure1 () in
  (* §7: pivot maximization applies, with FORM and INPUT among pivots *)
  (match w.Wrapper.strategy with
  | Some (Synthesis.Pivoting d) ->
      let names =
        List.map (Alphabet.name w.Wrapper.alpha) d.Pivot.pivots
      in
      check_bool "FORM is a pivot" true (List.mem "FORM" names);
      check_bool "INPUT is a pivot" true (List.mem "INPUT" names)
  | Some s ->
      Alcotest.failf "expected pivoting, got %a"
        (Synthesis.pp_strategy w.Wrapper.alpha)
        s
  | None -> Alcotest.fail "no strategy");
  (* the result is maximal and unambiguous *)
  check_bool "unambiguous" true (Ambiguity.is_unambiguous w.Wrapper.expr);
  check_bool "maximal" true (Maximality.is_maximal w.Wrapper.expr);
  (* and extracts correctly on both training pages *)
  (match Wrapper.extract w top with
  | Ok path -> check_bool "top extraction" true (path = pt)
  | Error e -> Alcotest.failf "top: %a" Wrapper.pp_extract_error e);
  match Wrapper.extract w bottom with
  | Ok path -> check_bool "bottom extraction" true (path = pb)
  | Error e -> Alcotest.failf "bottom: %a" Wrapper.pp_extract_error e

let test_figure1_rearrangement_extraction () =
  (* The §3 scenario: train on the top page ALONE plus its §3 redesign,
     then extract from further perturbed variants. *)
  let w, top, _, _, _ = learn_figure1 () in
  let redesigned = Perturb.figure1_rearrangement top in
  let truth = Option.get (Pagegen.target_path redesigned) in
  match Wrapper.extract w redesigned with
  | Ok path -> check_bool "redesigned page" true (path = truth)
  | Error e -> Alcotest.failf "redesign: %a" Wrapper.pp_extract_error e

let test_figure1_resilience_to_perturbation () =
  let w, top, _, _, _ = learn_figure1 () in
  let rng = Random.State.make [| 2024 |] in
  let survived = ref 0 and total = 30 in
  for _ = 1 to total do
    let page = Perturb.perturb rng ~intensity:3 top in
    match (Pagegen.target_path page, Wrapper.extract w page) with
    | Some truth, Ok path when path = truth -> incr survived
    | _ -> ()
  done;
  (* maximized wrappers should survive the vast majority of §3 edits *)
  check_bool
    (Printf.sprintf "survival %d/%d ≥ 80%%" !survived total)
    true
    (!survived * 10 >= total * 8)

let test_unmaximized_is_brittle () =
  (* The same pipeline without maximization must be strictly less
     resilient — this is the paper's whole point. *)
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Wrapper.alphabet_for [ top; bottom ] in
  let pt = Option.get (Pagegen.target_path top) in
  let pb = Option.get (Pagegen.target_path bottom) in
  let w_max = Result.get_ok (Wrapper.learn ~alpha [ (top, pt); (bottom, pb) ]) in
  let w_raw =
    Result.get_ok
      (Wrapper.learn ~maximize:false ~alpha [ (top, pt); (bottom, pb) ])
  in
  let rng = Random.State.make [| 77 |] in
  let max_ok = ref 0 and raw_ok = ref 0 and total = 30 in
  for _ = 1 to total do
    let page = Perturb.perturb rng ~intensity:3 top in
    (match (Pagegen.target_path page, Wrapper.extract w_max page) with
    | Some truth, Ok path when path = truth -> incr max_ok
    | _ -> ());
    match (Pagegen.target_path page, Wrapper.extract w_raw page) with
    | Some truth, Ok path when path = truth -> incr raw_ok
    | _ -> ()
  done;
  check_bool
    (Printf.sprintf "maximized (%d) ≥ raw (%d)" !max_ok !raw_ok)
    true (!max_ok >= !raw_ok)

let test_extract_errors () =
  let w, _, _, _, _ = learn_figure1 () in
  (* a page with no FORM at all: no match *)
  let empty_page = Html_tree.parse "<p>nothing here</p>" in
  (match Wrapper.extract w empty_page with
  | Error Wrapper.No_match -> ()
  | Ok _ -> Alcotest.fail "must not extract from empty page"
  | Error e -> Alcotest.failf "unexpected: %a" Wrapper.pp_extract_error e);
  (* a page with an out-of-alphabet tag *)
  let weird = Html_tree.parse "<blink><form><input><input></form></blink>" in
  match Wrapper.extract w weird with
  | Error (Wrapper.Unknown_tag _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown tag must be reported"

(* --- abstraction-refined wrappers --- *)

let test_refined_wrapper_pipeline () =
  let abs = Abstraction.Tags_with_attrs [ ("INPUT", "type") ] in
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Wrapper.alphabet_for ~abs [ top; bottom ] in
  check_bool "refined symbol in alphabet" true
    (Alphabet.mem_name alpha "INPUT:type=text");
  let pt = Option.get (Pagegen.target_path top) in
  let pb = Option.get (Pagegen.target_path bottom) in
  match Wrapper.learn ~abs ~alpha [ (top, pt); (bottom, pb) ] with
  | Error e -> Alcotest.failf "refined learn: %a" Wrapper.pp_learn_error e
  | Ok w ->
      check_bool "extracts on top" true (Wrapper.extract w top = Ok pt);
      check_bool "extracts on bottom" true (Wrapper.extract w bottom = Ok pb);
      (* survives perturbation too *)
      let rng = Random.State.make [| 5 |] in
      let page = Perturb.perturb rng ~intensity:3 top in
      let truth = Option.get (Pagegen.target_path page) in
      check_bool "extracts on perturbed" true (Wrapper.extract w page = Ok truth)

(* --- wrapper persistence --- *)

let test_wrapper_io_roundtrip () =
  let w, top, bottom, pt, pb = learn_figure1 () in
  let s = Wrapper_io.to_string w in
  match Wrapper_io.of_string s with
  | Error e -> Alcotest.failf "of_string: %s" e
  | Ok w2 ->
      check_bool "same alphabet" true
        (Alphabet.equal w.Wrapper.alpha w2.Wrapper.alpha);
      check_bool "same expression (as languages)" true
        (Expr_order.equivalent w.Wrapper.expr w2.Wrapper.expr);
      check_bool "loaded wrapper extracts top" true
        (Wrapper.extract w2 top = Ok pt);
      check_bool "loaded wrapper extracts bottom" true
        (Wrapper.extract w2 bottom = Ok pb)

let test_wrapper_io_refined_roundtrip () =
  let abs = Abstraction.Tags_with_attrs [ ("INPUT", "type") ] in
  let top = Pagegen.figure1_top () in
  let pt = Option.get (Pagegen.target_path top) in
  match Wrapper.learn ~abs [ (top, pt) ] with
  | Error e -> Alcotest.failf "learn: %a" Wrapper.pp_learn_error e
  | Ok w -> (
      match Wrapper_io.of_string (Wrapper_io.to_string w) with
      | Error e -> Alcotest.failf "roundtrip: %s" e
      | Ok w2 ->
          check_bool "abstraction preserved" true (w2.Wrapper.abs = abs);
          check_bool "extracts" true (Wrapper.extract w2 top = Ok pt))

let test_wrapper_io_errors () =
  (match Wrapper_io.of_string "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (match Wrapper_io.of_string "rexdex-wrapper/1\nabstraction: tags\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fields accepted");
  match
    Wrapper_io.of_string
      "rexdex-wrapper/1\nabstraction: tags\nalphabet: p q\nexpression: z <p> .*\n"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown symbol accepted"

let test_wrapper_io_file () =
  let w, top, _, pt, _ = learn_figure1 () in
  let path = Filename.temp_file "rexdex" ".wrapper" in
  Wrapper_io.save w path;
  (match Wrapper_io.load path with
  | Ok w2 -> check_bool "file roundtrip extracts" true (Wrapper.extract w2 top = Ok pt)
  | Error e -> Alcotest.failf "load: %s" e);
  Sys.remove path;
  match Wrapper_io.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a removed file must fail"

(* The paper's §7 final expression, built verbatim:
   (Tags−FORM)*·FORM·(Tags−INPUT)*·INPUT·(Tags−INPUT)*·⟨INPUT⟩·Tags* *)
let test_paper_final_expression () =
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Wrapper.alphabet_for [ top; bottom ] in
  let paper_expr =
    Extraction.parse alpha
      "([^FORM])* FORM ([^INPUT])* INPUT ([^INPUT])* <INPUT> .*"
  in
  check_bool "§7 expression is unambiguous" true
    (Ambiguity.is_unambiguous paper_expr);
  check_bool "§7 expression is maximal" true
    (Maximality.is_maximal paper_expr);
  (* it extracts the right INPUT from both Figure 1 pages … *)
  let m = Extraction.compile paper_expr in
  let check_page name doc =
    let truth_path = Option.get (Pagegen.target_path doc) in
    match Tag_seq.mark_of_path alpha doc truth_path with
    | Some (word, pos) ->
        check_bool (name ^ " extraction") true
          (Extraction.matcher_extract m word = `Unique pos)
    | None -> Alcotest.fail "mark"
  in
  check_page "top" top;
  check_page "bottom" bottom;
  (* … and from the §3 rearrangement and random perturbations *)
  check_page "redesign" (Perturb.figure1_rearrangement top);
  let rng = Random.State.make [| 13 |] in
  for _ = 1 to 10 do
    check_page "perturbed" (Perturb.perturb rng ~intensity:3 top)
  done;
  (* our learned wrapper generalizes at least the paper's training set:
     both expressions parse both training sequences, and the learned one
     agrees with the paper expression on them *)
  let pt = Option.get (Pagegen.target_path top) in
  let pb = Option.get (Pagegen.target_path bottom) in
  match Wrapper.learn ~alpha [ (top, pt); (bottom, pb) ] with
  | Error e -> Alcotest.failf "learn: %a" Wrapper.pp_learn_error e
  | Ok w ->
      List.iter
        (fun doc ->
          let word = Tag_seq.of_doc alpha doc in
          check_bool "agreement with paper expression on training pages" true
            (Extraction.matcher_extract m word
            = Extraction.matcher_extract (Extraction.compile w.Wrapper.expr) word))
        [ top; bottom ]

(* --- resilience harness --- *)

let test_resilience_harness_shape () =
  let rows =
    Resilience.evaluate ~seed:5 ~trials:8 ~intensities:[ 0; 2 ] ()
  in
  check_int "two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      let c = r.Resilience.counts in
      let eff = c.Resilience.trials - c.Resilience.learn_failures in
      check_bool "counts bounded" true
        (c.Resilience.maximized <= eff && c.Resilience.rigid <= eff
       && c.Resilience.merged <= eff && c.Resilience.lr <= eff))
    rows;
  (* intensity 0: everything that learned must extract on the unperturbed
     page; maximized should be perfect *)
  match rows with
  | r0 :: _ ->
      let c = r0.Resilience.counts in
      let eff = c.Resilience.trials - c.Resilience.learn_failures in
      check_bool "maximized perfect at intensity 0" true
        (c.Resilience.maximized = eff)
  | [] -> Alcotest.fail "no rows"

let test_resilience_ordering () =
  (* The headline claim: maximized ≥ merged ≥ rigid at moderate
     perturbation; maximized ≥ LR. *)
  let rows = Resilience.evaluate ~seed:11 ~trials:15 ~intensities:[ 3 ] () in
  match rows with
  | [ { Resilience.counts = c; _ } ] ->
      check_bool "maximized ≥ merged" true
        (c.Resilience.maximized >= c.Resilience.merged);
      check_bool "maximized ≥ rigid" true
        (c.Resilience.maximized >= c.Resilience.rigid);
      check_bool "maximized ≥ lr" true (c.Resilience.maximized >= c.Resilience.lr)
  | _ -> Alcotest.fail "one row expected"

let () =
  Alcotest.run "wrapper"
    [
      ( "pagegen",
        [
          Alcotest.test_case "target present" `Quick test_generate_has_target;
          Alcotest.test_case "profile shape" `Quick test_generate_profile_shape;
          Alcotest.test_case "alphabet covers generator" `Quick
            test_standard_alphabet_covers_generator;
        ] );
      ( "perturb",
        [
          Alcotest.test_case "target survives" `Quick
            test_perturb_preserves_target;
          Alcotest.test_case "concept stable" `Quick
            test_perturb_preserves_concept;
          Alcotest.test_case "all ops applicable" `Quick
            test_each_op_applies_somewhere;
          Alcotest.test_case "figure 1 rearrangement" `Quick
            test_figure1_rearrangement;
          prop_each_op_preserves_invariant;
          prop_chained_perturbation_preserves_invariant;
        ] );
      ( "figure1-pipeline",
        [
          Alcotest.test_case "learning finds §7 pivots" `Quick
            test_figure1_learning;
          Alcotest.test_case "extraction after redesign" `Quick
            test_figure1_rearrangement_extraction;
          Alcotest.test_case "resilience to perturbations" `Quick
            test_figure1_resilience_to_perturbation;
          Alcotest.test_case "maximized beats raw" `Quick
            test_unmaximized_is_brittle;
          Alcotest.test_case "error reporting" `Quick test_extract_errors;
          Alcotest.test_case "paper's §7 final expression" `Quick
            test_paper_final_expression;
        ] );
      ( "abstraction",
        [
          Alcotest.test_case "refined pipeline" `Quick
            test_refined_wrapper_pipeline;
        ] );
      ( "wrapper-io",
        [
          Alcotest.test_case "string roundtrip" `Quick
            test_wrapper_io_roundtrip;
          Alcotest.test_case "refined roundtrip" `Quick
            test_wrapper_io_refined_roundtrip;
          Alcotest.test_case "malformed inputs" `Quick test_wrapper_io_errors;
          Alcotest.test_case "file roundtrip" `Quick test_wrapper_io_file;
        ] );
      ( "resilience-harness",
        [
          Alcotest.test_case "shape" `Quick test_resilience_harness_shape;
          Alcotest.test_case "method ordering" `Quick test_resilience_ordering;
        ] );
    ]

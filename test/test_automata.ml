(* Tests for the automata substrate: NFA construction, determinization,
   minimization (Hopcroft vs Moore), DFA algebra, quotients, counting. *)

open Helpers

let p = Alphabet.find_exn ab_pq "p"
let _q = Alphabet.find_exn ab_pq "q"

let dfa_of alpha s =
  Minimize.minimize (Determinize.run (Nfa.of_regex alpha (rx alpha s)))

(* --- bitvec --- *)

let test_bitvec () =
  let b = Bitvec.create 100 in
  check_bool "fresh empty" true (Bitvec.is_empty b);
  Bitvec.set b 0;
  Bitvec.set b 63;
  Bitvec.set b 99;
  check_bool "mem 63" true (Bitvec.mem b 63);
  check_bool "not mem 64" false (Bitvec.mem b 64);
  check_int "cardinal" 3 (Bitvec.cardinal b);
  Bitvec.clear b 63;
  check_int "after clear" 2 (Bitvec.cardinal b);
  let c = Bitvec.of_list 100 [ 0; 1 ] in
  Bitvec.union_into c b;
  Alcotest.(check (list int)) "union elements" [ 0; 1; 99 ] (Bitvec.elements c);
  let i = Bitvec.inter c (Bitvec.of_list 100 [ 1; 99; 50 ]) in
  Alcotest.(check (list int)) "inter elements" [ 1; 99 ] (Bitvec.elements i);
  check_bool "keys equal iff sets equal" true
    (Bitvec.key i = Bitvec.key (Bitvec.of_list 100 [ 1; 99 ]))

(* --- nfa --- *)

let test_nfa_accepts () =
  let n = Nfa.of_regex ab_pq (rx ab_pq "(p q)* p") in
  Nfa.validate n;
  check_bool "pqp" true (Nfa.accepts n (w ab_pq "pqp"));
  check_bool "p" true (Nfa.accepts n (w ab_pq "p"));
  check_bool "pq" false (Nfa.accepts n (w ab_pq "pq"));
  check_bool "ε" false (Nfa.accepts n [||])

let test_nfa_combinators () =
  let a = Nfa.of_regex ab_pq (rx ab_pq "p") in
  let b = Nfa.of_regex ab_pq (rx ab_pq "q") in
  let u = Nfa.union a b in
  Nfa.validate u;
  check_bool "union p" true (Nfa.accepts u (w ab_pq "p"));
  check_bool "union q" true (Nfa.accepts u (w ab_pq "q"));
  check_bool "union pq" false (Nfa.accepts u (w ab_pq "pq"));
  let c = Nfa.concat a b in
  Nfa.validate c;
  check_bool "concat pq" true (Nfa.accepts c (w ab_pq "pq"));
  check_bool "concat p" false (Nfa.accepts c (w ab_pq "p"));
  let s = Nfa.star c in
  Nfa.validate s;
  check_bool "star ε" true (Nfa.accepts s [||]);
  check_bool "star pqpq" true (Nfa.accepts s (w ab_pq "pqpq"));
  check_bool "star pqp" false (Nfa.accepts s (w ab_pq "pqp"));
  let r = Nfa.reverse c in
  Nfa.validate r;
  check_bool "reverse accepts qp" true (Nfa.accepts r (w ab_pq "qp"));
  check_bool "reverse rejects pq" false (Nfa.accepts r (w ab_pq "pq"))

let test_nfa_word () =
  let n = Nfa.word ~alpha_size:2 (w ab_pq "pqp") in
  Nfa.validate n;
  check_bool "accepts itself" true (Nfa.accepts n (w ab_pq "pqp"));
  check_bool "rejects prefix" false (Nfa.accepts n (w ab_pq "pq"))

(* --- determinize / minimize --- *)

let test_determinize_agrees_with_nfa () =
  let n = Nfa.of_regex ab_pq (rx ab_pq "(p | q)* q (p | q)") in
  let d = Determinize.run n in
  Dfa.validate d;
  List.iter
    (fun s ->
      let word = w ab_pq s in
      check_bool
        (Printf.sprintf "agree on %S" s)
        (Nfa.accepts n word) (Dfa.accepts d word))
    [ ""; "p"; "q"; "qp"; "qq"; "pqp"; "ppp"; "pqqp" ]

let test_minimize_sizes () =
  (* (p|q)* q (p|q)^k needs 2^(k+1) DFA states; k = 2 here: 8 states. *)
  let d = Determinize.run (Nfa.of_regex ab_pq (rx ab_pq "(p | q)* q (p | q) (p | q)")) in
  let m = Minimize.hopcroft d in
  check_int "minimal size for lookbehind language" 8 m.Dfa.size;
  (* Σ* is one state. *)
  let u = dfa_of ab_pq "(p | q)*" in
  check_int "Σ* is 1 state" 1 u.Dfa.size;
  check_bool "Σ* accepts everything" true u.Dfa.finals.(0)

let test_hopcroft_eq_moore () =
  List.iter
    (fun s ->
      let d = Determinize.run (Nfa.of_regex ab_pq (rx ab_pq s)) in
      let h = Minimize.hopcroft d in
      let m = Minimize.moore d in
      check_bool
        (Printf.sprintf "hopcroft = moore on %s" s)
        true
        (Dfa.equal_structure h m))
    [
      "(p q)* p"; "(p | q)* q (p | q)"; "p* q* p*"; "@"; "!";
      "(p p | q)* (q | @)"; "p{3,5}"; "((p | q) (p | q))*";
    ]

let prop_hopcroft_eq_moore =
  qtest "Hopcroft and Moore agree" (arb_plain_regex ab_pqr) (fun e ->
      let d = Determinize.run (Nfa.of_regex ab_pqr e) in
      Dfa.equal_structure (Minimize.hopcroft d) (Minimize.moore d))

let prop_minimal_dfa_agrees_with_derivatives =
  qtest "minimal DFA ≡ derivative matcher"
    (QCheck.pair (arb_plain_regex ab_pq) (arb_word ab_pq 6))
    (fun (e, word) ->
      let d = dfa_of ab_pq (Regex.to_string ab_pq e) in
      Dfa.accepts d word = Regex.matches e word)

(* --- dfa ops --- *)

let test_boolean_ops () =
  let a = dfa_of ab_pq "p (p | q)*" in
  let b = dfa_of ab_pq "(p | q)* q" in
  let i = Dfa_ops.inter a b in
  check_bool "inter pq" true (Dfa.accepts i (w ab_pq "pq"));
  check_bool "inter p" false (Dfa.accepts i (w ab_pq "p"));
  let u = Dfa_ops.union a b in
  check_bool "union q" true (Dfa.accepts u (w ab_pq "q"));
  check_bool "union ε" false (Dfa.accepts u [||]);
  let d = Dfa_ops.difference a b in
  check_bool "diff p" true (Dfa.accepts d (w ab_pq "p"));
  check_bool "diff pq" false (Dfa.accepts d (w ab_pq "pq"))

let test_decision_procedures () =
  check_bool "p* q nonempty" false (Dfa_ops.is_empty (dfa_of ab_pq "p* q"));
  check_bool "! empty" true (Dfa_ops.is_empty (dfa_of ab_pq "!"));
  check_bool "p & q empty" true
    (Dfa_ops.is_empty (Dfa_ops.inter (dfa_of ab_pq "p") (dfa_of ab_pq "q")));
  check_bool "Σ* universal" true (Dfa_ops.is_universal (dfa_of ab_pq "(p | q)*"));
  check_bool "p* not universal" false (Dfa_ops.is_universal (dfa_of ab_pq "p*"));
  check_bool "p* ⊆ Σ*" true
    (Dfa_ops.includes (dfa_of ab_pq "(p | q)*") (dfa_of ab_pq "p*"));
  check_bool "Σ* ⊄ p*" false
    (Dfa_ops.includes (dfa_of ab_pq "p*") (dfa_of ab_pq "(p | q)*"));
  check_bool "α | β ≡ β | α" true
    (Dfa_ops.equivalent (dfa_of ab_pq "p | q p") (dfa_of ab_pq "q p | p"))

let test_witnesses () =
  (match Dfa_ops.shortest_accepted (dfa_of ab_pq "p p q (p | q)*") with
  | Some word -> check_string "shortest accepted" "ppq" (Word.to_string ab_pq word)
  | None -> Alcotest.fail "expected a witness");
  (match Dfa_ops.shortest_accepted (dfa_of ab_pq "!") with
  | None -> ()
  | Some _ -> Alcotest.fail "empty language has no witness");
  (match Dfa_ops.shortest_rejected (dfa_of ab_pq "(p | q)*") with
  | None -> ()
  | Some _ -> Alcotest.fail "universal language has no rejected word");
  match Dfa_ops.shortest_rejected (dfa_of ab_pq "p*") with
  | Some word -> check_string "shortest rejected" "q" (Word.to_string ab_pq word)
  | None -> Alcotest.fail "expected non-universality witness"

(* --- quotients (Def 5.1) --- *)

let test_suffix_quotient () =
  (* {qp} / {p} = {q};  per Example 4.7's F = E/(p·Σ* ) computation. *)
  let a = dfa_of ab_pq "q p" in
  let by = dfa_of ab_pq "p (p | q)*" in
  let r = Minimize.minimize (Dfa_ops.suffix_quotient a by) in
  check_bool "q ∈ qp/(pΣ* )" true (Dfa.accepts r (w ab_pq "q"));
  check_bool "ε ∉" false (Dfa.accepts r [||]);
  check_bool "qp ∉" false (Dfa.accepts r (w ab_pq "qp"))

let test_prefix_quotient () =
  (* {pq} \ {pq·r*} over {p,q}: strings α with pq·α ∈ pq q* = q*. *)
  let b = dfa_of ab_pq "p q" in
  let a = dfa_of ab_pq "p q q*" in
  let r = Minimize.minimize (Dfa_ops.prefix_quotient b a) in
  check_bool "ε ∈" true (Dfa.accepts r [||]);
  check_bool "qq ∈" true (Dfa.accepts r (w ab_pq "qq"));
  check_bool "p ∉" false (Dfa.accepts r (w ab_pq "p"))

(* Brute-force quotient oracles. *)
let brute_suffix_quotient a b word =
  List.exists
    (fun beta -> Dfa.accepts a (Array.append word beta))
    (List.of_seq (Seq.filter (Dfa.accepts b) (Word.enumerate ab_pq 4)))

let brute_prefix_quotient b a word =
  List.exists
    (fun beta -> Dfa.accepts a (Array.append beta word))
    (List.of_seq (Seq.filter (Dfa.accepts b) (Word.enumerate ab_pq 4)))

let prop_suffix_quotient_oracle =
  qtest ~count:60 "suffix quotient matches brute force (short words)"
    (QCheck.triple (arb_plain_regex ab_pq) (arb_plain_regex ab_pq)
       (arb_word ab_pq 4))
    (fun (ea, eb, word) ->
      let a = dfa_of ab_pq (Regex.to_string ab_pq ea) in
      let b = dfa_of ab_pq (Regex.to_string ab_pq eb) in
      let r = Dfa_ops.suffix_quotient a b in
      (* The oracle only sees β up to length 4; to keep the test exact we
         restrict both sides to witnesses that short.  Soundness: quotient
         membership with some longer β may hold where the oracle says no,
         so we only check the oracle's positives. *)
      if brute_suffix_quotient a b word then Dfa.accepts r word else true)

let prop_prefix_quotient_oracle =
  qtest ~count:60 "prefix quotient matches brute force (short words)"
    (QCheck.triple (arb_plain_regex ab_pq) (arb_plain_regex ab_pq)
       (arb_word ab_pq 4))
    (fun (eb, ea, word) ->
      let a = dfa_of ab_pq (Regex.to_string ab_pq ea) in
      let b = dfa_of ab_pq (Regex.to_string ab_pq eb) in
      let r = Dfa_ops.prefix_quotient b a in
      if brute_prefix_quotient b a word then Dfa.accepts r word else true)

(* --- counting (Def 6.1) --- *)

let test_filter_count () =
  let a = dfa_of ab_pq "(p | q)*" in
  let two = Dfa_ops.filter_count a ~sym:p 2 in
  check_bool "pp ∈ Σ*‖_p^2" true (Dfa.accepts two (w ab_pq "pp"));
  check_bool "qpqpq ∈" true (Dfa.accepts two (w ab_pq "qpqpq"));
  check_bool "p ∉" false (Dfa.accepts two (w ab_pq "p"));
  check_bool "ppp ∉" false (Dfa.accepts two (w ab_pq "ppp"))

let test_max_sym_count () =
  let count s = Dfa_ops.max_sym_count (dfa_of ab_pq s) ~sym:p in
  check_bool "Σ* unbounded" true (count "(p | q)*" = `Unbounded);
  check_bool "q* has zero p" true (count "q*" = `Bounded 0);
  check_bool "qp has one p" true (count "q p" = `Bounded 1);
  check_bool "(qp){3} has three" true (count "(q p){3}" = `Bounded 3);
  check_bool "p q* p q* p bounded 3" true (count "p q* p q* p" = `Bounded 3);
  check_bool "empty" true (count "!" = `Empty);
  check_bool "q-star then p-star unbounded" true (count "q* p*" = `Unbounded)

let prop_filter_count_oracle =
  qtest ~count:100 "filter_count keeps exactly-n-p words"
    (QCheck.triple (arb_plain_regex ab_pq) (QCheck.int_bound 3)
       (arb_word ab_pq 6))
    (fun (e, n, word) ->
      let a = dfa_of ab_pq (Regex.to_string ab_pq e) in
      let f = Dfa_ops.filter_count a ~sym:p n in
      Dfa.accepts f word = (Dfa.accepts a word && Word.count p word = n))

(* --- derivative-based construction --- *)

let test_deriv_dfa_basics () =
  let d = Deriv_dfa.of_regex ab_pq (rx ab_pq "(p q)* p") in
  Dfa.validate d;
  check_bool "pqp" true (Dfa.accepts d (w ab_pq "pqp"));
  check_bool "pq" false (Dfa.accepts d (w ab_pq "pq"));
  (* handles boolean operators natively *)
  let d2 = Deriv_dfa.of_regex ab_pq (rx ab_pq "~(p*) & . .*") in
  check_bool "q in complement-intersection" true (Dfa.accepts d2 (w ab_pq "q"));
  check_bool "pp rejected" false (Dfa.accepts d2 (w ab_pq "pp"));
  check_bool "eps rejected (needs a symbol)" false (Dfa.accepts d2 [||])

let test_deriv_dfa_state_count () =
  (* derivatives of p* q are few: p* q, eps, and the sink *)
  let states = Deriv_dfa.state_regexes ab_pq (rx ab_pq "p* q") in
  check_bool "small derivative set" true (List.length states <= 4)

let prop_three_engines_agree =
  qtest ~count:120 "Thompson+subset = derivative DFA = Lang compilation"
    (arb_ext_regex ab_pqr)
    (fun e ->
      let via_deriv = Minimize.minimize (Deriv_dfa.of_regex ab_pqr e) in
      let via_lang = Lang.dfa (Lang.of_regex ab_pqr e) in
      Dfa.equal_structure via_deriv via_lang)

(* --- dot output --- *)

let test_dot_output () =
  let d = dfa_of ab_pq "(p q)* p" in
  let dot = Fa_dot.dfa ab_pq d in
  check_bool "digraph header" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  check_bool "mentions start arrow" true
    (let needle = "__start ->" in
     let rec find i =
       i + String.length needle <= String.length dot
       && (String.sub dot i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  let n = Nfa.of_regex ab_pq (rx ab_pq "p | q p") in
  let ndot = Fa_dot.nfa ab_pq n in
  check_bool "nfa dot nonempty" true (String.length ndot > 20)

(* --- state elimination --- *)

let prop_state_elim_roundtrip =
  qtest ~count:80 "DFA → regex → DFA preserves the language"
    (arb_plain_regex ab_pq)
    (fun e ->
      let d = dfa_of ab_pq (Regex.to_string ab_pq e) in
      let r = State_elim.to_regex d in
      let d' = Minimize.minimize (Determinize.run (Nfa.of_regex ab_pq r)) in
      Dfa.equal_structure d d')

let test_state_elim_empty () =
  let r = State_elim.to_regex (dfa_of ab_pq "!") in
  check_bool "empty language renders as ∅" true (Regex.equal r Regex.empty)

let () =
  Alcotest.run "automata"
    [
      ("bitvec", [ Alcotest.test_case "basics" `Quick test_bitvec ]);
      ( "nfa",
        [
          Alcotest.test_case "thompson accepts" `Quick test_nfa_accepts;
          Alcotest.test_case "combinators" `Quick test_nfa_combinators;
          Alcotest.test_case "word" `Quick test_nfa_word;
        ] );
      ( "determinize-minimize",
        [
          Alcotest.test_case "subset construction" `Quick
            test_determinize_agrees_with_nfa;
          Alcotest.test_case "minimal sizes" `Quick test_minimize_sizes;
          Alcotest.test_case "hopcroft = moore (fixed)" `Quick
            test_hopcroft_eq_moore;
          prop_hopcroft_eq_moore;
          prop_minimal_dfa_agrees_with_derivatives;
        ] );
      ( "dfa-ops",
        [
          Alcotest.test_case "boolean ops" `Quick test_boolean_ops;
          Alcotest.test_case "decision procedures" `Quick
            test_decision_procedures;
          Alcotest.test_case "witnesses" `Quick test_witnesses;
        ] );
      ( "quotients",
        [
          Alcotest.test_case "suffix quotient" `Quick test_suffix_quotient;
          Alcotest.test_case "prefix quotient" `Quick test_prefix_quotient;
          prop_suffix_quotient_oracle;
          prop_prefix_quotient_oracle;
        ] );
      ( "counting",
        [
          Alcotest.test_case "filter_count" `Quick test_filter_count;
          Alcotest.test_case "max_sym_count" `Quick test_max_sym_count;
          prop_filter_count_oracle;
        ] );
      ( "derivative-dfa",
        [
          Alcotest.test_case "basics" `Quick test_deriv_dfa_basics;
          Alcotest.test_case "state count" `Quick test_deriv_dfa_state_count;
          prop_three_engines_agree;
        ] );
      ("dot", [ Alcotest.test_case "rendering" `Quick test_dot_output ]);
      ( "state-elim",
        [
          prop_state_elim_roundtrip;
          Alcotest.test_case "empty language" `Quick test_state_elim_empty;
        ] );
    ]

(* Unit tests for the serve subsystem: the session fiber's lifecycle,
   the supervisor's admission ladder and drain, and the snapshot-delta
   helpers the daemon's --stats report is built on.  The differential
   properties (streamed ≡ offline, isolation as byte identity) live in
   lib/oracle/oracle_serve; this file pins the concrete contracts. *)

let alpha = Alphabet.make [ "p"; "q" ]
let e = Extraction.parse alpha "([^p])* <p> .*"
let m = Extraction.compile e

let mk ?(jobs = 1) ?(max_sessions = 64) ?fuel () =
  Supervisor.create
    {
      Supervisor.matcher = m;
      alpha;
      jobs;
      max_sessions;
      fuel;
      deadline_ms = None;
      retry_after_ms = 7;
      heal = None;
    }

let line fields = Obs.Json.to_string (Obs.Json.Obj fields)

let open_line ?fuel id =
  let open Obs.Json in
  line
    (("op", Str "open") :: ("id", Int id)
    :: (match fuel with None -> [] | Some f -> [ ("fuel", Int f) ]))

let tokens_line id names =
  let open Obs.Json in
  line
    [
      ("op", Str "tokens");
      ("id", Int id);
      ("syms", List (List.map (fun s -> Str s) names));
    ]

let close_line id =
  let open Obs.Json in
  line [ ("op", Str "close"); ("id", Int id) ]

let enc = List.map Frame.encode

let check_frames name expect got =
  Alcotest.(check (list string)) name (enc expect) (enc got)

(* --- sessions --- *)

let test_session_lifecycle () =
  let s = Session.create ~matcher:m ~alpha ~id:1 ~ordinal:0 () in
  Alcotest.(check bool) "alive" true (Session.alive s);
  (match Session.feed s [ "q"; "q"; "p" ] with
  | [ Session.Split 2 ] -> ()
  | _ -> Alcotest.fail "expected the split at 2");
  Alcotest.(check bool)
    "no further splits on q p" true
    (Session.feed s [ "q"; "p" ] = []);
  Alcotest.(check int) "tokens" 5 (Session.tokens_fed s);
  Alcotest.(check int) "splits" 1 (Session.splits_emitted s);
  Alcotest.(check bool) "finish quiet" true (Session.finish s = []);
  Alcotest.(check bool) "dead after finish" false (Session.alive s);
  Alcotest.(check bool) "feed after death" true (Session.feed s [ "p" ] = [])

let test_session_budget () =
  let s = Session.create ~matcher:m ~alpha ~id:1 ~ordinal:0 ~fuel:2 () in
  (match Session.feed s [ "q"; "q"; "q" ] with
  | [ Session.Budget_exhausted r ] ->
      Alcotest.(check string) "stage" "stream" r.Guard.stage;
      Alcotest.(check int) "spent" 3 r.Guard.spent;
      Alcotest.(check int) "limit" 2 r.Guard.limit
  | _ -> Alcotest.fail "expected budget exhaustion");
  Alcotest.(check bool) "dead" false (Session.alive s)

let test_session_bad_symbol_keeps_pinned () =
  let s = Session.create ~matcher:m ~alpha ~id:1 ~ordinal:0 () in
  (match Session.feed s [ "p"; "zz" ] with
  | [ Session.Split 0; Session.Bad_symbol "zz" ] -> ()
  | _ -> Alcotest.fail "expected the pinned split, then the bad symbol");
  Alcotest.(check bool) "dead" false (Session.alive s);
  Alcotest.(check bool) "feed after death" true (Session.feed s [ "p" ] = [])

let test_session_injected_fault () =
  Guard_faults.arm Guard_faults.Session_item ~at:[ 3 ];
  Fun.protect ~finally:Guard_faults.disarm @@ fun () ->
  let s0 = Session.create ~matcher:m ~alpha ~id:1 ~ordinal:0 () in
  let s3 = Session.create ~matcher:m ~alpha ~id:2 ~ordinal:3 () in
  Alcotest.(check bool)
    "unarmed ordinal streams" true
    (Session.feed s0 [ "q"; "p" ] = [ Session.Split 1 ]);
  (match Session.feed s3 [ "q"; "p" ] with
  | [ Session.Faulted _ ] -> ()
  | _ -> Alcotest.fail "expected the armed ordinal to fault");
  Alcotest.(check bool) "victim dead" false (Session.alive s3);
  Alcotest.(check bool) "bystander alive" true (Session.alive s0)

(* --- page sessions: raw HTML through the fused front-end --- *)

let alpha_h = Alphabet.make [ "DIV"; "/DIV"; "P"; "/P"; "INPUT" ]
let e_h = Extraction.parse alpha_h "([^INPUT])* <INPUT> .*"
let m_h = Extraction.compile e_h

let mk_h ?(jobs = 1) () =
  Supervisor.create
    {
      Supervisor.matcher = m_h;
      alpha = alpha_h;
      jobs;
      max_sessions = 64;
      fuel = None;
      deadline_ms = None;
      retry_after_ms = 7;
      heal = None;
    }

let page_line id html =
  let open Obs.Json in
  line [ ("op", Str "page"); ("id", Int id); ("html", Str html) ]

let test_session_page_stream () =
  let s = Session.create ~matcher:m_h ~alpha:alpha_h ~id:1 ~ordinal:0 () in
  (* the chunk boundary splits the </p> tag in half *)
  Alcotest.(check bool)
    "first chunk quiet" true
    (Session.feed_page s "<div><p>x</p" = []);
  (match Session.feed_page s "><input>" with
  | [ Session.Split 3 ] -> ()
  | _ -> Alcotest.fail "expected the split to pin at 3");
  (* finish flushes the builder's implicit </div> before end-of-stream *)
  Alcotest.(check bool) "finish quiet" true (Session.finish s = []);
  Alcotest.(check int) "tokens incl. flushed close" 5 (Session.tokens_fed s);
  Alcotest.(check int) "splits" 1 (Session.splits_emitted s)

let test_sup_page_equals_tokens () =
  (* a page session and a token session over the same symbol stream
     answer byte-identical frames *)
  let out_page =
    Supervisor.handle_batch (mk_h ())
      [
        open_line 1;
        page_line 1 "<div><p>x";
        page_line 1 "</p><input></div>";
        close_line 1;
      ]
  in
  let out_tok =
    Supervisor.handle_batch (mk_h ())
      [
        open_line 1;
        tokens_line 1 [ "DIV"; "P" ];
        tokens_line 1 [ "/P"; "INPUT"; "/DIV" ];
        close_line 1;
      ]
  in
  check_frames "page ≡ tokens" out_tok out_page

let test_sup_page_unknown_tag () =
  let out =
    Supervisor.handle_batch (mk_h ())
      [
        open_line 1;
        page_line 1 "<div><table>";
        page_line 1 "<input>";
        close_line 1;
      ]
  in
  check_frames "unknown tag kills only the session"
    [
      Frame.Opened { id = 1 };
      Frame.Err_proto { id = 1; reason = "unknown symbol \"TABLE\"" };
      Frame.Err_proto { id = 1; reason = "session is gone" };
      Frame.Err_proto { id = 1; reason = "session is gone" };
    ]
    out

(* --- supervisor --- *)

let test_sup_admission_ladder () =
  let s = mk ~max_sessions:1 () in
  check_frames "ladder"
    [
      Frame.Opened { id = 4 };
      Frame.Err_proto { id = 4; reason = "session already open" };
      Frame.Err_shed { id = 5; retry_after_ms = 7 };
      Frame.Err_proto { id = 6; reason = "unknown session" };
    ]
    (Supervisor.handle_batch s
       [ open_line 4; open_line 4; open_line 5; tokens_line 6 [ "p" ] ]);
  Supervisor.set_draining s;
  check_frames "refused once draining"
    [ Frame.Err_refused { id = 9 } ]
    (Supervisor.handle_line s (open_line 9))

let test_sup_close_reopen_same_batch () =
  let s = mk () in
  check_frames "two distinct sessions under one id"
    [
      Frame.Opened { id = 1 };
      Frame.Split { id = 1; pos = 1 };
      Frame.Closed { id = 1; splits = 1; tokens = 2 };
      Frame.Opened { id = 1 };
      Frame.Closed { id = 1; splits = 0; tokens = 1 };
    ]
    (Supervisor.handle_batch s
       [
         open_line 1;
         tokens_line 1 [ "q"; "p" ];
         close_line 1;
         open_line 1;
         tokens_line 1 [ "q" ];
         close_line 1;
       ])

let test_sup_drain_finishes_in_open_order () =
  let s = mk () in
  ignore (Supervisor.handle_batch s [ open_line 5; open_line 3; open_line 9 ]);
  ignore (Supervisor.handle_line s (tokens_line 3 [ "q"; "p" ]));
  Alcotest.(check int) "three live" 3 (Supervisor.active_sessions s);
  check_frames "drain closes in open order"
    [
      Frame.Closed { id = 5; splits = 0; tokens = 0 };
      Frame.Closed { id = 3; splits = 1; tokens = 2 };
      Frame.Closed { id = 9; splits = 0; tokens = 0 };
    ]
    (Supervisor.drain s);
  Alcotest.(check int) "table empty" 0 (Supervisor.active_sessions s);
  Alcotest.(check bool) "draining" true (Supervisor.draining s)

let test_sup_malformed_lines_are_isolated () =
  let s = mk () in
  check_frames "decode errors do not disturb neighbours"
    [
      Frame.Opened { id = 1 };
      Frame.Err_decode { reason = "bad JSON: expected null at offset 0" };
      Frame.Split { id = 1; pos = 0 };
      Frame.Closed { id = 1; splits = 1; tokens = 1 };
    ]
    (Supervisor.handle_batch s
       [ open_line 1; "not a frame"; tokens_line 1 [ "p" ]; close_line 1 ])

let test_sup_bad_symbol_counts_proto () =
  (* the wire answers a bad symbol with err=proto, so it must count
     with the protocol errors: a client tallying err=proto frames and
     the stats provider agree, and [faulted] stays err=fault only *)
  let before = Supervisor.stats () in
  let s = mk () in
  ignore (Supervisor.handle_batch s [ open_line 1; tokens_line 1 [ "zz" ] ]);
  let after = Supervisor.stats () in
  Alcotest.(check int)
    "proto errors" 1
    (after.Supervisor.proto_errors - before.Supervisor.proto_errors);
  Alcotest.(check int)
    "faulted untouched" 0
    (after.Supervisor.faulted - before.Supervisor.faulted)

let test_sup_counters_move () =
  let before = Supervisor.stats () in
  let s = mk () in
  ignore
    (Supervisor.handle_batch s
       [ open_line 1; tokens_line 1 [ "q"; "p" ]; "garbage"; close_line 1 ]);
  let after = Supervisor.stats () in
  Alcotest.(check int) "opened" 1 (after.Supervisor.opened - before.Supervisor.opened);
  Alcotest.(check int) "closed" 1 (after.Supervisor.closed - before.Supervisor.closed);
  Alcotest.(check int) "frames" 4 (after.Supervisor.frames - before.Supervisor.frames);
  Alcotest.(check int) "decode errors" 1
    (after.Supervisor.decode_errors - before.Supervisor.decode_errors)

(* --- snapshot deltas (the daemon's --stats path: never reset) --- *)

let test_runtime_stats_delta () =
  let earlier = Runtime.stats () in
  let d = Runtime.Stats.delta ~earlier (Runtime.stats ()) in
  let zero c = c.Runtime.Stats.hits = 0 && c.Runtime.Stats.misses = 0 in
  Alcotest.(check bool)
    "empty window is all zero" true
    (zero d.Runtime.Stats.intern && zero d.Runtime.Stats.compile
   && zero d.Runtime.Stats.determinize && zero d.Runtime.Stats.minimize
   && zero d.Runtime.Stats.quotient && zero d.Runtime.Stats.decision)

let test_pool_stats_delta () =
  let earlier = Pool.stats () in
  ignore (Batch.map ~jobs:2 (fun x -> x + 1) (List.init 8 Fun.id));
  let d = Pool.delta_stats ~earlier (Pool.stats ()) in
  Alcotest.(check int) "items in window" 8 d.Pool.items;
  Alcotest.(check bool) "batches counted" true (d.Pool.batches >= 1);
  (* workers is a gauge, not a rate: the later reading is kept *)
  Alcotest.(check int) "workers gauge" (Pool.stats ()).Pool.workers
    d.Pool.workers;
  let d0 = Pool.delta_stats ~earlier earlier in
  Alcotest.(check int) "identical snapshots: zero items" 0 d0.Pool.items;
  Alcotest.(check int) "identical snapshots: zero steals" 0 d0.Pool.steals

let () =
  Alcotest.run "serve"
    [
      ( "session",
        [
          Alcotest.test_case "lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "budget exhaustion" `Quick test_session_budget;
          Alcotest.test_case "bad symbol keeps pinned splits" `Quick
            test_session_bad_symbol_keeps_pinned;
          Alcotest.test_case "injected fault by ordinal" `Quick
            test_session_injected_fault;
          Alcotest.test_case "page stream through the fused front-end" `Quick
            test_session_page_stream;
        ] );
      ( "page-frames",
        [
          Alcotest.test_case "page frames ≡ token frames" `Quick
            test_sup_page_equals_tokens;
          Alcotest.test_case "unknown tag is a terminal proto error" `Quick
            test_sup_page_unknown_tag;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "admission ladder" `Quick test_sup_admission_ladder;
          Alcotest.test_case "close-then-reopen in one batch" `Quick
            test_sup_close_reopen_same_batch;
          Alcotest.test_case "drain finishes in open order" `Quick
            test_sup_drain_finishes_in_open_order;
          Alcotest.test_case "malformed lines are isolated" `Quick
            test_sup_malformed_lines_are_isolated;
          Alcotest.test_case "bad symbol counts as a proto error" `Quick
            test_sup_bad_symbol_counts_proto;
          Alcotest.test_case "counters move" `Quick test_sup_counters_move;
        ] );
      ( "snapshot-deltas",
        [
          Alcotest.test_case "Runtime.Stats.delta" `Quick
            test_runtime_stats_delta;
          Alcotest.test_case "Pool.delta_stats" `Quick test_pool_stats_delta;
        ] );
    ]

(* Tests for the HTML substrate: lexer, tree builder, serializer,
   tag-sequence abstraction, path/mark mapping. *)

open Helpers

let check_tokens msg expected html =
  let got =
    Html_lexer.tokenize html
    |> List.map (fun t ->
           match t with
           | Html_token.Start_tag { name; _ } -> name
           | Html_token.End_tag n -> "/" ^ n
           | Html_token.Text _ -> "#text"
           | Html_token.Comment _ -> "#comment"
           | Html_token.Doctype _ -> "#doctype")
  in
  Alcotest.(check (list string)) msg expected got

let test_lexer_basics () =
  check_tokens "simple" [ "P"; "#text"; "/P" ] "<p>hello</p>";
  check_tokens "attrs"
    [ "A"; "#text"; "/A" ]
    {|<a href="x.html" class='c' data-k>go</a>|};
  check_tokens "self-closing" [ "BR" ] "<br />";
  check_tokens "comment + doctype"
    [ "#doctype"; "#comment"; "P"; "/P" ]
    "<!DOCTYPE html><!-- hi --><p></p>";
  check_tokens "case folding" [ "DIV"; "/DIV" ] "<DiV></dIv>"

let test_lexer_attrs () =
  let toks = Html_lexer.tokenize {|<input type="text" checked value=42>|} in
  match toks with
  | [ (Html_token.Start_tag _ as t) ] ->
      (match Html_token.attr t "type" with
      | Some (Some "text") -> ()
      | _ -> Alcotest.fail "type attr");
      (match Html_token.attr t "checked" with
      | Some None -> ()
      | _ -> Alcotest.fail "valueless attr");
      (match Html_token.attr t "value" with
      | Some (Some "42") -> ()
      | _ -> Alcotest.fail "unquoted attr");
      (match Html_token.attr t "missing" with
      | None -> ()
      | _ -> Alcotest.fail "missing attr")
  | _ -> Alcotest.fail "expected one start tag"

let test_lexer_malformed () =
  (* Must never raise; stray < is text. *)
  check_tokens "stray lt" [ "#text" ] "a < b";
  check_tokens "unterminated tag" [ "P" ] "<p";
  check_tokens "empty" [] "";
  check_tokens "unterminated comment" [ "#comment" ] "<!-- oops"

let test_lexer_script () =
  check_tokens "script body is raw"
    [ "SCRIPT"; "#text"; "/SCRIPT"; "P"; "/P" ]
    {|<script>if (a<b) { x = "<p>"; }</script><p></p>|}

let test_tree_nesting () =
  let doc = Html_tree.parse "<div><p>one</p><p>two</p></div>" in
  match doc with
  | [ Html_tree.Element { name = "DIV"; children = [ p1; p2 ]; _ } ] ->
      (match p1 with
      | Html_tree.Element { name = "P"; children = [ Html_tree.Text "one" ]; _ }
        ->
          ()
      | _ -> Alcotest.fail "p1 shape");
      (match p2 with
      | Html_tree.Element { name = "P"; _ } -> ()
      | _ -> Alcotest.fail "p2 shape")
  | _ -> Alcotest.fail "div shape"

let test_tree_void_and_implied () =
  (* <p> is implicitly closed by the following block element. *)
  let doc = Html_tree.parse "<p>text<h1>title</h1>" in
  (match doc with
  | [ Html_tree.Element { name = "P"; _ }; Html_tree.Element { name = "H1"; _ } ]
    ->
      ()
  | _ -> Alcotest.fail "implied </p>");
  (* void elements never nest children *)
  let doc2 = Html_tree.parse "<div><br>after</div>" in
  match doc2 with
  | [
   Html_tree.Element
     {
       name = "DIV";
       children =
         [ Html_tree.Element { name = "BR"; children = []; _ }; Html_tree.Text _ ];
       _;
     };
  ] ->
      ()
  | _ -> Alcotest.fail "void BR"

let test_tree_table_implied () =
  let doc = Html_tree.parse "<table><tr><td>a<td>b<tr><td>c</table>" in
  match Html_tree.find_elements "TR" doc with
  | [ (_, Html_tree.Element { children = c1; _ }); (_, _) ] ->
      check_int "first row has two cells" 2 (List.length c1)
  | l -> Alcotest.failf "expected 2 rows, got %d" (List.length l)

let test_tree_unmatched_end () =
  let doc = Html_tree.parse "<div>a</span>b</div>" in
  match doc with
  | [ Html_tree.Element { name = "DIV"; children; _ } ] ->
      check_int "both texts kept" 2 (List.length children)
  | _ -> Alcotest.fail "unmatched end tag dropped"

let test_roundtrip_stability () =
  (* parse ∘ to_string ∘ parse = parse *)
  let sources =
    [
      "<div><p>one</p><br><img src=\"x\"></div>";
      "<table><tr><td><form><input type=\"text\"></form></td></tr></table>";
      "<p>a<p>b<p>c";
    ]
  in
  List.iter
    (fun src ->
      let d1 = Html_tree.parse src in
      let d2 = Html_tree.parse (Html_tree.to_string d1) in
      check_bool (Printf.sprintf "stable: %s" src) true (Html_tree.equal d1 d2))
    sources

let test_paths () =
  let doc = Html_tree.parse "<div><p>a</p><p>b</p></div><hr>" in
  (match Html_tree.node_at doc [ 0; 1 ] with
  | Some (Html_tree.Element { name = "P"; _ }) -> ()
  | _ -> Alcotest.fail "node_at 0.1");
  (match Html_tree.node_at doc [ 1 ] with
  | Some (Html_tree.Element { name = "HR"; _ }) -> ()
  | _ -> Alcotest.fail "node_at 1");
  check_bool "dangling path" true (Html_tree.node_at doc [ 0; 5 ] = None);
  (* insert then re-read *)
  (match Html_tree.insert_at doc [ 0; 1 ] (Html_tree.element "B" []) with
  | Some doc' -> (
      match Html_tree.node_at doc' [ 0; 1 ] with
      | Some (Html_tree.Element { name = "B"; _ }) -> ()
      | _ -> Alcotest.fail "inserted node not found")
  | None -> Alcotest.fail "insert failed");
  (* replace (delete) *)
  match Html_tree.replace_at doc [ 0; 0 ] (fun _ -> []) with
  | Some doc' -> (
      match Html_tree.node_at doc' [ 0; 0 ] with
      | Some (Html_tree.Element { name = "P"; children = [ Html_tree.Text "b" ]; _ })
        ->
          ()
      | _ -> Alcotest.fail "sibling did not shift")
  | None -> Alcotest.fail "replace failed"

let test_find_elements () =
  let doc = Html_tree.parse "<form><input><input></form><input>" in
  check_int "three inputs" 3 (List.length (Html_tree.find_elements "input" doc));
  check_int "one form" 1 (List.length (Html_tree.find_elements "FORM" doc))

(* --- tag sequences --- *)

let test_tag_seq_basics () =
  let doc = Html_tree.parse "<p>x</p><form><input></form>" in
  let alpha = Tag_seq.alphabet_of_docs [ doc ] in
  let word = Tag_seq.of_doc alpha doc in
  check_string "sequence" "P /P FORM INPUT /FORM" (Word.to_string alpha word)

let test_tag_seq_void_no_close () =
  let doc = Html_tree.parse "<div><br><img src='x'></div>" in
  let alpha = Tag_seq.alphabet_of_docs [ doc ] in
  check_bool "no /BR symbol" true (Alphabet.find alpha "/BR" = None);
  check_string "sequence" "DIV BR IMG /DIV"
    (Word.to_string alpha (Tag_seq.of_doc alpha doc))

let test_mark_roundtrip () =
  let doc =
    Html_tree.parse "<form><input type='a'><input type='b'><input type='c'></form>"
  in
  let alpha = Tag_seq.alphabet_of_docs [ doc ] in
  (* mark the middle input: path [0; 1] *)
  match Tag_seq.mark_of_path alpha doc [ 0; 1 ] with
  | None -> Alcotest.fail "mark_of_path"
  | Some (word, i) ->
      check_int "position of 2nd input" 2 i;
      check_string "word" "FORM INPUT INPUT INPUT /FORM"
        (Word.to_string alpha word);
      (match Tag_seq.path_of_mark alpha doc i with
      | Some [ 0; 1 ] -> ()
      | _ -> Alcotest.fail "path_of_mark inverse");
      (* text/comment targets are rejected *)
      let doc2 = Html_tree.parse "<p>just text</p>" in
      check_bool "text target rejected" true
        (Tag_seq.mark_of_path alpha doc2 [ 0; 0 ] = None)

let test_figure1_sequences () =
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Tag_seq.alphabet_of_docs [ top; bottom ] in
  (* §3's abstraction of the two documents (modulo <p> auto-closing,
     which our tree builder makes explicit). *)
  check_string "top" "P /P H1 /H1 P /P FORM INPUT INPUT BR INPUT BR INPUT /FORM"
    (Word.to_string alpha (Tag_seq.of_doc alpha top));
  check_string "bottom"
    "TABLE TR TH IMG /TH /TR TR TD H1 /H1 /TD /TR TR TD A /A /TD /TR TR TD \
     FORM INPUT INPUT INPUT BR INPUT /FORM /TD /TR /TABLE"
    (Word.to_string alpha (Tag_seq.of_doc alpha bottom));
  (* the marked element is the 2nd INPUT of the form in both *)
  (match Pagegen.target_path top with
  | Some path -> (
      match Tag_seq.mark_of_path alpha top path with
      | Some (word, i) ->
          check_bool "marks an INPUT" true
            (Alphabet.name alpha word.(i) = "INPUT");
          check_int "2nd input of top page" 8 i
      | None -> Alcotest.fail "mark top")
  | None -> Alcotest.fail "target top");
  match Pagegen.target_path bottom with
  | Some path -> (
      match Tag_seq.mark_of_path alpha bottom path with
      | Some (word, i) ->
          check_bool "marks an INPUT" true
            (Alphabet.name alpha word.(i) = "INPUT")
      | None -> Alcotest.fail "mark bottom")
  | None -> Alcotest.fail "target bottom"

(* --- abstraction levels --- *)

let test_abstraction_symbols () =
  let abs = Abstraction.Tags_with_attrs [ ("INPUT", "type") ] in
  let attrs v = [ { Html_token.name = "type"; value = v } ] in
  check_string "refined" "INPUT:type=text"
    (Abstraction.start_symbol abs "input" (attrs (Some "Text")));
  check_string "valueless attr falls back" "INPUT"
    (Abstraction.start_symbol abs "INPUT" (attrs None));
  check_string "missing attr falls back" "INPUT"
    (Abstraction.start_symbol abs "INPUT" []);
  check_string "unrefined element" "DIV"
    (Abstraction.start_symbol abs "div" (attrs (Some "x")));
  check_string "plain tags never refine" "INPUT"
    (Abstraction.start_symbol Abstraction.Tags "INPUT" (attrs (Some "text")));
  check_string "end symbol" "/FORM" (Abstraction.end_symbol "form")

let test_tag_seq_refined () =
  let abs = Abstraction.Tags_with_attrs [ ("INPUT", "type") ] in
  let doc =
    Html_tree.parse {|<form><input type="image"><input type="text"></form>|}
  in
  let alpha = Tag_seq.alphabet_of_docs ~abs [ doc ] in
  check_string "refined sequence"
    "FORM INPUT:type=image INPUT:type=text /FORM"
    (Word.to_string alpha (Tag_seq.of_doc ~abs alpha doc));
  (* refined symbols survive the expression parser (identifier chars) *)
  let e = Regex_parse.parse alpha "FORM INPUT:type=image INPUT:type=text /FORM" in
  check_bool "parseable as regex" true
    (Lang.mem (Lang.of_regex alpha e) (Tag_seq.of_doc ~abs alpha doc));
  (* mark/path roundtrip under refinement *)
  match Tag_seq.mark_of_path ~abs alpha doc [ 0; 1 ] with
  | Some (_, i) -> (
      check_int "mark position" 2 i;
      match Tag_seq.path_of_mark ~abs alpha doc i with
      | Some [ 0; 1 ] -> ()
      | _ -> Alcotest.fail "path_of_mark under refinement")
  | None -> Alcotest.fail "mark_of_path under refinement"

let prop_serializer_roundtrip =
  (* Generated trees survive to_string ∘ parse. *)
  let gen_tree =
    let open QCheck.Gen in
    let tag = oneofl [ "DIV"; "P"; "TABLE"; "TR"; "TD"; "FORM"; "A"; "B" ] in
    let rec node n =
      if n <= 0 then map (fun t -> Html_tree.element t []) tag
      else
        frequency
          [
            (2, map (fun t -> Html_tree.element t []) tag);
            (1, return (Html_tree.text "x"));
            ( 3,
              map2
                (fun t kids -> Html_tree.element t kids)
                tag
                (list_size (int_bound 3) (node (n - 1))) );
          ]
    in
    list_size (int_bound 4) (node 3)
  in
  qtest ~count:100 "serializer/parser fixpoint"
    (QCheck.make
       ~print:(fun d -> Html_tree.to_string d)
       gen_tree)
    (fun doc ->
      (* P cannot nest inside P (implied end tags); normalize once, then
         require stability. *)
      let d1 = Html_tree.parse (Html_tree.to_string doc) in
      let d2 = Html_tree.parse (Html_tree.to_string d1) in
      Html_tree.equal d1 d2)

(* --- fused front-end (Front) ---

   Deterministic spot checks of the fused pass against the
   materializing pipeline on the lexer/builder edge cases the property
   suites might only graze: entity decoding inside attribute values,
   raw-text elements with extended close names, implied end tags,
   self-closing syntax, comment/doctype shapes, and junk. *)

let front_word ~abs alpha s =
  match Front.word (Front.build ~abs alpha) s with
  | w -> Ok (Word.to_string alpha w)
  | exception Tag_seq.Unknown_symbol t -> Error t

let tree_word ~abs alpha s =
  match Tag_seq.of_doc ~abs alpha (Html_tree.parse s) with
  | w -> Ok (Word.to_string alpha w)
  | exception Tag_seq.Unknown_symbol t -> Error t

let tricky_pages =
  [
    "<p>one<p>two<div>three</div>";
    "<ul><li>a<li>b<li>c</ul>";
    "<table><tr><td>a<td>b<tr><td>c</table>";
    "<form><input type=\"text\"><br/><input></form>";
    "<div/>text<br>";
    "<script>if (a < b) { document.write(\"</div>\"); }</script><p>after";
    "<script>x</scriptfoo><p>tail";
    "<style>p > a { color: red }</style><b>x</b>";
    "<!-- <p>not a tag</p> --><div>real</div>";
    "<!-- unterminated comment <p>";
    "<!doctype html><p>x</p>";
    "<p>a &lt; b &amp;&amp; c &gt; d &quot;q&quot; &#65;</p>";
    "<p>&#32;&#32;</p><div>x</div>";
    "<p>&bogus; &#xyz; &toolongtobeanentity; text</p>";
    "<p>a < b</p>";
    "<div></ div><p>x</p>";
    "<div></div junk junk><p>x</p>";
    "<a href=\"x>y\">link</a>";
    "<input type = \"radio\" checked><select><option>a<option>b</select>";
    "<DIV><P>UPPER</P></DIV><dIv>mixed</DiV>";
  ]

let test_front_tricky_pages () =
  List.iter
    (fun abs ->
      List.iter
        (fun s ->
          let alpha = Tag_seq.alphabet_of_docs ~abs [ Html_tree.parse s ] in
          Alcotest.(check (result string string))
            s (tree_word ~abs alpha s) (front_word ~abs alpha s))
        tricky_pages)
    [ Abstraction.Tags; Abstraction.Tags_with_attrs [ ("INPUT", "type") ] ]

let test_front_figure1 () =
  List.iter
    (fun doc ->
      let s = Html_tree.to_string doc in
      let abs = Abstraction.Tags in
      let alpha = Tag_seq.alphabet_of_docs ~abs [ doc ] in
      Alcotest.(check (result string string))
        "figure1 fused ≡ tree" (tree_word ~abs alpha s)
        (front_word ~abs alpha s))
    [ Pagegen.figure1_top (); Pagegen.figure1_bottom () ]

let test_front_chunking_every_cut () =
  let s =
    "<div><p>a &amp; b<script>\"</div>\"</script><table><tr><td>x<td>y</table></div>"
  in
  let abs = Abstraction.Tags in
  let alpha = Tag_seq.alphabet_of_docs ~abs [ Html_tree.parse s ] in
  let tbl = Front.build ~abs alpha in
  let oneshot = Array.to_list (Front.word tbl s) in
  for cut = 0 to String.length s do
    let acc = ref [] in
    let emit a = acc := a :: !acc in
    let st = Front.stream_make tbl in
    (match Front.stream_feed st (String.sub s 0 cut) ~emit with
    | Ok () -> ()
    | Error t -> Alcotest.failf "chunk 1 at %d: unknown %s" cut t);
    (match
       Front.stream_feed st (String.sub s cut (String.length s - cut)) ~emit
     with
    | Ok () -> ()
    | Error t -> Alcotest.failf "chunk 2 at %d: unknown %s" cut t);
    (match Front.stream_finish st ~emit with
    | Ok () -> ()
    | Error t -> Alcotest.failf "finish at %d: unknown %s" cut t);
    Alcotest.(check (list int))
      (Printf.sprintf "cut at %d" cut)
      oneshot (List.rev !acc)
  done

let test_front_unknown_symbol () =
  (* an alphabet that misses TABLE: both paths must name TABLE, not
     whatever follows it *)
  let alpha = Alphabet.make [ "DIV"; "/DIV"; "P"; "/P" ] in
  let s = "<div><p>x</p><table><tr><td>y</table></div>" in
  let abs = Abstraction.Tags in
  Alcotest.(check (result string string))
    "same unknown symbol" (Error "TABLE")
    (front_word ~abs alpha s);
  Alcotest.(check (result string string))
    "tree agrees"
    (tree_word ~abs alpha s)
    (front_word ~abs alpha s)

let () =
  Alcotest.run "html"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "attributes" `Quick test_lexer_attrs;
          Alcotest.test_case "malformed input" `Quick test_lexer_malformed;
          Alcotest.test_case "script raw text" `Quick test_lexer_script;
        ] );
      ( "tree",
        [
          Alcotest.test_case "nesting" `Quick test_tree_nesting;
          Alcotest.test_case "void + implied end" `Quick
            test_tree_void_and_implied;
          Alcotest.test_case "table implied cells" `Quick
            test_tree_table_implied;
          Alcotest.test_case "unmatched end tag" `Quick test_tree_unmatched_end;
          Alcotest.test_case "roundtrip stability" `Quick
            test_roundtrip_stability;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "find_elements" `Quick test_find_elements;
          prop_serializer_roundtrip;
        ] );
      ( "tag-seq",
        [
          Alcotest.test_case "basics" `Quick test_tag_seq_basics;
          Alcotest.test_case "void tags" `Quick test_tag_seq_void_no_close;
          Alcotest.test_case "mark roundtrip" `Quick test_mark_roundtrip;
          Alcotest.test_case "figure 1 sequences" `Quick test_figure1_sequences;
        ] );
      ( "abstraction",
        [
          Alcotest.test_case "symbol refinement" `Quick
            test_abstraction_symbols;
          Alcotest.test_case "refined tag sequences" `Quick
            test_tag_seq_refined;
        ] );
      ( "front",
        [
          Alcotest.test_case "tricky pages, both abstractions" `Quick
            test_front_tricky_pages;
          Alcotest.test_case "figure 1 pages" `Quick test_front_figure1;
          Alcotest.test_case "chunked ≡ one-shot at every cut" `Quick
            test_front_chunking_every_cut;
          Alcotest.test_case "unknown-symbol identity" `Quick
            test_front_unknown_symbol;
        ] );
    ]

(* Cross-cutting properties tying the layers together: order laws for ≼,
   sampled-word validation of synthesized wrappers, guided alignment,
   language sampling, and persistence roundtrips on randomly learned
   wrappers. *)

open Helpers

let p = Alphabet.find_exn ab_pq "p"
let ex s = Extraction.parse ab_pq s

(* --- partial-order laws for ≼ (Defn 4.4) --- *)

let arb_expr =
  QCheck.map
    (fun (l, r) -> Extraction.make ab_pq l p r)
    (QCheck.pair (arb_plain_regex ab_pq) (arb_plain_regex ab_pq))

let prop_preceq_reflexive =
  qtest ~count:60 "≼ is reflexive" arb_expr (fun e -> Expr_order.preceq e e)

let prop_preceq_transitive =
  qtest ~count:60 "≼ is transitive on language-ordered triples"
    (QCheck.triple (arb_plain_regex ab_pq) (arb_plain_regex ab_pq)
       (arb_plain_regex ab_pq))
    (fun (a, b, c) ->
      (* build a ⊆ a|b ⊆ a|b|c chains so the premise holds by construction *)
      let e1 = Extraction.make ab_pq a p a in
      let e2 = Extraction.make ab_pq (Regex.alt a b) p (Regex.alt a b) in
      let e3 =
        Extraction.make ab_pq
          (Regex.alt_list [ a; b; c ])
          p
          (Regex.alt_list [ a; b; c ])
      in
      Expr_order.preceq e1 e2 && Expr_order.preceq e2 e3
      && Expr_order.preceq e1 e3)

let prop_preceq_antisymmetric =
  qtest ~count:60 "mutual ≼ = equivalence" (QCheck.pair arb_expr arb_expr)
    (fun (e1, e2) ->
      if Expr_order.preceq e1 e2 && Expr_order.preceq e2 e1 then
        Expr_order.equivalent e1 e2
      else true)

let prop_preceq_implies_language_containment =
  qtest ~count:60 "f ≼ e ⇒ L(f) ⊆ L(e)" (QCheck.pair arb_expr arb_expr)
    (fun (f, e) ->
      if Expr_order.preceq f e then
        Lang.subset (Extraction.language f) (Extraction.language e)
      else true)

(* --- sampled members of synthesized languages extract uniquely --- *)

let arb_bounded_left =
  let open QCheck.Gen in
  let pfree = oneofl [ "q"; "q q"; "([^p])*"; "q*"; "(q q)*"; "q | q q" ] in
  let gen =
    let* a = pfree and* b = pfree in
    let* shape = int_bound 2 in
    return
      (match shape with
      | 0 -> a
      | 1 -> Printf.sprintf "%s p %s" a b
      | _ -> Printf.sprintf "%s p %s p q" a b)
  in
  QCheck.make ~print:Fun.id gen

let prop_sampled_members_extract_uniquely =
  qtest ~count:40 "random members of maximized languages split uniquely"
    (QCheck.pair arb_bounded_left QCheck.small_int)
    (fun (left_str, seed) ->
      let e = ex (left_str ^ " <p> .*") in
      match Synthesis.maximize e with
      | Error _ -> true
      | Ok (e', _) -> (
          let rng = Random.State.make [| seed |] in
          let lang = Extraction.language e' in
          match Lang.sample lang rng ~max_len:12 with
          | None -> true
          | Some word -> (
              match Extraction.extract e' word with
              | `Unique _ -> true
              | `Ambiguous _ | `No_match -> false)))

let prop_sample_is_member =
  qtest ~count:100 "Lang.sample produces members"
    (QCheck.pair (arb_plain_regex ab_pqr) QCheck.small_int)
    (fun (e, seed) ->
      let l = Lang.of_regex ab_pqr e in
      let rng = Random.State.make [| seed |] in
      match Lang.sample l rng ~max_len:10 with
      | None -> Lang.is_empty l || Lang.shortest l = None
        || Array.length (Option.get (Lang.shortest l)) > 10
      | Some w -> Lang.mem l w)

(* --- guided alignment --- *)

let prop_guided_is_common_subsequence =
  qtest ~count:100 "guided skeleton is a common subsequence"
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5) (arb_word ab_pq 8))
    (fun words ->
      let c = Align.lcs_many_guided words in
      List.for_all (fun w -> Align.carve w c <> None) words)

let test_guided_beats_bad_order () =
  (* naive fold order can be hurt by a degenerate first word; guided
     alignment seeds from the most similar pair instead *)
  let words = [ w ab_pq "q"; w ab_pq "pqpqpq"; w ab_pq "pqpqp" ] in
  let naive = Align.lcs_many words in
  let guided = Align.lcs_many_guided words in
  check_bool "guided at least as long" true
    (Array.length guided >= Array.length naive)

(* --- persistence of randomly learned wrappers --- *)

let prop_learned_wrappers_roundtrip =
  qtest ~count:15 "learned wrapper ≡ save/load of itself"
    (QCheck.make ~print:string_of_int QCheck.Gen.small_int)
    (fun seed ->
      let rng = Random.State.make [| seed; 17 |] in
      let base = Pagegen.generate rng (Pagegen.random_profile rng) in
      let variant = Perturb.perturb rng ~intensity:2 base in
      match (Pagegen.target_path base, Pagegen.target_path variant) with
      | Some pb, Some pv -> (
          match Wrapper.learn [ (base, pb); (variant, pv) ] with
          | Error _ -> true (* learning may legitimately fail; covered in E6 *)
          | Ok w -> (
              match Wrapper_io.of_string (Wrapper_io.to_string w) with
              | Error _ -> false
              | Ok w2 ->
                  let test = Perturb.perturb rng ~intensity:2 base in
                  Wrapper.extract w test = Wrapper.extract w2 test))
      | _ -> false)

(* --- maximality witnesses are actionable --- *)

let prop_left_witness_extends =
  qtest ~count:40 "Not_maximal_left witness extends the expression"
    arb_bounded_left
    (fun left_str ->
      let e = ex (left_str ^ " <p> q*") in
      if Ambiguity.is_ambiguous e then true
      else
        match Maximality.check e with
        | Maximality.Not_maximal_left wrd ->
            let bigger =
              Extraction.make ab_pq
                (Regex.alt e.Extraction.left (Regex.word wrd))
                p e.Extraction.right
            in
            Ambiguity.is_unambiguous bigger
            && Expr_order.strictly_below e bigger
        | Maximality.Not_maximal_right wrd ->
            let bigger =
              Extraction.make ab_pq e.Extraction.left p
                (Regex.alt e.Extraction.right (Regex.word wrd))
            in
            Ambiguity.is_unambiguous bigger
            && Expr_order.strictly_below e bigger
        | Maximality.Maximal | Maximality.Ambiguous_input _ -> true)

let () =
  Alcotest.run "props"
    [
      ( "order-laws",
        [
          prop_preceq_reflexive;
          prop_preceq_transitive;
          prop_preceq_antisymmetric;
          prop_preceq_implies_language_containment;
        ] );
      ( "sampling",
        [
          prop_sample_is_member;
          prop_sampled_members_extract_uniquely;
        ] );
      ( "alignment",
        [
          prop_guided_is_common_subsequence;
          Alcotest.test_case "guided beats bad order" `Quick
            test_guided_beats_bad_order;
        ] );
      ("persistence", [ prop_learned_wrappers_roundtrip ]);
      ("witnesses", [ prop_left_witness_extends ]);
    ]

(* Cross-cutting properties tying the layers together.

   The pure language/order/synthesis laws are generated and checked by
   the differential oracles in lib/oracle — this suite lifts them into
   alcotest via Helpers.of_oracle so `dune runtest` and `rexdex
   selftest` exercise the exact same properties with the exact same
   generators.  Only properties needing the html/learn/wrapper layers
   (alignment, persistence) remain hand-written here. *)

open Helpers

(* --- laws checked by the shared oracles (lib/oracle) --- *)

let order_law_tests = of_oracle ~count:60 Oracle_order.tests
let membership_tests = of_oracle ~count:100 Oracle_membership.tests
let synthesis_tests = of_oracle ~count:40 Oracle_synthesis.tests
let maximality_tests = of_oracle ~count:40 Oracle_maximality.tests

(* --- guided alignment --- *)

let prop_guided_is_common_subsequence =
  qtest ~count:100 "guided skeleton is a common subsequence"
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5) (arb_word ab_pq 8))
    (fun words ->
      let c = Align.lcs_many_guided words in
      List.for_all (fun w -> Align.carve w c <> None) words)

let test_guided_beats_bad_order () =
  (* naive fold order can be hurt by a degenerate first word; guided
     alignment seeds from the most similar pair instead *)
  let words = [ w ab_pq "q"; w ab_pq "pqpqpq"; w ab_pq "pqpqp" ] in
  let naive = Align.lcs_many words in
  let guided = Align.lcs_many_guided words in
  check_bool "guided at least as long" true
    (Array.length guided >= Array.length naive)

(* --- persistence of randomly learned wrappers --- *)

let prop_learned_wrappers_roundtrip =
  qtest ~count:15 "learned wrapper ≡ save/load of itself"
    (QCheck.make ~print:string_of_int QCheck.Gen.small_int)
    (fun seed ->
      let rng = Random.State.make [| seed; 17 |] in
      let base = Pagegen.generate rng (Pagegen.random_profile rng) in
      let variant = Perturb.perturb rng ~intensity:2 base in
      match (Pagegen.target_path base, Pagegen.target_path variant) with
      | Some pb, Some pv -> (
          match Wrapper.learn [ (base, pb); (variant, pv) ] with
          | Error _ -> true (* learning may legitimately fail; covered in E6 *)
          | Ok w -> (
              match Wrapper_io.of_string (Wrapper_io.to_string w) with
              | Error _ -> false
              | Ok w2 ->
                  let test = Perturb.perturb rng ~intensity:2 base in
                  Wrapper.extract w test = Wrapper.extract w2 test))
      | _ -> false)

let () =
  Alcotest.run "props"
    [
      ("order-laws", order_law_tests);
      ("membership", membership_tests);
      ("synthesis", synthesis_tests);
      ("maximality", maximality_tests);
      ( "alignment",
        [
          prop_guided_is_common_subsequence;
          Alcotest.test_case "guided beats bad order" `Quick
            test_guided_beats_bad_order;
        ] );
      ("persistence", [ prop_learned_wrappers_roundtrip ]);
    ]

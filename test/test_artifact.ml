(* The .rxc artifact store: wire-format round-trips, one test per
   structured load error, exhaustive truncation/bit-flip robustness on
   a fixed artifact, and the committed golden corpus (artifacts/) that
   pins the on-disk format across compiler and library versions. *)

open Helpers

let e_paper = Extraction.parse ab_pq "([^p])* <p> .*"
let artifact () = Artifact.of_extraction e_paper
let bytes () = Artifact.to_bytes (artifact ())

let tmp_file suffix =
  Filename.temp_file "rexdex_test_artifact" suffix

(* CRC-32 mirror of the artifact writer's, for tests that must corrupt
   the payload and still pass the checksum gate. *)
let crc32 s =
  let table =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
        done;
        !c)
  in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

let set_u32 b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

(* Rewrite payload bytes and restamp the CRC, so decoding reaches the
   structural checks behind the checksum gate. *)
let with_payload_patch bytes_str patch =
  let b = Bytes.of_string bytes_str in
  patch b;
  let payload = Bytes.sub_string b 16 (Bytes.length b - 16) in
  set_u32 b 12 (crc32 payload);
  Bytes.to_string b

let err_testable =
  Alcotest.testable Artifact.pp_error (fun a b ->
      Artifact.error_to_string a = Artifact.error_to_string b)

let check_error msg expected s =
  match Artifact.of_bytes s with
  | Ok _ -> Alcotest.failf "%s: expected rejection, got Ok" msg
  | Error e -> Alcotest.check err_testable msg expected e

(* --- round trips --- *)

let test_roundtrip_bytes () =
  let a = artifact () in
  match Artifact.of_bytes (Artifact.to_bytes a) with
  | Error e -> Alcotest.failf "rejected: %s" (Artifact.error_to_string e)
  | Ok b ->
      check_bool "structural equality" true (Artifact.equal a b);
      check_int "format version" 1 Artifact.format_version

let test_roundtrip_file () =
  let a = artifact () in
  let path = tmp_file ".rxc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Artifact.save a path;
      match Artifact.load path with
      | Error e -> Alcotest.failf "rejected: %s" (Artifact.error_to_string e)
      | Ok b -> check_bool "file round trip" true (Artifact.equal a b))

let all_words alpha max_len =
  let n = Alphabet.size alpha in
  let rec go len acc word =
    if len = 0 then Array.of_list (List.rev word) :: acc
    else
      List.fold_left
        (fun acc a -> go (len - 1) acc (a :: word))
        (Array.of_list (List.rev word) :: acc)
        (List.init n Fun.id)
  in
  go max_len [] []

let test_loaded_matcher_agrees () =
  let a = artifact () in
  match Artifact.of_bytes (Artifact.to_bytes a) with
  | Error e -> Alcotest.failf "rejected: %s" (Artifact.error_to_string e)
  | Ok b ->
      let m = Artifact.matcher b in
      List.iter
        (fun w ->
          Alcotest.(check (list int))
            (Word.to_string ab_pq w) (Extraction.splits e_paper w)
            (Extraction.matcher_splits m w))
        (all_words ab_pq 6)

(* --- one test per structured error --- *)

let test_truncated () =
  let s = bytes () in
  check_error "empty" Artifact.Truncated "";
  check_error "header cut" Artifact.Truncated (String.sub s 0 10);
  check_error "payload cut" Artifact.Truncated
    (String.sub s 0 (String.length s - 1))

let test_bad_magic () =
  let b = Bytes.of_string (bytes ()) in
  Bytes.set b 0 'X';
  check_error "corrupt magic" Artifact.Bad_magic (Bytes.to_string b)

let test_bad_version () =
  let b = Bytes.of_string (bytes ()) in
  set_u32 b 4 99;
  check_error "future version" (Artifact.Bad_version 99) (Bytes.to_string b)

let test_checksum_mismatch () =
  let s = bytes () in
  let b = Bytes.of_string s in
  let mid = 16 + ((String.length s - 16) / 2) in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
  check_error "flipped payload byte" Artifact.Checksum_mismatch
    (Bytes.to_string b)

let test_malformed_trailing () =
  check_error "trailing byte"
    (Artifact.Malformed "trailing bytes after the payload")
    (bytes () ^ "Z")

let test_malformed_behind_checksum () =
  (* Restamp the CRC after corrupting the payload: the structural
     decoder, not the checksum, must reject.  An absurd alphabet count
     and an out-of-range transition target both answer Malformed. *)
  let huge_names =
    with_payload_patch (bytes ()) (fun b -> set_u32 b 16 0xFFFFFF)
  in
  (match Artifact.of_bytes huge_names with
  | Error (Artifact.Malformed _) -> ()
  | Error e ->
      Alcotest.failf "expected Malformed, got %s" (Artifact.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Malformed, got Ok");
  let bad_delta =
    with_payload_patch (bytes ()) (fun b ->
        (* last u32 of the payload is the last transition target *)
        set_u32 b (Bytes.length b - 4) 0xFFFF)
  in
  match Artifact.of_bytes bad_delta with
  | Error (Artifact.Malformed _) -> ()
  | Error e ->
      Alcotest.failf "expected Malformed, got %s" (Artifact.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Malformed, got Ok"

let test_unreadable_file () =
  match Artifact.load "/nonexistent/rexdex/artifact.rxc" with
  | Error (Artifact.Malformed msg) ->
      check_bool "mentions the read failure" true
        (String.length msg >= 4 && String.sub msg 0 4 = "cann")
  | Error e ->
      Alcotest.failf "expected Malformed, got %s" (Artifact.error_to_string e)
  | Ok _ -> Alcotest.fail "expected an error"

(* --- exhaustive robustness on one artifact --- *)

let structured_reject msg s =
  match Artifact.of_bytes s with
  | Ok _ -> Alcotest.failf "%s: accepted" msg
  | Error _ -> ()
  | exception e ->
      Alcotest.failf "%s: raised %s" msg (Printexc.to_string e)

let test_every_truncation () =
  let s = bytes () in
  for k = 0 to String.length s - 1 do
    structured_reject (Printf.sprintf "prefix %d" k) (String.sub s 0 k)
  done

let test_every_bit_flip () =
  let s = bytes () in
  for i = 0 to String.length s - 1 do
    for j = 0 to 7 do
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl j)));
      structured_reject
        (Printf.sprintf "bit %d of byte %d" j i)
        (Bytes.to_string b)
    done
  done

(* --- statistics --- *)

let test_stats_counters () =
  let s0 = Artifact.stats () in
  (match Artifact.of_bytes (bytes ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected: %s" (Artifact.error_to_string e));
  structured_reject "truncation" (String.sub (bytes ()) 0 3);
  let s1 = Artifact.stats () in
  check_bool "loaded advanced" true (s1.Artifact.loaded > s0.Artifact.loaded);
  check_bool "rejected advanced" true
    (s1.Artifact.rejected > s0.Artifact.rejected)

(* --- the committed golden corpus ---

   Files under artifacts/ were produced by `rexdex compile` and are
   committed verbatim: every release must keep loading them, and the
   loaded matcher must still agree with a fresh compile of the stored
   expression — the format-stability contract. *)

let golden_files () =
  Sys.readdir "artifacts" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".rxc")
  |> List.sort String.compare
  |> List.map (Filename.concat "artifacts")

let test_golden_corpus_loads () =
  let files = golden_files () in
  check_bool "corpus is non-empty" true (List.length files >= 3);
  List.iter
    (fun f ->
      match Artifact.load f with
      | Error e -> Alcotest.failf "%s: %s" f (Artifact.error_to_string e)
      | Ok a ->
          let m = Artifact.matcher a in
          let fresh = Extraction.compile a.Artifact.expr in
          List.iter
            (fun w ->
              Alcotest.(check (list int))
                (f ^ ": " ^ Word.to_string a.Artifact.alpha w)
                (Extraction.matcher_splits fresh w)
                (Extraction.matcher_splits m w))
            (all_words a.Artifact.alpha 4))
    files

let test_golden_corpus_reencodes () =
  (* decode ∘ encode ∘ decode is the identity on every corpus file —
     the writer still speaks the committed dialect *)
  List.iter
    (fun f ->
      match Artifact.load f with
      | Error e -> Alcotest.failf "%s: %s" f (Artifact.error_to_string e)
      | Ok a -> (
          match Artifact.of_bytes (Artifact.to_bytes a) with
          | Error e ->
              Alcotest.failf "%s re-encode: %s" f (Artifact.error_to_string e)
          | Ok b ->
              check_bool (f ^ " re-encode round trip") true (Artifact.equal a b)
          ))
    (golden_files ())

let () =
  Alcotest.run "artifact"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "bytes round trip" `Quick test_roundtrip_bytes;
          Alcotest.test_case "file round trip" `Quick test_roundtrip_file;
          Alcotest.test_case "loaded matcher ≡ splits reference" `Quick
            test_loaded_matcher_agrees;
        ] );
      ( "structured-errors",
        [
          Alcotest.test_case "Truncated" `Quick test_truncated;
          Alcotest.test_case "Bad_magic" `Quick test_bad_magic;
          Alcotest.test_case "Bad_version" `Quick test_bad_version;
          Alcotest.test_case "Checksum_mismatch" `Quick test_checksum_mismatch;
          Alcotest.test_case "Malformed: trailing bytes" `Quick
            test_malformed_trailing;
          Alcotest.test_case "Malformed: behind a valid checksum" `Quick
            test_malformed_behind_checksum;
          Alcotest.test_case "unreadable file" `Quick test_unreadable_file;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "every truncation prefix" `Quick
            test_every_truncation;
          Alcotest.test_case "every single-bit flip" `Quick test_every_bit_flip;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "golden-corpus",
        [
          Alcotest.test_case "loads and agrees with fresh compile" `Quick
            test_golden_corpus_loads;
          Alcotest.test_case "re-encode is the identity" `Quick
            test_golden_corpus_reencodes;
        ] );
    ]

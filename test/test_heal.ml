(* Unit tests for the self-healing loop: the drift detector's trip
   rule, the quarantine ring's eviction discipline, re-labeling and
   re-synthesis, the manager's heal/fail paths, the generation cell,
   and the supervisor's healed-frame emission.  The differential
   properties (byte-inertness, jobs-invariance, the EWMA fold) live in
   lib/oracle/oracle_heal; this file pins the concrete contracts. *)

let samples =
  lazy
    (let top = Pagegen.figure1_top () in
     let bottom = Pagegen.figure1_bottom () in
     [
       (top, Option.get (Pagegen.target_path top));
       (bottom, Option.get (Pagegen.target_path bottom));
     ])

let wrapper =
  lazy
    (let samples = Lazy.force samples in
     let alpha = Wrapper.alphabet_for (List.map fst samples) in
     match Wrapper.learn ~alpha samples with
     | Ok w -> w
     | Error _ -> failwith "test_heal: Figure 1 wrapper failed to learn")

let drifted html = "<section>" ^ html ^ "</section>"

(* --- detector --- *)

let test_detector_trip () =
  let d = Heal.Detector.create ~window:4 ~threshold:0.5 ~min_samples:2 () in
  Alcotest.(check bool) "fresh: not tripped" false (Heal.Detector.tripped d);
  Heal.Detector.observe d ~ok:false;
  Alcotest.(check bool)
    "one failure: below min_samples" false
    (Heal.Detector.tripped d);
  Heal.Detector.observe d ~ok:false;
  (* rate = 0.25 + 0.75·0.25 = 0.4375 < 0.5: not yet *)
  Alcotest.(check bool) "two failures: not yet" false (Heal.Detector.tripped d);
  Heal.Detector.observe d ~ok:false;
  Alcotest.(check bool) "three failures: tripped" true (Heal.Detector.tripped d);
  Heal.Detector.reset d;
  Alcotest.(check bool) "reset: not tripped" false (Heal.Detector.tripped d);
  Alcotest.(check int) "reset: no observations" 0
    (Heal.Detector.observations d)

let test_detector_successes_hold_it_down () =
  let d = Heal.Detector.create ~window:4 ~threshold:0.5 ~min_samples:2 () in
  for _ = 1 to 50 do
    Heal.Detector.observe d ~ok:true
  done;
  Alcotest.(check bool) "all-ok never trips" false (Heal.Detector.tripped d);
  Alcotest.(check (float 0.0)) "all-ok rate is zero" 0.0 (Heal.Detector.rate d)

let test_detector_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool)
    "window < 1" true
    (raises (fun () -> Heal.Detector.create ~window:0 ()));
  Alcotest.(check bool)
    "min_samples < 1" true
    (raises (fun () -> Heal.Detector.create ~min_samples:0 ()));
  Alcotest.(check bool)
    "threshold = 1" true
    (raises (fun () -> Heal.Detector.create ~threshold:1.0 ()))

(* --- quarantine --- *)

let test_quarantine_ring () =
  let q = Heal.Quarantine.create ~capacity:3 ~max_page_bytes:8 () in
  Alcotest.(check int) "capacity" 3 (Heal.Quarantine.capacity q);
  Alcotest.(check bool) "add a" true (Heal.Quarantine.add q "a" = Heal.Quarantine.Added);
  Alcotest.(check bool) "add b" true (Heal.Quarantine.add q "b" = Heal.Quarantine.Added);
  Alcotest.(check bool) "add c" true (Heal.Quarantine.add q "c" = Heal.Quarantine.Added);
  Alcotest.(check bool)
    "add d evicts oldest" true
    (Heal.Quarantine.add q "d" = Heal.Quarantine.Evicted_oldest);
  Alcotest.(check (list string))
    "oldest-first, a evicted" [ "b"; "c"; "d" ]
    (Heal.Quarantine.pages q);
  Alcotest.(check bool)
    "oversize shed" true
    (Heal.Quarantine.add q "123456789" = Heal.Quarantine.Oversize_shed);
  Alcotest.(check (list string))
    "shed page never entered" [ "b"; "c"; "d" ]
    (Heal.Quarantine.pages q);
  Heal.Quarantine.clear q;
  Alcotest.(check int) "cleared" 0 (Heal.Quarantine.depth q)

(* --- relabel / resynthesize --- *)

let test_relabel_data_target () =
  let samples = Lazy.force samples in
  let alpha = Wrapper.alphabet_for (List.map fst samples) in
  let doc, path = List.hd samples in
  match Heal.relabel alpha None doc with
  | Some (p, `Data_target) ->
      Alcotest.(check (list int)) "mark recovered" path p
  | Some (_, `Lr) -> Alcotest.fail "expected the data-target mark, got LR"
  | None -> Alcotest.fail "expected a label"

let test_relabel_unlabelable () =
  let samples = Lazy.force samples in
  let alpha = Wrapper.alphabet_for (List.map fst samples) in
  let doc = Html_tree.parse "<p><b>no mark here</b>" in
  Alcotest.(check bool)
    "no mark, no locator: discarded" true
    (Heal.relabel alpha None doc = None)

let test_resynthesize_extracts_samples () =
  let samples = Lazy.force samples in
  let quarantined =
    List.map (fun (d, _) -> drifted (Html_tree.to_string d)) samples
  in
  match Heal.resynthesize ~samples ~quarantined () with
  | Error e -> Alcotest.fail ("re-synthesis failed: " ^ e)
  | Ok r ->
      Alcotest.(check int) "all quarantined pages used" 2 r.Heal.r_used;
      Alcotest.(check int) "none discarded" 0 r.Heal.r_discarded;
      List.iter
        (fun (d, p) ->
          match Wrapper.extract r.Heal.r_wrapper d with
          | Ok got -> Alcotest.(check (list int)) "original sample" p got
          | Error _ -> Alcotest.fail "healed wrapper lost a training sample")
        samples;
      (* and the healed wrapper extracts the drifted layout too *)
      List.iter
        (fun html ->
          match
            Wrapper.extract r.Heal.r_wrapper (Html_tree.parse html)
          with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "healed wrapper fails the drifted layout")
        quarantined

(* --- Wrapper.Gen --- *)

let test_generation_cell () =
  let w = Lazy.force wrapper in
  let g = Wrapper.Gen.make w in
  Alcotest.(check int) "starts at 0" 0 (Wrapper.Gen.generation g);
  let gen1 = Wrapper.Gen.swap g w in
  Alcotest.(check int) "swap bumps" 1 gen1;
  Alcotest.(check int) "visible" 1 (Wrapper.Gen.generation g);
  let doc = fst (List.hd (Lazy.force samples)) in
  Alcotest.(check bool)
    "Gen batch ≡ wrapper batch" true
    (Wrapper.Gen.extract_batch ~jobs:1 g [ doc ]
    = Wrapper.extract_batch ~jobs:1 w [ doc ])

(* --- manager --- *)

let heal_config =
  {
    Heal.default_config with
    Heal.window = 4;
    threshold = 0.4;
    min_samples = 2;
  }

let test_manager_heals () =
  let samples = Lazy.force samples in
  let m = Heal.Manager.create ~config:heal_config ~samples (Lazy.force wrapper) in
  Alcotest.(check int) "generation 0" 0 (Heal.Manager.generation m);
  Alcotest.(check bool) "no trip yet" true (Heal.Manager.maybe_heal m = Heal.Manager.No_trip);
  let bad = drifted (Html_tree.to_string (fst (List.hd samples))) in
  Heal.Manager.observe m ~ok:false ~page:(Some bad);
  Heal.Manager.observe m ~ok:false ~page:(Some bad);
  Heal.Manager.observe m ~ok:false ~page:(Some bad);
  (match Heal.Manager.maybe_heal m with
  | Heal.Manager.Healed { generation = 1; used } ->
      Alcotest.(check int) "pages used" 3 used
  | Heal.Manager.Healed _ -> Alcotest.fail "wrong generation"
  | Heal.Manager.No_trip -> Alcotest.fail "expected a trip"
  | Heal.Manager.Heal_failed e -> Alcotest.fail ("heal failed: " ^ e));
  Alcotest.(check int) "generation 1" 1 (Heal.Manager.generation m);
  (* evidence consumed: no immediate re-trip *)
  Alcotest.(check bool)
    "detector reset" true
    (Heal.Manager.maybe_heal m = Heal.Manager.No_trip);
  (* the healed wrapper extracts the drifted page *)
  match Wrapper.extract (Heal.Manager.wrapper m) (Html_tree.parse bad) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "healed wrapper fails the drifted layout"

let test_manager_heal_failure_is_contained () =
  let samples = Lazy.force samples in
  let m = Heal.Manager.create ~config:heal_config ~samples (Lazy.force wrapper) in
  (* the quarantined page's mark sits on a B element while the training
     marks are INPUTs: the §7 merge cannot reconcile the mark symbols,
     so the re-synthesis fails deterministically *)
  let bad = "<p><b data-target=\"1\">conflicting mark</b>" in
  Heal.Manager.observe m ~ok:false ~page:(Some bad);
  Heal.Manager.observe m ~ok:false ~page:(Some bad);
  Heal.Manager.observe m ~ok:false ~page:(Some bad);
  (match Heal.Manager.maybe_heal m with
  | Heal.Manager.Heal_failed _ -> ()
  | Heal.Manager.Healed _ -> Alcotest.fail "conflicting marks cannot re-learn"
  | Heal.Manager.No_trip -> Alcotest.fail "expected a trip");
  Alcotest.(check int) "generation unchanged" 0 (Heal.Manager.generation m);
  (* the detector resets even on failure: no heal-retry storm *)
  Alcotest.(check bool)
    "no immediate re-trip" true
    (Heal.Manager.maybe_heal m = Heal.Manager.No_trip)

(* --- session capture --- *)

let cap_alpha = Alphabet.make [ "p"; "q" ]
let cap_m = Extraction.compile (Extraction.parse cap_alpha "([^p])* <p> .*")

let test_session_capture () =
  let s =
    Session.create ~matcher:cap_m ~alpha:cap_alpha ~id:1 ~ordinal:0
      ~generation:3 ~capture:16 ()
  in
  Alcotest.(check int) "generation recorded" 3 (Session.generation s);
  Alcotest.(check bool) "empty capture" true (Session.captured_page s = None);
  Session.capture_chunk s "<p>half";
  Session.capture_chunk s "-rest";
  Alcotest.(check (option string))
    "chunks concatenate" (Some "<p>half-rest") (Session.captured_page s);
  Session.capture_chunk s "xxxxxxxxxxxxxxxxx";
  Alcotest.(check (option string))
    "overflow sheds the whole capture" None (Session.captured_page s);
  let t = Session.create ~matcher:cap_m ~alpha:cap_alpha ~id:2 ~ordinal:1 () in
  Session.capture_chunk t "<p>";
  Alcotest.(check bool)
    "capture off: no-op" true
    (Session.captured_page t = None)

let test_session_failed_flag () =
  let s = Session.create ~matcher:cap_m ~alpha:cap_alpha ~id:1 ~ordinal:0 () in
  ignore (Session.feed s [ "q" ]);
  ignore (Session.finish s);
  Alcotest.(check bool) "clean finish: not failed" false (Session.failed s);
  let t = Session.create ~matcher:cap_m ~alpha:cap_alpha ~id:2 ~ordinal:1 () in
  ignore (Session.feed t [ "zz" ]);
  Alcotest.(check bool) "bad symbol: failed" true (Session.failed t)

(* --- supervisor integration --- *)

let line fields = Obs.Json.to_string (Obs.Json.Obj fields)

let script_for ids html =
  List.concat_map
    (fun id ->
      let open Obs.Json in
      [
        line [ ("op", Str "open"); ("id", Int id) ];
        line [ ("op", Str "page"); ("id", Int id); ("html", Str html) ];
        line [ ("op", Str "close"); ("id", Int id) ];
      ])
    ids

let test_supervisor_emits_healed_frame () =
  let samples = Lazy.force samples in
  let w = Lazy.force wrapper in
  let m = Heal.Manager.create ~config:heal_config ~samples w in
  let sup =
    Supervisor.create
      {
        Supervisor.matcher = w.Wrapper.matcher;
        alpha = w.Wrapper.alpha;
        jobs = 1;
        max_sessions = 64;
        fuel = None;
        deadline_ms = None;
        retry_after_ms = 7;
        heal = Some m;
      }
  in
  let bad = drifted (Html_tree.to_string (fst (List.hd samples))) in
  (* batch 1: three drifting sessions fail and trip the detector; the
     healed frame comes after the batch's own frames *)
  let out1 = Supervisor.handle_batch sup (script_for [ 1; 2; 3 ] bad) in
  (match List.rev out1 with
  | Frame.Healed { generation = 1; used = 3 } :: _ -> ()
  | _ -> Alcotest.fail "expected a trailing healed frame");
  (* batch 2: the same drifted layout now extracts under generation 1 *)
  let out2 = Supervisor.handle_batch sup (script_for [ 4 ] bad) in
  Alcotest.(check bool)
    "post-heal session splits" true
    (List.exists (function Frame.Split _ -> true | _ -> false) out2);
  Alcotest.(check bool)
    "no second heal" true
    (List.for_all (function Frame.Healed _ -> false | _ -> true) out2)

let () =
  Alcotest.run "heal"
    [
      ( "detector",
        [
          Alcotest.test_case "trip and reset" `Quick test_detector_trip;
          Alcotest.test_case "successes hold it down" `Quick
            test_detector_successes_hold_it_down;
          Alcotest.test_case "validation" `Quick test_detector_validation;
        ] );
      ( "quarantine",
        [ Alcotest.test_case "ring discipline" `Quick test_quarantine_ring ] );
      ( "resynthesis",
        [
          Alcotest.test_case "relabel via data-target" `Quick
            test_relabel_data_target;
          Alcotest.test_case "unlabelable page discarded" `Quick
            test_relabel_unlabelable;
          Alcotest.test_case "keeps training samples" `Quick
            test_resynthesize_extracts_samples;
        ] );
      ( "generation",
        [ Alcotest.test_case "atomic cell" `Quick test_generation_cell ] );
      ( "manager",
        [
          Alcotest.test_case "heals on drift" `Quick test_manager_heals;
          Alcotest.test_case "failure contained" `Quick
            test_manager_heal_failure_is_contained;
        ] );
      ( "session",
        [
          Alcotest.test_case "page capture" `Quick test_session_capture;
          Alcotest.test_case "failed flag" `Quick test_session_failed_flag;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "healed frame emission" `Quick
            test_supervisor_emits_healed_frame;
        ] );
    ]

(* Tests for the budgeted-execution layer: fuel accounting, deadlines,
   escalation, three-valued verdicts on the Thm 5.12 blow-up family,
   batch isolation under injected faults, and the verdict cache's
   never-cache-Unknown guarantee. *)

open Helpers

let ex s = Extraction.parse ab_pq s

(* The E3 hard family: maximality of ([^p])* <p> (p|q)* q (p|q){k} is
   universality of the right side (Prop 5.11); its minimal DFA has
   2^(k+1) states, so every in-fuel budget below that exhausts. *)
let hard k =
  ex
    (Printf.sprintf "([^p])* <p> (p | q)* q %s"
       (String.concat " " (List.init k (fun _ -> "(p | q)"))))

(* --- Guard core --- *)

let test_charge_and_exhaust () =
  let b = Guard.Budget.make ~fuel:10 () in
  Guard.with_budget b (fun () -> Guard.charge ~stage:"s" 7);
  check_int "spent accumulates" 7 (Guard.Budget.spent b);
  check_bool "no budget outside scope" false (Guard.active ());
  (match Guard.with_budget b (fun () -> Guard.charge ~stage:"s" 7) with
  | () -> Alcotest.fail "expected Exhausted"
  | exception Guard.Exhausted r ->
      check_string "stage" "s" r.Guard.stage;
      check_int "spent at raise" 14 r.Guard.spent;
      check_int "limit" 10 r.Guard.limit);
  (* charges outside any budget are free *)
  Guard.charge ~stage:"s" 1_000_000

let test_budget_nesting () =
  let outer = Guard.Budget.make ~fuel:1000 () in
  let inner = Guard.Budget.make ~fuel:5 () in
  Guard.with_budget outer (fun () ->
      (match Guard.capture inner (fun () -> Guard.charge ~stage:"i" 6) with
      | Guard.Unknown r -> check_int "inner limit" 5 r.Guard.limit
      | Guard.Decided () -> Alcotest.fail "inner should exhaust");
      (* the outer budget is restored and still live *)
      Guard.charge ~stage:"o" 900);
  check_int "outer untouched by inner charges" 900 (Guard.Budget.spent outer)

let test_deadline_fires () =
  let b = Guard.Budget.make ~fuel:max_int ~deadline_ms:10 () in
  match
    Guard.capture b (fun () ->
        while true do
          Guard.charge ~stage:"loop" 1
        done)
  with
  | Guard.Unknown r -> check_string "deadline stage" "deadline" r.Guard.stage
  | Guard.Decided _ -> Alcotest.fail "infinite loop cannot decide"

let test_escalation () =
  check_bool "ladder doubles" true
    (Guard.escalation_steps ~fuel:100 ~retries:3 = [ 100; 200; 400; 800 ]);
  check_bool "ladder saturates at max_int" true
    (Guard.escalation_steps ~fuel:((max_int / 2) + 1) ~retries:2
    = [ (max_int / 2) + 1; max_int; max_int ]);
  (* a task needing 150 fuel: fails at 100, succeeds at 200 *)
  let attempts = ref 0 in
  (match
     Guard.with_escalation ~steps:[ 100; 200 ] (fun () ->
         incr attempts;
         Guard.charge ~stage:"t" 150;
         "done")
   with
  | Guard.Decided v -> check_string "decided on retry" "done" v
  | Guard.Unknown _ -> Alcotest.fail "200 fuel suffices");
  check_int "two attempts" 2 !attempts;
  (* all steps exhaust: the last attempt's reason is reported *)
  match
    Guard.with_escalation ~steps:[ 10; 20 ] (fun () ->
        Guard.charge ~stage:"t" 1000)
  with
  | Guard.Unknown r -> check_int "last step's limit" 20 r.Guard.limit
  | Guard.Decided () -> Alcotest.fail "cannot decide"

let test_reason_format () =
  let r = { Guard.stage = "determinize"; spent = 42; limit = 40 } in
  check_string "machine-readable" "UNKNOWN(determinize,42)"
    (Guard.reason_to_string r)

(* --- bounded decision procedures on the blow-up family --- *)

let test_bounded_unknown_on_hard () =
  Runtime.reset ();
  let e = hard 8 in
  let tiny = Guard.Budget.make ~fuel:200 () in
  (match Maximality.check_bounded ~budget:tiny e with
  | Guard.Unknown r ->
      check_string "exhausts in determinize" "determinize" r.Guard.stage;
      check_bool "spent just past limit" true (r.Guard.spent > 200)
  | Guard.Decided _ -> Alcotest.fail "2^9 states cannot fit in 200 fuel");
  (* ample fuel decides, and agrees with the unbounded procedure *)
  let ample = Guard.Budget.make ~fuel:max_int () in
  match Maximality.check_bounded ~budget:ample e with
  | Guard.Decided v -> check_bool "agrees with unbounded" true (v = Maximality.check e)
  | Guard.Unknown _ -> Alcotest.fail "max_int fuel cannot exhaust"

let test_bounded_ambiguity_and_order () =
  let e1 = ex "([^p])* <p> .*" and e2 = ex "(p | q)* <p> .*" in
  let b () = Guard.Budget.make ~fuel:max_int () in
  check_bool "ambiguity decided" true
    (Ambiguity.is_ambiguous_bounded ~budget:(b ()) e1
    = Guard.Decided (Ambiguity.is_ambiguous e1));
  check_bool "witness decided" true
    (Ambiguity.witness_bounded ~budget:(b ()) e2
    = Guard.Decided (Ambiguity.witness e2));
  check_bool "preceq decided" true
    (Expr_order.preceq_bounded ~budget:(b ()) e1 e2
    = Guard.Decided (Expr_order.preceq e1 e2));
  check_bool "equivalent decided" true
    (Expr_order.equivalent_bounded ~budget:(b ()) e1 e2
    = Guard.Decided (Expr_order.equivalent e1 e2));
  (* a tiny budget turns the same questions into Unknown, not lies *)
  let starved = Guard.Budget.make ~fuel:1 () in
  match Expr_order.preceq_bounded ~budget:starved e1 e2 with
  | Guard.Unknown _ -> ()
  | Guard.Decided v ->
      check_bool "if decided under starvation, still exact" true
        (v = Expr_order.preceq e1 e2)

(* --- verdict cache: Unknown is transient --- *)

let test_unknown_never_cached () =
  Runtime.reset ();
  let e = hard 8 in
  let tiny = Guard.Budget.make ~fuel:200 () in
  (match Runtime.check_maximality_bounded ~budget:tiny e with
  | Guard.Unknown _ -> ()
  | Guard.Decided _ -> Alcotest.fail "200 fuel cannot build 2^9 states");
  let s1 = Runtime.stats () in
  (* the exhausted attempt must not have cached a verdict: the retry
     misses the decision cache (recomputes) rather than replaying a
     stale Unknown — and with enough fuel it decides *)
  let ample = Guard.Budget.make ~fuel:max_int () in
  (match Runtime.check_maximality_bounded ~budget:ample e with
  | Guard.Decided v ->
      check_bool "retry decides exactly" true (v = Maximality.check e)
  | Guard.Unknown _ -> Alcotest.fail "ample retry must decide");
  let s2 = Runtime.stats () in
  check_bool "retry was a decision-cache miss, not a stale hit" true
    (s2.Runtime.Stats.decision.misses > s1.Runtime.Stats.decision.misses);
  (* and now the Decided verdict IS cached: a third call hits *)
  let s3 = Runtime.stats () in
  ignore (Runtime.check_maximality e);
  let s4 = Runtime.stats () in
  check_bool "decided verdict cached for the unbounded path" true
    (s4.Runtime.Stats.decision.hits > s3.Runtime.Stats.decision.hits)

(* --- batch isolation --- *)

let test_batch_isolated_poison () =
  let xs = List.init 11 Fun.id in
  let f x = if x = 5 then failwith "poisoned" else x * 10 in
  let results = List.map (fun jobs -> Batch.map_isolated ~jobs f xs) [ 1; 2; 4 ] in
  (match results with
  | r1 :: rest ->
      List.iter
        (fun r -> check_bool "order identical across -j" true (r = r1))
        rest;
      List.iteri
        (fun i cell ->
          if i = 5 then
            check_bool "poisoned cell is Error" true (Result.is_error cell)
          else check_bool "other items unaffected" true (cell = Ok (i * 10)))
        r1
  | [] -> assert false);
  (* Guard exhaustion in one item is likewise contained *)
  let g x =
    if x = 3 then
      match Guard.run ~fuel:1 (fun () -> Guard.charge ~stage:"s" 2) with
      | Guard.Unknown r -> raise (Guard.Exhausted r)
      | Guard.Decided () -> x
    else x
  in
  let cells = Batch.map_isolated ~jobs:2 g xs in
  List.iteri
    (fun i cell ->
      if i = 3 then
        match cell with
        | Error msg ->
            check_bool "Exhausted rendered" true
              (String.length msg > 0
              && String.sub msg 0 5 = "Guard")
        | Ok _ -> Alcotest.fail "item 3 must error"
      else check_bool "rest fine" true (cell = Ok i))
    cells

let test_batch_injected_faults () =
  Guard_faults.arm Guard_faults.Batch_item ~at:[ 2; 7 ];
  Fun.protect ~finally:Guard_faults.disarm @@ fun () ->
  let xs = List.init 10 Fun.id in
  let f x = x + 100 in
  List.iter
    (fun jobs ->
      let cells = Batch.map_isolated ~jobs f xs in
      List.iteri
        (fun i cell ->
          if i = 2 || i = 7 then
            check_bool
              (Printf.sprintf "jobs=%d faulted %d" jobs i)
              true (Result.is_error cell)
          else
            check_bool
              (Printf.sprintf "jobs=%d clean %d" jobs i)
              true
              (cell = Ok (i + 100)))
        cells)
    [ 1; 2; 4 ]

(* --- fault injection at the cache layer --- *)

let test_cache_fault_degrades_and_recovers () =
  Runtime.reset ();
  Guard_faults.arm Guard_faults.Cache_lookup ~at:[ 1 ];
  (Fun.protect ~finally:Guard_faults.disarm @@ fun () ->
   match Lang.of_regex ab_pq (rx ab_pq "(q p)* q") with
   | exception Guard_faults.Injected { site; _ } ->
       check_string "fired at the cache" "cache-lookup" site
   | _ -> Alcotest.fail "armed lookup must fire");
  (* disarmed: the same compilation now succeeds and is correct *)
  let l = Lang.of_regex ab_pq (rx ab_pq "(q p)* q") in
  check_bool "recovers after disarm" true (Lang.mem l (w ab_pq "q"))

let test_determinize_fault_fires_mid_construction () =
  Runtime.reset ();
  Guard_faults.arm Guard_faults.Determinize ~at:[ 3 ];
  (Fun.protect ~finally:Guard_faults.disarm @@ fun () ->
   match Lang.of_regex ab_pq (rx ab_pq "(p | q)* q (p | q) (p | q)") with
   | exception Guard_faults.Injected { site; hit } ->
       check_string "fired mid-determinization" "determinize" site;
       check_int "on the armed state count" 3 hit
   | _ -> Alcotest.fail "armed determinize must fire");
  Runtime.reset ();
  let l = Lang.of_regex ab_pq (rx ab_pq "(p | q)* q (p | q) (p | q)") in
  check_bool "clean rebuild after disarm" true (Lang.mem l (w ab_pq "q p p"))

let () =
  Alcotest.run "guard"
    [
      ( "budget",
        [
          Alcotest.test_case "charge and exhaust" `Quick test_charge_and_exhaust;
          Alcotest.test_case "nesting restores" `Quick test_budget_nesting;
          Alcotest.test_case "deadline fires" `Quick test_deadline_fires;
          Alcotest.test_case "escalation ladder" `Quick test_escalation;
          Alcotest.test_case "UNKNOWN format" `Quick test_reason_format;
        ] );
      ( "bounded-decisions",
        [
          Alcotest.test_case "hard family: Unknown then Decided" `Quick
            test_bounded_unknown_on_hard;
          Alcotest.test_case "ambiguity/witness/order bounded" `Quick
            test_bounded_ambiguity_and_order;
          Alcotest.test_case "Unknown never cached (regression)" `Quick
            test_unknown_never_cached;
        ] );
      ( "batch-isolation",
        [
          Alcotest.test_case "poisoned item contained" `Quick
            test_batch_isolated_poison;
          Alcotest.test_case "injected faults contained" `Quick
            test_batch_injected_faults;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "cache-lookup fault" `Quick
            test_cache_fault_degrades_and_recovers;
          Alcotest.test_case "mid-determinize fault" `Quick
            test_determinize_fault_fires_mid_construction;
        ] );
      ( "oracle",
        [
          ( "guard oracles",
            `Quick,
            fun () ->
              ignore
                (List.map
                   (fun t ->
                     QCheck.Test.check_exn
                       ~rand:(Random.State.make [| qcheck_seed |])
                       t)
                   (Oracle_guard.tests ~count:40)) );
        ] );
    ]

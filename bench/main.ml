(* Experiment harness: regenerates every table/figure of EXPERIMENTS.md.

   The paper (PODS 2000) is an extended abstract whose only figure is the
   Figure 1 example; experiments E2-E7 operationalize its formal claims
   (see DESIGN.md §4).  Run:  dune exec bench/main.exe  [E1 E2 ... E8]
   (no arguments = all experiments). *)

let ab_pq = Alphabet.make [ "p"; "q" ]
let p = Alphabet.find_exn ab_pq "p"
let ex s = Extraction.parse ab_pq s

let banner name title =
  Printf.printf "\n===== %s: %s =====\n%!" name title

(* Median-of-k wall-clock timing for the scaling experiments.  One
   explicit unsampled warm-up run precedes the samples, so first-touch
   costs (page faults, lazy allocation, branch-predictor cold start)
   never land in the first sample and skew small medians. *)
let time_ms ?(reps = 5) f =
  ignore (Sys.opaque_identity (f ()));
  let samples =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (List.length sorted / 2)

(* ----- E1: Figure 1 / §7 walkthrough ----- *)

let e1 () =
  banner "E1" "Figure 1 / par.7 shopbot walkthrough";
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Wrapper.alphabet_for [ top; bottom ] in
  Printf.printf "top    = %s\n" (Word.to_string alpha (Tag_seq.of_doc alpha top));
  Printf.printf "bottom = %s\n"
    (Word.to_string alpha (Tag_seq.of_doc alpha bottom));
  let pt = Option.get (Pagegen.target_path top) in
  let pb = Option.get (Pagegen.target_path bottom) in
  match Wrapper.learn ~alpha [ (top, pt); (bottom, pb) ] with
  | Error e -> Format.printf "LEARNING FAILED: %a@." Wrapper.pp_learn_error e
  | Ok w ->
      (match w.Wrapper.strategy with
      | Some s -> Format.printf "strategy: %a@." (Synthesis.pp_strategy alpha) s
      | None -> ());
      Printf.printf "unambiguous=%b maximal=%b\n"
        (Ambiguity.is_unambiguous w.Wrapper.expr)
        (Maximality.is_maximal w.Wrapper.expr);
      let case name doc =
        match (Pagegen.target_path doc, Wrapper.extract w doc) with
        | Some truth, Ok path ->
            Printf.printf "| %-34s | %s |\n" name
              (if path = truth then "extracted correctly" else "WRONG NODE")
        | _, Error e ->
            Format.printf "| %-34s | FAILED: %a |@." name
              Wrapper.pp_extract_error e
        | None, _ -> Printf.printf "| %-34s | lost target |\n" name
      in
      Printf.printf "\n| page variant | result |\n|---|---|\n";
      case "Figure 1 top (training)" top;
      case "Figure 1 bottom (training)" bottom;
      case "deterministic par.3 redesign" (Perturb.figure1_rearrangement top);
      let rng = Random.State.make [| 1 |] in
      List.iter
        (fun i ->
          case
            (Printf.sprintf "top + %d random edits" i)
            (Perturb.perturb rng ~intensity:i top))
        [ 1; 2; 4; 8 ]

(* ----- E2: ambiguity-test scaling (Thm 5.6: polynomial) ----- *)

let e2 () =
  banner "E2" "ambiguity test scaling (Thm 5.6 -- polynomial time)";
  Printf.printf
    "family: (qp){k} <p> Sigma* (unambiguous) and p* p{k} <p> p* (ambiguous)\n";
  Printf.printf
    "| k | regex size | unamb: ms | growth | amb: ms |\n|---|---|---|---|---|\n";
  let prev = ref None in
  List.iter
    (fun k ->
      let e_un = ex (Printf.sprintf "(q p){%d} <p> .*" k) in
      let e_am = ex (Printf.sprintf "p* p{%d} <p> p*" k) in
      let t_un = time_ms (fun () -> Ambiguity.is_ambiguous e_un) in
      let t_am = time_ms (fun () -> Ambiguity.is_ambiguous e_am) in
      assert (not (Ambiguity.is_ambiguous e_un));
      assert (Ambiguity.is_ambiguous e_am);
      let growth =
        match !prev with
        | Some t when t > 0.0001 -> Printf.sprintf "x%.1f" (t_un /. t)
        | _ -> "-"
      in
      prev := Some t_un;
      Printf.printf "| %3d | %4d | %8.3f | %6s | %8.3f |\n" k
        (Regex.size e_un.Extraction.left)
        t_un growth t_am)
    [ 2; 4; 8; 16; 32; 64; 128 ];
  Printf.printf
    "shape check: doubling k multiplies the time by a bounded factor\n\
     (polynomial growth), matching the Thm 5.6 claim.\n"

(* ----- E3: maximality-test cost (Thm 5.12: PSPACE-complete) ----- *)

let e3 () =
  banner "E3" "maximality test cost (Thm 5.12 -- PSPACE shape)";
  Printf.printf
    "hard family:   ([^p])* <p> (p|q)* q (p|q){k}   (Prop 5.11: deciding its\n\
    \  maximality IS universality of the right side; minimal DFA = 2^(k+1))\n";
  Printf.printf "benign family: ([^p])* <p> (q p){k} (p|q)*  (linear DFA)\n\n";
  Printf.printf "| k | hard states | hard ms | benign states | benign ms |\n";
  Printf.printf "|---|---|---|---|---|\n";
  List.iter
    (fun k ->
      let lookbehind =
        Printf.sprintf "(p | q)* q %s"
          (String.concat " " (List.init k (fun _ -> "(p | q)")))
      in
      let hard = ex (Printf.sprintf "([^p])* <p> %s" lookbehind) in
      let hard_states = Lang.state_count (Extraction.right_lang hard) in
      let t_hard = time_ms ~reps:3 (fun () -> Maximality.check hard) in
      let benign = ex (Printf.sprintf "([^p])* <p> (q p){%d} (p | q)*" k) in
      let benign_states = Lang.state_count (Extraction.right_lang benign) in
      let t_benign = time_ms ~reps:3 (fun () -> Maximality.check benign) in
      Printf.printf "| %2d | %6d | %9.3f | %4d | %8.3f |\n" k hard_states
        t_hard benign_states t_benign)
    [ 2; 3; 4; 5; 6; 7; 8; 9 ];
  Printf.printf
    "shape check: the hard family's cost tracks its exponential state count;\n\
     the benign family stays flat -- the PSPACE wall only bites adversarial\n\
     inputs, not wrapper-sized ones.\n"

(* ----- E4: Algorithm 6.2 scaling ----- *)

let e4 () =
  banner "E4" "left-filtering maximization scaling (Algorithm 6.2, Prop 6.5)";
  Printf.printf
    "family: (q p){n} <p> Sigma* -- the left side matches exactly n p's, so\n\
     the algorithm runs n+1 filter iterations.\n\n";
  Printf.printf
    "| n | ms | result DFA states | unambiguous | maximal | generalizes |\n";
  Printf.printf "|---|---|---|---|---|---|\n";
  List.iter
    (fun n ->
      let e = ex (Printf.sprintf "(q p){%d} <p> .*" n) in
      let t = time_ms ~reps:3 (fun () -> Left_filter.maximize e) in
      match Left_filter.maximize e with
      | Error err ->
          Format.printf "| %2d | FAILED: %a |@." n Left_filter.pp_error err
      | Ok e' ->
          Printf.printf "| %2d | %8.2f | %4d | %b | %b | %b |\n" n t
            (Lang.state_count (Extraction.left_lang e'))
            (Ambiguity.is_unambiguous e')
            (Maximality.is_maximal e')
            (Expr_order.preceq e e'))
    [ 1; 2; 3; 4; 6; 8; 10; 12 ]

(* ----- E5: pivot vs plain left-filtering ----- *)

let e5 () =
  banner "E5" "pivot maximization vs plain left-filtering (par.6 discussion)";
  Printf.printf
    "| expression | Alg 6.2 alone | pivots | synthesized | maximal |\n";
  Printf.printf "|---|---|---|---|---|\n";
  List.iter
    (fun s ->
      let e = ex (s ^ " <p> .*") in
      let plain =
        match Left_filter.maximize e with
        | Ok _ -> "ok"
        | Error Left_filter.Unbounded_mark_count -> "inapplicable"
        | Error (Left_filter.Ambiguous _) -> "ambiguous"
        | Error _ -> "error"
      in
      let decomp =
        match Pivot.auto_decompose ab_pq e.Extraction.left p with
        | Some d ->
            if d.Pivot.pivots = [] then "none"
            else
              String.concat "," (List.map (Alphabet.name ab_pq) d.Pivot.pivots)
        | None -> "-"
      in
      match Synthesis.maximize e with
      | Ok (e', _) ->
          Printf.printf "| %-14s | %-12s | %-8s | ok | %b |\n" s plain decomp
            (Maximality.is_maximal e')
      | Error f ->
          Format.printf "| %-14s | %-12s | %-8s | failed: %a | - |@." s plain
            decomp (Synthesis.pp_failure ab_pq) f)
    [
      "q p"; "q q p q"; "p* q"; "(p p)* q"; "(q p)* q"; "p* q p* q";
      "(q | q q) p"; "(q p)*";
    ];
  Printf.printf
    "shape check: bounded-p expressions fall to Alg 6.2 alone; unbounded-p\n\
     ones need (and get) pivots; (q p)* has no usable pivot and is reported\n\
     as outside both classes -- the honesty par.8 asks for.\n"

(* ----- E6: resilience ----- *)

let e6 () =
  banner "E6" "wrapper resilience under page edits (the par.1/par.3 claim)";
  (* per-trial rows (seed, intensity, per-extractor verdicts, the
     applied op trace) as one JSON object per line — the raw material
     failure analyses can slice without re-running the experiment *)
  let trials_path =
    Option.value
      (Sys.getenv_opt "BENCH_RESILIENCE_TRIALS")
      ~default:"BENCH_resilience_trials.jsonl"
  in
  let oc = open_out trials_path in
  let sink j =
    output_string oc (Obs.Json.to_string j);
    output_char oc '\n'
  in
  let rows =
    Resilience.evaluate ~sink ~seed:42 ~trials:30
      ~intensities:[ 0; 1; 2; 4; 6; 8 ] ()
  in
  close_out oc;
  Format.printf "%a@." Resilience.pp_table rows;
  Printf.printf "wrote %s\n" trials_path;
  Printf.printf
    "shape check: maximized >> LR > merged > rigid at every nonzero\n\
     intensity; absolute numbers depend on the perturbation mix, the\n\
     ordering does not.\n"

(* ----- E7: Example 4.7, non-uniqueness of maximization ----- *)

let e7 () =
  banner "E7" "Example 4.7 -- qp<p>Sigma* has multiple maximizations";
  let input = ex "q p <p> .*" in
  let via_alg = Result.get_ok (Left_filter.maximize input) in
  let paper = ex "(q p ([^p])*) | (([^p])* - q) <p> .*" in
  let other = ex "([^p])* p ([^p])* <p> .*" in
  Printf.printf "| expression | unambiguous | maximal | generalizes input |\n";
  Printf.printf "|---|---|---|---|\n";
  List.iter
    (fun (name, e) ->
      Printf.printf "| %-28s | %b | %b | %b |\n" name
        (Ambiguity.is_unambiguous e)
        (Maximality.is_maximal e)
        (Expr_order.preceq input e))
    [
      ("input qp<p>Sigma*", input);
      ("Algorithm 6.2 output", via_alg);
      ("paper's Example 4.7 result", paper);
      ("(Sigma-p)* p (Sigma-p)* <p>", other);
    ];
  Printf.printf "Alg 6.2 output == paper's result: %b\n"
    (Expr_order.equivalent via_alg paper);
  Printf.printf "the two maximizations differ:    %b\n"
    (not (Expr_order.equivalent paper other))

(* ----- E8: decision-procedure microbenches (Bechamel) ----- *)

let e8 () =
  banner "E8" "decision-procedure microbenchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let l1 = Lang.parse ab_pq "(q p)* ([^p])* q" in
  let l2 = Lang.parse ab_pq "(p | q)* q (p | q) (p | q)" in
  let e_fig = ex "([^p])* p ([^p])* <p> .*" in
  let e_amb = ex "p* <p> p*" in
  let big_word =
    Word.of_list (List.init 2000 (fun i -> if i mod 3 = 0 then p else 1 - p))
  in
  let matcher = Extraction.compile e_fig in
  let tests =
    [
      Test.make ~name:"suffix-quotient"
        (Staged.stage (fun () -> Lang.suffix_quotient l1 l2));
      Test.make ~name:"prefix-quotient"
        (Staged.stage (fun () -> Lang.prefix_quotient l2 l1));
      Test.make ~name:"filter-count(3)"
        (Staged.stage (fun () -> Lang.filter_count l1 ~sym:p 3));
      Test.make ~name:"ambiguity-quotient-5.4"
        (Staged.stage (fun () -> Ambiguity.is_ambiguous e_fig));
      Test.make ~name:"ambiguity-marker-5.5"
        (Staged.stage (fun () -> Ambiguity.is_ambiguous_marker e_fig));
      Test.make ~name:"ambiguity-witness"
        (Staged.stage (fun () -> Ambiguity.witness e_amb));
      Test.make ~name:"maximality-cor-5.8"
        (Staged.stage (fun () -> Maximality.check e_fig));
      Test.make ~name:"left-filter-alg-6.2"
        (Staged.stage (fun () -> Left_filter.maximize (ex "(q p){3} <p> .*")));
      Test.make ~name:"extract-2000-tokens"
        (Staged.stage (fun () -> Extraction.matcher_splits matcher big_word));
    ]
  in
  let grouped = Test.make_grouped ~name:"ops" ~fmt:"%s/%s" tests in
  let cfg = Benchmark.cfg ~limit:200 ~stabilize:true ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "| operation | ns/run |\n|---|---|\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    results;
  List.iter
    (fun (name, est) -> Printf.printf "| %-32s | %12.0f |\n" name est)
    (List.sort compare !rows)

(* ----- E9: ablation — abstraction granularity ----- *)

let e9 () =
  banner "E9" "ablation: tag-only vs attribute-refined abstraction (par.3)";
  Printf.printf
    "same protocol as E6 (20 trials/intensity, seed 7), two page->token\n\
     abstractions: plain tags, and INPUT refined by its type attribute.\n\n";
  let run abs =
    Resilience.evaluate ~abs ~seed:7 ~trials:20 ~intensities:[ 1; 3; 6 ] ()
  in
  let plain = run Abstraction.Tags in
  let refined = run (Abstraction.Tags_with_attrs [ ("INPUT", "type") ]) in
  Printf.printf
    "| intensity | tags: maximized %% | tags: LR %% | refined: maximized %% | \
     refined: LR %% |\n|---|---|---|---|---|\n";
  let pct n d = if d = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int d in
  List.iter2
    (fun (p : Resilience.row) (r : Resilience.row) ->
      let eff (c : Resilience.counts) = c.Resilience.trials - c.Resilience.learn_failures in
      Printf.printf "| %d | %.1f | %.1f | %.1f | %.1f |\n" p.Resilience.intensity
        (pct p.Resilience.counts.Resilience.maximized (eff p.Resilience.counts))
        (pct p.Resilience.counts.Resilience.lr (eff p.Resilience.counts))
        (pct r.Resilience.counts.Resilience.maximized (eff r.Resilience.counts))
        (pct r.Resilience.counts.Resilience.lr (eff r.Resilience.counts)))
    plain refined;
  Printf.printf
    "reading: refining INPUT by type gives every method a sharper anchor\n\
     (the target symbol INPUT:type=text is rarer than INPUT), which mostly\n\
     helps the weaker methods; the maximized wrapper is already near its\n\
     ceiling.  The trade-off is a page-dependent alphabet (unseen attribute\n\
     values become Unknown_tag failures).\n"

(* ----- E10: ablation — pivot preference in the synthesizer ----- *)

let e10 () =
  banner "E10"
    "ablation: pivot-first synthesis vs direct Algorithm 6.2 (par.7 endnote)";
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Wrapper.alphabet_for [ top; bottom ] in
  let pt = Option.get (Pagegen.target_path top) in
  let pb = Option.get (Pagegen.target_path bottom) in
  (* merged-but-unmaximized wrapper gives us the raw expression *)
  match Wrapper.learn ~maximize:false ~alpha [ (top, pt); (bottom, pb) ] with
  | Error e -> Format.printf "learning failed: %a@." Wrapper.pp_learn_error e
  | Ok raw -> (
      let merged = raw.Wrapper.expr in
      let pivot_based =
        match Synthesis.maximize merged with
        | Ok (e, _) -> Some e
        | Error _ -> None
      in
      let direct = Result.to_option (Left_filter.maximize merged) in
      match (pivot_based, direct) with
      | Some piv, Some dir ->
          let survival expr =
            let m = Extraction.compile expr in
            let rng = Random.State.make [| 31 |] in
            let ok = ref 0 and total = 40 in
            for _ = 1 to total do
              let page = Perturb.perturb rng ~intensity:4 top in
              match Pagegen.target_path page with
              | None -> ()
              | Some truth -> (
                  match Tag_seq.mark_of_path alpha page truth with
                  | None -> ()
                  | Some (word, pos) -> (
                      match Extraction.matcher_extract m word with
                      | `Unique i when i = pos -> incr ok
                      | `Unique _ | `Ambiguous _ | `No_match -> ()))
            done;
            (!ok, total)
          in
          let ps, total = survival piv in
          let ds, _ = survival dir in
          Printf.printf
            "| maximization route | maximal? | survival at intensity 4 |\n";
          Printf.printf "|---|---|---|\n";
          Printf.printf "| pivot-first (our default) | %b | %d/%d |\n"
            (Maximality.is_maximal piv) ps total;
          Printf.printf "| direct Algorithm 6.2 | %b | %d/%d |\n"
            (Maximality.is_maximal dir) ds total;
          Printf.printf
            "both routes are provably maximal; they are maximal in DIFFERENT\n\
             directions.  The paper's par.7 endnote predicts the direct route\n\
             keys on 'the second INPUT on the page' and is the worse wrapper;\n\
             the survival gap above is that prediction, measured.\n"
      | _ -> Printf.printf "a maximization route failed; see E1/E5\n")

(* ----- E11: differential-oracle campaign throughput ----- *)

let e11 () =
  banner "E11" "selftest oracle throughput (cases/s by campaign size)";
  Printf.printf "| budget | cases | violations | median ms | cases/s |\n";
  Printf.printf "|---|---|---|---|---|\n";
  List.iter
    (fun budget ->
      let outcomes = ref [] in
      let t =
        time_ms ~reps:3 (fun () ->
            outcomes := Oracle_harness.run ~seed:11 ~budget Oracle_harness.all)
      in
      let cases = Oracle_harness.total_cases !outcomes in
      let violations = Oracle_harness.total_violations !outcomes in
      Printf.printf "| %d | %d | %d | %.1f | %.0f |\n" budget cases violations
        t
        (float_of_int cases /. (t /. 1000.0)))
    [ 100; 500; 2000 ];
  Printf.printf
    "the campaign is CPU-bound in DFA construction (quotients dominate);\n\
     throughput is flat in the budget because the per-case cost is set by\n\
     expression size, which the generators hold constant.\n"

(* ----- E12: compiled-extraction runtime — cache and multicore batch ----- *)

(* Decision-procedure corpus: the E2/E3/E4 families at wrapper-like
   sizes.  Every expression funnels through the shared regex→DFA
   pipeline, so a warm cache turns the whole sweep into LRU hits.
   Shared by E12 (cache/batch throughput) and E15 (obs overhead). *)
let decision_corpus () =
  List.concat
    [
      List.map
        (fun k -> ex (Printf.sprintf "(q p){%d} <p> .*" k))
        [ 2; 4; 8; 16 ];
      List.map (fun k -> ex (Printf.sprintf "p* p{%d} <p> p*" k)) [ 2; 4; 8 ];
      List.map
        (fun k -> ex (Printf.sprintf "([^p])* <p> (q p){%d} (p | q)*" k))
        [ 2; 4; 6 ];
      [ ex "([^p])* p ([^p])* <p> .*"; ex "(q | q q) p <p> .*" ];
    ]

let e12 () =
  banner "E12" "runtime layer: cold vs warm cache, multicore batch extraction";
  let exprs = decision_corpus () in
  let run_all () =
    List.iter
      (fun e ->
        ignore (Sys.opaque_identity (Runtime.is_ambiguous e));
        ignore (Sys.opaque_identity (Runtime.check_maximality e)))
      exprs
  in
  let cold_ms =
    time_ms ~reps:5 (fun () ->
        Runtime.reset ();
        run_all ())
  in
  Runtime.reset ();
  run_all ();
  (* populate *)
  let warm_ms = time_ms ~reps:5 run_all in
  let speedup = cold_ms /. warm_ms in
  Printf.printf
    "decision corpus: %d expressions (ambiguity + maximality each)\n"
    (List.length exprs);
  Printf.printf "| pipeline | median ms | decisions/s |\n|---|---|---|\n";
  let dps ms = float_of_int (2 * List.length exprs) /. (ms /. 1000.0) in
  Printf.printf "| cold (caches reset per run) | %10.2f | %10.0f |\n" cold_ms
    (dps cold_ms);
  Printf.printf "| warm (LRU hits)             | %10.2f | %10.0f |\n" warm_ms
    (dps warm_ms);
  Printf.printf "| speedup                     | x%.1f | |\n" speedup;
  (* Batch extraction: one compiled wrapper, many perturbed pages. *)
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Wrapper.alphabet_for [ top; bottom ] in
  let pt = Option.get (Pagegen.target_path top) in
  let pb = Option.get (Pagegen.target_path bottom) in
  let batch_rows, identical =
    match Wrapper.learn ~alpha [ (top, pt); (bottom, pb) ] with
    | Error e ->
        Format.printf "LEARNING FAILED: %a@." Wrapper.pp_learn_error e;
        ([], false)
    | Ok w ->
        let rng = Random.State.make [| 12 |] in
        let docs =
          List.init 400 (fun i ->
              Perturb.perturb rng ~intensity:(1 + (i mod 4)) top)
        in
        let reference = Wrapper.extract_batch ~jobs:1 w docs in
        Printf.printf "\nbatch: 400 perturbed pages through one compiled wrapper\n";
        Printf.printf "| jobs | median ms | pages/s | output = --jobs 1 |\n";
        Printf.printf "|---|---|---|---|\n";
        let identical = ref true in
        let rows =
          List.map
            (fun jobs ->
              let ms =
                time_ms ~reps:3 (fun () -> Wrapper.extract_batch ~jobs w docs)
              in
              let same = Wrapper.extract_batch ~jobs w docs = reference in
              identical := !identical && same;
              Printf.printf "| %d | %8.2f | %8.0f | %b |\n" jobs ms
                (400.0 /. (ms /. 1000.0))
                same;
              (jobs, ms, same))
            [ 1; 2; 4 ]
        in
        (rows, !identical)
  in
  Printf.printf
    "shape check: warm >> cold (the cache removes recompilation), and the\n\
     batch output is invariant in the domain count.\n";
  (* Machine-readable record for the CI bench-regression gate. *)
  let path =
    Option.value (Sys.getenv_opt "BENCH_RUNTIME_JSON")
      ~default:"BENCH_runtime.json"
  in
  let oc = open_out path in
  let s = Runtime.stats () in
  (* Per-jobs speedup over the jobs=1 row (add-only schema extension:
     existing consumers of the batch rows keep parsing). *)
  let ms_j1 =
    match List.find_opt (fun (jobs, _, _) -> jobs = 1) batch_rows with
    | Some (_, ms, _) -> ms
    | None -> nan
  in
  let speedup_vs_j1 ms = if ms > 0.0 then ms_j1 /. ms else nan in
  let batch_speedup_j4 =
    match List.find_opt (fun (jobs, _, _) -> jobs = 4) batch_rows with
    | Some (_, ms, _) -> speedup_vs_j1 ms
    | None -> nan
  in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E12\",\n\
    \  \"corpus_exprs\": %d,\n\
    \  \"cold_ms\": %.3f,\n\
    \  \"warm_ms\": %.3f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"batch_identical\": %b,\n\
    \  \"batch_speedup_j4\": %.3f,\n\
    \  \"batch\": [%s],\n\
    \  \"cache\": { \"compile_hits\": %d, \"compile_misses\": %d, \"quotient_hits\": %d, \"quotient_misses\": %d }\n\
     }\n"
    (List.length exprs) cold_ms warm_ms speedup identical batch_speedup_j4
    (String.concat ", "
       (List.map
          (fun (jobs, ms, same) ->
            Printf.sprintf
              "{\"jobs\": %d, \"ms\": %.3f, \"identical\": %b, \
               \"speedup_vs_j1\": %.3f}"
              jobs ms same (speedup_vs_j1 ms))
          batch_rows))
    s.Runtime.Stats.compile.Runtime.Stats.hits
    s.Runtime.Stats.compile.Runtime.Stats.misses
    s.Runtime.Stats.quotient.Runtime.Stats.hits
    s.Runtime.Stats.quotient.Runtime.Stats.misses;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ----- E13: budgeted verdicts on the blow-up family (guard layer) ----- *)

let e13 () =
  banner "E13" "budgeted execution under the Thm 5.12 blow-up (lib/guard)";
  Printf.printf
    "same hard family as E3: maximality of ([^p])* <p> (p|q)* q (p|q){k} is\n\
     universality of a 2^(k+1)-state DFA.  Unbounded cost doubles with k;\n\
     a fuel budget caps the work at O(fuel) and converts overruns into\n\
     UNKNOWN verdicts instead of stalls.  In-budget verdicts are exact.\n\n";
  (* The process-global Lang_cache memoizes the whole automata pipeline
     structurally, so a warm run is nearly free and spends no fuel.
     Every run here starts from a cleared cache and a fresh parse: each
     one pays the full construction cost the budget is meant to meter. *)
  let hard k =
    Lang_cache.clear ();
    ex
      (Printf.sprintf "([^p])* <p> (p | q)* q %s"
         (String.concat " " (List.init k (fun _ -> "(p | q)"))))
  in
  let fuel = 1_000_000 in
  Printf.printf "| k | unbounded ms | budgeted ms (fuel %d) | verdict | spent |\n"
    fuel;
  Printf.printf "|---|---|---|---|---|\n";
  let rows =
    List.map
      (fun k ->
        (* past k=8 the unbounded run takes seconds-to-minutes: skip
           it, that is the point of the budget *)
        let unbounded_ms =
          if k <= 8 then
            Some (time_ms ~reps:3 (fun () -> Maximality.check (hard k)))
          else None
        in
        let budgeted_ms =
          time_ms ~reps:3 (fun () ->
              Maximality.check_bounded
                ~budget:(Guard.Budget.make ~fuel ())
                (hard k))
        in
        let b = Guard.Budget.make ~fuel () in
        let outcome = Guard.capture b (fun () -> Maximality.check (hard k)) in
        let verdict, spent, exact =
          match outcome with
          | Guard.Decided v ->
              ( Printf.sprintf "Decided %b" (v = Maximality.Maximal),
                Guard.Budget.spent b,
                (* in-budget answers must be bit-identical to unbounded *)
                Some (Guard.Decided (Maximality.check (hard k)) = outcome) )
          | Guard.Unknown r ->
              (Printf.sprintf "UNKNOWN(%s)" r.Guard.stage, r.Guard.spent, None)
        in
        Printf.printf "| %2d | %s | %9.3f | %-14s | %7d |\n" k
          (match unbounded_ms with
          | Some ms -> Printf.sprintf "%9.3f" ms
          | None -> "        -")
          budgeted_ms verdict spent;
        (k, unbounded_ms, budgeted_ms, verdict, spent, exact))
      [ 2; 4; 6; 8; 10; 12 ]
  in
  let all_exact =
    List.for_all
      (fun (_, _, _, _, _, exact) -> exact <> Some false)
      rows
  in
  Printf.printf
    "\nshape check: once the fuel cap binds (k >= 10) the budgeted run stops\n\
     in bounded time with UNKNOWN while the unbounded cost keeps multiplying\n\
     toward minutes; every in-budget verdict matched the unbounded\n\
     procedure (%b).\n"
    all_exact;
  (* Machine-readable record for the CI timeout-regression gate. *)
  let path =
    Option.value (Sys.getenv_opt "BENCH_GUARD_JSON") ~default:"BENCH_guard.json"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E13\",\n\
    \  \"fuel\": %d,\n\
    \  \"in_budget_exact\": %b,\n\
    \  \"rows\": [%s]\n\
     }\n"
    fuel all_exact
    (String.concat ", "
       (List.map
          (fun (k, unbounded_ms, budgeted_ms, verdict, spent, _) ->
            Printf.sprintf
              "{\"k\": %d, \"unbounded_ms\": %s, \"budgeted_ms\": %.3f, \
               \"verdict\": \"%s\", \"spent\": %d}"
              k
              (match unbounded_ms with
              | Some ms -> Printf.sprintf "%.3f" ms
              | None -> "null")
              budgeted_ms verdict spent)
          rows));
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ----- E14: parallel scaling — work-stealing pool on a skewed corpus ----- *)

let e14 () =
  banner "E14"
    "work-stealing pool: skewed-corpus scaling and matcher allocation";
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Wrapper.alphabet_for [ top; bottom ] in
  let pt = Option.get (Pagegen.target_path top) in
  let pb = Option.get (Pagegen.target_path bottom) in
  match Wrapper.learn ~alpha [ (top, pt); (bottom, pb) ] with
  | Error e -> Format.printf "LEARNING FAILED: %a@." Wrapper.pp_learn_error e
  | Ok w ->
      (* Skewed corpus: many cheap pages plus a few giants, giants first
         — under static chunking every giant lands in participant 0's
         range, the adversarial case work stealing exists to fix. *)
      let rng = Random.State.make [| 14 |] in
      let giants =
        List.init 6 (fun i ->
            Pagegen.generate rng
              { Pagegen.default_profile with
                product_rows = 2500 + (500 * (i mod 3)) })
      in
      let small =
        List.init 300 (fun _ ->
            Pagegen.generate rng (Pagegen.random_profile rng))
      in
      let docs = giants @ small in
      let n_docs = List.length docs in
      let tokens_total =
        List.fold_left
          (fun acc d ->
            acc + Array.length (Tag_seq.of_doc ~abs:w.Wrapper.abs alpha d))
          0 docs
      in
      Printf.printf
        "corpus: %d pages (%d giants first), %d tokens total; one compiled \
         wrapper\n"
        n_docs (List.length giants) tokens_total;
      let reference = Wrapper.extract_batch ~jobs:1 w docs in
      Pool.reset_stats ();
      Printf.printf "| jobs | median ms | pages/s | speedup vs j1 | output = --jobs 1 |\n";
      Printf.printf "|---|---|---|---|---|\n";
      let identical = ref true in
      let rows =
        List.map
          (fun jobs ->
            let ms =
              time_ms ~reps:3 (fun () -> Wrapper.extract_batch ~jobs w docs)
            in
            let same = Wrapper.extract_batch ~jobs w docs = reference in
            identical := !identical && same;
            (jobs, ms, same))
          [ 1; 2; 4 ]
      in
      let ms_j1 =
        match rows with (1, ms, _) :: _ -> ms | _ -> assert false
      in
      let rows =
        List.map
          (fun (jobs, ms, same) ->
            let speedup = ms_j1 /. ms in
            Printf.printf "| %d | %8.2f | %8.0f | %5.2f | %b |\n" jobs ms
              (float_of_int n_docs /. (ms /. 1000.0))
              speedup same;
            (jobs, ms, same, speedup))
          rows
      in
      let pool = Pool.stats () in
      Printf.printf "%s" (Format.asprintf "%a" Pool.pp_stats pool);
      (* Per-word allocation of the matcher hot path: the per-domain
         scratch bitset vs the allocating reference.  Measured on the
         largest page's token word. *)
      let giant_word =
        Tag_seq.of_doc ~abs:w.Wrapper.abs alpha (List.hd docs)
      in
      let m = w.Wrapper.matcher in
      let minor_words_per_call f =
        ignore (Sys.opaque_identity (f ()));
        (* warm the scratch *)
        let reps = 50 in
        let before = Gc.minor_words () in
        for _ = 1 to reps do
          ignore (Sys.opaque_identity (f ()))
        done;
        (Gc.minor_words () -. before) /. float_of_int reps
      in
      let scratch_words =
        minor_words_per_call (fun () -> Extraction.matcher_splits m giant_word)
      in
      let fresh_words =
        minor_words_per_call (fun () ->
            Extraction.matcher_splits_fresh m giant_word)
      in
      Printf.printf
        "matcher allocation on a %d-token word (minor words/call):\n\
         | path | minor words |\n\
         |---|---|\n\
         | scratch (hot path) | %8.0f |\n\
         | fresh bitset (reference) | %8.0f |\n"
        (Array.length giant_word) scratch_words fresh_words;
      Printf.printf
        "shape check: output is invariant in the job count, the scratch path\n\
         allocates less than the fresh path, and on a multicore host the\n\
         skewed corpus still scales (stealing drains the giant chunk).\n";
      (* Tiny-items corpus: the inversion regime — thousands of
         sub-millisecond pages, where per-item dispatch used to cost
         more than the parallelism bought (speedup_j4 was 0.53 before
         cost-aware chunking).  With the planner grouping pages into
         break-even work units, jobs=4 must hold at least parity. *)
      let tiny =
        List.init 3100 (fun _ ->
            Pagegen.generate rng
              { Pagegen.default_profile with Pagegen.product_rows = 2 })
      in
      let tiny_n = List.length tiny in
      Printf.printf
        "\ntiny corpus: %d sub-ms pages (cost-aware chunking regime)\n"
        tiny_n;
      let tiny_reference = Wrapper.extract_batch ~jobs:1 w tiny in
      Printf.printf "| jobs | median ms | pages/s | speedup vs j1 | output = --jobs 1 |\n";
      Printf.printf "|---|---|---|---|---|\n";
      let tiny_identical = ref true in
      let tiny_rows =
        List.map
          (fun jobs ->
            let ms =
              time_ms ~reps:3 (fun () -> Wrapper.extract_batch ~jobs w tiny)
            in
            let same = Wrapper.extract_batch ~jobs w tiny = tiny_reference in
            tiny_identical := !tiny_identical && same;
            (jobs, ms, same))
          [ 1; 4 ]
      in
      let tiny_ms_j1 =
        match tiny_rows with (1, ms, _) :: _ -> ms | _ -> assert false
      in
      let tiny_rows =
        List.map
          (fun (jobs, ms, same) ->
            let speedup = tiny_ms_j1 /. ms in
            Printf.printf "| %d | %8.2f | %8.0f | %5.2f | %b |\n" jobs ms
              (float_of_int tiny_n /. (ms /. 1000.0))
              speedup same;
            (jobs, ms, same, speedup))
          tiny_rows
      in
      let speedup_tiny_j4 =
        match List.find_opt (fun (jobs, _, _, _) -> jobs = 4) tiny_rows with
        | Some (_, _, _, s) -> s
        | None -> nan
      in
      let path =
        Option.value (Sys.getenv_opt "BENCH_SCHED_JSON")
          ~default:"BENCH_sched.json"
      in
      let oc = open_out path in
      let speedup_j4 =
        match List.find_opt (fun (jobs, _, _, _) -> jobs = 4) rows with
        | Some (_, _, _, s) -> s
        | None -> nan
      in
      Printf.fprintf oc
        "{\n\
        \  \"experiment\": \"E14\",\n\
        \  \"corpus\": { \"pages\": %d, \"giants\": %d, \"tokens_total\": %d },\n\
        \  \"identical\": %b,\n\
        \  \"speedup_j4\": %.3f,\n\
        \  \"rows\": [%s],\n\
        \  \"tiny\": { \"pages\": %d, \"identical\": %b, \"rows\": [%s] },\n\
        \  \"speedup_tiny_j4\": %.3f,\n\
        \  \"alloc\": { \"word_len\": %d, \"scratch_minor_words_per_call\": %.1f, \"fresh_minor_words_per_call\": %.1f },\n\
        \  \"pool\": { \"workers\": %d, \"batches\": %d, \"items\": %d, \"steals\": %d, \"chunks\": %d, \"seq_fallbacks\": %d }\n\
         }\n"
        n_docs (List.length giants) tokens_total !identical speedup_j4
        (String.concat ", "
           (List.map
              (fun (jobs, ms, same, speedup) ->
                Printf.sprintf
                  "{\"jobs\": %d, \"ms\": %.3f, \"pages_per_s\": %.0f, \
                   \"speedup_vs_j1\": %.3f, \"identical\": %b}"
                  jobs ms
                  (float_of_int n_docs /. (ms /. 1000.0))
                  speedup same)
              rows))
        tiny_n !tiny_identical
        (String.concat ", "
           (List.map
              (fun (jobs, ms, same, speedup) ->
                Printf.sprintf
                  "{\"jobs\": %d, \"ms\": %.3f, \"pages_per_s\": %.0f, \
                   \"speedup_vs_j1\": %.3f, \"identical\": %b}"
                  jobs ms
                  (float_of_int tiny_n /. (ms /. 1000.0))
                  speedup same)
              tiny_rows))
        speedup_tiny_j4 (Array.length giant_word) scratch_words fresh_words
        pool.Pool.workers pool.Pool.batches pool.Pool.items pool.Pool.steals
        pool.Pool.chunks pool.Pool.seq_fallbacks;
      close_out oc;
      Printf.printf "wrote %s\n" path

(* ----- E15: observability overhead (lib/obs) ----- *)

let e15 () =
  banner "E15" "obs overhead: disabled path, traced path, null-span cost";
  Printf.printf
    "the tracing layer must be free when off: the disabled path is a few\n\
     branch instructions, no allocation, no mutex.  We time the E12 cold\n\
     decision corpus three ways and microbench the null span.\n\n";
  let exprs = decision_corpus () in
  let run_all () =
    List.iter
      (fun e ->
        ignore (Sys.opaque_identity (Runtime.is_ambiguous e));
        ignore (Sys.opaque_identity (Runtime.check_maximality e)))
      exprs
  in
  let cold () =
    Runtime.reset ();
    run_all ()
  in
  (* 1. baseline: obs never enabled in this process segment. *)
  Obs.set_enabled false;
  Obs.reset ();
  let baseline_ms = time_ms ~reps:7 cold in
  (* 2. disabled after residue: tracing was on earlier in the process
     (buffers allocated, providers registered), then turned back off.
     This is the state a long-lived process sits in after one traced
     request — it must cost the same as never-enabled. *)
  Obs.set_enabled true;
  cold ();
  Obs.set_enabled false;
  Obs.reset ();
  let disabled_ms = time_ms ~reps:7 cold in
  (* 3. traced: spans, counters and histograms all live.  Obs.reset in
     the timed body keeps the per-domain span buffers from saturating
     (its cost is charged to the traced row — conservative). *)
  Obs.set_enabled true;
  let traced_ms =
    time_ms ~reps:7 (fun () ->
        Obs.reset ();
        cold ())
  in
  let metrics = Obs.Json.to_string (Obs.metrics_json ()) in
  Obs.set_enabled false;
  Obs.reset ();
  let pct base x = (x -. base) /. base *. 100.0 in
  Printf.printf "decision corpus: %d expressions, cold runs (reps 7)\n"
    (List.length exprs);
  Printf.printf "| configuration | median ms | overhead vs baseline |\n";
  Printf.printf "|---|---|---|\n";
  Printf.printf "| obs never enabled     | %8.2f | — |\n" baseline_ms;
  Printf.printf "| obs disabled (residue)| %8.2f | %+.1f%% |\n" disabled_ms
    (pct baseline_ms disabled_ms);
  Printf.printf "| obs traced            | %8.2f | %+.1f%% |\n" traced_ms
    (pct baseline_ms traced_ms);
  (* Null-span microbench: enter/exit + a metric charge with tracing
     off.  Both the time and the allocation must be ~0 per call. *)
  let iters = 1_000_000 in
  let null_bench () =
    for i = 1 to iters do
      let sp = Obs.Span.enter Obs.Span.Determinize in
      Obs.Metric.charge ~stage:"determinize" ~budgeted:false 1;
      Obs.Span.exit_n sp i
    done
  in
  ignore (Sys.opaque_identity (null_bench ()));
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  null_bench ();
  let t1 = Unix.gettimeofday () in
  let w1 = Gc.minor_words () in
  let null_span_ns = (t1 -. t0) *. 1e9 /. float_of_int iters in
  let null_span_minor_words = (w1 -. w0) /. float_of_int iters in
  Printf.printf
    "\nnull span (disabled): %.1f ns/call, %.3f minor words/call\n"
    null_span_ns null_span_minor_words;
  Printf.printf
    "shape check: the disabled rows agree to noise and the null span\n\
     neither allocates nor takes more than a few ns.\n";
  let path =
    Option.value (Sys.getenv_opt "BENCH_OBS_JSON") ~default:"BENCH_obs.json"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E15\",\n\
    \  \"corpus_exprs\": %d,\n\
    \  \"baseline_ms\": %.3f,\n\
    \  \"disabled_ms\": %.3f,\n\
    \  \"traced_ms\": %.3f,\n\
    \  \"overhead_disabled_pct\": %.2f,\n\
    \  \"overhead_traced_pct\": %.2f,\n\
    \  \"null_span_ns\": %.2f,\n\
    \  \"null_span_minor_words\": %.4f,\n\
    \  \"metrics\": %s\n\
     }\n"
    (List.length exprs) baseline_ms disabled_ms traced_ms
    (pct baseline_ms disabled_ms)
    (pct baseline_ms traced_ms)
    null_span_ns null_span_minor_words metrics;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ----- E16: artifact cold start — build from source vs .rxc load ----- *)

let e16 () =
  banner "E16" "artifact cold start: compile from source vs .rxc load";
  Printf.printf
    "the .rxc artifact ships the three validated minimal DFAs, so a\n\
     loading process skips determinize/minimize entirely and pays only\n\
     decode + CRC.  Both paths start from a reset runtime (cold caches)\n\
     and end with a ready matcher over the E12 decision corpus.\n\n";
  let exprs = decision_corpus () in
  (* serialize outside the timed region: E16 times the consumer *)
  let blobs =
    List.map (fun e -> Artifact.to_bytes (Artifact.of_extraction e)) exprs
  in
  let build_one e () =
    Runtime.reset ();
    ignore (Sys.opaque_identity (Extraction.compile e))
  in
  let load_one blob () =
    Runtime.reset ();
    match Artifact.of_bytes blob with
    | Ok a -> ignore (Sys.opaque_identity (Artifact.matcher a))
    | Error err -> failwith (Artifact.error_to_string err)
  in
  Printf.printf "| expression | bytes | build ms | load ms | speedup |\n";
  Printf.printf "|---|---|---|---|---|\n";
  let rows =
    List.map2
      (fun e blob ->
        let build_ms = time_ms ~reps:5 (build_one e) in
        let load_ms = time_ms ~reps:5 (load_one blob) in
        Printf.printf "| %-34s | %5d | %8.3f | %8.3f | x%.1f |\n"
          (Extraction.to_string e) (String.length blob) build_ms load_ms
          (build_ms /. load_ms);
        (e, String.length blob, build_ms, load_ms))
      exprs blobs
  in
  let total_build = List.fold_left (fun a (_, _, b, _) -> a +. b) 0.0 rows in
  let total_load = List.fold_left (fun a (_, _, _, l) -> a +. l) 0.0 rows in
  let load_faster = total_load < total_build in
  Printf.printf "| TOTAL | | %8.3f | %8.3f | x%.1f |\n" total_build total_load
    (total_build /. total_load);
  Printf.printf
    "shape check: loading beats building on the corpus total — the\n\
     whole point of shipping artifacts (load_faster_than_build=%b).\n"
    load_faster;
  let path =
    Option.value
      (Sys.getenv_opt "BENCH_ARTIFACT_JSON")
      ~default:"BENCH_artifact.json"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E16\",\n\
    \  \"corpus_exprs\": %d,\n\
    \  \"total_build_ms\": %.3f,\n\
    \  \"total_load_ms\": %.3f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"load_faster_than_build\": %b,\n\
    \  \"rows\": [\n"
    (List.length rows) total_build total_load
    (total_build /. total_load)
    load_faster;
  List.iteri
    (fun i (e, bytes, build_ms, load_ms) ->
      Printf.fprintf oc
        "    {\"expr\": \"%s\", \"artifact_bytes\": %d, \"build_ms\": %.3f, \
         \"load_ms\": %.3f}%s\n"
        (Extraction.to_string e) bytes build_ms load_ms
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ----- E17: serve daemon — supervised streaming under chaos ----- *)

let e17 () =
  banner "E17" "serve: supervised streaming sessions under a chaos mix";
  Printf.printf
    "a chaos workload drives the serve supervisor directly: %d\n\
     concurrent sessions interleaved round-robin, malformed lines\n\
     salted in, one session poisoned by the fault injector and one\n\
     starved of fuel.  The gates: every clean session's splits must\n\
     equal the offline matcher exactly, and the two casualties must\n\
     surface as structured frames — never as a dead supervisor.\n\n"
    128;
  let alpha = Alphabet.make [ "p"; "q" ] in
  let e = Extraction.parse alpha "([^p])* <p> .*" in
  let m = Extraction.compile e in
  let n_sessions = 128 in
  let faulted = 3 and starved = 5 in
  let word i =
    let len = 5 + ((i * 7) mod 37) in
    Array.init len (fun k -> if (k + i) mod 3 = 0 then 0 else 1)
  in
  let tokens_json id syms =
    Printf.sprintf {|{"op":"tokens","id":%d,"syms":[%s]}|} id
      (String.concat ","
         (List.map (fun a -> Printf.sprintf "%S" (Alphabet.name alpha a)) syms))
  in
  let session_lines i =
    let w = word i in
    let open_l =
      if i = starved then Printf.sprintf {|{"op":"open","id":%d,"fuel":2}|} i
      else Printf.sprintf {|{"op":"open","id":%d}|} i
    in
    let rec chunks k acc =
      if k >= Array.length w then List.rev acc
      else
        let n = min 8 (Array.length w - k) in
        chunks (k + n)
          (tokens_json i (Array.to_list (Array.sub w k n)) :: acc)
    in
    (open_l :: chunks 0 []) @ [ Printf.sprintf {|{"op":"close","id":%d}|} i ]
  in
  (* round-robin interleave across sessions, then salt with noise *)
  let qs = Array.init n_sessions (fun i -> ref (session_lines i)) in
  let interleaved =
    let buf = ref [] and busy = ref true in
    while !busy do
      busy := false;
      Array.iter
        (fun q ->
          match !q with
          | [] -> ()
          | l :: rest ->
              busy := true;
              q := rest;
              buf := l :: !buf)
        qs
    done;
    List.rev !buf
  in
  let lines =
    List.concat
      (List.mapi
         (fun i l -> if i mod 29 = 0 then [ "### chaos noise"; l ] else [ l ])
         interleaved)
  in
  let rec chop k = function
    | [] -> []
    | l ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (n - 1) (x :: acc) rest
        in
        let batch, rest = take k [] l in
        batch :: chop k rest
  in
  let batches = chop 64 lines in
  let run () =
    Guard_faults.arm Guard_faults.Session_item ~at:[ faulted ];
    Fun.protect ~finally:Guard_faults.disarm @@ fun () ->
    let sup =
      Supervisor.create
        {
          Supervisor.matcher = m;
          alpha;
          jobs = 4;
          max_sessions = n_sessions;
          fuel = None;
          deadline_ms = None;
          retry_after_ms = 50;
          heal = None;
        }
    in
    List.concat_map (Supervisor.handle_batch sup) batches
  in
  let lat0 = Supervisor.frame_latency () in
  let ms = time_ms ~reps:3 (fun () -> ignore (Sys.opaque_identity (run ()))) in
  let out = run () in
  (* per-window latency via snapshot delta — the daemon-safe reading *)
  let lat =
    Obs.Histogram.delta ~earlier:lat0 (Supervisor.frame_latency ())
  in
  let n_lines = List.length lines in
  let frames_per_s = float_of_int n_lines /. (ms /. 1000.0) in
  let p99_us = Obs.Histogram.percentile_ns lat 0.99 / 1000 in
  let splits_of id =
    List.filter_map
      (function
        | Frame.Split { id = i; pos } when i = id -> Some pos | _ -> None)
      out
  in
  let clean_exact = ref true in
  for i = 0 to n_sessions - 1 do
    if
      i <> faulted && i <> starved
      && splits_of i <> Extraction.matcher_splits m (word i)
    then clean_exact := false
  done;
  let fault_surfaced =
    List.exists
      (function Frame.Err_fault { id; _ } -> id = faulted | _ -> false)
      out
  and budget_surfaced =
    List.exists
      (function Frame.Err_budget { id; _ } -> id = starved | _ -> false)
      out
  in
  Printf.printf "| sessions | frames | batch ms | frames/s | p99 us |\n";
  Printf.printf "|---|---|---|---|---|\n";
  Printf.printf "| %8d | %6d | %8.3f | %8.0f | %6d |\n" n_sessions n_lines ms
    frames_per_s p99_us;
  Printf.printf
    "shape check: clean_sessions_exact=%b, fault_surfaced=%b,\n\
     budget_surfaced=%b — supervision must be observation-free for\n\
     the survivors and structured for the casualties.\n"
    !clean_exact fault_surfaced budget_surfaced;
  let path =
    Option.value (Sys.getenv_opt "BENCH_SERVE_JSON") ~default:"BENCH_serve.json"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E17\",\n\
    \  \"sessions\": %d,\n\
    \  \"frames\": %d,\n\
    \  \"batch_ms\": %.3f,\n\
    \  \"frames_per_s\": %.0f,\n\
    \  \"p99_us\": %d,\n\
    \  \"clean_sessions_exact\": %b,\n\
    \  \"fault_surfaced\": %b,\n\
    \  \"budget_surfaced\": %b,\n\
    \  \"survived\": true\n\
     }\n"
    n_sessions n_lines ms frames_per_s p99_us !clean_exact fault_surfaced
    budget_surfaced;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ----- E18: fused page front-end vs the materializing pipeline ----- *)

let e18 () =
  banner "E18" "fused zero-copy front-end vs lex→tree→word pipeline";
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let alpha = Wrapper.alphabet_for [ top; bottom ] in
  let abs = Abstraction.Tags in
  (* corpus: generated catalog pages, half of them perturbed — the
     resilience workload the wrapper is meant to survive *)
  let htmls =
    List.init 40 (fun i ->
        let rng = Random.State.make [| 0xe18; i |] in
        let doc = Pagegen.generate rng (Pagegen.random_profile rng) in
        let doc =
          if i mod 2 = 1 then Perturb.perturb rng ~intensity:2 doc else doc
        in
        Html_tree.to_string doc)
  in
  let n_pages = List.length htmls in
  let n_bytes = List.fold_left (fun a s -> a + String.length s) 0 htmls in
  let m_on = Extraction.compile (Extraction.parse alpha "([^INPUT])* <INPUT> .*") in
  let m_off =
    Extraction.compile
      (Extraction.parse alpha "([^INPUT])* <INPUT> ([^FORM])* /FORM .*")
  in
  let tbl = Front.build ~abs alpha in
  let tree_extract m html =
    let doc = Html_tree.parse html in
    match Tag_seq.of_doc_indexed ~abs alpha doc with
    | exception Tag_seq.Unknown_symbol t -> Error t
    | word, origins -> (
        match Extraction.matcher_extract m word with
        | `No_match -> Error "no-match"
        | `Ambiguous _ -> Error "ambiguous"
        | `Unique i -> (
            match origins.(i) with
            | Tag_seq.Open_of p | Tag_seq.Close_of p -> Ok p))
  in
  let fused_extract m html =
    match Front.extract tbl m html with
    | Ok p -> Ok p
    | Error Front.No_match -> Error "no-match"
    | Error (Front.Ambiguous _) -> Error "ambiguous"
    | Error (Front.Unknown_symbol t) -> Error t
  in
  let minor_per_page f =
    (* allocation, not time: one full pass over the corpus *)
    let w0 = Gc.minor_words () in
    List.iter (fun h -> ignore (Sys.opaque_identity (f h))) htmls;
    (Gc.minor_words () -. w0) /. float_of_int n_pages
  in
  let comp = Extraction.matcher_compressed m_on in
  let n_alpha = Alphabet.size alpha in
  Printf.printf "alphabet %d symbols → %d matcher classes (online expr)\n"
    n_alpha comp.Extraction.n_classes;
  Printf.printf "| matcher | tree ms | fused ms | speedup | tree pg/s | fused pg/s | tree minW/pg | fused minW/pg | identical |\n";
  Printf.printf "|---|---|---|---|---|---|---|---|---|\n";
  let row name m =
    let tree_ms =
      time_ms ~reps:5 (fun () ->
          List.iter (fun h -> ignore (Sys.opaque_identity (tree_extract m h))) htmls)
    in
    let fused_ms =
      time_ms ~reps:5 (fun () ->
          List.iter (fun h -> ignore (Sys.opaque_identity (fused_extract m h))) htmls)
    in
    let identical =
      List.for_all (fun h -> tree_extract m h = fused_extract m h) htmls
    in
    let tree_minor = minor_per_page (tree_extract m) in
    let fused_minor = minor_per_page (fused_extract m) in
    let speedup = tree_ms /. fused_ms in
    Printf.printf
      "| %-7s | %7.3f | %8.3f | %7.2f | %9.0f | %10.0f | %12.0f | %13.0f | %b |\n"
      name tree_ms fused_ms speedup
      (float_of_int n_pages /. (tree_ms /. 1000.0))
      (float_of_int n_pages /. (fused_ms /. 1000.0))
      tree_minor fused_minor identical;
    (tree_ms, fused_ms, speedup, tree_minor, fused_minor, identical)
  in
  let on = row "online" m_on in
  let off = row "offline" m_off in
  (* batch fan-out: the raw path must answer the tree path's cells at
     every job count *)
  let w =
    match Wrapper.learn ~alpha [ (top, Option.get (Pagegen.target_path top));
                                 (bottom, Option.get (Pagegen.target_path bottom)) ]
    with
    | Ok w -> w
    | Error _ -> failwith "E18: learning failed"
  in
  let tree_batch = Wrapper.extract_batch ~jobs:1 w (List.map Html_tree.parse htmls) in
  let jobs_identical =
    List.for_all
      (fun jobs -> Wrapper.extract_raw_batch ~jobs w htmls = tree_batch)
      [ 1; 2; 4 ]
  in
  Printf.printf "batch fan-out identical at jobs 1/2/4: %b\n" jobs_identical;
  let path =
    Option.value (Sys.getenv_opt "BENCH_FRONT_JSON") ~default:"BENCH_front.json"
  in
  let json_row name (tree_ms, fused_ms, speedup, tree_minor, fused_minor, id) =
    Printf.sprintf
      "  \"%s\": {\n\
      \    \"tree_ms\": %.3f,\n\
      \    \"fused_ms\": %.3f,\n\
      \    \"speedup\": %.2f,\n\
      \    \"tree_pages_per_s\": %.0f,\n\
      \    \"fused_pages_per_s\": %.0f,\n\
      \    \"tree_minor_words_per_page\": %.0f,\n\
      \    \"fused_minor_words_per_page\": %.0f,\n\
      \    \"identical\": %b\n\
      \  }"
      name tree_ms fused_ms speedup
      (float_of_int n_pages /. (tree_ms /. 1000.0))
      (float_of_int n_pages /. (fused_ms /. 1000.0))
      tree_minor fused_minor id
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E18\",\n\
    \  \"pages\": %d,\n\
    \  \"bytes\": %d,\n\
    \  \"alpha_symbols\": %d,\n\
    \  \"matcher_classes\": %d,\n\
     %s,\n\
     %s,\n\
    \  \"jobs_identical\": %b\n\
     }\n"
    n_pages n_bytes n_alpha comp.Extraction.n_classes (json_row "online" on)
    (json_row "offline" off) jobs_identical;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ----- E19: self-healing under mid-stream layout drift ----- *)

let e19 () =
  banner "E19" "self-healing vs frozen wrappers under mid-stream layout drift";
  let top = Pagegen.figure1_top () in
  let bottom = Pagegen.figure1_bottom () in
  let samples =
    [
      (top, Option.get (Pagegen.target_path top));
      (bottom, Option.get (Pagegen.target_path bottom));
    ]
  in
  let alpha0 = Wrapper.alphabet_for (List.map fst samples) in
  (* the stream: pre-drift sessions are light §3 perturbations of the
     learned layout; at the flip every subsequent page arrives inside a
     SECTION wrapper — a tag outside the learned alphabet, the §3
     "redesign" a frozen wrapper can never recover from *)
  let n_pre = 6 and n_post = 12 in
  let pre_pages =
    List.init n_pre (fun i ->
        let rng = Random.State.make [| 0xe19; i |] in
        Html_tree.to_string (Perturb.perturb rng ~intensity:1 top))
  in
  let post_page = "<section>" ^ Html_tree.to_string top ^ "</section>" in
  let post_pages = List.init n_post (fun _ -> post_page) in
  let open_l id = Printf.sprintf {|{"op":"open","id":%d}|} id in
  let close_l id = Printf.sprintf {|{"op":"close","id":%d}|} id in
  let page_l id html =
    Obs.Json.to_string
      (Obs.Json.Obj
         [
           ("op", Obs.Json.Str "page");
           ("id", Obs.Json.Int id);
           ("html", Obs.Json.Str html);
         ])
  in
  (* one batch per session: verdicts land at each session's boundary,
     so the detector trips as early as the evidence allows *)
  let batches =
    List.mapi
      (fun i html -> [ open_l (i + 1); page_l (i + 1) html; close_l (i + 1) ])
      (pre_pages @ post_pages)
  in
  let survived out ids =
    List.length
      (List.filter
         (fun id ->
           List.exists
             (function
               | Frame.Split { id = i; _ } -> i = id
               | _ -> false)
             out)
         ids)
  in
  let cell ~maximize ~healed =
    match Wrapper.learn ~maximize ~alpha:alpha0 samples with
    | Error _ -> failwith "E19: Figure 1 wrapper failed to learn"
    | Ok w ->
        let heal =
          if not healed then None
          else
            Some
              (Heal.Manager.create
                 ~config:
                   {
                     Heal.default_config with
                     Heal.window = 4;
                     threshold = 0.4;
                     min_samples = 2;
                     maximize;
                   }
                 ~samples w)
        in
        let sup =
          Supervisor.create
            {
              Supervisor.matcher = w.Wrapper.matcher;
              alpha = w.Wrapper.alpha;
              jobs = 2;
              max_sessions = 64;
              fuel = None;
              deadline_ms = None;
              retry_after_ms = 50;
              heal;
            }
        in
        let out = List.concat_map (Supervisor.handle_batch sup) batches in
        let pre_ids = List.init n_pre (fun i -> i + 1) in
        let post_ids = List.init n_post (fun i -> i + n_pre + 1) in
        let healed_frames =
          List.length
            (List.filter (function Frame.Healed _ -> true | _ -> false) out)
        in
        (survived out pre_ids, survived out post_ids, healed_frames)
  in
  let heal0 = Heal.stats () in
  let lat0 = Heal.resynthesis_latency () in
  let mx_heal = cell ~maximize:true ~healed:true in
  let mx_frozen = cell ~maximize:true ~healed:false in
  let mg_heal = cell ~maximize:false ~healed:true in
  let mg_frozen = cell ~maximize:false ~healed:false in
  let pct n d = 100.0 *. float_of_int n /. float_of_int d in
  Printf.printf
    "stream: %d pre-drift sessions (intensity-1 perturbations), then a\n\
     SECTION layout flip for %d sessions.  survival = sessions with a split.\n\n"
    n_pre n_post;
  Printf.printf
    "| wrapper | healing | pre-drift %% | post-drift %% | heals |\n\
     |---|---|---|---|---|\n";
  List.iter
    (fun (name, healing, (pre, post, heals)) ->
      Printf.printf "| %-9s | %-6s | %5.1f | %5.1f | %d |\n" name healing
        (pct pre n_pre) (pct post n_post) heals)
    [
      ("maximized", "healed", mx_heal);
      ("maximized", "frozen", mx_frozen);
      ("merged", "healed", mg_heal);
      ("merged", "frozen", mg_frozen);
    ];
  let heal1 = Heal.stats () in
  let lat =
    Obs.Histogram.delta ~earlier:lat0 (Heal.resynthesis_latency ())
  in
  let pre_h, post_h, _ = mx_heal in
  let pre_f, post_f, _ = mx_frozen in
  let survival_healed = pct post_h n_post /. 100.0 in
  let survival_frozen = pct post_f n_post /. 100.0 in
  let gate = survival_healed > survival_frozen in
  Printf.printf
    "\ntrips %d · healed %d · failures %d · resynthesis mean %d us\n"
    (heal1.Heal.trips - heal0.Heal.trips)
    (heal1.Heal.healed - heal0.Heal.healed)
    (heal1.Heal.heal_failures - heal0.Heal.heal_failures)
    (Obs.Histogram.mean_ns lat / 1000);
  Printf.printf "shape check: healed survives the flip, frozen does not: %b\n"
    gate;
  Printf.printf
    "(pre-drift, maximized healed vs frozen: %.1f%% vs %.1f%% — healing\n\
     never costs the undrifted sessions anything)\n"
    (pct pre_h n_pre) (pct pre_f n_pre);
  let path =
    Option.value (Sys.getenv_opt "BENCH_HEAL_JSON") ~default:"BENCH_heal.json"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"E19\",\n\
    \  \"pre_sessions\": %d,\n\
    \  \"post_sessions\": %d,\n\
    \  \"survival_healed\": %.4f,\n\
    \  \"survival_frozen\": %.4f,\n\
    \  \"survival_healed_merged\": %.4f,\n\
    \  \"survival_frozen_merged\": %.4f,\n\
    \  \"trips\": %d,\n\
    \  \"healed\": %d,\n\
    \  \"heal_failures\": %d,\n\
    \  \"resynthesis_mean_us\": %d,\n\
    \  \"healed_beats_frozen\": %b\n\
     }\n"
    n_pre n_post survival_healed survival_frozen
    (let _, post, _ = mg_heal in
     pct post n_post /. 100.0)
    (let _, post, _ = mg_frozen in
     pct post n_post /. 100.0)
    (heal1.Heal.trips - heal0.Heal.trips)
    (heal1.Heal.healed - heal0.Heal.healed)
    (heal1.Heal.heal_failures - heal0.Heal.heal_failures)
    (Obs.Histogram.mean_ns lat / 1000)
    gate;
  close_out oc;
  Printf.printf "wrote %s\n" path

let all_experiments =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all_experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt (String.uppercase_ascii name) all_experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" name
            (String.concat " " (List.map fst all_experiments));
          exit 2)
    requested
